// Cascades and versioned hot-swap aliases, end to end:
//
//   1. CASCADE — a tiny NullaNet-style screen of a zoo layer answers the
//      requests its confidence bit clears; the rest forward to the exact
//      popcount synthesis of the same layer, under one absolute deadline
//      (stage 2 admits on whatever budget stage 1 left over).
//   2. CANARY ROLLOUT — clients address "jsc@prod" through an AliasTable
//      while v2 of the model goes from dark (0%) to a 25% weighted split
//      (exact stride, not sampling) to an atomic flip, and the idle v1 is
//      reaped by evict_idle afterwards.
//
//   $ ./serve_versions [requests]
//
// Contrast with examples/serve_demo.cpp, which covers the per-model serving
// basics — this example is about multi-model POLICY on top of them.

#include <cstdlib>
#include <future>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netlist/simulate.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "serve/alias.hpp"
#include "serve/cascade.hpp"

int main(int argc, char** argv) {
  using namespace lbnn;
  using namespace lbnn::runtime;

  const long long arg = argc > 1 ? std::atoll(argv[1]) : 400;
  const std::size_t kRequests = static_cast<std::size_t>(arg > 0 ? arg : 400);

  // The same jet-substructure layer at two fidelities: a pruned LUT-cone
  // screen and the exact XNOR-popcount form (~5x the gates).
  const nn::ModelDesc desc = nn::jsc_l();
  nn::SynthOptions tiny_opt;
  tiny_opt.style = nn::NeuronStyle::kNullaNetTiny;
  tiny_opt.fanin_cap = 5;
  Rng rng(7);
  const Netlist tiny_nl =
      nn::synthesize_layer_ffcl(desc.layers[0], tiny_opt, rng).ffcl;
  Rng rng2(7);
  const Netlist big_nl =
      nn::synthesize_layer_ffcl(desc.layers[0], nn::SynthOptions{}, rng2).ffcl;

  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  Engine engine(eopt);

  // --- 1. Cascade -----------------------------------------------------------
  ModelOptions mopt;
  mopt.queue_bound = 2 * kRequests;  // the whole burst fits; nothing sheds
  const ModelHandle tiny = engine.load("jsc_tiny", tiny_nl, mopt);
  const ModelHandle big = engine.load("jsc_big", big_nl, mopt);
  serve::CascadeOptions copt;
  copt.confident = [](const std::vector<bool>& out) { return out[0]; };
  serve::Cascade cascade(engine, tiny, big, copt);

  std::vector<std::future<std::vector<bool>>> futs;
  std::vector<bool> bits(tiny_nl.num_inputs());
  for (std::size_t i = 0; i < kRequests; ++i) {
    for (std::size_t j = 0; j < bits.size(); ++j) bits[j] = rng.next_bool();
    futs.push_back(cascade.submit(bits));
  }
  cascade.drain();
  for (auto& f : futs) f.get();

  const serve::CascadeReport crep = cascade.report();
  std::cout << "cascade (" << tiny_nl.num_gates() << "-gate screen in front "
            << "of " << big_nl.num_gates() << "-gate model):\n  "
            << crep.submitted << " requests -> " << crep.stage1_answered
            << " answered by the screen, " << crep.forwarded
            << " forwarded, " << crep.stage2_answered
            << " answered by the big model\n\n";
  engine.unload(tiny);  // done with the cascade pair; the rollout below
  engine.unload(big);   // should be the only idle-eviction candidates

  // --- 2. Versioned alias rollout ------------------------------------------
  const ModelHandle v1 = engine.load("jsc_v1", tiny_nl);
  const ModelHandle v2 = engine.load("jsc_v2", tiny_nl);  // dedups in cache
  serve::AliasTable table(engine);
  table.publish("jsc@prod", v1);
  table.set_canary("jsc@prod", v2, 0, 1);  // v2 staged dark

  const auto phase = [&](const char* label, std::size_t n) {
    std::vector<std::future<std::vector<bool>>> fs;
    for (std::size_t i = 0; i < n; ++i) fs.push_back(table.submit("jsc@prod", bits));
    engine.drain();
    for (auto& f : fs) f.get();
    const serve::AliasReport r = table.report("jsc@prod");
    std::cout << "  " << std::left << std::setw(18) << label << " primary "
              << r.to_primary << ", canary " << r.to_canary << "\n";
  };

  std::cout << "rollout of jsc@prod (cumulative routing ledger):\n";
  phase("dark (0%)", kRequests / 4);
  table.set_split("jsc@prod", 1, 3);  // 25%, exact over every window of 4
  engine.set_weight(v2, 1);           // canary QoS share to match
  phase("canary (25%)", kRequests / 4);
  const auto t_flip = std::chrono::steady_clock::now();
  const ModelHandle old = table.flip("jsc@prod");
  phase("flipped (100%)", kRequests / 4);

  // v1 has been idle since the flip; everything else served since. Half the
  // flip-to-now gap reaps exactly the old version.
  const std::size_t evicted =
      engine.evict_idle((std::chrono::steady_clock::now() - t_flip) / 2);
  std::cout << "evict_idle reaped " << evicted << " idle model(s); old primary '"
            << old.name() << "' loaded=" << std::boolalpha << old.loaded()
            << ", serving '" << table.resolve("jsc@prod").name() << "'\n";

  engine.shutdown();
  return 0;
}
