// The paper's front-to-back flow (Fig. 1) on a Verilog FFCL block: parse,
// optimize, map, balance, partition, schedule, emit — then disassemble the
// instruction queues and verify the program on the LPU simulator.
//
//   $ ./verilog_flow              # uses the built-in demo module
//   $ ./verilog_flow block.v      # or compile your own netlist

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/simulate.hpp"
#include "netlist/stats.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

// A NullaNet-style FFCL block: two 4-input "neurons" over shared inputs.
constexpr const char* kDemo = R"(
module ffcl_block(x, y);
  input [7:0] x;
  output [1:0] y;
  wire a0, a1, a2, b0, b1, b2;
  and  g0(a0, x[0], x[1]);
  nand g1(a1, x[2], x[3]);
  xor  g2(a2, a0, a1);
  or   g3(b0, x[4], x[5]);
  xnor g4(b1, x[6], x[7]);
  and  g5(b2, b0, b1);
  assign y[0] = a2 | (x[4] & ~x[2]);
  assign y[1] = b2 ^ a0;
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace lbnn;

  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  const auto mod = verilog::parse_module(source);
  std::cout << "module '" << mod.name << "': " << compute_stats(mod.netlist)
            << "\n";

  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 4;
  const CompileResult res = compile(mod.netlist, opt);
  std::cout << "preprocessed: " << res.report.preprocessed << "\n";
  std::cout << "MFGs: " << res.report.mfgs_before_merge << " -> "
            << res.report.mfgs_after_merge << " after merging; wavefronts: "
            << res.report.wavefronts << " (" << res.report.bubbles
            << " bubbles), " << res.report.bands << " circulation pass(es)\n\n";

  std::cout << "instruction queues (first 8 memLocs):\n";
  res.program.disassemble(std::cout, 8);

  LpuSimulator sim(res.program);
  Rng rng(1);
  bool all_ok = true;
  for (int batch = 0; batch < 4; ++batch) {
    const auto in = random_inputs(mod.netlist, 64, rng);
    all_ok = all_ok && (sim.run(in) == simulate(mod.netlist, in));
  }
  std::cout << "\n4 random batches vs reference simulator: "
            << (all_ok ? "all match" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
