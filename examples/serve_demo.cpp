// Serving quickstart (API v2): load models into the batched multi-threaded
// engine via ref-counted handles, fire async single-sample requests at them,
// exercise bounded admission (try_submit) and unload, and read the per-model
// serving stats. Contrast with examples/quickstart.cpp, which drives one
// LpuSimulator synchronously with hand-packed words — here the runtime does
// the packing, batching, weighted-fair dispatch, and lifecycle.
//
//   $ ./serve_demo [--backend scalar|sliced|aot] [--shards N]
//                  [--trace out.json] [--prometheus] [--metrics-json]
//
// --backend picks the executor behind the ExecutorBackend seam: `scalar` is
// the BitVec-at-a-time oracle interpreter, `sliced` (the default) the
// bit-sliced SIMD interpreter, `aot` the sliced interpreter plus background
// native codegen — early requests run bit-sliced, and once the compiled
// artifact is promoted mid-run the rest run native (the "member runs by
// backend" line below shows the flip). --trace FILE turns the engine's
// request-lifecycle tracing on and writes a Chrome trace-event JSON to FILE
// (open it in chrome://tracing or Perfetto). --prometheus / --metrics-json
// print the same ServeReport in scrape-able formats (see README
// "Observability"). --shards N runs the same traffic through an N-shard
// Router instead of a single Engine: the models replicate across shards,
// dispatch is power-of-two-choices, and the summary becomes a fleet report
// with one row per shard (trace/metrics output is then shard-labelled).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "router/router.hpp"
#include "runtime/engine.hpp"

namespace {

// A 4-bit ripple-carry adder as the served model.
lbnn::Netlist build_adder() {
  using namespace lbnn;
  Netlist nl;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  NodeId carry = kInvalidNode;
  for (int i = 0; i < 4; ++i) {
    const NodeId axb = nl.add_gate(GateOp::kXor, a[i], b[i]);
    if (carry == kInvalidNode) {
      nl.add_output(axb, "s" + std::to_string(i));
      carry = nl.add_gate(GateOp::kAnd, a[i], b[i]);
    } else {
      nl.add_output(nl.add_gate(GateOp::kXor, axb, carry), "s" + std::to_string(i));
      const NodeId t1 = nl.add_gate(GateOp::kAnd, a[i], b[i]);
      const NodeId t2 = nl.add_gate(GateOp::kAnd, carry, axb);
      carry = nl.add_gate(GateOp::kOr, t1, t2);
    }
  }
  nl.add_output(carry, "cout");
  return nl;
}

// The --shards demo: the same adder + grid traffic through an N-shard
// Router. Shows replica sets (the adder runs on two shards), p2c dispatch,
// a manual scale-up, and the aggregated fleet report with per-shard rows.
int run_sharded(std::size_t num_shards, const std::string& trace_path,
                bool print_prometheus) {
  using namespace lbnn;
  using namespace lbnn::runtime;

  const Netlist adder_nl = build_adder();
  Rng gen(3);
  const Netlist grid_nl = reconvergent_grid(10, 5, gen);

  router::RouterOptions ropt;
  ropt.num_shards = num_shards;
  ropt.engine.num_workers = 1;  // per shard: the shards are the parallelism
  ropt.engine.batch_timeout = std::chrono::microseconds(200);
  ropt.engine.compile.lpu.m = 8;
  ropt.engine.compile.lpu.n = 8;
  ropt.engine.tracing = !trace_path.empty();
  ropt.initial_replicas = 2;  // each model starts on two shards
  router::Router router(ropt);

  ModelOptions adder_opt;
  adder_opt.weight = 4;
  const router::RoutedHandle adder = router.load("adder4", adder_nl, adder_opt);
  ModelOptions grid_opt;
  grid_opt.queue_bound = 32;
  const router::RoutedHandle grid = router.load("grid", grid_nl, grid_opt);
  std::cout << num_shards << "-shard router; adder4 replicas on shards {";
  for (std::size_t s : router.replica_shards(adder)) std::cout << " " << s;
  std::cout << " }, grid on {";
  for (std::size_t s : router.replica_shards(grid)) std::cout << " " << s;
  std::cout << " }\n";

  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(router.submit(adder, std::vector<bool>(8, i % 2 != 0)));
  }
  unsigned grid_accepted = 0;
  for (int i = 0; i < 32; ++i) {
    std::future<std::vector<bool>> fut;
    if (router.try_submit(grid, std::vector<bool>(grid_nl.num_inputs()),
                          &fut) == SubmitStatus::kAccepted) {
      ++grid_accepted;
      futs.push_back(std::move(fut));
    }
  }
  // Manual elasticity: grow the adder onto every shard mid-traffic. A later
  // set_replicas back down would drain the retiring copy without dropping
  // anything (see bench/serve_sharding's scripted cycle).
  router.set_replicas(adder, num_shards);
  for (int i = 0; i < 64; ++i) {
    futs.push_back(router.submit(adder, std::vector<bool>(8, i % 2 == 0)));
  }
  for (auto& f : futs) f.get();
  router.drain();
  std::cout << "adder4 grew to " << router.replicas(adder)
            << " replicas; served " << futs.size() << " requests ("
            << grid_accepted << " grid)\n";

  const router::FleetReport fleet = router.report();
  std::cout << "\n" << std::left << std::setw(8) << "shard" << std::right
            << std::setw(9) << "reqs" << std::setw(9) << "batches"
            << std::setw(9) << "p50us" << std::setw(9) << "p99us"
            << std::setw(7) << "occ%" << std::setw(6) << "shed"
            << std::setw(10) << "goodput/s" << "\n";
  for (std::size_t s = 0; s < fleet.per_shard.size(); ++s) {
    const ServeReport& r = fleet.per_shard[s];
    std::cout << std::left << std::setw(8) << s << std::right << std::setw(9)
              << r.requests << std::setw(9) << r.batches << std::setw(9)
              << r.p50_latency_us << std::setw(9) << r.p99_latency_us
              << std::setw(7) << static_cast<int>(r.lane_occupancy * 100)
              << std::setw(6) << r.shed << std::setw(10)
              << static_cast<long long>(r.goodput_per_sec) << "\n";
  }
  const ServeReport& t = fleet.total;
  std::cout << std::left << std::setw(8) << "fleet" << std::right
            << std::setw(9) << t.requests << std::setw(9) << t.batches
            << std::setw(9) << t.p50_latency_us << std::setw(9)
            << t.p99_latency_us << std::setw(7)
            << static_cast<int>(t.lane_occupancy * 100) << std::setw(6)
            << t.shed << std::setw(10)
            << static_cast<long long>(t.goodput_per_sec) << "\n";

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    router.export_trace(os);
    std::cout << "\nwrote fleet Chrome trace to " << trace_path
              << " (one process per shard)\n";
  }
  if (print_prometheus) {
    std::cout << "\n--- prometheus (shard-labelled) ---\n"
              << router.metrics_prometheus();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbnn;
  using namespace lbnn::runtime;

  std::string trace_path;
  std::string backend = "sliced";
  bool print_prometheus = false;
  bool print_metrics_json = false;
  long shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
      if (backend != "scalar" && backend != "sliced" && backend != "aot") {
        std::cerr << "unknown --backend '" << backend
                  << "' (expected scalar, sliced, or aot)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prometheus") == 0) {
      print_prometheus = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      print_metrics_json = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atol(argv[++i]);
    } else {
      std::cerr << "usage: serve_demo [--backend scalar|sliced|aot] "
                   "[--shards N] [--trace out.json] [--prometheus] "
                   "[--metrics-json]\n";
      return 2;
    }
  }
  if (shards > 0) {
    return run_sharded(static_cast<std::size_t>(shards), trace_path,
                       print_prometheus);
  }

  const Netlist adder_nl = build_adder();
  Rng gen(3);
  const Netlist grid_nl = reconvergent_grid(10, 5, gen);

  EngineOptions opt;
  opt.num_workers = 4;
  opt.batch_timeout = std::chrono::microseconds(200);
  opt.compile.lpu.m = 8;
  opt.compile.lpu.n = 8;
  opt.tracing = !trace_path.empty();
  // --backend: scalar = the oracle interpreter, sliced = bit-sliced SIMD,
  // aot = sliced until the background-compiled native artifact promotes.
  opt.simd = backend != "scalar";
  opt.aot = backend == "aot";
  Engine engine(opt);
  if (backend == "aot" && !engine.aot_enabled()) {
    std::cout << "(note: --backend aot requested but AOT is pinned off in "
                 "this environment; serving bit-sliced)\n";
  }

  // load() returns a ref-counted handle carrying per-model QoS options.
  ModelOptions adder_opt;
  adder_opt.weight = 4;  // 4x the worker share of the background model
  const ModelHandle adder = engine.load("adder4", adder_nl, adder_opt);
  ModelOptions grid_opt;
  grid_opt.weight = 1;
  grid_opt.queue_bound = 32;
  const ModelHandle grid = engine.load("grid", grid_nl, grid_opt);
  // Loading the same netlist again is free: the program cache fingerprints
  // (netlist, options) and returns the compiled artifact. Concurrent loads of
  // DISTINCT netlists compile in parallel (see Engine::load_async).
  const ModelHandle replica = engine.load("adder4-replica", adder_nl);
  std::cout << "cache: " << engine.cache_stats().hits << " hit(s), "
            << engine.cache_stats().misses << " miss(es); "
            << engine.num_models() << " models loaded\n";

  // Fire a few adds as independent single-sample requests. The batcher packs
  // them into one 16-lane datapath word; the engine answers futures.
  const auto encode = [](unsigned av, unsigned bv) {
    std::vector<bool> bits(8);
    for (int i = 0; i < 4; ++i) bits[static_cast<std::size_t>(i)] = (av >> i) & 1;
    for (int i = 0; i < 4; ++i) bits[static_cast<std::size_t>(4 + i)] = (bv >> i) & 1;
    return bits;
  };
  const auto decode = [](const std::vector<bool>& out) {
    unsigned v = 0;
    for (std::size_t i = 0; i < out.size(); ++i) v |= (out[i] ? 1u : 0u) << i;
    return v;
  };

  std::vector<std::future<std::vector<bool>>> futs;
  for (unsigned av = 0; av < 4; ++av) {
    for (unsigned bv = 0; bv < 4; ++bv) {
      futs.push_back(engine.submit(adder, encode(3 * av + 1, 2 * bv + 5)));
    }
  }
  // Background traffic on the second model, via the non-blocking path: a full
  // queue surfaces as a status, never as an unbounded backlog.
  unsigned grid_accepted = 0;
  for (int i = 0; i < 48; ++i) {
    std::future<std::vector<bool>> fut;
    const SubmitStatus st = engine.try_submit(
        grid, std::vector<bool>(grid_nl.num_inputs(), i % 2 != 0), &fut);
    if (st == SubmitStatus::kAccepted) {
      ++grid_accepted;
      futs.push_back(std::move(fut));
    } else {
      std::cout << "grid admission: " << to_string(st) << " at request " << i
                << "\n";
      break;
    }
  }

  std::size_t i = 0;
  for (unsigned av = 0; av < 4; ++av) {
    for (unsigned bv = 0; bv < 4; ++bv) {
      const unsigned sum = decode(futs[i++].get());
      std::cout << 3 * av + 1 << " + " << 2 * bv + 5 << " = " << sum << "\n";
    }
  }

  // Mid-run promotion: the traffic above was served while native codegen ran
  // in the background; wait for the promotion fence, then serve a second
  // wave on the compiled artifact. The by-backend line in the summary shows
  // both eras.
  if (engine.aot_enabled()) {
    engine.wait_aot_ready();
    std::vector<std::future<std::vector<bool>>> wave2;
    for (unsigned av = 0; av < 4; ++av) {
      for (unsigned bv = 0; bv < 4; ++bv) {
        wave2.push_back(engine.submit(adder, encode(av, bv)));
      }
    }
    for (auto& f : wave2) f.get();
    std::cout << "(aot artifacts promoted; second wave served native)\n";
  }

  // SLO-aware admission: a deadline the queue can no longer meet is refused
  // up front (kDeadlineUnmeetable) instead of wasting a lane, and a request
  // that expires while queued fails fast with DeadlineExceeded. Here the
  // deadline is already in the past, so the shed is deterministic.
  std::future<std::vector<bool>> doomed;
  const SubmitStatus doomed_st = engine.try_submit(
      adder, encode(1, 2), &doomed,
      engine.clock().now() - std::chrono::microseconds(1));
  std::cout << "submit with an already-missed deadline -> "
            << to_string(doomed_st) << "\n";

  engine.drain();
  const ServeReport rep = engine.report();
  std::cout << "\nserved " << rep.requests << " requests in " << rep.batches
            << " batch(es), lane occupancy "
            << static_cast<int>(rep.lane_occupancy * 100) << "%\n";
  std::cout << "latency p50 <= " << rep.p50_latency_us << " us, p99 <= "
            << rep.p99_latency_us << " us\n";
  std::cout << "goodput " << static_cast<long long>(rep.goodput_per_sec)
            << " on-deadline req/s (" << rep.deadline_met << " met, "
            << rep.shed << " shed at admission, " << rep.expired
            << " expired in queue)\n";
  std::cout << "member work items " << rep.member_runs << " (" << rep.steals
            << " stolen by idle workers), straggler gap p99 <= "
            << rep.straggler_gap_p99_us << " us\n";
  const auto& by = rep.member_runs_by_backend;
  std::cout << "member runs by backend: " << by[0] << " scalar / " << by[1]
            << " sliced / " << by[2] << " aot / " << by[3]
            << " aot-threaded\n";
  if (engine.aot_enabled()) {
    const CacheStats cs = engine.cache_stats();
    std::cout << "aot: " << cs.native_compiles << " native compile(s), "
              << cs.native_disk_hits << " disk hit(s), " << cs.native_failures
              << " failure(s); artifacts in " << engine.artifact_dir() << "\n";
  }
  std::cout << "hedges " << rep.hedges_launched << " launched, "
            << rep.hedge_wins << " won, " << rep.hedge_wasted_us
            << " us discarded\n";
  std::cout << "simulated " << rep.sim.clock_cycles << " LPU clock cycles, "
            << rep.sim.lpe_computes << " LPE computes\n";
  // Where did the latency go? The same lifecycle stamps the trace records,
  // folded into per-phase histograms (submit->seal->dispatch->done->settled).
  const auto phase_row = [](const char* name, const PhaseStats& p) {
    std::cout << "  " << std::left << std::setw(14) << name << "p50 <= "
              << std::setw(8) << p.p50_us << "p99 <= " << std::setw(8)
              << p.p99_us << "(" << p.count << " samples)\n";
  };
  std::cout << "latency phases (us):\n";
  phase_row("assembly-wait", rep.phases.assembly_wait);
  phase_row("queue-wait", rep.phases.queue_wait);
  phase_row("execution", rep.phases.execution);
  phase_row("finalize", rep.phases.finalize);

  // Per-model breakdown: the weighted scheduler's fairness and each model's
  // SLO outcomes are observable.
  std::cout << "\n" << std::left << std::setw(16) << "model" << std::right
            << std::setw(7) << "weight" << std::setw(7) << "bound"
            << std::setw(9) << "reqs" << std::setw(9) << "p50us"
            << std::setw(9) << "p99us" << std::setw(7) << "occ%"
            << std::setw(7) << "q-hwm" << std::setw(6) << "shed"
            << std::setw(6) << "expd" << std::setw(10) << "goodput/s" << "\n";
  for (const ModelReport& m : rep.per_model) {
    std::cout << std::left << std::setw(16) << m.name << std::right
              << std::setw(7) << m.weight << std::setw(7) << m.queue_bound
              << std::setw(9) << m.requests << std::setw(9) << m.p50_latency_us
              << std::setw(9) << m.p99_latency_us << std::setw(7)
              << static_cast<int>(m.lane_occupancy * 100) << std::setw(7)
              << m.queue_depth_hwm << std::setw(6) << m.shed << std::setw(6)
              << m.expired << std::setw(10)
              << static_cast<long long>(m.goodput_per_sec) << "\n";
  }

  // Lifecycle: unload drains, releases the cache pin, shrinks the registry.
  engine.unload(grid);
  engine.unload(replica);
  std::cout << "\nafter unload: " << engine.num_models()
            << " model(s) loaded, cache evictions "
            << engine.cache_stats().evictions << ", stale-handle submit -> ";
  std::future<std::vector<bool>> stale;
  std::cout << to_string(engine.try_submit(
                   grid, std::vector<bool>(grid_nl.num_inputs()), &stale))
            << "\n";

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    engine.export_trace(os);
    std::cout << "\nwrote Chrome trace to " << trace_path
              << " (open in chrome://tracing or Perfetto; dropped events: "
              << engine.trace_dropped() << ")\n";
  }
  if (print_prometheus) {
    std::cout << "\n--- prometheus ---\n" << engine.metrics_prometheus();
  }
  if (print_metrics_json) {
    std::cout << "\n--- metrics json ---\n" << engine.metrics_json() << "\n";
  }
  return 0;
}
