// Serving quickstart: register models with the batched multi-threaded
// engine, fire async single-sample requests at them, and read the serving
// stats. Contrast with examples/quickstart.cpp, which drives one
// LpuSimulator synchronously with hand-packed words — here the runtime does
// the packing, batching, and dispatch.
//
//   $ ./serve_demo

#include <iostream>
#include <vector>

#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::runtime;

  // A 4-bit ripple-carry adder as the served model.
  Netlist nl;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  NodeId carry = kInvalidNode;
  for (int i = 0; i < 4; ++i) {
    const NodeId axb = nl.add_gate(GateOp::kXor, a[i], b[i]);
    if (carry == kInvalidNode) {
      nl.add_output(axb, "s" + std::to_string(i));
      carry = nl.add_gate(GateOp::kAnd, a[i], b[i]);
    } else {
      nl.add_output(nl.add_gate(GateOp::kXor, axb, carry), "s" + std::to_string(i));
      const NodeId t1 = nl.add_gate(GateOp::kAnd, a[i], b[i]);
      const NodeId t2 = nl.add_gate(GateOp::kAnd, carry, axb);
      carry = nl.add_gate(GateOp::kOr, t1, t2);
    }
  }
  nl.add_output(carry, "cout");

  EngineOptions opt;
  opt.num_workers = 4;
  opt.batch_timeout = std::chrono::microseconds(200);
  opt.compile.lpu.m = 8;
  opt.compile.lpu.n = 8;
  Engine engine(opt);

  const ModelId adder = engine.load_model("adder4", nl);
  // Loading the same netlist again is free: the program cache fingerprints
  // (netlist, options) and returns the compiled artifact.
  engine.load_model("adder4-replica", nl);
  std::cout << "cache: " << engine.cache_stats().hits << " hit(s), "
            << engine.cache_stats().misses << " miss(es)\n";

  // Fire a few adds as independent single-sample requests. The batcher packs
  // them into one 16-lane datapath word; the engine answers futures.
  const auto encode = [](unsigned av, unsigned bv) {
    std::vector<bool> bits(8);
    for (int i = 0; i < 4; ++i) bits[static_cast<std::size_t>(i)] = (av >> i) & 1;
    for (int i = 0; i < 4; ++i) bits[static_cast<std::size_t>(4 + i)] = (bv >> i) & 1;
    return bits;
  };
  const auto decode = [](const std::vector<bool>& out) {
    unsigned v = 0;
    for (std::size_t i = 0; i < out.size(); ++i) v |= (out[i] ? 1u : 0u) << i;
    return v;
  };

  std::vector<std::future<std::vector<bool>>> futs;
  for (unsigned av = 0; av < 4; ++av) {
    for (unsigned bv = 0; bv < 4; ++bv) {
      futs.push_back(engine.submit(adder, encode(3 * av + 1, 2 * bv + 5)));
    }
  }
  std::size_t i = 0;
  for (unsigned av = 0; av < 4; ++av) {
    for (unsigned bv = 0; bv < 4; ++bv) {
      const unsigned sum = decode(futs[i++].get());
      std::cout << 3 * av + 1 << " + " << 2 * bv + 5 << " = " << sum << "\n";
    }
  }

  engine.drain();
  const ServeReport rep = engine.report();
  std::cout << "\nserved " << rep.requests << " requests in " << rep.batches
            << " batch(es), lane occupancy "
            << static_cast<int>(rep.lane_occupancy * 100) << "%\n";
  std::cout << "latency p50 <= " << rep.p50_latency_us << " us, p99 <= "
            << rep.p99_latency_us << " us\n";
  std::cout << "simulated " << rep.sim.clock_cycles << " LPU clock cycles, "
            << rep.sim.lpe_computes << " LPE computes\n";
  return 0;
}
