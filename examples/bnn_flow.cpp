// End-to-end logic-based neural network inference, the scenario the paper's
// introduction motivates: train a binarized NN, export it as fixed-function
// combinational logic (the NullaNet step), compile that FFCL onto the LPU,
// and classify on the simulated hardware.
//
//   $ ./bnn_flow

#include <iostream>

#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/stats.hpp"
#include "nn/dataset.hpp"
#include "nn/logic_export.hpp"
#include "nn/train.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::nn;

  // 1. Synthetic binary classification data and a tiny BNN.
  Rng rng(7);
  const Dataset train_set = make_blobs(16, 2, 80, 0.08, rng);
  const Dataset test_set = make_blobs(16, 2, 40, 0.08, rng);

  TrainOptions topt;
  topt.epochs = 30;
  topt.seed = 5;
  const TrainResult trained = train_bnn(train_set, {16, 10, 2}, topt);
  std::cout << "trained 16-10-2 BNN: train accuracy "
            << trained.train_accuracy * 100 << "%, test accuracy "
            << accuracy(trained.model, test_set) * 100 << "%\n";

  // 2. NullaNet step: the network as fixed-function combinational logic.
  const Netlist ffcl = model_to_netlist(trained.model);
  std::cout << "exported FFCL: " << compute_stats(ffcl) << "\n";

  // 3. Compile for the LPU and simulate.
  CompileOptions copt;
  copt.lpu.m = 16;
  copt.lpu.n = 8;
  const CompileResult res = compile(ffcl, copt);
  std::cout << "compiled: " << res.report.mfgs_after_merge << " MFGs, "
            << res.report.wavefronts << " wavefronts, " << res.report.bands
            << " pass(es); steady-state "
            << res.program.samples_per_second() << " inferences/sec\n";

  // 4. Batch the test set through the word lanes.
  LpuSimulator sim(res.program);
  const std::size_t lanes = res.program.cfg.effective_word_width();
  std::size_t match = 0;
  std::size_t correct = 0;
  std::size_t done = 0;
  for (std::size_t base = 0; base < test_set.size(); base += lanes) {
    const std::size_t count = std::min(lanes, test_set.size() - base);
    std::vector<BitVec> words(16, BitVec(lanes));
    for (std::size_t s = 0; s < count; ++s) {
      for (std::size_t i = 0; i < 16; ++i) {
        words[i].set(s, test_set.samples[base + s][i]);
      }
    }
    const auto out = sim.run(words);
    for (std::size_t s = 0; s < count; ++s) {
      // The LPU computes the thresholded outputs; class = index of the hot
      // output (ties resolve to class 0 like the integer model's argmax).
      const bool y0 = out[0].get(s);
      const bool y1 = out[1].get(s);
      const std::size_t lpu_class = (y1 && !y0) ? 1 : 0;
      const auto sw = trained.model.forward(test_set.samples[base + s]);
      const std::size_t sw_class = (sw[1] && !sw[0]) ? 1 : 0;
      match += (lpu_class == sw_class) ? 1 : 0;
      correct += (lpu_class == test_set.labels[base + s]) ? 1 : 0;
      ++done;
    }
  }
  std::cout << "LPU vs software inference agreement: " << match << "/" << done
            << "\n";
  std::cout << "LPU test accuracy: " << 100.0 * static_cast<double>(correct) /
                                            static_cast<double>(done)
            << "%\n";
  return match == done ? 0 : 1;
}
