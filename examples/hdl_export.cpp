// The back end of Fig. 1: compile an FFCL block and emit the deployment
// artifacts — the configuration file (reloadable program), the per-LPV
// instruction-queue hex images, and an HDL testbench skeleton. Also
// demonstrates the multi-LPU assemblies of Sec. III.
//
//   $ ./hdl_export out_dir/

#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/compiler.hpp"
#include "core/serialize.hpp"
#include "lpu/multi_lpu.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "verilog/parser.hpp"

namespace {

constexpr const char* kBlock = R"(
module popcount3ge2(x, y);
  input [2:0] x;
  output y;
  wire ab, ac, bc, t;
  and g0(ab, x[0], x[1]);
  and g1(ac, x[0], x[2]);
  and g2(bc, x[1], x[2]);
  or  g3(t, ab, ac);
  or  g4(y, t, bc);
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace lbnn;

  const std::filesystem::path dir = argc > 1 ? argv[1] : "hdl_out";
  std::filesystem::create_directories(dir);

  const auto mod = verilog::parse_module(kBlock);
  CompileOptions opt;
  opt.lpu.m = 4;
  opt.lpu.n = 4;
  const CompileResult res = compile(mod.netlist, opt);

  // 1. Configuration file (round-trips through read_program).
  {
    std::ofstream f(dir / "program.lpucfg");
    write_program(f, res.program);
  }
  // 2. Instruction-queue images.
  {
    std::ofstream f(dir / "queues.hex");
    f << emit_hex_images(res.program);
  }
  // 3. Testbench skeleton.
  {
    std::ofstream f(dir / "tb.v");
    f << emit_testbench(res.program, mod.name);
  }
  std::cout << "wrote " << dir / "program.lpucfg" << ", " << dir / "queues.hex"
            << ", " << dir / "tb.v" << "\n";

  // 4. Reload the configuration file and check it still simulates correctly.
  std::ifstream f(dir / "program.lpucfg");
  const Program reloaded = read_program(f);
  LpuSimulator sim(reloaded);
  Rng rng(1);
  const auto in = random_inputs(mod.netlist, 16, rng);
  const bool ok = sim.run(in) == simulate(mod.netlist, in);
  std::cout << "reloaded program verifies: " << (ok ? "yes" : "NO") << "\n";

  // 5. Multi-LPU assemblies (Sec. III) on a wider network.
  Rng gen(2);
  const Netlist wide = reconvergent_grid(12, 6, gen);
  const auto p1 = compile_parallel(wide, opt, 1);
  const auto p4 = compile_parallel(wide, opt, 4);
  std::cout << "parallel assembly on a 12x6 grid: 1 LPU interval = "
            << p1.steady_state_interval_cycles() << " cycles, 4 LPUs = "
            << p4.steady_state_interval_cycles() << " cycles ("
            << static_cast<double>(p1.steady_state_interval_cycles()) /
                   static_cast<double>(p4.steady_state_interval_cycles())
            << "x)\n";
  return ok ? 0 : 1;
}
