// Quickstart: build a small FFCL block with the Netlist API, compile it for
// an LPU, run the cycle-level simulator, and check the result against the
// reference netlist simulator.
//
//   $ ./quickstart

#include <iostream>

#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/simulate.hpp"
#include "netlist/stats.hpp"

int main() {
  using namespace lbnn;

  // 1. Describe the combinational function: a 4-bit ripple-carry adder.
  Netlist nl;
  std::vector<NodeId> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  NodeId carry = kInvalidNode;
  for (int i = 0; i < 4; ++i) {
    const NodeId axb = nl.add_gate(GateOp::kXor, a[i], b[i]);
    if (carry == kInvalidNode) {
      nl.add_output(axb, "s" + std::to_string(i));
      carry = nl.add_gate(GateOp::kAnd, a[i], b[i]);
    } else {
      nl.add_output(nl.add_gate(GateOp::kXor, axb, carry), "s" + std::to_string(i));
      const NodeId t1 = nl.add_gate(GateOp::kAnd, a[i], b[i]);
      const NodeId t2 = nl.add_gate(GateOp::kAnd, carry, axb);
      carry = nl.add_gate(GateOp::kOr, t1, t2);
    }
  }
  nl.add_output(carry, "cout");
  std::cout << "input netlist: " << compute_stats(nl) << "\n";

  // 2. Compile for a small LPU (8 LPEs per LPV, 8 LPVs).
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  std::cout << "compiled: " << res.report.mfgs_after_merge << " MFGs ("
            << res.report.mfgs_before_merge << " before merging), "
            << res.report.wavefronts << " wavefronts, "
            << res.report.bands << " pass(es), Lmax = " << res.report.lmax
            << "\n";
  std::cout << "latency: " << res.program.clock_cycles() << " clock cycles; "
            << "steady-state throughput: " << res.program.samples_per_second()
            << " adds/sec at " << res.program.cfg.clock_mhz << " MHz\n";

  // 3. Run one batch (every bit lane of the word is an independent add).
  Rng rng(1);
  const auto inputs = random_inputs(nl, res.program.cfg.effective_word_width(), rng);
  LpuSimulator sim(res.program);
  const auto lpu_out = sim.run(inputs);
  const auto ref_out = simulate(nl, inputs);
  std::cout << "LPU outputs match the reference simulator: "
            << (lpu_out == ref_out ? "yes" : "NO") << "\n";
  std::cout << "LPE utilization: " << sim.counters().lpe_utilization << "\n";

  // 4. Decode lane 0 as integers.
  const auto word_at = [&](const std::vector<BitVec>& vs, int lo, int count) {
    unsigned v = 0;
    for (int i = 0; i < count; ++i) {
      if (vs[static_cast<std::size_t>(lo + i)].get(0)) v |= 1u << i;
    }
    return v;
  };
  const unsigned av = word_at(inputs, 0, 4);
  const unsigned bv = word_at(inputs, 4, 4);
  const unsigned sv = word_at(lpu_out, 0, 5);
  std::cout << "lane 0: " << av << " + " << bv << " = " << sv << "\n";
  return lpu_out == ref_out ? 0 : 1;
}
