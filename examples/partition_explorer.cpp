// Visualize the partitioning and scheduling machinery of Sec. V: partition a
// network into MFGs, merge them, schedule, and print the LPV x memLoc
// time-space diagram in the style of the paper's Fig. 5.
//
//   $ ./partition_explorer

#include <iomanip>
#include <iostream>

#include "common/error.hpp"
#include "core/mfg.hpp"
#include "core/schedule.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/stats.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

int main() {
  using namespace lbnn;

  Rng rng(11);
  Netlist nl = reconvergent_grid(10, 7, rng);
  nl = optimize(nl);
  nl = tech_map(nl, CellLibrary::lut4_full());
  nl = eliminate_dead(nl);
  nl = balance_paths(nl, 7);  // pad outputs to the last LPV of one pass
  std::cout << "network: " << compute_stats(nl) << "\n\n";

  PartitionOptions popt;
  popt.m = 6;
  popt.band = 8;
  MfgForest forest = partition(nl, popt);
  std::cout << "partitioned into " << forest.num_alive() << " MFGs:\n";
  const std::size_t merges = merge_mfgs(forest, popt.m);
  std::cout << "merging performed " << merges << " merges -> "
            << forest.num_alive() << " MFGs\n\n";

  const auto label = [](std::size_t i) {
    std::string s;
    s.push_back(static_cast<char>('A' + i % 26));
    if (i >= 26) s += std::to_string(i / 26);
    return s;
  };

  {
    std::size_t i = 0;
    for (const MfgId id : forest.alive_ids()) {
      const Mfg& g = forest.at(id);
      std::cout << "  MFG " << label(i++) << ": levels [" << g.bottom << ", "
                << g.top << "], nodes " << g.num_nodes() << ", width "
                << g.max_width() << ", inputs " << g.external_inputs.size()
                << "\n";
    }
  }

  LpuConfig cfg;
  cfg.m = 6;
  cfg.n = 8;
  // Shared scheduling first; fall back to per-consumer duplication when
  // snapshot parking would overflow the m lanes (the compiler's ladder).
  Schedule sched = [&] {
    try {
      return build_schedule(forest, cfg, SharingMode::kShared);
    } catch (const CompileError&) {
      std::cout << "(shared scheduling exceeded the snapshot lanes; "
                   "recomputing shared MFGs per consumer)\n";
      return build_schedule(forest, cfg, SharingMode::kTree);
    }
  }();

  // Map alive MFG ids to letters for the diagram.
  std::vector<std::string> name_of(forest.size());
  {
    std::size_t i = 0;
    for (const MfgId id : forest.alive_ids()) name_of[id] = label(i++);
  }

  std::cout << "\ntime-space diagram (rows = LPVs, columns = memLocs; cf. Fig. 5):\n\n";
  std::cout << "      ";
  for (std::size_t w = 0; w < sched.wavefronts.size(); ++w) {
    std::cout << std::setw(4) << ("C" + std::to_string(w));
  }
  std::cout << "\n";
  for (std::uint32_t lpv = 0; lpv < cfg.n; ++lpv) {
    std::cout << "LPV" << std::setw(2) << lpv << " ";
    for (std::size_t w = 0; w < sched.wavefronts.size(); ++w) {
      std::string cell = ".";
      for (const std::uint32_t ii : sched.wavefronts[w]) {
        const MfgInstance& inst = sched.instances[ii];
        const Mfg& g = forest.at(inst.mfg);
        const std::uint32_t band = static_cast<std::uint32_t>(g.bottom) / cfg.n;
        const std::uint32_t lo = static_cast<std::uint32_t>(g.bottom) - band * cfg.n;
        const std::uint32_t hi = static_cast<std::uint32_t>(g.top) - band * cfg.n;
        if (lpv >= lo && lpv <= hi) {
          const Level level = g.bottom + static_cast<Level>(lpv - lo);
          cell = name_of[inst.mfg] + std::to_string(level - g.bottom + 1);
        }
      }
      std::cout << std::setw(4) << cell;
    }
    std::cout << "\n";
  }
  std::cout << "\nstats: " << sched.stats.wavefronts << " wavefronts, "
            << sched.stats.chained_mfgs << " chained MFGs (memLoc sharing), "
            << sched.stats.bands << " band(s), " << sched.stats.bubbles
            << " bubbles\n";
  return 0;
}
