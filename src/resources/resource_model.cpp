#include "resources/resource_model.hpp"

#include <algorithm>
#include <cmath>

namespace lbnn::resources {

ResourceEstimate estimate_lpu(const LpuConfig& cfg, const ResourceModelOptions& opt) {
  const double n = cfg.n;
  const double m = cfg.m;
  const double w = cfg.effective_word_width();
  const double log2m = std::log2(std::max(2.0, m));

  ResourceEstimate r;

  // ---- flip-flops -----------------------------------------------------------
  // Snapshot registers: two word-wide input registers per LPE.
  const double snapshot_ff = n * m * 2 * w;
  // Switch pipeline cuts: the tsw-stage fabric registers the m-source word
  // bus at a fraction of its cut points (coefficient calibrated to Table I).
  const double pipe_ff = 1.22 * n * m * w;
  // Per-LPE control/config registers plus queue pointers and the read
  // address shift register.
  const double ctrl_ff = 48.0 * n * m + 64.0 * n * cfg.tc();
  r.flip_flops = snapshot_ff + pipe_ff + ctrl_ff;

  // ---- LUTs -----------------------------------------------------------------
  // LPE logic units: one configurable 2-input function per datapath bit;
  // LUT6 fabric packs ~2 of them per LUT.
  const double lpe_lut = 0.5 * n * m * w;
  // Inter-LPV multicast fabric: word-sliced switch elements; element count
  // grows as m*log2(2m) per LPV (copy-then-permute construction), with a
  // packing coefficient calibrated to the prototype.
  const double switch_lut = 0.37 * n * m * w * (log2m + 1.0);
  // Queue addressing and buffer control.
  const double ctrl_lut = 24.0 * n * m;
  r.luts = lpe_lut + switch_lut + ctrl_lut;

  // ---- BRAM -----------------------------------------------------------------
  // Instruction queues: tc queues per LPV (one per pipeline stage, Fig. 6),
  // each depth x (instruction bits / tc). Instruction bits: 2m route fields
  // of (log2 m + 2) bits plus m LPE fields of 6 bits.
  const double instr_bits = 2 * m * (log2m + 2.0) + m * 6.0;
  const double queue_bits = n * opt.instruction_queue_depth * instr_bits;
  // Input/output data buffers (double-buffered words) incl. the feedback
  // region.
  const double buffer_bits = 3.0 * opt.data_buffer_depth * w * 2.0;
  r.bram_kb = (queue_bits + buffer_bits) / 1024.0;

  // ---- clock ----------------------------------------------------------------
  // The prototype closes 333 MHz at m = 64; wider LPVs deepen the switch
  // fabric per pipeline stage and derate the clock mildly.
  r.freq_mhz = 333.0 * std::min(1.0, std::pow(64.0 / m, 0.15));

  return r;
}

}  // namespace lbnn::resources
