#pragma once

#include <cstdint>

#include "core/lpu_config.hpp"

namespace lbnn::resources {

/// Xilinx VU9P device capacities (the paper's prototype target, available as
/// the AWS EC2 F1 instance).
struct Vu9pDevice {
  static constexpr double kFlipFlops = 2'364'480;
  static constexpr double kLuts = 1'182'240;
  static constexpr double kBramKb = 77'760;  // 2160 BRAM36 tiles
};

/// Analytic FPGA resource model of an LPU (reproduces the structure of
/// Table I). Component formulas scale with the architecture (snapshot
/// registers n*m*2*word, pipeline cuts, LPE LUT bit-slices, switch elements,
/// instruction queues n*tc*depth*width); the packing coefficients are
/// calibrated so the paper's configuration (m=64, n=16, tsw=5) lands on the
/// reported utilization — see EXPERIMENTS.md.
struct ResourceEstimate {
  double flip_flops = 0;
  double luts = 0;
  double bram_kb = 0;
  double freq_mhz = 0;

  double ff_pct() const { return 100.0 * flip_flops / Vu9pDevice::kFlipFlops; }
  double lut_pct() const { return 100.0 * luts / Vu9pDevice::kLuts; }
  double bram_pct() const { return 100.0 * bram_kb / Vu9pDevice::kBramKb; }
};

struct ResourceModelOptions {
  std::uint32_t instruction_queue_depth = 528;
  std::uint32_t data_buffer_depth = 512;
};

ResourceEstimate estimate_lpu(const LpuConfig& cfg,
                              const ResourceModelOptions& opt = {});

}  // namespace lbnn::resources
