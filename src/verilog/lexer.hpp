#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lbnn::verilog {

enum class TokKind {
  kIdent,       ///< identifier or keyword
  kNumber,      ///< plain decimal number
  kSizedConst,  ///< sized literal like 1'b0 / 4'b0101 (value bits in `text` after the base)
  kSymbol,      ///< single punctuation char: ( ) [ ] , ; = ~ & | ^ :
  kXnorOp,      ///< ~^ or ^~
  kEof,
};

struct Token {
  TokKind kind;
  std::string text;  ///< identifier text, number text, or symbol char
  int line = 1;
  int column = 1;

  bool is_symbol(char c) const { return kind == TokKind::kSymbol && text.size() == 1 && text[0] == c; }
  bool is_ident(std::string_view s) const { return kind == TokKind::kIdent && text == s; }
};

/// Tokenize Verilog source. Strips // and /* */ comments. Throws ParseError
/// on unrecognized characters.
std::vector<Token> lex(std::string_view source);

}  // namespace lbnn::verilog
