#include "verilog/writer.hpp"

#include <cctype>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace lbnn::verilog {
namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'p');
  }
  return out;
}

}  // namespace

std::string write_module(const Netlist& nl, const std::string& module_name) {
  // Unique, sanitized port names.
  std::unordered_set<std::string> used;
  const auto unique_name = [&used](std::string base) {
    std::string name = base;
    int suffix = 1;
    while (!used.insert(name).second) {
      name = base + "_" + std::to_string(suffix++);
    }
    return name;
  };

  std::vector<std::string> in_names(nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    in_names[i] = unique_name(sanitize(nl.input_name(i)));
  }
  std::vector<std::string> out_names(nl.num_outputs());
  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    out_names[i] = unique_name(sanitize(nl.output_name(i)));
  }

  std::ostringstream os;
  os << "module " << sanitize(module_name) << "(";
  bool first = true;
  for (const auto& n : in_names) {
    os << (first ? "" : ", ") << n;
    first = false;
  }
  for (const auto& n : out_names) {
    os << (first ? "" : ", ") << n;
    first = false;
  }
  os << ");\n";
  for (const auto& n : in_names) os << "  input " << n << ";\n";
  for (const auto& n : out_names) os << "  output " << n << ";\n";

  // Every non-input node gets an internal wire n<id>; inputs use port names.
  std::vector<std::string> wire(nl.num_nodes());
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (nl.op(id) == GateOp::kInput) {
      wire[id] = in_names[static_cast<std::size_t>(nl.input_index(id))];
    } else {
      wire[id] = "n" + std::to_string(id);
      os << "  wire " << wire[id] << ";\n";
    }
  }

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    switch (nl.op(id)) {
      case GateOp::kInput:
        break;
      case GateOp::kConst0:
        os << "  assign " << wire[id] << " = 1'b0;\n";
        break;
      case GateOp::kConst1:
        os << "  assign " << wire[id] << " = 1'b1;\n";
        break;
      case GateOp::kBuf:
      case GateOp::kNot:
        os << "  " << gate_name(nl.op(id)) << " g" << id << "(" << wire[id]
           << ", " << wire[nl.fanin0(id)] << ");\n";
        break;
      default:
        os << "  " << gate_name(nl.op(id)) << " g" << id << "(" << wire[id]
           << ", " << wire[nl.fanin0(id)] << ", " << wire[nl.fanin1(id)] << ");\n";
        break;
    }
  }

  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    const NodeId src = nl.outputs()[i];
    // Outputs are separate nets fed by buf so that a node driving several
    // outputs (or an input feeding an output directly) stays legal Verilog.
    os << "  buf ob" << i << "(" << out_names[i] << ", " << wire[src] << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace lbnn::verilog
