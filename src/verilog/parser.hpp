#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace lbnn::verilog {

/// Result of parsing one Verilog module.
struct ParsedModule {
  std::string name;
  Netlist netlist;
};

/// Parse a gate-level / dataflow Verilog module (the FFCL input format of the
/// flow, Fig. 1).
///
/// Supported subset — what NullaNet/ABC-style netlist dumps use:
///   * one `module ... endmodule` with plain or ANSI port lists
///   * `input`/`output`/`wire` declarations, scalar or `[msb:lsb]` vectors
///   * gate primitives: and/nand/or/nor/xor/xnor (n-ary), not/buf (2-port),
///     with or without instance names
///   * `assign lhs = expr;` with ~ & ^ ~^ | operators, parentheses,
///     bit-selects and 1-bit literals (1'b0/1'b1/0/1)
///
/// Vector nets must be referenced bit-by-bit (`b[2]`). Names of vector bits
/// appear in the netlist as `b[2]`. Combinational cycles, multiple drivers,
/// and undriven non-input nets are rejected with ParseError.
ParsedModule parse_module(std::string_view source);

}  // namespace lbnn::verilog
