#include "verilog/parser.hpp"

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "verilog/lexer.hpp"

namespace lbnn::verilog {
namespace {

enum class NetKind { kInput, kOutput, kWire };

/// One declared signal (scalar or vector). Vector bits are net indices
/// bit[i] for the value at index lsb+i.
struct Signal {
  NetKind kind = NetKind::kWire;
  int msb = -1;  ///< -1 for scalar
  int lsb = -1;
  std::vector<int> bit_nets;
  int decl_order = 0;
};

/// Driver expression for a single-bit net.
struct Expr {
  enum class Kind { kRef, kConst, kOp };
  Kind kind = Kind::kConst;
  int net = -1;                 // kRef
  bool value = false;           // kConst
  GateOp op = GateOp::kBuf;     // kOp (n-ary for commutative ops)
  std::vector<Expr> args;

  static Expr ref(int n) {
    Expr e;
    e.kind = Kind::kRef;
    e.net = n;
    return e;
  }
  static Expr constant(bool v) {
    Expr e;
    e.kind = Kind::kConst;
    e.value = v;
    return e;
  }
  static Expr make_op(GateOp o, std::vector<Expr> a) {
    Expr e;
    e.kind = Kind::kOp;
    e.op = o;
    e.args = std::move(a);
    return e;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(lex(source)) {}

  ParsedModule run() {
    parse_module_header();
    while (!peek().is_ident("endmodule")) {
      parse_statement();
    }
    expect_ident("endmodule");
    return build();
  }

 private:
  // ---- token helpers -------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().column);
  }
  void expect_symbol(char c) {
    if (!peek().is_symbol(c)) fail(std::string("expected '") + c + "'");
    take();
  }
  void expect_ident(std::string_view s) {
    if (!peek().is_ident(s)) fail("expected '" + std::string(s) + "'");
    take();
  }
  std::string expect_name() {
    if (peek().kind != TokKind::kIdent) fail("expected identifier");
    return take().text;
  }
  int expect_number() {
    if (peek().kind != TokKind::kNumber) fail("expected number");
    return std::stoi(take().text);
  }

  // ---- net table -----------------------------------------------------------
  int new_net() {
    drivers_.push_back(std::nullopt);
    return static_cast<int>(drivers_.size()) - 1;
  }

  Signal& declare(const std::string& name, NetKind kind, int msb, int lsb) {
    auto [it, inserted] = signals_.try_emplace(name);
    Signal& sig = it->second;
    if (inserted) {
      sig.kind = kind;
      sig.msb = msb;
      sig.lsb = lsb;
      sig.decl_order = next_decl_order_++;
      const int bits = (msb < 0) ? 1 : (msb - lsb + 1);
      for (int i = 0; i < bits; ++i) sig.bit_nets.push_back(new_net());
      if (kind != NetKind::kWire) port_decl_order_.push_back(name);
    } else {
      // Re-declaration: `output y;` after the port list, or `wire` + `output`.
      if (kind != NetKind::kWire && sig.kind == NetKind::kWire) {
        sig.kind = kind;
        port_decl_order_.push_back(name);
      } else if (kind != NetKind::kWire && sig.kind != kind) {
        fail("conflicting declaration of '" + name + "'");
      }
    }
    return sig;
  }

  /// Resolve `name` (with optional bit index) to a net id.
  int resolve_bit(const std::string& name, std::optional<int> index) {
    const auto it = signals_.find(name);
    if (it == signals_.end()) fail("undeclared signal '" + name + "'");
    const Signal& sig = it->second;
    if (sig.msb < 0) {
      if (index.has_value()) fail("bit-select on scalar '" + name + "'");
      return sig.bit_nets[0];
    }
    if (!index.has_value()) fail("vector '" + name + "' needs a bit-select");
    const int idx = *index;
    if (idx < sig.lsb || idx > sig.msb) fail("bit index out of range for '" + name + "'");
    return sig.bit_nets[static_cast<std::size_t>(idx - sig.lsb)];
  }

  void set_driver(int net, Expr e) {
    if (drivers_[static_cast<std::size_t>(net)].has_value()) fail("net has multiple drivers");
    drivers_[static_cast<std::size_t>(net)] = std::move(e);
  }

  // ---- grammar -------------------------------------------------------------
  void parse_module_header() {
    expect_ident("module");
    module_name_ = expect_name();
    if (peek().is_symbol('(')) {
      take();
      if (!peek().is_symbol(')')) {
        do {
          if (peek().is_ident("input") || peek().is_ident("output")) {
            // ANSI-style port declaration.
            const NetKind kind = peek().is_ident("input") ? NetKind::kInput : NetKind::kOutput;
            take();
            if (peek().is_ident("wire")) take();
            auto [msb, lsb] = parse_optional_range();
            declare(expect_name(), kind, msb, lsb);
          } else {
            // Plain name; direction comes from a later declaration.
            header_ports_.push_back(expect_name());
          }
        } while (peek().is_symbol(',') && (take(), true));
      }
      expect_symbol(')');
    }
    expect_symbol(';');
  }

  std::pair<int, int> parse_optional_range() {
    if (!peek().is_symbol('[')) return {-1, -1};
    take();
    const int msb = expect_number();
    expect_symbol(':');
    const int lsb = expect_number();
    expect_symbol(']');
    if (lsb > msb) fail("descending ranges [lsb:msb] are not supported");
    return {msb, lsb};
  }

  void parse_statement() {
    const Token& t = peek();
    if (t.is_ident("input") || t.is_ident("output") || t.is_ident("wire")) {
      parse_declaration();
    } else if (t.is_ident("assign")) {
      parse_assign();
    } else if (is_gate_keyword(t)) {
      parse_gate_instance();
    } else {
      fail("expected declaration, assign, or gate instance");
    }
  }

  void parse_declaration() {
    NetKind kind = NetKind::kWire;
    if (peek().is_ident("input")) kind = NetKind::kInput;
    else if (peek().is_ident("output")) kind = NetKind::kOutput;
    take();
    if (peek().is_ident("wire")) take();
    const auto [msb, lsb] = parse_optional_range();
    do {
      declare(expect_name(), kind, msb, lsb);
    } while (peek().is_symbol(',') && (take(), true));
    expect_symbol(';');
  }

  static bool is_gate_keyword(const Token& t) {
    return t.is_ident("and") || t.is_ident("nand") || t.is_ident("or") ||
           t.is_ident("nor") || t.is_ident("xor") || t.is_ident("xnor") ||
           t.is_ident("not") || t.is_ident("buf");
  }

  static GateOp gate_keyword_op(const std::string& s) {
    if (s == "and") return GateOp::kAnd;
    if (s == "nand") return GateOp::kNand;
    if (s == "or") return GateOp::kOr;
    if (s == "nor") return GateOp::kNor;
    if (s == "xor") return GateOp::kXor;
    if (s == "xnor") return GateOp::kXnor;
    if (s == "not") return GateOp::kNot;
    return GateOp::kBuf;
  }

  void parse_gate_instance() {
    const GateOp op = gate_keyword_op(take().text);
    if (peek().kind == TokKind::kIdent) take();  // optional instance name
    expect_symbol('(');
    // First operand is the output; parse all as terms, split after.
    std::vector<Expr> terms;
    std::vector<std::optional<int>> term_nets;
    do {
      // Port connections must be net references (no expressions).
      const std::string name = expect_name();
      std::optional<int> index;
      if (peek().is_symbol('[')) {
        take();
        index = expect_number();
        expect_symbol(']');
      }
      const int net = resolve_bit(name, index);
      terms.push_back(Expr::ref(net));
      term_nets.push_back(net);
    } while (peek().is_symbol(',') && (take(), true));
    expect_symbol(')');
    expect_symbol(';');

    if (terms.size() < 2) fail("gate instance needs an output and at least one input");
    const int out = *term_nets[0];
    std::vector<Expr> ins(terms.begin() + 1, terms.end());
    if (gate_arity(op) == 1) {
      if (ins.size() != 1) fail("not/buf takes exactly one input");
      set_driver(out, Expr::make_op(op, std::move(ins)));
    } else {
      if (ins.size() < 2) fail("binary gate needs at least two inputs");
      set_driver(out, Expr::make_op(op, std::move(ins)));
    }
  }

  void parse_assign() {
    expect_ident("assign");
    const std::string name = expect_name();
    std::optional<int> index;
    if (peek().is_symbol('[')) {
      take();
      index = expect_number();
      expect_symbol(']');
    }
    const int lhs = resolve_bit(name, index);
    expect_symbol('=');
    Expr rhs = parse_or_expr();
    expect_symbol(';');
    set_driver(lhs, std::move(rhs));
  }

  // Precedence (loosest to tightest): |  then ^/~^  then &  then unary ~.
  Expr parse_or_expr() {
    Expr e = parse_xor_expr();
    while (peek().is_symbol('|')) {
      take();
      Expr rhs = parse_xor_expr();
      e = Expr::make_op(GateOp::kOr, {std::move(e), std::move(rhs)});
    }
    return e;
  }

  Expr parse_xor_expr() {
    Expr e = parse_and_expr();
    while (peek().is_symbol('^') || peek().kind == TokKind::kXnorOp) {
      const bool is_xnor = take().kind == TokKind::kXnorOp;
      Expr rhs = parse_and_expr();
      e = Expr::make_op(is_xnor ? GateOp::kXnor : GateOp::kXor,
                        {std::move(e), std::move(rhs)});
    }
    return e;
  }

  Expr parse_and_expr() {
    Expr e = parse_unary();
    while (peek().is_symbol('&')) {
      take();
      Expr rhs = parse_unary();
      e = Expr::make_op(GateOp::kAnd, {std::move(e), std::move(rhs)});
    }
    return e;
  }

  Expr parse_unary() {
    if (peek().is_symbol('~')) {
      take();
      return Expr::make_op(GateOp::kNot, {parse_unary()});
    }
    return parse_primary();
  }

  Expr parse_primary() {
    if (peek().is_symbol('(')) {
      take();
      Expr e = parse_or_expr();
      expect_symbol(')');
      return e;
    }
    if (peek().kind == TokKind::kSizedConst) {
      return Expr::constant(decode_one_bit_literal(take()));
    }
    if (peek().kind == TokKind::kNumber) {
      const int v = expect_number();
      if (v != 0 && v != 1) fail("only 1-bit constants are supported in expressions");
      return Expr::constant(v == 1);
    }
    const std::string name = expect_name();
    std::optional<int> index;
    if (peek().is_symbol('[')) {
      take();
      index = expect_number();
      expect_symbol(']');
    }
    return Expr::ref(resolve_bit(name, index));
  }

  bool decode_one_bit_literal(const Token& t) {
    // Format: <size>'<base><digits>; we accept any literal whose value is 0/1.
    const auto quote = t.text.find('\'');
    LBNN_CHECK(quote != std::string::npos, "lexer produced bad sized literal");
    const std::string digits = t.text.substr(quote + 2);
    unsigned long value = 0;
    const char base = static_cast<char>(std::tolower(static_cast<unsigned char>(t.text[quote + 1])));
    try {
      value = std::stoul(digits, nullptr, base == 'b' ? 2 : base == 'h' ? 16 : 10);
    } catch (const std::exception&) {
      fail("bad literal '" + t.text + "'");
    }
    if (value > 1) fail("only 1-bit constants are supported in expressions");
    return value == 1;
  }

  // ---- netlist construction ------------------------------------------------
  ParsedModule build() {
    // Header ports declared by name only must have received a direction.
    for (const auto& p : header_ports_) {
      const auto it = signals_.find(p);
      if (it == signals_.end() || it->second.kind == NetKind::kWire) {
        fail("port '" + p + "' has no input/output declaration");
      }
    }

    Netlist nl;
    node_of_net_.assign(drivers_.size(), kInvalidNode);

    // Inputs first, in declaration order, bit by bit.
    for (const auto& name : port_decl_order_) {
      const Signal& sig = signals_.at(name);
      if (sig.kind != NetKind::kInput) continue;
      for (std::size_t i = 0; i < sig.bit_nets.size(); ++i) {
        node_of_net_[static_cast<std::size_t>(sig.bit_nets[i])] =
            nl.add_input(bit_name(name, sig, i));
      }
    }

    // Emit every driven net (dead logic included; DCE is an opt pass).
    visit_state_.assign(drivers_.size(), 0);
    for (std::size_t n = 0; n < drivers_.size(); ++n) {
      if (drivers_[n].has_value()) emit_net(nl, static_cast<int>(n));
    }

    // Outputs, in declaration order.
    for (const auto& name : port_decl_order_) {
      const Signal& sig = signals_.at(name);
      if (sig.kind != NetKind::kOutput) continue;
      for (std::size_t i = 0; i < sig.bit_nets.size(); ++i) {
        const NodeId node = node_of_net_[static_cast<std::size_t>(sig.bit_nets[i])];
        if (node == kInvalidNode) fail("output '" + bit_name(name, sig, i) + "' is never driven");
        nl.add_output(node, bit_name(name, sig, i));
      }
    }

    nl.validate();
    return ParsedModule{module_name_, std::move(nl)};
  }

  static std::string bit_name(const std::string& name, const Signal& sig, std::size_t i) {
    if (sig.msb < 0) return name;
    return name + "[" + std::to_string(sig.lsb + static_cast<int>(i)) + "]";
  }

  NodeId emit_net(Netlist& nl, int net) {
    NodeId& slot = node_of_net_[static_cast<std::size_t>(net)];
    if (slot != kInvalidNode) return slot;
    auto& state = visit_state_[static_cast<std::size_t>(net)];
    if (state == 1) fail("combinational cycle through a net");
    if (!drivers_[static_cast<std::size_t>(net)].has_value()) {
      fail("undriven net used as an operand");
    }
    state = 1;
    slot = emit_expr(nl, *drivers_[static_cast<std::size_t>(net)]);
    state = 2;
    return slot;
  }

  NodeId emit_expr(Netlist& nl, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kRef:
        return emit_net(nl, e.net);
      case Expr::Kind::kConst:
        return nl.add_gate(e.value ? GateOp::kConst1 : GateOp::kConst0);
      case Expr::Kind::kOp:
        break;
    }
    std::vector<NodeId> args;
    args.reserve(e.args.size());
    for (const Expr& a : e.args) args.push_back(emit_expr(nl, a));

    if (gate_arity(e.op) == 1) {
      return nl.add_gate(e.op, args[0]);
    }
    if (args.size() == 2) {
      return nl.add_gate(e.op, args[0], args[1]);
    }
    // N-ary gates: balanced reduction tree. NAND/NOR/XNOR reduce as the
    // non-complemented op with a final NOT, so nand(a,b,c) = ~(a&b&c).
    GateOp reduce_op = e.op;
    bool complement = false;
    if (e.op == GateOp::kNand) { reduce_op = GateOp::kAnd; complement = true; }
    if (e.op == GateOp::kNor) { reduce_op = GateOp::kOr; complement = true; }
    if (e.op == GateOp::kXnor) { reduce_op = GateOp::kXor; complement = true; }

    while (args.size() > 1) {
      std::vector<NodeId> next;
      next.reserve((args.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < args.size(); i += 2) {
        next.push_back(nl.add_gate(reduce_op, args[i], args[i + 1]));
      }
      if (args.size() % 2 == 1) next.push_back(args.back());
      args = std::move(next);
    }
    if (complement) {
      return nl.add_gate(GateOp::kNot, args[0]);
    }
    return args[0];
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::string module_name_;
  std::vector<std::string> header_ports_;
  std::map<std::string, Signal> signals_;
  std::vector<std::string> port_decl_order_;
  int next_decl_order_ = 0;
  std::vector<std::optional<Expr>> drivers_;
  std::vector<NodeId> node_of_net_;
  std::vector<std::uint8_t> visit_state_;
};

}  // namespace

ParsedModule parse_module(std::string_view source) {
  Parser p(source);
  return p.run();
}

}  // namespace lbnn::verilog
