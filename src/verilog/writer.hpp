#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace lbnn::verilog {

/// Emit a Netlist as a structural Verilog module using only gate primitives
/// (and a couple of constant assigns). Port names are sanitized to plain
/// identifiers (`b[2]` becomes `b_2_`), internal nets are named `n<id>`.
/// The output is parseable by parse_module, and the round trip preserves
/// semantics (tested).
std::string write_module(const Netlist& nl, const std::string& module_name);

}  // namespace lbnn::verilog
