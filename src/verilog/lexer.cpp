#include "verilog/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace lbnn::verilog {
namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$'; }

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      if (i + 1 >= src.size()) throw ParseError("unterminated block comment", line, col);
      advance(2);
      continue;
    }

    const int tok_line = line;
    const int tok_col = col;

    if (c == '\\') {
      // Escaped identifier: backslash up to whitespace.
      std::size_t j = i + 1;
      while (j < src.size() && !std::isspace(static_cast<unsigned char>(src[j]))) ++j;
      out.push_back({TokKind::kIdent, std::string(src.substr(i + 1, j - i - 1)), tok_line, tok_col});
      advance(j - i);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < src.size() && is_ident_char(src[j])) ++j;
      out.push_back({TokKind::kIdent, std::string(src.substr(i, j - i)), tok_line, tok_col});
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      // Sized literal?  <size>'<base><digits>
      if (j < src.size() && src[j] == '\'') {
        std::size_t k = j + 1;
        if (k >= src.size()) throw ParseError("truncated sized literal", tok_line, tok_col);
        const char base = static_cast<char>(std::tolower(static_cast<unsigned char>(src[k])));
        if (base != 'b' && base != 'd' && base != 'h') {
          throw ParseError("unsupported literal base", tok_line, tok_col);
        }
        ++k;
        std::size_t v = k;
        while (v < src.size() && (std::isalnum(static_cast<unsigned char>(src[v])) || src[v] == '_')) ++v;
        // Store "<size>'<base><digits>" verbatim; parser decodes.
        out.push_back({TokKind::kSizedConst, std::string(src.substr(i, v - i)), tok_line, tok_col});
        advance(v - i);
        continue;
      }
      out.push_back({TokKind::kNumber, std::string(src.substr(i, j - i)), tok_line, tok_col});
      advance(j - i);
      continue;
    }
    if ((c == '~' && i + 1 < src.size() && src[i + 1] == '^') ||
        (c == '^' && i + 1 < src.size() && src[i + 1] == '~')) {
      out.push_back({TokKind::kXnorOp, std::string(src.substr(i, 2)), tok_line, tok_col});
      advance(2);
      continue;
    }
    switch (c) {
      case '(': case ')': case '[': case ']': case ',': case ';': case '=':
      case '~': case '&': case '|': case '^': case ':':
        out.push_back({TokKind::kSymbol, std::string(1, c), tok_line, tok_col});
        advance(1);
        continue;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", tok_line, tok_col);
    }
  }
  out.push_back({TokKind::kEof, "", line, col});
  return out;
}

}  // namespace lbnn::verilog
