#pragma once

#include <cstdint>
#include <vector>

namespace lbnn::interconnect {

/// A logarithmic block-copy network over N = 2^k positions: log2(N) stages
/// where position p at stage s either passes its own value or copies from
/// position p - 2^s. Given values placed at the first position of contiguous
/// blocks, the network fills every block with its leading value — the copy
/// half of the copy-then-permute multicast construction.
class CopyNetwork {
 public:
  explicit CopyNetwork(std::uint32_t positions);

  std::uint32_t positions() const { return positions_; }
  std::uint32_t num_stages() const { return log2_; }
  std::uint64_t total_elements() const {
    return static_cast<std::uint64_t>(log2_) * positions_;
  }

  /// config[stage][position] = true means "copy from position - 2^stage".
  using Config = std::vector<std::vector<bool>>;

  /// Configure for contiguous blocks: block_of[p] = index of the block that
  /// position p belongs to (nondecreasing, each block contiguous). Every
  /// position then receives the value of its block's first position.
  Config route_blocks(const std::vector<std::uint32_t>& block_of) const;

  std::vector<std::uint32_t> apply(const Config& config,
                                   const std::vector<std::uint32_t>& in) const;

 private:
  std::uint32_t positions_;
  std::uint32_t log2_;
};

}  // namespace lbnn::interconnect
