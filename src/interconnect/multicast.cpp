#include "interconnect/multicast.hpp"

#include "common/bits.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn::interconnect {
namespace {

std::uint32_t pow2_ceil(std::uint32_t x) { return bit_ceil32(x); }

}  // namespace

MulticastSwitch::MulticastSwitch(std::uint32_t sources, std::uint32_t destinations)
    : sources_(sources),
      destinations_(destinations),
      ports_(pow2_ceil(std::max(std::max(sources, destinations), 2u))),
      place_(ports_),
      copy_(ports_),
      distribute_(ports_) {
  LBNN_CHECK(sources >= 1 && destinations >= 1, "degenerate switch");
}

MulticastSwitch::Config MulticastSwitch::route(
    const std::vector<std::int32_t>& src_of_dest) const {
  LBNN_CHECK(src_of_dest.size() == destinations_, "wrong assignment size");

  // Fanout per source.
  std::vector<std::uint32_t> fanout(sources_, 0);
  std::uint32_t driven = 0;
  for (const std::int32_t s : src_of_dest) {
    if (s < 0) continue;
    if (s >= static_cast<std::int32_t>(sources_)) throw Error("bad source lane");
    ++fanout[static_cast<std::uint32_t>(s)];
    ++driven;
  }
  LBNN_CHECK(driven <= ports_, "more destinations than ports");

  // Contiguous blocks for sources with demand, then idle filler blocks.
  std::vector<std::uint32_t> block_start(sources_, 0);
  std::vector<std::uint32_t> block_of(ports_, 0);
  std::vector<std::int32_t> place_dest(ports_, -1);
  std::uint32_t pos = 0;
  std::uint32_t block = 0;
  for (std::uint32_t s = 0; s < sources_; ++s) {
    if (fanout[s] == 0) continue;
    block_start[s] = pos;
    place_dest[s] = static_cast<std::int32_t>(pos);
    for (std::uint32_t t = 0; t < fanout[s]; ++t) block_of[pos++] = block;
    ++block;
  }
  for (std::uint32_t p = pos; p < ports_; ++p) block_of[p] = block++;

  // Distribute: position block_start[s] + t -> t-th destination of source s.
  std::vector<std::uint32_t> next_copy(block_start);
  std::vector<std::int32_t> dist_dest(ports_, -1);
  for (std::uint32_t d = 0; d < destinations_; ++d) {
    const std::int32_t s = src_of_dest[d];
    if (s < 0) continue;
    dist_dest[next_copy[static_cast<std::uint32_t>(s)]++] =
        static_cast<std::int32_t>(d);
  }

  Config cfg;
  cfg.place = place_.route(place_dest);
  cfg.copy = copy_.route_blocks(block_of);
  cfg.distribute = distribute_.route(dist_dest);
  return cfg;
}

std::vector<std::uint32_t> MulticastSwitch::apply(
    const Config& cfg, const std::vector<std::uint32_t>& src) const {
  LBNN_CHECK(src.size() == sources_, "wrong source count");
  std::vector<std::uint32_t> v(ports_, kIdle);
  for (std::uint32_t s = 0; s < sources_; ++s) v[s] = src[s];
  v = place_.apply(cfg.place, v);
  v = copy_.apply(cfg.copy, v);
  v = distribute_.apply(cfg.distribute, v);
  v.resize(destinations_, kIdle);
  return v;
}

std::size_t verify_program_routes(const Program& prog) {
  const std::uint32_t m = prog.cfg.m;
  const MulticastSwitch fabric(m, 2 * m);
  std::size_t checked = 0;
  for (std::uint32_t w = 0; w < prog.num_wavefronts; ++w) {
    for (std::uint32_t j = 0; j < prog.cfg.n; ++j) {
      const LpvInstr& instr = prog.instr[w][j];
      if (instr.routes.empty()) continue;
      std::vector<std::int32_t> assignment(2 * m, -1);
      bool any = false;
      for (const RouteWrite& r : instr.routes) {
        if (r.src.kind != SrcSel::Kind::kPrevLane) continue;
        LBNN_CHECK(assignment[r.slot] == -1, "slot written twice in one memLoc");
        assignment[r.slot] = static_cast<std::int32_t>(r.src.index);
        any = true;
      }
      if (!any) continue;
      const auto cfg = fabric.route(assignment);
      // Push the source lane indices through; destination d must receive
      // exactly assignment[d].
      std::vector<std::uint32_t> ids(m);
      for (std::uint32_t s = 0; s < m; ++s) ids[s] = s;
      const auto out = fabric.apply(cfg, ids);
      for (std::uint32_t d = 0; d < 2 * m; ++d) {
        if (assignment[d] < 0) continue;
        if (out[d] != static_cast<std::uint32_t>(assignment[d])) {
          throw Error("staged switch fabric disagrees with the route table");
        }
      }
      ++checked;
    }
  }
  return checked;
}

}  // namespace lbnn::interconnect
