#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "interconnect/benes.hpp"
#include "interconnect/copy_network.hpp"

namespace lbnn::interconnect {

/// The non-blocking multicast switch between adjacent LPVs (Sec. IV): m LPE
/// outputs fan out to 2m snapshot-register slots, any slot selecting any
/// source. Built as the standard copy-then-permute decomposition in the
/// spirit of Yang–Masson non-blocking broadcast networks [20]:
///
///   place (Beneš) -> block copy (log stages) -> distribute (Beneš)
///
/// `route` produces stage configurations for an arbitrary multicast
/// assignment; `apply` pushes values through the staged fabric so tests can
/// prove the functional route table of the simulator is realizable in
/// hardware.
class MulticastSwitch {
 public:
  MulticastSwitch(std::uint32_t sources, std::uint32_t destinations);

  struct Config {
    BenesNetwork::Config place;
    CopyNetwork::Config copy;
    BenesNetwork::Config distribute;
  };

  std::uint32_t sources() const { return sources_; }
  std::uint32_t destinations() const { return destinations_; }
  std::uint32_t ports() const { return ports_; }

  /// Logical switching stages before pipelining (the paper pipelines the
  /// fabric into tsw = 5 register stages).
  std::uint32_t logical_stages() const {
    return 2 * place_.num_stages() + copy_.num_stages();
  }
  std::uint64_t total_elements() const {
    return 2 * place_.total_elements() + copy_.total_elements();
  }

  /// src_of_dest[d] = source lane feeding destination slot d, or -1 when the
  /// slot is not driven this cycle.
  Config route(const std::vector<std::int32_t>& src_of_dest) const;

  /// Push one value per source through the staged fabric; returns one value
  /// per destination (undriven destinations return kIdle).
  static constexpr std::uint32_t kIdle = 0xFFFFFFFFu;
  std::vector<std::uint32_t> apply(const Config& cfg,
                                   const std::vector<std::uint32_t>& src) const;

 private:
  std::uint32_t sources_;
  std::uint32_t destinations_;
  std::uint32_t ports_;
  BenesNetwork place_;
  CopyNetwork copy_;
  BenesNetwork distribute_;
};

/// Prove every inter-LPV route configuration of a compiled program is
/// realizable on the staged fabric: for each (memLoc, LPV) instruction,
/// build the multicast assignment from its kPrevLane routes, route it, and
/// check the staged result. Returns the number of configurations checked;
/// throws lbnn::Error on any mismatch (which would mean the functional
/// switch model of the simulator is optimistic).
std::size_t verify_program_routes(const Program& prog);

}  // namespace lbnn::interconnect
