#include "interconnect/benes.hpp"

#include "common/bits.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn::interconnect {

BenesNetwork::BenesNetwork(std::uint32_t ports) : ports_(ports) {
  if (ports < 2 || (ports & (ports - 1)) != 0) {
    throw Error("Benes network needs a power-of-two port count >= 2");
  }
  log2_ = static_cast<std::uint32_t>(countr_zero32(ports));
}

BenesNetwork::Config BenesNetwork::route(
    const std::vector<std::int32_t>& dest_of) const {
  LBNN_CHECK(dest_of.size() == ports_, "wrong permutation size");
  // Complete the partial permutation: idle inputs get the unused outputs.
  std::vector<std::int32_t> perm(dest_of);
  std::vector<bool> used(ports_, false);
  for (const std::int32_t d : perm) {
    if (d < 0) continue;
    if (d >= static_cast<std::int32_t>(ports_) || used[static_cast<std::size_t>(d)]) {
      throw Error("invalid or duplicated destination in permutation");
    }
    used[static_cast<std::size_t>(d)] = true;
  }
  std::uint32_t next_free = 0;
  for (auto& d : perm) {
    if (d >= 0) continue;
    while (used[next_free]) ++next_free;
    d = static_cast<std::int32_t>(next_free);
    used[next_free] = true;
  }

  Config cfg(num_stages(), std::vector<bool>(elements_per_stage(), false));
  route_recursive(perm, 0, ports_, 0, cfg);
  return cfg;
}

void BenesNetwork::route_recursive(std::vector<std::int32_t>& perm,
                                   std::uint32_t lo, std::uint32_t size,
                                   std::uint32_t stage, Config& cfg) const {
  if (size == 2) {
    // Single middle-stage element.
    cfg[stage][lo / 2] = perm[0] == 1;
    return;
  }
  const std::uint32_t half = size / 2;
  const std::uint32_t out_stage = num_stages() - 1 - stage;

  // Inverse of the local permutation.
  std::vector<std::uint32_t> inv(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    inv[static_cast<std::uint32_t>(perm[i])] = i;
  }

  // Two-color the inputs (0 = routed through the upper subnetwork) with the
  // looping algorithm: the two inputs of a first-stage element must take
  // different subnetworks, and so must the two sources of a last-stage
  // element.
  std::vector<std::int8_t> color(size, -1);
  for (std::uint32_t seed = 0; seed < size; ++seed) {
    if (color[seed] != -1) continue;
    std::uint32_t i = seed;
    std::int8_t c = 0;
    for (;;) {
      color[i] = c;
      // Output partner constraint: the source of the sibling output takes
      // the other subnetwork.
      const std::uint32_t o = static_cast<std::uint32_t>(perm[i]);
      const std::uint32_t sib_src = inv[o ^ 1u];
      if (color[sib_src] == -1) color[sib_src] = static_cast<std::int8_t>(1 - c);
      // Input partner constraint continues the loop.
      const std::uint32_t next = sib_src ^ 1u;
      if (color[next] != -1) break;
      c = static_cast<std::int8_t>(1 - color[sib_src]);
      i = next;
    }
  }

  // First/last stage element settings and the two inner permutations.
  std::vector<std::int32_t> up(half), low(half);
  for (std::uint32_t a = 0; a < half; ++a) {
    const std::uint32_t i0 = 2 * a;
    LBNN_CHECK(color[i0] + color[i0 + 1] == 1, "looping produced a bad coloring");
    // Element is crossed when its even input goes to the lower subnetwork.
    cfg[stage][lo / 2 + a] = color[i0] == 1;
    const std::uint32_t up_in = color[i0] == 0 ? i0 : i0 + 1;
    up[a] = perm[up_in] / 2;
    low[a] = perm[up_in ^ 1u] / 2;
  }
  for (std::uint32_t b = 0; b < half; ++b) {
    const std::uint32_t src_even = inv[2 * b];
    // Element is crossed when output 2b is served by the lower subnetwork.
    cfg[out_stage][lo / 2 + b] = color[src_even] == 1;
  }

  route_recursive(up, lo, half, stage + 1, cfg);
  route_recursive(low, lo + half, half, stage + 1, cfg);
}

std::vector<std::uint32_t> BenesNetwork::apply(
    const Config& cfg, const std::vector<std::uint32_t>& in) const {
  LBNN_CHECK(in.size() == ports_, "wrong input size");
  LBNN_CHECK(cfg.size() == num_stages(), "wrong config size");

  // Recursive propagation mirroring the construction.
  std::vector<std::uint32_t> values(in);

  struct Rec {
    const BenesNetwork* net;
    const Config* cfg;
    std::vector<std::uint32_t>* values;
    void operator()(std::uint32_t lo, std::uint32_t size, std::uint32_t stage) const {
      auto& v = *values;
      if (size == 2) {
        if ((*cfg)[stage][lo / 2]) std::swap(v[lo], v[lo + 1]);
        return;
      }
      const std::uint32_t half = size / 2;
      const std::uint32_t out_stage = net->num_stages() - 1 - stage;
      // First stage: element a maps (lo+2a, lo+2a+1) -> (upper a, lower a).
      std::vector<std::uint32_t> tmp(size);
      for (std::uint32_t a = 0; a < half; ++a) {
        const bool crossed = (*cfg)[stage][lo / 2 + a];
        const std::uint32_t e = v[lo + 2 * a];
        const std::uint32_t o = v[lo + 2 * a + 1];
        tmp[a] = crossed ? o : e;
        tmp[half + a] = crossed ? e : o;
      }
      for (std::uint32_t i = 0; i < size; ++i) v[lo + i] = tmp[i];
      (*this)(lo, half, stage + 1);
      (*this)(lo + half, half, stage + 1);
      // Last stage: element b maps (upper b, lower b) -> (lo+2b, lo+2b+1).
      for (std::uint32_t b = 0; b < half; ++b) {
        const std::uint32_t u = v[lo + b];
        const std::uint32_t l = v[lo + half + b];
        const bool crossed = (*cfg)[out_stage][lo / 2 + b];
        tmp[2 * b] = crossed ? l : u;
        tmp[2 * b + 1] = crossed ? u : l;
      }
      for (std::uint32_t i = 0; i < size; ++i) v[lo + i] = tmp[i];
    }
  };
  Rec rec{this, &cfg, &values};
  rec(0, ports_, 0);
  return values;
}

}  // namespace lbnn::interconnect
