#pragma once

#include <cstdint>
#include <vector>

namespace lbnn::interconnect {

/// A Beneš rearrangeably non-blocking permutation network over N = 2^k ports
/// with 2k-1 stages of N/2 2x2 crossbar elements, routed with the classic
/// looping algorithm. This is the permutation half of the multicast switch
/// construction (Sec. IV cites Yang & Masson's non-blocking broadcast
/// networks [20]; copy-then-permute is their standard decomposition).
class BenesNetwork {
 public:
  /// `ports` must be a power of two >= 2.
  explicit BenesNetwork(std::uint32_t ports);

  std::uint32_t ports() const { return ports_; }
  std::uint32_t num_stages() const { return 2 * log2_ - 1; }
  std::uint32_t elements_per_stage() const { return ports_ / 2; }
  std::uint64_t total_elements() const {
    return static_cast<std::uint64_t>(num_stages()) * elements_per_stage();
  }

  /// Stage configurations: config[stage][element] = true means "crossed".
  using Config = std::vector<std::vector<bool>>;

  /// Route a (possibly partial) permutation: dest_of[input] = output port or
  /// -1 for idle inputs. Unused outputs are filled arbitrarily. Throws
  /// lbnn::Error when dest_of repeats an output.
  Config route(const std::vector<std::int32_t>& dest_of) const;

  /// Push port values through the configured network (for verification).
  std::vector<std::uint32_t> apply(const Config& config,
                                   const std::vector<std::uint32_t>& in) const;

 private:
  void route_recursive(std::vector<std::int32_t>& perm, std::uint32_t lo,
                       std::uint32_t size, std::uint32_t stage, Config& cfg) const;

  std::uint32_t ports_;
  std::uint32_t log2_;
};

}  // namespace lbnn::interconnect
