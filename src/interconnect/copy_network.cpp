#include "interconnect/copy_network.hpp"

#include "common/bits.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn::interconnect {

CopyNetwork::CopyNetwork(std::uint32_t positions) : positions_(positions) {
  if (positions < 2 || (positions & (positions - 1)) != 0) {
    throw Error("copy network needs a power-of-two position count >= 2");
  }
  log2_ = static_cast<std::uint32_t>(countr_zero32(positions));
}

CopyNetwork::Config CopyNetwork::route_blocks(
    const std::vector<std::uint32_t>& block_of) const {
  LBNN_CHECK(block_of.size() == positions_, "wrong block map size");
  // First position of each block.
  std::vector<std::uint32_t> block_start(positions_, 0);
  for (std::uint32_t p = 0; p < positions_; ++p) {
    if (p == 0 || block_of[p] != block_of[p - 1]) {
      block_start[p] = p;
    } else {
      LBNN_CHECK(block_of[p] == block_of[block_start[p - 1]],
                 "blocks must be contiguous and nondecreasing");
      block_start[p] = block_start[p - 1];
    }
  }

  Config cfg(log2_, std::vector<bool>(positions_, false));
  // Position with in-block offset j > 0 copies exactly once, at stage
  // msb(j), from offset j - 2^msb(j) (already filled by earlier stages —
  // fill order is by msb). Stages apply in increasing order.
  for (std::uint32_t p = 0; p < positions_; ++p) {
    const std::uint32_t off = p - block_start[p];
    if (off == 0) continue;
    const std::uint32_t s =
        31u - static_cast<std::uint32_t>(countl_zero32(off));
    cfg[s][p] = true;
  }
  return cfg;
}

std::vector<std::uint32_t> CopyNetwork::apply(
    const Config& cfg, const std::vector<std::uint32_t>& in) const {
  LBNN_CHECK(in.size() == positions_, "wrong input size");
  LBNN_CHECK(cfg.size() == log2_, "wrong config size");
  std::vector<std::uint32_t> v(in);
  for (std::uint32_t s = 0; s < log2_; ++s) {
    const std::uint32_t stride = 1u << s;
    // Copy from left to right within a stage; descending scan would also be
    // correct since sources sit strictly to the left by `stride`, and each
    // source's own stage-s setting is false for the offsets in question, but
    // a snapshot keeps it obviously race-free.
    const std::vector<std::uint32_t> snap(v);
    for (std::uint32_t p = 0; p < positions_; ++p) {
      if (cfg[s][p]) {
        LBNN_CHECK(p >= stride, "copy from before position 0");
        v[p] = snap[p - stride];
      }
    }
  }
  return v;
}

}  // namespace lbnn::interconnect
