#include "serve/cascade.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace lbnn::serve {

using runtime::SubmitStatus;
using runtime::TimePoint;

Cascade::Cascade(runtime::Engine& engine, runtime::ModelHandle tiny,
                 runtime::ModelHandle big, CascadeOptions options)
    : engine_(&engine),
      tiny_(std::move(tiny)),
      big_(std::move(big)),
      opt_(std::move(options)) {
  forwarder_ = std::thread([this] { forwarder_loop(); });
  finisher_ = std::thread([this] { finisher_loop(); });
}

Cascade::~Cascade() {
  // Resolve everything in flight first so no caller future dangles, then stop
  // the pipe threads once their queues are empty.
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  stage1_cv_.notify_all();
  stage2_cv_.notify_all();
  forwarder_.join();
  finisher_.join();
}

std::future<std::vector<bool>> Cascade::submit(std::vector<bool> inputs,
                                               TimePoint deadline) {
  Entry e;
  e.inputs = inputs;  // retained copy; the original moves into stage 1
  e.deadline = deadline;
  std::future<std::vector<bool>> client = e.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.submitted;
    ++pending_;
  }

  std::future<std::vector<bool>> s1;
  const SubmitStatus st =
      engine_->try_submit(tiny_, std::move(inputs), &s1, deadline);
  if (st == SubmitStatus::kAccepted) {
    e.stage1 = std::move(s1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      stage1_q_.push_back(std::move(e));
    }
    stage1_cv_.notify_one();
    return client;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.stage1_shed;
  }
  if (opt_.bypass_on_stage1_refusal) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.bypassed;
    }
    forward(std::move(e));
  } else {
    e.promise.set_exception(std::make_exception_ptr(Error(
        std::string("cascade: stage-1 admission refused: ") +
        runtime::to_string(st))));
    std::lock_guard<std::mutex> lk(mu_);
    ++counters_.failed;
    done_locked();
  }
  return client;
}

void Cascade::forward(Entry e) {
  std::future<std::vector<bool>> s2;
  const SubmitStatus st =
      engine_->try_submit(big_, std::move(e.inputs), &s2, e.deadline);
  if (st == SubmitStatus::kAccepted) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stage2_q_.push_back(Fin{std::move(e.promise), std::move(s2)});
      ++progress_;
    }
    stage2_cv_.notify_one();
    drain_cv_.notify_all();
    return;
  }
  // Stage-2 admission saw only the remaining budget (the deadline is
  // absolute; stage 1's queueing and service already came out of it) and
  // refused. The request fails here, in microseconds, instead of occupying a
  // big-model lane it cannot finish in time.
  if (st == SubmitStatus::kDeadlineUnmeetable) {
    e.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "cascade: remaining budget below the stage-2 drain estimate")));
  } else {
    e.promise.set_exception(std::make_exception_ptr(Error(
        std::string("cascade: stage-2 admission refused: ") +
        runtime::to_string(st))));
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.stage2_shed;
  ++counters_.failed;
  done_locked();
}

void Cascade::forwarder_loop() {
  for (;;) {
    Entry e;
    {
      std::unique_lock<std::mutex> lk(mu_);
      stage1_cv_.wait(lk, [&] { return stop_ || !stage1_q_.empty(); });
      if (stage1_q_.empty()) return;  // stop_ with nothing left to pipe
      e = std::move(stage1_q_.front());
      stage1_q_.pop_front();
    }
    try {
      std::vector<bool> out = e.stage1.get();
      if (opt_.confident && opt_.confident(out)) {
        e.promise.set_value(std::move(out));
        std::lock_guard<std::mutex> lk(mu_);
        ++counters_.stage1_answered;
        done_locked();
        continue;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++counters_.forwarded;
      }
      forward(std::move(e));
    } catch (...) {
      // A stage-1 failure after admission means the deadline expired in
      // queue (or the engine shut down) — final either way: the same budget
      // has already run out for stage 2.
      e.promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.failed;
      done_locked();
    }
  }
}

void Cascade::finisher_loop() {
  for (;;) {
    Fin f;
    {
      std::unique_lock<std::mutex> lk(mu_);
      stage2_cv_.wait(lk, [&] { return stop_ || !stage2_q_.empty(); });
      if (stage2_q_.empty()) return;
      f = std::move(stage2_q_.front());
      stage2_q_.pop_front();
    }
    try {
      f.promise.set_value(f.stage2.get());
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.stage2_answered;
      done_locked();
    } catch (...) {
      f.promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lk(mu_);
      ++counters_.failed;
      done_locked();
    }
  }
}

void Cascade::done_locked() {
  --pending_;
  ++progress_;
  drain_cv_.notify_all();
}

void Cascade::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (pending_ != 0) {
    const std::uint64_t seen = progress_;
    lk.unlock();
    // Seal and resolve everything the engine has admitted so far. After this
    // returns, every stage-1 future the pipe is waiting on is ready; the
    // forwarder may then admit stage-2 work that needs ANOTHER seal — the
    // progress counter tells us when that has happened, and the loop drains
    // again.
    engine_->drain();
    lk.lock();
    drain_cv_.wait(lk, [&] { return pending_ == 0 || progress_ != seen; });
  }
}

CascadeReport Cascade::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace lbnn::serve
