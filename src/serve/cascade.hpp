#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"

namespace lbnn::serve {

/// Cascade policy knobs (see Cascade).
struct CascadeOptions {
  /// Decides from the tiny model's output whether the request is answered at
  /// stage 1 (true) or forwarded to the big model (false). A null predicate
  /// forwards everything — a cascade only pays off once this is configured
  /// (e.g. "the tiny classifier's margin bit is set").
  std::function<bool(const std::vector<bool>&)> confident;
  /// When stage-1 ADMISSION refuses (queue-full or shed), bypass the tiny
  /// model and dispatch straight to stage 2 (default) instead of failing the
  /// request — a backlogged tiny model must not take the big model down with
  /// it. Stage-2 refusals always fail the request.
  bool bypass_on_stage1_refusal = true;
};

/// Per-stage cascade ledger. Each stage is an ordinary engine model, so its
/// latency/shed/expired detail lives in the engine's ServeReport rows; this
/// report adds the cascade-level routing outcomes. Once drained:
///   submitted == stage1_answered + stage2_answered + failed
///   forwarded + bypassed == stage2_answered + stage2_shed + stage-2 errors
struct CascadeReport {
  std::uint64_t submitted = 0;
  std::uint64_t stage1_answered = 0;  ///< tiny output accepted by the predicate
  std::uint64_t forwarded = 0;        ///< tiny ran; predicate said no -> big
  std::uint64_t bypassed = 0;         ///< stage-1 refusal routed straight to big
  std::uint64_t stage1_shed = 0;      ///< stage-1 admission refusals
  std::uint64_t stage2_answered = 0;  ///< big model resolved the request
  std::uint64_t stage2_shed = 0;      ///< stage-2 admission refusals (request fails)
  std::uint64_t failed = 0;           ///< futures that resolved with an exception
};

/// Two-stage model cascade over the Engine handle API: a tiny model answers
/// the requests its output predicate is confident about, the rest forward to
/// the big model. The caller-facing future resolves exactly once either way.
///
/// Deadline rebudgeting: a request's deadline is one ABSOLUTE TimePoint
/// threaded through both stages. Stage 2's admission check runs at forward
/// time, after stage 1's queueing and service have already been spent from
/// the budget — so it sees the REMAINING budget, not the original deadline,
/// and sheds a forwarded request whose leftover budget is below the big
/// model's estimated drain (counted in stage2_shed; the future fails with
/// DeadlineExceeded in microseconds instead of wasting a big-model lane).
///
/// Threading: submit() never blocks on stage results; two internal pipe
/// threads (forwarder: stage-1 completion -> predicate -> stage-2 admission;
/// finisher: stage-2 completion -> caller promise) drive the chain in FIFO
/// order. Waits are future/condvar-based — nothing here reads a clock, so
/// ManualClock tests stay sleep-free. The Cascade must outlive its pending
/// futures' resolution and be destroyed before the Engine.
class Cascade {
 public:
  /// Both handles must live on `engine`. The options' predicate is called on
  /// the forwarder thread with the tiny model's output.
  Cascade(runtime::Engine& engine, runtime::ModelHandle tiny,
          runtime::ModelHandle big, CascadeOptions options = {});
  ~Cascade();

  Cascade(const Cascade&) = delete;
  Cascade& operator=(const Cascade&) = delete;

  /// Submit one sample; the future resolves with the answering stage's output
  /// (or DeadlineExceeded / Error if both stages refused it). Never blocks on
  /// model execution; uses the engines' non-blocking admission internally.
  std::future<std::vector<bool>> submit(
      std::vector<bool> inputs,
      runtime::TimePoint deadline = runtime::kNoDeadline);

  /// Block until every submitted request's future has resolved. Drives the
  /// engine's drain as needed (a forwarded request needs a second seal for
  /// its stage-2 batch). Call it quiesced — concurrent submits extend it.
  void drain();

  CascadeReport report() const;

 private:
  struct Entry {
    std::promise<std::vector<bool>> promise;
    std::vector<bool> inputs;  ///< retained for the stage-2 forward
    runtime::TimePoint deadline{};
    std::future<std::vector<bool>> stage1;
  };
  struct Fin {
    std::promise<std::vector<bool>> promise;
    std::future<std::vector<bool>> stage2;
  };

  void forwarder_loop();
  void finisher_loop();
  /// Stage-2 admission for one entry (forward or bypass path); resolves the
  /// promise on refusal. Caller counted forwarded/bypassed already.
  void forward(Entry e);
  /// One request fully resolved: drop pending, wake drain().
  void done_locked();

  runtime::Engine* engine_;
  runtime::ModelHandle tiny_;
  runtime::ModelHandle big_;
  CascadeOptions opt_;

  mutable std::mutex mu_;
  std::condition_variable stage1_cv_;  ///< forwarder wakeups
  std::condition_variable stage2_cv_;  ///< finisher wakeups
  std::condition_variable drain_cv_;   ///< drain() wakeups
  std::deque<Entry> stage1_q_;
  std::deque<Fin> stage2_q_;
  bool stop_ = false;
  std::size_t pending_ = 0;      ///< submitted, promise not yet resolved
  std::uint64_t progress_ = 0;   ///< bumped on every pipe-thread action
  CascadeReport counters_;

  std::thread forwarder_;
  std::thread finisher_;
};

}  // namespace lbnn::serve
