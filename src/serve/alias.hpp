#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "router/router.hpp"
#include "runtime/engine.hpp"

namespace lbnn::serve {

/// Routing ledger for one alias (see BasicAliasTable::report).
struct AliasReport {
  std::uint64_t submitted = 0;   ///< requests routed through the alias
  std::uint64_t to_primary = 0;
  std::uint64_t to_canary = 0;
  std::uint64_t flips = 0;       ///< completed flip() calls
  std::uint32_t primary_weight = 1;
  std::uint32_t canary_weight = 0;
  bool has_canary = false;
};

/// Versioned model aliases with weighted canary splits, templated over the
/// serving frontend so the same table drives a single Engine
/// (Server = runtime::Engine, Handle = runtime::ModelHandle) or a sharded
/// fleet (Server = router::Router, Handle = router::RoutedHandle) — the two
/// expose the same submit/try_submit surface.
///
/// Clients address models by a stable alias ("jsc@prod"); versions are plain
/// models loaded under distinct names ("jsc_v1", "jsc_v2"), so a new version
/// loaded next to the old one reuses the engine's ProgramCache / AOT
/// artifact dedup exactly like any other load. A canary rollout is:
///
///   table.publish("jsc@prod", v1);
///   table.set_canary("jsc@prod", v2, /*canary_weight=*/0, 1);  // 0% staged
///   table.set_split("jsc@prod", 1, 3);   // 25% of traffic to v2
///   engine.set_weight(v2, 1);            // optional matching QoS share
///   auto old = table.flip("jsc@prod");   // 100%: v2 is the new primary
///   engine.evict_idle(idle_cutoff);      // reaps v1 once its traffic ages out
///
/// The split is a deterministic two-way stride pick (the same arithmetic as
/// the engine's weighted-fair scheduler), so a w_c:w_p split is EXACT over
/// any aligned window of w_c + w_p requests — not probabilistic. Ties pick
/// the primary, and set_canary/set_split restart the stride cycle.
///
/// flip() atomically repoints the alias at the canary under the table lock:
/// every submit resolves the alias either entirely-before (old primary — the
/// engine still drains everything it accepted) or entirely-after (new
/// primary); nothing is dropped or double-routed. It returns the old primary
/// handle so the caller can retire it once idle.
///
/// Thread-safety: all methods may be called from any thread. Handle picks
/// run under the table mutex; the underlying submit runs outside it.
template <typename Server, typename Handle>
class BasicAliasTable {
 public:
  explicit BasicAliasTable(Server& server) : server_(&server) {}

  /// Create `alias` pointing at `h` with no canary (or repoint an existing
  /// alias, dropping its canary).
  void publish(const std::string& alias, Handle h) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entries_[alias];
    e.primary = Version{std::move(h), 1, 0};
    e.canary.reset();
  }

  /// Attach (or replace) a canary version. Traffic splits
  /// canary:primary = canary_weight:primary_weight; canary_weight 0 parks the
  /// canary with zero traffic (the 0% stage of a rollout), primary_weight 0
  /// sends everything to the canary without flipping. Both zero is invalid.
  void set_canary(const std::string& alias, Handle canary,
                  std::uint32_t canary_weight, std::uint32_t primary_weight) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entry(alias);
    check_weights(canary_weight, primary_weight);
    e.canary = Version{std::move(canary), canary_weight, 0};
    e.primary.weight = primary_weight;
    e.primary.pass = 0;
  }

  /// Re-weight an existing canary split (restarts the stride cycle, so the
  /// new ratio is exact from the next request on).
  void set_split(const std::string& alias, std::uint32_t canary_weight,
                 std::uint32_t primary_weight) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entry(alias);
    if (!e.canary) throw Error("alias '" + alias + "' has no canary");
    check_weights(canary_weight, primary_weight);
    e.canary->weight = canary_weight;
    e.canary->pass = 0;
    e.primary.weight = primary_weight;
    e.primary.pass = 0;
  }

  /// Promote the canary to primary (100% of traffic) and clear the canary
  /// slot. Returns the OLD primary's handle — still loaded, still draining
  /// whatever it accepted — so the caller can unload or evict_idle it.
  Handle flip(const std::string& alias) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entry(alias);
    if (!e.canary) throw Error("alias '" + alias + "' has no canary to flip to");
    Handle old = std::move(e.primary.handle);
    e.primary = Version{std::move(e.canary->handle), 1, 0};
    e.canary.reset();
    ++e.flips;
    return old;
  }

  /// Remove the alias (the versions behind it stay loaded). Returns false if
  /// the alias does not exist.
  bool drop(const std::string& alias) {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.erase(alias) != 0;
  }

  bool has(const std::string& alias) const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.count(alias) != 0;
  }

  /// The current primary handle (what a weight-ignoring client would get).
  Handle resolve(const std::string& alias) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(alias);
    if (it == entries_.end()) throw Error("unknown alias '" + alias + "'");
    return it->second.primary.handle;
  }

  AliasReport report(const std::string& alias) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(alias);
    if (it == entries_.end()) throw Error("unknown alias '" + alias + "'");
    const Entry& e = it->second;
    AliasReport r;
    r.submitted = e.submitted;
    r.to_primary = e.to_primary;
    r.to_canary = e.to_canary;
    r.flips = e.flips;
    r.primary_weight = e.primary.weight;
    r.has_canary = e.canary.has_value();
    r.canary_weight = e.canary ? e.canary->weight : 0;
    return r;
  }

  /// Blocking submit through the alias; the split is accounted per pick.
  std::future<std::vector<bool>> submit(
      const std::string& alias, std::vector<bool> inputs,
      runtime::TimePoint deadline = runtime::kNoDeadline) {
    Handle h = pick(alias);
    return server_->submit(h, std::move(inputs), deadline);
  }

  /// Non-blocking submit through the alias. The stride pick advances even if
  /// admission then refuses — the split is measured at dispatch, not at
  /// acceptance (a refusing canary should not warp the ratio for the
  /// requests around it).
  runtime::SubmitStatus try_submit(
      const std::string& alias, std::vector<bool> inputs,
      std::future<std::vector<bool>>* result,
      runtime::TimePoint deadline = runtime::kNoDeadline) {
    Handle h = pick(alias);
    return server_->try_submit(h, std::move(inputs), result, deadline);
  }

 private:
  /// Mirrors the engine's stride scheduler: stride = kScale / weight, lowest
  /// accumulated pass goes next. Two versions only, so no ready-list — just
  /// two counters.
  static constexpr std::uint64_t kScale = 1ull << 20;

  struct Version {
    Handle handle{};
    std::uint32_t weight = 1;
    std::uint64_t pass = 0;
  };
  struct Entry {
    Version primary;
    std::optional<Version> canary;
    std::uint64_t submitted = 0;
    std::uint64_t to_primary = 0;
    std::uint64_t to_canary = 0;
    std::uint64_t flips = 0;
  };

  Entry& entry(const std::string& alias) {
    auto it = entries_.find(alias);
    if (it == entries_.end()) throw Error("unknown alias '" + alias + "'");
    return it->second;
  }

  static void check_weights(std::uint32_t canary_weight,
                            std::uint32_t primary_weight) {
    if (canary_weight == 0 && primary_weight == 0)
      throw Error("alias split weights cannot both be zero");
  }

  Handle pick(const std::string& alias) {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& e = entry(alias);
    ++e.submitted;
    Version* chosen = &e.primary;
    if (e.canary && e.canary->weight > 0) {
      if (e.primary.weight == 0 || e.canary->pass < e.primary.pass)
        chosen = &*e.canary;  // ties go to the primary
    }
    chosen->pass += kScale / chosen->weight;
    if (chosen == &e.primary)
      ++e.to_primary;
    else
      ++e.to_canary;
    return chosen->handle;
  }

  Server* server_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Alias table over one Engine.
using AliasTable = BasicAliasTable<runtime::Engine, runtime::ModelHandle>;
/// Alias table over a sharded Router fleet: alias-aware dispatch composes
/// with p2c replica routing underneath.
using RoutedAliasTable = BasicAliasTable<router::Router, router::RoutedHandle>;

}  // namespace lbnn::serve
