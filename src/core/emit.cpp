#include "core/emit.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn {
namespace {

/// Lane of node `x` at level index `i` of the given instance (level vectors
/// are sorted, lane maps parallel).
Lane lane_of(const MfgForest& forest, const MfgInstance& inst, std::size_t i,
             NodeId x) {
  const auto& lv = forest.at(inst.mfg).levels[i];
  const auto it = std::lower_bound(lv.begin(), lv.end(), x);
  LBNN_CHECK(it != lv.end() && *it == x, "node missing from MFG level");
  return inst.lanes.lanes[i][static_cast<std::size_t>(it - lv.begin())];
}

/// Lane of node `x` in the top level of the producing instance.
Lane root_lane(const MfgForest& forest, const MfgInstance& producer, NodeId x) {
  return lane_of(forest, producer, forest.at(producer.mfg).levels.size() - 1, x);
}

}  // namespace

Program emit_program(const MfgForest& forest, const Schedule& sched,
                     const LpuConfig& cfg) {
  const Netlist& nl = forest.netlist();
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;

  Program prog;
  prog.cfg = cfg;
  prog.num_wavefronts = static_cast<std::uint32_t>(sched.wavefronts.size());
  prog.instr.assign(prog.num_wavefronts, std::vector<LpvInstr>(n));
  prog.num_primary_inputs = static_cast<std::uint32_t>(nl.num_inputs());
  prog.num_primary_outputs = static_cast<std::uint32_t>(nl.num_outputs());

  // Input buffer: one word per primary input, addressed by PI index.
  prog.input_layout.resize(nl.num_inputs());
  for (std::uint32_t i = 0; i < nl.num_inputs(); ++i) prog.input_layout[i] = i;

  // PO index lookup: node -> output positions it drives.
  std::unordered_map<NodeId, std::vector<std::uint32_t>> po_of;
  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    po_of[nl.outputs()[i]].push_back(static_cast<std::uint32_t>(i));
  }
  const Level lmax = nl.depth();

  for (const auto& wave : sched.wavefronts) {
    for (const std::uint32_t ii : wave) {
      const MfgInstance& inst = sched.instances[ii];
      const Mfg& g = forest.at(inst.mfg);
      const std::uint32_t w = inst.wavefront;
      const std::uint32_t band = static_cast<std::uint32_t>(g.bottom) / n;

      for (std::size_t i = 0; i < g.levels.size(); ++i) {
        const Level level = g.bottom + static_cast<Level>(i);
        const std::uint32_t lpv = static_cast<std::uint32_t>(level) - band * n;
        LpvInstr& here = prog.instr[w][lpv];

        for (const NodeId x : g.levels[i]) {
          const Lane lane = lane_of(forest, inst, i, x);
          const GateOp op = nl.op(x);

          if (op == GateOp::kInput) {
            // PI load on LPV 0: BUF over the input-buffer word.
            LBNN_CHECK(level == 0, "primary input above level 0");
            here.routes.push_back(
                {static_cast<std::uint16_t>(2 * lane),
                 SrcSel{SrcSel::Kind::kInput,
                        static_cast<std::uint32_t>(nl.input_index(x))}});
            here.computes.push_back({lane, TruthTable4::from_op(GateOp::kBuf)});
          } else {
            here.computes.push_back({lane, TruthTable4::from_op(op)});
            for (int f = 0; f < nl.arity(x); ++f) {
              const NodeId y = f == 0 ? nl.fanin0(x) : nl.fanin1(x);
              const std::uint16_t slot = static_cast<std::uint16_t>(2 * lane + f);
              if (i > 0) {
                // Intra-MFG edge: previous level of the same instance, same
                // wavefront, through the switch.
                here.routes.push_back(
                    {slot,
                     SrcSel{SrcSel::Kind::kPrevLane, lane_of(forest, inst, i - 1, y)}});
              } else if (static_cast<std::uint32_t>(g.bottom) % n == 0 && g.bottom > 0) {
                // Cross-band edge: read the feedback region of the output
                // buffer at the producing band root's (wavefront, lane).
                const MfgId p = forest.producer_of(y);
                const auto it = sched.band_root_instance.find(p);
                LBNN_CHECK(it != sched.band_root_instance.end(),
                           "cross-band producer is not a band root");
                const MfgInstance& prod = sched.instances[it->second];
                LBNN_CHECK(w > prod.wavefront + n - 1,
                           "feedback read outruns its write");
                here.routes.push_back(
                    {slot, SrcSel{SrcSel::Kind::kFeedback,
                                  prod.wavefront * m + root_lane(forest, prod, y)}});
              } else {
                // Inter-MFG edge inside a band: the producer instance's
                // switch stage writes this snapshot slot at the producer's
                // memLoc; the slot holds until this wavefront consumes it
                // (or is consumed immediately when chained on the same
                // memLoc).
                const auto it = inst.producer_instance.find(y);
                LBNN_CHECK(it != inst.producer_instance.end(),
                           "unbound in-band producer");
                const MfgInstance& prod = sched.instances[it->second];
                LBNN_CHECK(prod.wavefront <= w, "producer scheduled after consumer");
                prog.instr[prod.wavefront][lpv].routes.push_back(
                    {slot, SrcSel{SrcSel::Kind::kPrevLane,
                                  root_lane(forest, prod, y)}});
              }
            }
          }

          // Exits: POs drain into the output buffer at Lmax; roots at a band
          // top (last LPV) that feed the next band go to the feedback region.
          if (level == lmax) {
            const auto it = po_of.find(x);
            if (it != po_of.end()) {
              for (const std::uint32_t po : it->second) {
                prog.output_taps.push_back({w, lane, po});
              }
            }
          } else if (lpv == n - 1) {
            prog.instr[w][n - 1].feedback_writes.push_back(lane);
          }
        }
      }
    }
  }

  prog.validate();
  return prog;
}

}  // namespace lbnn
