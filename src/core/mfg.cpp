#include "core/mfg.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.hpp"
#include "common/error.hpp"
#include "opt/path_balance.hpp"

namespace lbnn {

std::size_t Mfg::num_nodes() const {
  std::size_t t = 0;
  for (const auto& l : levels) t += l.size();
  return t;
}

std::size_t Mfg::max_width() const {
  std::size_t w = 0;
  for (const auto& l : levels) w = std::max(w, l.size());
  return w;
}

MfgId MfgForest::add(Mfg mfg) {
  const MfgId id = static_cast<MfgId>(mfgs_.size());
  for (const NodeId r : mfg.roots()) {
    LBNN_CHECK(producer_.find(r) == producer_.end(), "node already has a producer MFG");
    producer_[r] = id;
  }
  mfgs_.push_back(std::move(mfg));
  alive_.push_back(true);
  return id;
}

std::size_t MfgForest::num_alive() const {
  std::size_t c = 0;
  for (const bool a : alive_) c += a ? 1 : 0;
  return c;
}

MfgId MfgForest::producer_of(NodeId node) const {
  const auto it = producer_.find(node);
  LBNN_CHECK(it != producer_.end(), "node has no producer MFG");
  return it->second;
}

bool MfgForest::has_producer(NodeId node) const {
  return producer_.find(node) != producer_.end();
}

std::vector<MfgId> MfgForest::children_of(MfgId id) const {
  std::vector<MfgId> out;
  for (const NodeId in : mfgs_[id].external_inputs) {
    const MfgId c = producer_of(in);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

MfgId MfgForest::merge(MfgId a, MfgId b) {
  LBNN_CHECK(alive_[a] && alive_[b] && a != b, "merge of dead or identical MFGs");
  Mfg& ma = mfgs_[a];
  Mfg& mb = mfgs_[b];
  LBNN_CHECK(ma.bottom == mb.bottom && ma.top == mb.top,
             "merge requires aligned level ranges");
  Mfg merged;
  merged.bottom = ma.bottom;
  merged.top = ma.top;
  merged.levels.resize(ma.levels.size());
  for (std::size_t i = 0; i < ma.levels.size(); ++i) {
    auto& lv = merged.levels[i];
    lv.reserve(ma.levels[i].size() + mb.levels[i].size());
    std::set_union(ma.levels[i].begin(), ma.levels[i].end(), mb.levels[i].begin(),
                   mb.levels[i].end(), std::back_inserter(lv));
  }
  std::set_union(ma.external_inputs.begin(), ma.external_inputs.end(),
                 mb.external_inputs.begin(), mb.external_inputs.end(),
                 std::back_inserter(merged.external_inputs));

  const MfgId id = static_cast<MfgId>(mfgs_.size());
  for (const NodeId r : merged.roots()) producer_[r] = id;
  mfgs_.push_back(std::move(merged));
  alive_.push_back(true);
  alive_[a] = false;
  alive_[b] = false;
  return id;
}

std::vector<MfgId> MfgForest::alive_ids() const {
  std::vector<MfgId> out;
  for (MfgId i = 0; i < mfgs_.size(); ++i) {
    if (alive_[i]) out.push_back(i);
  }
  return out;
}

void MfgForest::check_invariants(std::size_t m) const {
  const Netlist& nl = *nl_;
  std::vector<bool> covered(nl.num_nodes(), false);
  for (const MfgId id : alive_ids()) {
    const Mfg& g = mfgs_[id];
    if (g.levels.empty()) throw Error("MFG with no levels");
    if (g.top - g.bottom + 1 != static_cast<Level>(g.levels.size())) {
      throw Error("MFG level range inconsistent");
    }
    std::unordered_set<NodeId> members;
    for (std::size_t i = 0; i < g.levels.size(); ++i) {
      // Condition (2): at most m nodes per level.
      if (g.levels[i].size() > m) throw Error("MFG level wider than m");
      if (g.levels[i].empty()) throw Error("MFG has an empty level");
      for (const NodeId x : g.levels[i]) {
        if (node_level_[x] != g.bottom + static_cast<Level>(i)) {
          throw Error("MFG node stored at wrong level");
        }
        members.insert(x);
        covered[x] = true;
      }
    }
    // Condition (1): fanins of all non-bottom levels are inside the MFG.
    for (std::size_t i = 1; i < g.levels.size(); ++i) {
      for (const NodeId x : g.levels[i]) {
        for (int k = 0; k < nl.arity(x); ++k) {
          const NodeId f = k == 0 ? nl.fanin0(x) : nl.fanin1(x);
          if (members.find(f) == members.end()) {
            throw Error("MFG closure violated above the bottom level");
          }
        }
      }
    }
    // external_inputs = exact fanin set of the bottom level, outside the MFG.
    std::unordered_set<NodeId> ext(g.external_inputs.begin(), g.external_inputs.end());
    std::unordered_set<NodeId> want;
    for (const NodeId x : g.levels[0]) {
      for (int k = 0; k < nl.arity(x); ++k) {
        const NodeId f = k == 0 ? nl.fanin0(x) : nl.fanin1(x);
        want.insert(f);
      }
    }
    if (g.bottom == 0) {
      if (!want.empty() || !ext.empty()) throw Error("bottom-0 MFG must have no external inputs");
    } else {
      if (want != ext) throw Error("external_inputs mismatch");
      for (const NodeId f : g.external_inputs) {
        if (!has_producer(f)) throw Error("external input without a producer");
      }
    }
  }
  // Coverage: every node reachable from an output is inside some MFG.
  std::vector<bool> live(nl.num_nodes(), false);
  for (const NodeId o : nl.outputs()) live[o] = true;
  for (NodeId id = static_cast<NodeId>(nl.num_nodes()); id-- > 0;) {
    if (!live[id]) continue;
    if (nl.arity(id) >= 1) live[nl.fanin0(id)] = true;
    if (nl.arity(id) == 2) live[nl.fanin1(id)] = true;
  }
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (live[id] && !covered[id]) throw Error("live node not covered by any MFG");
  }
}

Mfg find_mfg(const Netlist& nl, const std::vector<Level>& levels, NodeId root,
             const PartitionOptions& opt) {
  LBNN_CHECK(opt.m >= 1, "m must be positive");
  const Level root_level = levels[root];
  const Level band_start =
      opt.band == 0 ? 0
                    : static_cast<Level>((static_cast<std::size_t>(root_level) /
                                          opt.band) * opt.band);

  // Descend whole levels at a time (the netlist is path balanced, so all
  // fanins of level-l nodes sit exactly at l-1; this makes the BFS of
  // Algorithm 2 equivalent to a per-level frontier sweep).
  std::vector<std::vector<NodeId>> collected;  // top level first
  std::vector<NodeId> frontier{root};
  Level cur = root_level;
  std::vector<NodeId> external;

  for (;;) {
    collected.push_back(frontier);
    // Gather the distinct fanins of the frontier (level cur-1).
    std::vector<NodeId> next;
    {
      std::unordered_set<NodeId> seen;
      for (const NodeId x : frontier) {
        for (int k = 0; k < nl.arity(x); ++k) {
          const NodeId f = k == 0 ? nl.fanin0(x) : nl.fanin1(x);
          if (seen.insert(f).second) next.push_back(f);
        }
      }
    }
    if (next.empty()) {
      // Reached nodes with no fanins (primary inputs / constants): bottom.
      break;
    }
    if (cur == band_start) {
      // Depth-issue cut (Sec. V.C): never cross a band boundary; the inputs
      // arrive through the feedback path.
      external = std::move(next);
      break;
    }
    if (next.size() >= opt.m) {
      // Algorithm 2 stop level: the next level cannot be a member level.
      external = std::move(next);
      break;
    }
    frontier = std::move(next);
    --cur;
  }

  Mfg g;
  g.top = root_level;
  g.bottom = cur;
  g.levels.assign(collected.rbegin(), collected.rend());
  for (auto& lv : g.levels) std::sort(lv.begin(), lv.end());
  std::sort(external.begin(), external.end());
  g.external_inputs = std::move(external);
  return g;
}

MfgForest partition(const Netlist& nl, const PartitionOptions& opt) {
  LBNN_CHECK(is_path_balanced(nl), "partition() requires a path-balanced netlist");
  MfgForest forest(nl, nl.levels());

  std::deque<NodeId> queue;
  std::unordered_set<NodeId> enqueued;
  for (const NodeId o : nl.outputs()) {
    if (enqueued.insert(o).second) queue.push_back(o);
  }
  while (!queue.empty()) {
    const NodeId root = queue.front();
    queue.pop_front();
    if (forest.has_producer(root)) continue;  // already extracted (shared input)
    Mfg g = find_mfg(nl, forest.node_levels(), root, opt);
    const std::vector<NodeId> ext = g.external_inputs;
    forest.add(std::move(g));
    for (const NodeId in : ext) {
      if (enqueued.insert(in).second) queue.push_back(in);
    }
  }
  return forest;
}

std::size_t merge_mfgs(MfgForest& forest, std::size_t m) {
  // Greedy pass in the spirit of Algorithm 3: repeatedly take the children of
  // each alive MFG, group them by bottom level, and merge pairs whose
  // per-level union stays within m. Merged MFGs re-enter the queue so chains
  // of merges happen (Fig. 3).
  const auto can_merge = [&](MfgId a, MfgId b) {
    const Mfg& ma = forest.at(a);
    const Mfg& mb = forest.at(b);
    if (ma.bottom != mb.bottom || ma.top != mb.top) return false;
    for (std::size_t i = 0; i < ma.levels.size(); ++i) {
      // |union| = |A| + |B| - |intersection| ; level vectors are sorted.
      std::size_t inter = 0;
      std::size_t ai = 0, bi = 0;
      while (ai < ma.levels[i].size() && bi < mb.levels[i].size()) {
        if (ma.levels[i][ai] < mb.levels[i][bi]) ++ai;
        else if (ma.levels[i][ai] > mb.levels[i][bi]) ++bi;
        else { ++inter; ++ai; ++bi; }
      }
      if (ma.levels[i].size() + mb.levels[i].size() - inter > m) return false;
    }
    return true;
  };

  // Pairwise greedy merging within a sibling group.
  std::size_t merges = 0;
  const auto merge_group = [&](std::vector<MfgId> group) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (!forest.alive(group[i])) continue;
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (!forest.alive(group[j])) continue;
        if (!can_merge(group[i], group[j])) continue;
        const MfgId merged = forest.merge(group[i], group[j]);
        group[i] = merged;
        group[j] = group.back();
        group.pop_back();
        --j;
        ++merges;
      }
    }
  };

  bool changed = true;
  while (changed) {
    const std::size_t before = merges;
    // Root MFGs (the PO cones) have no parent; Algorithm 3's root MFG
    // "contain[s] PO(s)", i.e. they form one sibling group themselves.
    std::unordered_set<MfgId> has_parent;
    for (const MfgId id : forest.alive_ids()) {
      for (const MfgId c : forest.children_of(id)) has_parent.insert(c);
    }
    std::vector<MfgId> roots;
    for (const MfgId id : forest.alive_ids()) {
      if (has_parent.count(id) == 0) roots.push_back(id);
    }
    merge_group(std::move(roots));

    for (const MfgId parent : forest.alive_ids()) {
      if (!forest.alive(parent)) continue;
      merge_group(forest.children_of(parent));
    }
    changed = merges != before;
  }
  return merges;
}

}  // namespace lbnn
