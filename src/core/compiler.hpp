#pragma once

#include <cstdint>

#include "core/lpu_config.hpp"
#include "core/program.hpp"
#include "logic/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "opt/passes.hpp"

namespace lbnn {

/// Options of the full compilation flow (Fig. 1).
struct CompileOptions {
  LpuConfig lpu;
  /// Run the logic-minimization rewrites (pre-processing step 1).
  bool optimize = true;
  /// Run the MFG merging procedure (Alg. 3). Fig. 7/8 ablate this.
  bool merge = true;
  CellLibrary library = CellLibrary::lut4_full();
  /// On snapshot-lane allocation failure, halve the effective partition width
  /// and retry up to this many times (width headroom, DESIGN.md 2.2).
  std::uint32_t width_headroom_retries = 4;
};

/// What happened during compilation — drives the paper's figures.
struct CompileReport {
  OptStats opt;
  NetlistStats preprocessed;  ///< after mapping + FPB + PO padding
  Level lmax = 0;
  std::size_t mfgs_before_merge = 0;
  std::size_t mfgs_after_merge = 0;  ///< == before when merging disabled
  std::size_t merges = 0;
  std::uint32_t wavefronts = 0;
  std::uint32_t bubbles = 0;
  std::uint32_t bands = 0;  ///< circulation passes through the LPU
  std::uint32_t chained_mfgs = 0;
  std::uint32_t instances = 0;   ///< scheduled MFG instances
  std::uint32_t duplicates = 0;  ///< recomputed instances (kTree sharing)
  bool tree_sharing = false;     ///< scheduler fell back to duplication
  std::uint32_t effective_m = 0;  ///< partition width actually used
  std::uint32_t retries = 0;
};

struct CompileResult {
  Program program;
  CompileReport report;
};

/// Compile an FFCL netlist into an LPU program: optimize, map to the cell
/// library, levelize + fully path balance, partition into MFGs (band = n for
/// the depth issue), optionally merge, schedule, and emit instructions.
/// Throws CompileError when the network cannot be mapped (and the width
/// headroom retries are exhausted).
CompileResult compile(const Netlist& input, const CompileOptions& options);

}  // namespace lbnn
