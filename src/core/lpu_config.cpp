#include "core/lpu_config.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lbnn {

void LpuConfig::validate() const {
  if (m == 0) throw Error("LpuConfig: m (LPEs per LPV) must be positive");
  if (n == 0) throw Error("LpuConfig: n (LPVs per LPU) must be positive");
  if (clock_mhz <= 0) throw Error("LpuConfig: clock must be positive");
}

std::string LpuConfig::to_string() const {
  std::ostringstream os;
  os << "LPU{m=" << m << ", n=" << n << ", tsw=" << tsw
     << ", word=" << effective_word_width() << "b, f=" << clock_mhz << "MHz}";
  return os.str();
}

}  // namespace lbnn
