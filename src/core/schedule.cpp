#include "core/schedule.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn {
namespace {

/// Greedy interval allocator over (LPV, lane). Intervals arrive in
/// nondecreasing end order, so a lane conflicts with a new interval [s, e]
/// iff its maximum end so far is >= s. Parked (multi-wavefront) values take
/// lanes from the top, transients from the bottom, which keeps long-lived
/// snapshots out of the way of passing traffic.
class LaneAllocator {
 public:
  LaneAllocator(std::uint32_t n, std::uint32_t m)
      : m_(m), max_end_(static_cast<std::size_t>(n) * m, -1) {}

  Lane allocate(std::uint32_t lpv, std::int64_t start, std::int64_t end,
                bool parked) {
    const std::size_t base = static_cast<std::size_t>(lpv) * m_;
    if (parked) {
      for (std::uint32_t l = m_; l-- > 0;) {
        if (max_end_[base + l] < start) {
          max_end_[base + l] = end;
          return static_cast<Lane>(l);
        }
      }
    } else {
      for (std::uint32_t l = 0; l < m_; ++l) {
        if (max_end_[base + l] < start) {
          max_end_[base + l] = end;
          return static_cast<Lane>(l);
        }
      }
    }
    return kInvalidLane;
  }

 private:
  std::uint32_t m_;
  std::vector<std::int64_t> max_end_;
};

struct BandPlan {
  /// Instance indices in execution order, grouped into chains.
  std::vector<std::vector<std::uint32_t>> waves;
};

}  // namespace

Schedule build_schedule(const MfgForest& forest, const LpuConfig& cfg,
                        SharingMode mode, std::size_t max_instances) {
  const std::uint32_t n = cfg.n;
  const Netlist& nl = forest.netlist();
  const std::vector<MfgId> alive = forest.alive_ids();

  Schedule sched;

  // ---- group MFGs by band (circulation pass) -------------------------------
  std::map<std::uint32_t, std::vector<MfgId>> bands;
  for (const MfgId id : alive) {
    const std::uint32_t band = static_cast<std::uint32_t>(forest.at(id).bottom) / n;
    LBNN_CHECK(static_cast<std::uint32_t>(forest.at(id).top) / n == band,
               "MFG spans a band boundary; partition with band == n");
    bands[band].push_back(id);
  }

  // ---- per band: build the instance forest and the chain order -------------
  // Band roots (MFGs without an in-band parent) get exactly one instance; in
  // kTree mode every in-band child edge creates a fresh instance, in kShared
  // mode children are instantiated once and shared.
  for (auto& [band, members] : bands) {
    std::unordered_set<MfgId> in_band(members.begin(), members.end());
    std::unordered_set<MfgId> has_in_band_parent;
    for (const MfgId id : members) {
      for (const MfgId c : forest.children_of(id)) {
        if (in_band.count(c) != 0) has_in_band_parent.insert(c);
      }
    }
    std::vector<MfgId> roots;
    for (const MfgId id : members) {
      if (has_in_band_parent.count(id) == 0) roots.push_back(id);
    }
    LBNN_CHECK(!roots.empty(), "band without a root MFG");

    // Post-order DFS over instances. kShared memoizes child instances.
    std::unordered_map<MfgId, std::uint32_t> shared_instance;
    std::vector<std::uint32_t> order;  // instance indices in execution order

    struct Frame {
      std::uint32_t inst;
      std::vector<MfgId> kids;  // in-band children still to visit
      std::size_t next = 0;
    };

    const auto make_instance = [&](MfgId id) -> std::uint32_t {
      if (sched.instances.size() >= max_instances) {
        throw CompileError("instance budget exceeded while duplicating shared "
                           "MFGs; fall back to a narrower partition");
      }
      MfgInstance inst;
      inst.mfg = id;
      sched.instances.push_back(std::move(inst));
      return static_cast<std::uint32_t>(sched.instances.size() - 1);
    };

    const auto in_band_children = [&](MfgId id) {
      std::vector<MfgId> kids;
      for (const MfgId c : forest.children_of(id)) {
        if (in_band.count(c) != 0) kids.push_back(c);
      }
      return kids;
    };

    for (const MfgId r : roots) {
      const std::uint32_t root_inst = make_instance(r);
      sched.band_root_instance.emplace(r, root_inst);
      std::vector<Frame> stack;
      stack.push_back({root_inst, in_band_children(r), 0});
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next < f.kids.size()) {
          const MfgId c = f.kids[f.next++];
          std::uint32_t child_inst = kInvalidMfg;
          bool fresh = true;
          if (mode == SharingMode::kShared) {
            const auto it = shared_instance.find(c);
            if (it != shared_instance.end()) {
              child_inst = it->second;
              fresh = false;
            }
          }
          if (fresh) {
            child_inst = make_instance(c);
            if (mode == SharingMode::kShared) shared_instance.emplace(c, child_inst);
          }
          // Bind this parent's external inputs produced by c to child_inst.
          MfgInstance& parent = sched.instances[f.inst];
          for (const NodeId in : forest.at(parent.mfg).external_inputs) {
            if (forest.producer_of(in) == c) parent.producer_instance[in] = child_inst;
          }
          if (fresh) {
            stack.push_back({child_inst, in_band_children(c), 0});
          }
          continue;
        }
        order.push_back(f.inst);
        stack.pop_back();
      }
    }
    // Chain assignment: an instance joins the current wavefront iff the
    // previous instance on it is one of its bound child instances (the
    // paper's most-recent-child memLoc sharing).
    std::vector<std::vector<std::uint32_t>> band_waves;
    for (const std::uint32_t inst : order) {
      bool chained = false;
      if (!band_waves.empty()) {
        const std::uint32_t prev = band_waves.back().back();
        for (const auto& [node, pinst] : sched.instances[inst].producer_instance) {
          if (pinst == prev) {
            chained = true;
            break;
          }
        }
      }
      if (chained) {
        band_waves.back().push_back(inst);
        ++sched.stats.chained_mfgs;
      } else {
        band_waves.push_back({inst});
      }
    }

    // Base memLoc of this band: respect feedback timing. A value produced on
    // memLoc w leaves the last LPV at macro time w + n - 1 and can be read at
    // LPV 0 on memLoc w' only if w' > w + n - 1.
    std::uint32_t base = static_cast<std::uint32_t>(sched.wavefronts.size());
    if (band > 0) {
      std::int64_t min_base = base;
      for (std::size_t off = 0; off < band_waves.size(); ++off) {
        for (const std::uint32_t inst : band_waves[off]) {
          const Mfg& g = forest.at(sched.instances[inst].mfg);
          if (static_cast<std::uint32_t>(g.bottom) % n != 0) continue;
          for (const NodeId y : g.external_inputs) {
            const auto it = sched.band_root_instance.find(forest.producer_of(y));
            LBNN_CHECK(it != sched.band_root_instance.end(),
                       "cross-band producer is not a band root");
            const std::uint32_t wp = sched.instances[it->second].wavefront;
            // need base + off > wp + n - 1
            min_base = std::max<std::int64_t>(
                min_base,
                static_cast<std::int64_t>(wp) + n - static_cast<std::int64_t>(off));
          }
        }
      }
      const std::uint32_t padded = static_cast<std::uint32_t>(min_base);
      sched.stats.bubbles += padded - base;
      while (sched.wavefronts.size() < padded) sched.wavefronts.emplace_back();
      base = padded;
    }
    for (std::size_t off = 0; off < band_waves.size(); ++off) {
      for (const std::uint32_t inst : band_waves[off]) {
        sched.instances[inst].wavefront = base + static_cast<std::uint32_t>(off);
      }
      sched.wavefronts.push_back(std::move(band_waves[off]));
    }
    ++sched.stats.bands;
  }

  // ---- snapshot-lane allocation --------------------------------------------
  LaneAllocator alloc(n, cfg.m);
  for (const auto& wave : sched.wavefronts) {
    for (const std::uint32_t ii : wave) {
      MfgInstance& inst = sched.instances[ii];
      const Mfg& g = forest.at(inst.mfg);
      const std::uint32_t w = inst.wavefront;
      const std::uint32_t band = static_cast<std::uint32_t>(g.bottom) / n;
      inst.lanes.lanes.resize(g.levels.size());
      for (std::size_t i = 0; i < g.levels.size(); ++i) {
        const std::uint32_t lpv =
            static_cast<std::uint32_t>(g.bottom) + static_cast<std::uint32_t>(i) -
            band * n;
        // The bottom level of an in-band parent parks from its earliest
        // operand delivery until its own wavefront; everything else is
        // transient. Feedback-fed bottoms (level ≡ 0 mod n of band > 0) and
        // PI-load bottoms (level 0) read buffers per-wavefront instead.
        const bool parked_level =
            i == 0 && g.bottom > 0 && static_cast<std::uint32_t>(g.bottom) % n != 0;
        inst.lanes.lanes[i].resize(g.levels[i].size());
        for (std::size_t k = 0; k < g.levels[i].size(); ++k) {
          const NodeId x = g.levels[i][k];
          std::int64_t start = w;
          if (parked_level) {
            for (int f = 0; f < nl.arity(x); ++f) {
              const NodeId y = f == 0 ? nl.fanin0(x) : nl.fanin1(x);
              const auto it = inst.producer_instance.find(y);
              LBNN_CHECK(it != inst.producer_instance.end(),
                         "unbound producer for a parked operand");
              start = std::min<std::int64_t>(
                  start, sched.instances[it->second].wavefront);
            }
          }
          const Lane lane = alloc.allocate(lpv, start, w, parked_level);
          if (lane == kInvalidLane) {
            throw CompileError(
                "snapshot-lane allocation failed at LPV " + std::to_string(lpv) +
                " wavefront " + std::to_string(w) +
                "; retry with duplication or width headroom");
          }
          inst.lanes.lanes[i][k] = lane;
        }
      }
    }
  }

  sched.stats.wavefronts = static_cast<std::uint32_t>(sched.wavefronts.size());
  sched.stats.instances = static_cast<std::uint32_t>(sched.instances.size());
  {
    std::unordered_set<MfgId> distinct;
    for (const auto& inst : sched.instances) distinct.insert(inst.mfg);
    sched.stats.duplicates =
        sched.stats.instances - static_cast<std::uint32_t>(distinct.size());
  }
  return sched;
}

}  // namespace lbnn
