#pragma once

#include <cstdint>
#include <string>

namespace lbnn {

/// Architectural parameters of one LPU (Sec. IV).
///
/// An LPU is a linear chain of `n` LPVs; each LPV holds `m` LPEs; each LPE
/// has one 2-input configurable logic unit and two snapshot (input)
/// registers. Operands are `word_width` bits wide (2m in the paper: 2m
/// Boolean samples processed in parallel). Data moves LPV-to-LPV through a
/// non-blocking multicast switch network with `tsw` pipeline stages, so one
/// macro (compute) cycle costs `tc = 1 + tsw` clock cycles.
struct LpuConfig {
  std::uint32_t m = 64;   ///< LPEs per LPV
  std::uint32_t n = 16;   ///< LPVs per LPU
  std::uint32_t tsw = 5;  ///< switch network pipeline stages
  /// Datapath word width in bits; 0 means the paper's default of 2m.
  std::uint32_t word_width = 0;
  double clock_mhz = 333.0;  ///< prototype clock (Table I)

  std::uint32_t tc() const { return 1 + tsw; }
  std::uint32_t effective_word_width() const {
    return word_width == 0 ? 2 * m : word_width;
  }

  /// Validate (throws lbnn::Error on nonsense like m == 0).
  void validate() const;

  std::string to_string() const;
};

}  // namespace lbnn
