#include "core/program.hpp"

#include <ostream>

#include "common/error.hpp"

namespace lbnn {

double Program::samples_per_second() const {
  const double cycles = static_cast<double>(steady_state_interval_cycles());
  if (cycles == 0) return 0.0;
  const double batches_per_sec = cfg.clock_mhz * 1e6 / cycles;
  return batches_per_sec * cfg.effective_word_width();
}

std::uint64_t Program::total_routes() const {
  std::uint64_t t = 0;
  for (const auto& wave : instr) {
    for (const auto& li : wave) t += li.routes.size();
  }
  return t;
}

std::uint64_t Program::total_computes() const {
  std::uint64_t t = 0;
  for (const auto& wave : instr) {
    for (const auto& li : wave) t += li.computes.size();
  }
  return t;
}

void Program::validate() const {
  cfg.validate();
  if (instr.size() != num_wavefronts) throw Error("program: wavefront count mismatch");
  for (const auto& wave : instr) {
    if (wave.size() != cfg.n) throw Error("program: LPV count mismatch");
    for (std::size_t j = 0; j < wave.size(); ++j) {
      for (const auto& r : wave[j].routes) {
        if (r.slot >= 2 * cfg.m) throw Error("program: route slot out of range");
        if (r.src.kind == SrcSel::Kind::kPrevLane && r.src.index >= cfg.m) {
          throw Error("program: route source lane out of range");
        }
        if (r.src.kind == SrcSel::Kind::kInput && r.src.index >= input_layout.size()) {
          throw Error("program: input buffer address out of range");
        }
      }
      for (const auto& c : wave[j].computes) {
        if (c.lane >= cfg.m) throw Error("program: compute lane out of range");
      }
      if (!wave[j].feedback_writes.empty() && j + 1 != cfg.n) {
        throw Error("program: feedback write on a non-terminal LPV");
      }
    }
  }
  for (const auto& tap : output_taps) {
    if (tap.wavefront >= num_wavefronts) throw Error("program: tap wavefront out of range");
    if (tap.lane >= cfg.m) throw Error("program: tap lane out of range");
    if (tap.po_index >= num_primary_outputs) throw Error("program: tap PO out of range");
  }
}

void Program::disassemble(std::ostream& os, std::uint32_t max_wavefronts) const {
  os << "program " << cfg.to_string() << " wavefronts=" << num_wavefronts
     << " pis=" << num_primary_inputs << " pos=" << num_primary_outputs << "\n";
  const std::uint32_t count = std::min(max_wavefronts, num_wavefronts);
  for (std::uint32_t w = 0; w < count; ++w) {
    bool printed_header = false;
    for (std::uint32_t j = 0; j < cfg.n; ++j) {
      const LpvInstr& li = instr[w][j];
      if (li.empty()) continue;
      if (!printed_header) {
        os << "memLoc " << w << ":\n";
        printed_header = true;
      }
      os << "  lpv" << j << ":";
      for (const auto& r : li.routes) {
        os << " s" << (r.slot / 2) << (r.slot % 2 == 0 ? "a" : "b") << "<-";
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: os << "p" << r.src.index; break;
          case SrcSel::Kind::kInput: os << "in" << r.src.index; break;
          case SrcSel::Kind::kFeedback: os << "fb" << r.src.index; break;
        }
      }
      for (const auto& c : li.computes) {
        os << " l" << c.lane << "=lut" << static_cast<int>(c.lut.bits());
      }
      if (!li.feedback_writes.empty()) {
        os << " fbw{";
        for (const Lane l : li.feedback_writes) os << l << ",";
        os << "}";
      }
      os << "\n";
    }
    if (!printed_header) os << "memLoc " << w << ": (bubble)\n";
  }
  if (count < num_wavefronts) os << "... (" << num_wavefronts - count << " more)\n";
}

}  // namespace lbnn
