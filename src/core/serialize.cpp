#include "core/serialize.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace lbnn {
namespace {

const char* kind_name(SrcSel::Kind k) {
  switch (k) {
    case SrcSel::Kind::kPrevLane: return "prev";
    case SrcSel::Kind::kInput: return "in";
    case SrcSel::Kind::kFeedback: return "fb";
  }
  return "?";
}

SrcSel::Kind kind_from(const std::string& s) {
  if (s == "prev") return SrcSel::Kind::kPrevLane;
  if (s == "in") return SrcSel::Kind::kInput;
  if (s == "fb") return SrcSel::Kind::kFeedback;
  throw Error("bad source kind '" + s + "' in program file");
}

}  // namespace

void write_program(std::ostream& os, const Program& prog) {
  os << "lpu " << prog.cfg.m << " " << prog.cfg.n << " " << prog.cfg.tsw << " "
     << prog.cfg.word_width << " " << prog.cfg.clock_mhz << "\n";
  os << "wavefronts " << prog.num_wavefronts << " pis " << prog.num_primary_inputs
     << " pos " << prog.num_primary_outputs << "\n";
  for (std::size_t a = 0; a < prog.input_layout.size(); ++a) {
    os << "layout " << a << " " << prog.input_layout[a] << "\n";
  }
  for (std::uint32_t w = 0; w < prog.num_wavefronts; ++w) {
    for (std::uint32_t j = 0; j < prog.cfg.n; ++j) {
      const LpvInstr& li = prog.instr[w][j];
      for (const auto& r : li.routes) {
        os << "route " << w << " " << j << " " << r.slot << " "
           << kind_name(r.src.kind) << " " << r.src.index << "\n";
      }
      for (const auto& c : li.computes) {
        os << "lpe " << w << " " << j << " " << c.lane << " "
           << static_cast<int>(c.lut.bits()) << "\n";
      }
      for (const Lane l : li.feedback_writes) {
        os << "fbw " << w << " " << l << "\n";
      }
    }
  }
  for (const auto& tap : prog.output_taps) {
    os << "tap " << tap.wavefront << " " << tap.lane << " " << tap.po_index << "\n";
  }
  os << "end\n";
}

Program read_program(std::istream& is) {
  Program prog;
  std::string line;
  bool have_header = false;
  bool have_counts = false;
  bool done = false;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    const auto need = [&](bool ok) {
      if (!ok || ls.fail()) {
        throw Error("program file line " + std::to_string(lineno) + ": bad '" +
                    tag + "' record");
      }
    };
    if (tag == "lpu") {
      ls >> prog.cfg.m >> prog.cfg.n >> prog.cfg.tsw >> prog.cfg.word_width >>
          prog.cfg.clock_mhz;
      need(true);
      have_header = true;
    } else if (tag == "wavefronts") {
      std::string t1, t2;
      ls >> prog.num_wavefronts >> t1 >> prog.num_primary_inputs >> t2 >>
          prog.num_primary_outputs;
      need(t1 == "pis" && t2 == "pos" && have_header);
      prog.instr.assign(prog.num_wavefronts, std::vector<LpvInstr>(prog.cfg.n));
      have_counts = true;
    } else if (tag == "layout") {
      std::size_t addr = 0;
      std::uint32_t pi = 0;
      ls >> addr >> pi;
      need(have_counts);
      if (prog.input_layout.size() <= addr) prog.input_layout.resize(addr + 1, 0);
      prog.input_layout[addr] = pi;
    } else if (tag == "route") {
      std::uint32_t w = 0, j = 0, slot = 0, index = 0;
      std::string kind;
      ls >> w >> j >> slot >> kind >> index;
      need(have_counts && w < prog.num_wavefronts && j < prog.cfg.n);
      prog.instr[w][j].routes.push_back(
          {static_cast<std::uint16_t>(slot), SrcSel{kind_from(kind), index}});
    } else if (tag == "lpe") {
      std::uint32_t w = 0, j = 0, lane = 0;
      int lut = 0;
      ls >> w >> j >> lane >> lut;
      need(have_counts && w < prog.num_wavefronts && j < prog.cfg.n);
      prog.instr[w][j].computes.push_back(
          {static_cast<Lane>(lane), TruthTable4(static_cast<std::uint8_t>(lut))});
    } else if (tag == "fbw") {
      std::uint32_t w = 0, lane = 0;
      ls >> w >> lane;
      need(have_counts && w < prog.num_wavefronts);
      prog.instr[w][prog.cfg.n - 1].feedback_writes.push_back(
          static_cast<Lane>(lane));
    } else if (tag == "tap") {
      OutputTap tap;
      ls >> tap.wavefront >> tap.lane >> tap.po_index;
      need(have_counts);
      prog.output_taps.push_back(tap);
    } else if (tag == "end") {
      done = true;
      break;
    } else {
      throw Error("program file line " + std::to_string(lineno) +
                  ": unknown record '" + tag + "'");
    }
  }
  if (!done) throw Error("program file truncated (missing 'end')");
  prog.validate();
  return prog;
}

std::string program_to_string(const Program& prog) {
  std::ostringstream os;
  write_program(os, prog);
  return os.str();
}

Program program_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_program(is);
}

std::string emit_hex_images(const Program& prog) {
  // One $readmemh section per LPV. Micro-op word packing (32 bit):
  //   routes:   [31:30]=01  [29:28]=kind  [27:16]=slot  [15:0]=index
  //   computes: [31:30]=10  [21:16]=lut   [15:0]=lane
  //   barrier:  [31:30]=11  marks the end of a memLoc
  std::ostringstream os;
  os << std::hex << std::setfill('0');
  for (std::uint32_t j = 0; j < prog.cfg.n; ++j) {
    os << "// LPV " << std::dec << j << " instruction queue image ("
       << "load with $readmemh)\n" << std::hex;
    for (std::uint32_t w = 0; w < prog.num_wavefronts; ++w) {
      const LpvInstr& li = prog.instr[w][j];
      for (const auto& r : li.routes) {
        const std::uint32_t word = (0x1u << 30) |
                                   (static_cast<std::uint32_t>(r.src.kind) << 28) |
                                   (static_cast<std::uint32_t>(r.slot) << 16) |
                                   (r.src.index & 0xFFFFu);
        os << std::setw(8) << word << "\n";
      }
      for (const auto& c : li.computes) {
        const std::uint32_t word = (0x2u << 30) |
                                   (static_cast<std::uint32_t>(c.lut.bits()) << 16) |
                                   c.lane;
        os << std::setw(8) << word << "\n";
      }
      os << std::setw(8) << (0x3u << 30) << "\n";  // memLoc barrier
    }
  }
  return os.str();
}

std::string emit_testbench(const Program& prog, const std::string& module_name) {
  std::ostringstream os;
  os << "// Auto-generated testbench skeleton for the LPU program driving\n"
     << "// module '" << module_name << "' (cf. Fig. 1 'Configuration file and\n"
     << "// HDL testbench'). Pair with the queue images from emit_hex_images.\n";
  os << "`timescale 1ns/1ps\n";
  os << "module " << module_name << "_tb;\n";
  os << "  localparam M = " << prog.cfg.m << ";\n";
  os << "  localparam N = " << prog.cfg.n << ";\n";
  os << "  localparam W = " << prog.cfg.effective_word_width() << ";\n";
  os << "  localparam MEMLOCS = " << prog.num_wavefronts << ";\n";
  os << "  localparam TC = " << prog.cfg.tc() << ";\n";
  os << "  reg clk = 0;\n";
  os << "  always #1.5 clk = ~clk; // " << prog.cfg.clock_mhz << " MHz\n";
  os << "  reg [W-1:0] input_buffer [0:" << (prog.input_layout.empty()
                                                 ? 0
                                                 : prog.input_layout.size() - 1)
     << "];\n";
  os << "  wire [W-1:0] po [0:" << (prog.num_primary_outputs == 0
                                        ? 0
                                        : prog.num_primary_outputs - 1)
     << "];\n";
  os << "  // instantiate the generated LPU here and stream memLocs 0.."
     << prog.num_wavefronts - 1 << "\n";
  os << "  initial begin\n";
  os << "    // $readmemh(\"lpv<k>.hex\", lpu.queue[k]);\n";
  os << "    #(MEMLOCS * TC * 3 + 100) $finish;\n";
  os << "  end\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace lbnn
