#pragma once

#include <iosfwd>
#include <string>

#include "core/program.hpp"

namespace lbnn {

/// Program serialization — the "configuration file" output of the flow
/// (Fig. 1). The format is a line-oriented text format:
///
///   lpu <m> <n> <tsw> <word_width> <clock_mhz>
///   wavefronts <W> pis <P> pos <O>
///   layout <addr> <pi>
///   route <memLoc> <lpv> <slot> prev|in|fb <index>
///   lpe <memLoc> <lpv> <lane> <lut>
///   fbw <memLoc> <lane>
///   tap <memLoc> <lane> <po>
///   end
///
/// write_program/read_program round-trip exactly (tested); read_program
/// validates and throws lbnn::Error on malformed input.
void write_program(std::ostream& os, const Program& prog);
Program read_program(std::istream& is);

std::string program_to_string(const Program& prog);
Program program_from_string(const std::string& text);

/// Emit the per-LPV instruction queue images as $readmemh-style hex words
/// (one file body per LPV, concatenated with headers) plus a structural
/// Verilog testbench skeleton that streams the input buffer and checks the
/// output taps — the "HDL testbench" box of Fig. 1. The hex encoding packs
/// each (route slot, source) and (lane, lut) micro-op into one 32-bit word;
/// a real Chisel backend would consume the same stream.
std::string emit_hex_images(const Program& prog);
std::string emit_testbench(const Program& prog, const std::string& module_name);

}  // namespace lbnn
