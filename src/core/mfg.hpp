#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "netlist/netlist.hpp"

namespace lbnn {

/// A maximal feasible subgraph (Sec. II / V.A): the contiguous levels
/// [bottom, top] of a cone of the path-balanced network, at most m nodes per
/// level, closed under fanin except at the bottom level.
///
/// All nodes of the top level are the MFG's roots (outputs, delivered to
/// parent MFGs or to the output buffer); external_inputs are the level
/// bottom-1 nodes outside the MFG that feed its bottom level (empty when
/// bottom is 0 — those MFGs load primary inputs from the input data buffer).
struct Mfg {
  Level bottom = 0;
  Level top = 0;
  /// levels[i] = sorted node ids at level bottom + i.
  std::vector<std::vector<NodeId>> levels;
  /// Distinct level bottom-1 nodes feeding the bottom level (empty if bottom==0).
  std::vector<NodeId> external_inputs;

  const std::vector<NodeId>& roots() const { return levels.back(); }
  std::size_t num_levels() const { return levels.size(); }
  std::size_t num_nodes() const;
  /// Max level population (must be <= m).
  std::size_t max_width() const;
};

/// Options for partition(). `band` enables the depth-issue handling of Sec.
/// V.C: when band > 0, no MFG may span a multiple-of-band level boundary, so
/// every MFG maps onto one pass through a band-many-LPV LPU and cross-band
/// values travel through the output-buffer feedback path. band == 0 means
/// unbounded (LPU at least as deep as the network).
struct PartitionOptions {
  std::size_t m = 16;
  std::size_t band = 0;
};

/// The partitioning of a network into MFGs plus the producer relation.
class MfgForest {
 public:
  MfgForest(const Netlist& nl, std::vector<Level> levels)
      : nl_(&nl), node_level_(std::move(levels)) {}

  const Netlist& netlist() const { return *nl_; }
  Level node_level(NodeId n) const { return node_level_[n]; }
  const std::vector<Level>& node_levels() const { return node_level_; }

  MfgId add(Mfg mfg);

  std::size_t size() const { return mfgs_.size(); }
  std::size_t num_alive() const;
  const Mfg& at(MfgId id) const { return mfgs_[id]; }
  bool alive(MfgId id) const { return alive_[id]; }

  /// MFG whose roots contain `node` (every non-PI... every node consumed
  /// across MFG boundaries has exactly one producer).
  MfgId producer_of(NodeId node) const;
  bool has_producer(NodeId node) const;

  /// Child MFGs (producers of external inputs), deduplicated, of `id`.
  std::vector<MfgId> children_of(MfgId id) const;

  /// Replace MFGs a and b with their union. Caller must have verified the
  /// merge is legal (same bottom/top, per-level unions within m).
  MfgId merge(MfgId a, MfgId b);

  /// Ids of alive MFGs.
  std::vector<MfgId> alive_ids() const;

  /// Invariant checks for tests: conditions (1) and (2) of Sec. V.A,
  /// producer consistency, and full coverage of the network. Condition (4)
  /// holds only pre-merge and away from band cuts; tests check it there.
  void check_invariants(std::size_t m) const;

 private:
  const Netlist* nl_;
  std::vector<Level> node_level_;
  std::vector<Mfg> mfgs_;
  std::vector<bool> alive_;
  std::unordered_map<NodeId, MfgId> producer_;
};

/// Algorithm 2: the MFG rooted at `roots` (single node for Alg. 1; the
/// merged form passes several). Descends by whole levels; stops below a
/// level that would exceed m nodes, at a band boundary, or at the primary
/// inputs.
Mfg find_mfg(const Netlist& nl, const std::vector<Level>& levels, NodeId root,
             const PartitionOptions& opt);

/// Algorithm 1 generalized to multi-output networks: BFS from all primary
/// outputs, extracting one MFG per needed root. `nl` must be path-balanced.
MfgForest partition(const Netlist& nl, const PartitionOptions& opt);

/// Algorithm 3: greedily merge same-parent child MFGs with equal bottom
/// levels while every level union stays within m. Returns the number of
/// merges performed.
std::size_t merge_mfgs(MfgForest& forest, std::size_t m);

}  // namespace lbnn
