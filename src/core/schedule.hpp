#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/lpu_config.hpp"
#include "core/mfg.hpp"

namespace lbnn {

/// Per-instance lane assignment: lanes[i][k] is the LPE lane executing
/// Mfg::levels[i][k] of the instance's MFG.
struct LaneMap {
  std::vector<std::vector<Lane>> lanes;
};

/// One scheduled execution of an MFG. MFGs shared by several in-band parents
/// may be instantiated once per parent (SharingMode::kTree) — recomputation
/// instead of long-lived snapshot parking; the paper's condition (3)
/// explicitly allows overlapping/duplicated node sets.
struct MfgInstance {
  MfgId mfg = kInvalidMfg;
  std::uint32_t wavefront = 0;
  LaneMap lanes;
  /// For each external input node of the MFG (in-band only): the instance
  /// that produces it. Cross-band inputs resolve through band-root instances.
  std::unordered_map<NodeId, std::uint32_t> producer_instance;
};

/// How shared child MFGs are scheduled.
enum class SharingMode {
  /// One instance per MFG; outputs park in the consumer's snapshot lanes
  /// until every parent has fired. Minimal compute, but parking pressure can
  /// exhaust the m lanes of an LPV (throws CompileError).
  kShared,
  /// One instance per in-band consumer edge. Within a band the instance
  /// graph is a forest, all parked live ranges nest, and per-LPV lane demand
  /// provably never exceeds the MFG width bound, so allocation cannot fail.
  kTree,
};

struct ScheduleStats {
  std::uint32_t wavefronts = 0;    ///< total memLocs, including bubbles
  std::uint32_t bubbles = 0;       ///< NOP memLocs inserted for feedback timing
  std::uint32_t bands = 0;         ///< circulation passes (1 = no depth issue)
  std::uint32_t chained_mfgs = 0;  ///< instances sharing a memLoc with a child
  std::uint32_t instances = 0;     ///< scheduled MFG instances
  std::uint32_t duplicates = 0;    ///< instances beyond one-per-MFG
};

/// The static schedule: MFG instances bound to memLocs (wavefronts), chains
/// (the paper's "most recent child" memLoc sharing, Alg. 4 / Fig. 5), and the
/// lane of every node instance.
struct Schedule {
  std::vector<MfgInstance> instances;
  /// wavefronts[w] = instance indices on memLoc w, bottom-up; empty = bubble.
  std::vector<std::vector<std::uint32_t>> wavefronts;
  /// Band-root instance of each MFG that terminates a band (feeds feedback or
  /// primary outputs); these MFGs are never duplicated.
  std::unordered_map<MfgId, std::uint32_t> band_root_instance;
  ScheduleStats stats;
};

/// Build the schedule for a partitioned (and possibly merged) forest on the
/// given LPU. The forest must have been partitioned with band == cfg.n.
/// `max_instances` bounds kTree duplication blow-up (throws CompileError when
/// exceeded; the compiler falls back to narrower partitions).
Schedule build_schedule(const MfgForest& forest, const LpuConfig& cfg,
                        SharingMode mode, std::size_t max_instances = 1u << 20);

}  // namespace lbnn
