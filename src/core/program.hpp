#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"
#include "core/lpu_config.hpp"
#include "logic/truth_table4.hpp"

namespace lbnn {

/// Where an LPE input (snapshot) register takes its next value from.
///
/// Every (LPV, memLoc) instruction carries a sparse set of route writes; any
/// register slot not written HOLDS its value — that hold is exactly the
/// "snapshot for a certain data lifecycle" of Sec. IV, and a write at the
/// producer's wavefront followed by holds until the consumer's wavefront is
/// how parked MFG outputs live in the snapshot registers.
struct SrcSel {
  enum class Kind : std::uint8_t {
    kPrevLane,  ///< output `index` of the previous LPV, through the switch
    kInput,     ///< input data buffer word `index` (LPV 0, Lbottom = 0 MFGs)
    kFeedback,  ///< feedback region of the output data buffer (circulation)
  };
  Kind kind = Kind::kPrevLane;
  std::uint32_t index = 0;

  friend bool operator==(const SrcSel& a, const SrcSel& b) {
    return a.kind == b.kind && a.index == b.index;
  }
  friend bool operator!=(const SrcSel& a, const SrcSel& b) { return !(a == b); }
};

/// One route write: register slot <- src. Slots are numbered lane*2 + (0 for
/// operand A, 1 for operand B); an LPV with m LPEs has 2m slots, matching the
/// switch network's 2m destinations.
struct RouteWrite {
  std::uint16_t slot = 0;
  SrcSel src;
};

/// One LPE activation: lane executes the 4-bit LUT over its two snapshot
/// registers this wavefront. Lanes without a ComputeWrite produce no valid
/// output (the "instruction that invalidates output" of Fig. 6).
struct ComputeWrite {
  Lane lane = 0;
  TruthTable4 lut;
};

/// Instruction of one LPV at one memLoc (queue address).
struct LpvInstr {
  std::vector<RouteWrite> routes;
  std::vector<ComputeWrite> computes;
  /// Lanes of this LPV whose outputs are written to the feedback region of
  /// the output buffer this wavefront (only ever set on the last LPV).
  std::vector<Lane> feedback_writes;

  bool empty() const {
    return routes.empty() && computes.empty() && feedback_writes.empty();
  }
};

/// A primary output is captured from `lane` of the last LPV when memLoc
/// `wavefront` drains.
struct OutputTap {
  std::uint32_t wavefront = 0;
  Lane lane = 0;
  std::uint32_t po_index = 0;
};

/// A compiled LPU program: the contents of the instruction queues (Fig. 6),
/// the input data buffer layout, and the output taps.
struct Program {
  LpuConfig cfg;
  std::uint32_t num_wavefronts = 0;
  /// instr[memLoc][lpv]; memLocs are issued 0,1,2,... by the read-address
  /// incrementor and travel down the LPV chain via the shift register.
  std::vector<std::vector<LpvInstr>> instr;
  /// input_layout[addr] = primary-input index stored at that buffer address.
  std::vector<std::uint32_t> input_layout;
  std::vector<OutputTap> output_taps;
  std::uint32_t num_primary_inputs = 0;
  std::uint32_t num_primary_outputs = 0;

  /// Latency of one batch in macro (compute) cycles: the last memLoc must
  /// drain through all n LPVs.
  std::uint64_t macro_cycles() const { return num_wavefronts + cfg.n - 1; }
  /// Latency in clock cycles (each macro cycle costs tc = 1 + tsw clocks).
  std::uint64_t clock_cycles() const { return macro_cycles() * cfg.tc(); }
  /// Steady-state initiation interval in clock cycles: a new batch of
  /// word_width samples can be issued every num_wavefronts macro cycles.
  std::uint64_t steady_state_interval_cycles() const {
    return static_cast<std::uint64_t>(num_wavefronts) * cfg.tc();
  }
  /// Steady-state throughput in samples (bit lanes) per second.
  double samples_per_second() const;

  /// Counts of route/compute micro-operations (for reports and resources).
  std::uint64_t total_routes() const;
  std::uint64_t total_computes() const;

  /// Structural sanity checks (slot/lane ranges, tap ranges, ...).
  void validate() const;

  /// Human-readable dump (disassembly) of the first `max_wavefronts` memLocs.
  void disassemble(std::ostream& os, std::uint32_t max_wavefronts = 16) const;
};

}  // namespace lbnn
