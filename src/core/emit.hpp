#pragma once

#include "core/mfg.hpp"
#include "core/program.hpp"
#include "core/schedule.hpp"

namespace lbnn {

/// Generate the instruction-queue contents (Fig. 6) for a scheduled forest:
/// LPE micro-ops, switch route writes (including parked-snapshot deliveries
/// at the producer's memLoc), input-buffer loads, feedback writes/reads for
/// circulation, and output taps.
Program emit_program(const MfgForest& forest, const Schedule& sched,
                     const LpuConfig& cfg);

}  // namespace lbnn
