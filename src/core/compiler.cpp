#include "core/compiler.hpp"

#include "common/error.hpp"
#include "core/emit.hpp"
#include "core/mfg.hpp"
#include "core/schedule.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace lbnn {

CompileResult compile(const Netlist& input, const CompileOptions& options) {
  options.lpu.validate();
  if (options.lpu.n < 2) {
    throw CompileError("LPU needs at least 2 LPVs (chaining and feedback both "
                       "require a successor stage)");
  }
  input.validate();
  if (input.num_outputs() == 0) throw CompileError("netlist has no outputs");
  if (input.num_inputs() == 0) throw CompileError("netlist has no inputs");

  CompileReport report;

  // ---- pre-processing (Fig. 1 step 1) --------------------------------------
  Netlist nl = options.optimize ? optimize(input, &report.opt) : input;
  nl = tech_map(nl, options.library);
  nl = eliminate_dead(nl);  // guarantees every Lmax node is a primary output

  // Full path balancing, padding outputs so Lmax lands on the last LPV of the
  // final circulation pass (Lmax ≡ n-1 mod n).
  const std::uint32_t n = options.lpu.n;
  const Level depth = nl.depth();
  const Level target =
      static_cast<Level>(((static_cast<std::uint32_t>(depth) + n) / n) * n - 1);
  nl = balance_paths(nl, target);
  report.preprocessed = compute_stats(nl);
  report.lmax = nl.depth();

  // ---- partition / merge / schedule ----------------------------------------
  // Attempt ladder: shared scheduling first (no recomputation), then tree
  // duplication (which provably fits the lanes but recomputes shared cones),
  // then the same pair at halved partition widths if duplication blew the
  // instance budget.
  std::uint32_t m_eff = options.lpu.m;
  std::uint32_t attempt = 0;
  for (std::uint32_t round = 0;; ++round) {
    PartitionOptions popt;
    popt.m = m_eff;
    popt.band = n;
    MfgForest forest = partition(nl, popt);
    report.mfgs_before_merge = forest.num_alive();
    report.merges = options.merge ? merge_mfgs(forest, m_eff) : 0;
    report.mfgs_after_merge = forest.num_alive();

    for (const SharingMode mode : {SharingMode::kShared, SharingMode::kTree}) {
      try {
        Schedule sched = build_schedule(forest, options.lpu, mode);
        Program prog = emit_program(forest, sched, options.lpu);

        report.wavefronts = sched.stats.wavefronts;
        report.bubbles = sched.stats.bubbles;
        report.bands = sched.stats.bands;
        report.chained_mfgs = sched.stats.chained_mfgs;
        report.instances = sched.stats.instances;
        report.duplicates = sched.stats.duplicates;
        report.tree_sharing = mode == SharingMode::kTree;
        report.effective_m = m_eff;
        report.retries = attempt;
        return CompileResult{std::move(prog), report};
      } catch (const CompileError&) {
        ++attempt;
        if (round >= options.width_headroom_retries && mode == SharingMode::kTree) {
          throw;
        }
      }
    }
    if (m_eff <= 2) {
      throw CompileError("cannot schedule the network on this LPU even at "
                         "minimal partition width");
    }
    m_eff = m_eff / 2;
  }
}

}  // namespace lbnn
