#include "netlist/simulate.hpp"

#include "common/check.hpp"

namespace lbnn {

std::vector<BitVec> simulate(const Netlist& nl, const std::vector<BitVec>& inputs) {
  LBNN_CHECK(inputs.size() == nl.num_inputs(), "wrong number of input vectors");
  const std::size_t width = inputs.empty() ? 1 : inputs[0].width();
  for (const auto& v : inputs) {
    LBNN_CHECK(v.width() == width, "ragged input widths");
  }

  std::vector<BitVec> value(nl.num_nodes());
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    switch (nl.op(id)) {
      case GateOp::kInput:
        value[id] = inputs[static_cast<std::size_t>(nl.input_index(id))];
        break;
      case GateOp::kConst0:
        value[id] = BitVec(width, false);
        break;
      case GateOp::kConst1:
        value[id] = BitVec(width, true);
        break;
      case GateOp::kBuf:
        value[id] = value[nl.fanin0(id)];
        break;
      case GateOp::kNot:
        value[id] = ~value[nl.fanin0(id)];
        break;
      case GateOp::kAnd:
        value[id] = value[nl.fanin0(id)] & value[nl.fanin1(id)];
        break;
      case GateOp::kNand:
        value[id] = ~(value[nl.fanin0(id)] & value[nl.fanin1(id)]);
        break;
      case GateOp::kOr:
        value[id] = value[nl.fanin0(id)] | value[nl.fanin1(id)];
        break;
      case GateOp::kNor:
        value[id] = ~(value[nl.fanin0(id)] | value[nl.fanin1(id)]);
        break;
      case GateOp::kXor:
        value[id] = value[nl.fanin0(id)] ^ value[nl.fanin1(id)];
        break;
      case GateOp::kXnor:
        value[id] = ~(value[nl.fanin0(id)] ^ value[nl.fanin1(id)]);
        break;
    }
  }

  std::vector<BitVec> out;
  out.reserve(nl.num_outputs());
  for (const NodeId o : nl.outputs()) out.push_back(value[o]);
  return out;
}

std::vector<bool> simulate_scalar(const Netlist& nl, const std::vector<bool>& inputs) {
  std::vector<BitVec> vecs;
  vecs.reserve(inputs.size());
  for (const bool b : inputs) {
    BitVec v(1);
    v.set(0, b);
    vecs.push_back(v);
  }
  const auto outs = simulate(nl, vecs);
  std::vector<bool> r;
  r.reserve(outs.size());
  for (const auto& o : outs) r.push_back(o.get(0));
  return r;
}

std::vector<BitVec> random_inputs(const Netlist& nl, std::size_t width, Rng& rng) {
  std::vector<BitVec> vecs;
  vecs.reserve(nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    vecs.push_back(BitVec::random(width, rng));
  }
  return vecs;
}

bool equivalent_random(const Netlist& a, const Netlist& b, std::size_t width,
                       std::size_t rounds, Rng& rng) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto in = random_inputs(a, width, rng);
    if (simulate(a, in) != simulate(b, in)) return false;
  }
  return true;
}

}  // namespace lbnn
