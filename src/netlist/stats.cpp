#include "netlist/stats.hpp"

#include <algorithm>
#include <ostream>

namespace lbnn {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_inputs = nl.num_inputs();
  s.num_outputs = nl.num_outputs();
  s.num_gates = nl.num_gates();
  const auto levels = nl.levels();
  s.depth = nl.num_nodes() == 0 ? 0 : *std::max_element(levels.begin(), levels.end());
  s.width_profile.assign(static_cast<std::size_t>(s.depth) + 1, 0);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (nl.op(id) == GateOp::kBuf) ++s.num_buffers;
    ++s.width_profile[static_cast<std::size_t>(levels[id])];
  }
  s.max_width = s.width_profile.empty()
                    ? 0
                    : *std::max_element(s.width_profile.begin(), s.width_profile.end());
  return s;
}

std::ostream& operator<<(std::ostream& os, const NetlistStats& s) {
  os << "inputs=" << s.num_inputs << " outputs=" << s.num_outputs
     << " gates=" << s.num_gates << " (buffers=" << s.num_buffers << ")"
     << " depth=" << s.depth << " max_width=" << s.max_width;
  return os;
}

}  // namespace lbnn
