#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace lbnn {

/// Families of randomly generated circuits used by property tests and the
/// compiler micro-benchmarks. All generators produce valid, connected
/// netlists with at least one output.

struct RandomCircuitSpec {
  std::size_t num_inputs = 8;
  std::size_t num_gates = 64;
  std::size_t num_outputs = 4;
  /// Bias each fanin pick toward recently created nodes; larger values make
  /// deeper, narrower circuits. 0 = uniform over all existing nodes.
  double recency_bias = 2.0;
  /// Probability that a gate is a unary NOT/BUF instead of a binary op.
  double unary_fraction = 0.1;
};

/// Layered random DAG: gates pick fanins among earlier nodes with a recency
/// bias, ops drawn from the full LUT4 library.
Netlist random_dag(const RandomCircuitSpec& spec, Rng& rng);

/// A balanced reduction tree (AND/OR/XOR mix) over `num_inputs` leaves —
/// the "deep and narrow" stress case for partitioning.
Netlist random_tree(std::size_t num_inputs, Rng& rng);

/// Highly reconvergent circuit: k layers that each XOR/AND adjacent pairs
/// with wraparound, so every output depends on most inputs — the "wide with
/// shared logic" stress case (resembles BNN popcount structure).
Netlist reconvergent_grid(std::size_t width, std::size_t layers, Rng& rng);

}  // namespace lbnn
