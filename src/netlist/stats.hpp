#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "netlist/netlist.hpp"

namespace lbnn {

/// Aggregate structural statistics of a netlist — used by compiler reports,
/// the workload inventory in EXPERIMENTS.md, and tests.
struct NetlistStats {
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_gates = 0;
  std::size_t num_buffers = 0;  ///< kBuf nodes (FPB padding shows up here)
  Level depth = 0;
  /// Number of nodes at each level 0..depth.
  std::vector<std::size_t> width_profile;
  std::size_t max_width = 0;
};

NetlistStats compute_stats(const Netlist& nl);

std::ostream& operator<<(std::ostream& os, const NetlistStats& s);

}  // namespace lbnn
