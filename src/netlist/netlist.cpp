#include "netlist/netlist.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn {

NodeId Netlist::add_input(std::string name) {
  const NodeId id = static_cast<NodeId>(ops_.size());
  ops_.push_back(GateOp::kInput);
  fanin_.push_back({kInvalidNode, kInvalidNode});
  input_index_.emplace(id, static_cast<int>(inputs_.size()));
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

NodeId Netlist::add_gate(GateOp op, NodeId a, NodeId b) {
  const NodeId id = static_cast<NodeId>(ops_.size());
  const int arity = gate_arity(op);
  LBNN_CHECK(op != GateOp::kInput, "use add_input for primary inputs");
  if (arity >= 1) {
    LBNN_CHECK(a < id, "fanin 0 must reference an existing node");
  } else {
    LBNN_CHECK(a == kInvalidNode, "arity-0 gate must not have fanins");
  }
  if (arity == 2) {
    LBNN_CHECK(b < id, "fanin 1 must reference an existing node");
  } else {
    LBNN_CHECK(b == kInvalidNode, "gate arity/fanin mismatch");
  }
  ops_.push_back(op);
  fanin_.push_back({a, b});
  return id;
}

void Netlist::add_output(NodeId id, std::string name) {
  LBNN_CHECK(id < ops_.size(), "output references nonexistent node");
  outputs_.push_back(id);
  output_names_.push_back(std::move(name));
}

int Netlist::input_index(NodeId id) const {
  const auto it = input_index_.find(id);
  return it == input_index_.end() ? -1 : it->second;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> counts(ops_.size(), 0);
  for (NodeId id = 0; id < ops_.size(); ++id) {
    for (int k = 0; k < arity(id); ++k) {
      ++counts[fanin_[id][k]];
    }
  }
  return counts;
}

std::vector<Level> Netlist::levels() const {
  std::vector<Level> level(ops_.size(), 0);
  for (NodeId id = 0; id < ops_.size(); ++id) {
    Level max_in = -1;
    for (int k = 0; k < arity(id); ++k) {
      max_in = std::max(max_in, level[fanin_[id][k]]);
    }
    level[id] = (arity(id) == 0) ? 0 : max_in + 1;
  }
  return level;
}

Level Netlist::depth() const {
  const auto lv = levels();
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

void Netlist::validate() const {
  if (fanin_.size() != ops_.size()) throw Error("netlist arrays out of sync");
  for (NodeId id = 0; id < ops_.size(); ++id) {
    const int ar = gate_arity(ops_[id]);
    for (int k = 0; k < 2; ++k) {
      if (k < ar) {
        if (fanin_[id][k] >= id) {
          throw Error("node " + std::to_string(id) + " has invalid fanin");
        }
      } else if (fanin_[id][k] != kInvalidNode) {
        throw Error("node " + std::to_string(id) + " has extra fanin");
      }
    }
  }
  for (const NodeId out : outputs_) {
    if (out >= ops_.size()) throw Error("dangling primary output");
  }
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (ops_[inputs_[i]] != GateOp::kInput) {
      throw Error("input list references a non-input node");
    }
  }
}

}  // namespace lbnn
