#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "logic/gate_op.hpp"

namespace lbnn {

/// A combinational logic network (the in-memory form of an FFCL block).
///
/// Nodes are stored in a dense, topologically ordered array: `add_gate`
/// requires that every fanin already exists, so iterating ids 0..size-1 visits
/// fanins before fanouts. Passes therefore never need an explicit topological
/// sort. Netlists are value types; optimization passes build new netlists
/// rather than mutating in place.
class Netlist {
 public:
  /// Add a primary input. `name` must be unique among inputs.
  NodeId add_input(std::string name);

  /// Add a gate. Arity must match `op` (kInvalidNode for unused slots).
  NodeId add_gate(GateOp op, NodeId a = kInvalidNode, NodeId b = kInvalidNode);

  /// Declare `id` a primary output under `name`. The same node may drive
  /// several outputs; output order is the declaration order.
  void add_output(NodeId id, std::string name);

  std::size_t num_nodes() const { return ops_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  GateOp op(NodeId id) const { return ops_[id]; }
  NodeId fanin0(NodeId id) const { return fanin_[id][0]; }
  NodeId fanin1(NodeId id) const { return fanin_[id][1]; }
  int arity(NodeId id) const { return gate_arity(ops_[id]); }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  /// Index of `id` in inputs(), or -1 if it is not a primary input.
  int input_index(NodeId id) const;

  /// Number of gate nodes (excludes primary inputs).
  std::size_t num_gates() const { return ops_.size() - inputs_.size(); }

  /// Count of fanout edges per node (outputs do not count as fanout).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Logic level of every node: inputs/constants at 0, gates at
  /// 1 + max(level of fanins). (Constants level 0.)
  std::vector<Level> levels() const;

  /// max over levels() (0 for a gate-free netlist).
  Level depth() const;

  /// Throws lbnn::Error if any structural invariant is broken (bad fanin ids,
  /// arity mismatch, output of nonexistent node, ...). Called by tests and at
  /// the compiler boundary.
  void validate() const;

 private:
  std::vector<GateOp> ops_;
  std::vector<std::array<NodeId, 2>> fanin_;
  std::vector<NodeId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<NodeId, int> input_index_;
};

}  // namespace lbnn
