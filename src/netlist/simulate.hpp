#pragma once

#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace lbnn {

/// Reference bit-parallel simulator for a Netlist.
///
/// `inputs` holds one BitVec per primary input (in inputs() order), all of the
/// same width W; the result holds one BitVec per primary output. Each of the W
/// bit lanes is an independent evaluation — the same packing the LPU datapath
/// uses, so LPU-vs-reference comparison is exact.
std::vector<BitVec> simulate(const Netlist& nl, const std::vector<BitVec>& inputs);

/// Evaluate on a single scalar input assignment (convenience for small tests).
std::vector<bool> simulate_scalar(const Netlist& nl, const std::vector<bool>& inputs);

/// Random input vectors of the given lane width for every primary input.
std::vector<BitVec> random_inputs(const Netlist& nl, std::size_t width, Rng& rng);

/// True iff the two netlists have identical input/output arity and agree on
/// `rounds` batches of `width`-lane random vectors (inputs are matched by
/// position, not name). This is the workhorse of the pass-correctness
/// property tests.
bool equivalent_random(const Netlist& a, const Netlist& b, std::size_t width,
                       std::size_t rounds, Rng& rng);

}  // namespace lbnn
