#include "netlist/random_circuits.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lbnn {
namespace {

GateOp random_binary_op(Rng& rng) {
  static constexpr GateOp kOps[] = {GateOp::kAnd, GateOp::kNand, GateOp::kOr,
                                    GateOp::kNor, GateOp::kXor,  GateOp::kXnor};
  return kOps[rng.next_below(std::size(kOps))];
}

/// Pick an existing node id with optional bias toward recent ids.
NodeId pick_node(std::size_t count, double recency_bias, Rng& rng) {
  if (recency_bias <= 0.0) {
    return static_cast<NodeId>(rng.next_below(count));
  }
  // Exponent < 1 pushes the uniform sample toward 1.0, i.e. toward recent ids.
  const double u = rng.next_double();
  const double biased = std::pow(u, 1.0 / (1.0 + recency_bias));
  const auto idx = static_cast<std::size_t>(biased * static_cast<double>(count));
  return static_cast<NodeId>(std::min(idx, count - 1));
}

}  // namespace

Netlist random_dag(const RandomCircuitSpec& spec, Rng& rng) {
  LBNN_CHECK(spec.num_inputs > 0, "need at least one input");
  LBNN_CHECK(spec.num_outputs > 0, "need at least one output");
  Netlist nl;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    nl.add_input("x" + std::to_string(i));
  }
  for (std::size_t g = 0; g < spec.num_gates; ++g) {
    const std::size_t count = nl.num_nodes();
    if (rng.next_double() < spec.unary_fraction) {
      const GateOp op = rng.next_bool() ? GateOp::kNot : GateOp::kBuf;
      nl.add_gate(op, pick_node(count, spec.recency_bias, rng));
    } else {
      nl.add_gate(random_binary_op(rng),
                  pick_node(count, spec.recency_bias, rng),
                  pick_node(count, spec.recency_bias, rng));
    }
  }
  // Outputs: prefer the most recent gates so the whole graph tends to be live.
  for (std::size_t o = 0; o < spec.num_outputs; ++o) {
    const NodeId id = static_cast<NodeId>(nl.num_nodes() - 1 - rng.next_below(std::min<std::size_t>(nl.num_nodes(), spec.num_outputs * 2)));
    nl.add_output(id, "y" + std::to_string(o));
  }
  return nl;
}

Netlist random_tree(std::size_t num_inputs, Rng& rng) {
  LBNN_CHECK(num_inputs >= 2, "tree needs >= 2 leaves");
  Netlist nl;
  std::vector<NodeId> frontier;
  frontier.reserve(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    frontier.push_back(nl.add_input("x" + std::to_string(i)));
  }
  while (frontier.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((frontier.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      next.push_back(nl.add_gate(random_binary_op(rng), frontier[i], frontier[i + 1]));
    }
    if (frontier.size() % 2 == 1) next.push_back(frontier.back());
    frontier = std::move(next);
  }
  nl.add_output(frontier[0], "y0");
  return nl;
}

Netlist reconvergent_grid(std::size_t width, std::size_t layers, Rng& rng) {
  LBNN_CHECK(width >= 2, "grid needs width >= 2");
  Netlist nl;
  std::vector<NodeId> row;
  row.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    row.push_back(nl.add_input("x" + std::to_string(i)));
  }
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<NodeId> next(width);
    for (std::size_t i = 0; i < width; ++i) {
      next[i] = nl.add_gate(random_binary_op(rng), row[i], row[(i + 1) % width]);
    }
    row = std::move(next);
  }
  for (std::size_t i = 0; i < width; ++i) {
    nl.add_output(row[i], "y" + std::to_string(i));
  }
  return nl;
}

}  // namespace lbnn
