#pragma once

#include <cstdint>
#include <string_view>

namespace lbnn {

/// The gate operations a Netlist node can carry.
///
/// The LPE logic unit of the paper supports MISO operations (AND, OR,
/// XOR/XNOR) and SISO operations (NOT/BUFFER); our hardware model implements
/// the logic unit as a 2-input configurable LUT, so NAND/NOR come for free and
/// are included here. kInput marks a primary input; kConst0/kConst1 are
/// constant drivers that optimization folds away before mapping.
enum class GateOp : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Number of fanins the op consumes (0, 1, or 2).
int gate_arity(GateOp op);

/// True for AND/NAND/OR/NOR/XOR/XNOR (operand order does not matter).
bool gate_is_commutative(GateOp op);

/// Lower-case mnemonic ("and", "xnor", ...), used by the Verilog writer and
/// the disassembler.
std::string_view gate_name(GateOp op);

/// Evaluate the op on scalar booleans. For arity-1 ops `b` is ignored; for
/// arity-0 ops both are ignored.
bool gate_eval(GateOp op, bool a, bool b);

/// The complementary op (AND<->NAND, BUF<->NOT, ...). Constants map to the
/// other constant; kInput has no complement and triggers a check failure.
GateOp gate_complement(GateOp op);

}  // namespace lbnn
