#include "logic/cell_library.hpp"

namespace lbnn {

CellLibrary CellLibrary::paper_strict() {
  return CellLibrary{GateOp::kBuf, GateOp::kNot, GateOp::kAnd,
                     GateOp::kOr,  GateOp::kXor, GateOp::kXnor};
}

CellLibrary CellLibrary::lut4_full() {
  return CellLibrary{GateOp::kBuf, GateOp::kNot,  GateOp::kAnd, GateOp::kNand,
                     GateOp::kOr,  GateOp::kNor,  GateOp::kXor, GateOp::kXnor};
}

CellLibrary::CellLibrary(std::initializer_list<GateOp> ops) : ops_(ops) {
  for (const GateOp op : ops_) {
    supported_[static_cast<int>(op)] = true;
  }
  // Inputs and constants are structural, not cells; always admissible.
  supported_[static_cast<int>(GateOp::kInput)] = true;
  supported_[static_cast<int>(GateOp::kConst0)] = true;
  supported_[static_cast<int>(GateOp::kConst1)] = true;
}

bool CellLibrary::supports(GateOp op) const {
  return supported_[static_cast<int>(op)];
}

}  // namespace lbnn
