#include "logic/gate_op.hpp"

#include "common/check.hpp"

namespace lbnn {

int gate_arity(GateOp op) {
  switch (op) {
    case GateOp::kConst0:
    case GateOp::kConst1:
    case GateOp::kInput:
      return 0;
    case GateOp::kBuf:
    case GateOp::kNot:
      return 1;
    case GateOp::kAnd:
    case GateOp::kNand:
    case GateOp::kOr:
    case GateOp::kNor:
    case GateOp::kXor:
    case GateOp::kXnor:
      return 2;
  }
  LBNN_CHECK(false, "unknown GateOp");
  return 0;
}

bool gate_is_commutative(GateOp op) { return gate_arity(op) == 2; }

std::string_view gate_name(GateOp op) {
  switch (op) {
    case GateOp::kConst0: return "const0";
    case GateOp::kConst1: return "const1";
    case GateOp::kInput: return "input";
    case GateOp::kBuf: return "buf";
    case GateOp::kNot: return "not";
    case GateOp::kAnd: return "and";
    case GateOp::kNand: return "nand";
    case GateOp::kOr: return "or";
    case GateOp::kNor: return "nor";
    case GateOp::kXor: return "xor";
    case GateOp::kXnor: return "xnor";
  }
  return "?";
}

bool gate_eval(GateOp op, bool a, bool b) {
  switch (op) {
    case GateOp::kConst0: return false;
    case GateOp::kConst1: return true;
    case GateOp::kInput:
      LBNN_CHECK(false, "cannot evaluate a primary input");
      return false;
    case GateOp::kBuf: return a;
    case GateOp::kNot: return !a;
    case GateOp::kAnd: return a && b;
    case GateOp::kNand: return !(a && b);
    case GateOp::kOr: return a || b;
    case GateOp::kNor: return !(a || b);
    case GateOp::kXor: return a != b;
    case GateOp::kXnor: return a == b;
  }
  LBNN_CHECK(false, "unknown GateOp");
  return false;
}

GateOp gate_complement(GateOp op) {
  switch (op) {
    case GateOp::kConst0: return GateOp::kConst1;
    case GateOp::kConst1: return GateOp::kConst0;
    case GateOp::kBuf: return GateOp::kNot;
    case GateOp::kNot: return GateOp::kBuf;
    case GateOp::kAnd: return GateOp::kNand;
    case GateOp::kNand: return GateOp::kAnd;
    case GateOp::kOr: return GateOp::kNor;
    case GateOp::kNor: return GateOp::kOr;
    case GateOp::kXor: return GateOp::kXnor;
    case GateOp::kXnor: return GateOp::kXor;
    case GateOp::kInput: break;
  }
  LBNN_CHECK(false, "GateOp has no complement");
  return op;
}

}  // namespace lbnn
