#include "logic/truth_table4.hpp"

namespace lbnn {

TruthTable4 TruthTable4::from_op(GateOp op) {
  switch (op) {
    case GateOp::kConst0: return TruthTable4(0x0);
    case GateOp::kConst1: return TruthTable4(0xF);
    case GateOp::kBuf: return TruthTable4(0xA);   // f = a
    case GateOp::kNot: return TruthTable4(0x5);   // f = !a
    case GateOp::kAnd: return TruthTable4(0x8);
    case GateOp::kNand: return TruthTable4(0x7);
    case GateOp::kOr: return TruthTable4(0xE);
    case GateOp::kNor: return TruthTable4(0x1);
    case GateOp::kXor: return TruthTable4(0x6);
    case GateOp::kXnor: return TruthTable4(0x9);
    case GateOp::kInput: break;
  }
  LBNN_CHECK(false, "no truth table for op");
  return TruthTable4();
}

}  // namespace lbnn
