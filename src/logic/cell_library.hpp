#pragma once

#include <initializer_list>
#include <vector>

#include "logic/gate_op.hpp"
#include "logic/truth_table4.hpp"

namespace lbnn {

/// The set of gate operations an LPE is allowed to execute ("customized cell
/// library" of Sec. III). The technology mapper rewrites a netlist so that it
/// only contains library ops; the compiler refuses netlists that still carry
/// unsupported ops.
class CellLibrary {
 public:
  /// Library containing exactly the ops named in the paper:
  /// AND, OR, XOR, XNOR (MISO) and NOT, BUFFER (SISO).
  static CellLibrary paper_strict();

  /// Library with every function a 2-input LUT can realize (the default for
  /// our hardware model).
  static CellLibrary lut4_full();

  CellLibrary(std::initializer_list<GateOp> ops);

  bool supports(GateOp op) const;

  const std::vector<GateOp>& ops() const { return ops_; }

 private:
  std::vector<GateOp> ops_;
  bool supported_[16] = {};
};

}  // namespace lbnn
