#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "logic/gate_op.hpp"

namespace lbnn {

/// A 2-input Boolean function as a 4-bit truth table.
///
/// Bit i of `bits` is the function value at input (a = i&1, b = (i>>1)&1).
/// This is exactly the per-LPE configuration word of our hardware model: each
/// LPE's logic unit is a 2-input LUT, which subsumes the MISO/SISO op list of
/// the paper (Sec. IV).
class TruthTable4 {
 public:
  constexpr TruthTable4() = default;
  explicit constexpr TruthTable4(std::uint8_t bits) : bits_(bits & 0xF) {}

  static TruthTable4 from_op(GateOp op);

  constexpr std::uint8_t bits() const { return bits_; }

  constexpr bool eval(bool a, bool b) const {
    const int idx = (a ? 1 : 0) | (b ? 2 : 0);
    return (bits_ >> idx) & 1;
  }

  constexpr bool is_const0() const { return bits_ == 0x0; }
  constexpr bool is_const1() const { return bits_ == 0xF; }
  /// True when the function ignores input b (i.e. is buf(a) or not(a) or const).
  constexpr bool ignores_b() const {
    return ((bits_ >> 0) & 1) == ((bits_ >> 2) & 1) &&
           ((bits_ >> 1) & 1) == ((bits_ >> 3) & 1);
  }
  constexpr bool ignores_a() const {
    return ((bits_ >> 0) & 1) == ((bits_ >> 1) & 1) &&
           ((bits_ >> 2) & 1) == ((bits_ >> 3) & 1);
  }

  constexpr TruthTable4 complement() const {
    return TruthTable4(static_cast<std::uint8_t>(~bits_ & 0xF));
  }

  /// Function with the two inputs swapped.
  constexpr TruthTable4 swap_inputs() const {
    std::uint8_t r = 0;
    for (int idx = 0; idx < 4; ++idx) {
      const int swapped = ((idx & 1) << 1) | ((idx >> 1) & 1);
      if ((bits_ >> idx) & 1) r |= std::uint8_t(1u << swapped);
    }
    return TruthTable4(r);
  }

  friend constexpr bool operator==(TruthTable4 x, TruthTable4 y) {
    return x.bits_ == y.bits_;
  }

 private:
  std::uint8_t bits_ = 0;
};

}  // namespace lbnn
