#pragma once

#include <cstdint>
#include <string>

#include "core/program.hpp"
#include "lpu/sliced_program.hpp"

namespace lbnn::aot {

/// ABI version of the generated artifact's entry points. Bump whenever the
/// arena layout, the entry-point signature, or the return-value contract
/// changes — a disk-cached artifact from an older ABI then fails the
/// verification handshake and is recompiled instead of mis-executing.
constexpr unsigned kAotAbi = 2;

/// Content key of a program's native artifact: a stable hex fingerprint over
/// the full serialized program text plus the ABI version and the ISA the
/// artifact was compiled for ("avx2" or "base" — the two produce different
/// machine code from the same source). Also the artifact's on-disk base name,
/// so two engines sharing an artifact_dir converge on one file per
/// (program, ABI, ISA) and a warm restart finds its artifacts by recomputing
/// the key.
std::string content_key(const Program& prog, bool avx2);

/// Lower the replay stream to straight-line branchless C++, specialized to
/// the program's nominal row width of `words` 64-bit words: one kernel
/// function per truth table in use (constant-folded minterm chain over
/// explicitly vectorized 4 x u64 lanes, trip count a compile-time constant so
/// the loop fully unrolls), one constant-size row-copy helper, one function
/// per wavefront calling them with constant row offsets, and an
/// `lbnn_aot_run` body that is a cancel-poll + wavefront-call sequence.
/// Exported entry points (all extern "C"):
///
///   const char* lbnn_aot_key(void);   // == `key`, checked after dlopen
///   unsigned    lbnn_aot_abi(void);   // == kAotAbi, checked after dlopen
///   long        lbnn_aot_run(u64* arena, unsigned long words,
///                            const volatile unsigned char* cancel);
///
/// lbnn_aot_run executes the stream over an arena the host laid out exactly
/// as SlicedProgram documents (row index * words). It returns -1 on
/// completion, -2 when `words` is not the width the artifact was specialized
/// for (nothing executed — the host falls back to the direct-threaded
/// stream), or the wavefront index at which the cancel byte was observed
/// set — the host then reports the same partial counters and SimCancelled
/// message the interpreter would. Error replay (a stream truncated at a
/// compile-time SimError) stays host-side: the generated code just runs the
/// covered wavefronts. Hooks are not supported (kHook ops are skipped); the
/// serving engine never installs them on AOT members.
std::string generate_source(const SlicedProgram& sp, const std::string& key,
                            std::size_t words);

}  // namespace lbnn::aot
