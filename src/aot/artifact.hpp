#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "lpu/backend.hpp"
#include "lpu/kernels.hpp"
#include "lpu/sliced_program.hpp"

namespace lbnn::aot {

/// How to build an artifact. `artifact_dir` must exist and be writable; it
/// is both the scratch space for codegen and the persistent disk cache —
/// a later process pointed at the same directory reloads instead of
/// recompiling (the warm-restart path).
struct AotOptions {
  std::string artifact_dir;
  /// Compile the artifact for AVX2 (auto-vectorized loops; part of the
  /// content key, so base and AVX2 artifacts coexist in one directory).
  bool avx2 = false;
  /// false forces the direct-threaded leg even when a compiler is available
  /// (LBNN_AOT_THREADED=1 has the same effect; CI pins the leg with it).
  bool allow_native = true;
};

/// An AOT-compiled program: either a dlopen'd native shared object
/// (kAotNative) or the portable direct-threaded fallback (kAotThreaded) used
/// wherever spawning a compiler is unavailable or fails. Immutable once
/// built; shared by every executor running the program (executors carry the
/// per-run arena, the artifact carries only code and the replay-stream
/// metadata). The embedded SlicedProgram provides the arena layout, counter
/// prefixes, and error replay for both legs.
class ProgramArtifact {
 public:
  using RunFn = long (*)(std::uint64_t* arena, unsigned long words,
                         const volatile unsigned char* cancel);

  /// One direct-threaded op: uniform indirect dispatch, kernel resolved at
  /// build time for both tables (the executor picks word vs AVX2 per run by
  /// batch width). Row copies ride the same dispatch through the identity
  /// kernel (truth table 0b1010 = "a", with b pointed at the zero row), so
  /// the execution loop is a single call shape with no branching on op kind.
  struct ThreadedOp {
    kernels::KernelFn word;
    kernels::KernelFn avx2;  ///< == word off x86
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t dst = 0;
  };

  BackendKind kind = BackendKind::kAotThreaded;
  SlicedProgram sliced;
  std::string key;  ///< content key (also the on-disk base name)

  // Native leg (kind == kAotNative).
  RunFn run = nullptr;
  std::string so_path;
  /// The row width (in 64-bit words) the native code is specialized to —
  /// constant trip counts and constant row offsets are most of its edge over
  /// the interpreter. Off-width batches (a partial seal narrower than the
  /// program's word_width) take the threaded leg below instead.
  std::uint32_t native_words = 0;
  /// The artifact was reloaded from disk instead of compiled (warm restart).
  bool from_disk = false;

  // Threaded leg: always built — it is the whole artifact when kind ==
  // kAotThreaded, and the off-width fallback when kind == kAotNative.
  std::vector<ThreadedOp> threaded;
  std::vector<std::uint32_t> threaded_wave_end;  ///< per covered wavefront
  /// Native was requested but codegen/compile/dlopen failed; this artifact is
  /// the threaded fallback (the cache counts these as native_failures).
  bool native_failed = false;

  ProgramArtifact() = default;
  ProgramArtifact(ProgramArtifact&&) = default;
  ProgramArtifact& operator=(ProgramArtifact&&) = default;
  ProgramArtifact(const ProgramArtifact&) = delete;
  ProgramArtifact& operator=(const ProgramArtifact&) = delete;

 private:
  /// RAII dlopen handle: closed when the last shared_ptr to the artifact
  /// drops, i.e. never while any executor still holds the code mapped.
  struct DlHandle {
    void* h = nullptr;
    DlHandle() = default;
    explicit DlHandle(void* handle) : h(handle) {}
    DlHandle(DlHandle&& o) noexcept : h(o.h) { o.h = nullptr; }
    DlHandle& operator=(DlHandle&& o) noexcept;
    ~DlHandle();
  };
  DlHandle handle_;
  friend ProgramArtifact compile_artifact(const Program&, const AotOptions&);
};

/// The compiler the native leg spawns: LBNN_AOT_CXX if set, else the
/// configure-time compiler CMake baked in, else empty (native unavailable —
/// every artifact takes the threaded leg).
std::string aot_compiler();

/// Build (or reload) the artifact for `prog`:
///   1. If a shared object named by the content key exists in artifact_dir,
///      dlopen it and verify the embedded key and ABI; a corrupted or
///      truncated artifact (dlopen failure, missing symbols, key/ABI
///      mismatch) is unlinked and recompiled — never trusted.
///   2. Otherwise generate C++, spawn `aot_compiler() -O2 -fPIC -shared`
///      out of process into a unique temp name, and atomically rename into
///      place — concurrent builders (two engines sharing the directory)
///      each publish a complete file; last rename wins with identical bytes.
///   3. Where native is unavailable (no compiler, LBNN_AOT_THREADED=1,
///      allow_native=false) or any native step fails, fall back to the
///      direct-threaded leg built in-process — AOT always succeeds.
/// Throws only on programmer error (never on a failed native build).
ProgramArtifact compile_artifact(const Program& prog, const AotOptions& opt);

/// Executes a program through its AOT artifact — the third and fourth
/// backends behind the ExecutorBackend seam. Byte-exact with the
/// interpreter by contract: same outputs, same counters (including partial
/// counters after a cancel), same SimError messages at the same points, and
/// SimCancelled at identical wavefront boundaries. Single-threaded like
/// LpuSimulator (owns a per-run arena); the engine keeps one per
/// (worker, program).
class AotExecutor : public ExecutorBackend {
 public:
  /// `prog` must be the program `artifact` was compiled from (the serving
  /// engine guarantees it by content key).
  AotExecutor(const Program& prog,
              std::shared_ptr<const ProgramArtifact> artifact);

  std::vector<BitVec> run(const std::vector<BitVec>& inputs,
                          const std::atomic<bool>* cancel = nullptr) override;

  const SimCounters& counters() const override { return counters_; }

  BackendKind backend_kind() const override { return artifact_->kind; }

  const ProgramArtifact& artifact() const { return *artifact_; }

 private:
  const Program& prog_;
  std::shared_ptr<const ProgramArtifact> artifact_;
  SimCounters counters_;
  std::vector<std::uint64_t> arena_;
};

}  // namespace lbnn::aot
