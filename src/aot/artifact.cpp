#include "aot/artifact.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "aot/codegen.hpp"
#include "common/error.hpp"

namespace lbnn::aot {

namespace {

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Unique-per-call suffix for compile scratch files: pid catches two engines
/// sharing a directory, the counter catches two threads in one process.
std::string scratch_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(counter.fetch_add(1));
}

/// dlopen `path` and verify the handshake: all three entry points present,
/// ABI current, embedded key equal to the expected one. Returns the handle
/// with `*run_out` set, or nullptr when the artifact cannot be trusted
/// (missing, truncated, corrupted, foreign, stale ABI).
void* load_verified(const std::string& path, const std::string& key,
                    ProgramArtifact::RunFn* run_out) {
  void* h = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) return nullptr;
  using KeyFn = const char* (*)();
  using AbiFn = unsigned (*)();
  const auto keyfn = reinterpret_cast<KeyFn>(::dlsym(h, "lbnn_aot_key"));
  const auto abifn = reinterpret_cast<AbiFn>(::dlsym(h, "lbnn_aot_abi"));
  const auto runfn =
      reinterpret_cast<ProgramArtifact::RunFn>(::dlsym(h, "lbnn_aot_run"));
  if (keyfn == nullptr || abifn == nullptr || runfn == nullptr ||
      abifn() != kAotAbi || key != keyfn()) {
    ::dlclose(h);
    return nullptr;
  }
  *run_out = runfn;
  return h;
}

/// Generate, compile out of process, and atomically publish the shared
/// object at `so_path`. Returns false on any failure (the caller falls back
/// to the threaded leg). The temp-name + rename() protocol makes concurrent
/// builders safe: each publishes a complete file, last rename wins with
/// identical bytes, and no reader ever dlopens a half-written artifact.
bool build_native(const SlicedProgram& sp, const std::string& key,
                  std::size_t words, const std::string& cxx, bool avx2,
                  const std::string& dir, const std::string& so_path) {
  const std::string scratch = dir + "/." + key + "." + scratch_suffix();
  const std::string src_path = scratch + ".cpp";
  const std::string tmp_so = scratch + ".so";
  {
    std::ofstream src(src_path);
    if (!src) return false;
    src << generate_source(sp, key, words);
    if (!src.good()) {
      src.close();
      ::unlink(src_path.c_str());
      return false;
    }
  }
  const std::string cmd = cxx + " -O2 -fPIC -shared" +
                          (avx2 ? " -mavx2" : "") + " -o '" + tmp_so + "' '" +
                          src_path + "' >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  ::unlink(src_path.c_str());
  if (rc != 0) {
    ::unlink(tmp_so.c_str());
    return false;
  }
  if (std::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    ::unlink(tmp_so.c_str());
    return false;
  }
  return true;
}

void build_threaded(ProgramArtifact& art) {
  const kernels::KernelFn* word = kernels::word_table();
  const kernels::KernelFn* avx2 = kernels::avx2_table();
  if (avx2 == nullptr) avx2 = word;  // off x86 both tables are the word loop
  // Truth table 0b1010 evaluates to operand A regardless of B: the row-copy
  // shim, with B parked on the always-zero row.
  constexpr std::uint8_t kCopyBits = 0xA;
  art.threaded.clear();
  art.threaded_wave_end.clear();
  art.threaded_wave_end.reserve(art.sliced.compiled_waves);
  std::size_t op = 0;
  for (std::uint32_t w = 0; w < art.sliced.compiled_waves; ++w) {
    const std::uint32_t end = art.sliced.wave_op_end[w];
    for (; op < end; ++op) {
      const SlicedOp& o = art.sliced.ops[op];
      ProgramArtifact::ThreadedOp top;
      if (o.kind == SlicedOp::kCompute) {
        top.word = word[o.bits & 0xF];
        top.avx2 = avx2[o.bits & 0xF];
        top.a = o.a;
        top.b = o.b;
      } else if (o.kind == SlicedOp::kCopy) {
        top.word = word[kCopyBits];
        top.avx2 = avx2[kCopyBits];
        top.a = o.a;
        top.b = 0;
      } else {
        continue;  // kHook: no hook support in AOT backends
      }
      top.dst = o.dst;
      art.threaded.push_back(top);
    }
    art.threaded_wave_end.push_back(
        static_cast<std::uint32_t>(art.threaded.size()));
  }
  art.kind = BackendKind::kAotThreaded;
}

}  // namespace

ProgramArtifact::DlHandle& ProgramArtifact::DlHandle::operator=(
    DlHandle&& o) noexcept {
  if (this != &o) {
    if (h != nullptr) ::dlclose(h);
    h = o.h;
    o.h = nullptr;
  }
  return *this;
}

ProgramArtifact::DlHandle::~DlHandle() {
  if (h != nullptr) ::dlclose(h);
}

std::string aot_compiler() {
  if (const char* env = std::getenv("LBNN_AOT_CXX");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef LBNN_AOT_CXX_DEFAULT
  return LBNN_AOT_CXX_DEFAULT;
#else
  return std::string();
#endif
}

ProgramArtifact compile_artifact(const Program& prog, const AotOptions& opt) {
  ProgramArtifact art;
  art.key = content_key(prog, opt.avx2);
  art.sliced = compile_sliced(prog);
  // Threaded leg first, unconditionally: it is the whole artifact when
  // native is unavailable AND the off-width fallback when native loads (the
  // native code is specialized to the program's nominal row width).
  build_threaded(art);
  const std::size_t words = (prog.cfg.effective_word_width() + 63) / 64;

  const std::string cxx = aot_compiler();
  const bool native_possible = opt.allow_native && !env_set("LBNN_AOT_THREADED") &&
                               !cxx.empty() && !opt.artifact_dir.empty();
  if (native_possible) {
    const std::string so_path =
        opt.artifact_dir + "/lbnn-" + art.key + ".so";
    // Warm path: a previous process (or a sibling engine) already published
    // this artifact. Trust nothing — a corrupted or truncated file fails the
    // handshake, is unlinked, and falls through to a fresh compile.
    const bool existed = ::access(so_path.c_str(), F_OK) == 0;
    if (existed) {
      if (void* h = load_verified(so_path, art.key, &art.run); h != nullptr) {
        art.handle_ = ProgramArtifact::DlHandle(h);
        art.kind = BackendKind::kAotNative;
        art.so_path = so_path;
        art.native_words = static_cast<std::uint32_t>(words);
        art.from_disk = true;
        return art;
      }
      ::unlink(so_path.c_str());
    }
    if (build_native(art.sliced, art.key, words, cxx, opt.avx2,
                     opt.artifact_dir, so_path)) {
      if (void* h = load_verified(so_path, art.key, &art.run); h != nullptr) {
        art.handle_ = ProgramArtifact::DlHandle(h);
        art.kind = BackendKind::kAotNative;
        art.so_path = so_path;
        art.native_words = static_cast<std::uint32_t>(words);
        return art;
      }
    }
    art.run = nullptr;
    art.native_failed = true;  // requested and reachable, but failed
  }
  return art;
}

AotExecutor::AotExecutor(const Program& prog,
                         std::shared_ptr<const ProgramArtifact> artifact)
    : prog_(prog), artifact_(std::move(artifact)) {
  if (!artifact_) throw Error("AotExecutor requires an artifact");
  prog_.validate();
}

std::vector<BitVec> AotExecutor::run(const std::vector<BitVec>& inputs,
                                     const std::atomic<bool>* cancel) {
  const std::size_t width = validate_batch_inputs(prog_, inputs);
  counters_ = SimCounters{};
  counters_.wavefronts = prog_.num_wavefronts;

  const SlicedProgram& sp = artifact_->sliced;
  const std::size_t words = (width + 63) / 64;
  // Zero only on (re)size — the replay stream never reads a row it has not
  // written this run (row 0 stays the never-written zero row).
  if (arena_.size() != static_cast<std::size_t>(sp.num_rows) * words) {
    arena_.assign(static_cast<std::size_t>(sp.num_rows) * words, 0);
  }
  std::uint64_t* const arena = arena_.data();
  const std::size_t num_in = prog_.input_layout.size();
  for (std::size_t a = 0; a < num_in; ++a) {
    const BitVec& src = inputs[prog_.input_layout[a]];
    for (std::size_t w = 0; w < words; ++w) {
      arena[(1 + a) * words + w] = src.word(w);
    }
  }

  long cancelled_at = -2;
  if (artifact_->run != nullptr && words == artifact_->native_words) {
    // The generated code polls the cancel byte between wavefronts. An
    // std::atomic<bool> is one byte of ordinary storage; the artifact reads
    // it as a volatile relaxed load — the same monotonic-flag protocol the
    // interpreter's relaxed load uses.
    static_assert(sizeof(std::atomic<bool>) == 1,
                  "AOT cancel ABI needs a byte-sized atomic<bool>");
    const volatile unsigned char* cancel_byte =
        cancel == nullptr
            ? nullptr
            : reinterpret_cast<const volatile unsigned char*>(cancel);
    cancelled_at = artifact_->run(arena, words, cancel_byte);
  }
  if (cancelled_at == -2) {
    // Off-width batch (or a foreign artifact specialized elsewhere — the
    // generated code returns -2 without executing anything): replay through
    // the direct-threaded stream, which handles any width.
    cancelled_at = -1;
    // Direct-threaded leg: uniform indirect dispatch over prebuilt kernel
    // pointers; word vs AVX2 member picked per run by batch width (below one
    // full vector the AVX2 kernel is all tail anyway).
    const bool wide = words >= 4;
    const auto* ops = artifact_->threaded.data();
    std::size_t op = 0;
    for (std::uint32_t w = 0; w < sp.compiled_waves; ++w) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        cancelled_at = static_cast<long>(w);
        break;
      }
      const std::uint32_t end = artifact_->threaded_wave_end[w];
      for (; op < end; ++op) {
        const ProgramArtifact::ThreadedOp& o = ops[op];
        (wide ? o.avx2 : o.word)(arena + o.a * words, arena + o.b * words,
                                 arena + o.dst * words, words);
      }
    }
  }

  const auto set_counters = [this](const CounterPrefix& c) {
    counters_.input_reads = c.input_reads;
    counters_.route_writes = c.route_writes;
    counters_.lpe_computes = c.lpe_computes;
    counters_.feedback_words = c.feedback_words;
  };
  if (cancelled_at >= 0) {
    set_counters(sp.counters_at[static_cast<std::size_t>(cancelled_at)]);
    throw SimCancelled("simulator run cancelled at wavefront " +
                       std::to_string(cancelled_at));
  }
  if (sp.error) {
    set_counters(sp.error_counters);
    throw SimError(sp.error_msg);
  }
  set_counters(sp.counters_at[prog_.num_wavefronts]);
  counters_.macro_cycles = prog_.macro_cycles();
  counters_.clock_cycles = prog_.clock_cycles();
  const double denom = static_cast<double>(prog_.num_wavefronts) *
                       prog_.cfg.n * prog_.cfg.m;
  counters_.lpe_utilization =
      denom == 0 ? 0.0 : static_cast<double>(counters_.lpe_computes) / denom;

  std::vector<BitVec> outputs(prog_.num_primary_outputs);
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    BitVec v(width, false);
    for (std::size_t w = 0; w < words; ++w) {
      // set_word masks the tail word: bits past the batch width never
      // reach the caller.
      v.set_word(w, arena[(sp.out_row0 + po) * words + w]);
    }
    outputs[po] = std::move(v);
  }
  return outputs;
}

}  // namespace lbnn::aot
