#include "aot/codegen.hpp"

#include <array>

#include "core/serialize.hpp"

namespace lbnn::aot {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = kFnvOffset) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[i] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

/// The constant-folded minterm chain for one truth table, over names `x`
/// (operand A) and `y` (operand B) — the same folding the interpreter's
/// templated kernels get from `if constexpr`, done here in the generator.
/// `x ^ x` for the constant-false table keeps the expression valid for both
/// the scalar tail and the vector body (a plain 0 does not convert to a GCC
/// vector).
std::string lut_expr(std::uint8_t bits) {
  std::string e;
  const auto add = [&e](const char* term) {
    if (!e.empty()) e += " | ";
    e += term;
  };
  if (bits & 1) add("~(x | y)");
  if (bits & 2) add("(x & ~y)");
  if (bits & 4) add("(~x & y)");
  if (bits & 8) add("(x & y)");
  return e.empty() ? "(x ^ x)" : e;
}

}  // namespace

std::string content_key(const Program& prog, bool avx2) {
  std::uint64_t h = fnv1a(program_to_string(prog));
  h = fnv1a("abi" + std::to_string(kAotAbi), h);
  return hex64(h) + (avx2 ? "-avx2" : "-base");
}

std::string generate_source(const SlicedProgram& sp, const std::string& key,
                            std::size_t words) {
  std::string out;
  // ~48 bytes per emitted op line; generous headroom avoids regrowth churn.
  out.reserve(2048 + sp.ops.size() * 56);
  out +=
      "// Generated LPU program artifact. Executes the bit-sliced replay\n"
      "// stream as straight-line code; see src/aot/codegen.hpp for the ABI.\n"
      "typedef unsigned long long u64;\n"
      "typedef unsigned long usize;\n"
      "static const usize kNW = " + std::to_string(words) + ";\n"
      "extern \"C\" const char* lbnn_aot_key(void) { return \"" + key + "\"; }\n"
      "extern \"C\" unsigned lbnn_aot_abi(void) { return " +
      std::to_string(kAotAbi) + "u; }\n";

  std::array<bool, 16> used{};
  for (const SlicedOp& o : sp.ops) {
    if (o.kind == SlicedOp::kCompute) used[o.bits & 0xF] = true;
  }
  if (used != std::array<bool, 16>{}) {
    // The kernels the interpreter dispatches to, minus everything runtime:
    // GCC's -O2 cost model declines to auto-vectorize runtime-trip-count
    // word loops, so the vectorization is spelled out with vector extensions
    // (4 x u64 per lane — AVX2-width under -mavx2, SSE pairs otherwise;
    // aligned(8) because arena rows are only u64-aligned), and the trip
    // count kNW is a compile-time constant so the loop fully unrolls with no
    // counter or tail checks. noinline matters: the 16 shared kernel bodies
    // stay hot in L1i across the whole run, where inlining them per op
    // emits ~100 KB of straight-line code that thrashes the instruction
    // cache against the workers' arenas (measured ~2x worse p99 under the
    // serving engine than this form).
    out +=
        "typedef u64 v4 __attribute__((vector_size(32), aligned(8)));\n"
        "#define KF(name, expr)                                          \\\n"
        "  static __attribute__((noinline)) void name(                   \\\n"
        "      const u64* a, const u64* b, u64* o) {                     \\\n"
        "    usize i = 0;                                                \\\n"
        "    for (; i + 4 <= kNW; i += 4) {                              \\\n"
        "      const v4 x = *(const v4*)(a + i);                         \\\n"
        "      const v4 y = *(const v4*)(b + i); (void)y;                \\\n"
        "      *(v4*)(o + i) = (expr);                                   \\\n"
        "    }                                                           \\\n"
        "    for (; i < kNW; ++i) {                                      \\\n"
        "      const u64 x = a[i]; const u64 y = b[i]; (void)y;          \\\n"
        "      o[i] = (expr);                                            \\\n"
        "    }                                                           \\\n"
        "  }\n";
  }
  for (int b = 0; b < 16; ++b) {
    if (!used[b]) continue;
    out += "KF(kf" + std::to_string(b) + ", " +
           lut_expr(static_cast<std::uint8_t>(b)) + ")\n";
  }
  bool any_copy = false;
  for (const SlicedOp& o : sp.ops) {
    if (o.kind == SlicedOp::kCopy) { any_copy = true; break; }
  }
  if (any_copy) {
    out +=
        "static __attribute__((noinline)) void cprow(\n"
        "    const u64* s, u64* d) {\n"
        "  __builtin_memcpy(d, s, kNW * sizeof(u64));\n"
        "}\n";
  }

  // One function per non-empty wavefront. Splitting here (rather than
  // emitting one straight-line lbnn_aot_run) bounds each function at a
  // wavefront's worth of call lines: g++ time is superlinear in function
  // size, and the single-function form of this generator took ~25 s at the
  // 400-gate anchor where this takes well under a second. Row offsets fold
  // to constants (kNW is constant), so each op line is three leas + a call.
  std::size_t op = 0;
  for (std::uint32_t w = 0; w < sp.compiled_waves; ++w) {
    const std::uint32_t end = sp.wave_op_end[w];
    if (op == end) continue;
    out += "static void wv" + std::to_string(w) + "(u64* A) {\n";
    for (; op < end; ++op) {
      const SlicedOp& o = sp.ops[op];
      if (o.kind == SlicedOp::kCompute) {
        out += "  kf" + std::to_string(o.bits & 0xF) + "(A + " +
               std::to_string(o.a) + "*kNW, A + " + std::to_string(o.b) +
               "*kNW, A + " + std::to_string(o.dst) + "*kNW);\n";
      } else if (o.kind == SlicedOp::kCopy) {
        out += "  cprow(A + " + std::to_string(o.a) + "*kNW, A + " +
               std::to_string(o.dst) + "*kNW);\n";
      }
      // kHook: no hook support in artifacts — skipped.
    }
    out += "}\n";
  }

  out +=
      "extern \"C\" long lbnn_aot_run(u64* A, usize W,\n"
      "                              const volatile unsigned char* C) {\n"
      "  if (W != kNW) return -2;  // specialized elsewhere; host falls back\n";
  op = 0;
  for (std::uint32_t w = 0; w < sp.compiled_waves; ++w) {
    out += "  if (C && *C) return " + std::to_string(w) + ";\n";
    if (op != sp.wave_op_end[w]) {
      out += "  wv" + std::to_string(w) + "(A);\n";
      op = sp.wave_op_end[w];
    }
  }
  out += "  return -1;\n}\n";
  return out;
}

}  // namespace lbnn::aot
