#include "opt/path_balance.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace lbnn {

Netlist balance_paths(const Netlist& nl, Level pad_outputs_to) {
  const auto levels = nl.levels();
  Level lmax = pad_outputs_to < 0 ? 0 : pad_outputs_to;
  for (const NodeId o : nl.outputs()) lmax = std::max(lmax, levels[o]);

  Netlist out;
  std::vector<NodeId> map(nl.num_nodes(), kInvalidNode);
  // chain[src] = buffer chain tail ids: chain[src][k] delays src to level
  // levels[src] + k + 1. Built lazily and shared among consumers.
  std::unordered_map<NodeId, std::vector<NodeId>> chains;

  const auto delayed_to = [&](NodeId src_old, Level target_level) -> NodeId {
    const Level src_level = levels[src_old];
    LBNN_CHECK(target_level >= src_level, "cannot deliver a value backwards in time");
    if (target_level == src_level) return map[src_old];
    auto& chain = chains[src_old];
    while (static_cast<Level>(chain.size()) < target_level - src_level) {
      const NodeId prev = chain.empty() ? map[src_old] : chain.back();
      chain.push_back(out.add_gate(GateOp::kBuf, prev));
    }
    return chain[static_cast<std::size_t>(target_level - src_level) - 1];
  };

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    switch (nl.op(id)) {
      case GateOp::kInput:
        map[id] = out.add_input(nl.input_name(static_cast<std::size_t>(nl.input_index(id))));
        break;
      case GateOp::kConst0:
      case GateOp::kConst1:
        map[id] = out.add_gate(nl.op(id));
        break;
      default: {
        const Level lv = levels[id];
        const NodeId a = delayed_to(nl.fanin0(id), lv - 1);
        const NodeId b = nl.arity(id) == 2 ? delayed_to(nl.fanin1(id), lv - 1) : kInvalidNode;
        map[id] = out.add_gate(nl.op(id), a, b);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    const NodeId src = nl.outputs()[i];
    out.add_output(delayed_to(src, lmax), nl.output_name(i));
  }
  return out;
}

bool is_path_balanced(const Netlist& nl) {
  const auto levels = nl.levels();
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int k = 0; k < nl.arity(id); ++k) {
      const NodeId f = k == 0 ? nl.fanin0(id) : nl.fanin1(id);
      if (levels[id] != levels[f] + 1) return false;
    }
  }
  Level lmax = 0;
  for (const NodeId o : nl.outputs()) lmax = std::max(lmax, levels[o]);
  for (const NodeId o : nl.outputs()) {
    if (levels[o] != lmax) return false;
  }
  return true;
}

}  // namespace lbnn
