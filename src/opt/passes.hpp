#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace lbnn {

/// Statistics of one optimize() run ("logic minimization" box of Fig. 1).
struct OptStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t rewrite_iterations = 0;
};

/// One forward rewrite sweep combining:
///   * constant folding (total and partial, e.g. and(x,1) -> x)
///   * buffer/double-inverter collapsing via aliasing
///   * single-node identities (a&a, a^a, a&~a, nand(a,a), ...)
///   * structural hashing (CSE with canonical operand order)
/// Returns the rewritten netlist; sets *changed if anything was simplified.
/// Semantics are preserved (property-tested).
Netlist rewrite_once(const Netlist& nl, bool* changed);

/// Remove every gate not reachable from a primary output. Primary inputs are
/// always retained so the interface is stable.
Netlist eliminate_dead(const Netlist& nl);

/// rewrite_once to fixpoint, then eliminate_dead.
Netlist optimize(const Netlist& nl, OptStats* stats = nullptr);

}  // namespace lbnn
