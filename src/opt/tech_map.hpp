#pragma once

#include "logic/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace lbnn {

/// Rewrite the netlist so that every gate op is supported by `lib` ("map the
/// circuit to a customized cell library", Sec. III). Unsupported complemented
/// ops are expanded (NAND -> NOT(AND), ...). Residual constant nodes (a
/// constant primary output is the only way they survive optimize()) are
/// realized from the first primary input as XOR(x,x) / XNOR(x,x), since the
/// LPU datapath has no constant source. Throws CompileError if the netlist
/// has a constant output and no primary input.
Netlist tech_map(const Netlist& nl, const CellLibrary& lib);

}  // namespace lbnn
