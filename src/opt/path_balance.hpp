#pragma once

#include "netlist/netlist.hpp"

namespace lbnn {

/// Full path balancing (FPB, Sec. II): insert BUFFER nodes so that
///   * every edge spans exactly one logic level, and
///   * every primary output sits at the same level Lmax.
/// After FPB no data dependency exists between non-adjacent levels, which is
/// what lets the pipelined LPU move data strictly LPV-to-LPV (Sec. IV).
///
/// Buffer chains are shared per source node: a node feeding consumers at
/// several levels grows a single chain tapped at each required level, so the
/// buffer count for a node is max-gap, not sum-of-gaps.
///
/// `pad_outputs_to` (when >= 0) forces the common output level to be at least
/// that value; the compiler uses it to align Lmax with the last LPV of the
/// final circulation pass (Lmax ≡ n-1 mod n).
Netlist balance_paths(const Netlist& nl, Level pad_outputs_to = -1);

/// True iff `nl` satisfies both FPB conditions (used by tests and asserted at
/// the partitioner boundary).
bool is_path_balanced(const Netlist& nl);

}  // namespace lbnn
