#include "opt/passes.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace lbnn {
namespace {

struct PairHash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const {
    return std::hash<std::uint64_t>()(p.first * 0x9E3779B97F4A7C15ull + p.second);
  }
};

/// Tracks, for a node in the *new* netlist, whether we know it is a constant
/// or the complement of another node (enables a&~a-style rewrites without a
/// full AIG).
struct NodeFacts {
  enum class Const : std::uint8_t { kUnknown, kZero, kOne };
  Const constant = Const::kUnknown;
  NodeId complement_of = kInvalidNode;  ///< node this one is the NOT of
};

class Rewriter {
 public:
  explicit Rewriter(const Netlist& in) : in_(in) {}

  Netlist run(bool* changed) {
    map_.assign(in_.num_nodes(), kInvalidNode);
    for (NodeId id = 0; id < in_.num_nodes(); ++id) {
      map_[id] = rewrite_node(id);
    }
    for (std::size_t i = 0; i < in_.num_outputs(); ++i) {
      out_.add_output(map_[in_.outputs()[i]], in_.output_name(i));
    }
    if (changed != nullptr) *changed = changed_;
    return std::move(out_);
  }

 private:
  NodeFacts::Const const_of(NodeId new_id) const {
    return facts_.at(new_id).constant;
  }

  NodeId make_const(bool v) {
    const GateOp op = v ? GateOp::kConst1 : GateOp::kConst0;
    // Share one constant node of each polarity.
    NodeId& slot = v ? const1_ : const0_;
    if (slot == kInvalidNode) {
      slot = out_.add_gate(op);
      facts_[slot].constant = v ? NodeFacts::Const::kOne : NodeFacts::Const::kZero;
    }
    return slot;
  }

  /// Record and return a gate, with structural hashing.
  NodeId emit(GateOp op, NodeId a = kInvalidNode, NodeId b = kInvalidNode) {
    if (gate_is_commutative(op) && b < a) std::swap(a, b);
    const std::uint64_t key_lo = (static_cast<std::uint64_t>(op) << 32) | a;
    const auto key = std::make_pair(key_lo, static_cast<std::uint64_t>(b));
    if (gate_arity(op) > 0) {
      const auto it = strash_.find(key);
      if (it != strash_.end()) {
        changed_ = true;  // a duplicate structure was shared
        return it->second;
      }
    }
    const NodeId id = out_.add_gate(op, a, b);
    auto& f = facts_[id];
    if (op == GateOp::kNot) {
      f.complement_of = a;
      // Register the inverse direction too, so not(not(a)) finds a.
      auto& fa = facts_[a];
      if (fa.complement_of == kInvalidNode) fa.complement_of = id;
    }
    if (gate_arity(op) > 0) strash_.emplace(key, id);
    return id;
  }

  bool is_complement_pair(NodeId x, NodeId y) const {
    const auto fx = facts_.find(x);
    if (fx != facts_.end() && fx->second.complement_of == y) return true;
    const auto fy = facts_.find(y);
    return fy != facts_.end() && fy->second.complement_of == x;
  }

  NodeId rewrite_node(NodeId id) {
    const GateOp op = in_.op(id);
    switch (op) {
      case GateOp::kInput: {
        const NodeId nid = out_.add_input(in_.input_name(static_cast<std::size_t>(in_.input_index(id))));
        facts_[nid];
        return nid;
      }
      case GateOp::kConst0:
        changed_ = changed_ || const0_ != kInvalidNode;
        return make_const(false);
      case GateOp::kConst1:
        changed_ = changed_ || const1_ != kInvalidNode;
        return make_const(true);
      default:
        break;
    }

    const NodeId a = map_[in_.fanin0(id)];
    if (gate_arity(op) == 1) return rewrite_unary(op, a);
    const NodeId b = map_[in_.fanin1(id)];
    return rewrite_binary(op, a, b);
  }

  NodeId rewrite_unary(GateOp op, NodeId a) {
    const NodeFacts::Const ca = const_of(a);
    if (op == GateOp::kBuf) {
      changed_ = true;  // buffers are pure aliases at this stage
      return a;
    }
    // NOT.
    if (ca == NodeFacts::Const::kZero) { changed_ = true; return make_const(true); }
    if (ca == NodeFacts::Const::kOne) { changed_ = true; return make_const(false); }
    const NodeId comp = facts_.at(a).complement_of;
    if (comp != kInvalidNode && out_.op(a) == GateOp::kNot) {
      changed_ = true;  // not(not(x)) = x
      return comp;
    }
    return emit(GateOp::kNot, a);
  }

  NodeId rewrite_binary(GateOp op, NodeId a, NodeId b) {
    const NodeFacts::Const ca = const_of(a);
    const NodeFacts::Const cb = const_of(b);
    const bool a_const = ca != NodeFacts::Const::kUnknown;
    const bool b_const = cb != NodeFacts::Const::kUnknown;

    if (a_const && b_const) {
      changed_ = true;
      const bool va = ca == NodeFacts::Const::kOne;
      const bool vb = cb == NodeFacts::Const::kOne;
      return make_const(gate_eval(op, va, vb));
    }
    if (a_const || b_const) {
      changed_ = true;
      const bool cv = (a_const ? ca : cb) == NodeFacts::Const::kOne;
      const NodeId x = a_const ? b : a;
      return apply_with_constant(op, x, cv);
    }
    if (a == b) {
      changed_ = true;
      switch (op) {
        case GateOp::kAnd:
        case GateOp::kOr: return a;
        case GateOp::kNand:
        case GateOp::kNor: return rewrite_unary(GateOp::kNot, a);
        case GateOp::kXor: return make_const(false);
        case GateOp::kXnor: return make_const(true);
        default: break;
      }
    }
    if (is_complement_pair(a, b)) {
      changed_ = true;
      switch (op) {
        case GateOp::kAnd: return make_const(false);
        case GateOp::kNand: return make_const(true);
        case GateOp::kOr: return make_const(true);
        case GateOp::kNor: return make_const(false);
        case GateOp::kXor: return make_const(true);
        case GateOp::kXnor: return make_const(false);
        default: break;
      }
    }
    return emit(op, a, b);
  }

  /// op(x, constant) partial evaluation. Returns x, ~x, or a constant.
  NodeId apply_with_constant(GateOp op, NodeId x, bool c) {
    const bool f0 = gate_eval(op, false, c);  // value when x=0
    const bool f1 = gate_eval(op, true, c);   // value when x=1
    if (f0 == f1) return make_const(f0);
    if (!f0 && f1) return x;                  // identity in x
    return rewrite_unary(GateOp::kNot, x);    // complement of x
  }

  const Netlist& in_;
  Netlist out_;
  std::vector<NodeId> map_;
  std::unordered_map<NodeId, NodeFacts> facts_;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, NodeId, PairHash> strash_;
  NodeId const0_ = kInvalidNode;
  NodeId const1_ = kInvalidNode;
  bool changed_ = false;
};

}  // namespace

Netlist rewrite_once(const Netlist& nl, bool* changed) {
  Rewriter rw(nl);
  return rw.run(changed);
}

Netlist eliminate_dead(const Netlist& nl) {
  std::vector<bool> live(nl.num_nodes(), false);
  for (const NodeId o : nl.outputs()) live[o] = true;
  for (NodeId id = static_cast<NodeId>(nl.num_nodes()); id-- > 0;) {
    if (!live[id]) continue;
    if (nl.arity(id) >= 1) live[nl.fanin0(id)] = true;
    if (nl.arity(id) == 2) live[nl.fanin1(id)] = true;
  }
  Netlist out;
  std::vector<NodeId> map(nl.num_nodes(), kInvalidNode);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (nl.op(id) == GateOp::kInput) {
      map[id] = out.add_input(nl.input_name(static_cast<std::size_t>(nl.input_index(id))));
    } else if (live[id]) {
      const NodeId a = nl.arity(id) >= 1 ? map[nl.fanin0(id)] : kInvalidNode;
      const NodeId b = nl.arity(id) == 2 ? map[nl.fanin1(id)] : kInvalidNode;
      map[id] = out.add_gate(nl.op(id), a, b);
    }
  }
  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    out.add_output(map[nl.outputs()[i]], nl.output_name(i));
  }
  return out;
}

Netlist optimize(const Netlist& nl, OptStats* stats) {
  constexpr std::size_t kMaxIterations = 16;
  Netlist cur = nl;
  std::size_t iters = 0;
  for (; iters < kMaxIterations; ++iters) {
    bool changed = false;
    cur = rewrite_once(cur, &changed);
    if (!changed) break;
  }
  cur = eliminate_dead(cur);
  if (stats != nullptr) {
    stats->gates_before = nl.num_gates();
    stats->gates_after = cur.num_gates();
    stats->rewrite_iterations = iters;
  }
  return cur;
}

}  // namespace lbnn
