#include "opt/tech_map.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn {

Netlist tech_map(const Netlist& nl, const CellLibrary& lib) {
  Netlist out;
  std::vector<NodeId> map(nl.num_nodes(), kInvalidNode);

  const auto emit_not = [&](NodeId a) {
    LBNN_CHECK(lib.supports(GateOp::kNot), "cell library must support NOT");
    return out.add_gate(GateOp::kNot, a);
  };

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const GateOp op = nl.op(id);
    switch (op) {
      case GateOp::kInput:
        map[id] = out.add_input(nl.input_name(static_cast<std::size_t>(nl.input_index(id))));
        continue;
      case GateOp::kConst0:
      case GateOp::kConst1: {
        if (nl.num_inputs() == 0) {
          throw CompileError("cannot realize a constant without any primary input");
        }
        // The mapped netlist's PI node for input 0 is its id in `out`, which
        // is the same position because inputs are emitted in order.
        const NodeId x = map[nl.inputs()[0]];
        const GateOp gen = (op == GateOp::kConst0) ? GateOp::kXor : GateOp::kXnor;
        if (lib.supports(gen)) {
          map[id] = out.add_gate(gen, x, x);
        } else if (op == GateOp::kConst0 && lib.supports(GateOp::kXnor)) {
          map[id] = emit_not(out.add_gate(GateOp::kXnor, x, x));
        } else if (op == GateOp::kConst1 && lib.supports(GateOp::kXor)) {
          map[id] = emit_not(out.add_gate(GateOp::kXor, x, x));
        } else {
          throw CompileError("cell library cannot realize constants");
        }
        continue;
      }
      default:
        break;
    }

    const NodeId a = map[nl.fanin0(id)];
    const NodeId b = nl.arity(id) == 2 ? map[nl.fanin1(id)] : kInvalidNode;
    if (lib.supports(op)) {
      map[id] = out.add_gate(op, a, b);
      continue;
    }
    // Expand an unsupported op via its complement (every op's complement or
    // its NOT-expansion is in any sane library; both default libraries
    // support all of AND/OR/XOR + NOT).
    const GateOp comp = gate_complement(op);
    if (gate_arity(op) == 1) {
      // op is kBuf or kNot and unsupported: only possible for exotic custom
      // libraries; realize buf as not(not(x)).
      if (op == GateOp::kBuf) {
        map[id] = emit_not(emit_not(a));
      } else {
        throw CompileError("cell library must support NOT");
      }
      continue;
    }
    if (!lib.supports(comp)) {
      throw CompileError(std::string("cell library supports neither ") +
                         std::string(gate_name(op)) + " nor its complement");
    }
    map[id] = emit_not(out.add_gate(comp, a, b));
  }

  for (std::size_t i = 0; i < nl.num_outputs(); ++i) {
    out.add_output(map[nl.outputs()[i]], nl.output_name(i));
  }
  return out;
}

}  // namespace lbnn
