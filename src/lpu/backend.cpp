#include "lpu/backend.hpp"

#include "common/error.hpp"

namespace lbnn {

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kSliced:
      return "sliced";
    case BackendKind::kAotNative:
      return "aot";
    case BackendKind::kAotThreaded:
      return "aot-threaded";
  }
  return "?";
}

std::size_t validate_batch_inputs(const Program& prog,
                                  const std::vector<BitVec>& inputs) {
  if (inputs.size() != prog.num_primary_inputs) {
    throw SimError("wrong number of input words");
  }
  const std::size_t width =
      inputs.empty() ? prog.cfg.effective_word_width() : inputs[0].width();
  if (width == 0) throw SimError("zero-width batch");
  for (const auto& v : inputs) {
    if (v.width() != width) throw SimError("ragged input word widths");
  }
  return width;
}

}  // namespace lbnn
