#pragma once

#include <cstddef>
#include <cstdint>

namespace lbnn::kernels {

/// One bit-sliced gate kernel: (a, b, out, words). The truth table is baked
/// into the function (16 specializations per table), so a call is pure loads,
/// logic ops, and stores — no per-gate mask setup. Shared by the sliced
/// interpreter's replay loop (LpuSimulator::run_compiled) and the AOT
/// backend's direct-threaded leg (src/aot/), which is why the tables live in
/// their own translation unit instead of the simulator's.
using KernelFn = void (*)(const std::uint64_t*, const std::uint64_t*,
                          std::uint64_t*, std::size_t);

/// 16-entry table of truth-table-specialized portable word64 kernels
/// (index = TruthTable4::bits). Never null.
const KernelFn* word_table();

/// 16-entry AVX2 table (4 words / 256 batch samples per iteration), or
/// nullptr off x86. Only call through it after cpu_has_avx2() said yes.
const KernelFn* avx2_table();

/// Runtime CPU detection (always false off x86).
bool cpu_has_avx2();

}  // namespace lbnn::kernels
