#include "lpu/simulator.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace lbnn {

BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b) {
  BitVec r(a.width(), false);
  const BitVec na = ~a;
  const BitVec nb = ~b;
  if (lut.bits() & 0x1) r = r | (na & nb);
  if (lut.bits() & 0x2) r = r | (a & nb);
  if (lut.bits() & 0x4) r = r | (na & b);
  if (lut.bits() & 0x8) r = r | (a & b);
  return r;
}

LpuSimulator::LpuSimulator(const Program& program) : prog_(program) {
  prog_.validate();
}

std::vector<BitVec> LpuSimulator::run(const std::vector<BitVec>& inputs,
                                      const std::atomic<bool>* cancel) {
  const LpuConfig& cfg = prog_.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;

  if (inputs.size() != prog_.num_primary_inputs) {
    throw SimError("wrong number of input words");
  }
  const std::size_t width =
      inputs.empty() ? cfg.effective_word_width() : inputs[0].width();
  for (const auto& v : inputs) {
    if (v.width() != width) throw SimError("ragged input word widths");
  }

  // Input data buffer contents.
  std::vector<BitVec> input_buffer(prog_.input_layout.size());
  for (std::size_t a = 0; a < prog_.input_layout.size(); ++a) {
    input_buffer[a] = inputs[prog_.input_layout[a]];
  }

  // Snapshot registers: regs[lpv][slot] (slot = lane*2 + ab).
  const BitVec zero(width, false);
  std::vector<std::vector<BitVec>> regs(n, std::vector<BitVec>(2 * m, zero));
  std::vector<std::vector<char>> reg_valid(n, std::vector<char>(2 * m, 0));

  struct FbEntry {
    BitVec word;
    std::uint64_t write_time;
  };
  std::unordered_map<std::uint32_t, FbEntry> feedback;

  // Output taps grouped by wavefront for O(1) lookup.
  std::unordered_map<std::uint32_t, std::vector<const OutputTap*>> taps_at;
  for (const auto& tap : prog_.output_taps) taps_at[tap.wavefront].push_back(&tap);

  std::vector<BitVec> outputs(prog_.num_primary_outputs, zero);
  std::vector<char> output_set(prog_.num_primary_outputs, 0);

  counters_ = SimCounters{};
  counters_.wavefronts = prog_.num_wavefronts;

  std::vector<BitVec> prev_out(m, zero);
  std::vector<char> prev_valid(m, 0);
  std::vector<BitVec> cur_out(m, zero);
  std::vector<char> cur_valid(m, 0);

  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (hook_ && !instr.empty()) hook_(w, j, instr);

      // Staged-switch mode: resolve the multicast assignment through the
      // oracle (the staged fabric) instead of the functional route table.
      std::vector<std::uint32_t> staged_src;
      if (oracle_) {
        std::vector<std::int32_t> assignment(2 * m, -1);
        bool any = false;
        for (const RouteWrite& r : instr.routes) {
          if (r.src.kind == SrcSel::Kind::kPrevLane) {
            assignment[r.slot] = static_cast<std::int32_t>(r.src.index);
            any = true;
          }
        }
        if (any) staged_src = oracle_(assignment);
      }

      // 1. Switch stage: deliver values into snapshot registers.
      for (const RouteWrite& r : instr.routes) {
        BitVec value;
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: {
            if (j == 0) throw SimError("LPV 0 has no predecessor to route from");
            const std::uint32_t lane =
                staged_src.empty() ? r.src.index : staged_src[r.slot];
            if (lane >= m || !prev_valid[lane]) {
              throw SimError("route from an invalid previous-LPV lane");
            }
            value = prev_out[lane];
            break;
          }
          case SrcSel::Kind::kInput:
            value = input_buffer[r.src.index];
            ++counters_.input_reads;
            break;
          case SrcSel::Kind::kFeedback: {
            const auto it = feedback.find(r.src.index);
            if (it == feedback.end()) {
              throw SimError("feedback read before write (address " +
                             std::to_string(r.src.index) + ")");
            }
            // Absolute macro time of this read is w + j; the write completed
            // at its producer's wavefront + n - 1.
            if (static_cast<std::uint64_t>(w) + j <= it->second.write_time) {
              throw SimError("feedback read would outrun its write in hardware");
            }
            value = it->second.word;
            break;
          }
        }
        regs[j][r.slot] = std::move(value);
        reg_valid[j][r.slot] = 1;
        ++counters_.route_writes;
      }

      // 2. Compute stage: active LPEs evaluate their LUT.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      for (const ComputeWrite& c : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(c.lane) * 2;
        const BitVec& a = regs[j][slot_a];
        const BitVec& b = regs[j][slot_a + 1];
        if (!c.lut.ignores_a() && !reg_valid[j][slot_a]) {
          throw SimError("LPE computes over an invalid A operand");
        }
        if (!c.lut.ignores_b() && !reg_valid[j][slot_a + 1]) {
          throw SimError("LPE computes over an invalid B operand");
        }
        cur_out[c.lane] = eval_lut(
            c.lut, reg_valid[j][slot_a] ? a : BitVec(width, false),
            reg_valid[j][slot_a + 1] ? b : BitVec(width, false));
        cur_valid[c.lane] = 1;
        ++counters_.lpe_computes;
      }

      // 3. Terminal LPV: feedback writes and output taps.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) throw SimError("feedback write of an invalid lane");
          feedback[w * m + lane] =
              FbEntry{cur_out[lane], static_cast<std::uint64_t>(w) + n - 1};
          ++counters_.feedback_words;
        }
        const auto it = taps_at.find(w);
        if (it != taps_at.end()) {
          for (const OutputTap* tap : it->second) {
            if (!cur_valid[tap->lane]) throw SimError("output tap of an invalid lane");
            outputs[tap->po_index] = cur_out[tap->lane];
            output_set[tap->po_index] = 1;
          }
        }
      }
      std::swap(prev_out, cur_out);
      std::swap(prev_valid, cur_valid);
    }
  }

  for (std::size_t po = 0; po < outputs.size(); ++po) {
    if (!output_set[po]) {
      throw SimError("primary output " + std::to_string(po) + " never produced");
    }
  }

  counters_.macro_cycles = prog_.macro_cycles();
  counters_.clock_cycles = prog_.clock_cycles();
  const double denom = static_cast<double>(prog_.num_wavefronts) * n * m;
  counters_.lpe_utilization =
      denom == 0 ? 0.0 : static_cast<double>(counters_.lpe_computes) / denom;
  return outputs;
}

}  // namespace lbnn
