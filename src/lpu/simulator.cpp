#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 flags the inlined vector<uint64_t> copy inside BitVec assignment as
// memmove(dst, nullptr, 0) on the empty-source path; every BitVec copied here
// has width >= 1 (run() rejects width-0 batches), so the path is dead. The
// pragma must precede the includes — the diagnostic anchors inside
// stl_algobase.h.
#pragma GCC diagnostic ignored "-Wnonnull"
#endif

#include "lpu/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "lpu/kernels.hpp"

namespace lbnn {

namespace {

/// Broadcast one truth-table bit to an all-ones/all-zeros 64-bit mask.
inline std::uint64_t lut_mask(std::uint8_t bits, int idx) {
  return ((bits >> idx) & 1) ? ~0ull : 0ull;
}

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

const char* to_string(SimdKernel k) {
  switch (k) {
    case SimdKernel::kScalar:
      return "scalar";
    case SimdKernel::kWord64:
      return "word64";
    case SimdKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool LpuSimulator::cpu_has_avx2() { return kernels::cpu_has_avx2(); }

SimdKernel LpuSimulator::resolve_kernel(bool simd_requested) {
  if (!simd_requested || env_set("LBNN_FORCE_SCALAR")) {
    return SimdKernel::kScalar;
  }
  if (cpu_has_avx2() && !env_set("LBNN_NO_AVX2")) return SimdKernel::kAvx2;
  return SimdKernel::kWord64;
}

void eval_lut_into(TruthTable4 lut, const BitVec& a, const BitVec& b,
                   BitVec& out) {
  LBNN_CHECK(a.width() == b.width() && a.width() == out.width(),
             "eval_lut_into width mismatch");
  const std::uint8_t bits = lut.bits();
  const std::uint64_t m0 = lut_mask(bits, 0);
  const std::uint64_t m1 = lut_mask(bits, 1);
  const std::uint64_t m2 = lut_mask(bits, 2);
  const std::uint64_t m3 = lut_mask(bits, 3);
  for (std::size_t w = 0; w < out.num_words(); ++w) {
    const std::uint64_t aw = a.word(w);
    const std::uint64_t bw = b.word(w);
    // set_word masks the tail word, keeping the BitVec canonical even though
    // the ~ terms set bits past the width.
    out.set_word(w, (m0 & ~(aw | bw)) | (m1 & (aw & ~bw)) |
                        (m2 & (~aw & bw)) | (m3 & (aw & bw)));
  }
}

BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b) {
  BitVec r(a.width(), false);
  eval_lut_into(lut, a, b, r);
  return r;
}

LpuSimulator::LpuSimulator(const Program& program, bool simd)
    : prog_(program),
      kernel_(resolve_kernel(simd)),
      fuse_(!env_set("LBNN_NO_FUSE")) {
  prog_.validate();
  if (kernel_ == SimdKernel::kScalar) return;

  // Program-shaped run scratch for the bit-sliced path, allocated once here
  // and reset (cheap memsets) per run.
  const std::uint32_t n0 = prog_.cfg.n;
  const std::uint32_t m0 = prog_.cfg.m;
  reg_valid_.resize(static_cast<std::size_t>(n0) * 2 * m0);
  prev_valid_.resize(m0);
  cur_valid_.resize(m0);
  output_set_.resize(prog_.num_primary_outputs);
  const std::size_t fb_addrs =
      static_cast<std::size_t>(prog_.num_wavefronts) * m0;
  fb_offset_.resize(fb_addrs);
  fb_time_.resize(fb_addrs);
  taps_at_.resize(prog_.num_wavefronts);
  for (const auto& tap : prog_.output_taps) {
    taps_at_[tap.wavefront].push_back(&tap);
  }

  // Lower to the compiled replay stream (see sliced_program.hpp); the
  // staged-oracle and LBNN_NO_FUSE paths fall back to the interpretive loop
  // at run time, so the lowering is skipped when fusing is off.
  if (fuse_) sliced_ = compile_sliced(prog_);
}

std::vector<std::uint32_t> LpuSimulator::resolve_staged(
    const LpvInstr& instr) const {
  std::vector<std::uint32_t> staged_src;
  if (!oracle_) return staged_src;
  std::vector<std::int32_t> assignment(2 * prog_.cfg.m, -1);
  bool any = false;
  for (const RouteWrite& r : instr.routes) {
    if (r.src.kind == SrcSel::Kind::kPrevLane) {
      assignment[r.slot] = static_cast<std::int32_t>(r.src.index);
      any = true;
    }
  }
  if (any) staged_src = oracle_(assignment);
  return staged_src;
}

std::vector<BitVec> LpuSimulator::run(const std::vector<BitVec>& inputs,
                                      const std::atomic<bool>* cancel) {
  const std::size_t width = validate_batch_inputs(prog_, inputs);

  counters_ = SimCounters{};
  counters_.wavefronts = prog_.num_wavefronts;

  std::vector<BitVec> outputs = kernel_ == SimdKernel::kScalar
                                    ? run_scalar(inputs, cancel, width)
                                    : run_sliced(inputs, cancel, width);

  counters_.macro_cycles = prog_.macro_cycles();
  counters_.clock_cycles = prog_.clock_cycles();
  const double denom = static_cast<double>(prog_.num_wavefronts) *
                       prog_.cfg.n * prog_.cfg.m;
  counters_.lpe_utilization =
      denom == 0 ? 0.0 : static_cast<double>(counters_.lpe_computes) / denom;
  return outputs;
}

// -------------------------------------------------------------------------
// Scalar oracle kernel: the original BitVec-at-a-time interpreter. Kept
// bit-for-bit as the reference the bit-sliced kernels are differentially
// tested against (tests/test_simd_diff.cpp); its only change since is that
// gate evaluation reuses cur_out / a shared zero word through eval_lut_into
// instead of allocating up to 6 BitVec temporaries per gate.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_scalar(const std::vector<BitVec>& inputs,
                                             const std::atomic<bool>* cancel,
                                             std::size_t width) {
  const LpuConfig& cfg = prog_.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;

  // Input data buffer contents.
  std::vector<BitVec> input_buffer(prog_.input_layout.size());
  for (std::size_t a = 0; a < prog_.input_layout.size(); ++a) {
    input_buffer[a] = inputs[prog_.input_layout[a]];
  }

  // Snapshot registers: regs[lpv][slot] (slot = lane*2 + ab).
  const BitVec zero(width, false);
  std::vector<std::vector<BitVec>> regs(n, std::vector<BitVec>(2 * m, zero));
  std::vector<std::vector<char>> reg_valid(n, std::vector<char>(2 * m, 0));

  struct FbEntry {
    BitVec word;
    std::uint64_t write_time;
  };
  std::unordered_map<std::uint32_t, FbEntry> feedback;

  // Output taps grouped by wavefront for O(1) lookup.
  std::unordered_map<std::uint32_t, std::vector<const OutputTap*>> taps_at;
  for (const auto& tap : prog_.output_taps) taps_at[tap.wavefront].push_back(&tap);

  std::vector<BitVec> outputs(prog_.num_primary_outputs, zero);
  std::vector<char> output_set(prog_.num_primary_outputs, 0);

  std::vector<BitVec> prev_out(m, zero);
  std::vector<char> prev_valid(m, 0);
  std::vector<BitVec> cur_out(m, zero);
  std::vector<char> cur_valid(m, 0);

  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (hook_ && !instr.empty()) hook_(w, j, instr);

      // Staged-switch mode: resolve the multicast assignment through the
      // oracle (the staged fabric) instead of the functional route table.
      const std::vector<std::uint32_t> staged_src = resolve_staged(instr);

      // 1. Switch stage: deliver values into snapshot registers.
      for (const RouteWrite& r : instr.routes) {
        BitVec value;
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: {
            if (j == 0) throw SimError("LPV 0 has no predecessor to route from");
            const std::uint32_t lane =
                staged_src.empty() ? r.src.index : staged_src[r.slot];
            if (lane >= m || !prev_valid[lane]) {
              throw SimError("route from an invalid previous-LPV lane");
            }
            value = prev_out[lane];
            break;
          }
          case SrcSel::Kind::kInput:
            value = input_buffer[r.src.index];
            ++counters_.input_reads;
            break;
          case SrcSel::Kind::kFeedback: {
            const auto it = feedback.find(r.src.index);
            if (it == feedback.end()) {
              throw SimError("feedback read before write (address " +
                             std::to_string(r.src.index) + ")");
            }
            // Absolute macro time of this read is w + j; the write completed
            // at its producer's wavefront + n - 1.
            if (static_cast<std::uint64_t>(w) + j <= it->second.write_time) {
              throw SimError("feedback read would outrun its write in hardware");
            }
            value = it->second.word;
            break;
          }
        }
        regs[j][r.slot] = std::move(value);
        reg_valid[j][r.slot] = 1;
        ++counters_.route_writes;
      }

      // 2. Compute stage: active LPEs evaluate their LUT.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      for (const ComputeWrite& c : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(c.lane) * 2;
        const BitVec& a = regs[j][slot_a];
        const BitVec& b = regs[j][slot_a + 1];
        if (!c.lut.ignores_a() && !reg_valid[j][slot_a]) {
          throw SimError("LPE computes over an invalid A operand");
        }
        if (!c.lut.ignores_b() && !reg_valid[j][slot_a + 1]) {
          throw SimError("LPE computes over an invalid B operand");
        }
        eval_lut_into(c.lut, reg_valid[j][slot_a] ? a : zero,
                      reg_valid[j][slot_a + 1] ? b : zero, cur_out[c.lane]);
        cur_valid[c.lane] = 1;
        ++counters_.lpe_computes;
      }

      // 3. Terminal LPV: feedback writes and output taps.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) throw SimError("feedback write of an invalid lane");
          feedback[w * m + lane] =
              FbEntry{cur_out[lane], static_cast<std::uint64_t>(w) + n - 1};
          ++counters_.feedback_words;
        }
        const auto it = taps_at.find(w);
        if (it != taps_at.end()) {
          for (const OutputTap* tap : it->second) {
            if (!cur_valid[tap->lane]) throw SimError("output tap of an invalid lane");
            outputs[tap->po_index] = cur_out[tap->lane];
            output_set[tap->po_index] = 1;
          }
        }
      }
      std::swap(prev_out, cur_out);
      std::swap(prev_valid, cur_valid);
    }
  }

  for (std::size_t po = 0; po < outputs.size(); ++po) {
    if (!output_set[po]) {
      throw SimError("primary output " + std::to_string(po) + " never produced");
    }
  }
  return outputs;
}

// -------------------------------------------------------------------------
// Compiled-stream executor: replay the op stream compile_sliced() built.
// Per wavefront: one cancel poll, then kernel calls and row copies — every
// other decision the interpreter makes per gate was already made at
// construction. Counters come from the precomputed prefixes so a cancelled
// (or error-replaying) run reports exactly what the interpreter would have
// accumulated by the same point.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_compiled(const std::vector<BitVec>& inputs,
                                               const std::atomic<bool>* cancel,
                                               std::size_t width) {
  const std::size_t words = (width + 63) / 64;
  // kAvx2 only resolves on x86 with AVX2 present, so avx2_table() is non-null
  // whenever this branch is taken.
  const kernels::KernelFn* ktab = kernels::word_table();
  if (kernel_ == SimdKernel::kAvx2 && words >= 4) ktab = kernels::avx2_table();

  // Zero only on (re)size: the op stream is identical every run, so every
  // row it reads was written earlier in the same run (or is row 0, the
  // never-written zero row) — stale words are unreachable.
  if (arena_.size() != static_cast<std::size_t>(sliced_.num_rows) * words) {
    arena_.assign(static_cast<std::size_t>(sliced_.num_rows) * words, 0);
  }
  std::uint64_t* const arena = arena_.data();

  const std::size_t num_in = prog_.input_layout.size();
  for (std::size_t a = 0; a < num_in; ++a) {
    const BitVec& src = inputs[prog_.input_layout[a]];
    for (std::size_t w = 0; w < words; ++w) {
      arena[(1 + a) * words + w] = src.word(w);
    }
  }

  const auto set_counters = [this](const CounterPrefix& c) {
    counters_.input_reads = c.input_reads;
    counters_.route_writes = c.route_writes;
    counters_.lpe_computes = c.lpe_computes;
    counters_.feedback_words = c.feedback_words;
  };

  const SlicedOp* const ops = sliced_.ops.data();
  std::size_t op = 0;
  for (std::uint32_t w = 0; w < sliced_.compiled_waves; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      set_counters(sliced_.counters_at[w]);
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    const std::uint32_t end = sliced_.wave_op_end[w];
    for (; op < end; ++op) {
      const SlicedOp& o = ops[op];
      if (o.kind == SlicedOp::kCompute) {
        ktab[o.bits](arena + o.a * words, arena + o.b * words,
                     arena + o.dst * words, words);
      } else if (o.kind == SlicedOp::kCopy) {
        std::copy_n(arena + o.a * words, words, arena + o.dst * words);
      } else if (hook_) {
        hook_(w, o.a, prog_.instr[w][o.a]);
      }
    }
  }

  if (sliced_.error) {
    set_counters(sliced_.error_counters);
    throw SimError(sliced_.error_msg);
  }
  set_counters(sliced_.counters_at[prog_.num_wavefronts]);

  std::vector<BitVec> outputs(prog_.num_primary_outputs);
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    BitVec v(width, false);
    for (std::size_t w = 0; w < words; ++w) {
      // set_word masks the tail word: bits the kernels' ~ terms set past the
      // batch width never reach the caller.
      v.set_word(w, arena[(sliced_.out_row0 + po) * words + w]);
    }
    outputs[po] = std::move(v);
  }
  return outputs;
}

// -------------------------------------------------------------------------
// Bit-sliced interpretive kernel: every datapath row (input buffer word,
// snapshot register, inter-LPV lane output, primary output) is `words`
// packed 64-bit words in one flat arena; routes are row copies and gate
// evaluation is the word/AVX2 LUT kernel over the full batch width. No
// per-gate allocations — the arena is sized once per (program, width) and
// reused across runs.
//
// This loop only runs for the configurations the compiled replay stream
// cannot cover: the staged-switch oracle (routes resolved dynamically per
// run) and LBNN_NO_FUSE (the un-fused interpreter requested on purpose as a
// debug/differential knob). The default configuration delegates to
// run_compiled above. Lane-output rows are therefore always materialized
// here and delivery happens in the switch stage, exactly like the scalar
// oracle.
//
// Observable behaviour (outputs, counters, SimError/SimCancelled points,
// hooks, staged-switch oracle) matches run_scalar bit for bit —
// tests/test_simd_diff.cpp is the harness holding both to it.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_sliced(const std::vector<BitVec>& inputs,
                                             const std::atomic<bool>* cancel,
                                             std::size_t width) {
  // The compiled op stream covers the default configuration. The staged-
  // switch oracle resolves routes dynamically per run, and LBNN_NO_FUSE asks
  // for the un-fused interpreter on purpose — both fall through to the
  // interpretive loop below.
  if (fuse_ && !oracle_) return run_compiled(inputs, cancel, width);

  const LpuConfig& cfg = prog_.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;
  const std::size_t words = (width + 63) / 64;

  // Kernel table choice is per-run: below one full vector of words an AVX2
  // kernel falls straight into its word-loop tail, so narrow batches take
  // the portable table directly. Each table entry is specialized to one
  // truth table (masks constant-folded away); dispatch is one indexed call.
  const kernels::KernelFn* ktab = kernels::word_table();
  if (kernel_ == SimdKernel::kAvx2 && words >= 4) ktab = kernels::avx2_table();

  // Arena layout, in rows of `words` 64-bit words:
  //   [in_base   ..)  input data buffer (input_layout.size() rows)
  //   [regs_base ..)  snapshot registers, n * 2m rows (lpv major)
  //   [lane_base ..)  prev/cur LPV lane outputs, 2 * m rows (swapped by base)
  //   [out_base  ..)  primary outputs
  //   [zero_base ..)  one always-zero row (ignored-but-invalid operands)
  const std::size_t num_in = prog_.input_layout.size();
  const std::size_t in_base = 0;
  const std::size_t regs_base = in_base + num_in * words;
  const std::size_t lane_base =
      regs_base + static_cast<std::size_t>(n) * 2 * m * words;
  const std::size_t out_base =
      lane_base + static_cast<std::size_t>(2) * m * words;
  const std::size_t zero_base = out_base + prog_.num_primary_outputs * words;
  // Zero only on (re)size: every read is guarded by a per-run valid flag (or
  // is the never-written zero row), so stale words from a previous run are
  // unreachable and the per-run memset would be pure overhead.
  if (arena_.size() != zero_base + words) arena_.assign(zero_base + words, 0);
  std::uint64_t* const arena = arena_.data();

  for (std::size_t a = 0; a < num_in; ++a) {
    const BitVec& src = inputs[prog_.input_layout[a]];
    for (std::size_t w = 0; w < words; ++w) {
      arena[in_base + a * words + w] = src.word(w);
    }
  }

  // Per-run scratch reset: plain memsets over member buffers allocated at
  // construction (see the constructor) — the hot path never allocates.
  std::vector<char>& reg_valid = reg_valid_;
  std::vector<char>& prev_valid = prev_valid_;
  std::vector<char>& cur_valid = cur_valid_;
  std::vector<char>& output_set = output_set_;
  std::fill(reg_valid.begin(), reg_valid.end(), 0);
  std::fill(output_set.begin(), output_set.end(), 0);

  std::size_t prev_base = lane_base;
  std::size_t cur_base = lane_base + static_cast<std::size_t>(m) * words;

  // Feedback addresses are dense (addr = wavefront * m + lane), so the
  // scalar path's hash map becomes two flat tables: row offset into
  // fb_arena_ (-1 = never written) and the absolute write completion time.
  // fb_time_ needs no reset — it is only read behind a non-negative offset,
  // which implies a write earlier this run.
  const std::size_t fb_addrs = static_cast<std::size_t>(prog_.num_wavefronts) * m;
  std::vector<std::ptrdiff_t>& fb_offset = fb_offset_;
  std::vector<std::uint64_t>& fb_time = fb_time_;
  std::fill(fb_offset.begin(), fb_offset.end(), std::ptrdiff_t{-1});
  fb_arena_.clear();

  // Output taps bucketed by wavefront (taps_at_, built at construction),
  // indexed O(1) in the terminal-LPV stage.
  const std::vector<std::vector<const OutputTap*>>& taps_at = taps_at_;

  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (hook_ && !instr.empty()) hook_(w, j, instr);

      const std::vector<std::uint32_t> staged_src =
          oracle_ ? resolve_staged(instr) : std::vector<std::uint32_t>{};

      const std::size_t regs_j =
          regs_base + static_cast<std::size_t>(j) * 2 * m * words;
      char* const valid_j = reg_valid.data() + static_cast<std::size_t>(j) * 2 * m;

      // 1. Switch stage: deliver rows into snapshot registers.
      for (std::size_t ri = 0; ri < instr.routes.size(); ++ri) {
        const RouteWrite& r = instr.routes[ri];
        std::uint64_t* const dst = arena + regs_j + r.slot * words;
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: {
            if (j == 0) throw SimError("LPV 0 has no predecessor to route from");
            const std::uint32_t lane =
                staged_src.empty() ? r.src.index : staged_src[r.slot];
            if (lane >= m || !prev_valid[lane]) {
              throw SimError("route from an invalid previous-LPV lane");
            }
            std::copy_n(arena + prev_base + lane * words, words, dst);
            break;
          }
          case SrcSel::Kind::kInput:
            std::copy_n(arena + in_base + r.src.index * words, words, dst);
            ++counters_.input_reads;
            break;
          case SrcSel::Kind::kFeedback: {
            if (r.src.index >= fb_addrs || fb_offset[r.src.index] < 0) {
              throw SimError("feedback read before write (address " +
                             std::to_string(r.src.index) + ")");
            }
            if (static_cast<std::uint64_t>(w) + j <= fb_time[r.src.index]) {
              throw SimError("feedback read would outrun its write in hardware");
            }
            std::copy_n(fb_arena_.data() + fb_offset[r.src.index], words, dst);
            break;
          }
        }
        valid_j[r.slot] = 1;
        ++counters_.route_writes;
      }

      // 2. Compute stage: the bit-sliced LUT kernel, full batch width per op,
      // into this LPV's lane-output rows.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      for (const ComputeWrite& c : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(c.lane) * 2;
        if (!c.lut.ignores_a() && !valid_j[slot_a]) {
          throw SimError("LPE computes over an invalid A operand");
        }
        if (!c.lut.ignores_b() && !valid_j[slot_a + 1]) {
          throw SimError("LPE computes over an invalid B operand");
        }
        const std::uint64_t* const a =
            valid_j[slot_a] ? arena + regs_j + slot_a * words : arena + zero_base;
        const std::uint64_t* const b = valid_j[slot_a + 1]
                                           ? arena + regs_j + (slot_a + 1) * words
                                           : arena + zero_base;
        cur_valid[c.lane] = 1;
        ++counters_.lpe_computes;
        ktab[c.lut.bits() & 0xF](a, b, arena + cur_base + c.lane * words, words);
      }

      // 3. Terminal LPV: feedback writes and output taps.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) throw SimError("feedback write of an invalid lane");
          const std::uint32_t addr = w * m + lane;
          if (fb_offset[addr] < 0) {
            fb_offset[addr] = static_cast<std::ptrdiff_t>(fb_arena_.size());
            fb_arena_.resize(fb_arena_.size() + words);
          }
          fb_time[addr] = static_cast<std::uint64_t>(w) + n - 1;
          std::copy_n(arena + cur_base + lane * words, words,
                      fb_arena_.data() + fb_offset[addr]);
          ++counters_.feedback_words;
        }
        for (const OutputTap* tap : taps_at[w]) {
          if (!cur_valid[tap->lane]) throw SimError("output tap of an invalid lane");
          std::copy_n(arena + cur_base + tap->lane * words, words,
                      arena + out_base + tap->po_index * words);
          output_set[tap->po_index] = 1;
        }
      }
      std::swap(prev_base, cur_base);
      prev_valid.swap(cur_valid);
    }
  }

  std::vector<BitVec> outputs(prog_.num_primary_outputs);
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    if (!output_set[po]) {
      throw SimError("primary output " + std::to_string(po) + " never produced");
    }
    BitVec v(width, false);
    for (std::size_t w = 0; w < words; ++w) {
      // set_word masks the tail word: bits the ~ terms set past the batch
      // width never reach the caller.
      v.set_word(w, arena[out_base + po * words + w]);
    }
    outputs[po] = std::move(v);
  }
  return outputs;
}

}  // namespace lbnn
