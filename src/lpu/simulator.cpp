#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 flags the inlined vector<uint64_t> copy inside BitVec assignment as
// memmove(dst, nullptr, 0) on the empty-source path; every BitVec copied here
// has width >= 1 (run() rejects width-0 batches), so the path is dead. The
// pragma must precede the includes — the diagnostic anchors inside
// stl_algobase.h.
#pragma GCC diagnostic ignored "-Wnonnull"
#endif

#include "lpu/simulator.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define LBNN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace lbnn {

namespace {

/// Broadcast one truth-table bit to an all-ones/all-zeros 64-bit mask.
inline std::uint64_t lut_mask(std::uint8_t bits, int idx) {
  return ((bits >> idx) & 1) ? ~0ull : 0ull;
}

/// Portable bit-sliced gate kernel: one 64-bit word op evaluates 64 batch
/// samples. out[w] = LUT(a, b) lane-wise, as a sum of the four minterms
/// masked by the truth-table bits (bit i of `bits` is the value at
/// a = i & 1, b = i >> 1).
void lut_kernel_word(std::uint8_t bits, const std::uint64_t* a,
                     const std::uint64_t* b, std::uint64_t* out,
                     std::size_t words) {
  const std::uint64_t m0 = lut_mask(bits, 0);
  const std::uint64_t m1 = lut_mask(bits, 1);
  const std::uint64_t m2 = lut_mask(bits, 2);
  const std::uint64_t m3 = lut_mask(bits, 3);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t aw = a[w];
    const std::uint64_t bw = b[w];
    out[w] = (m0 & ~(aw | bw)) | (m1 & (aw & ~bw)) | (m2 & (~aw & bw)) |
             (m3 & (aw & bw));
  }
}

/// One bit-sliced gate kernel: (a, b, out, words). The truth table is baked
/// into the function (see the templates below), so a call is pure loads,
/// logic ops, and stores — no per-gate mask setup.
using KernelFn = void (*)(const std::uint64_t*, const std::uint64_t*,
                          std::uint64_t*, std::size_t);

/// Truth-table-specialized portable kernel: BITS is a compile-time constant,
/// so the masked-minterm sum constant-folds to the minimal op chain for that
/// gate (XOR becomes two andnots and an or, AND a single and, ...).
template <std::uint8_t BITS>
void lut_kernel_word_t(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* out, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t aw = a[w];
    const std::uint64_t bw = b[w];
    std::uint64_t r = 0;
    if constexpr ((BITS >> 0) & 1) r |= ~(aw | bw);
    if constexpr ((BITS >> 1) & 1) r |= aw & ~bw;
    if constexpr ((BITS >> 2) & 1) r |= ~aw & bw;
    if constexpr ((BITS >> 3) & 1) r |= aw & bw;
    out[w] = r;
  }
}

template <std::size_t... I>
constexpr std::array<KernelFn, 16> make_word_table(std::index_sequence<I...>) {
  return {&lut_kernel_word_t<static_cast<std::uint8_t>(I)>...};
}
constexpr std::array<KernelFn, 16> kWordKernels =
    make_word_table(std::make_index_sequence<16>{});

#ifdef LBNN_SIMD_X86
/// Truth-table-specialized AVX2 kernel: 4 words (256 batch samples) per
/// iteration, minimal op chain per gate (constant-folded minterm sum), tail
/// words through the portable loop. Compiled with a target attribute so the
/// rest of the binary stays baseline-ISA; only ever called after
/// __builtin_cpu_supports("avx2") said yes.
template <std::uint8_t BITS>
__attribute__((target("avx2"))) void lut_kernel_avx2_t(const std::uint64_t* a,
                                                       const std::uint64_t* b,
                                                       std::uint64_t* out,
                                                       std::size_t words) {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    // andnot(x, y) = ~x & y; minterms: ~(a|b), a&~b, ~a&b, a&b.
    __m256i r = _mm256_setzero_si256();
    if constexpr ((BITS >> 0) & 1) {
      const __m256i ones = _mm256_set1_epi64x(-1);
      r = _mm256_or_si256(r,
                          _mm256_andnot_si256(_mm256_or_si256(av, bv), ones));
    }
    if constexpr ((BITS >> 1) & 1) {
      r = _mm256_or_si256(r, _mm256_andnot_si256(bv, av));
    }
    if constexpr ((BITS >> 2) & 1) {
      r = _mm256_or_si256(r, _mm256_andnot_si256(av, bv));
    }
    if constexpr ((BITS >> 3) & 1) {
      r = _mm256_or_si256(r, _mm256_and_si256(av, bv));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), r);
  }
  if (w < words) lut_kernel_word(BITS, a + w, b + w, out + w, words - w);
}

template <std::size_t... I>
constexpr std::array<KernelFn, 16> make_avx2_table(std::index_sequence<I...>) {
  return {&lut_kernel_avx2_t<static_cast<std::uint8_t>(I)>...};
}
constexpr std::array<KernelFn, 16> kAvx2Kernels =
    make_avx2_table(std::make_index_sequence<16>{});
#endif  // LBNN_SIMD_X86

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// True when routes[i] is the last write to its register slot within the
/// instruction — only the last write is observable (the scalar interpreter
/// applies route writes in order, so earlier writes to the same slot are
/// dead). Fused switch delivery must honour exactly that.
bool is_last_slot_writer(const std::vector<RouteWrite>& routes, std::size_t i) {
  for (std::size_t k = i + 1; k < routes.size(); ++k) {
    if (routes[k].slot == routes[i].slot) return false;
  }
  return true;
}

}  // namespace

const char* to_string(SimdKernel k) {
  switch (k) {
    case SimdKernel::kScalar:
      return "scalar";
    case SimdKernel::kWord64:
      return "word64";
    case SimdKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool LpuSimulator::cpu_has_avx2() {
#ifdef LBNN_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdKernel LpuSimulator::resolve_kernel(bool simd_requested) {
  if (!simd_requested || env_set("LBNN_FORCE_SCALAR")) {
    return SimdKernel::kScalar;
  }
  if (cpu_has_avx2() && !env_set("LBNN_NO_AVX2")) return SimdKernel::kAvx2;
  return SimdKernel::kWord64;
}

void eval_lut_into(TruthTable4 lut, const BitVec& a, const BitVec& b,
                   BitVec& out) {
  LBNN_CHECK(a.width() == b.width() && a.width() == out.width(),
             "eval_lut_into width mismatch");
  const std::uint8_t bits = lut.bits();
  const std::uint64_t m0 = lut_mask(bits, 0);
  const std::uint64_t m1 = lut_mask(bits, 1);
  const std::uint64_t m2 = lut_mask(bits, 2);
  const std::uint64_t m3 = lut_mask(bits, 3);
  for (std::size_t w = 0; w < out.num_words(); ++w) {
    const std::uint64_t aw = a.word(w);
    const std::uint64_t bw = b.word(w);
    // set_word masks the tail word, keeping the BitVec canonical even though
    // the ~ terms set bits past the width.
    out.set_word(w, (m0 & ~(aw | bw)) | (m1 & (aw & ~bw)) |
                        (m2 & (~aw & bw)) | (m3 & (aw & bw)));
  }
}

BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b) {
  BitVec r(a.width(), false);
  eval_lut_into(lut, a, b, r);
  return r;
}

LpuSimulator::LpuSimulator(const Program& program, bool simd)
    : prog_(program),
      kernel_(resolve_kernel(simd)),
      fuse_(!env_set("LBNN_NO_FUSE")) {
  prog_.validate();
  if (kernel_ == SimdKernel::kScalar) return;

  // Program-shaped run scratch for the bit-sliced path, allocated once here
  // and reset (cheap memsets) per run.
  const std::uint32_t n0 = prog_.cfg.n;
  const std::uint32_t m0 = prog_.cfg.m;
  reg_valid_.resize(static_cast<std::size_t>(n0) * 2 * m0);
  prev_valid_.resize(m0);
  cur_valid_.resize(m0);
  output_set_.resize(prog_.num_primary_outputs);
  const std::size_t fb_addrs =
      static_cast<std::size_t>(prog_.num_wavefronts) * m0;
  fb_offset_.resize(fb_addrs);
  fb_time_.resize(fb_addrs);
  taps_at_.resize(prog_.num_wavefronts);
  for (const auto& tap : prog_.output_taps) {
    taps_at_[tap.wavefront].push_back(&tap);
  }
  if (!fuse_) return;

  // Decode the fused-delivery fanout once: for each (wavefront, lpv, lane)
  // compute, which register slots of the next LPV consume it. Routes whose
  // slot a later route overwrites, or whose source lane is out of range (the
  // route stage throws before the value could matter), are excluded. The hot
  // loop then walks a flat CSR instead of re-scanning route tables per gate.
  const std::uint32_t n = prog_.cfg.n;
  const std::uint32_t m = prog_.cfg.m;
  const std::size_t cells =
      static_cast<std::size_t>(prog_.num_wavefronts) * n * m;
  fan_off_.assign(cells + 1, 0);
  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    for (std::uint32_t j = 1; j < n; ++j) {
      const auto& routes = prog_.instr[w][j].routes;
      for (std::size_t i = 0; i < routes.size(); ++i) {
        const RouteWrite& r = routes[i];
        if (r.src.kind != SrcSel::Kind::kPrevLane || r.src.index >= m) continue;
        if (!is_last_slot_writer(routes, i)) continue;
        const std::size_t cell =
            (static_cast<std::size_t>(w) * n + (j - 1)) * m + r.src.index;
        ++fan_off_[cell + 1];
      }
    }
  }
  for (std::size_t c = 1; c < fan_off_.size(); ++c) fan_off_[c] += fan_off_[c - 1];
  fan_slot_.resize(fan_off_.back());
  std::vector<std::uint32_t> cursor(fan_off_.begin(), fan_off_.end() - 1);
  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    for (std::uint32_t j = 1; j < n; ++j) {
      const auto& routes = prog_.instr[w][j].routes;
      for (std::size_t i = 0; i < routes.size(); ++i) {
        const RouteWrite& r = routes[i];
        if (r.src.kind != SrcSel::Kind::kPrevLane || r.src.index >= m) continue;
        if (!is_last_slot_writer(routes, i)) continue;
        const std::size_t cell =
            (static_cast<std::size_t>(w) * n + (j - 1)) * m + r.src.index;
        fan_slot_[cursor[cell]++] = r.slot;
      }
    }
  }

  compile_sliced();
}

// -------------------------------------------------------------------------
// Compile the program into the flat op stream run_compiled replays. The
// interpreter's entire control flow — register/lane validity, feedback
// read-after-write ordering, multicast fanout, dead-write elision, SimError
// conditions, counters — depends only on the immutable program, never on
// batch data. So it runs HERE, once, and the hot loop degenerates to kernel
// calls and row copies. The walk below mirrors run_sliced statement for
// statement; where the interpreter would throw, the stream is truncated and
// the executor replays the throw at the same point (cancel checks for the
// covered wavefronts still come first, so a cancel that lands earlier still
// wins, exactly as in the interpreter).
//
// Arena row layout of the compiled stream (row 0 first so operand indices
// can resolve before the feedback row count is known):
//   row 0                 always-zero (invalid-but-ignored operands)
//   [1 ..)                input data buffer rows
//   [reg0 ..)             snapshot registers, n * 2m rows (lpv major)
//   [out_row0_ ..)        primary outputs
//   [fb0 ..)              feedback rows, one per written address, in first-
//                         write order (the address space is static)
// Inter-LPV lane rows vanish entirely: a terminal-LPV compute delivers
// straight into its feedback rows and output rows, everything else into the
// next LPV's registers via the decoded fanout.
// -------------------------------------------------------------------------
void LpuSimulator::compile_sliced() {
  const std::uint32_t n = prog_.cfg.n;
  const std::uint32_t m = prog_.cfg.m;
  const std::uint32_t W = prog_.num_wavefronts;
  const std::uint32_t num_in = static_cast<std::uint32_t>(prog_.input_layout.size());
  const std::uint32_t reg0 = 1 + num_in;
  out_row0_ = reg0 + n * 2 * m;
  const std::uint32_t fb0 =
      out_row0_ + static_cast<std::uint32_t>(prog_.num_primary_outputs);

  const std::size_t fb_addrs = static_cast<std::size_t>(W) * m;
  std::vector<std::int64_t> fb_row(fb_addrs, -1);
  std::vector<std::uint64_t> fb_time(fb_addrs, 0);
  std::uint32_t fb_rows = 0;

  std::vector<char> reg_valid(static_cast<std::size_t>(n) * 2 * m, 0);
  std::vector<char> prev_valid(m, 0);
  std::vector<char> cur_valid(m, 0);
  std::vector<char> out_set(prog_.num_primary_outputs, 0);
  // Producing compute per lane of the previous/current LPV: index into ops_
  // of the kCompute op, or -1 when the lane was not computed. Terminal-stage
  // consumers (feedback, taps) append their destination rows to it.
  std::vector<std::int64_t> cur_op(m, -1);

  CounterPrefix c;
  ops_.clear();
  wave_op_end_.assign(W, 0);
  counters_at_.assign(static_cast<std::size_t>(W) + 1, CounterPrefix{});
  compiled_error_ = false;
  compiled_error_msg_.clear();
  compiled_waves_ = W;

  bool err = false;
  auto fail = [&](std::string msg) {
    compiled_error_ = true;
    compiled_error_msg_ = std::move(msg);
    compiled_error_counters_ = c;
    err = true;
  };

  // Emit a compute: the kernel runs into the first destination row, the
  // multicast copies the row to the rest. Returns the op index of the
  // kCompute (or of a sentinel record when the result has no consumer yet —
  // a terminal-stage consumer may still attach one).
  auto emit_compute = [&](std::uint8_t bits, std::uint32_t a, std::uint32_t b)
      -> std::size_t {
    SlicedOp op;
    op.kind = SlicedOp::kCompute;
    op.bits = bits;
    op.a = a;
    op.b = b;
    op.dst = 0;  // patched by the first attach; 0 marks "no consumer yet"
    ops_.push_back(op);
    return ops_.size() - 1;
  };
  auto attach_dst = [&](std::size_t op_idx, std::uint32_t dst_row) {
    SlicedOp& op = ops_[op_idx];
    if (op.dst == 0) {
      op.dst = dst_row;  // row 0 is the zero row — never a real destination
      return;
    }
    SlicedOp copy;
    copy.kind = SlicedOp::kCopy;
    copy.a = op.dst;
    copy.dst = dst_row;
    ops_.push_back(copy);
  };

  for (std::uint32_t w = 0; w < W && !err; ++w) {
    counters_at_[w] = c;
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n && !err; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (!instr.empty()) {
        SlicedOp hop;
        hop.kind = SlicedOp::kHook;
        hop.a = j;
        ops_.push_back(hop);
      }
      char* const valid_j =
          reg_valid.data() + static_cast<std::size_t>(j) * 2 * m;
      const std::uint32_t regs_j = reg0 + j * 2 * m;

      // 1. Switch stage. Previous-lane routes were already attached to their
      // producing compute (the fanout CSR); only input/feedback copies — for
      // the slot's last writer — become ops.
      for (std::size_t ri = 0; ri < instr.routes.size() && !err; ++ri) {
        const RouteWrite& r = instr.routes[ri];
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane:
            if (j == 0) {
              fail("LPV 0 has no predecessor to route from");
            } else if (r.src.index >= m || !prev_valid[r.src.index]) {
              fail("route from an invalid previous-LPV lane");
            }
            break;
          case SrcSel::Kind::kInput:
            if (is_last_slot_writer(instr.routes, ri)) {
              SlicedOp copy;
              copy.kind = SlicedOp::kCopy;
              copy.a = 1 + r.src.index;
              copy.dst = regs_j + r.slot;
              ops_.push_back(copy);
            }
            ++c.input_reads;
            break;
          case SrcSel::Kind::kFeedback:
            if (r.src.index >= fb_addrs || fb_row[r.src.index] < 0) {
              fail("feedback read before write (address " +
                   std::to_string(r.src.index) + ")");
            } else if (static_cast<std::uint64_t>(w) + j <=
                       fb_time[r.src.index]) {
              fail("feedback read would outrun its write in hardware");
            } else if (is_last_slot_writer(instr.routes, ri)) {
              SlicedOp copy;
              copy.kind = SlicedOp::kCopy;
              copy.a = fb0 + static_cast<std::uint32_t>(fb_row[r.src.index]);
              copy.dst = regs_j + r.slot;
              ops_.push_back(copy);
            }
            break;
        }
        if (err) break;
        valid_j[r.slot] = 1;
        ++c.route_writes;
      }
      if (err) break;

      // 2. Compute stage.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      std::fill(cur_op.begin(), cur_op.end(), std::int64_t{-1});
      for (const ComputeWrite& cw : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(cw.lane) * 2;
        if (!cw.lut.ignores_a() && !valid_j[slot_a]) {
          fail("LPE computes over an invalid A operand");
          break;
        }
        if (!cw.lut.ignores_b() && !valid_j[slot_a + 1]) {
          fail("LPE computes over an invalid B operand");
          break;
        }
        const std::uint32_t arow =
            valid_j[slot_a] ? regs_j + static_cast<std::uint32_t>(slot_a) : 0;
        const std::uint32_t brow =
            valid_j[slot_a + 1] ? regs_j + static_cast<std::uint32_t>(slot_a) + 1
                                : 0;
        cur_valid[cw.lane] = 1;
        ++c.lpe_computes;
        cur_op[cw.lane] =
            static_cast<std::int64_t>(emit_compute(cw.lut.bits() & 0xF, arow, brow));
        if (j + 1 < n) {
          const std::size_t cell =
              (static_cast<std::size_t>(w) * n + j) * m + cw.lane;
          const std::uint32_t regs_next = regs_j + 2 * m;
          for (std::uint32_t k = fan_off_[cell]; k < fan_off_[cell + 1]; ++k) {
            attach_dst(static_cast<std::size_t>(cur_op[cw.lane]),
                       regs_next + fan_slot_[k]);
          }
        }
      }
      if (err) break;

      // 3. Terminal LPV: feedback writes and output taps attach their rows
      // to the producing computes. Delivery then happens during the compute
      // stage instead of after it — unobservable, the rows are disjoint from
      // everything this instruction reads.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) {
            fail("feedback write of an invalid lane");
            break;
          }
          const std::uint32_t addr = w * m + lane;
          if (fb_row[addr] < 0) fb_row[addr] = fb_rows++;
          fb_time[addr] = static_cast<std::uint64_t>(w) + n - 1;
          attach_dst(static_cast<std::size_t>(cur_op[lane]),
                     fb0 + static_cast<std::uint32_t>(fb_row[addr]));
          ++c.feedback_words;
        }
        if (err) break;
        // Multiple taps of one primary output in the same wavefront: the
        // interpreter applies them in tap order, so only the last lands.
        for (std::size_t t = 0; t < taps_at_[w].size() && !err; ++t) {
          const OutputTap* tap = taps_at_[w][t];
          if (!cur_valid[tap->lane]) {
            fail("output tap of an invalid lane");
            break;
          }
          bool last_for_po = true;
          for (std::size_t t2 = t + 1; t2 < taps_at_[w].size(); ++t2) {
            if (taps_at_[w][t2]->po_index == tap->po_index) last_for_po = false;
          }
          if (last_for_po) {
            attach_dst(static_cast<std::size_t>(cur_op[tap->lane]),
                       out_row0_ + tap->po_index);
          }
          out_set[tap->po_index] = 1;
        }
        if (err) break;
      }
      prev_valid.swap(cur_valid);
    }
    wave_op_end_[w] = static_cast<std::uint32_t>(ops_.size());
    if (err) compiled_waves_ = w + 1;
  }

  if (!err) {
    counters_at_[W] = c;
    for (std::size_t po = 0; po < out_set.size(); ++po) {
      if (!out_set[po]) {
        fail("primary output " + std::to_string(po) + " never produced");
        break;
      }
    }
  }
  // Cull computes that ended with no consumer (dst still 0): the scalar
  // oracle computes and drops the value — observationally identical, and the
  // lpe_computes counter above already counted them.
  std::size_t keep = 0;
  std::vector<std::uint32_t> remap(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    remap[i] = static_cast<std::uint32_t>(keep);
    if (ops_[i].kind == SlicedOp::kCompute && ops_[i].dst == 0) continue;
    ops_[keep++] = ops_[i];
  }
  ops_.resize(keep);
  for (std::uint32_t w = 0; w < W; ++w) {
    wave_op_end_[w] = wave_op_end_[w] < remap.size()
                          ? remap[wave_op_end_[w]]
                          : static_cast<std::uint32_t>(keep);
  }
  num_rows_ = fb0 + fb_rows;
}

std::vector<std::uint32_t> LpuSimulator::resolve_staged(
    const LpvInstr& instr) const {
  std::vector<std::uint32_t> staged_src;
  if (!oracle_) return staged_src;
  std::vector<std::int32_t> assignment(2 * prog_.cfg.m, -1);
  bool any = false;
  for (const RouteWrite& r : instr.routes) {
    if (r.src.kind == SrcSel::Kind::kPrevLane) {
      assignment[r.slot] = static_cast<std::int32_t>(r.src.index);
      any = true;
    }
  }
  if (any) staged_src = oracle_(assignment);
  return staged_src;
}

std::vector<BitVec> LpuSimulator::run(const std::vector<BitVec>& inputs,
                                      const std::atomic<bool>* cancel) {
  if (inputs.size() != prog_.num_primary_inputs) {
    throw SimError("wrong number of input words");
  }
  const std::size_t width =
      inputs.empty() ? prog_.cfg.effective_word_width() : inputs[0].width();
  if (width == 0) throw SimError("zero-width batch");
  for (const auto& v : inputs) {
    if (v.width() != width) throw SimError("ragged input word widths");
  }

  counters_ = SimCounters{};
  counters_.wavefronts = prog_.num_wavefronts;

  std::vector<BitVec> outputs = kernel_ == SimdKernel::kScalar
                                    ? run_scalar(inputs, cancel, width)
                                    : run_sliced(inputs, cancel, width);

  counters_.macro_cycles = prog_.macro_cycles();
  counters_.clock_cycles = prog_.clock_cycles();
  const double denom = static_cast<double>(prog_.num_wavefronts) *
                       prog_.cfg.n * prog_.cfg.m;
  counters_.lpe_utilization =
      denom == 0 ? 0.0 : static_cast<double>(counters_.lpe_computes) / denom;
  return outputs;
}

// -------------------------------------------------------------------------
// Scalar oracle kernel: the original BitVec-at-a-time interpreter. Kept
// bit-for-bit as the reference the bit-sliced kernels are differentially
// tested against (tests/test_simd_diff.cpp); its only change since is that
// gate evaluation reuses cur_out / a shared zero word through eval_lut_into
// instead of allocating up to 6 BitVec temporaries per gate.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_scalar(const std::vector<BitVec>& inputs,
                                             const std::atomic<bool>* cancel,
                                             std::size_t width) {
  const LpuConfig& cfg = prog_.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;

  // Input data buffer contents.
  std::vector<BitVec> input_buffer(prog_.input_layout.size());
  for (std::size_t a = 0; a < prog_.input_layout.size(); ++a) {
    input_buffer[a] = inputs[prog_.input_layout[a]];
  }

  // Snapshot registers: regs[lpv][slot] (slot = lane*2 + ab).
  const BitVec zero(width, false);
  std::vector<std::vector<BitVec>> regs(n, std::vector<BitVec>(2 * m, zero));
  std::vector<std::vector<char>> reg_valid(n, std::vector<char>(2 * m, 0));

  struct FbEntry {
    BitVec word;
    std::uint64_t write_time;
  };
  std::unordered_map<std::uint32_t, FbEntry> feedback;

  // Output taps grouped by wavefront for O(1) lookup.
  std::unordered_map<std::uint32_t, std::vector<const OutputTap*>> taps_at;
  for (const auto& tap : prog_.output_taps) taps_at[tap.wavefront].push_back(&tap);

  std::vector<BitVec> outputs(prog_.num_primary_outputs, zero);
  std::vector<char> output_set(prog_.num_primary_outputs, 0);

  std::vector<BitVec> prev_out(m, zero);
  std::vector<char> prev_valid(m, 0);
  std::vector<BitVec> cur_out(m, zero);
  std::vector<char> cur_valid(m, 0);

  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (hook_ && !instr.empty()) hook_(w, j, instr);

      // Staged-switch mode: resolve the multicast assignment through the
      // oracle (the staged fabric) instead of the functional route table.
      const std::vector<std::uint32_t> staged_src = resolve_staged(instr);

      // 1. Switch stage: deliver values into snapshot registers.
      for (const RouteWrite& r : instr.routes) {
        BitVec value;
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: {
            if (j == 0) throw SimError("LPV 0 has no predecessor to route from");
            const std::uint32_t lane =
                staged_src.empty() ? r.src.index : staged_src[r.slot];
            if (lane >= m || !prev_valid[lane]) {
              throw SimError("route from an invalid previous-LPV lane");
            }
            value = prev_out[lane];
            break;
          }
          case SrcSel::Kind::kInput:
            value = input_buffer[r.src.index];
            ++counters_.input_reads;
            break;
          case SrcSel::Kind::kFeedback: {
            const auto it = feedback.find(r.src.index);
            if (it == feedback.end()) {
              throw SimError("feedback read before write (address " +
                             std::to_string(r.src.index) + ")");
            }
            // Absolute macro time of this read is w + j; the write completed
            // at its producer's wavefront + n - 1.
            if (static_cast<std::uint64_t>(w) + j <= it->second.write_time) {
              throw SimError("feedback read would outrun its write in hardware");
            }
            value = it->second.word;
            break;
          }
        }
        regs[j][r.slot] = std::move(value);
        reg_valid[j][r.slot] = 1;
        ++counters_.route_writes;
      }

      // 2. Compute stage: active LPEs evaluate their LUT.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      for (const ComputeWrite& c : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(c.lane) * 2;
        const BitVec& a = regs[j][slot_a];
        const BitVec& b = regs[j][slot_a + 1];
        if (!c.lut.ignores_a() && !reg_valid[j][slot_a]) {
          throw SimError("LPE computes over an invalid A operand");
        }
        if (!c.lut.ignores_b() && !reg_valid[j][slot_a + 1]) {
          throw SimError("LPE computes over an invalid B operand");
        }
        eval_lut_into(c.lut, reg_valid[j][slot_a] ? a : zero,
                      reg_valid[j][slot_a + 1] ? b : zero, cur_out[c.lane]);
        cur_valid[c.lane] = 1;
        ++counters_.lpe_computes;
      }

      // 3. Terminal LPV: feedback writes and output taps.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) throw SimError("feedback write of an invalid lane");
          feedback[w * m + lane] =
              FbEntry{cur_out[lane], static_cast<std::uint64_t>(w) + n - 1};
          ++counters_.feedback_words;
        }
        const auto it = taps_at.find(w);
        if (it != taps_at.end()) {
          for (const OutputTap* tap : it->second) {
            if (!cur_valid[tap->lane]) throw SimError("output tap of an invalid lane");
            outputs[tap->po_index] = cur_out[tap->lane];
            output_set[tap->po_index] = 1;
          }
        }
      }
      std::swap(prev_out, cur_out);
      std::swap(prev_valid, cur_valid);
    }
  }

  for (std::size_t po = 0; po < outputs.size(); ++po) {
    if (!output_set[po]) {
      throw SimError("primary output " + std::to_string(po) + " never produced");
    }
  }
  return outputs;
}

// -------------------------------------------------------------------------
// Compiled-stream executor: replay the op stream compile_sliced() built.
// Per wavefront: one cancel poll, then kernel calls and row copies — every
// other decision the interpreter makes per gate was already made at
// construction. Counters come from the precomputed prefixes so a cancelled
// (or error-replaying) run reports exactly what the interpreter would have
// accumulated by the same point.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_compiled(const std::vector<BitVec>& inputs,
                                               const std::atomic<bool>* cancel,
                                               std::size_t width) {
  const std::size_t words = (width + 63) / 64;
  const KernelFn* kernels = kWordKernels.data();
#ifdef LBNN_SIMD_X86
  if (kernel_ == SimdKernel::kAvx2 && words >= 4) kernels = kAvx2Kernels.data();
#endif

  // Zero only on (re)size: the op stream is identical every run, so every
  // row it reads was written earlier in the same run (or is row 0, the
  // never-written zero row) — stale words are unreachable.
  if (arena_.size() != static_cast<std::size_t>(num_rows_) * words) {
    arena_.assign(static_cast<std::size_t>(num_rows_) * words, 0);
  }
  std::uint64_t* const arena = arena_.data();

  const std::size_t num_in = prog_.input_layout.size();
  for (std::size_t a = 0; a < num_in; ++a) {
    const BitVec& src = inputs[prog_.input_layout[a]];
    for (std::size_t w = 0; w < words; ++w) {
      arena[(1 + a) * words + w] = src.word(w);
    }
  }

  const auto set_counters = [this](const CounterPrefix& c) {
    counters_.input_reads = c.input_reads;
    counters_.route_writes = c.route_writes;
    counters_.lpe_computes = c.lpe_computes;
    counters_.feedback_words = c.feedback_words;
  };

  const SlicedOp* const ops = ops_.data();
  std::size_t op = 0;
  for (std::uint32_t w = 0; w < compiled_waves_; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      set_counters(counters_at_[w]);
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    const std::uint32_t end = wave_op_end_[w];
    for (; op < end; ++op) {
      const SlicedOp& o = ops[op];
      if (o.kind == SlicedOp::kCompute) {
        kernels[o.bits](arena + o.a * words, arena + o.b * words,
                        arena + o.dst * words, words);
      } else if (o.kind == SlicedOp::kCopy) {
        std::copy_n(arena + o.a * words, words, arena + o.dst * words);
      } else if (hook_) {
        hook_(w, o.a, prog_.instr[w][o.a]);
      }
    }
  }

  if (compiled_error_) {
    set_counters(compiled_error_counters_);
    throw SimError(compiled_error_msg_);
  }
  set_counters(counters_at_[prog_.num_wavefronts]);

  std::vector<BitVec> outputs(prog_.num_primary_outputs);
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    BitVec v(width, false);
    for (std::size_t w = 0; w < words; ++w) {
      // set_word masks the tail word: bits the kernels' ~ terms set past the
      // batch width never reach the caller.
      v.set_word(w, arena[(out_row0_ + po) * words + w]);
    }
    outputs[po] = std::move(v);
  }
  return outputs;
}

// -------------------------------------------------------------------------
// Bit-sliced kernel: every datapath row (input buffer word, snapshot
// register, inter-LPV lane output, primary output) is `words` packed 64-bit
// words in one flat arena; routes are row copies and gate evaluation is the
// word/AVX2 LUT kernel over the full batch width. No per-gate allocations —
// the arena is sized once per (program, width) and reused across runs.
//
// Inter-LPV data movement is fused with the compute stage, mirroring the
// hardware: an LPE's output traverses the multicast switch and lands in the
// next LPV's snapshot registers within the same macro cycle, so the kernel
// writes gate results DIRECTLY into the consuming LPV's register rows
// (multicast fanout = one kernel run + row copies) instead of staging them
// in a lane-output row the route stage would copy again. Lane rows are only
// materialized where something other than the next LPV's switch reads them:
// the terminal LPV (feedback writes and output taps) and staged-switch
// oracle mode, where the routes are resolved dynamically. A compute whose
// output no effective route consumes skips the kernel entirely — the scalar
// path computes and drops the value, observationally the same.
//
// Observable behaviour (outputs, counters, SimError/SimCancelled points,
// hooks, staged-switch oracle) matches run_scalar bit for bit —
// tests/test_simd_diff.cpp is the harness holding both to it.
// -------------------------------------------------------------------------
std::vector<BitVec> LpuSimulator::run_sliced(const std::vector<BitVec>& inputs,
                                             const std::atomic<bool>* cancel,
                                             std::size_t width) {
  // The compiled op stream covers the default configuration. The staged-
  // switch oracle resolves routes dynamically per run, and LBNN_NO_FUSE asks
  // for the un-fused interpreter on purpose — both fall through to the
  // interpretive loop below.
  if (fuse_ && !oracle_) return run_compiled(inputs, cancel, width);

  const LpuConfig& cfg = prog_.cfg;
  const std::uint32_t n = cfg.n;
  const std::uint32_t m = cfg.m;
  const std::size_t words = (width + 63) / 64;

  // Kernel table choice is per-run: below one full vector of words an AVX2
  // kernel falls straight into its word-loop tail, so narrow batches take
  // the portable table directly. Each table entry is specialized to one
  // truth table (masks constant-folded away); dispatch is one indexed call.
  const KernelFn* kernels = kWordKernels.data();
#ifdef LBNN_SIMD_X86
  if (kernel_ == SimdKernel::kAvx2 && words >= 4) kernels = kAvx2Kernels.data();
#endif

  // Arena layout, in rows of `words` 64-bit words:
  //   [in_base   ..)  input data buffer (input_layout.size() rows)
  //   [regs_base ..)  snapshot registers, n * 2m rows (lpv major)
  //   [lane_base ..)  prev/cur LPV lane outputs, 2 * m rows (swapped by base)
  //   [out_base  ..)  primary outputs
  //   [zero_base ..)  one always-zero row (ignored-but-invalid operands)
  const std::size_t num_in = prog_.input_layout.size();
  const std::size_t in_base = 0;
  const std::size_t regs_base = in_base + num_in * words;
  const std::size_t lane_base =
      regs_base + static_cast<std::size_t>(n) * 2 * m * words;
  const std::size_t out_base =
      lane_base + static_cast<std::size_t>(2) * m * words;
  const std::size_t zero_base = out_base + prog_.num_primary_outputs * words;
  // Zero only on (re)size: every read is guarded by a per-run valid flag (or
  // is the never-written zero row), so stale words from a previous run are
  // unreachable and the per-run memset would be pure overhead.
  if (arena_.size() != zero_base + words) arena_.assign(zero_base + words, 0);
  std::uint64_t* const arena = arena_.data();

  for (std::size_t a = 0; a < num_in; ++a) {
    const BitVec& src = inputs[prog_.input_layout[a]];
    for (std::size_t w = 0; w < words; ++w) {
      arena[in_base + a * words + w] = src.word(w);
    }
  }

  // Per-run scratch reset: plain memsets over member buffers allocated at
  // construction (see the constructor) — the hot path never allocates.
  std::vector<char>& reg_valid = reg_valid_;
  std::vector<char>& prev_valid = prev_valid_;
  std::vector<char>& cur_valid = cur_valid_;
  std::vector<char>& output_set = output_set_;
  std::fill(reg_valid.begin(), reg_valid.end(), 0);
  std::fill(output_set.begin(), output_set.end(), 0);

  std::size_t prev_base = lane_base;
  std::size_t cur_base = lane_base + static_cast<std::size_t>(m) * words;

  // Staged-switch oracle mode resolves multicast assignments dynamically per
  // instruction, so compute results cannot be delivered ahead of the route
  // stage — fall back to materializing lane-output rows (LBNN_NO_FUSE forces
  // the same fallback for debugging/differential runs).
  const bool fused = fuse_ && !oracle_;

  // Feedback addresses are dense (addr = wavefront * m + lane), so the
  // scalar path's hash map becomes two flat tables: row offset into
  // fb_arena_ (-1 = never written) and the absolute write completion time.
  // fb_time_ needs no reset — it is only read behind a non-negative offset,
  // which implies a write earlier this run.
  const std::size_t fb_addrs = static_cast<std::size_t>(prog_.num_wavefronts) * m;
  std::vector<std::ptrdiff_t>& fb_offset = fb_offset_;
  std::vector<std::uint64_t>& fb_time = fb_time_;
  std::fill(fb_offset.begin(), fb_offset.end(), std::ptrdiff_t{-1});
  fb_arena_.clear();

  // Output taps bucketed by wavefront (taps_at_, built at construction),
  // indexed O(1) in the terminal-LPV stage.
  const std::vector<std::vector<const OutputTap*>>& taps_at = taps_at_;

  for (std::uint32_t w = 0; w < prog_.num_wavefronts; ++w) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw SimCancelled("simulator run cancelled at wavefront " +
                         std::to_string(w));
    }
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      const LpvInstr& instr = prog_.instr[w][j];
      if (hook_ && !instr.empty()) hook_(w, j, instr);

      const std::vector<std::uint32_t> staged_src =
          oracle_ ? resolve_staged(instr) : std::vector<std::uint32_t>{};

      const std::size_t regs_j =
          regs_base + static_cast<std::size_t>(j) * 2 * m * words;
      char* const valid_j = reg_valid.data() + static_cast<std::size_t>(j) * 2 * m;

      // 1. Switch stage: deliver rows into snapshot registers. In fused mode
      // previous-LPV lane values already landed here during the previous
      // LPV's compute stage; only validity checks and counters remain, and
      // dead writes (a later route targets the same slot) skip their copy so
      // they cannot clobber a fused delivery that is the slot's last writer.
      for (std::size_t ri = 0; ri < instr.routes.size(); ++ri) {
        const RouteWrite& r = instr.routes[ri];
        std::uint64_t* const dst = arena + regs_j + r.slot * words;
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane: {
            if (j == 0) throw SimError("LPV 0 has no predecessor to route from");
            const std::uint32_t lane =
                staged_src.empty() ? r.src.index : staged_src[r.slot];
            if (lane >= m || !prev_valid[lane]) {
              throw SimError("route from an invalid previous-LPV lane");
            }
            if (!fused) {
              std::copy_n(arena + prev_base + lane * words, words, dst);
            }
            break;
          }
          case SrcSel::Kind::kInput:
            if (!fused || is_last_slot_writer(instr.routes, ri)) {
              std::copy_n(arena + in_base + r.src.index * words, words, dst);
            }
            ++counters_.input_reads;
            break;
          case SrcSel::Kind::kFeedback: {
            if (r.src.index >= fb_addrs || fb_offset[r.src.index] < 0) {
              throw SimError("feedback read before write (address " +
                             std::to_string(r.src.index) + ")");
            }
            if (static_cast<std::uint64_t>(w) + j <= fb_time[r.src.index]) {
              throw SimError("feedback read would outrun its write in hardware");
            }
            if (!fused || is_last_slot_writer(instr.routes, ri)) {
              std::copy_n(fb_arena_.data() + fb_offset[r.src.index], words, dst);
            }
            break;
          }
        }
        valid_j[r.slot] = 1;
        ++counters_.route_writes;
      }

      // 2. Compute stage: the bit-sliced LUT kernel, full batch width per op.
      // Fused mode writes each gate's result straight through the multicast
      // switch into the next LPV's consuming register rows (fanout = one
      // kernel run + row copies); the terminal LPV still materializes lane
      // rows for feedback writes and output taps.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      const bool deliver_fused = fused && j + 1 < n;
      for (const ComputeWrite& c : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(c.lane) * 2;
        if (!c.lut.ignores_a() && !valid_j[slot_a]) {
          throw SimError("LPE computes over an invalid A operand");
        }
        if (!c.lut.ignores_b() && !valid_j[slot_a + 1]) {
          throw SimError("LPE computes over an invalid B operand");
        }
        const std::uint64_t* const a =
            valid_j[slot_a] ? arena + regs_j + slot_a * words : arena + zero_base;
        const std::uint64_t* const b = valid_j[slot_a + 1]
                                           ? arena + regs_j + (slot_a + 1) * words
                                           : arena + zero_base;
        cur_valid[c.lane] = 1;
        ++counters_.lpe_computes;
        if (!deliver_fused) {
          kernels[c.lut.bits() & 0xF](a, b, arena + cur_base + c.lane * words,
                                      words);
          continue;
        }
        // Fused delivery: run the kernel once into the first consuming slot
        // (from the CSR decoded at construction), multicast the row to the
        // rest. A result no effective route consumes is dropped without
        // evaluating (the scalar oracle computes and drops it —
        // observationally identical).
        const std::size_t regs_next =
            regs_j + static_cast<std::size_t>(2) * m * words;
        const std::size_t cell =
            (static_cast<std::size_t>(w) * n + j) * m + c.lane;
        std::uint64_t* first_dst = nullptr;
        for (std::uint32_t k = fan_off_[cell]; k < fan_off_[cell + 1]; ++k) {
          std::uint64_t* const dst = arena + regs_next + fan_slot_[k] * words;
          if (first_dst == nullptr) {
            kernels[c.lut.bits() & 0xF](a, b, dst, words);
            first_dst = dst;
          } else {
            std::copy_n(first_dst, words, dst);
          }
        }
      }

      // 3. Terminal LPV: feedback writes and output taps.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) throw SimError("feedback write of an invalid lane");
          const std::uint32_t addr = w * m + lane;
          if (fb_offset[addr] < 0) {
            fb_offset[addr] = static_cast<std::ptrdiff_t>(fb_arena_.size());
            fb_arena_.resize(fb_arena_.size() + words);
          }
          fb_time[addr] = static_cast<std::uint64_t>(w) + n - 1;
          std::copy_n(arena + cur_base + lane * words, words,
                      fb_arena_.data() + fb_offset[addr]);
          ++counters_.feedback_words;
        }
        for (const OutputTap* tap : taps_at[w]) {
          if (!cur_valid[tap->lane]) throw SimError("output tap of an invalid lane");
          std::copy_n(arena + cur_base + tap->lane * words, words,
                      arena + out_base + tap->po_index * words);
          output_set[tap->po_index] = 1;
        }
      }
      std::swap(prev_base, cur_base);
      prev_valid.swap(cur_valid);
    }
  }

  std::vector<BitVec> outputs(prog_.num_primary_outputs);
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    if (!output_set[po]) {
      throw SimError("primary output " + std::to_string(po) + " never produced");
    }
    BitVec v(width, false);
    for (std::size_t w = 0; w < words; ++w) {
      // set_word masks the tail word: bits the ~ terms set past the batch
      // width never reach the caller.
      v.set_word(w, arena[out_base + po * words + w]);
    }
    outputs[po] = std::move(v);
  }
  return outputs;
}

}  // namespace lbnn
