#pragma once

#include <vector>

#include "core/compiler.hpp"
#include "lpu/simulator.hpp"

namespace lbnn {

/// Multi-LPU assembly (Sec. III: "Multiple LPUs can be assembled in parallel
/// or series configuration for large graphs to complete the required
/// computations ... at the extra area/power cost").
///
/// Parallel configuration: the primary outputs are split into `k` groups of
/// balanced cone size; each group's transitive fanin cone is extracted as an
/// independent netlist and compiled onto its own LPU. All LPUs consume the
/// same input buffer contents and run concurrently, so the assembly's
/// latency is the max over members and its initiation interval the max of
/// the members' wavefront counts.
struct ParallelCompileResult {
  /// One compiled program per LPU, plus which original PO indices it serves.
  struct Member {
    Program program;
    CompileReport report;
    std::vector<std::uint32_t> po_indices;
    /// Maps the member's PI positions to original PI indices.
    std::vector<std::uint32_t> pi_indices;
  };
  std::vector<Member> members;

  /// Slowest member's steady-state interval (clock cycles).
  std::uint64_t steady_state_interval_cycles() const;
  /// Slowest member's batch latency (clock cycles).
  std::uint64_t latency_cycles() const;
  /// Aggregate samples/s of the assembly (bounded by the slowest member).
  double samples_per_second() const;
};

/// Compile `nl` for `k` parallel LPUs of identical configuration.
/// Throws CompileError for k < 1 or k > number of outputs.
ParallelCompileResult compile_parallel(const Netlist& nl,
                                       const CompileOptions& options,
                                       std::uint32_t k);

/// Run every member on the shared inputs and reassemble the original output
/// order (the harness around k LpuSimulators).
std::vector<BitVec> run_parallel(const ParallelCompileResult& compiled,
                                 const std::vector<BitVec>& inputs);

/// Series configuration estimate: chaining `k` LPUs multiplies the usable
/// depth per circulation pass by `k`, removing feedback bubbles for networks
/// of depth <= k*n. Returns the compiled report for an equivalent single LPU
/// with k*n LPVs (what the series assembly behaves like architecturally).
CompileResult compile_series_equivalent(const Netlist& nl,
                                        const CompileOptions& options,
                                        std::uint32_t k);

}  // namespace lbnn
