#include "lpu/multi_lpu.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn {
namespace {

/// Extract the transitive fanin cone of the given outputs as a standalone
/// netlist. Returns the cone plus PI/PO index maps into the original.
struct Cone {
  Netlist netlist;
  std::vector<std::uint32_t> po_indices;
  std::vector<std::uint32_t> pi_indices;
};

Cone extract_cone(const Netlist& nl, const std::vector<std::uint32_t>& pos) {
  std::vector<bool> keep(nl.num_nodes(), false);
  for (const std::uint32_t po : pos) keep[nl.outputs()[po]] = true;
  for (NodeId id = static_cast<NodeId>(nl.num_nodes()); id-- > 0;) {
    if (!keep[id]) continue;
    if (nl.arity(id) >= 1) keep[nl.fanin0(id)] = true;
    if (nl.arity(id) == 2) keep[nl.fanin1(id)] = true;
  }
  Cone cone;
  cone.po_indices = pos;
  std::vector<NodeId> map(nl.num_nodes(), kInvalidNode);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    if (!keep[id]) continue;
    if (nl.op(id) == GateOp::kInput) {
      const auto pi = static_cast<std::uint32_t>(nl.input_index(id));
      map[id] = cone.netlist.add_input(nl.input_name(pi));
      cone.pi_indices.push_back(pi);
    } else {
      const NodeId a = nl.arity(id) >= 1 ? map[nl.fanin0(id)] : kInvalidNode;
      const NodeId b = nl.arity(id) == 2 ? map[nl.fanin1(id)] : kInvalidNode;
      map[id] = cone.netlist.add_gate(nl.op(id), a, b);
    }
  }
  for (const std::uint32_t po : pos) {
    cone.netlist.add_output(map[nl.outputs()[po]], nl.output_name(po));
  }
  return cone;
}

}  // namespace

std::uint64_t ParallelCompileResult::steady_state_interval_cycles() const {
  std::uint64_t worst = 0;
  for (const auto& m : members) {
    worst = std::max(worst, m.program.steady_state_interval_cycles());
  }
  return worst;
}

std::uint64_t ParallelCompileResult::latency_cycles() const {
  std::uint64_t worst = 0;
  for (const auto& m : members) {
    worst = std::max(worst, m.program.clock_cycles());
  }
  return worst;
}

double ParallelCompileResult::samples_per_second() const {
  const std::uint64_t interval = steady_state_interval_cycles();
  if (interval == 0 || members.empty()) return 0.0;
  const auto& cfg = members.front().program.cfg;
  return cfg.clock_mhz * 1e6 / static_cast<double>(interval) *
         cfg.effective_word_width();
}

ParallelCompileResult compile_parallel(const Netlist& nl,
                                       const CompileOptions& options,
                                       std::uint32_t k) {
  if (k < 1) throw CompileError("parallel assembly needs at least one LPU");
  if (k > nl.num_outputs()) {
    throw CompileError("more LPUs than primary outputs; nothing to split");
  }

  // Balance output cones across LPUs: sort POs by cone size (descending) and
  // assign each to the currently lightest group (LPT scheduling).
  std::vector<std::size_t> cone_size(nl.num_outputs());
  for (std::size_t po = 0; po < nl.num_outputs(); ++po) {
    cone_size[po] = extract_cone(nl, {static_cast<std::uint32_t>(po)}).netlist.num_gates();
  }
  std::vector<std::uint32_t> order(nl.num_outputs());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&cone_size](std::uint32_t a, std::uint32_t b) {
    return cone_size[a] > cone_size[b];
  });
  std::vector<std::vector<std::uint32_t>> groups(k);
  std::vector<std::size_t> load(k, 0);
  for (const std::uint32_t po : order) {
    const std::size_t g = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    groups[g].push_back(po);
    load[g] += cone_size[po];
  }

  ParallelCompileResult out;
  for (auto& group : groups) {
    if (group.empty()) continue;
    std::sort(group.begin(), group.end());  // stable output order per member
    Cone cone = extract_cone(nl, group);
    CompileResult cr = compile(cone.netlist, options);
    out.members.push_back({std::move(cr.program), cr.report,
                           std::move(cone.po_indices), std::move(cone.pi_indices)});
  }
  return out;
}

std::vector<BitVec> run_parallel(const ParallelCompileResult& compiled,
                                 const std::vector<BitVec>& inputs) {
  LBNN_CHECK(!compiled.members.empty(), "empty assembly");
  std::size_t num_pos = 0;
  for (const auto& m : compiled.members) {
    for (const std::uint32_t po : m.po_indices) {
      num_pos = std::max(num_pos, static_cast<std::size_t>(po) + 1);
    }
  }
  std::vector<BitVec> outputs(num_pos);
  for (const auto& m : compiled.members) {
    std::vector<BitVec> member_in;
    member_in.reserve(m.pi_indices.size());
    for (const std::uint32_t pi : m.pi_indices) member_in.push_back(inputs.at(pi));
    LpuSimulator sim(m.program);
    const auto member_out = sim.run(member_in);
    for (std::size_t i = 0; i < m.po_indices.size(); ++i) {
      outputs[m.po_indices[i]] = member_out[i];
    }
  }
  return outputs;
}

CompileResult compile_series_equivalent(const Netlist& nl,
                                        const CompileOptions& options,
                                        std::uint32_t k) {
  if (k < 1) throw CompileError("series assembly needs at least one LPU");
  CompileOptions chained = options;
  chained.lpu.n = options.lpu.n * k;
  return compile(nl, chained);
}

}  // namespace lbnn
