#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace lbnn {

/// One op of the compiled bit-sliced replay stream. Every piece of the
/// interpreter's control flow is data-independent (validity, feedback
/// read/write ordering, fanout, errors, counters — all functions of the
/// immutable program alone), so compile_sliced() lowers the program into a
/// flat op stream once and execution is a replay: kernel calls and row
/// copies, nothing else. Row indices are in row units; the executor scales
/// by the per-run word count. Row 0 is the always-zero row.
struct SlicedOp {
  enum Kind : std::uint8_t { kCompute, kCopy, kHook };
  std::uint32_t a = 0;    ///< kCompute: A row. kCopy: src row. kHook: lpv.
  std::uint32_t b = 0;    ///< kCompute: B row.
  std::uint32_t dst = 0;  ///< kCompute / kCopy: destination row.
  Kind kind = kCompute;
  std::uint8_t bits = 0;  ///< kCompute: truth table (kernel table index).
};

/// Exact counter values at a wavefront boundary (and at the compiled
/// error's throw point): a cancelled or failed run must report the same
/// partial counters the interpreter would have accumulated.
struct CounterPrefix {
  std::uint64_t input_reads = 0;
  std::uint64_t route_writes = 0;
  std::uint64_t lpe_computes = 0;
  std::uint64_t feedback_words = 0;
};

/// The Program lowered to its flat replay stream — the shared IR behind
/// every non-scalar executor backend: the sliced interpreter replays it
/// (LpuSimulator::run_compiled), the AOT backend's direct-threaded leg
/// pre-resolves its kernel pointers, and the AOT native codegen
/// (src/aot/codegen.cpp) lowers it to straight-line C++. One lowering, three
/// executors, identical observable semantics by construction.
///
/// Arena row layout (row 0 first so operand indices can resolve before the
/// feedback row count is known):
///   row 0                 always-zero (invalid-but-ignored operands)
///   [1 ..)                input data buffer rows
///   [reg0 ..)             snapshot registers, n * 2m rows (lpv major)
///   [out_row0 ..)         primary outputs
///   [fb0 ..)              feedback rows, one per written address, in first-
///                         write order (the address space is static)
/// Inter-LPV lane rows vanish entirely: a terminal-LPV compute delivers
/// straight into its feedback rows and output rows, everything else into the
/// next LPV's registers via the decoded multicast fanout.
struct SlicedProgram {
  std::vector<SlicedOp> ops;
  std::vector<std::uint32_t> wave_op_end;  ///< ops end per wavefront
  std::vector<CounterPrefix> counters_at;  ///< before wavefront w; [W] = final
  std::uint32_t num_rows = 0;        ///< arena rows (zero|in|regs|out|fb)
  std::uint32_t out_row0 = 0;        ///< first primary-output row
  std::uint32_t num_wavefronts = 0;  ///< the program's wavefront count
  std::uint32_t compiled_waves = 0;  ///< wavefronts the stream covers
  /// A program whose run would throw SimError does so at a fixed point; the
  /// stream is truncated there and the executor replays the throw (message
  /// and partial counters included) after the covered wavefronts.
  bool error = false;
  std::string error_msg;
  CounterPrefix error_counters;
};

/// Lower `prog` into its replay stream. The walk mirrors the scalar
/// interpreter statement for statement — where the interpreter would throw,
/// the stream is truncated and the executor replays the throw at the same
/// point (cancel checks for the covered wavefronts still come first, so a
/// cancel that lands earlier still wins, exactly as in the interpreter).
SlicedProgram compile_sliced(const Program& prog);

}  // namespace lbnn
