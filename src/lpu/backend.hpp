#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "core/program.hpp"

namespace lbnn {

/// Execution statistics of one batch (used by benches and reports).
struct SimCounters {
  std::uint64_t wavefronts = 0;
  std::uint64_t macro_cycles = 0;
  std::uint64_t clock_cycles = 0;
  std::uint64_t lpe_computes = 0;
  std::uint64_t route_writes = 0;
  std::uint64_t input_reads = 0;
  std::uint64_t feedback_words = 0;
  /// computes / (wavefronts * n * m)
  double lpe_utilization = 0.0;
};

/// Which executor implementation served a run. The first two are the
/// interpreter's kernels (LpuSimulator); the AOT pair is the second-
/// generation backend (src/aot/): native = dlopen'd straight-line code
/// emitted per program, threaded = the portable direct-threaded-dispatch
/// leg used wherever spawning a compiler is unavailable.
enum class BackendKind : std::uint8_t {
  kScalar = 0,
  kSliced = 1,
  kAotNative = 2,
  kAotThreaded = 3,
};

const char* to_string(BackendKind k);

/// The seam between Program and execution. One instance executes exactly one
/// immutable Program; instances carry per-run scratch (arenas), so they are
/// single-threaded — the engine keeps one executor per (worker, program).
///
/// Every implementation is bit-exact by contract against the scalar oracle:
/// identical output bits, counters, SimError messages, and SimCancelled
/// wavefront boundaries (tests/test_simd_diff.cpp and tests/test_aot.cpp are
/// the differential harnesses enforcing it). That contract is what lets the
/// serving engine promote a model from one backend to another between two
/// member runs with no observable effect beyond latency.
class ExecutorBackend {
 public:
  virtual ~ExecutorBackend() = default;

  /// Run one batch. `inputs` holds one BitVec per primary input; all widths
  /// must be equal (each bit lane is an independent sample). Returns one
  /// BitVec per primary output. `cancel`, when non-null, is polled between
  /// wavefronts: once it reads true the run throws SimCancelled instead of
  /// finishing. All run state is per-call, so a cancelled executor is
  /// immediately reusable.
  virtual std::vector<BitVec> run(const std::vector<BitVec>& inputs,
                                  const std::atomic<bool>* cancel = nullptr) = 0;

  /// Counters of the most recent run (partial counters after a cancel or
  /// error, exactly as the scalar interpreter would have accumulated them).
  virtual const SimCounters& counters() const = 0;

  /// Which implementation this is (stats / trace stamps).
  virtual BackendKind backend_kind() const = 0;
};

/// Shared batch validation, identical across backends: throws SimError on a
/// wrong input count, a zero-width batch, or ragged widths; returns the
/// batch width (each bit lane is one sample).
std::size_t validate_batch_inputs(const Program& prog,
                                  const std::vector<BitVec>& inputs);

}  // namespace lbnn
