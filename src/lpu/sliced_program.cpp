#include "lpu/sliced_program.hpp"

#include <algorithm>
#include <utility>

namespace lbnn {

namespace {

/// True when routes[i] is the last write to its register slot within the
/// instruction — only the last write is observable (the scalar interpreter
/// applies route writes in order, so earlier writes to the same slot are
/// dead). Fused switch delivery must honour exactly that.
bool is_last_slot_writer(const std::vector<RouteWrite>& routes, std::size_t i) {
  for (std::size_t k = i + 1; k < routes.size(); ++k) {
    if (routes[k].slot == routes[i].slot) return false;
  }
  return true;
}

}  // namespace

// -------------------------------------------------------------------------
// Lower the program into the flat op stream every non-scalar backend
// executes. The interpreter's entire control flow — register/lane validity,
// feedback read-after-write ordering, multicast fanout, dead-write elision,
// SimError conditions, counters — depends only on the immutable program,
// never on batch data. So it runs HERE, once, and execution degenerates to
// kernel calls and row copies. The walk mirrors the scalar interpreter
// statement for statement.
// -------------------------------------------------------------------------
SlicedProgram compile_sliced(const Program& prog) {
  prog.validate();
  SlicedProgram sp;
  const std::uint32_t n = prog.cfg.n;
  const std::uint32_t m = prog.cfg.m;
  const std::uint32_t W = prog.num_wavefronts;
  const std::uint32_t num_in = static_cast<std::uint32_t>(prog.input_layout.size());
  const std::uint32_t reg0 = 1 + num_in;
  sp.out_row0 = reg0 + n * 2 * m;
  const std::uint32_t fb0 =
      sp.out_row0 + static_cast<std::uint32_t>(prog.num_primary_outputs);

  // Fused-delivery fanout: for each (wavefront, lpv, lane) compute, which
  // register slots of the next LPV consume it. Routes whose slot a later
  // route overwrites, or whose source lane is out of range (the route stage
  // throws before the value could matter), are excluded. CSR over
  // (wavefront * n + producer_lpv) * m + lane.
  const std::size_t cells = static_cast<std::size_t>(W) * n * m;
  std::vector<std::uint32_t> fan_off(cells + 1, 0);
  for (std::uint32_t w = 0; w < W; ++w) {
    for (std::uint32_t j = 1; j < n; ++j) {
      const auto& routes = prog.instr[w][j].routes;
      for (std::size_t i = 0; i < routes.size(); ++i) {
        const RouteWrite& r = routes[i];
        if (r.src.kind != SrcSel::Kind::kPrevLane || r.src.index >= m) continue;
        if (!is_last_slot_writer(routes, i)) continue;
        const std::size_t cell =
            (static_cast<std::size_t>(w) * n + (j - 1)) * m + r.src.index;
        ++fan_off[cell + 1];
      }
    }
  }
  for (std::size_t c = 1; c < fan_off.size(); ++c) fan_off[c] += fan_off[c - 1];
  std::vector<std::uint32_t> fan_slot(fan_off.back());
  {
    std::vector<std::uint32_t> cursor(fan_off.begin(), fan_off.end() - 1);
    for (std::uint32_t w = 0; w < W; ++w) {
      for (std::uint32_t j = 1; j < n; ++j) {
        const auto& routes = prog.instr[w][j].routes;
        for (std::size_t i = 0; i < routes.size(); ++i) {
          const RouteWrite& r = routes[i];
          if (r.src.kind != SrcSel::Kind::kPrevLane || r.src.index >= m) continue;
          if (!is_last_slot_writer(routes, i)) continue;
          const std::size_t cell =
              (static_cast<std::size_t>(w) * n + (j - 1)) * m + r.src.index;
          fan_slot[cursor[cell]++] = r.slot;
        }
      }
    }
  }

  // Output taps bucketed by wavefront.
  std::vector<std::vector<const OutputTap*>> taps_at(W);
  for (const auto& tap : prog.output_taps) taps_at[tap.wavefront].push_back(&tap);

  const std::size_t fb_addrs = static_cast<std::size_t>(W) * m;
  std::vector<std::int64_t> fb_row(fb_addrs, -1);
  std::vector<std::uint64_t> fb_time(fb_addrs, 0);
  std::uint32_t fb_rows = 0;

  std::vector<char> reg_valid(static_cast<std::size_t>(n) * 2 * m, 0);
  std::vector<char> prev_valid(m, 0);
  std::vector<char> cur_valid(m, 0);
  std::vector<char> out_set(prog.num_primary_outputs, 0);
  // Producing compute per lane of the previous/current LPV: index into ops
  // of the kCompute op, or -1 when the lane was not computed. Terminal-stage
  // consumers (feedback, taps) append their destination rows to it.
  std::vector<std::int64_t> cur_op(m, -1);

  CounterPrefix c;
  sp.wave_op_end.assign(W, 0);
  sp.counters_at.assign(static_cast<std::size_t>(W) + 1, CounterPrefix{});
  sp.num_wavefronts = W;
  sp.compiled_waves = W;

  bool err = false;
  auto fail = [&](std::string msg) {
    sp.error = true;
    sp.error_msg = std::move(msg);
    sp.error_counters = c;
    err = true;
  };

  // Emit a compute: the kernel runs into the first destination row, the
  // multicast copies the row to the rest. Returns the op index of the
  // kCompute (or of a sentinel record when the result has no consumer yet —
  // a terminal-stage consumer may still attach one).
  auto emit_compute = [&](std::uint8_t bits, std::uint32_t a, std::uint32_t b)
      -> std::size_t {
    SlicedOp op;
    op.kind = SlicedOp::kCompute;
    op.bits = bits;
    op.a = a;
    op.b = b;
    op.dst = 0;  // patched by the first attach; 0 marks "no consumer yet"
    sp.ops.push_back(op);
    return sp.ops.size() - 1;
  };
  auto attach_dst = [&](std::size_t op_idx, std::uint32_t dst_row) {
    SlicedOp& op = sp.ops[op_idx];
    if (op.dst == 0) {
      op.dst = dst_row;  // row 0 is the zero row — never a real destination
      return;
    }
    SlicedOp copy;
    copy.kind = SlicedOp::kCopy;
    copy.a = op.dst;
    copy.dst = dst_row;
    sp.ops.push_back(copy);
  };

  for (std::uint32_t w = 0; w < W && !err; ++w) {
    sp.counters_at[w] = c;
    std::fill(prev_valid.begin(), prev_valid.end(), 0);
    for (std::uint32_t j = 0; j < n && !err; ++j) {
      const LpvInstr& instr = prog.instr[w][j];
      if (!instr.empty()) {
        SlicedOp hop;
        hop.kind = SlicedOp::kHook;
        hop.a = j;
        sp.ops.push_back(hop);
      }
      char* const valid_j =
          reg_valid.data() + static_cast<std::size_t>(j) * 2 * m;
      const std::uint32_t regs_j = reg0 + j * 2 * m;

      // 1. Switch stage. Previous-lane routes were already attached to their
      // producing compute (the fanout CSR); only input/feedback copies — for
      // the slot's last writer — become ops.
      for (std::size_t ri = 0; ri < instr.routes.size() && !err; ++ri) {
        const RouteWrite& r = instr.routes[ri];
        switch (r.src.kind) {
          case SrcSel::Kind::kPrevLane:
            if (j == 0) {
              fail("LPV 0 has no predecessor to route from");
            } else if (r.src.index >= m || !prev_valid[r.src.index]) {
              fail("route from an invalid previous-LPV lane");
            }
            break;
          case SrcSel::Kind::kInput:
            if (is_last_slot_writer(instr.routes, ri)) {
              SlicedOp copy;
              copy.kind = SlicedOp::kCopy;
              copy.a = 1 + r.src.index;
              copy.dst = regs_j + r.slot;
              sp.ops.push_back(copy);
            }
            ++c.input_reads;
            break;
          case SrcSel::Kind::kFeedback:
            if (r.src.index >= fb_addrs || fb_row[r.src.index] < 0) {
              fail("feedback read before write (address " +
                   std::to_string(r.src.index) + ")");
            } else if (static_cast<std::uint64_t>(w) + j <=
                       fb_time[r.src.index]) {
              fail("feedback read would outrun its write in hardware");
            } else if (is_last_slot_writer(instr.routes, ri)) {
              SlicedOp copy;
              copy.kind = SlicedOp::kCopy;
              copy.a = fb0 + static_cast<std::uint32_t>(fb_row[r.src.index]);
              copy.dst = regs_j + r.slot;
              sp.ops.push_back(copy);
            }
            break;
        }
        if (err) break;
        valid_j[r.slot] = 1;
        ++c.route_writes;
      }
      if (err) break;

      // 2. Compute stage.
      std::fill(cur_valid.begin(), cur_valid.end(), 0);
      std::fill(cur_op.begin(), cur_op.end(), std::int64_t{-1});
      for (const ComputeWrite& cw : instr.computes) {
        const std::size_t slot_a = static_cast<std::size_t>(cw.lane) * 2;
        if (!cw.lut.ignores_a() && !valid_j[slot_a]) {
          fail("LPE computes over an invalid A operand");
          break;
        }
        if (!cw.lut.ignores_b() && !valid_j[slot_a + 1]) {
          fail("LPE computes over an invalid B operand");
          break;
        }
        const std::uint32_t arow =
            valid_j[slot_a] ? regs_j + static_cast<std::uint32_t>(slot_a) : 0;
        const std::uint32_t brow =
            valid_j[slot_a + 1] ? regs_j + static_cast<std::uint32_t>(slot_a) + 1
                                : 0;
        cur_valid[cw.lane] = 1;
        ++c.lpe_computes;
        cur_op[cw.lane] =
            static_cast<std::int64_t>(emit_compute(cw.lut.bits() & 0xF, arow, brow));
        if (j + 1 < n) {
          const std::size_t cell =
              (static_cast<std::size_t>(w) * n + j) * m + cw.lane;
          const std::uint32_t regs_next = regs_j + 2 * m;
          for (std::uint32_t k = fan_off[cell]; k < fan_off[cell + 1]; ++k) {
            attach_dst(static_cast<std::size_t>(cur_op[cw.lane]),
                       regs_next + fan_slot[k]);
          }
        }
      }
      if (err) break;

      // 3. Terminal LPV: feedback writes and output taps attach their rows
      // to the producing computes. Delivery then happens during the compute
      // stage instead of after it — unobservable, the rows are disjoint from
      // everything this instruction reads.
      if (j == n - 1) {
        for (const Lane lane : instr.feedback_writes) {
          if (!cur_valid[lane]) {
            fail("feedback write of an invalid lane");
            break;
          }
          const std::uint32_t addr = w * m + lane;
          if (fb_row[addr] < 0) fb_row[addr] = fb_rows++;
          fb_time[addr] = static_cast<std::uint64_t>(w) + n - 1;
          attach_dst(static_cast<std::size_t>(cur_op[lane]),
                     fb0 + static_cast<std::uint32_t>(fb_row[addr]));
          ++c.feedback_words;
        }
        if (err) break;
        // Multiple taps of one primary output in the same wavefront: the
        // interpreter applies them in tap order, so only the last lands.
        for (std::size_t t = 0; t < taps_at[w].size() && !err; ++t) {
          const OutputTap* tap = taps_at[w][t];
          if (!cur_valid[tap->lane]) {
            fail("output tap of an invalid lane");
            break;
          }
          bool last_for_po = true;
          for (std::size_t t2 = t + 1; t2 < taps_at[w].size(); ++t2) {
            if (taps_at[w][t2]->po_index == tap->po_index) last_for_po = false;
          }
          if (last_for_po) {
            attach_dst(static_cast<std::size_t>(cur_op[tap->lane]),
                       sp.out_row0 + tap->po_index);
          }
          out_set[tap->po_index] = 1;
        }
        if (err) break;
      }
      prev_valid.swap(cur_valid);
    }
    sp.wave_op_end[w] = static_cast<std::uint32_t>(sp.ops.size());
    if (err) sp.compiled_waves = w + 1;
  }

  if (!err) {
    sp.counters_at[W] = c;
    for (std::size_t po = 0; po < out_set.size(); ++po) {
      if (!out_set[po]) {
        fail("primary output " + std::to_string(po) + " never produced");
        break;
      }
    }
  }
  // Cull computes that ended with no consumer (dst still 0): the scalar
  // oracle computes and drops the value — observationally identical, and the
  // lpe_computes counter above already counted them.
  std::size_t keep = 0;
  std::vector<std::uint32_t> remap(sp.ops.size());
  for (std::size_t i = 0; i < sp.ops.size(); ++i) {
    remap[i] = static_cast<std::uint32_t>(keep);
    if (sp.ops[i].kind == SlicedOp::kCompute && sp.ops[i].dst == 0) continue;
    sp.ops[keep++] = sp.ops[i];
  }
  sp.ops.resize(keep);
  for (std::uint32_t w = 0; w < W; ++w) {
    sp.wave_op_end[w] = sp.wave_op_end[w] < remap.size()
                            ? remap[sp.wave_op_end[w]]
                            : static_cast<std::uint32_t>(keep);
  }
  sp.num_rows = fb0 + fb_rows;
  return sp;
}

}  // namespace lbnn
