#include "lpu/kernels.hpp"

#include <array>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#define LBNN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace lbnn::kernels {

namespace {

/// Broadcast one truth-table bit to an all-ones/all-zeros 64-bit mask.
inline std::uint64_t lut_mask(std::uint8_t bits, int idx) {
  return ((bits >> idx) & 1) ? ~0ull : 0ull;
}

/// Portable bit-sliced gate kernel: one 64-bit word op evaluates 64 batch
/// samples. out[w] = LUT(a, b) lane-wise, as a sum of the four minterms
/// masked by the truth-table bits (bit i of `bits` is the value at
/// a = i & 1, b = i >> 1).
void lut_kernel_word(std::uint8_t bits, const std::uint64_t* a,
                     const std::uint64_t* b, std::uint64_t* out,
                     std::size_t words) {
  const std::uint64_t m0 = lut_mask(bits, 0);
  const std::uint64_t m1 = lut_mask(bits, 1);
  const std::uint64_t m2 = lut_mask(bits, 2);
  const std::uint64_t m3 = lut_mask(bits, 3);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t aw = a[w];
    const std::uint64_t bw = b[w];
    out[w] = (m0 & ~(aw | bw)) | (m1 & (aw & ~bw)) | (m2 & (~aw & bw)) |
             (m3 & (aw & bw));
  }
}

/// Truth-table-specialized portable kernel: BITS is a compile-time constant,
/// so the masked-minterm sum constant-folds to the minimal op chain for that
/// gate (XOR becomes two andnots and an or, AND a single and, ...).
template <std::uint8_t BITS>
void lut_kernel_word_t(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* out, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t aw = a[w];
    const std::uint64_t bw = b[w];
    std::uint64_t r = 0;
    if constexpr ((BITS >> 0) & 1) r |= ~(aw | bw);
    if constexpr ((BITS >> 1) & 1) r |= aw & ~bw;
    if constexpr ((BITS >> 2) & 1) r |= ~aw & bw;
    if constexpr ((BITS >> 3) & 1) r |= aw & bw;
    out[w] = r;
  }
}

template <std::size_t... I>
constexpr std::array<KernelFn, 16> make_word_table(std::index_sequence<I...>) {
  return {&lut_kernel_word_t<static_cast<std::uint8_t>(I)>...};
}
constexpr std::array<KernelFn, 16> kWordKernels =
    make_word_table(std::make_index_sequence<16>{});

#ifdef LBNN_SIMD_X86
/// Truth-table-specialized AVX2 kernel: 4 words (256 batch samples) per
/// iteration, minimal op chain per gate (constant-folded minterm sum), tail
/// words through the portable loop. Compiled with a target attribute so the
/// rest of the binary stays baseline-ISA; only ever called after
/// __builtin_cpu_supports("avx2") said yes.
template <std::uint8_t BITS>
__attribute__((target("avx2"))) void lut_kernel_avx2_t(const std::uint64_t* a,
                                                       const std::uint64_t* b,
                                                       std::uint64_t* out,
                                                       std::size_t words) {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    // andnot(x, y) = ~x & y; minterms: ~(a|b), a&~b, ~a&b, a&b.
    __m256i r = _mm256_setzero_si256();
    if constexpr ((BITS >> 0) & 1) {
      const __m256i ones = _mm256_set1_epi64x(-1);
      r = _mm256_or_si256(r,
                          _mm256_andnot_si256(_mm256_or_si256(av, bv), ones));
    }
    if constexpr ((BITS >> 1) & 1) {
      r = _mm256_or_si256(r, _mm256_andnot_si256(bv, av));
    }
    if constexpr ((BITS >> 2) & 1) {
      r = _mm256_or_si256(r, _mm256_andnot_si256(av, bv));
    }
    if constexpr ((BITS >> 3) & 1) {
      r = _mm256_or_si256(r, _mm256_and_si256(av, bv));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), r);
  }
  if (w < words) lut_kernel_word(BITS, a + w, b + w, out + w, words - w);
}

template <std::size_t... I>
constexpr std::array<KernelFn, 16> make_avx2_table(std::index_sequence<I...>) {
  return {&lut_kernel_avx2_t<static_cast<std::uint8_t>(I)>...};
}
constexpr std::array<KernelFn, 16> kAvx2Kernels =
    make_avx2_table(std::make_index_sequence<16>{});
#endif  // LBNN_SIMD_X86

}  // namespace

const KernelFn* word_table() { return kWordKernels.data(); }

const KernelFn* avx2_table() {
#ifdef LBNN_SIMD_X86
  return kAvx2Kernels.data();
#else
  return nullptr;
#endif
}

bool cpu_has_avx2() {
#ifdef LBNN_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace lbnn::kernels
