#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.hpp"
#include "core/program.hpp"

namespace lbnn {

/// Execution statistics of one batch (used by benches and reports).
struct SimCounters {
  std::uint64_t wavefronts = 0;
  std::uint64_t macro_cycles = 0;
  std::uint64_t clock_cycles = 0;
  std::uint64_t lpe_computes = 0;
  std::uint64_t route_writes = 0;
  std::uint64_t input_reads = 0;
  std::uint64_t feedback_words = 0;
  /// computes / (wavefronts * n * m)
  double lpe_utilization = 0.0;
};

/// Which gate-evaluation kernel a simulator instance executes with.
///
/// The three kernels are bit-exact by contract (tests/test_simd_diff.cpp is
/// the differential harness enforcing it); they differ only in how many batch
/// samples one gate evaluation touches and where the per-gate operands live:
///
///   kScalar  the original BitVec-at-a-time interpreter — one heap-backed
///            BitVec per register slot, eval_lut_into() per gate. Kept as the
///            bit-exactness oracle, the same baseline pattern as
///            member_stealing=false / hedging=false.
///   kWord64  bit-sliced: all datapath rows live in one flat scratch arena of
///            packed 64-bit words and each gate op evaluates 64 batch samples
///            per word with zero per-gate allocations. Portable fallback.
///   kAvx2    kWord64's loop vectorized 4 words (256 samples) at a time with
///            AVX2, selected by runtime CPU detection on x86.
enum class SimdKernel : std::uint8_t { kScalar, kWord64, kAvx2 };

const char* to_string(SimdKernel k);

/// Cycle-level simulator of the LPU of Sec. IV.
///
/// Models: per-LPE snapshot registers with hold semantics, the non-blocking
/// multicast switch between adjacent LPVs (functional routing; the
/// interconnect library separately proves each route config realizable), the
/// read-address shift register (a memLoc issued at macro cycle w reaches LPV
/// j at w + j), the input data buffer, and the output data buffer including
/// its feedback region for depth circulation.
///
/// The simulation is wave-by-wave, which is observationally equivalent to
/// the fully pipelined machine; all *timing-sensitive* interactions
/// (feedback read-after-write across passes) are checked against absolute
/// macro-cycle times and raise SimError when a program would have raced in
/// real hardware.
///
/// Execution kernels: by default (`simd` = true) runs bit-sliced — gate
/// evaluation operates on packed 64-bit words across the full batch width in
/// a flat scratch arena, AVX2 when the CPU has it (see SimdKernel). `simd` =
/// false keeps the original scalar BitVec interpreter, which survives as the
/// bit-exactness oracle for the differential tests. Environment overrides
/// (read at construction): LBNN_FORCE_SCALAR forces the scalar kernel
/// regardless of `simd`, LBNN_NO_AVX2 pins the bit-sliced path to the
/// portable word-at-a-time loop — CI builds both legs.
class LpuSimulator {
 public:
  explicit LpuSimulator(const Program& program, bool simd = true);

  /// Run one batch. `inputs` holds one BitVec per primary input; all widths
  /// must be equal (each bit lane is an independent sample; the paper's
  /// datapath uses 2m lanes). Returns one BitVec per primary output.
  ///
  /// `cancel`, when non-null, is polled between wavefronts: once it reads
  /// true the run throws SimCancelled instead of finishing. All run state is
  /// per-call, so a cancelled simulator is immediately reusable. The serving
  /// runtime's speculative hedging passes the member slot's cancel flag here
  /// so the losing duplicate of a hedged member stops burning cycles. Every
  /// kernel polls at the same wavefront boundary, so a cancelled run throws
  /// at the identical point scalar or bit-sliced.
  std::vector<BitVec> run(const std::vector<BitVec>& inputs,
                          const std::atomic<bool>* cancel = nullptr);

  const SimCounters& counters() const { return counters_; }

  /// The gate-evaluation kernel this instance resolved to at construction.
  SimdKernel kernel() const { return kernel_; }

  /// True when this CPU exposes AVX2 (always false off x86).
  static bool cpu_has_avx2();
  /// Kernel selection: scalar when `simd_requested` is false or
  /// LBNN_FORCE_SCALAR is set; otherwise AVX2 when the CPU has it and
  /// LBNN_NO_AVX2 is unset; otherwise the portable word kernel.
  static SimdKernel resolve_kernel(bool simd_requested);

  /// Hook called once per (wavefront, lpv) with a non-empty instruction;
  /// tests use it to push every route config through the staged switch
  /// network model.
  using InstrHook = std::function<void(std::uint32_t wavefront, std::uint32_t lpv,
                                       const LpvInstr& instr)>;
  void set_instr_hook(InstrHook hook) { hook_ = std::move(hook); }

  /// Staged-switch mode: when set, every inter-LPV multicast assignment
  /// (src_of_dest[slot] = previous-LPV lane or -1) is resolved through this
  /// oracle instead of the functional route table; the oracle returns the
  /// source lane actually delivered to each destination slot. Tests plug the
  /// Beneš+copy fabric in here, so a routing bug in the staged hardware
  /// model would surface as an output mismatch against the reference.
  using RouteOracle =
      std::function<std::vector<std::uint32_t>(const std::vector<std::int32_t>&)>;
  void set_route_oracle(RouteOracle oracle) { oracle_ = std::move(oracle); }

 private:
  std::vector<BitVec> run_scalar(const std::vector<BitVec>& inputs,
                                 const std::atomic<bool>* cancel,
                                 std::size_t width);
  std::vector<BitVec> run_sliced(const std::vector<BitVec>& inputs,
                                 const std::atomic<bool>* cancel,
                                 std::size_t width);
  std::vector<BitVec> run_compiled(const std::vector<BitVec>& inputs,
                                   const std::atomic<bool>* cancel,
                                   std::size_t width);
  /// Staged-switch resolution shared by both kernels (see set_route_oracle).
  std::vector<std::uint32_t> resolve_staged(const LpvInstr& instr) const;
  /// Builds the compiled op stream (see SlicedOp) at construction.
  void compile_sliced();

  const Program& prog_;
  SimCounters counters_;
  InstrHook hook_;
  RouteOracle oracle_;
  SimdKernel kernel_;
  /// Fused switch delivery in the bit-sliced path (compute results land
  /// directly in the next LPV's register rows). LBNN_NO_FUSE (read at
  /// construction) turns it off, materializing lane-output rows like the
  /// staged-oracle path does — a debug/differential knob.
  bool fuse_ = true;
  /// Flat scratch arena of the bit-sliced kernels: every datapath row
  /// (input buffer, snapshot registers, inter-LPV lane outputs, primary
  /// outputs, and one always-zero row) is `words_per_row` packed 64-bit
  /// words. Sized once per (program, width) and reused across runs — the
  /// hot loop never allocates.
  std::vector<std::uint64_t> arena_;
  /// Growable feedback region (rows appended on first write to an address);
  /// separate from arena_ so growth cannot invalidate hot-loop pointers.
  std::vector<std::uint64_t> fb_arena_;
  /// Fused-delivery fanout, decoded once at construction (the program is
  /// immutable): CSR over (wavefront * n + producer_lpv) * m + lane giving
  /// the next LPV's register slots that consume the lane's compute result —
  /// only effective routes (last write to their slot) are listed. Keeps the
  /// per-gate hot loop free of route-table scans.
  std::vector<std::uint32_t> fan_off_;
  std::vector<std::uint32_t> fan_slot_;
  /// Bit-sliced run scratch sized at construction (program-shaped, width-
  /// independent), reset cheaply per run instead of reallocated: validity
  /// flags, the dense feedback tables (offset/write-time per address), and
  /// output taps bucketed by wavefront.
  std::vector<char> reg_valid_;
  std::vector<char> prev_valid_;
  std::vector<char> cur_valid_;
  std::vector<char> output_set_;
  std::vector<std::ptrdiff_t> fb_offset_;
  std::vector<std::uint64_t> fb_time_;
  std::vector<std::vector<const OutputTap*>> taps_at_;

  /// One op of the compiled bit-sliced program. Every piece of the
  /// interpreter's control flow is data-independent (validity, feedback
  /// read/write ordering, fanout, errors, counters — all functions of the
  /// immutable program alone), so construction "compiles" the program into a
  /// flat op stream and the hot loop is a replay: kernel calls and row
  /// copies, nothing else. Row indices are in row units; the executor scales
  /// by the per-run word count. Row 0 is the always-zero row.
  struct SlicedOp {
    enum Kind : std::uint8_t { kCompute, kCopy, kHook };
    std::uint32_t a = 0;    ///< kCompute: A row. kCopy: src row. kHook: lpv.
    std::uint32_t b = 0;    ///< kCompute: B row.
    std::uint32_t dst = 0;  ///< kCompute / kCopy: destination row.
    Kind kind = kCompute;
    std::uint8_t bits = 0;  ///< kCompute: truth table (kernel table index).
  };
  /// Exact counter values at a wavefront boundary (and at the compiled
  /// error's throw point): a cancelled or failed run must report the same
  /// partial counters the interpreter would have accumulated.
  struct CounterPrefix {
    std::uint64_t input_reads = 0;
    std::uint64_t route_writes = 0;
    std::uint64_t lpe_computes = 0;
    std::uint64_t feedback_words = 0;
  };
  std::vector<SlicedOp> ops_;
  std::vector<std::uint32_t> wave_op_end_;  ///< ops_ end per wavefront
  std::vector<CounterPrefix> counters_at_;  ///< before wavefront w; [W] = final
  std::uint32_t num_rows_ = 0;              ///< arena rows (zero|in|regs|out|fb)
  std::uint32_t out_row0_ = 0;              ///< first primary-output row
  std::uint32_t compiled_waves_ = 0;        ///< wavefronts the stream covers
  /// A program whose run would throw SimError does so at a fixed point; the
  /// stream is truncated there and the executor replays the throw (message
  /// and partial counters included) after the covered wavefronts.
  bool compiled_error_ = false;
  std::string compiled_error_msg_;
  CounterPrefix compiled_error_counters_;
};

/// Bitwise evaluation of a 2-input LUT over packed words.
BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b);

/// Allocation-free form: evaluates into `out` word by word (no BitVec
/// temporaries — the scalar oracle path runs on this so oracle-vs-SIMD bench
/// deltas measure the algorithm, not the allocator). Widths of a, b and out
/// must match; out may alias a or b.
void eval_lut_into(TruthTable4 lut, const BitVec& a, const BitVec& b,
                   BitVec& out);

}  // namespace lbnn
