#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.hpp"
#include "core/program.hpp"
#include "lpu/backend.hpp"
#include "lpu/sliced_program.hpp"

namespace lbnn {

/// Which gate-evaluation kernel a simulator instance executes with.
///
/// The three kernels are bit-exact by contract (tests/test_simd_diff.cpp is
/// the differential harness enforcing it); they differ only in how many batch
/// samples one gate evaluation touches and where the per-gate operands live:
///
///   kScalar  the original BitVec-at-a-time interpreter — one heap-backed
///            BitVec per register slot, eval_lut_into() per gate. Kept as the
///            bit-exactness oracle, the same baseline pattern as
///            member_stealing=false / hedging=false.
///   kWord64  bit-sliced: all datapath rows live in one flat scratch arena of
///            packed 64-bit words and each gate op evaluates 64 batch samples
///            per word with zero per-gate allocations. Portable fallback.
///   kAvx2    kWord64's loop vectorized 4 words (256 samples) at a time with
///            AVX2, selected by runtime CPU detection on x86.
enum class SimdKernel : std::uint8_t { kScalar, kWord64, kAvx2 };

const char* to_string(SimdKernel k);

/// Cycle-level simulator of the LPU of Sec. IV — the interpreter backend
/// pair (scalar oracle / bit-sliced) behind the ExecutorBackend seam; the
/// AOT-compiled backends live in src/aot/.
///
/// Models: per-LPE snapshot registers with hold semantics, the non-blocking
/// multicast switch between adjacent LPVs (functional routing; the
/// interconnect library separately proves each route config realizable), the
/// read-address shift register (a memLoc issued at macro cycle w reaches LPV
/// j at w + j), the input data buffer, and the output data buffer including
/// its feedback region for depth circulation.
///
/// The simulation is wave-by-wave, which is observationally equivalent to
/// the fully pipelined machine; all *timing-sensitive* interactions
/// (feedback read-after-write across passes) are checked against absolute
/// macro-cycle times and raise SimError when a program would have raced in
/// real hardware.
///
/// Execution kernels: by default (`simd` = true) runs bit-sliced — gate
/// evaluation operates on packed 64-bit words across the full batch width in
/// a flat scratch arena, AVX2 when the CPU has it (see SimdKernel). `simd` =
/// false keeps the original scalar BitVec interpreter, which survives as the
/// bit-exactness oracle for the differential tests. Environment overrides
/// (read at construction): LBNN_FORCE_SCALAR forces the scalar kernel
/// regardless of `simd`, LBNN_NO_AVX2 pins the bit-sliced path to the
/// portable word-at-a-time loop — CI builds both legs.
class LpuSimulator : public ExecutorBackend {
 public:
  explicit LpuSimulator(const Program& program, bool simd = true);

  /// Run one batch. `inputs` holds one BitVec per primary input; all widths
  /// must be equal (each bit lane is an independent sample; the paper's
  /// datapath uses 2m lanes). Returns one BitVec per primary output.
  ///
  /// `cancel`, when non-null, is polled between wavefronts: once it reads
  /// true the run throws SimCancelled instead of finishing. All run state is
  /// per-call, so a cancelled simulator is immediately reusable. The serving
  /// runtime's speculative hedging passes the member slot's cancel flag here
  /// so the losing duplicate of a hedged member stops burning cycles. Every
  /// kernel polls at the same wavefront boundary, so a cancelled run throws
  /// at the identical point scalar or bit-sliced.
  std::vector<BitVec> run(const std::vector<BitVec>& inputs,
                          const std::atomic<bool>* cancel = nullptr) override;

  const SimCounters& counters() const override { return counters_; }

  BackendKind backend_kind() const override {
    return kernel_ == SimdKernel::kScalar ? BackendKind::kScalar
                                          : BackendKind::kSliced;
  }

  /// The gate-evaluation kernel this instance resolved to at construction.
  SimdKernel kernel() const { return kernel_; }

  /// The compiled replay stream (empty when scalar or LBNN_NO_FUSE) — the
  /// AOT backend's codegen input when an executor is already at hand.
  const SlicedProgram& sliced() const { return sliced_; }

  /// True when this CPU exposes AVX2 (always false off x86).
  static bool cpu_has_avx2();
  /// Kernel selection: scalar when `simd_requested` is false or
  /// LBNN_FORCE_SCALAR is set; otherwise AVX2 when the CPU has it and
  /// LBNN_NO_AVX2 is unset; otherwise the portable word kernel.
  static SimdKernel resolve_kernel(bool simd_requested);

  /// Hook called once per (wavefront, lpv) with a non-empty instruction;
  /// tests use it to push every route config through the staged switch
  /// network model.
  using InstrHook = std::function<void(std::uint32_t wavefront, std::uint32_t lpv,
                                       const LpvInstr& instr)>;
  void set_instr_hook(InstrHook hook) { hook_ = std::move(hook); }

  /// Staged-switch mode: when set, every inter-LPV multicast assignment
  /// (src_of_dest[slot] = previous-LPV lane or -1) is resolved through this
  /// oracle instead of the functional route table; the oracle returns the
  /// source lane actually delivered to each destination slot. Tests plug the
  /// Beneš+copy fabric in here, so a routing bug in the staged hardware
  /// model would surface as an output mismatch against the reference.
  using RouteOracle =
      std::function<std::vector<std::uint32_t>(const std::vector<std::int32_t>&)>;
  void set_route_oracle(RouteOracle oracle) { oracle_ = std::move(oracle); }

 private:
  std::vector<BitVec> run_scalar(const std::vector<BitVec>& inputs,
                                 const std::atomic<bool>* cancel,
                                 std::size_t width);
  std::vector<BitVec> run_sliced(const std::vector<BitVec>& inputs,
                                 const std::atomic<bool>* cancel,
                                 std::size_t width);
  std::vector<BitVec> run_compiled(const std::vector<BitVec>& inputs,
                                   const std::atomic<bool>* cancel,
                                   std::size_t width);
  /// Staged-switch resolution shared by both kernels (see set_route_oracle).
  std::vector<std::uint32_t> resolve_staged(const LpvInstr& instr) const;

  const Program& prog_;
  SimCounters counters_;
  InstrHook hook_;
  RouteOracle oracle_;
  SimdKernel kernel_;
  /// Fused switch delivery in the bit-sliced path (compute results land
  /// directly in the next LPV's register rows — the compiled replay stream).
  /// LBNN_NO_FUSE (read at construction) turns it off, materializing
  /// lane-output rows like the staged-oracle path does — a debug/differential
  /// knob.
  bool fuse_ = true;
  /// The program lowered to its flat replay stream (see sliced_program.hpp),
  /// built once at construction when the compiled path is live.
  SlicedProgram sliced_;
  /// Flat scratch arena of the bit-sliced kernels: every datapath row
  /// (input buffer, snapshot registers, inter-LPV lane outputs, primary
  /// outputs, and one always-zero row) is `words_per_row` packed 64-bit
  /// words. Sized once per (program, width) and reused across runs — the
  /// hot loop never allocates.
  std::vector<std::uint64_t> arena_;
  /// Growable feedback region (rows appended on first write to an address);
  /// separate from arena_ so growth cannot invalidate hot-loop pointers.
  std::vector<std::uint64_t> fb_arena_;
  /// Bit-sliced run scratch sized at construction (program-shaped, width-
  /// independent), reset cheaply per run instead of reallocated: validity
  /// flags, the dense feedback tables (offset/write-time per address), and
  /// output taps bucketed by wavefront.
  std::vector<char> reg_valid_;
  std::vector<char> prev_valid_;
  std::vector<char> cur_valid_;
  std::vector<char> output_set_;
  std::vector<std::ptrdiff_t> fb_offset_;
  std::vector<std::uint64_t> fb_time_;
  std::vector<std::vector<const OutputTap*>> taps_at_;
};

/// Bitwise evaluation of a 2-input LUT over packed words.
BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b);

/// Allocation-free form: evaluates into `out` word by word (no BitVec
/// temporaries — the scalar oracle path runs on this so oracle-vs-SIMD bench
/// deltas measure the algorithm, not the allocator). Widths of a, b and out
/// must match; out may alias a or b.
void eval_lut_into(TruthTable4 lut, const BitVec& a, const BitVec& b,
                   BitVec& out);

}  // namespace lbnn
