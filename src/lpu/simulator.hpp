#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.hpp"
#include "core/program.hpp"

namespace lbnn {

/// Execution statistics of one batch (used by benches and reports).
struct SimCounters {
  std::uint64_t wavefronts = 0;
  std::uint64_t macro_cycles = 0;
  std::uint64_t clock_cycles = 0;
  std::uint64_t lpe_computes = 0;
  std::uint64_t route_writes = 0;
  std::uint64_t input_reads = 0;
  std::uint64_t feedback_words = 0;
  /// computes / (wavefronts * n * m)
  double lpe_utilization = 0.0;
};

/// Cycle-level simulator of the LPU of Sec. IV.
///
/// Models: per-LPE snapshot registers with hold semantics, the non-blocking
/// multicast switch between adjacent LPVs (functional routing; the
/// interconnect library separately proves each route config realizable), the
/// read-address shift register (a memLoc issued at macro cycle w reaches LPV
/// j at w + j), the input data buffer, and the output data buffer including
/// its feedback region for depth circulation.
///
/// The simulation is wave-by-wave, which is observationally equivalent to
/// the fully pipelined machine; all *timing-sensitive* interactions
/// (feedback read-after-write across passes) are checked against absolute
/// macro-cycle times and raise SimError when a program would have raced in
/// real hardware.
class LpuSimulator {
 public:
  explicit LpuSimulator(const Program& program);

  /// Run one batch. `inputs` holds one BitVec per primary input; all widths
  /// must be equal (each bit lane is an independent sample; the paper's
  /// datapath uses 2m lanes). Returns one BitVec per primary output.
  ///
  /// `cancel`, when non-null, is polled between wavefronts: once it reads
  /// true the run throws SimCancelled instead of finishing. All run state is
  /// per-call, so a cancelled simulator is immediately reusable. The serving
  /// runtime's speculative hedging passes the member slot's cancel flag here
  /// so the losing duplicate of a hedged member stops burning cycles.
  std::vector<BitVec> run(const std::vector<BitVec>& inputs,
                          const std::atomic<bool>* cancel = nullptr);

  const SimCounters& counters() const { return counters_; }

  /// Hook called once per (wavefront, lpv) with a non-empty instruction;
  /// tests use it to push every route config through the staged switch
  /// network model.
  using InstrHook = std::function<void(std::uint32_t wavefront, std::uint32_t lpv,
                                       const LpvInstr& instr)>;
  void set_instr_hook(InstrHook hook) { hook_ = std::move(hook); }

  /// Staged-switch mode: when set, every inter-LPV multicast assignment
  /// (src_of_dest[slot] = previous-LPV lane or -1) is resolved through this
  /// oracle instead of the functional route table; the oracle returns the
  /// source lane actually delivered to each destination slot. Tests plug the
  /// Beneš+copy fabric in here, so a routing bug in the staged hardware
  /// model would surface as an output mismatch against the reference.
  using RouteOracle =
      std::function<std::vector<std::uint32_t>(const std::vector<std::int32_t>&)>;
  void set_route_oracle(RouteOracle oracle) { oracle_ = std::move(oracle); }

 private:
  const Program& prog_;
  SimCounters counters_;
  InstrHook hook_;
  RouteOracle oracle_;
};

/// Bitwise evaluation of a 2-input LUT over packed words.
BitVec eval_lut(TruthTable4 lut, const BitVec& a, const BitVec& b);

}  // namespace lbnn
