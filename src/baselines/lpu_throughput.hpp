#pragma once

#include <vector>

#include "core/compiler.hpp"
#include "nn/model_zoo.hpp"

namespace lbnn::baselines {

/// Result of compiling one layer's FFCL workload for the LPU.
struct LayerLpuResult {
  nn::LayerWorkload workload;
  CompileReport report;
  /// Steady-state macro cycles of one pass (= wavefronts; a new batch issues
  /// every num_wavefronts memLocs).
  std::uint64_t wavefronts = 0;
};

/// Compile every layer of `model` at the given synthesis scale.
std::vector<LayerLpuResult> compile_model_layers(const nn::ModelDesc& model,
                                                 const nn::SynthOptions& synth,
                                                 const CompileOptions& copts,
                                                 std::uint64_t seed);

/// Frames per second of the LPU on `model`, scaling the measured per-layer
/// schedules to the full layer dimensions (EXPERIMENTS.md "workload
/// scaling"): one pass evaluates neurons_modeled Boolean outputs for
/// word_width positions in num_wavefronts * tc clock cycles (steady state);
/// a frame needs out_neurons x positions neuron evaluations per layer.
double lpu_frames_per_second(const std::vector<LayerLpuResult>& layers,
                             const LpuConfig& cfg);

/// Clock cycles the LPU spends on one frame of `model` (same scaling).
double lpu_cycles_per_frame(const std::vector<LayerLpuResult>& layers,
                            const LpuConfig& cfg);

}  // namespace lbnn::baselines
