#include "baselines/lpu_throughput.hpp"

#include <cmath>

#include "common/check.hpp"

namespace lbnn::baselines {

std::vector<LayerLpuResult> compile_model_layers(const nn::ModelDesc& model,
                                                 const nn::SynthOptions& synth,
                                                 const CompileOptions& copts,
                                                 std::uint64_t seed) {
  std::vector<LayerLpuResult> out;
  out.reserve(model.layers.size());
  Rng rng(seed);
  for (const auto& desc : model.layers) {
    LayerLpuResult r;
    r.workload = nn::synthesize_layer_ffcl(desc, synth, rng);
    const CompileResult cr = compile(r.workload.ffcl, copts);
    r.report = cr.report;
    r.wavefronts = cr.program.num_wavefronts;
    out.push_back(std::move(r));
  }
  return out;
}

double lpu_cycles_per_frame(const std::vector<LayerLpuResult>& layers,
                            const LpuConfig& cfg) {
  const double lanes = cfg.effective_word_width();
  double cycles = 0.0;
  for (const auto& l : layers) {
    const double evals_needed = static_cast<double>(l.workload.desc.out_neurons) *
                                static_cast<double>(l.workload.desc.positions);
    const double evals_per_pass =
        static_cast<double>(l.workload.neurons_modeled) * lanes;
    LBNN_CHECK(evals_per_pass > 0, "degenerate layer workload");
    const double passes = std::ceil(evals_needed / evals_per_pass);
    cycles += passes * static_cast<double>(l.wavefronts) * cfg.tc();
  }
  return cycles;
}

double lpu_frames_per_second(const std::vector<LayerLpuResult>& layers,
                             const LpuConfig& cfg) {
  const double cycles = lpu_cycles_per_frame(layers, cfg);
  if (cycles <= 0) return 0.0;
  return cfg.clock_mhz * 1e6 / cycles;
}

}  // namespace lbnn::baselines
