#pragma once

#include <optional>
#include <string>

#include "nn/model_zoo.hpp"

namespace lbnn::baselines {

/// One accelerator's throughput on one model: an analytic estimate from a
/// structural model of the design, plus the published figure where the paper
/// (Tables II/III) or its citations report one. The tables in the paper
/// quote the *published best results* of each baseline ([12],[17],[8],[1]);
/// we reproduce those columns from the same sources and keep the analytic
/// models to show each design's structural bottleneck. Calibration constants
/// are documented inline and in EXPERIMENTS.md.
struct BaselineEstimate {
  std::string accelerator;
  double fps_model = 0.0;
  std::optional<double> fps_published;
};

/// Generic MAC-array accelerator ([14] with the improvements of [12]):
/// DSP-bound systolic compute plus DMA/control overheads.
BaselineEstimate mac_array(const nn::ModelDesc& model);

/// XNOR/FINN-style binarized accelerator ([16] + operation packing):
/// LUT-bound binary ops plus streaming overheads.
BaselineEstimate xnor_finn(const nn::ModelDesc& model);

/// NullaDSP [12]: FFCL gates evaluated on DSP48 ALUs.
BaselineEstimate nulla_dsp(const nn::ModelDesc& model);

/// LogicNets [17]: model-specific hard-wired netlist, initiation interval 1
/// at the reported clock.
BaselineEstimate logicnets(const nn::ModelDesc& model);

/// Google+CERN hls4ml flow [8] (JSC only in the paper).
BaselineEstimate hls4ml(const nn::ModelDesc& model);

/// FINN matrix-vector unit RTL implementation [1] (NID in the paper).
BaselineEstimate finn_mvu(const nn::ModelDesc& model);

/// Published LPU figures from Tables II/III (for reference columns).
std::optional<double> lpu_published(const std::string& model_name);

}  // namespace lbnn::baselines
