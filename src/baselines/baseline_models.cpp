#include "baselines/baseline_models.hpp"

#include <unordered_map>

namespace lbnn::baselines {
namespace {

/// Published figures from the paper's Tables II and III (FPS). These are the
/// "best results of each implementation reported in [12]" and the cited
/// LogicNets/hls4ml/FINN numbers the paper compares against.
const std::unordered_map<std::string, double>& published(const std::string& accel) {
  static const std::unordered_map<std::string, std::unordered_map<std::string, double>>
      kTable = {
          {"MAC",
           {{"VGG16", 0.12e3}, {"LENET5", 0.48e3}, {"MLPMixer-S/4", 4.17e3},
            {"MLPMixer-B/4", 0.88e3}}},
          {"NullaDSP", {{"VGG16", 0.33e3}, {"LENET5", 4.12e3}}},
          {"XNOR",
           {{"VGG16", 0.83e3}, {"LENET5", 3.31e3}, {"MLPMixer-S/4", 50.00e3},
            {"MLPMixer-B/4", 16.67e3}}},
          {"LogicNets",
           {{"NID", 95.24e6}, {"JSC-M", 2995.00e6}, {"JSC-L", 76.92e6}}},
          {"Google+CERN", {{"JSC-L", 76.92e6}}},
          {"FINN-MVU", {{"NID", 49.58e6}}},
          {"LPU",
           {{"VGG16", 103.99e3}, {"LENET5", 1035.60e3}, {"MLPMixer-S/4", 179.23e3},
            {"MLPMixer-B/4", 102.01e3}, {"NID", 8.39e6}, {"JSC-M", 0.69e6},
            {"JSC-L", 0.21e6}}},
      };
  static const std::unordered_map<std::string, double> kEmpty;
  const auto it = kTable.find(accel);
  return it == kTable.end() ? kEmpty : it->second;
}

std::optional<double> lookup(const std::string& accel, const std::string& model) {
  const auto& t = published(accel);
  const auto it = t.find(model);
  if (it == t.end()) return std::nullopt;
  return it->second;
}

}  // namespace

BaselineEstimate mac_array(const nn::ModelDesc& model) {
  // Systolic MAC array on a VU9P: 6840 DSPs at 250 MHz, 60% sustained
  // efficiency (calibrated to the VGG16 figure of [14]+[12]); per-layer DMA
  // and reconfiguration overhead dominates small networks.
  constexpr double kMacs = 6840.0;
  constexpr double kClock = 250e6;
  constexpr double kEff = 0.60;
  constexpr double kLayerOverhead = 0.40e-3;  // s
  const double compute = model.macs_per_frame() / (kMacs * kClock * kEff);
  const double overhead = kLayerOverhead * static_cast<double>(model.layers.size());
  return {"MAC", 1.0 / (compute + overhead), lookup("MAC", model.name)};
}

BaselineEstimate xnor_finn(const nn::ModelDesc& model) {
  // FINN-style folded binary datapath: LUT-packed XNOR-popcount at an
  // effective 0.09 binary-op per LUT per cycle over ~1.18M LUTs at 333 MHz
  // (calibrated to the improved FINN VGG16 figure), plus stream setup.
  constexpr double kLuts = 1.18e6;
  constexpr double kClock = 333e6;
  constexpr double kOpsPerLutCycle = 0.09;
  constexpr double kFrameOverhead = 0.25e-3;  // s
  const double binary_ops = 2.0 * model.macs_per_frame();
  const double compute = binary_ops / (kLuts * kClock * kOpsPerLutCycle);
  return {"XNOR", 1.0 / (compute + kFrameOverhead), lookup("XNOR", model.name)};
}

BaselineEstimate nulla_dsp(const nn::ModelDesc& model) {
  // NullaDSP [12]: FFCL gate evaluation on DSP48 48-bit ALUs: 6840 DSPs x 48
  // bit-ops per cycle at 500 MHz, 15% schedule efficiency (calibrated); the
  // FFCL gate count is ~5 gates per XNOR-popcount MAC equivalent.
  constexpr double kDsps = 6840.0;
  constexpr double kClock = 500e6;
  constexpr double kEff = 0.15;
  constexpr double kFrameOverhead = 0.24e-3;  // s
  const double gates = 5.0 * model.macs_per_frame();
  const double compute = gates / (kDsps * 48.0 * kClock * kEff);
  return {"NullaDSP", 1.0 / (compute + kFrameOverhead),
          lookup("NullaDSP", model.name)};
}

BaselineEstimate logicnets(const nn::ModelDesc& model) {
  // LogicNets [17]: the network is one hard-wired pipelined netlist with
  // initiation interval 1; throughput equals the achieved clock (the paper's
  // JSC-M figure includes batch-10 spatial replication).
  double clock = 300e6;
  double replication = 1.0;
  if (model.name == "JSC-M") replication = 10.0;
  if (model.name == "NID") clock = 95e6;
  if (model.name == "JSC-L") clock = 77e6;
  return {"LogicNets", clock * replication, lookup("LogicNets", model.name)};
}

BaselineEstimate hls4ml(const nn::ModelDesc& model) {
  // Google+CERN [8]: hls4ml fully-unrolled II=1 pipeline at the reported
  // clock for JSC-class models.
  return {"Google+CERN", 77e6, lookup("Google+CERN", model.name)};
}

BaselineEstimate finn_mvu(const nn::ModelDesc& model) {
  // FINN matrix-vector compute unit RTL [1] on NID-class workloads.
  return {"FINN-MVU", 50e6, lookup("FINN-MVU", model.name)};
}

std::optional<double> lpu_published(const std::string& model_name) {
  return lookup("LPU", model_name);
}

}  // namespace lbnn::baselines
