#include "nn/logic_export.hpp"

#include <deque>

#include "common/check.hpp"

namespace lbnn::nn {
namespace {

/// Ripple-carry addition of two little-endian binary numbers.
std::vector<NodeId> add_binary(Netlist& nl, const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b) {
  std::vector<NodeId> sum;
  NodeId carry = kInvalidNode;
  const std::size_t width = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId ai = i < a.size() ? a[i] : kInvalidNode;
    const NodeId bi = i < b.size() ? b[i] : kInvalidNode;
    if (ai != kInvalidNode && bi != kInvalidNode) {
      const NodeId axb = nl.add_gate(GateOp::kXor, ai, bi);
      if (carry == kInvalidNode) {
        // Half adder.
        sum.push_back(axb);
        carry = nl.add_gate(GateOp::kAnd, ai, bi);
      } else {
        // Full adder.
        sum.push_back(nl.add_gate(GateOp::kXor, axb, carry));
        const NodeId t1 = nl.add_gate(GateOp::kAnd, ai, bi);
        const NodeId t2 = nl.add_gate(GateOp::kAnd, carry, axb);
        carry = nl.add_gate(GateOp::kOr, t1, t2);
      }
    } else {
      const NodeId only = ai != kInvalidNode ? ai : bi;
      LBNN_CHECK(only != kInvalidNode, "ragged adder inputs");
      if (carry == kInvalidNode) {
        sum.push_back(only);
      } else {
        sum.push_back(nl.add_gate(GateOp::kXor, only, carry));
        carry = nl.add_gate(GateOp::kAnd, only, carry);
      }
    }
  }
  if (carry != kInvalidNode) sum.push_back(carry);
  return sum;
}

}  // namespace

std::vector<NodeId> build_popcount(Netlist& nl, const std::vector<NodeId>& bits) {
  LBNN_CHECK(!bits.empty(), "popcount of zero bits");
  // Balanced binary reduction of partial counts.
  std::deque<std::vector<NodeId>> queue;
  for (const NodeId b : bits) queue.push_back({b});
  while (queue.size() > 1) {
    const auto a = queue.front();
    queue.pop_front();
    const auto b = queue.front();
    queue.pop_front();
    queue.push_back(add_binary(nl, a, b));
  }
  return queue.front();
}

NodeId build_ge_const(Netlist& nl, const std::vector<NodeId>& value, std::uint32_t t) {
  // value >= t, scanning from the MSB:
  //   ge  |= eq & value_i        where t_i == 0
  //   eq  &= (t_i ? value_i : ~value_i)
  // Result ge | eq. Constant t specializes every step.
  if (t == 0) {
    // Always true; realize from a value bit: v | ~v.
    const NodeId v = value[0];
    return nl.add_gate(GateOp::kOr, v, nl.add_gate(GateOp::kNot, v));
  }
  if (t >= (1u << value.size())) {
    // Unreachable threshold: constant false.
    const NodeId v = value[0];
    return nl.add_gate(GateOp::kAnd, v, nl.add_gate(GateOp::kNot, v));
  }
  NodeId ge = kInvalidNode;
  NodeId eq = kInvalidNode;
  for (std::size_t i = value.size(); i-- > 0;) {
    const bool ti = (t >> i) & 1u;
    const NodeId vi = value[i];
    if (!ti) {
      const NodeId term = eq == kInvalidNode ? vi : nl.add_gate(GateOp::kAnd, eq, vi);
      ge = ge == kInvalidNode ? term : nl.add_gate(GateOp::kOr, ge, term);
    }
    const NodeId match = ti ? vi : nl.add_gate(GateOp::kNot, vi);
    eq = eq == kInvalidNode ? match : nl.add_gate(GateOp::kAnd, eq, match);
  }
  LBNN_CHECK(eq != kInvalidNode, "empty comparator");
  return ge == kInvalidNode ? eq : nl.add_gate(GateOp::kOr, ge, eq);
}

NodeId build_neuron(Netlist& nl, const std::vector<NodeId>& inputs,
                    const std::vector<bool>& weight_bits, std::int32_t threshold) {
  LBNN_CHECK(inputs.size() == weight_bits.size(), "weight/input size mismatch");
  LBNN_CHECK(!inputs.empty(), "neuron with no inputs");
  // XNOR with a constant weight bit: +1 passes the activation, -1 inverts.
  std::vector<NodeId> xnors;
  xnors.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    xnors.push_back(weight_bits[i] ? nl.add_gate(GateOp::kBuf, inputs[i])
                                   : nl.add_gate(GateOp::kNot, inputs[i]));
  }
  const auto count = build_popcount(nl, xnors);
  if (threshold <= 0) {
    const NodeId v = inputs[0];
    return nl.add_gate(GateOp::kOr, v, nl.add_gate(GateOp::kNot, v));
  }
  return build_ge_const(nl, count, static_cast<std::uint32_t>(threshold));
}

Netlist layer_to_netlist(const BnnDense& layer) {
  Netlist nl;
  std::vector<NodeId> inputs;
  inputs.reserve(layer.in_features);
  for (std::size_t i = 0; i < layer.in_features; ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < layer.out_features; ++j) {
    const NodeId y =
        build_neuron(nl, inputs, layer.weight_bits[j], layer.thresholds[j]);
    nl.add_output(y, "y" + std::to_string(j));
  }
  return nl;
}

Netlist model_to_netlist(const BnnModel& model) {
  LBNN_CHECK(!model.layers.empty(), "empty model");
  Netlist nl;
  std::vector<NodeId> cur;
  for (std::size_t i = 0; i < model.layers.front().in_features; ++i) {
    cur.push_back(nl.add_input("x" + std::to_string(i)));
  }
  for (const BnnDense& layer : model.layers) {
    LBNN_CHECK(cur.size() == layer.in_features, "layer size mismatch");
    std::vector<NodeId> next;
    next.reserve(layer.out_features);
    for (std::size_t j = 0; j < layer.out_features; ++j) {
      next.push_back(
          build_neuron(nl, cur, layer.weight_bits[j], layer.thresholds[j]));
    }
    cur = std::move(next);
  }
  for (std::size_t j = 0; j < cur.size(); ++j) {
    nl.add_output(cur[j], "y" + std::to_string(j));
  }
  return nl;
}

}  // namespace lbnn::nn
