#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace lbnn::nn {

/// A labeled binary-feature dataset (the substitute for the paper's
/// MNIST/CIFAR/UNSW-NB15 pipelines; evaluation quantities are throughput and
/// logic structure, not accuracy, so synthetic class structure suffices).
struct Dataset {
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::vector<std::vector<bool>> samples;
  std::vector<std::size_t> labels;

  std::size_t size() const { return samples.size(); }
};

/// Binary blobs: each class has a random prototype bit-pattern; samples are
/// prototypes with `noise` fraction of bits flipped. Linearly separable-ish,
/// good for demonstrating BNN training end to end.
Dataset make_blobs(std::size_t features, std::size_t classes,
                   std::size_t samples_per_class, double noise, Rng& rng);

/// Parity of a hidden subset of bits — the classic hard-for-linear dataset;
/// used to exercise multi-layer training paths.
Dataset make_subset_parity(std::size_t features, std::size_t subset,
                           std::size_t samples, Rng& rng);

}  // namespace lbnn::nn
