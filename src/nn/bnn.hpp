#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace lbnn::nn {

/// A binarized dense layer (the NullaNet/XNOR-net compute model):
///   y_j = [ popcount_i( x_i XNOR w_ji ) >= T_j ]
/// with activations and weights in {0,1} standing for {-1,+1}. This integer
/// form is the reference semantics the exported combinational logic must
/// reproduce bit-exactly (tested).
struct BnnDense {
  std::size_t in_features = 0;
  std::size_t out_features = 0;
  /// weight_bits[j][i]: true = +1, false = -1.
  std::vector<std::vector<bool>> weight_bits;
  /// Popcount thresholds T_j (0..in_features+1).
  std::vector<std::int32_t> thresholds;

  static BnnDense random(std::size_t in, std::size_t out, Rng& rng);

  /// Forward one binary sample.
  std::vector<bool> forward(const std::vector<bool>& x) const;

  /// Raw popcounts (pre-threshold), used by training and threshold fitting.
  std::vector<std::int32_t> popcounts(const std::vector<bool>& x) const;
};

/// A feed-forward stack of binarized dense layers.
struct BnnModel {
  std::vector<BnnDense> layers;

  static BnnModel random(const std::vector<std::size_t>& sizes, Rng& rng);

  std::vector<bool> forward(const std::vector<bool>& x) const;

  /// argmax over the last layer's popcounts (class prediction; the final
  /// layer's thresholds are ignored for classification).
  std::size_t predict(const std::vector<bool>& x) const;
};

}  // namespace lbnn::nn
