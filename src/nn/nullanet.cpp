#include "nn/nullanet.hpp"

#include "common/check.hpp"

namespace lbnn::nn {
namespace {

std::vector<bool> pattern_of(std::uint32_t minterm, std::uint32_t k) {
  std::vector<bool> x(k);
  for (std::uint32_t i = 0; i < k; ++i) x[i] = (minterm >> i) & 1u;
  return x;
}

std::uint32_t minterm_of(const std::vector<bool>& x) {
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i]) m |= 1u << i;
  }
  return m;
}

}  // namespace

TruthTable neuron_truth_table(const BnnDense& layer, std::size_t j) {
  LBNN_CHECK(layer.in_features <= 20, "exact table limited to 20 inputs");
  const std::uint32_t k = static_cast<std::uint32_t>(layer.in_features);
  TruthTable t;
  t.num_vars = k;
  t.on.assign(1ull << k, false);
  t.care.assign(1ull << k, true);
  for (std::uint32_t m = 0; m < (1u << k); ++m) {
    t.on[m] = layer.forward(pattern_of(m, k))[j];
  }
  return t;
}

TruthTable observed_truth_table(const BnnDense& layer, std::size_t j,
                                const std::vector<std::vector<bool>>& observed) {
  LBNN_CHECK(layer.in_features <= 20, "table limited to 20 inputs");
  const std::uint32_t k = static_cast<std::uint32_t>(layer.in_features);
  TruthTable t;
  t.num_vars = k;
  t.on.assign(1ull << k, false);
  t.care.assign(1ull << k, false);
  for (const auto& x : observed) {
    LBNN_CHECK(x.size() == layer.in_features, "observed pattern size mismatch");
    const std::uint32_t m = minterm_of(x);
    t.care[m] = true;
    t.on[m] = layer.forward(x)[j];
  }
  return t;
}

std::vector<Implicant> minimize_table(const TruthTable& table) {
  std::vector<std::uint32_t> on;
  std::vector<std::uint32_t> dc;
  for (std::uint32_t m = 0; m < table.size(); ++m) {
    if (!table.care[m]) {
      dc.push_back(m);
    } else if (table.on[m]) {
      on.push_back(m);
    }
  }
  return minimize_qm(table.num_vars, on, dc);
}

NodeId build_cover(Netlist& nl, const std::vector<NodeId>& inputs,
                   const std::vector<Implicant>& cover) {
  LBNN_CHECK(!inputs.empty(), "cover over no inputs");
  const auto const_node = [&nl, &inputs](bool v) {
    const NodeId x = inputs[0];
    const NodeId nx = nl.add_gate(GateOp::kNot, x);
    return nl.add_gate(v ? GateOp::kOr : GateOp::kAnd, x, nx);
  };
  if (cover.empty()) return const_node(false);

  std::vector<NodeId> products;
  for (const Implicant& imp : cover) {
    std::vector<NodeId> literals;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if ((imp.mask >> i) & 1u) continue;  // free variable
      const bool positive = (imp.value >> i) & 1u;
      literals.push_back(positive ? inputs[i] : nl.add_gate(GateOp::kNot, inputs[i]));
    }
    if (literals.empty()) return const_node(true);  // tautology implicant
    // Balanced AND tree.
    while (literals.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < literals.size(); i += 2) {
        next.push_back(nl.add_gate(GateOp::kAnd, literals[i], literals[i + 1]));
      }
      if (literals.size() % 2 == 1) next.push_back(literals.back());
      literals = std::move(next);
    }
    products.push_back(literals[0]);
  }
  while (products.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(nl.add_gate(GateOp::kOr, products[i], products[i + 1]));
    }
    if (products.size() % 2 == 1) next.push_back(products.back());
    products = std::move(next);
  }
  return products[0];
}

Netlist synthesize_sop(const TruthTable& table) {
  Netlist nl;
  std::vector<NodeId> inputs;
  for (std::uint32_t i = 0; i < table.num_vars; ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  nl.add_output(build_cover(nl, inputs, minimize_table(table)), "y0");
  return nl;
}

Netlist nullanet_layer(const BnnDense& layer) {
  LBNN_CHECK(layer.in_features <= 16, "nullanet_layer limited to 16 inputs");
  Netlist nl;
  std::vector<NodeId> inputs;
  for (std::size_t i = 0; i < layer.in_features; ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < layer.out_features; ++j) {
    const auto cover = minimize_table(neuron_truth_table(layer, j));
    nl.add_output(build_cover(nl, inputs, cover), "y" + std::to_string(j));
  }
  return nl;
}

}  // namespace lbnn::nn
