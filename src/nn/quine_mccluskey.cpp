#include "nn/quine_mccluskey.hpp"

#include <algorithm>
#include "common/bits.hpp"
#include <set>
#include <unordered_set>

#include "common/check.hpp"

namespace lbnn::nn {
namespace {

struct ImplicantKey {
  std::uint64_t operator()(const Implicant& i) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(i.mask) << 32) | i.value);
  }
};

}  // namespace

std::vector<Implicant> minimize_qm(std::uint32_t num_vars,
                                   const std::vector<std::uint32_t>& on,
                                   const std::vector<std::uint32_t>& dc) {
  LBNN_CHECK(num_vars <= 24, "QM limited to 24 variables");
  if (on.empty()) return {};

  // Current generation of implicants (deduplicated).
  std::unordered_set<Implicant, ImplicantKey> current;
  for (const std::uint32_t m : on) current.insert({m, 0});
  for (const std::uint32_t m : dc) current.insert({m, 0});

  std::vector<Implicant> primes;
  while (!current.empty()) {
    // Group by (mask, popcount of value) so only single-bit-apart pairs in
    // the same mask class combine.
    std::vector<Implicant> terms(current.begin(), current.end());
    std::sort(terms.begin(), terms.end(), [](const Implicant& a, const Implicant& b) {
      if (a.mask != b.mask) return a.mask < b.mask;
      const int pa = popcount32(a.value);
      const int pb = popcount32(b.value);
      if (pa != pb) return pa < pb;
      return a.value < b.value;
    });
    std::vector<bool> combined(terms.size(), false);
    std::unordered_set<Implicant, ImplicantKey> next;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      for (std::size_t j = i + 1; j < terms.size(); ++j) {
        if (terms[j].mask != terms[i].mask) break;  // sorted by mask
        const std::uint32_t diff = terms[i].value ^ terms[j].value;
        if (popcount32(diff) != 1) continue;
        next.insert({terms[i].value & ~diff, terms[i].mask | diff});
        combined[i] = true;
        combined[j] = true;
      }
    }
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (!combined[i]) primes.push_back(terms[i]);
    }
    current = std::move(next);
  }

  // Cover the on-set: essential primes, then greedy by coverage count.
  std::vector<std::uint32_t> remaining(on);
  std::sort(remaining.begin(), remaining.end());
  remaining.erase(std::unique(remaining.begin(), remaining.end()), remaining.end());

  std::vector<Implicant> cover;
  std::vector<bool> used(primes.size(), false);

  // Essential primes: a minterm covered by exactly one prime.
  for (const std::uint32_t m : remaining) {
    int only = -1;
    int count = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (primes[p].covers(m)) {
        ++count;
        only = static_cast<int>(p);
        if (count > 1) break;
      }
    }
    LBNN_CHECK(count >= 1, "prime generation missed a minterm");
    if (count == 1 && !used[static_cast<std::size_t>(only)]) {
      used[static_cast<std::size_t>(only)] = true;
      cover.push_back(primes[static_cast<std::size_t>(only)]);
    }
  }
  const auto is_covered = [&cover](std::uint32_t m) {
    return std::any_of(cover.begin(), cover.end(),
                       [m](const Implicant& i) { return i.covers(m); });
  };
  remaining.erase(std::remove_if(remaining.begin(), remaining.end(), is_covered),
                  remaining.end());

  // Greedy: repeatedly take the prime covering the most remaining minterms.
  while (!remaining.empty()) {
    std::size_t best = primes.size();
    std::size_t best_count = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (used[p]) continue;
      std::size_t c = 0;
      for (const std::uint32_t m : remaining) {
        if (primes[p].covers(m)) ++c;
      }
      if (c > best_count) {
        best_count = c;
        best = p;
      }
    }
    LBNN_CHECK(best < primes.size(), "greedy cover stalled");
    used[best] = true;
    cover.push_back(primes[best]);
    const Implicant chosen = primes[best];
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&chosen](std::uint32_t m) { return chosen.covers(m); }),
                    remaining.end());
  }
  return cover;
}

bool cover_eval(const std::vector<Implicant>& cover, std::uint32_t minterm) {
  return std::any_of(cover.begin(), cover.end(),
                     [minterm](const Implicant& i) { return i.covers(minterm); });
}

}  // namespace lbnn::nn
