#include "nn/dataset.hpp"

#include "common/check.hpp"

namespace lbnn::nn {

Dataset make_blobs(std::size_t features, std::size_t classes,
                   std::size_t samples_per_class, double noise, Rng& rng) {
  LBNN_CHECK(classes >= 2, "need at least two classes");
  Dataset ds;
  ds.num_features = features;
  ds.num_classes = classes;
  std::vector<std::vector<bool>> prototypes(classes, std::vector<bool>(features));
  for (auto& p : prototypes) {
    for (std::size_t i = 0; i < features; ++i) p[i] = rng.next_bool();
  }
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s) {
      std::vector<bool> x = prototypes[c];
      for (std::size_t i = 0; i < features; ++i) {
        if (rng.next_double() < noise) x[i] = !x[i];
      }
      ds.samples.push_back(std::move(x));
      ds.labels.push_back(c);
    }
  }
  return ds;
}

Dataset make_subset_parity(std::size_t features, std::size_t subset,
                           std::size_t samples, Rng& rng) {
  LBNN_CHECK(subset <= features, "subset larger than feature count");
  Dataset ds;
  ds.num_features = features;
  ds.num_classes = 2;
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<bool> x(features);
    bool parity = false;
    for (std::size_t i = 0; i < features; ++i) {
      x[i] = rng.next_bool();
      if (i < subset && x[i]) parity = !parity;
    }
    ds.samples.push_back(std::move(x));
    ds.labels.push_back(parity ? 1 : 0);
  }
  return ds;
}

}  // namespace lbnn::nn
