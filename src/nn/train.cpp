#include "nn/train.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lbnn::nn {
namespace {

/// Float-latent twin of BnnModel used during training only.
struct LatentLayer {
  std::size_t in = 0, out = 0;
  std::vector<std::vector<double>> w;  // [out][in]
  std::vector<double> bias;
};

double sign_pm1(bool b) { return b ? 1.0 : -1.0; }

}  // namespace

TrainResult train_bnn(const Dataset& ds, const std::vector<std::size_t>& sizes,
                      const TrainOptions& opt) {
  LBNN_CHECK(sizes.front() == ds.num_features, "input size mismatch");
  LBNN_CHECK(sizes.back() == ds.num_classes, "output size mismatch");
  Rng rng(opt.seed);

  std::vector<LatentLayer> latent;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    LatentLayer lay;
    lay.in = sizes[l];
    lay.out = sizes[l + 1];
    lay.w.assign(lay.out, std::vector<double>(lay.in));
    lay.bias.assign(lay.out, 0.0);
    const double scale = 1.0 / std::sqrt(static_cast<double>(lay.in));
    for (auto& row : lay.w) {
      for (auto& v : row) v = (rng.next_double() * 2.0 - 1.0) * scale;
    }
    latent.push_back(std::move(lay));
  }

  const std::size_t n_layers = latent.size();
  std::vector<std::vector<double>> act(n_layers + 1);   // +-1 activations
  std::vector<std::vector<double>> pre(n_layers);       // pre-activations
  std::vector<std::vector<double>> grad(n_layers + 1);  // dL/d(activation)

  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    // Fisher-Yates shuffle for SGD.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (const std::size_t s : order) {
      // Forward with binarized weights and sign activations.
      act[0].assign(ds.num_features, 0.0);
      for (std::size_t i = 0; i < ds.num_features; ++i) {
        act[0][i] = sign_pm1(ds.samples[s][i]);
      }
      for (std::size_t l = 0; l < n_layers; ++l) {
        const LatentLayer& lay = latent[l];
        pre[l].assign(lay.out, 0.0);
        act[l + 1].assign(lay.out, 0.0);
        for (std::size_t j = 0; j < lay.out; ++j) {
          double z = lay.bias[j];
          for (std::size_t i = 0; i < lay.in; ++i) {
            z += (lay.w[j][i] >= 0 ? 1.0 : -1.0) * act[l][i];
          }
          pre[l][j] = z;
          act[l + 1][j] = z >= 0 ? 1.0 : -1.0;
        }
      }
      // Loss: squared error against +-1 one-hot targets on the last layer's
      // *pre-activations* scaled into [-1, 1] via tanh surrogate.
      grad[n_layers].assign(latent.back().out, 0.0);
      for (std::size_t j = 0; j < latent.back().out; ++j) {
        const double target = (ds.labels[s] == j) ? 1.0 : -1.0;
        const double y = std::tanh(pre[n_layers - 1][j]);
        grad[n_layers][j] = (y - target) * (1.0 - y * y);
      }
      // Backward with the straight-through estimator: d(sign)/dz = 1{|z|<=1}
      // for hidden layers (the output layer gradient already includes tanh').
      for (std::size_t l = n_layers; l-- > 0;) {
        const LatentLayer& lay = latent[l];
        std::vector<double> gz(lay.out);
        for (std::size_t j = 0; j < lay.out; ++j) {
          double g = grad[l + 1][j];
          if (l + 1 < n_layers) {
            g *= (std::abs(pre[l][j]) <= 1.0) ? 1.0 : 0.0;
          }
          gz[j] = g;
        }
        grad[l].assign(lay.in, 0.0);
        for (std::size_t j = 0; j < lay.out; ++j) {
          const double g = gz[j];
          if (g == 0.0) continue;
          for (std::size_t i = 0; i < lay.in; ++i) {
            // STE through the binarized weight as well.
            grad[l][i] += g * (latent[l].w[j][i] >= 0 ? 1.0 : -1.0);
          }
        }
        for (std::size_t j = 0; j < lay.out; ++j) {
          const double g = gz[j];
          if (g == 0.0) continue;
          latent[l].bias[j] -= opt.learning_rate * g;
          for (std::size_t i = 0; i < lay.in; ++i) {
            double& wv = latent[l].w[j][i];
            wv -= opt.learning_rate * g * act[l][i];
            wv = std::clamp(wv, -1.0, 1.0);  // latent weight clipping
          }
        }
      }
    }
  }

  // Extract the binarized model: w >= 0 -> +1; bias folds into the popcount
  // threshold: sum_i w_i x_i + bias >= 0  <=>  popcount >= (in - bias) / 2.
  TrainResult res;
  for (const LatentLayer& lay : latent) {
    BnnDense d;
    d.in_features = lay.in;
    d.out_features = lay.out;
    d.weight_bits.assign(lay.out, std::vector<bool>(lay.in));
    d.thresholds.assign(lay.out, 0);
    for (std::size_t j = 0; j < lay.out; ++j) {
      for (std::size_t i = 0; i < lay.in; ++i) {
        d.weight_bits[j][i] = lay.w[j][i] >= 0;
      }
      const double t = (static_cast<double>(lay.in) - lay.bias[j]) / 2.0;
      d.thresholds[j] = static_cast<std::int32_t>(std::lround(std::ceil(t)));
      d.thresholds[j] = std::clamp<std::int32_t>(
          d.thresholds[j], 0, static_cast<std::int32_t>(lay.in) + 1);
    }
    res.model.layers.push_back(std::move(d));
  }
  res.train_accuracy = accuracy(res.model, ds);
  return res;
}

double accuracy(const BnnModel& model, const Dataset& ds) {
  if (ds.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    if (model.predict(ds.samples[s]) == ds.labels[s]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace lbnn::nn
