#pragma once

#include "nn/bnn.hpp"
#include "nn/dataset.hpp"

namespace lbnn::nn {

/// Straight-through-estimator training of a BnnModel (the upstream NullaNet
/// flow trains binarized networks the same way: float latent weights,
/// binarized forward, sign gradients passed through with clipping).
struct TrainOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.05;
  std::uint64_t seed = 1;
};

struct TrainResult {
  BnnModel model;
  double train_accuracy = 0.0;
};

/// Train a model with the given layer sizes (sizes.front() must equal the
/// dataset's feature count; sizes.back() its class count).
TrainResult train_bnn(const Dataset& ds, const std::vector<std::size_t>& sizes,
                      const TrainOptions& opt);

/// Classification accuracy of `model` on `ds`.
double accuracy(const BnnModel& model, const Dataset& ds);

}  // namespace lbnn::nn
