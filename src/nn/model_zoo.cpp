#include "nn/model_zoo.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/logic_export.hpp"
#include "nn/nullanet.hpp"

namespace lbnn::nn {

double ModelDesc::work_per_frame() const {
  double w = 0;
  for (const auto& l : layers) {
    w += static_cast<double>(l.out_neurons) * static_cast<double>(l.positions);
  }
  return w;
}

double ModelDesc::macs_per_frame() const {
  double w = 0;
  for (const auto& l : layers) {
    w += static_cast<double>(l.in_features) * static_cast<double>(l.out_neurons) *
         static_cast<double>(l.positions);
  }
  return w;
}

ModelDesc vgg16() {
  // 3x3 convolutions; layer i's fan-in = in_channels * 9, positions = H*W of
  // the output feature map (224/112/56/28/14 after each pool).
  ModelDesc m;
  m.name = "VGG16";
  const auto conv = [](std::string name, std::size_t in_ch, std::size_t out_ch,
                       std::size_t hw) {
    return LayerDesc{std::move(name), in_ch * 9, out_ch, hw * hw};
  };
  m.layers = {
      conv("conv2", 64, 64, 224),  conv("conv3", 64, 128, 112),
      conv("conv4", 128, 128, 112), conv("conv5", 128, 256, 56),
      conv("conv6", 256, 256, 56), conv("conv7", 256, 256, 56),
      conv("conv8", 256, 512, 28), conv("conv9", 512, 512, 28),
      conv("conv10", 512, 512, 28), conv("conv11", 512, 512, 14),
      conv("conv12", 512, 512, 14), conv("conv13", 512, 512, 14),
  };
  return m;
}

ModelDesc lenet5() {
  ModelDesc m;
  m.name = "LENET5";
  m.layers = {
      {"conv1", 25, 6, 28 * 28},
      {"conv2", 6 * 25, 16, 10 * 10},
      {"fc1", 400, 120, 1},
      {"fc2", 120, 84, 1},
      {"fc3", 84, 10, 1},
  };
  return m;
}

ModelDesc chewbacca_vgg() {
  // ChewBaccaNN [2] runs a CIFAR VGG-like BNN; representative binary VGG
  // configuration (convs 3x3, two pools, three dense).
  ModelDesc m;
  m.name = "ChewBaccaNN-VGG";
  m.layers = {
      {"conv2", 128 * 9, 128, 32 * 32}, {"conv3", 128 * 9, 256, 16 * 16},
      {"conv4", 256 * 9, 256, 16 * 16}, {"conv5", 256 * 9, 512, 8 * 8},
      {"conv6", 512 * 9, 512, 8 * 8},   {"fc1", 512 * 16, 1024, 1},
      {"fc2", 1024, 1024, 1},           {"fc3", 1024, 10, 1},
  };
  return m;
}

namespace {

ModelDesc mlpmixer(std::string name, std::size_t channels, std::size_t ds,
                   std::size_t dc, std::size_t num_layers) {
  // 32x32 input, 4x4 patches -> 64 patches (Sec. VI). Per mixing layer:
  // token-mixing MLP (P->DS->P, applied per channel) and channel-mixing MLP
  // (C->DC->C, applied per patch).
  constexpr std::size_t kPatches = 64;
  ModelDesc m;
  m.name = std::move(name);
  for (std::size_t l = 0; l < num_layers; ++l) {
    const std::string p = "mix" + std::to_string(l + 1) + ".";
    m.layers.push_back({p + "tok_fc1", kPatches, ds, channels});
    m.layers.push_back({p + "tok_fc2", ds, kPatches, channels});
    m.layers.push_back({p + "chan_fc1", channels, dc, kPatches});
    m.layers.push_back({p + "chan_fc2", dc, channels, kPatches});
  }
  return m;
}

}  // namespace

ModelDesc mlpmixer_s4() { return mlpmixer("MLPMixer-S/4", 128, 64, 512, 8); }
ModelDesc mlpmixer_b4() { return mlpmixer("MLPMixer-B/4", 192, 96, 768, 12); }

ModelDesc jsc_m() {
  // Jet substructure classification [5]: 16 physics features, 5 classes;
  // LogicNets-style medium topology.
  ModelDesc m;
  m.name = "JSC-M";
  m.layers = {
      {"fc1", 16, 64, 1}, {"fc2", 64, 32, 1}, {"fc3", 32, 32, 1}, {"fc4", 32, 5, 1}};
  return m;
}

ModelDesc jsc_l() {
  ModelDesc m;
  m.name = "JSC-L";
  m.layers = {{"fc1", 16, 32, 1},
              {"fc2", 32, 64, 1},
              {"fc3", 64, 192, 1},
              {"fc4", 192, 256, 1},
              {"fc5", 256, 5, 1}};
  return m;
}

ModelDesc nid() {
  // UNSW-NB15 with the Murovic et al. preprocessing: 593 binary features,
  // two output classes (Sec. VI).
  ModelDesc m;
  m.name = "NID";
  m.layers = {
      {"fc1", 593, 100, 1}, {"fc2", 100, 100, 1}, {"fc3", 100, 2, 1}};
  return m;
}

std::vector<ModelDesc> all_models() {
  return {vgg16(),        lenet5(), chewbacca_vgg(), mlpmixer_s4(),
          mlpmixer_b4(),  jsc_m(),  jsc_l(),         nid()};
}

LayerWorkload synthesize_layer_ffcl(const LayerDesc& desc, const SynthOptions& opt,
                                    Rng& rng) {
  LayerWorkload wl;
  wl.desc = desc;
  wl.inputs_modeled = std::min(desc.in_features, opt.max_inputs);
  wl.neurons_modeled = std::min(desc.out_neurons, opt.max_neurons);
  wl.fanin_used = std::min({desc.in_features, opt.fanin_cap, wl.inputs_modeled});
  if (opt.style == NeuronStyle::kNullaNetTiny) {
    wl.fanin_used = std::min<std::size_t>(wl.fanin_used, 12);  // QM tractability
  }
  LBNN_CHECK(wl.fanin_used >= 1, "degenerate layer");

  Netlist& nl = wl.ffcl;
  std::vector<NodeId> inputs;
  inputs.reserve(wl.inputs_modeled);
  for (std::size_t i = 0; i < wl.inputs_modeled; ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < wl.neurons_modeled; ++j) {
    // Random fan-in subset (rejection sampling without replacement).
    std::vector<NodeId> picks;
    std::vector<bool> taken(wl.inputs_modeled, false);
    while (picks.size() < wl.fanin_used) {
      const std::size_t i = rng.next_below(wl.inputs_modeled);
      if (taken[i]) continue;
      taken[i] = true;
      picks.push_back(inputs[i]);
    }
    std::vector<bool> weights(wl.fanin_used);
    for (std::size_t i = 0; i < wl.fanin_used; ++i) weights[i] = rng.next_bool();
    // Median threshold with +-1 jitter keeps neurons non-degenerate.
    const std::int32_t jitter = static_cast<std::int32_t>(rng.next_below(3)) - 1;
    const std::int32_t t = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(wl.fanin_used / 2) + jitter);

    NodeId y = kInvalidNode;
    if (opt.style == NeuronStyle::kPopcountExact) {
      y = build_neuron(nl, picks, weights, t);
    } else {
      // NullaNet-Tiny: minimize the pruned neuron's truth table and factor
      // the cover into a small cone.
      BnnDense one;
      one.in_features = wl.fanin_used;
      one.out_features = 1;
      one.weight_bits = {weights};
      one.thresholds = {t};
      const auto cover = minimize_table(neuron_truth_table(one, 0));
      y = build_cover(nl, picks, cover);
    }
    nl.add_output(y, "y" + std::to_string(j));
  }
  return wl;
}

}  // namespace lbnn::nn
