#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "nn/bnn.hpp"
#include "nn/quine_mccluskey.hpp"

namespace lbnn::nn {

/// A single-output truth table with a care set over k <= 20 inputs — the
/// NullaNet neuron representation ([10],[11]): enumerate (or observe from
/// data) the neuron's input patterns, treat unobserved patterns as
/// don't-cares, minimize, and emit fixed-function combinational logic.
struct TruthTable {
  std::uint32_t num_vars = 0;
  std::vector<bool> on;    ///< indexed by minterm
  std::vector<bool> care;  ///< false = don't-care

  std::size_t size() const { return on.size(); }
};

/// Exact table of neuron `j` of `layer` (enumerates all 2^k patterns;
/// layer.in_features <= 20 enforced).
TruthTable neuron_truth_table(const BnnDense& layer, std::size_t j);

/// Data-driven table: care set restricted to the observed activation
/// patterns (NullaNet's don't-care optimization).
TruthTable observed_truth_table(const BnnDense& layer, std::size_t j,
                                const std::vector<std::vector<bool>>& observed);

/// Minimize with QM and factor the cover into 2-input gates. The result has
/// inputs x0..x{k-1} and output y0 and agrees with the table on its care set
/// (tested exhaustively).
Netlist synthesize_sop(const TruthTable& table);

/// Build the cover for a table (exposed for tests/benches).
std::vector<Implicant> minimize_table(const TruthTable& table);

/// Append the factored cover over existing input nodes; returns the output.
NodeId build_cover(Netlist& nl, const std::vector<NodeId>& inputs,
                   const std::vector<Implicant>& cover);

/// Full layer via the NullaNet path: per-neuron exact tables, QM, shared
/// input nodes. Fan-in limited to 16 inputs (enforced).
Netlist nullanet_layer(const BnnDense& layer);

}  // namespace lbnn::nn
