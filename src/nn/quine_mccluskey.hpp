#pragma once

#include <cstdint>
#include <vector>

namespace lbnn::nn {

/// A product term over k variables: `value` gives the required bit for every
/// position whose `mask` bit is 0; positions with mask bit 1 are free
/// ("dashes"). A term with all-ones mask is the tautology.
struct Implicant {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;

  bool covers(std::uint32_t minterm) const {
    return ((minterm ^ value) & ~mask) == 0;
  }
  friend bool operator==(const Implicant& a, const Implicant& b) {
    return a.value == b.value && a.mask == b.mask;
  }
  friend bool operator!=(const Implicant& a, const Implicant& b) { return !(a == b); }
};

/// Quine–McCluskey two-level minimization with don't-cares (the logic
/// minimization NullaNet applies to truth tables before handing FFCL blocks
/// to this paper's flow).
///
/// `on` and `dc` list minterms (k <= 24 enforced); the result is a set of
/// prime implicants covering every on-minterm (essential primes first, then
/// greedy cover), using the dc-set for combining but never requiring it.
std::vector<Implicant> minimize_qm(std::uint32_t num_vars,
                                   const std::vector<std::uint32_t>& on,
                                   const std::vector<std::uint32_t>& dc);

/// Evaluate a cover at a minterm (for verification).
bool cover_eval(const std::vector<Implicant>& cover, std::uint32_t minterm);

}  // namespace lbnn::nn
