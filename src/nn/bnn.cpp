#include "nn/bnn.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace lbnn::nn {

BnnDense BnnDense::random(std::size_t in, std::size_t out, Rng& rng) {
  BnnDense layer;
  layer.in_features = in;
  layer.out_features = out;
  layer.weight_bits.assign(out, std::vector<bool>(in));
  layer.thresholds.assign(out, static_cast<std::int32_t>((in + 1) / 2));
  for (auto& row : layer.weight_bits) {
    for (std::size_t i = 0; i < in; ++i) row[i] = rng.next_bool();
  }
  return layer;
}

std::vector<std::int32_t> BnnDense::popcounts(const std::vector<bool>& x) const {
  LBNN_CHECK(x.size() == in_features, "input size mismatch");
  std::vector<std::int32_t> counts(out_features, 0);
  for (std::size_t j = 0; j < out_features; ++j) {
    std::int32_t c = 0;
    const auto& row = weight_bits[j];
    for (std::size_t i = 0; i < in_features; ++i) {
      c += (x[i] == row[i]) ? 1 : 0;  // XNOR
    }
    counts[j] = c;
  }
  return counts;
}

std::vector<bool> BnnDense::forward(const std::vector<bool>& x) const {
  const auto counts = popcounts(x);
  std::vector<bool> y(out_features);
  for (std::size_t j = 0; j < out_features; ++j) {
    y[j] = counts[j] >= thresholds[j];
  }
  return y;
}

BnnModel BnnModel::random(const std::vector<std::size_t>& sizes, Rng& rng) {
  LBNN_CHECK(sizes.size() >= 2, "model needs at least input and output sizes");
  BnnModel model;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    model.layers.push_back(BnnDense::random(sizes[l], sizes[l + 1], rng));
  }
  return model;
}

std::vector<bool> BnnModel::forward(const std::vector<bool>& x) const {
  std::vector<bool> cur = x;
  for (const auto& layer : layers) cur = layer.forward(cur);
  return cur;
}

std::size_t BnnModel::predict(const std::vector<bool>& x) const {
  LBNN_CHECK(!layers.empty(), "empty model");
  std::vector<bool> cur = x;
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) cur = layers[l].forward(cur);
  const auto counts = layers.back().popcounts(cur);
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace lbnn::nn
