#pragma once

#include "netlist/netlist.hpp"
#include "nn/bnn.hpp"

namespace lbnn::nn {

/// Exact combinational realization of BNN inference (the FFCL blocks the
/// paper's upstream NullaNet flow emits): per neuron an XNOR stage (constant
/// weights specialize to BUF/NOT), a popcount adder tree of half/full
/// adders, and a >= threshold comparator against the constant T. The
/// exported netlist is bit-exact against BnnDense::forward (tested
/// exhaustively for small fan-in, randomly for large).

/// Append the popcount circuit of `bits` to `nl`; returns the binary count,
/// LSB first.
std::vector<NodeId> build_popcount(Netlist& nl, const std::vector<NodeId>& bits);

/// Append a comparator computing (value >= t) for an unsigned binary value
/// (LSB first) against a compile-time constant.
NodeId build_ge_const(Netlist& nl, const std::vector<NodeId>& value, std::uint32_t t);

/// One neuron over the given input nodes.
NodeId build_neuron(Netlist& nl, const std::vector<NodeId>& inputs,
                    const std::vector<bool>& weight_bits, std::int32_t threshold);

/// Whole layer as a standalone netlist (inputs x0..x{in-1}, outputs y0..).
Netlist layer_to_netlist(const BnnDense& layer);

/// Whole model as one netlist (layer outputs feed the next layer's logic).
Netlist model_to_netlist(const BnnModel& model);

}  // namespace lbnn::nn
