#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace lbnn::nn {

/// Shape of one FFCL-realized layer of a benchmark model (Sec. VI): each of
/// `out_neurons` filters/units is a Boolean function of `in_features` binary
/// inputs, evaluated at `positions` spatial positions (conv patches; 1 for
/// dense layers). Positions map onto the LPU's word lanes ("the 2m bits of
/// data come from different patches of an input feature volume").
struct LayerDesc {
  std::string name;
  std::size_t in_features = 0;
  std::size_t out_neurons = 0;
  std::size_t positions = 1;
};

struct ModelDesc {
  std::string name;
  std::vector<LayerDesc> layers;

  /// Total neuron evaluations per frame (sum of out*positions).
  double work_per_frame() const;
  /// Total multiply-accumulates per frame (sum of in*out*positions) — used
  /// by the MAC baseline model.
  double macs_per_frame() const;
};

/// The benchmark set of Sec. VI. Layer shapes follow the cited
/// architectures; where the paper leaves details unstated (ChewBaccaNN's
/// VGG-ish network, the LogicNets JSC/NID topologies) representative
/// configurations from the cited papers are used and noted inline.
ModelDesc vgg16();          ///< conv layers 2-13, the paper's main workload
ModelDesc lenet5();
ModelDesc chewbacca_vgg();  ///< ChewBaccaNN's CIFAR VGG-like BNN
ModelDesc mlpmixer_s4();    ///< MLPMixer-S patch 4: C=128, DS=64, DC=512, 8 layers
ModelDesc mlpmixer_b4();    ///< MLPMixer-B patch 4: C=192, DS=96, DC=768, 12 layers
ModelDesc jsc_m();          ///< jet substructure classification, medium
ModelDesc jsc_l();          ///< jet substructure classification, large
ModelDesc nid();            ///< network intrusion detection (UNSW-NB15, 593 features)

std::vector<ModelDesc> all_models();

/// Which combinational form a synthesized neuron takes.
enum class NeuronStyle {
  /// Exact XNOR + popcount adder tree + comparator — the full-precision FFCL
  /// of a binarized neuron (hundreds of gates for realistic fan-in).
  kPopcountExact,
  /// NullaNet-Tiny style ([11]): fan-in pruned to a handful of inputs, the
  /// neuron's truth table minimized (QM) and factored into a small 2-input
  /// gate cone — the form the paper's upstream flow actually feeds the LPU.
  kNullaNetTiny,
};

/// How much of a layer is synthesized into an actual netlist. Real layers
/// have up to 512 filters of fan-in 4608; we synthesize a structurally
/// faithful sample (NullaNet-Tiny prunes fan-in the same way) and the
/// throughput harness scales by the modeled fraction (EXPERIMENTS.md).
struct SynthOptions {
  std::size_t max_neurons = 24;  ///< neurons synthesized per layer
  std::size_t max_inputs = 96;   ///< primary inputs modeled
  std::size_t fanin_cap = 24;    ///< per-neuron fan-in cap
  NeuronStyle style = NeuronStyle::kPopcountExact;
};

struct LayerWorkload {
  LayerDesc desc;
  Netlist ffcl;
  std::size_t neurons_modeled = 0;
  std::size_t inputs_modeled = 0;
  std::size_t fanin_used = 0;
};

/// Synthesize the FFCL block of one layer: each modeled neuron is an exact
/// XNOR-popcount-threshold function of a random input subset with random
/// signs and a median threshold.
LayerWorkload synthesize_layer_ffcl(const LayerDesc& desc, const SynthOptions& opt,
                                    Rng& rng);

}  // namespace lbnn::nn
