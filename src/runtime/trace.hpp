#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/clock.hpp"

namespace lbnn::runtime {

/// Typed request-lifecycle trace events. One event per state transition a
/// request (or its batch) makes on its way through the engine, so a single
/// drained stream replays the whole schedule: who sealed what, which worker
/// dispatched it, which members were stolen or hedged, and when every future
/// resolved. The taxonomy mirrors the scheduling ladder exactly — if a p99
/// regresses, the gap between two adjacent event types names the phase that
/// ate the budget.
enum class TraceEventType : std::uint8_t {
  kSubmit = 0,    ///< client entered submit/try_submit; id = request id
  kAdmit,         ///< request admitted past shedding + backpressure
  kShed,          ///< admission refused the deadline (kDeadlineUnmeetable)
  kSeal,          ///< batcher sealed a batch; id = batch seq, arg = requests
  kEnqueue,       ///< sealed batch entered its ready queue; arg = queue depth
  kDispatch,      ///< a worker popped the batch off the scheduler
  kMemberClaim,   ///< the dispatching worker claimed a member off the cursor
  kMemberSteal,   ///< an idle worker stole a member from an in-flight batch
  kMemberDone,    ///< a member's result slot resolved; arg = service_us
  kHedgeLaunch,   ///< idle worker launched a duplicate of a straggling member
  kHedgeWin,      ///< the duplicate beat the original to the result claim
  kHedgeCancel,   ///< a losing copy settled; arg = wasted execution us
  kExpire,        ///< dequeue-time expiry settled requests; arg = how many
  kRequestDone,   ///< one request's future resolved; id = request id
  kFinalize,      ///< batch finalized (stats fed, futures about to resolve)
  kPromote,       ///< a member's AOT artifact went live; member = index,
                  ///< arg = codegen us, kTraceFlagNative set for the native
                  ///< (dlopen'd) leg, clear for the threaded fallback
};

const char* to_string(TraceEventType type);

/// TraceEvent::flags bits.
constexpr std::uint8_t kTraceFlagStolen = 1u << 0;   ///< executor != batch claimer
constexpr std::uint8_t kTraceFlagHedge = 1u << 1;    ///< the speculative duplicate
constexpr std::uint8_t kTraceFlagExpired = 1u << 2;  ///< request failed by expiry
constexpr std::uint8_t kTraceFlagFailed = 1u << 3;   ///< request failed by batch error
constexpr std::uint8_t kTraceFlagSkipped = 1u << 4;  ///< fully-expired batch: no sim run
constexpr std::uint8_t kTraceFlagNative = 1u << 5;   ///< member ran (or promoted to) an
                                                     ///< AOT artifact, not the interpreter

/// One fixed-size trace record. Plain data on purpose: events are copied
/// into bounded ring buffers on the hot path, so no strings and no heap —
/// model identity travels as the registry id (Tracer keeps the id -> name
/// map, which retains unloaded models so late exports still render names).
struct TraceEvent {
  TraceEventType type = TraceEventType::kSubmit;
  std::uint8_t flags = 0;
  std::uint16_t track = 0;   ///< producing ring: 0 = off-worker, 1 + i = worker i
  std::uint32_t member = 0;  ///< assembly member index (member-scoped events)
  std::uint64_t model_id = 0;
  /// Request id for kSubmit/kAdmit/kShed/kRequestDone; batch sequence number
  /// for every batch-scoped event.
  std::uint64_t id = 0;
  std::uint64_t arg = 0;  ///< per-type payload, see the enum comments
  std::int64_t ts_us = 0; ///< stamp from the injected ClockSource (us since epoch)
  /// Global emission order (one atomic counter across all rings): merging the
  /// per-ring streams by seq reconstructs the true interleaving, which is
  /// what the ManualClock determinism tests replay byte-identically.
  std::uint64_t seq = 0;
};

/// Bounded single-producer single-consumer ring of trace events. The
/// producer NEVER blocks: when the ring is full the event is dropped and the
/// drop counter bumped — tracing must observe the hot path, not become part
/// of it. Producer and consumer synchronize through head_/tail_
/// acquire/release pairs only (no lock), so a worker's emit is a couple of
/// relaxed loads, one store, and one release store.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity);

  /// Producer side. Returns false (and counts a drop) when full.
  bool try_push(const TraceEvent& ev);

  /// Consumer side: move every buffered event out, in push order.
  void drain_into(std::vector<TraceEvent>& out);

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  ///< next write index (producer-owned)
  std::atomic<std::uint64_t> tail_{0};  ///< next read index (consumer-owned)
  std::atomic<std::uint64_t> dropped_{0};
};

/// The engine's tracing hub: one SPSC ring per worker thread plus one shared
/// ring (track 0) for everything emitted off the worker pool — client submit
/// paths, the batch timekeeper, drain/unload flushes. The shared ring's
/// producer side is mutex-guarded (multiple client threads), the worker
/// rings are wait-free for their owning worker. Consuming (drain/export) is
/// serialized by its own mutex and may run concurrently with producers.
class Tracer {
 public:
  static constexpr std::size_t kSharedTrack = 0;

  Tracer(std::size_t num_workers, std::size_t ring_capacity,
         ClockSource& clock);

  /// Record a model's display name (append-only: unloaded models keep their
  /// entry so a post-unload export still labels their events).
  void register_model(std::uint64_t id, const std::string& name);
  std::string model_name(std::uint64_t id) const;

  /// Stamp (clock + global seq) and buffer one event on `track` (0 = shared,
  /// 1 + i = worker i). Never blocks; a full ring counts a drop instead.
  void emit(std::size_t track, TraceEvent ev);

  /// Move every buffered event out of every ring, merged into global
  /// emission order (by seq). One consumer at a time.
  std::vector<TraceEvent> drain();

  /// Total events dropped across all rings since construction.
  std::uint64_t dropped() const;
  /// Per-ring drop counters (index 0 = shared ring, 1 + i = worker i).
  std::vector<std::uint64_t> dropped_per_ring() const;

  /// Drain and render as Chrome trace-event JSON (chrome://tracing /
  /// Perfetto): one track per worker plus a "clients" track, "X" slices for
  /// member executions and request completions, instants for the lifecycle
  /// transitions, and flow arrows linking each request id from submit to
  /// completion across threads. Drop counts land in otherData.
  void export_chrome_trace(std::ostream& os);

  /// Events-only body of export_chrome_trace: drains and appends this
  /// tracer's events to an already-open traceEvents array under process id
  /// `pid` (non-empty `process_name` adds a process_name metadata record, so
  /// a multi-engine export — the Router's shard-per-process view — labels
  /// each shard). `first` is the caller's comma-separator state.
  void export_chrome_events(std::ostream& os, int pid,
                            const std::string& process_name, bool& first);

  std::size_t num_tracks() const { return rings_.size(); }

 private:
  ClockSource& clock_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::mutex shared_mu_;    ///< producer lock for the shared ring only
  std::mutex consumer_mu_;  ///< one drain/export at a time
  mutable std::mutex names_mu_;
  std::unordered_map<std::uint64_t, std::string> names_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace lbnn::runtime
