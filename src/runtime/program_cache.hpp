#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "aot/artifact.hpp"
#include "core/compiler.hpp"
#include "lpu/multi_lpu.hpp"

namespace lbnn::runtime {

/// Structural 64-bit fingerprint of a (netlist, compile options) pair: FNV-1a
/// over the netlist's ops/fanins/outputs and every option that changes the
/// emitted program. Two netlists that fingerprint equal compile to the same
/// Program, so the fingerprint is a sound cache key (names are included — a
/// renamed output is a different serving contract even if the logic matches).
std::uint64_t fingerprint(const Netlist& nl, const CompileOptions& opt);

struct CacheStats {
  std::uint64_t hits = 0;  ///< LRU hits plus joins on an in-flight compile
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< LRU pressure plus explicit erase()
  std::size_t entries = 0;
  /// AOT artifact admission (get_or_build_native). Together these three count
  /// every artifact build that actually ran (in-flight joins and LRU hits are
  /// folded into hits/misses above like any other entry):
  std::uint64_t native_compiles = 0;   ///< built fresh (cold codegen ran)
  std::uint64_t native_disk_hits = 0;  ///< reloaded from artifact_dir (warm restart)
  std::uint64_t native_failures = 0;   ///< native requested but fell back to threaded
};

/// Fingerprint-keyed LRU cache of compiled programs, so repeated loads of the
/// same model (common in serving: replicas, restarts, A/B pairs) skip the
/// compile flow entirely. Values are shared_ptr<const ...>: an eviction never
/// invalidates a program an Engine is still serving from.
///
/// Single-LPU results and k-way parallel assemblies share one LRU (k is
/// folded into the key via parallel_key), so `capacity` bounds the total
/// count of compiled artifacts held. `capacity == 0` is a pass-through cache:
/// every load compiles (deduplicating concurrent same-key loads) but nothing
/// is retained.
///
/// Admission is lock-free with respect to compilation: the lock only guards
/// the maps. A miss publishes a per-key shared_future, compiles OUTSIDE the
/// lock, then fulfils the future — so concurrent loads of distinct models
/// compile in parallel, while concurrent same-key loads join the in-flight
/// future and the model compiles exactly once. A failed compile propagates
/// its exception to every joined waiter and clears the in-flight slot so a
/// later load can retry.
class ProgramCache {
 public:
  explicit ProgramCache(std::size_t capacity);

  /// `key_out`, when non-null, receives the entry's cache key (the caller
  /// needs it for erase() on unload; computing it re-hashes the netlist).
  std::shared_ptr<const CompileResult> get_or_compile(
      const Netlist& nl, const CompileOptions& opt,
      std::uint64_t* key_out = nullptr);
  std::shared_ptr<const ParallelCompileResult> get_or_compile_parallel(
      const Netlist& nl, const CompileOptions& opt, std::uint32_t k,
      std::uint64_t* key_out = nullptr);

  /// AOT artifact admission, behind the same per-key machinery as programs:
  /// an LRU hit returns the cached artifact, concurrent same-key builds join
  /// one in-flight future (codegen and the out-of-process compile run OUTSIDE
  /// the cache lock, overlapping serving), and distinct keys build in
  /// parallel. Keyed by the artifact content key (serialized program + ABI +
  /// ISA — see aot::content_key), so two Programs with identical text share
  /// one artifact. Never throws on a failed native build: the result is then
  /// the direct-threaded fallback (counted in CacheStats::native_failures).
  std::shared_ptr<const aot::ProgramArtifact> get_or_build_native(
      const Program& prog, const aot::AotOptions& opt,
      std::uint64_t* key_out = nullptr);

  /// Cache key of a k-way parallel assembly compiled from a netlist whose
  /// single-LPU fingerprint is `single_fp` (distinct key space from k = 0).
  static std::uint64_t parallel_key(std::uint64_t single_fp, std::uint32_t k);

  /// Drop the entry for `key` (counted as an eviction). Used by model unload
  /// to release the cache's pin on a retired program. No-op on a key that is
  /// absent or only in flight; returns whether an entry was dropped.
  bool erase(std::uint64_t key);

  /// Test instrumentation: invoked once per actual compile, outside the cache
  /// lock, just before the compile flow runs. Not thread-safe to set while
  /// loads are in flight.
  void set_compile_hook(std::function<void()> hook) { compile_hook_ = std::move(hook); }

  /// Same, for actual artifact builds (get_or_build_native misses): invoked
  /// outside the lock just before compile_artifact runs. Joins and LRU hits
  /// never fire it — the warm-restart smoke test asserts zero invocations.
  void set_native_hook(std::function<void()> hook) { native_hook_ = std::move(hook); }

  CacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    /// Exactly one of the three is set, matching the key's tag (k component
    /// for programs, the native tag for artifacts).
    std::shared_ptr<const CompileResult> single;
    std::shared_ptr<const ParallelCompileResult> parallel;
    std::shared_ptr<const aot::ProgramArtifact> native;
    std::list<std::uint64_t>::iterator lru_it;
  };

  template <typename R>
  using InflightMap =
      std::unordered_map<std::uint64_t,
                         std::shared_future<std::shared_ptr<const R>>>;

  /// Returns the entry for `key`, marking it most-recent, or nullptr.
  Entry* lookup_locked(std::uint64_t key);
  void insert_locked(std::uint64_t key, Entry entry);

  /// The shared admission protocol: LRU hit, else join the key's in-flight
  /// compile, else compile OUTSIDE the lock and publish. `slot` maps an Entry
  /// to its R-typed field (for both lookup and insert); `do_compile` runs the
  /// actual compile flow.
  template <typename R, typename SlotFn, typename CompileFn>
  std::shared_ptr<const R> get_or_join(std::uint64_t key,
                                       InflightMap<R>& inflight, SlotFn slot,
                                       CompileFn do_compile);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Entry> map_;
  /// Keys whose compile is running right now; latecomers join the future.
  InflightMap<CompileResult> inflight_single_;
  InflightMap<ParallelCompileResult> inflight_parallel_;
  InflightMap<aot::ProgramArtifact> inflight_native_;
  CacheStats stats_;
  std::function<void()> compile_hook_;
  std::function<void()> native_hook_;
};

}  // namespace lbnn::runtime
