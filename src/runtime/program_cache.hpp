#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiler.hpp"
#include "lpu/multi_lpu.hpp"

namespace lbnn::runtime {

/// Structural 64-bit fingerprint of a (netlist, compile options) pair: FNV-1a
/// over the netlist's ops/fanins/outputs and every option that changes the
/// emitted program. Two netlists that fingerprint equal compile to the same
/// Program, so the fingerprint is a sound cache key (names are included — a
/// renamed output is a different serving contract even if the logic matches).
std::uint64_t fingerprint(const Netlist& nl, const CompileOptions& opt);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// Fingerprint-keyed LRU cache of compiled programs, so repeated loads of the
/// same model (common in serving: replicas, restarts, A/B pairs) skip the
/// compile flow entirely. Values are shared_ptr<const ...>: an eviction never
/// invalidates a program an Engine is still serving from.
///
/// Single-LPU results and k-way parallel assemblies share one LRU (k is
/// folded into the key), so `capacity` bounds the total count of compiled
/// artifacts held. Compilation happens under the cache lock — concurrent
/// loaders of distinct models serialize, in exchange for never compiling the
/// same model twice (the right trade for load-time work; see ROADMAP).
class ProgramCache {
 public:
  explicit ProgramCache(std::size_t capacity);

  std::shared_ptr<const CompileResult> get_or_compile(const Netlist& nl,
                                                      const CompileOptions& opt);
  std::shared_ptr<const ParallelCompileResult> get_or_compile_parallel(
      const Netlist& nl, const CompileOptions& opt, std::uint32_t k);

  CacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    /// Exactly one of the two is set, matching the key's k component.
    std::shared_ptr<const CompileResult> single;
    std::shared_ptr<const ParallelCompileResult> parallel;
    std::list<std::uint64_t>::iterator lru_it;
  };

  /// Returns the entry for `key`, marking it most-recent, or nullptr.
  Entry* lookup_locked(std::uint64_t key);
  void insert_locked(std::uint64_t key, Entry entry);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Entry> map_;
  CacheStats stats_;
};

}  // namespace lbnn::runtime
