#include "runtime/program_cache.hpp"

#include <utility>

namespace lbnn::runtime {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kFnvPrime;
    }
  }
  void mix_str(const std::string& s) {
    mix(s.size());
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
  }
};

}  // namespace

std::uint64_t fingerprint(const Netlist& nl, const CompileOptions& opt) {
  Fnv f;
  // Netlist structure: dense ids are canonical (topological construction
  // order), so op/fanin streams identify the graph.
  f.mix(nl.num_nodes());
  for (NodeId id = 0; id < static_cast<NodeId>(nl.num_nodes()); ++id) {
    f.mix(static_cast<std::uint64_t>(nl.op(id)));
    f.mix(static_cast<std::uint64_t>(nl.fanin0(id)));
    f.mix(static_cast<std::uint64_t>(nl.fanin1(id)));
  }
  f.mix(nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) f.mix_str(nl.input_name(i));
  f.mix(nl.num_outputs());
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    f.mix(static_cast<std::uint64_t>(nl.outputs()[o]));
    f.mix_str(nl.output_name(o));
  }
  // Every option that changes the emitted program.
  f.mix(opt.lpu.m);
  f.mix(opt.lpu.n);
  f.mix(opt.lpu.tsw);
  f.mix(opt.lpu.word_width);
  f.mix(static_cast<std::uint64_t>(opt.lpu.clock_mhz * 1e3));
  f.mix(opt.optimize ? 1 : 0);
  f.mix(opt.merge ? 1 : 0);
  f.mix(opt.width_headroom_retries);
  for (const GateOp op : opt.library.ops()) f.mix(static_cast<std::uint64_t>(op));
  return f.h;
}

ProgramCache::ProgramCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) capacity_ = 1;
}

ProgramCache::Entry* ProgramCache::lookup_locked(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second;
}

void ProgramCache::insert_locked(std::uint64_t key, Entry entry) {
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  map_.emplace(key, std::move(entry));
}

std::shared_ptr<const CompileResult> ProgramCache::get_or_compile(
    const Netlist& nl, const CompileOptions& opt) {
  const std::uint64_t key = fingerprint(nl, opt);
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = lookup_locked(key); e != nullptr && e->single) {
    ++stats_.hits;
    return e->single;
  }
  ++stats_.misses;
  Entry entry;
  entry.single = std::make_shared<const CompileResult>(compile(nl, opt));
  auto result = entry.single;
  insert_locked(key, std::move(entry));
  return result;
}

std::shared_ptr<const ParallelCompileResult> ProgramCache::get_or_compile_parallel(
    const Netlist& nl, const CompileOptions& opt, std::uint32_t k) {
  Fnv f;
  f.mix(fingerprint(nl, opt));
  f.mix(0x706172616C6C656Cull);  // "parallel" tag: distinct key space from k=0
  f.mix(k);
  const std::uint64_t key = f.h;
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = lookup_locked(key); e != nullptr && e->parallel) {
    ++stats_.hits;
    return e->parallel;
  }
  ++stats_.misses;
  Entry entry;
  entry.parallel =
      std::make_shared<const ParallelCompileResult>(compile_parallel(nl, opt, k));
  auto result = entry.parallel;
  insert_locked(key, std::move(entry));
  return result;
}

CacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  CacheStats s = stats_;
  s.entries = map_.size();
  return s;
}

}  // namespace lbnn::runtime
