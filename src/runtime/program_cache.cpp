#include "runtime/program_cache.hpp"

#include <utility>

#include "aot/codegen.hpp"

namespace lbnn::runtime {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kFnvPrime;
    }
  }
  void mix_str(const std::string& s) {
    mix(s.size());
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
  }
};

}  // namespace

std::uint64_t fingerprint(const Netlist& nl, const CompileOptions& opt) {
  Fnv f;
  // Netlist structure: dense ids are canonical (topological construction
  // order), so op/fanin streams identify the graph.
  f.mix(nl.num_nodes());
  for (NodeId id = 0; id < static_cast<NodeId>(nl.num_nodes()); ++id) {
    f.mix(static_cast<std::uint64_t>(nl.op(id)));
    f.mix(static_cast<std::uint64_t>(nl.fanin0(id)));
    f.mix(static_cast<std::uint64_t>(nl.fanin1(id)));
  }
  f.mix(nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) f.mix_str(nl.input_name(i));
  f.mix(nl.num_outputs());
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    f.mix(static_cast<std::uint64_t>(nl.outputs()[o]));
    f.mix_str(nl.output_name(o));
  }
  // Every option that changes the emitted program.
  f.mix(opt.lpu.m);
  f.mix(opt.lpu.n);
  f.mix(opt.lpu.tsw);
  f.mix(opt.lpu.word_width);
  f.mix(static_cast<std::uint64_t>(opt.lpu.clock_mhz * 1e3));
  f.mix(opt.optimize ? 1 : 0);
  f.mix(opt.merge ? 1 : 0);
  f.mix(opt.width_headroom_retries);
  for (const GateOp op : opt.library.ops()) f.mix(static_cast<std::uint64_t>(op));
  return f.h;
}

std::uint64_t ProgramCache::parallel_key(std::uint64_t single_fp, std::uint32_t k) {
  Fnv f;
  f.mix(single_fp);
  f.mix(0x706172616C6C656Cull);  // "parallel" tag: distinct key space from k=0
  f.mix(k);
  return f.h;
}

ProgramCache::ProgramCache(std::size_t capacity) : capacity_(capacity) {}

ProgramCache::Entry* ProgramCache::lookup_locked(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second;
}

void ProgramCache::insert_locked(std::uint64_t key, Entry entry) {
  // A zero-capacity cache is a pass-through: the caller keeps the compiled
  // artifact alive, we retain (and evict) nothing.
  if (capacity_ == 0) return;
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  map_.emplace(key, std::move(entry));
}

bool ProgramCache::erase(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  ++stats_.evictions;
  return true;
}

template <typename R, typename SlotFn, typename CompileFn>
std::shared_ptr<const R> ProgramCache::get_or_join(std::uint64_t key,
                                                   InflightMap<R>& inflight,
                                                   SlotFn slot,
                                                   CompileFn do_compile) {
  std::promise<std::shared_ptr<const R>> promise;
  std::shared_future<std::shared_ptr<const R>> shared;
  bool compile_here = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (Entry* e = lookup_locked(key); e != nullptr && slot(*e)) {
      ++stats_.hits;
      return slot(*e);
    }
    if (auto it = inflight.find(key); it != inflight.end()) {
      // Someone is compiling this key right now; join their future (counted
      // as a hit: this load runs no compile of its own).
      ++stats_.hits;
      shared = it->second;
    } else {
      ++stats_.misses;
      shared = promise.get_future().share();
      inflight.emplace(key, shared);
      compile_here = true;
    }
  }
  if (!compile_here) return shared.get();  // rethrows the owner's failure

  std::shared_ptr<const R> result;
  try {
    result = std::make_shared<const R>(do_compile());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight.erase(key);  // a later load may retry
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    // Publish to the LRU before fulfilling the promise, so a caller woken by
    // the future observes the cached entry on its next load.
    std::lock_guard<std::mutex> lk(mu_);
    Entry entry;
    slot(entry) = result;
    insert_locked(key, std::move(entry));
    inflight.erase(key);
  }
  promise.set_value(result);
  return result;
}

std::shared_ptr<const CompileResult> ProgramCache::get_or_compile(
    const Netlist& nl, const CompileOptions& opt, std::uint64_t* key_out) {
  const std::uint64_t key = fingerprint(nl, opt);
  if (key_out != nullptr) *key_out = key;
  return get_or_join<CompileResult>(
      key, inflight_single_,
      [](Entry& e) -> std::shared_ptr<const CompileResult>& { return e.single; },
      [&] {
        if (compile_hook_) compile_hook_();
        return compile(nl, opt);
      });
}

std::shared_ptr<const ParallelCompileResult> ProgramCache::get_or_compile_parallel(
    const Netlist& nl, const CompileOptions& opt, std::uint32_t k,
    std::uint64_t* key_out) {
  const std::uint64_t key = parallel_key(fingerprint(nl, opt), k);
  if (key_out != nullptr) *key_out = key;
  return get_or_join<ParallelCompileResult>(
      key, inflight_parallel_,
      [](Entry& e) -> std::shared_ptr<const ParallelCompileResult>& {
        return e.parallel;
      },
      [&] {
        if (compile_hook_) compile_hook_();
        return compile_parallel(nl, opt, k);
      });
}

std::shared_ptr<const aot::ProgramArtifact> ProgramCache::get_or_build_native(
    const Program& prog, const aot::AotOptions& opt, std::uint64_t* key_out) {
  Fnv f;
  f.mix_str(aot::content_key(prog, opt.avx2));
  f.mix(0x6E61746976650000ull);  // "native" tag: distinct key space from programs
  const std::uint64_t key = f.h;
  if (key_out != nullptr) *key_out = key;
  return get_or_join<aot::ProgramArtifact>(
      key, inflight_native_,
      [](Entry& e) -> std::shared_ptr<const aot::ProgramArtifact>& {
        return e.native;
      },
      [&] {
        if (native_hook_) native_hook_();
        aot::ProgramArtifact art = aot::compile_artifact(prog, opt);
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (art.from_disk) {
            ++stats_.native_disk_hits;
          } else {
            ++stats_.native_compiles;
          }
          if (art.native_failed) ++stats_.native_failures;
        }
        return art;
      });
}

CacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  CacheStats s = stats_;
  s.entries = map_.size();
  return s;
}

}  // namespace lbnn::runtime
