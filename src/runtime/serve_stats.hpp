#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "lpu/simulator.hpp"
#include "runtime/batcher.hpp"
#include "runtime/clock.hpp"

namespace lbnn::runtime {

/// Log2-bucketed latency histogram over microseconds: bucket 0 holds 0 us,
/// bucket i >= 1 holds [2^(i-1), 2^i). 64 buckets cover every uint64 value,
/// so record() never saturates; percentiles are exact to within one octave,
/// which is the right resolution for serving dashboards (p99 of 370 us and
/// 510 us are the same operational fact).
class LatencyHistogram {
 public:
  void record(std::uint64_t micros);
  std::uint64_t count() const { return count_; }
  /// Upper bound (us) of the bucket containing the p-th percentile sample
  /// (0 < p <= 100). Returns 0 when the histogram is empty.
  std::uint64_t percentile_us(double p) const;
  /// Bucket-wise accumulate (exact: both sides use the same log2 buckets).
  /// Used to fold an unloading model's history into the retired aggregate.
  void merge(const LatencyHistogram& other);

 private:
  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
};

/// Percentile summary of one lifecycle phase (see PhaseBreakdown).
struct PhaseStats {
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t count = 0;  ///< samples recorded (requests or batches)
};

/// Request-latency decomposition by lifecycle phase, derived from the same
/// transitions the trace stream records, so a p99 regression names the phase
/// that ate the budget instead of a single end-to-end number:
///   assembly_wait: request submit -> its batch sealing (request-weighted)
///   queue_wait:    batch seal -> a worker dispatching it (batch-weighted)
///   execution:     dispatch -> the batch's last member completing
///   finalize:      last member done -> futures resolved (settle cost)
struct PhaseBreakdown {
  PhaseStats assembly_wait;
  PhaseStats queue_wait;
  PhaseStats execution;
  PhaseStats finalize;
};

/// Per-model slice of a ServeReport: one row per loaded model, so the
/// weighted-fair scheduler's isolation properties are observable (a starved
/// model shows up as a high p99 and a deep queue high-water mark) and so is
/// the SLO subsystem (shed/expired counters, on-deadline completions).
struct ModelReport {
  std::string name;
  std::uint32_t weight = 1;       ///< QoS weight (stride scheduling share)
  std::size_t queue_bound = 0;    ///< admission bound (outstanding requests)
  std::uint64_t requests = 0;     ///< completed single-sample requests
  std::uint64_t batches = 0;      ///< sealed batches executed
  std::uint64_t samples = 0;      ///< lanes actually occupied across batches
  std::uint64_t lanes_offered = 0;
  double lane_occupancy = 0.0;
  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;
  /// Deepest the model's ready queue (dispatchable work items) ever got.
  std::size_t queue_depth_hwm = 0;
  /// Admission rejections because the estimated drain time already exceeded
  /// the request deadline (SubmitStatus::kDeadlineUnmeetable / the blocking
  /// path's DeadlineExceeded throw).
  std::uint64_t shed = 0;
  /// Requests dropped at dequeue because their deadline had already passed
  /// (futures failed with DeadlineExceeded, no simulation work spent).
  std::uint64_t expired = 0;
  /// Completions that made their deadline (deadline-less requests count).
  std::uint64_t deadline_met = 0;
  /// deadline_met / wall-clock seconds — filled by Engine::report().
  double goodput_per_sec = 0.0;
  /// Member work items this model's batches executed (>= batches; one per
  /// assembly member per batch that ran).
  std::uint64_t member_runs = 0;
  /// member_runs split by executor backend, indexed by lbnn::BackendKind
  /// (scalar, sliced, aot, aot-threaded). A mid-traffic AOT promotion shows
  /// up as counts moving from the interpreter column to an AOT one.
  std::array<std::uint64_t, 4> member_runs_by_backend{};
  /// Member work items executed by a worker that did NOT dequeue the batch —
  /// idle-worker stealing hiding a straggler member.
  std::uint64_t steals = 0;
  /// Speculative duplicates launched against a straggling last member
  /// (EngineOptions::hedging). A hedged member still counts exactly once in
  /// member_runs — the duplicate is redundancy, never extra logical work.
  std::uint64_t hedges_launched = 0;
  /// Hedges whose duplicate beat the original to the result claim.
  std::uint64_t hedge_wins = 0;
  /// Execution time burned by losing copies (original or duplicate) whose
  /// result was discarded — the price paid for the tail-latency insurance.
  std::uint64_t hedge_wasted_us = 0;
  /// Per-phase latency decomposition for this model's traffic.
  PhaseBreakdown phases;
};

/// Snapshot of a ServeStats aggregation (all values since construction or the
/// last reset()).
struct ServeReport {
  std::uint64_t requests = 0;  ///< completed single-sample requests
  std::uint64_t batches = 0;   ///< sealed batches executed
  std::uint64_t samples = 0;   ///< lanes actually occupied across batches
  std::uint64_t lanes_offered = 0;  ///< lane capacity summed over batches
  /// samples / lanes_offered — how full the 2m-lane datapath words were.
  double lane_occupancy = 0.0;
  std::uint64_t p50_latency_us = 0;  ///< request submit -> result latency
  std::uint64_t p99_latency_us = 0;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  /// SLO counters: admission rejections (shed), dequeue drops (expired), and
  /// completions that made their deadline (deadline-less requests count as
  /// met — completing them is always good work).
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t deadline_met = 0;
  /// On-deadline completions per second — the number that must not degrade
  /// when admission shedding turns on (see bench/serve_overload).
  double goodput_per_sec = 0.0;
  /// Member-level execution counters (see bench/serve_stealing): work items
  /// run, how many ran on a worker other than their batch's claimer, the
  /// per-member service-time percentiles, and the batch straggler gap — the
  /// time between a batch's first and last member completing (only batches
  /// with >= 2 executed members record a gap; stealing exists to shrink it).
  std::uint64_t member_runs = 0;
  std::uint64_t steals = 0;
  /// member_runs split by executor backend (see ModelReport).
  std::array<std::uint64_t, 4> member_runs_by_backend{};
  /// Straggler-hedging ledger (see ModelReport for field semantics). The
  /// invariant hedge_wins <= hedges_launched <= member_runs holds whenever
  /// every hedged member actually executes (no failures/expiry skips).
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedge_wasted_us = 0;
  std::uint64_t member_p50_us = 0;
  std::uint64_t member_p99_us = 0;
  /// Exact (sample-based) member service percentiles, next to the octave-
  /// bucketed ones above: the histogram is the right dashboard resolution,
  /// but a speedup gate quantized to powers of two is a coin flip — a true
  /// 3.5x kernel ratio reads as 2x or 4x depending on where the times land
  /// relative to bucket edges. Raw samples are kept up to a fixed cap (see
  /// ServeStats::kMemberSampleCap); past it the exact percentiles describe
  /// the first cap-many member runs while the histogram stays complete.
  /// bench/serve_simd gates on these.
  std::uint64_t member_p50_exact_us = 0;
  std::uint64_t member_p99_exact_us = 0;
  std::uint64_t straggler_gap_p50_us = 0;
  std::uint64_t straggler_gap_p99_us = 0;
  /// Per-phase latency decomposition across every model (see PhaseBreakdown).
  PhaseBreakdown phases;
  /// Simulator counters summed over every member run. lpe_utilization is the
  /// wavefront-weighted mean of the per-run utilizations.
  SimCounters sim;
  /// One row per currently loaded model (load order). Models unloaded since
  /// startup are folded into one persistent "(retired)" row at the end, so
  /// metrics spanning an unload or version flip keep their history.
  std::vector<ModelReport> per_model;
};

/// Thread-safe per-model serving metrics, embedded in each loaded model's
/// state. The Engine feeds it alongside the global ServeStats; report() fills
/// everything except the identity fields (name/weight/bound) and the derived
/// goodput rate, which the Engine owns.
class ModelStats {
 public:
  /// `deadline_met` counts how many of these completions made their deadline.
  void on_requests_done(const std::vector<std::uint64_t>& latencies_us,
                        std::uint64_t deadline_met);
  void on_batch(std::size_t samples, std::size_t lane_capacity);
  /// Ready-queue depth (in member work items) observed after an enqueue;
  /// keeps the high-water mark.
  void on_queue_depth(std::size_t depth);
  void on_shed();
  void on_expired(std::size_t n);
  /// A finalized batch's member slots: counts executed members, steals, and
  /// hedge wins.
  void on_members_done(const std::vector<MemberSlot>& slots);
  /// A speculative duplicate was launched against a straggling member.
  void on_hedge_launched();
  /// A losing copy (original or duplicate) finished and discarded `wasted_us`
  /// of execution time.
  void on_hedge_waste(std::uint64_t wasted_us);
  /// One finalized batch's phase decomposition: per-request assembly waits
  /// (submit -> seal), then the batch-weighted seal -> dispatch, dispatch ->
  /// last member, and settle times. See PhaseBreakdown.
  void on_phases(const std::vector<std::uint64_t>& assembly_us,
                 std::uint64_t queue_wait_us, std::uint64_t execution_us,
                 std::uint64_t finalize_us);
  /// Fold another model's entire history into this one (used by the engine's
  /// retired-model aggregate on unload). The queue-depth high-water mark takes
  /// the max; everything else adds.
  void merge_from(const ModelStats& other);

  ModelReport report() const;

 private:
  mutable std::mutex mu_;
  LatencyHistogram hist_;
  LatencyHistogram assembly_hist_;
  LatencyHistogram queue_wait_hist_;
  LatencyHistogram execution_hist_;
  LatencyHistogram finalize_hist_;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t lanes_offered_ = 0;
  std::size_t queue_depth_hwm_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t deadline_met_ = 0;
  std::uint64_t member_runs_ = 0;
  std::array<std::uint64_t, 4> member_runs_by_backend_{};
  std::uint64_t steals_ = 0;
  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t hedge_wasted_us_ = 0;
};

/// Thread-safe serving metrics: request latencies (for p50/p99), batch lane
/// occupancy, SLO outcomes (shed/expired/on-deadline), and SimCounters
/// aggregated across every simulator run the engine's workers execute. Wall
/// time comes from the injected clock, so ManualClock tests get deterministic
/// rates.
class ServeStats {
 public:
  /// `clock` must outlive the stats; nullptr means the system clock.
  explicit ServeStats(ClockSource* clock = nullptr)
      : clock_(clock != nullptr ? clock : &SystemClock::instance()),
        start_(clock_->now()) {}

  void on_request_done(std::uint64_t latency_us);
  /// Record a whole batch's request latencies under one lock acquisition
  /// (finalize is on the worker hot path). `deadline_met` counts how many of
  /// them made their deadline.
  void on_requests_done(const std::vector<std::uint64_t>& latencies_us,
                        std::uint64_t deadline_met);
  void on_batch(std::size_t samples, std::size_t lane_capacity);
  void on_sim_run(const SimCounters& c);
  void on_shed();
  void on_expired(std::size_t n);
  /// A finalized batch's member slots, recorded in one lock acquisition:
  /// member service-time percentiles, steal/hedge-win counts, and — for
  /// batches where at least two members executed — the straggler gap between
  /// the first and the last member to finish.
  void on_members_done(const std::vector<MemberSlot>& slots);
  void on_hedge_launched();
  void on_hedge_waste(std::uint64_t wasted_us);
  /// One finalized batch's phase decomposition (see ModelStats::on_phases).
  void on_phases(const std::vector<std::uint64_t>& assembly_us,
                 std::uint64_t queue_wait_us, std::uint64_t execution_us,
                 std::uint64_t finalize_us);

  ServeReport report() const;
  void reset();

  /// Raw member service samples kept for the exact percentiles (8 bytes
  /// each; recording stops at the cap, the histogram never does).
  static constexpr std::size_t kMemberSampleCap = 1 << 18;

 private:
  mutable std::mutex mu_;
  ClockSource* clock_;
  LatencyHistogram hist_;
  LatencyHistogram member_hist_;
  std::vector<std::uint64_t> member_samples_;
  LatencyHistogram straggler_hist_;
  LatencyHistogram assembly_hist_;
  LatencyHistogram queue_wait_hist_;
  LatencyHistogram execution_hist_;
  LatencyHistogram finalize_hist_;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t lanes_offered_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t deadline_met_ = 0;
  std::uint64_t member_runs_ = 0;
  std::array<std::uint64_t, 4> member_runs_by_backend_{};
  std::uint64_t steals_ = 0;
  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t hedge_wasted_us_ = 0;
  SimCounters sim_;
  /// Sum of (lpe_utilization * wavefronts) per run; report() divides by the
  /// summed wavefronts to recover the weighted mean.
  double util_weight_ = 0.0;
  TimePoint start_;
};

}  // namespace lbnn::runtime
