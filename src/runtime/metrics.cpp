#include "runtime/metrics.hpp"

#include <sstream>

namespace lbnn::runtime {
namespace {

void escape_label(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

void escape_json(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

void prom_phase(std::ostream& os, const char* phase, const PhaseStats& p,
                const std::string& shard_tail) {
  os << "lbnn_phase_latency_us{phase=\"" << phase << "\",quantile=\"0.5\""
     << shard_tail << "} " << p.p50_us << "\n";
  os << "lbnn_phase_latency_us{phase=\"" << phase << "\",quantile=\"0.99\""
     << shard_tail << "} " << p.p99_us << "\n";
  os << "lbnn_phase_samples_total{phase=\"" << phase << "\"" << shard_tail
     << "} " << p.count << "\n";
}

void json_phase(std::ostream& os, const char* name, const PhaseStats& p,
                bool trailing_comma) {
  os << "\"" << name << "\":{\"p50_us\":" << p.p50_us << ",\"p99_us\":" << p.p99_us
     << ",\"count\":" << p.count << "}";
  if (trailing_comma) os << ",";
}

}  // namespace

std::string to_prometheus(const ServeReport& r) {
  return to_prometheus(std::vector<LabelledReport>{{std::string(), &r}});
}

std::string to_prometheus(const std::vector<LabelledReport>& shards) {
  std::ostringstream os;
  // `{shard="N"}` for a labelled slice, nothing for the single-engine form —
  // precomputed per shard, and reused as the `,shard="N"` tail when the
  // series already carries other labels (phase/model).
  std::vector<std::string> bare, tail;
  bare.reserve(shards.size());
  tail.reserve(shards.size());
  for (const LabelledReport& s : shards) {
    if (s.shard.empty()) {
      bare.emplace_back();
      tail.emplace_back();
    } else {
      bare.push_back("{shard=\"" + s.shard + "\"}");
      tail.push_back(",shard=\"" + s.shard + "\"");
    }
  }
  // One HELP/TYPE block per metric, then one sample per shard: exposition
  // metadata must not repeat inside a scrape body.
  auto series = [&](const char* name, const char* help, const char* type,
                    auto get) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      os << name << bare[i] << " " << get(*shards[i].report) << "\n";
    }
  };
  auto counter = [&](const char* name, const char* help, auto get) {
    series(name, help, "counter", get);
  };
  auto gauge = [&](const char* name, const char* help, auto get) {
    series(name, help, "gauge", get);
  };
  using R = const ServeReport&;
  counter("lbnn_requests_total", "Completed requests",
          [](R r) { return r.requests; });
  counter("lbnn_batches_total", "Sealed batches executed",
          [](R r) { return r.batches; });
  counter("lbnn_samples_total", "Lanes occupied across batches",
          [](R r) { return r.samples; });
  counter("lbnn_lanes_offered_total", "Lane capacity summed over batches",
          [](R r) { return r.lanes_offered; });
  gauge("lbnn_lane_occupancy", "samples / lanes_offered",
        [](R r) { return r.lane_occupancy; });
  gauge("lbnn_request_latency_us_p50", "Request latency p50 (us)",
        [](R r) { return r.p50_latency_us; });
  gauge("lbnn_request_latency_us_p99", "Request latency p99 (us)",
        [](R r) { return r.p99_latency_us; });
  gauge("lbnn_requests_per_sec", "Completed requests per wall second",
        [](R r) { return r.requests_per_sec; });
  gauge("lbnn_goodput_per_sec", "On-deadline completions per wall second",
        [](R r) { return r.goodput_per_sec; });
  counter("lbnn_shed_total", "Admission rejections (deadline unmeetable)",
          [](R r) { return r.shed; });
  counter("lbnn_expired_total", "Requests dropped at dequeue past deadline",
          [](R r) { return r.expired; });
  counter("lbnn_deadline_met_total", "Completions that made their deadline",
          [](R r) { return r.deadline_met; });
  counter("lbnn_member_runs_total", "Member work items executed",
          [](R r) { return r.member_runs; });
  // Member runs split by executor backend: the interpreter columns drain and
  // the AOT columns fill as members promote mid-traffic.
  os << "# HELP lbnn_member_runs_backend_total Member runs per executor backend\n";
  os << "# TYPE lbnn_member_runs_backend_total counter\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ServeReport& r = *shards[i].report;
    for (std::size_t b = 0; b < r.member_runs_by_backend.size(); ++b) {
      os << "lbnn_member_runs_backend_total{backend=\""
         << to_string(static_cast<BackendKind>(b)) << "\"" << tail[i] << "} "
         << r.member_runs_by_backend[b] << "\n";
    }
  }
  counter("lbnn_steals_total", "Member runs executed by a non-claimer worker",
          [](R r) { return r.steals; });
  counter("lbnn_hedges_launched_total", "Speculative duplicates launched",
          [](R r) { return r.hedges_launched; });
  counter("lbnn_hedge_wins_total", "Hedges whose duplicate won the claim",
          [](R r) { return r.hedge_wins; });
  counter("lbnn_hedge_wasted_us_total", "Execution us burned by losing copies",
          [](R r) { return r.hedge_wasted_us; });
  gauge("lbnn_member_latency_us_p99", "Member service time p99 (us)",
        [](R r) { return r.member_p99_us; });
  gauge("lbnn_straggler_gap_us_p99", "Batch first-to-last member gap p99 (us)",
        [](R r) { return r.straggler_gap_p99_us; });
  os << "# HELP lbnn_phase_latency_us Per-phase latency percentiles (us)\n";
  os << "# TYPE lbnn_phase_latency_us gauge\n";
  os << "# HELP lbnn_phase_samples_total Samples per phase histogram\n";
  os << "# TYPE lbnn_phase_samples_total counter\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ServeReport& r = *shards[i].report;
    prom_phase(os, "assembly_wait", r.phases.assembly_wait, tail[i]);
    prom_phase(os, "queue_wait", r.phases.queue_wait, tail[i]);
    prom_phase(os, "execution", r.phases.execution, tail[i]);
    prom_phase(os, "finalize", r.phases.finalize, tail[i]);
  }
  bool any_models = false;
  for (const LabelledReport& s : shards) {
    if (!s.report->per_model.empty()) any_models = true;
  }
  if (any_models) {
    os << "# HELP lbnn_model_requests_total Completed requests per model\n";
    os << "# TYPE lbnn_model_requests_total counter\n";
    os << "# HELP lbnn_model_latency_us_p99 Per-model request latency p99 (us)\n";
    os << "# TYPE lbnn_model_latency_us_p99 gauge\n";
    os << "# HELP lbnn_model_shed_total Admission rejections per model\n";
    os << "# TYPE lbnn_model_shed_total counter\n";
    os << "# HELP lbnn_model_expired_total Dequeue expiries per model\n";
    os << "# TYPE lbnn_model_expired_total counter\n";
    os << "# HELP lbnn_model_goodput_per_sec On-deadline completions per second per model\n";
    os << "# TYPE lbnn_model_goodput_per_sec gauge\n";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      for (const ModelReport& m : shards[i].report->per_model) {
        auto label = [&](const char* name) -> std::ostream& {
          os << name << "{model=\"";
          escape_label(os, m.name);
          os << "\"" << tail[i] << "} ";
          return os;
        };
        label("lbnn_model_requests_total") << m.requests << "\n";
        label("lbnn_model_latency_us_p99") << m.p99_latency_us << "\n";
        label("lbnn_model_shed_total") << m.shed << "\n";
        label("lbnn_model_expired_total") << m.expired << "\n";
        label("lbnn_model_goodput_per_sec") << m.goodput_per_sec << "\n";
      }
    }
  }
  return os.str();
}

std::string to_json(const ServeReport& r) {
  std::ostringstream os;
  os << "{";
  os << "\"requests\":" << r.requests << ",";
  os << "\"batches\":" << r.batches << ",";
  os << "\"samples\":" << r.samples << ",";
  os << "\"lanes_offered\":" << r.lanes_offered << ",";
  os << "\"lane_occupancy\":" << r.lane_occupancy << ",";
  os << "\"p50_latency_us\":" << r.p50_latency_us << ",";
  os << "\"p99_latency_us\":" << r.p99_latency_us << ",";
  os << "\"wall_seconds\":" << r.wall_seconds << ",";
  os << "\"requests_per_sec\":" << r.requests_per_sec << ",";
  os << "\"shed\":" << r.shed << ",";
  os << "\"expired\":" << r.expired << ",";
  os << "\"deadline_met\":" << r.deadline_met << ",";
  os << "\"goodput_per_sec\":" << r.goodput_per_sec << ",";
  os << "\"member_runs\":" << r.member_runs << ",";
  os << "\"member_runs_by_backend\":{";
  for (std::size_t b = 0; b < r.member_runs_by_backend.size(); ++b) {
    if (b > 0) os << ",";
    os << "\"" << to_string(static_cast<BackendKind>(b))
       << "\":" << r.member_runs_by_backend[b];
  }
  os << "},";
  os << "\"steals\":" << r.steals << ",";
  os << "\"hedges_launched\":" << r.hedges_launched << ",";
  os << "\"hedge_wins\":" << r.hedge_wins << ",";
  os << "\"hedge_wasted_us\":" << r.hedge_wasted_us << ",";
  os << "\"member_p50_us\":" << r.member_p50_us << ",";
  os << "\"member_p99_us\":" << r.member_p99_us << ",";
  os << "\"member_p50_exact_us\":" << r.member_p50_exact_us << ",";
  os << "\"member_p99_exact_us\":" << r.member_p99_exact_us << ",";
  os << "\"straggler_gap_p50_us\":" << r.straggler_gap_p50_us << ",";
  os << "\"straggler_gap_p99_us\":" << r.straggler_gap_p99_us << ",";
  os << "\"phases\":{";
  json_phase(os, "assembly_wait", r.phases.assembly_wait, true);
  json_phase(os, "queue_wait", r.phases.queue_wait, true);
  json_phase(os, "execution", r.phases.execution, true);
  json_phase(os, "finalize", r.phases.finalize, false);
  os << "},";
  os << "\"per_model\":[";
  for (std::size_t i = 0; i < r.per_model.size(); ++i) {
    const ModelReport& m = r.per_model[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    escape_json(os, m.name);
    os << "\",\"weight\":" << m.weight;
    os << ",\"queue_bound\":" << m.queue_bound;
    os << ",\"requests\":" << m.requests;
    os << ",\"batches\":" << m.batches;
    os << ",\"samples\":" << m.samples;
    os << ",\"lane_occupancy\":" << m.lane_occupancy;
    os << ",\"p50_latency_us\":" << m.p50_latency_us;
    os << ",\"p99_latency_us\":" << m.p99_latency_us;
    os << ",\"queue_depth_hwm\":" << m.queue_depth_hwm;
    os << ",\"shed\":" << m.shed;
    os << ",\"expired\":" << m.expired;
    os << ",\"deadline_met\":" << m.deadline_met;
    os << ",\"goodput_per_sec\":" << m.goodput_per_sec;
    os << ",\"member_runs\":" << m.member_runs;
    os << ",\"steals\":" << m.steals;
    os << ",\"hedges_launched\":" << m.hedges_launched;
    os << ",\"hedge_wins\":" << m.hedge_wins;
    os << ",\"hedge_wasted_us\":" << m.hedge_wasted_us;
    os << ",\"phases\":{";
    json_phase(os, "assembly_wait", m.phases.assembly_wait, true);
    json_phase(os, "queue_wait", m.phases.queue_wait, true);
    json_phase(os, "execution", m.phases.execution, true);
    json_phase(os, "finalize", m.phases.finalize, false);
    os << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace lbnn::runtime
