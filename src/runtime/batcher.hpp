#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bitvec.hpp"
#include "runtime/clock.hpp"

namespace lbnn::runtime {

/// One single-sample inference request: one Boolean per primary input going
/// in, one per primary output coming back through the promise.
struct Request {
  std::vector<bool> inputs;
  std::promise<std::vector<bool>> result;
  TimePoint enqueued;
  /// Engine-assigned request id (monotonic, never 0 when tracing): links the
  /// trace stream's submit event to this request's completion across threads.
  std::uint64_t id = 0;
  /// Absolute completion deadline; kNoDeadline when the client set none.
  TimePoint deadline = kNoDeadline;
  /// Set by the worker that finds the request already past its deadline at
  /// dequeue: the promise has been failed with DeadlineExceeded, finalize
  /// must not touch it again.
  bool expired = false;
};

/// Result-claim states of one member execution slot (MemberSlot::claim).
/// Forward-only: pending -> running (a worker claimed the member off the
/// batch cursor and started it) -> hedged (an idle worker launched a
/// speculative duplicate of the batch's last unfinished member) -> done
/// (exactly one executor won the result slot; the loser discards its
/// output). running -> done skips the hedged state when no duplicate was
/// ever launched.
enum class MemberClaim : std::uint8_t {
  kPending = 0,
  kRunning = 1,
  kHedged = 2,
  kDone = 3,
};

/// Per-member execution slot of a sealed batch. The engine dispatches one
/// work item per assembly member; the executor that WINS member i's result
/// claim fills slot i (disjoint indices, so no lock on the data plane — the
/// batch's completion latch orders every slot write before finalize reads
/// them for stats). The atomic fields are the hedging plane: they are the
/// only ones touched by more than one thread at a time (a hedger reads
/// started_at_us and CASes claim while the original executor runs).
struct MemberSlot {
  bool ran = false;           ///< the member's simulator actually executed
  bool stolen = false;        ///< executed by a worker other than the batch claimer
  bool hedge_won = false;     ///< the winning executor was the hedge duplicate
  /// BackendKind the winning executor ran (see lpu/backend.hpp) — scalar or
  /// sliced interpreter before an AOT promotion, native/threaded after it.
  std::uint8_t backend = 0;
  std::uint64_t service_us = 0;  ///< winner's simulator (+ member hook) service time
  std::int64_t done_at_us = 0;   ///< completion stamp; straggler gap = max - min

  /// Result-claim state machine; see MemberClaim. The winning transition to
  /// kDone is the exactly-once point: whoever makes it owns every plain
  /// field above, the outputs slice, and the completion-latch decrement.
  std::atomic<std::uint8_t> claim{static_cast<std::uint8_t>(MemberClaim::kPending)};
  /// When the first executor started (us since clock epoch); the hedge
  /// trigger compares it against hedge_factor x the service EWMA.
  std::atomic<std::int64_t> started_at_us{0};
  /// Set by the claim winner: tells the losing duplicate's simulator run to
  /// abandon the batch cooperatively (LpuSimulator::run's cancel flag).
  std::atomic<bool> cancel{false};

  MemberSlot() = default;
  /// Copyable for container pre-sizing only (Batcher::finish): slots are
  /// copied strictly before publication, never while executors race.
  MemberSlot(const MemberSlot& other) { *this = other; }
  MemberSlot& operator=(const MemberSlot& other) {
    ran = other.ran;
    stolen = other.stolen;
    hedge_won = other.hedge_won;
    backend = other.backend;
    service_us = other.service_us;
    done_at_us = other.done_at_us;
    claim.store(other.claim.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    started_at_us.store(other.started_at_us.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    cancel.store(other.cancel.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
};

/// A sealed batch, ready to run: 1 <= requests.size() <= lane capacity, with
/// one pre-sized execution slot per assembly member.
struct Batch {
  std::vector<Request> requests;
  std::vector<MemberSlot> member_slots;
};

/// Pack requests into the LPU's datapath words: request i becomes bit lane i
/// of every primary-input BitVec (the simulator is bit-sliced, so a partial
/// batch simply runs with a narrower word). Returns one BitVec per PI.
std::vector<BitVec> pack_requests(const std::vector<Request>& requests,
                                  std::size_t num_inputs);

/// Inverse of pack_requests on the output side: per-request output bits from
/// the simulator's per-PO BitVecs.
std::vector<std::vector<bool>> unpack_outputs(const std::vector<BitVec>& outputs,
                                              std::size_t num_requests);

/// Dynamic batching queue for one model.
///
/// submit() appends the request to the open batch. The batch seals — is
/// handed to `on_seal`, typically the engine's ready queue — when either
///   * it reaches `lane_capacity` requests (one per datapath bit lane), or
///   * the oldest request in it has waited `max_wait` (the engine's
///     timekeeper calls seal_if_expired()).
/// The lane-full path seals inside submit(), so a saturating client never
/// waits on the timer. Batcher owns no thread and never sleeps; all request
/// stamps come from the injected ClockSource, so tests drive sealing with a
/// ManualClock instead of real waits.
class Batcher {
 public:
  using SealFn = std::function<void(Batch&&)>;

  /// `num_members` is the model's assembly width: every sealed batch carries
  /// that many pre-initialized MemberSlots (1 for a single-LPU model).
  Batcher(ClockSource& clock, std::size_t num_inputs, std::size_t lane_capacity,
          std::size_t num_members, std::chrono::microseconds max_wait,
          SealFn on_seal);

  /// Throws lbnn::Error when input_bits.size() != num_inputs. `deadline` is
  /// stamped onto the request for the engine's expiry handling (kNoDeadline =
  /// none). When `opened_batch` is non-null it is set to whether this request
  /// started a new open batch (i.e. a new seal deadline now exists) — the
  /// engine only needs to re-arm its timekeeper in that case. `req_id` is the
  /// engine's trace id for this request (0 when tracing is off).
  std::future<std::vector<bool>> submit(std::vector<bool> input_bits,
                                        TimePoint deadline = kNoDeadline,
                                        bool* opened_batch = nullptr,
                                        std::uint64_t req_id = 0);

  /// Seal deadline of the currently open batch, if one is open.
  std::optional<TimePoint> deadline() const;

  /// Seal the open batch if its deadline has passed at `now`.
  void seal_if_expired(TimePoint now);

  /// Seal whatever is open regardless of deadline (shutdown / drain).
  void flush();

  /// Requests sitting in the open (not yet sealed) batch. Snapshot only — by
  /// the time the caller looks, a concurrent submit may have sealed it.
  std::size_t open_count() const;

  std::size_t lane_capacity() const { return lane_capacity_; }
  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_members() const { return num_members_; }

 private:
  /// Stamp member slots onto a batch about to be handed to on_seal_.
  Batch finish(std::vector<Request>&& requests) const;

  ClockSource& clock_;
  const std::size_t num_inputs_;
  const std::size_t lane_capacity_;
  const std::size_t num_members_;
  const std::chrono::microseconds max_wait_;
  const SealFn on_seal_;

  mutable std::mutex mu_;
  std::vector<Request> open_;
  TimePoint open_deadline_{};
};

}  // namespace lbnn::runtime
