#include "runtime/batcher.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace lbnn::runtime {

std::vector<BitVec> pack_requests(const std::vector<Request>& requests,
                                  std::size_t num_inputs) {
  std::vector<BitVec> packed(num_inputs, BitVec(requests.size()));
  for (std::size_t lane = 0; lane < requests.size(); ++lane) {
    const auto& bits = requests[lane].inputs;
    LBNN_CHECK(bits.size() == num_inputs, "request input arity mismatch");
    for (std::size_t pi = 0; pi < num_inputs; ++pi) {
      if (bits[pi]) packed[pi].set(lane, true);
    }
  }
  return packed;
}

std::vector<std::vector<bool>> unpack_outputs(const std::vector<BitVec>& outputs,
                                              std::size_t num_requests) {
  std::vector<std::vector<bool>> per_request(
      num_requests, std::vector<bool>(outputs.size(), false));
  for (std::size_t po = 0; po < outputs.size(); ++po) {
    LBNN_CHECK(outputs[po].width() >= num_requests, "output word narrower than batch");
    for (std::size_t lane = 0; lane < num_requests; ++lane) {
      per_request[lane][po] = outputs[po].get(lane);
    }
  }
  return per_request;
}

Batcher::Batcher(ClockSource& clock, std::size_t num_inputs,
                 std::size_t lane_capacity, std::size_t num_members,
                 std::chrono::microseconds max_wait, SealFn on_seal)
    : clock_(clock),
      num_inputs_(num_inputs),
      lane_capacity_(lane_capacity),
      num_members_(num_members),
      max_wait_(max_wait),
      on_seal_(std::move(on_seal)) {
  LBNN_CHECK(lane_capacity_ > 0, "batcher needs at least one lane");
  LBNN_CHECK(num_members_ > 0, "batcher needs at least one assembly member");
  LBNN_CHECK(on_seal_ != nullptr, "batcher needs a seal sink");
}

Batch Batcher::finish(std::vector<Request>&& requests) const {
  Batch sealed;
  sealed.requests = std::move(requests);
  sealed.member_slots.assign(num_members_, MemberSlot{});
  return sealed;
}

std::future<std::vector<bool>> Batcher::submit(std::vector<bool> input_bits,
                                               TimePoint deadline,
                                               bool* opened_batch,
                                               std::uint64_t req_id) {
  if (input_bits.size() != num_inputs_) {
    throw Error("request has " + std::to_string(input_bits.size()) +
                " input bits, model expects " + std::to_string(num_inputs_));
  }
  Request req;
  req.inputs = std::move(input_bits);
  req.enqueued = clock_.now();
  req.deadline = deadline;
  req.id = req_id;
  std::future<std::vector<bool>> fut = req.result.get_future();

  std::vector<Request> full;
  bool opened = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (open_.empty()) {
      open_deadline_ = req.enqueued + max_wait_;
      opened = true;
    }
    open_.push_back(std::move(req));
    if (open_.size() >= lane_capacity_) {
      full.swap(open_);
      opened = false;  // sealed inline; no deadline left to watch
    }
  }
  if (opened_batch != nullptr) *opened_batch = opened;
  // Seal outside the lock: on_seal_ feeds a queue that wakes workers, and a
  // worker must never contend with submitters on the batcher mutex.
  if (!full.empty()) on_seal_(finish(std::move(full)));
  return fut;
}

std::size_t Batcher::open_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return open_.size();
}

std::optional<TimePoint> Batcher::deadline() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (open_.empty()) return std::nullopt;
  return open_deadline_;
}

void Batcher::seal_if_expired(TimePoint now) {
  std::vector<Request> expired;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (open_.empty() || now < open_deadline_) return;
    expired.swap(open_);
  }
  on_seal_(finish(std::move(expired)));
}

void Batcher::flush() {
  std::vector<Request> open;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (open_.empty()) return;
    open.swap(open_);
  }
  on_seal_(finish(std::move(open)));
}

}  // namespace lbnn::runtime
