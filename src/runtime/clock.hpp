#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace lbnn::runtime {

/// All runtime timing is expressed against std::chrono::steady_clock's
/// representation, whichever ClockSource produces the values.
using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;

/// Sentinel for "no deadline" on a request.
constexpr TimePoint kNoDeadline = TimePoint::max();

/// Time source seam for the serving runtime. Everything that stamps, compares
/// or sleeps on time (Batcher deadlines, Engine admission estimates, ServeStats
/// latency/goodput, the timekeeper thread) goes through one of these, so tests
/// can drive a ManualClock instead of sleeping on the wall clock.
///
/// Implementations must be safe to call from any thread.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  virtual TimePoint now() const = 0;

  /// Sleep on `cv` (with `lk` held, as usual) until `deadline` by THIS clock
  /// or until `pred()` holds. SystemClock maps straight onto cv.wait_until;
  /// ManualClock parks until advance()/set() moves time past the deadline —
  /// no real time passes while the manual clock stands still. Returns pred()
  /// at wakeup, mirroring condition_variable::wait_until.
  template <typename Pred>
  bool wait_until(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                  TimePoint deadline, Pred pred) {
    while (!pred() && now() < deadline) {
      if (!wait_step(lk, cv, deadline)) break;  // deadline reached
    }
    return pred();
  }

 protected:
  /// One bounded wait on `cv`. Returns false once `deadline` has been reached
  /// by this clock (the caller's loop then exits), true to re-check the
  /// predicate after a wakeup.
  virtual bool wait_step(std::unique_lock<std::mutex>& lk,
                         std::condition_variable& cv, TimePoint deadline) = 0;
};

/// The production clock: std::chrono::steady_clock.
class SystemClock final : public ClockSource {
 public:
  TimePoint now() const override { return std::chrono::steady_clock::now(); }

  /// Shared process-wide instance (stateless).
  static SystemClock& instance() {
    static SystemClock clock;
    return clock;
  }

 protected:
  bool wait_step(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                 TimePoint deadline) override {
    return cv.wait_until(lk, deadline) != std::cv_status::timeout;
  }
};

/// Deterministic test clock: time only moves when the test calls advance() or
/// set(). Sleepers registered through wait_until() are woken on every time
/// change, so a test can drive "the batch timeout fires" as one advance()
/// call with zero real sleeping.
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint now() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return now_;
  }

  void advance(Duration d) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      now_ += d;
    }
    wake_sleepers();
  }

  void set(TimePoint t) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      now_ = t;
    }
    wake_sleepers();
  }

 protected:
  bool wait_step(std::unique_lock<std::mutex>& lk, std::condition_variable& cv,
                 TimePoint deadline) override {
    {
      std::lock_guard<std::mutex> reg(mu_);
      // The now_ check and the registration are one critical section: a
      // concurrent advance() either already moved time (we see it here and
      // never sleep) or will find this registration in its snapshot.
      if (now_ >= deadline) return false;
      sleepers_.push_back({&cv, lk.mutex()});
    }
    cv.wait(lk);  // woken by the caller's own notify OR by advance()/set()
    {
      std::lock_guard<std::mutex> reg(mu_);
      for (auto it = sleepers_.begin(); it != sleepers_.end(); ++it) {
        if (it->cv == &cv) {
          sleepers_.erase(it);
          break;
        }
      }
      return now_ < deadline;
    }
  }

 private:
  struct Sleeper {
    std::condition_variable* cv;
    std::mutex* mu;  ///< the mutex the sleeper's unique_lock holds
  };

  void wake_sleepers() {
    // Snapshot under mu_, notify outside it (a woken sleeper re-locks mu_ to
    // deregister — holding it here would deadlock). Locking each sleeper's
    // own mutex first closes the lost-wakeup window: a registered sleeper
    // holds that mutex from registration until it parks inside cv.wait, so
    // by the time we acquire it the sleeper is parked and the notify lands.
    std::vector<Sleeper> sleepers;
    {
      std::lock_guard<std::mutex> lk(mu_);
      sleepers = sleepers_;
    }
    for (const Sleeper& s : sleepers) {
      { std::lock_guard<std::mutex> sync(*s.mu); }
      s.cv->notify_all();
    }
  }

  mutable std::mutex mu_;
  TimePoint now_{};
  std::vector<Sleeper> sleepers_;
};

}  // namespace lbnn::runtime
