#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "netlist/netlist.hpp"
#include "runtime/batcher.hpp"
#include "runtime/clock.hpp"
#include "runtime/program_cache.hpp"
#include "runtime/serve_stats.hpp"
#include "runtime/trace.hpp"

namespace lbnn::runtime {

/// Outcome of a non-blocking admission attempt.
enum class SubmitStatus : std::uint8_t {
  kAccepted,            ///< request admitted; the future will resolve
  kQueueFull,           ///< the model's queue bound is reached; try again later
  kUnloaded,            ///< the handle's model has been unloaded from this engine
  kShuttingDown,        ///< the engine is shutting down
  kDeadlineUnmeetable,  ///< estimated queue drain time already exceeds the
                        ///< request's deadline; accepting it would be dead work
};

const char* to_string(SubmitStatus status);

/// Per-model serving options, fixed at load time.
struct ModelOptions {
  /// Maximum outstanding (accepted but unanswered) requests for this model.
  /// submit() blocks when the bound is reached — real backpressure instead of
  /// unbounded in-flight growth — and try_submit() returns kQueueFull.
  /// 0 means the engine default (EngineOptions::default_queue_bound).
  std::size_t queue_bound = 0;
  /// Weighted-fair share of worker time relative to the other loaded models
  /// (stride scheduling): with both backlogged, a weight-4 model is
  /// dispatched 4x as often as a weight-1 model. 0 is treated as 1.
  std::uint32_t weight = 1;
  /// SLO for requests submitted without an explicit deadline: each gets
  /// `admission time + default_deadline` as its absolute deadline. 0 (the
  /// default) means such requests never expire. An explicit per-submit
  /// deadline always wins over this.
  std::chrono::microseconds default_deadline{0};
};

/// Deadline-admission estimate, factored out for deterministic unit testing:
/// with `items_ahead` dispatchable work items queued, a per-item service-time
/// EWMA of `ewma_item_us`, and `workers` draining in parallel, would the
/// request certainly miss `deadline`? Optimistic on purpose (assumes all
/// workers drain this model's queue): shedding only fires when the request is
/// doomed even in the best case, so accepted work is never rejected
/// spuriously. An ewma of 0 means "no signal yet" — never shed on it.
bool deadline_unmeetable(TimePoint deadline, TimePoint now,
                         std::uint64_t ewma_item_us, std::size_t items_ahead,
                         std::size_t workers);

/// Read-only admission-plane snapshot of one loaded model, for routing layers
/// (see src/router/): the same counters admission shedding keys off, sampled
/// from the atomics the submit path maintains (plus one short lock for
/// `outstanding`) — never the scheduler lock. A router compares
/// drain_estimate_us() across replicas instead of re-deriving its own EWMA.
struct ModelProbe {
  bool loaded = false;             ///< false once unload() began on the model
  std::size_t queued_items = 0;    ///< unclaimed member items in sealed batches
  std::size_t outstanding = 0;     ///< accepted, not yet answered requests
  std::size_t members = 0;         ///< assembly width (work items per batch)
  std::uint64_t ewma_item_us = 0;  ///< per-item service EWMA (0 = no signal)
  std::size_t workers = 0;         ///< the engine's worker-thread count
  /// Best-case drain time (us) of the work a new request would queue behind —
  /// the exact quantity admission shedding tests against the deadline (see
  /// deadline_unmeetable): ewma * ceil((queued_items + members) / workers).
  /// 0 when the model has no service signal yet.
  std::uint64_t drain_estimate_us() const;
};

struct ModelState;  // internal; defined in engine.cpp

/// Ref-counted reference to a model loaded into an Engine. Copyable and
/// cheap; the last copy (together with the engine's registry entry) keeps the
/// compiled program alive, so a handle held across unload() never dangles —
/// submits to it just fail with kUnloaded. A default-constructed handle is
/// empty. Handles are engine-specific: passing one to a different Engine
/// throws.
class ModelHandle {
 public:
  ModelHandle() = default;

  explicit operator bool() const { return state_ != nullptr; }
  const std::string& name() const;
  std::size_t num_inputs() const;
  std::size_t num_outputs() const;
  std::uint32_t weight() const;
  std::size_t queue_bound() const;
  /// False once unload() has begun on this model (submits will be rejected).
  bool loaded() const;

 private:
  friend class Engine;
  explicit ModelHandle(std::shared_ptr<ModelState> state) : state_(std::move(state)) {}
  std::shared_ptr<ModelState> state_;
};

struct EngineOptions {
  /// Worker threads, each owning its own LpuSimulators. 0 means
  /// hardware_concurrency (min 1).
  std::uint32_t num_workers = 0;
  /// How long a partial batch may wait for more requests before it runs.
  std::chrono::microseconds batch_timeout{200};
  /// Compiled-program LRU capacity (shared across all loads). 0 makes the
  /// cache a pass-through (compile, don't retain).
  std::size_t cache_capacity = 16;
  /// Compile flow configuration for every load call.
  CompileOptions compile;
  /// How workers pick among models with queued work.
  enum class Scheduling : std::uint8_t {
    /// Stride scheduling over ModelOptions::weight: backlogged heavy models
    /// cannot starve light ones (the v2 default).
    kWeightedFair,
    /// Oldest sealed batch first across all models — the PR 1 single global
    /// ready queue, kept as the fairness baseline (see bench/serve_fairness).
    kGlobalFifo,
  };
  Scheduling scheduling = Scheduling::kWeightedFair;
  /// Member-level work stealing: the worker that dequeues a batch claims its
  /// assembly members one at a time from an atomic cursor, and idle workers
  /// steal the remaining members before sleeping — a slow member no longer
  /// serializes its siblings, and one wide batch can use every core. false
  /// reverts to monolithic dispatch (the dequeuing worker runs every member
  /// itself), kept as the baseline for bench/serve_stealing.
  bool member_stealing = true;
  /// Speculative straggler hedging: stealing moves unstarted work, it cannot
  /// shorten a member that is already running slowly. When an in-flight
  /// batch is down to its LAST unfinished member and that member has been
  /// running longer than hedge_factor x the model's per-item service EWMA,
  /// an idle worker (nothing to dispatch or steal) launches a duplicate
  /// execution of it. The first copy to finish wins the member's result slot
  /// via an atomic claim (MemberSlot::claim); the loser's output is
  /// discarded and its simulator run is cancelled cooperatively, so results
  /// are bit-exact with single execution either way. A duplicate is pure
  /// redundancy: it never inflates queued_items, the drain estimate, or
  /// member_runs. Hedging needs a service signal — a model whose EWMA is
  /// still 0 (cold start) is never hedged. false disables (the steal-only
  /// baseline of bench/serve_hedging).
  bool hedging = true;
  /// Straggler threshold: hedge once the last member's running time exceeds
  /// hedge_factor x the per-item service EWMA. 0 is treated as 1.
  std::uint32_t hedge_factor = 4;
  /// Bit-sliced SIMD member execution: worker simulators run the packed
  /// word/AVX2 gate kernel (64-256 batch samples per gate op, flat scratch
  /// arena, runtime CPU dispatch — see lbnn::SimdKernel) instead of the
  /// BitVec-at-a-time scalar interpreter. Bit-exact either way; false keeps
  /// the scalar oracle as the baseline for bench/serve_simd, the same
  /// pattern as member_stealing=false / hedging=false. The
  /// LBNN_FORCE_SCALAR / LBNN_NO_AVX2 environment overrides apply on top
  /// (CI's forced-fallback legs).
  bool simd = true;
  /// AOT-compiled member execution behind the executor seam. Each load also
  /// kicks off a background codegen job (overlapping serving — requests run
  /// on the bit-sliced interpreter meanwhile) that lowers every member's
  /// replay stream to straight-line native code, compiles it out of process,
  /// and dlopens the artifact; where that is unavailable or fails, a portable
  /// direct-threaded artifact is built instead. Once an artifact is ready the
  /// member PROMOTES to it atomically between runs — zero dropped or
  /// double-executed requests, bit-exact outputs/counters/errors either way.
  /// Requires simd (artifacts execute the sliced stream); LBNN_FORCE_AOT=1
  /// forces this on, LBNN_NO_AOT=1 forces it off, LBNN_AOT_THREADED=1 pins
  /// the threaded leg, LBNN_AOT_CXX overrides the spawned compiler.
  bool aot = false;
  /// AOT artifact directory: codegen scratch plus the content-keyed disk
  /// cache. A restarted (or sibling) engine pointed at the same directory
  /// reloads artifacts instead of recompiling — the warm-restart path; the
  /// atomic publish protocol makes concurrent writers safe. Empty means a
  /// private per-process temp directory, removed at shutdown.
  std::string artifact_dir;
  /// ModelOptions::queue_bound fallback when a load leaves it 0; 0 here means
  /// 4x the model's lane capacity (a few batches of headroom).
  std::size_t default_queue_bound = 0;
  /// Time source for every runtime stamp (batch seal deadlines, request
  /// deadlines, latency/goodput accounting, idle eviction). nullptr means the
  /// system steady clock; tests inject a ManualClock for deterministic
  /// timing. Must outlive the engine.
  ClockSource* clock = nullptr;
  /// Request-lifecycle tracing (always compiled, off by default): every
  /// lifecycle transition — submit, admit/shed, seal, enqueue, dispatch,
  /// member claim/steal, hedge launch/win/cancel, expiry, finalize — lands as
  /// a typed event in per-worker bounded ring buffers, timestamped via the
  /// engine clock (ManualClock tests replay exact sequences). Off, the only
  /// cost is a null-pointer check per site. See Engine::export_trace /
  /// drain_trace. The LBNN_FORCE_TRACING environment variable turns this on
  /// regardless (CI runs the test suites with it to race-check the rings).
  bool tracing = false;
  /// Per-ring trace capacity in events (rounded up to a power of two). A
  /// full ring drops new events and counts them — tracing never blocks or
  /// backpressures the hot path.
  std::size_t trace_ring_capacity = 8192;
};

/// Batched multi-threaded serving engine over the LPU toolchain.
///
/// Layering: the compiler turns a netlist into an immutable Program; each
/// worker thread wraps the shared Program in its own LpuSimulator (simulators
/// carry per-run scratch state, programs are read-only); a per-model Batcher
/// packs single-sample requests into the 2m bit lanes of one datapath word;
/// sealed batches land in their model's bounded ready queue, and workers pick
/// the next queue by weighted-fair (stride) scheduling — so a backlogged
/// heavy model cannot starve light ones, and each model's admission bound
/// exerts backpressure on its own clients only. For multi-LPU models every
/// assembly member is an independently claimable work item: the dequeuing
/// worker claims members from the batch's atomic cursor while idle workers
/// steal the rest (EngineOptions::member_stealing), so one straggling member
/// cannot serialize its batch. When even the last member is already running
/// but slow, idle workers speculatively duplicate it
/// (EngineOptions::hedging): the first copy to finish wins the member's
/// result slot atomically and the loser is cancelled — migration moves work,
/// hedging shortens it.
///
/// Lifecycle: load() / load_parallel() / load_async() return ref-counted
/// ModelHandles; unload() (or evict_idle()) drains a model's outstanding
/// work, releases its program-cache pin, and shrinks the registry. A handle
/// kept across unload stays safe — it pins the compiled artifact and reports
/// loaded() == false.
///
/// Thread-safety: every public method may be called from any thread.
/// Destruction drains in-flight work, then joins all threads.
class Engine {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Compile (or fetch from the program cache — concurrent loads of distinct
  /// models compile in parallel, same-key loads dedup) and register a model.
  ModelHandle load(const std::string& name, const Netlist& nl,
                   const ModelOptions& mopt = {});

  /// Same, but compiled as a `parallel_lpus`-way parallel LPU assembly
  /// (Sec. III); each member runs as an independent work item.
  ModelHandle load_parallel(const std::string& name, const Netlist& nl,
                            std::uint32_t parallel_lpus,
                            const ModelOptions& mopt = {});

  /// load() on a background thread; the future rethrows compile errors. The
  /// engine must outlive the returned future's completion.
  std::future<ModelHandle> load_async(std::string name, Netlist nl,
                                      ModelOptions mopt = {});

  /// Submit one sample (one Boolean per primary input). The future resolves
  /// to one Boolean per primary output once the sample's batch has run.
  /// Blocks while the model's queue bound is reached (backpressure). Throws
  /// lbnn::Error on an empty/foreign handle, arity mismatch, unloaded model,
  /// or engine shutdown — and DeadlineExceeded when the model's estimated
  /// drain time already exceeds the deadline (admission shedding). The
  /// request's deadline is `deadline` if given, else admission time +
  /// ModelOptions::default_deadline when that is set, else none. A request
  /// still queued past its deadline is dropped at dequeue: its future fails
  /// with DeadlineExceeded instead of simulating dead work.
  std::future<std::vector<bool>> submit(const ModelHandle& model,
                                        std::vector<bool> inputs,
                                        TimePoint deadline = kNoDeadline);

  /// Non-blocking submit: never waits for queue space. On kAccepted, *result
  /// holds the future; any other status (kQueueFull, kDeadlineUnmeetable on a
  /// doomed deadline, ...) leaves *result untouched. Throws only on usage
  /// bugs (empty/foreign handle, arity mismatch). Deadline semantics as in
  /// submit().
  SubmitStatus try_submit(const ModelHandle& model, std::vector<bool> inputs,
                          std::future<std::vector<bool>>* result,
                          TimePoint deadline = kNoDeadline);

  /// Stop admitting to this model, drain its outstanding requests (every
  /// accepted future still resolves), release its program-cache pin, and
  /// remove it from the registry. Blocks until the drain completes. Returns
  /// false if the handle is empty or the model was already unloaded
  /// (concurrent unloads: exactly one caller gets true).
  bool unload(const ModelHandle& model);

  /// Dynamically re-weight a loaded model's share of the stride scheduler
  /// (ModelOptions::weight fixes only the initial share). Takes effect on the
  /// next scheduler pop: the model's pending credit is re-priced at the new
  /// stride, so a re-weighted model neither jumps the queue nor keeps paying
  /// old debt at the old rate. Weight 0 clamps to 1. This is the canary
  /// lever — grow a new version's share as an alias split moves traffic
  /// toward it (see serve::BasicAliasTable). Throws on an empty/foreign
  /// handle; returns false if the model is already unloaded.
  bool set_weight(const ModelHandle& model, std::uint32_t weight);

  /// unload() every model whose last accepted request (or load) is at least
  /// `min_idle` old. The duration is interpreted on the engine's injected
  /// ClockSource domain — the domain that stamps last-use — so under a
  /// ManualClock "idle" means advance()d time, never wall time, and eviction
  /// policy is deterministic in tests. Returns how many models were evicted.
  std::size_t evict_idle(Duration min_idle);

  /// Seal all partial batches and block until every accepted request has
  /// been answered.
  void drain();

  /// drain(), then stop and join all threads. Idempotent; the destructor
  /// calls it.
  void shutdown();

  ServeReport report() const;

  /// Reset the aggregate serving statistics (counters, histograms, exact
  /// member samples, and the wall-clock origin of requests_per_sec).
  /// Per-model statistics keep counting. Benches call this after warmup so
  /// steady-state percentiles are not polluted by one-time construction
  /// spikes (each worker builds its simulators lazily, inside the timed
  /// member region, on its first run of a program).
  void reset_stats() { stats_.reset(); }

  /// Render the drained trace stream as Chrome trace-event JSON — loadable
  /// in chrome://tracing or Perfetto. One track per worker plus a "clients"
  /// track, member executions as duration slices, flow arrows linking each
  /// request from submit to completion. Draining consumes the buffered
  /// events; with tracing off this writes an empty (still valid) trace.
  void export_trace(std::ostream& os);
  /// Events-only form for multiplexing several engines into one Chrome trace:
  /// appends this engine's drained events to an already-open traceEvents
  /// array, tagging every event with `pid` (the Router renders each shard as
  /// its own process, named `process_name`). `*first` is the caller's
  /// comma-separator state, shared across engines. Returns the events dropped
  /// by this engine's rings; a no-op returning 0 with tracing off.
  std::uint64_t export_trace_events(std::ostream& os, int pid,
                                    const std::string& process_name,
                                    bool* first);
  /// Drain the raw event stream in global emission order (empty when tracing
  /// is off). The ManualClock determinism tests assert on this directly.
  std::vector<TraceEvent> drain_trace();
  /// Events lost to full rings since construction (0 when tracing is off).
  std::uint64_t trace_dropped() const;
  bool tracing_enabled() const { return tracer_ != nullptr; }
  /// Display name for a trace event's model_id; names of unloaded models are
  /// retained. Empty when tracing is off.
  std::string trace_model_name(std::uint64_t model_id) const;

  /// report() rendered in Prometheus text exposition format (scrape body);
  /// metric names are documented in README "Observability". Works with
  /// tracing off — the counters feed from the stats plane, not the rings.
  std::string metrics_prometheus() const;
  /// report() rendered as JSON (same field names as ServeReport).
  std::string metrics_json() const;

  /// Sample a model's admission-plane counters (see ModelProbe). Throws on an
  /// empty or foreign handle, like submit() does; probing an unloaded model is
  /// fine (loaded == false, counters drain toward zero).
  ModelProbe probe(const ModelHandle& model) const;
  /// Accepted-but-unanswered requests across every model — a cheap
  /// whole-engine load signal for replica-placement decisions.
  std::size_t in_flight() const;

  /// Block until every background AOT codegen job spawned by loads so far
  /// has finished (each member either promoted to its artifact or fell back
  /// to the threaded leg). Immediate when AOT is off. Tests and benches pin
  /// the promotion instant with this instead of sleeping.
  void wait_aot_ready();
  /// Whether loads spawn AOT codegen (EngineOptions::aot / LBNN_FORCE_AOT,
  /// minus the LBNN_NO_AOT and scalar-pin overrides).
  bool aot_enabled() const { return aot_enabled_; }
  /// The resolved artifact directory; empty when AOT is off.
  const std::string& artifact_dir() const { return artifact_dir_; }

  CacheStats cache_stats() const { return cache_.stats(); }
  /// The engine's program cache, exposed for instrumentation (compile hooks
  /// in tests) and operational eviction.
  ProgramCache& program_cache() { return cache_; }
  std::size_t num_workers() const { return workers_.size(); }
  std::size_t num_models() const;
  /// The engine's time source (the injected one, or the system clock).
  ClockSource& clock() const { return *clock_; }

  /// Test instrumentation, mirroring ProgramCache::set_compile_hook: called
  /// by a worker with the model's name right after it dequeues a batch from
  /// the scheduler (no engine lock held — a blocking hook stalls that worker,
  /// nothing else; member steals do NOT fire it, so a gated claimer's batch
  /// can still be finished by stealers). With one worker the call order IS
  /// the dispatch order, which makes the stride scheduler's drain order
  /// directly assertable. nullptr clears.
  void set_dispatch_hook(std::function<void(const std::string&)> hook);

  /// Called with (model name, member index, is_hedge_duplicate) right before
  /// a member's simulator run, by whichever worker runs it (claimer, stealer,
  /// or hedger; the flag is true only for the speculative duplicate of a
  /// hedged member), no locks held. The time a hook spends is charged to the
  /// executor's service time, so benches inject per-member straggler delays
  /// with it and ManualClock tests teach the admission EWMA deterministically
  /// by advancing the clock inside it — or gate original and duplicate at the
  /// result-claim race exactly. nullptr clears.
  void set_member_hook(
      std::function<void(const std::string&, std::size_t, bool)> hook);

  /// Called by evict_idle() with a model's name after the model passed the
  /// idle checks (stale last-use, zero outstanding) and before its unload()
  /// begins — the window where a concurrent admission can still land. Test
  /// instrumentation for the admission-vs-evict race: anything admitted in
  /// the window must still be served by unload's drain. nullptr clears.
  void set_evict_hook(std::function<void(const std::string&)> hook);

 private:
  friend struct ModelState;  // embeds a deque of ready batches

  struct BatchWork;
  struct Impl;
  /// Worker-thread-local execution state: the simulator cache (keyed by the
  /// shared read-only Program) and its pruning position in the retired list.
  struct WorkerContext;
  using MemberHook = std::function<void(const std::string&, std::size_t, bool)>;

  /// `track` is the worker's trace ring index (1 + worker index; 0 is the
  /// shared off-worker ring).
  void worker_loop(std::size_t track);
  void timer_loop();
  ModelHandle register_model(std::shared_ptr<ModelState> state,
                             std::size_t lane_capacity,
                             const ModelOptions& mopt);
  ModelState* state_of(const ModelHandle& handle) const;
  std::future<std::vector<bool>> dispatch_admitted(ModelState* m,
                                                   std::vector<bool>&& inputs,
                                                   TimePoint deadline,
                                                   std::uint64_t req_id);
  /// Null-check-and-emit: one call per lifecycle transition site. With
  /// tracing off this is a single branch.
  void emit_trace(std::size_t track, TraceEventType type, std::uint64_t model_id,
                  std::uint64_t id, std::uint32_t member = 0,
                  std::uint64_t arg = 0, std::uint8_t flags = 0);
  /// Execute one copy of a batch member: expired-request settling (first
  /// claimant), simulator run, the atomic result claim (under hedging two
  /// copies of the same member race it; only the winner writes the slot,
  /// outputs, EWMA, and stats), and the completion latch (the last member to
  /// finish finalizes the batch). `hedge` marks the speculative duplicate of
  /// a straggling member — it skips expiry settling (the original already
  /// did it) and records the hedge ledger instead.
  void run_member(BatchWork& work, std::size_t member, bool stolen, bool hedge,
                  WorkerContext& ctx,
                  const std::shared_ptr<const MemberHook>& hook);
  /// Claim one unclaimed member from an in-flight batch, pruning exhausted
  /// entries. Called with queue_mu held; returns false when nothing is
  /// stealable.
  bool try_steal_locked(std::shared_ptr<BatchWork>* work, std::size_t* member);
  /// Drop exhausted batch husks from the stealable list. Called with
  /// queue_mu held on every scheduler pop — under sustained load workers
  /// never reach the steal phase, and without this sweep every finished
  /// multi-member batch would stay pinned (requests, packed lanes, and its
  /// model's state) for the whole busy period.
  void prune_stealable_locked();
  /// Drop finalized husks (members_left == 0) from the hedgeable list.
  /// Called with queue_mu held on scheduler pops and before hedge scans —
  /// the same growth-bound rationale as prune_stealable_locked.
  void prune_hedgeable_locked();
  /// Hedge-candidate scan, called with queue_mu held by a worker with
  /// nothing to dispatch or steal. Finds an in-flight batch whose LAST
  /// unfinished member (members_left == 1, every member claimed) has been
  /// running past its hedge trigger (hedge_factor x the model's service
  /// EWMA, timed by the injected clock) and CASes its slot kRunning ->
  /// kHedged — at most one duplicate per member, ever. Returns true with the
  /// batch/member to duplicate; otherwise sets *next_due to the earliest
  /// future trigger among current candidates (kNoDeadline when none), so the
  /// caller can sleep until exactly then. Prunes finalized husks.
  bool try_hedge_locked(TimePoint now, std::shared_ptr<BatchWork>* work,
                        std::size_t* member, TimePoint* next_due);
  /// Fail already-expired requests of a just-claimed batch (first member
  /// only); returns whether any live request remains to simulate. `track` is
  /// the settling worker's trace ring.
  bool drop_expired_requests(BatchWork& work, std::size_t track);
  void enqueue_batch(ModelState& model, Batch&& batch);
  /// Launch the background codegen job for a freshly registered model (no-op
  /// after shutdown began). The job holds the ModelState shared_ptr, so an
  /// unload racing an in-flight codegen never frees state under it — the
  /// late promotion just lands on a model nobody serves anymore.
  void spawn_aot_jobs(std::shared_ptr<ModelState> state);
  /// The job body: per member, build (or reload) the artifact through the
  /// program cache and promote the member to it via an atomic store.
  void aot_build_model(ModelState& m);
  void finalize(BatchWork& work, std::size_t track);
  void release_requests(std::size_t n);
  /// Keep-alive snapshot of all loaded models (sealing, draining, reporting
  /// happen outside models_mu; an unload cannot free state under us).
  std::vector<std::shared_ptr<ModelState>> model_snapshot() const;

  EngineOptions options_;
  bool aot_enabled_ = false;  ///< options_.aot resolved against the env pins
  bool aot_avx2_ = false;     ///< compile artifacts for AVX2 (part of the key)
  /// Resolved EngineOptions::artifact_dir; owned (created at construction,
  /// removed at shutdown) when the option was empty.
  std::string artifact_dir_;
  bool own_artifact_dir_ = false;
  ClockSource* clock_;  ///< options_.clock or the shared SystemClock
  ProgramCache cache_;
  ServeStats stats_;
  /// Non-null iff tracing is on (EngineOptions::tracing or
  /// LBNN_FORCE_TRACING); created before the workers spawn, destroyed after
  /// they join, so emission sites need no lifetime checks beyond null.
  std::unique_ptr<Tracer> tracer_;

  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
  std::thread timer_;
};

}  // namespace lbnn::runtime
