#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "netlist/netlist.hpp"
#include "runtime/batcher.hpp"
#include "runtime/program_cache.hpp"
#include "runtime/serve_stats.hpp"

namespace lbnn::runtime {

using ModelId = std::uint32_t;

struct EngineOptions {
  /// Worker threads, each owning its own LpuSimulators. 0 means
  /// hardware_concurrency (min 1).
  std::uint32_t num_workers = 0;
  /// How long a partial batch may wait for more requests before it runs.
  std::chrono::microseconds batch_timeout{200};
  /// Compiled-program LRU capacity (shared across all loads).
  std::size_t cache_capacity = 16;
  /// Compile flow configuration for every load_model call.
  CompileOptions compile;
};

/// Batched multi-threaded serving engine over the LPU toolchain.
///
/// Layering: the compiler turns a netlist into an immutable Program; each
/// worker thread wraps the shared Program in its own LpuSimulator (simulators
/// carry per-run scratch state, programs are read-only); a per-model Batcher
/// packs single-sample requests into the 2m bit lanes of one datapath word;
/// sealed batches go to a single ready queue that idle workers pull from —
/// pull scheduling IS least-loaded dispatch, across workers and, for
/// multi-LPU models, across the assembly's members (each member of a batch is
/// an independently pullable work item).
///
/// Thread-safety: every public method may be called from any thread.
/// Destruction drains in-flight work, then joins all threads.
class Engine {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Compile (or fetch from the program cache) and register a model.
  ModelId load_model(const std::string& name, const Netlist& nl);

  /// Same, but compiled as a `parallel_lpus`-way parallel LPU assembly
  /// (Sec. III); each member runs as an independent work item.
  ModelId load_model_parallel(const std::string& name, const Netlist& nl,
                              std::uint32_t parallel_lpus);

  /// Submit one sample (one Boolean per primary input). The future resolves
  /// to one Boolean per primary output once the sample's batch has run.
  /// Throws lbnn::Error on unknown model, arity mismatch, or after shutdown.
  std::future<std::vector<bool>> submit(ModelId model, std::vector<bool> inputs);

  /// Seal all partial batches and block until every accepted request has
  /// been answered.
  void drain();

  /// drain(), then stop and join all threads. Idempotent; the destructor
  /// calls it.
  void shutdown();

  ServeReport report() const { return stats_.report(); }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t num_workers() const { return workers_.size(); }

  const std::string& model_name(ModelId model) const;

 private:
  struct LoadedModel;
  struct BatchWork;
  struct WorkItem;
  struct Impl;

  void worker_loop();
  void timer_loop();
  ModelId register_model(std::unique_ptr<LoadedModel> model,
                         std::size_t lane_capacity);
  void enqueue_batch(LoadedModel& model, Batch&& batch);
  void finalize(BatchWork& work);
  void release_requests(std::size_t n);
  LoadedModel& model_at(ModelId model) const;
  /// Stable Batcher pointers snapshot (models are append-only), so sealing
  /// and flushing can happen outside models_mu.
  std::vector<Batcher*> batchers() const;

  EngineOptions options_;
  ProgramCache cache_;
  ServeStats stats_;

  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
  std::thread timer_;
};

}  // namespace lbnn::runtime
