#include "runtime/engine.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "lpu/simulator.hpp"
#include "runtime/batcher.hpp"

namespace lbnn::runtime {

/// A registered model: the shared read-only compiled artifact(s) plus the
/// model's batching queue. Members are the units of dispatch — one for a
/// single-LPU model, one per assembly member for a parallel model.
struct Engine::LoadedModel {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;

  struct Member {
    const Program* program = nullptr;
    /// Index maps into the original PI/PO spaces; nullptr means identity
    /// (single-LPU models serve the whole netlist).
    const std::vector<std::uint32_t>* pi_indices = nullptr;
    const std::vector<std::uint32_t>* po_indices = nullptr;
  };
  std::vector<Member> members;

  /// Keep-alive for the Program pointers above; cache eviction must not
  /// invalidate a model that is still being served.
  std::shared_ptr<const CompileResult> single_owner;
  std::shared_ptr<const ParallelCompileResult> parallel_owner;

  std::unique_ptr<Batcher> batcher;
};

/// One sealed batch in flight. Members write disjoint slots of `outputs`
/// (their own po_indices), so no lock is needed on the data plane; the last
/// member to finish (members_left) finalizes.
struct Engine::BatchWork {
  LoadedModel* model = nullptr;
  std::vector<Request> requests;
  std::vector<BitVec> inputs;   ///< packed PIs, width == requests.size()
  std::vector<BitVec> outputs;  ///< original PO order
  std::atomic<std::size_t> members_left{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::string error;
};

struct Engine::WorkItem {
  std::shared_ptr<BatchWork> work;
  std::size_t member = 0;
};

struct Engine::Impl {
  mutable std::mutex models_mu;
  std::vector<std::unique_ptr<LoadedModel>> models;

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<WorkItem> queue;
  bool stopping = false;

  /// The timekeeper sleeps until the earliest open-batch deadline; submit
  /// bumps the epoch so a new (possibly earlier) deadline re-arms the wait.
  std::mutex timer_mu;
  std::condition_variable timer_cv;
  std::uint64_t timer_epoch = 0;
  bool timer_stop = false;

  std::atomic<std::size_t> in_flight{0};  ///< accepted, not yet answered
  std::mutex drain_mu;
  std::condition_variable drain_cv;

  std::atomic<bool> accepting{true};
};

Engine::Engine(const EngineOptions& options)
    : options_(options), cache_(options.cache_capacity), impl_(new Impl) {
  std::uint32_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  try {
    for (std::uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    timer_ = std::thread([this] { timer_loop(); });
  } catch (...) {
    // A thread failed to spawn (e.g. resource exhaustion): stop and join the
    // ones that did start, so the half-built Engine destructs cleanly instead
    // of std::terminate-ing on a joinable std::thread.
    {
      std::lock_guard<std::mutex> lk(impl_->queue_mu);
      impl_->stopping = true;
    }
    impl_->queue_cv.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    throw;
  }
}

Engine::~Engine() { shutdown(); }

ModelId Engine::register_model(std::unique_ptr<LoadedModel> model,
                               std::size_t lane_capacity) {
  LoadedModel* raw = model.get();
  raw->batcher = std::make_unique<Batcher>(
      raw->num_inputs, lane_capacity, options_.batch_timeout,
      [this, raw](Batch&& batch) { enqueue_batch(*raw, std::move(batch)); });
  std::lock_guard<std::mutex> lk(impl_->models_mu);
  impl_->models.push_back(std::move(model));
  return static_cast<ModelId>(impl_->models.size() - 1);
}

ModelId Engine::load_model(const std::string& name, const Netlist& nl) {
  auto compiled = cache_.get_or_compile(nl, options_.compile);
  auto model = std::make_unique<LoadedModel>();
  model->name = name;
  model->num_inputs = nl.num_inputs();
  model->num_outputs = nl.num_outputs();
  model->single_owner = compiled;
  model->members.push_back({&compiled->program, nullptr, nullptr});
  return register_model(std::move(model),
                        compiled->program.cfg.effective_word_width());
}

ModelId Engine::load_model_parallel(const std::string& name, const Netlist& nl,
                                    std::uint32_t parallel_lpus) {
  auto compiled =
      cache_.get_or_compile_parallel(nl, options_.compile, parallel_lpus);
  auto model = std::make_unique<LoadedModel>();
  model->name = name;
  model->num_inputs = nl.num_inputs();
  model->num_outputs = nl.num_outputs();
  model->parallel_owner = compiled;
  for (const auto& member : compiled->members) {
    model->members.push_back(
        {&member.program, &member.pi_indices, &member.po_indices});
  }
  return register_model(
      std::move(model),
      compiled->members.front().program.cfg.effective_word_width());
}

Engine::LoadedModel& Engine::model_at(ModelId model) const {
  std::lock_guard<std::mutex> lk(impl_->models_mu);
  if (model >= impl_->models.size()) {
    throw Error("unknown model id " + std::to_string(model));
  }
  return *impl_->models[model];
}

const std::string& Engine::model_name(ModelId model) const {
  return model_at(model).name;
}

std::future<std::vector<bool>> Engine::submit(ModelId model,
                                              std::vector<bool> inputs) {
  LoadedModel& lm = model_at(model);
  // Claim the request BEFORE the accepting check: shutdown() flips accepting
  // and then drains, so either this claim lands before drain's in_flight read
  // (drain waits for us; timer/workers stay alive until we're answered) or it
  // lands after, in which case accepting is already false here and we bail.
  impl_->in_flight.fetch_add(1);
  if (!impl_->accepting.load()) {
    release_requests(1);
    throw Error("engine is shut down");
  }
  std::future<std::vector<bool>> fut;
  bool opened_batch = false;
  try {
    fut = lm.batcher->submit(std::move(inputs), &opened_batch);
  } catch (...) {
    release_requests(1);
    throw;
  }
  if (opened_batch) {
    // A new deadline exists; re-arm the timekeeper's wait.
    {
      std::lock_guard<std::mutex> lk(impl_->timer_mu);
      ++impl_->timer_epoch;
    }
    impl_->timer_cv.notify_one();
  }
  return fut;
}

void Engine::enqueue_batch(LoadedModel& model, Batch&& batch) {
  auto work = std::make_shared<BatchWork>();
  work->model = &model;
  work->requests = std::move(batch.requests);
  work->inputs = pack_requests(work->requests, model.num_inputs);
  work->outputs.assign(model.num_outputs, BitVec(work->requests.size()));
  work->members_left.store(model.members.size());
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    for (std::size_t m = 0; m < model.members.size(); ++m) {
      impl_->queue.push_back({work, m});
    }
  }
  if (model.members.size() == 1) {
    impl_->queue_cv.notify_one();
  } else {
    impl_->queue_cv.notify_all();
  }
}

void Engine::worker_loop() {
  // Each worker owns its simulators (keyed by the shared Program) — the
  // Program is read-only, all mutable run state lives in the simulator.
  std::unordered_map<const Program*, std::unique_ptr<LpuSimulator>> sims;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lk(impl_->queue_mu);
      impl_->queue_cv.wait(
          lk, [this] { return impl_->stopping || !impl_->queue.empty(); });
      if (impl_->queue.empty()) return;
      item = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }

    BatchWork& work = *item.work;
    const LoadedModel::Member& member = work.model->members[item.member];
    try {
      auto& sim = sims[member.program];
      if (!sim) sim = std::make_unique<LpuSimulator>(*member.program);

      const std::vector<BitVec>* in = &work.inputs;
      std::vector<BitVec> gathered;
      if (member.pi_indices != nullptr) {
        gathered.reserve(member.pi_indices->size());
        for (const std::uint32_t pi : *member.pi_indices) {
          gathered.push_back(work.inputs[pi]);
        }
        in = &gathered;
      }

      std::vector<BitVec> out = sim->run(*in);
      stats_.on_sim_run(sim->counters());

      if (member.po_indices != nullptr) {
        for (std::size_t i = 0; i < out.size(); ++i) {
          work.outputs[(*member.po_indices)[i]] = std::move(out[i]);
        }
      } else {
        for (std::size_t i = 0; i < out.size(); ++i) {
          work.outputs[i] = std::move(out[i]);
        }
      }
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(work.error_mu);
      work.failed.store(true);
      if (work.error.empty()) work.error = e.what();
    }

    if (work.members_left.fetch_sub(1) == 1) finalize(work);
  }
}

void Engine::finalize(BatchWork& work) {
  const Clock::time_point now = Clock::now();
  // Stats are recorded BEFORE any future resolves: a client that wakes from
  // .get() and immediately calls report() must see its request counted.
  if (work.failed.load()) {
    // The batch ran (and wasted its lanes) but produced no samples.
    stats_.on_batch(0, work.model->batcher->lane_capacity());
    for (auto& req : work.requests) {
      req.result.set_exception(
          std::make_exception_ptr(Error("batch failed: " + work.error)));
    }
  } else {
    std::vector<std::uint64_t> latencies;
    latencies.reserve(work.requests.size());
    for (const auto& req : work.requests) {
      const auto latency =
          std::chrono::duration_cast<std::chrono::microseconds>(now - req.enqueued);
      latencies.push_back(static_cast<std::uint64_t>(latency.count()));
    }
    stats_.on_requests_done(latencies);
    stats_.on_batch(work.requests.size(), work.model->batcher->lane_capacity());
    auto per_request = unpack_outputs(work.outputs, work.requests.size());
    for (std::size_t i = 0; i < work.requests.size(); ++i) {
      work.requests[i].result.set_value(std::move(per_request[i]));
    }
  }
  release_requests(work.requests.size());
}

void Engine::release_requests(std::size_t n) {
  if (impl_->in_flight.fetch_sub(n) == n) {
    std::lock_guard<std::mutex> lk(impl_->drain_mu);
    impl_->drain_cv.notify_all();
  }
}

void Engine::timer_loop() {
  std::unique_lock<std::mutex> lk(impl_->timer_mu);
  for (;;) {
    if (impl_->timer_stop) return;
    const std::uint64_t seen = impl_->timer_epoch;

    std::optional<Clock::time_point> earliest;
    for (Batcher* b : batchers()) {
      const auto d = b->deadline();
      if (d && (!earliest || *d < *earliest)) earliest = d;
    }

    const auto woken = [this, seen] {
      return impl_->timer_stop || impl_->timer_epoch != seen;
    };
    if (earliest) {
      impl_->timer_cv.wait_until(lk, *earliest, woken);
      if (impl_->timer_stop) return;
      lk.unlock();
      const Clock::time_point now = Clock::now();
      // Seal outside models_mu: on_seal packs the whole batch, and submit()
      // needs models_mu for every lookup — batcher pointers are stable
      // (models are append-only for the engine's lifetime).
      for (Batcher* b : batchers()) b->seal_if_expired(now);
      lk.lock();
    } else {
      impl_->timer_cv.wait(lk, woken);
    }
  }
}

std::vector<Batcher*> Engine::batchers() const {
  std::vector<Batcher*> out;
  std::lock_guard<std::mutex> lk(impl_->models_mu);
  out.reserve(impl_->models.size());
  for (const auto& m : impl_->models) out.push_back(m->batcher.get());
  return out;
}

void Engine::drain() {
  for (Batcher* b : batchers()) b->flush();
  std::unique_lock<std::mutex> lk(impl_->drain_mu);
  impl_->drain_cv.wait(lk, [this] { return impl_->in_flight.load() == 0; });
}

void Engine::shutdown() {
  impl_->accepting.store(false);
  drain();
  {
    std::lock_guard<std::mutex> lk(impl_->timer_mu);
    impl_->timer_stop = true;
  }
  impl_->timer_cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    impl_->stopping = true;
  }
  impl_->queue_cv.notify_all();
  if (timer_.joinable()) timer_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace lbnn::runtime
