#include "runtime/engine.hpp"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "aot/artifact.hpp"
#include "common/check.hpp"
#include "common/error.hpp"
#include "lpu/kernels.hpp"
#include "lpu/simulator.hpp"
#include "runtime/batcher.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace lbnn::runtime {

namespace {

/// Stride scheduling granularity: pass advances by kStrideScale / weight per
/// dispatched work item, so a weight-w model receives a w-proportional share
/// of dispatches while backlogged.
constexpr std::uint64_t kStrideScale = 1ull << 20;

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// A unique private artifact directory for an engine constructed without
/// EngineOptions::artifact_dir (pid + per-process counter: two engines in one
/// process, or two processes on one machine, never collide).
std::string make_private_artifact_dir() {
  static std::atomic<std::uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lbnn-aot-" + std::to_string(static_cast<long>(::getpid())) +
                    "-" + std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::int64_t to_us(TimePoint tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

constexpr std::uint8_t claim_value(MemberClaim c) {
  return static_cast<std::uint8_t>(c);
}

/// The exactly-once transition of a member's result slot: kRunning -> kDone
/// (no duplicate was ever launched) or kHedged -> kDone (this copy beat the
/// other one). Whoever wins owns the slot's plain fields, the outputs slice,
/// and the completion-latch decrement; a false return means the other copy
/// already resolved the member and this copy's output must be discarded.
bool claim_result(MemberSlot& slot) {
  std::uint8_t expected = claim_value(MemberClaim::kRunning);
  if (slot.claim.compare_exchange_strong(expected, claim_value(MemberClaim::kDone))) {
    return true;
  }
  expected = claim_value(MemberClaim::kHedged);
  return slot.claim.compare_exchange_strong(expected,
                                            claim_value(MemberClaim::kDone));
}

}  // namespace

// No default case and no fallthrough return: -Wswitch (in -Wall) turns a
// forgotten enumerator into a compile warning instead of a silent "unknown".
const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue-full";
    case SubmitStatus::kUnloaded:
      return "unloaded";
    case SubmitStatus::kShuttingDown:
      return "shutting-down";
    case SubmitStatus::kDeadlineUnmeetable:
      return "deadline-unmeetable";
  }
  return "invalid-submit-status";  // out-of-range cast, not an enumerator
}

bool deadline_unmeetable(TimePoint deadline, TimePoint now,
                         std::uint64_t ewma_item_us, std::size_t items_ahead,
                         std::size_t workers) {
  if (deadline == kNoDeadline) return false;
  // Deadlines are inclusive everywhere in the runtime — finishing AT the
  // deadline is on time (see drop_expired_requests / finalize) — so only a
  // deadline strictly in the past is certainly dead at admission. A request
  // due exactly now still admits on a cold-start model (no service signal):
  // the estimate stays deliberately optimistic.
  if (deadline < now) return true;
  if (ewma_item_us == 0) return false;  // no service-time signal yet
  if (workers == 0) workers = 1;
  // Best case: every worker drains this model's queue in parallel.
  const std::uint64_t drain_us =
      ewma_item_us * ((items_ahead + workers - 1) / workers);
  return now + std::chrono::microseconds(drain_us) > deadline;
}

std::uint64_t ModelProbe::drain_estimate_us() const {
  if (ewma_item_us == 0) return 0;  // no service signal: nothing to estimate
  const std::size_t w = workers == 0 ? 1 : workers;
  const std::size_t items = queued_items + members;
  return ewma_item_us * ((items + w - 1) / w);
}

/// One sealed batch in flight. Its assembly members are claimed one at a
/// time from `next_member` — by the worker that dequeued the batch and, when
/// member stealing is on, by idle workers picking it off Impl::stealable.
/// Members write disjoint slots of `outputs` (their own po_indices) and their
/// own MemberSlot, so no lock is needed on the data plane; the last member to
/// finish (members_left, the completion latch) finalizes. Holds a shared_ptr
/// to its model: an unloading model stays alive until its queued batches
/// resolve.
struct Engine::BatchWork {
  std::shared_ptr<ModelState> model;
  std::vector<Request> requests;
  std::vector<MemberSlot> slots;  ///< one per assembly member (from the batcher)
  std::vector<BitVec> inputs;   ///< packed PIs, width == requests.size()
  std::vector<BitVec> outputs;  ///< original PO order
  std::uint64_t seq = 0;        ///< global enqueue order, for kGlobalFifo
  /// Phase-decomposition stamps (us by the engine clock). sealed_at_us is
  /// written by the sealing thread before the batch enters the ready queue;
  /// dispatched_at_us by the popping worker inside the scheduler critical
  /// section. Both are plain fields: every later reader acquired queue_mu
  /// after the writer released it (pop, steal, and hedge all go through it).
  std::int64_t sealed_at_us = 0;
  std::int64_t dispatched_at_us = 0;
  /// Claim cursor: fetch_add hands out member indices exactly once; values
  /// >= slots.size() mean "nothing left to claim" (overshoot is harmless).
  std::atomic<std::size_t> next_member{0};
  std::atomic<std::size_t> members_left{0};
  std::atomic<bool> failed{false};
  /// Exactly one member-claiming worker settles expired requests — its
  /// writes to Request::expired are ordered before finalize by the
  /// members_left decrement chain.
  std::atomic<bool> expiry_claimed{false};
  /// Every request expired before dispatch: members skip the simulator run.
  std::atomic<bool> skip_run{false};
  std::mutex error_mu;
  std::string error;
};

/// A loaded model: the shared read-only compiled artifact(s), the model's
/// batching queue, its admission state (bounded outstanding count), and its
/// slot in the weighted-fair scheduler. Members are the units of dispatch —
/// one for a single-LPU model, one per assembly member for a parallel model.
///
/// Lock order: the admission plane (mu/cv/outstanding) and the scheduler
/// plane (ready/pass/in_ready_list, guarded by the engine's queue_mu) are
/// disjoint; no code path holds both locks at once.
struct ModelState {
  // Immutable after registration.
  std::uint64_t id = 0;
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::uint64_t cache_key = 0;  ///< released on unload (unless key-sharing)
  Engine* engine = nullptr;
  std::size_t queue_bound = 0;
  /// QoS share of the stride scheduler. Set at registration and re-written by
  /// Engine::set_weight (the canary lever); atomic so handle and report reads
  /// need no lock. The derived stride lives on the scheduler plane below.
  std::atomic<std::uint32_t> weight{1};
  /// SLO applied to deadline-less submits; zero means none.
  std::chrono::microseconds default_deadline{0};

  struct Member {
    const Program* program = nullptr;
    /// Index maps into the original PI/PO spaces; nullptr means identity
    /// (single-LPU models serve the whole netlist).
    const std::vector<std::uint32_t>* pi_indices = nullptr;
    const std::vector<std::uint32_t>* po_indices = nullptr;
    /// The member's AOT artifact — null until the background codegen job
    /// promotes it. Accessed with std::atomic_load/atomic_store: workers
    /// sample it once per member run, so a promotion lands between two runs,
    /// never inside one (the zero-dropped/zero-doubled guarantee), and a
    /// request already running on the interpreter finishes there bit-exactly.
    std::shared_ptr<const aot::ProgramArtifact> artifact;
  };
  std::vector<Member> members;

  /// Keep-alive for the Program pointers above; cache eviction (including the
  /// unload path) must not invalidate a model that is still being served or
  /// whose handle is still held.
  std::shared_ptr<const CompileResult> single_owner;
  std::shared_ptr<const ParallelCompileResult> parallel_owner;

  std::unique_ptr<Batcher> batcher;
  std::weak_ptr<ModelState> self;  ///< for keep-alive refs in BatchWork

  // Admission plane. `accepting` is atomic so handle queries need no lock,
  // but it is only WRITTEN under mu (the cv's lost-wakeup rule).
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;  ///< accepted, not yet answered
  std::atomic<bool> accepting{true};

  // Scheduler plane — guarded by the engine's queue_mu. `ready` holds whole
  // sealed batches; members are claimed from each batch's atomic cursor.
  std::deque<std::shared_ptr<Engine::BatchWork>> ready;
  std::uint64_t pass = 0;
  /// kStrideScale / weight. Written at registration and by set_weight's
  /// rescale path; after registration every read/write is under queue_mu.
  std::uint64_t stride = kStrideScale;
  bool in_ready_list = false;

  /// Unclaimed member work items across this model's sealed batches —
  /// incremented by members-per-batch at enqueue, decremented per member
  /// claim (by claimer or stealer). Readable without the scheduler lock: the
  /// admission plane's drain estimate must not take queue_mu on every
  /// submit, and its unit must match the per-work-item service EWMA below.
  std::atomic<std::size_t> queued_items{0};
  /// EWMA of per-work-item simulator service time (us), fed by workers. 0
  /// until the first measurable (>= 1 us) sample — admission never sheds on a
  /// model it has no service signal for.
  std::atomic<std::uint64_t> ewma_item_us{0};

  std::atomic<std::int64_t> last_used_us{0};  ///< admission time, for evict_idle

  ModelStats stats;
};

namespace {

const ModelState& deref(const std::shared_ptr<ModelState>& state) {
  if (!state) throw Error("empty model handle");
  return *state;
}

}  // namespace

const std::string& ModelHandle::name() const { return deref(state_).name; }
std::size_t ModelHandle::num_inputs() const { return deref(state_).num_inputs; }
std::size_t ModelHandle::num_outputs() const { return deref(state_).num_outputs; }
std::uint32_t ModelHandle::weight() const { return deref(state_).weight.load(); }
std::size_t ModelHandle::queue_bound() const { return deref(state_).queue_bound; }
bool ModelHandle::loaded() const {
  return state_ != nullptr && state_->accepting.load();
}

struct Engine::Impl {
  mutable std::mutex models_mu;
  /// Ordered by id == load order, so reports list models stably. unload()
  /// erases — the registry finally shrinks.
  std::map<std::uint64_t, std::shared_ptr<ModelState>> registry;
  std::uint64_t next_model_id = 1;
  /// Unloaded models' full stats history, folded in by unload() so the
  /// "(retired)" report row (and metrics spanning a version flip) keep what
  /// the registry erase would otherwise lose. retired_models counts the
  /// folds; both guarded by models_mu (ModelStats has its own lock, but the
  /// pair must read consistently in report()).
  ModelStats retired_stats;
  std::uint64_t retired_models = 0;

  /// Trace request-id allocator (monotonic, 1-based so 0 reads "untraced").
  std::atomic<std::uint64_t> next_req_id{1};

  /// Scheduler: models with a non-empty ready deque. Workers pick the lowest
  /// pass (weighted-fair) or the oldest front batch (global FIFO).
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::vector<ModelState*> ready_models;
  std::uint64_t vtime = 0;  ///< pass of the most recently dispatched batch
  std::uint64_t next_seq = 0;
  bool stopping = false;
  /// In-flight multi-member batches with unclaimed members, published by the
  /// dequeuing worker so idle workers can steal work before sleeping.
  /// Entries whose cursor is exhausted are pruned lazily during steal scans
  /// (the shared_ptr keeps a finished batch's husk alive a little longer —
  /// harmless). Guarded by queue_mu; the member claim itself is the atomic
  /// cursor, so claimers never take this lock between members.
  std::vector<std::shared_ptr<Engine::BatchWork>> stealable;
  /// In-flight batches eligible for straggler hedging (every dispatched
  /// batch while EngineOptions::hedging is on — a batch only becomes a
  /// candidate once it is down to its last unfinished member, but that is a
  /// property of time, not of publication). Pruned of finalized husks during
  /// hedge scans and on every scheduler pop. Guarded by queue_mu; the hedge
  /// claim itself is the slot's atomic state machine.
  std::vector<std::shared_ptr<Engine::BatchWork>> hedgeable;
  /// Bumped (under queue_mu) whenever idle-worker-relevant state changes
  /// outside ready_models — a batch published for stealing, or a member
  /// transition that creates a hedge trigger. A worker parked on a
  /// hedge-trigger deadline re-scans when the epoch moves, so stealable
  /// work and newly eligible triggers are never slept past. Deliberately
  /// NOT bumped when a winner sample shrinks a model's EWMA (that would put
  /// a lock on every member completion): a parked worker's trigger can run
  /// late by up to the EWMA shrink, a bounded latency cost, never missed
  /// work.
  std::uint64_t wake_epoch = 0;
  /// Test instrumentation (see Engine::set_dispatch_hook /
  /// set_member_hook). Guarded by queue_mu; workers grab the shared_ptr
  /// during the pop/steal critical section and invoke outside all locks.
  std::shared_ptr<const std::function<void(const std::string&)>> dispatch_hook;
  std::shared_ptr<const Engine::MemberHook> member_hook;
  /// Fires inside evict_idle between a model's idle checks and its unload —
  /// the admission-vs-evict race window (see Engine::set_evict_hook).
  std::shared_ptr<const std::function<void(const std::string&)>> evict_hook;

  /// The timekeeper sleeps until the earliest open-batch deadline; submit
  /// bumps the epoch so a new (possibly earlier) deadline re-arms the wait.
  std::mutex timer_mu;
  std::condition_variable timer_cv;
  std::uint64_t timer_epoch = 0;
  bool timer_stop = false;

  std::atomic<std::size_t> in_flight{0};  ///< accepted, not yet answered
  std::mutex drain_mu;
  std::condition_variable drain_cv;

  std::atomic<bool> accepting{true};

  /// Programs of unloaded models, append-only. Workers cache one simulator
  /// per Program* they have served; without pruning, an unload would leak
  /// those simulators AND leave dangling-pointer keys that a later Program
  /// allocated at the same address could falsely hit. Each worker consumes
  /// this list (tracking its own position) before every sims-cache lookup.
  std::mutex retired_mu;
  std::vector<const Program*> retired_programs;
  std::atomic<std::size_t> retired_count{0};

  /// Background AOT codegen jobs — one thread per load while AOT is on,
  /// joined at shutdown. aot_pending counts jobs not yet finished;
  /// wait_aot_ready() parks on aot_cv until it hits zero (no sleeps).
  std::mutex aot_mu;
  std::condition_variable aot_cv;
  std::size_t aot_pending = 0;
  bool aot_stopping = false;
  std::vector<std::thread> aot_jobs;
};

Engine::Engine(const EngineOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : &SystemClock::instance()),
      cache_(options.cache_capacity),
      stats_(clock_),
      impl_(new Impl) {
  std::uint32_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (options_.tracing || std::getenv("LBNN_FORCE_TRACING") != nullptr) {
    tracer_ = std::make_unique<Tracer>(workers, options_.trace_ring_capacity,
                                       *clock_);
  }
  // AOT needs the sliced-stream compiler: with simd off (or pinned off via
  // LBNN_FORCE_SCALAR) the engine serves the scalar oracle and artifacts
  // would diverge from the configured baseline, so the option is ignored.
  aot_enabled_ = (options_.aot || env_set("LBNN_FORCE_AOT")) &&
                 !env_set("LBNN_NO_AOT") && options_.simd &&
                 !env_set("LBNN_FORCE_SCALAR");
  if (aot_enabled_) {
    aot_avx2_ = kernels::cpu_has_avx2() && !env_set("LBNN_NO_AVX2");
    if (!options_.artifact_dir.empty()) {
      artifact_dir_ = options_.artifact_dir;
      std::filesystem::create_directories(artifact_dir_);
    } else {
      artifact_dir_ = make_private_artifact_dir();
      own_artifact_dir_ = true;
    }
  }
  workers_.reserve(workers);
  try {
    for (std::uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(1 + i); });
    }
    timer_ = std::thread([this] { timer_loop(); });
  } catch (...) {
    // A thread failed to spawn (e.g. resource exhaustion): stop and join the
    // ones that did start, so the half-built Engine destructs cleanly instead
    // of std::terminate-ing on a joinable std::thread.
    {
      std::lock_guard<std::mutex> lk(impl_->queue_mu);
      impl_->stopping = true;
    }
    impl_->queue_cv.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    throw;
  }
}

Engine::~Engine() { shutdown(); }

void Engine::emit_trace(std::size_t track, TraceEventType type,
                        std::uint64_t model_id, std::uint64_t id,
                        std::uint32_t member, std::uint64_t arg,
                        std::uint8_t flags) {
  if (!tracer_) return;
  TraceEvent ev;
  ev.type = type;
  ev.flags = flags;
  ev.member = member;
  ev.model_id = model_id;
  ev.id = id;
  ev.arg = arg;
  tracer_->emit(track, ev);
}

ModelHandle Engine::register_model(std::shared_ptr<ModelState> state,
                                   std::size_t lane_capacity,
                                   const ModelOptions& mopt) {
  state->engine = this;
  state->weight.store(mopt.weight == 0 ? 1 : mopt.weight);
  // Floor of 1: a stride of 0 (weight > kStrideScale) would freeze the
  // model's pass at the minimum and starve every other model forever.
  state->stride = kStrideScale / state->weight.load();
  if (state->stride == 0) state->stride = 1;
  std::size_t bound = mopt.queue_bound;
  if (bound == 0) bound = options_.default_queue_bound;
  if (bound == 0) bound = 4 * lane_capacity;
  state->queue_bound = bound;
  state->default_deadline = mopt.default_deadline;
  state->self = state;
  state->last_used_us.store(to_us(clock_->now()));
  ModelState* raw = state.get();
  state->batcher = std::make_unique<Batcher>(
      *clock_, state->num_inputs, lane_capacity, state->members.size(),
      options_.batch_timeout,
      [this, raw](Batch&& batch) { enqueue_batch(*raw, std::move(batch)); });
  {
    std::lock_guard<std::mutex> lk(impl_->models_mu);
    if (!impl_->accepting.load()) throw Error("engine is shut down");
    state->id = impl_->next_model_id++;
    impl_->registry.emplace(state->id, state);
  }
  if (tracer_) tracer_->register_model(state->id, state->name);
  return ModelHandle(std::move(state));
}

ModelHandle Engine::load(const std::string& name, const Netlist& nl,
                         const ModelOptions& mopt) {
  std::uint64_t key = 0;
  auto compiled = cache_.get_or_compile(nl, options_.compile, &key);
  auto state = std::make_shared<ModelState>();
  state->name = name;
  state->num_inputs = nl.num_inputs();
  state->num_outputs = nl.num_outputs();
  state->cache_key = key;
  state->single_owner = compiled;
  state->members.push_back({&compiled->program, nullptr, nullptr, nullptr});
  ModelHandle handle = register_model(
      std::move(state), compiled->program.cfg.effective_word_width(), mopt);
  if (aot_enabled_) spawn_aot_jobs(handle.state_);
  return handle;
}

ModelHandle Engine::load_parallel(const std::string& name, const Netlist& nl,
                                  std::uint32_t parallel_lpus,
                                  const ModelOptions& mopt) {
  std::uint64_t key = 0;
  auto compiled =
      cache_.get_or_compile_parallel(nl, options_.compile, parallel_lpus, &key);
  auto state = std::make_shared<ModelState>();
  state->name = name;
  state->num_inputs = nl.num_inputs();
  state->num_outputs = nl.num_outputs();
  state->cache_key = key;
  state->parallel_owner = compiled;
  for (const auto& member : compiled->members) {
    state->members.push_back(
        {&member.program, &member.pi_indices, &member.po_indices, nullptr});
  }
  ModelHandle handle = register_model(
      std::move(state),
      compiled->members.front().program.cfg.effective_word_width(), mopt);
  if (aot_enabled_) spawn_aot_jobs(handle.state_);
  return handle;
}

void Engine::spawn_aot_jobs(std::shared_ptr<ModelState> state) {
  std::lock_guard<std::mutex> lk(impl_->aot_mu);
  if (impl_->aot_stopping) return;
  ++impl_->aot_pending;
  impl_->aot_jobs.emplace_back([this, state = std::move(state)]() mutable {
    aot_build_model(*state);
    state.reset();  // release the model keep-alive before signalling ready
    {
      std::lock_guard<std::mutex> lk2(impl_->aot_mu);
      --impl_->aot_pending;
    }
    impl_->aot_cv.notify_all();
  });
}

void Engine::aot_build_model(ModelState& m) {
  aot::AotOptions opt;
  opt.artifact_dir = artifact_dir_;
  opt.avx2 = aot_avx2_;
  for (std::size_t i = 0; i < m.members.size(); ++i) {
    const TimePoint t0 = clock_->now();
    std::shared_ptr<const aot::ProgramArtifact> art;
    try {
      art = cache_.get_or_build_native(*m.members[i].program, opt);
    } catch (...) {
      // compile_artifact never throws on a failed native build, so this is a
      // resource failure (e.g. the artifact dir vanished). The member simply
      // keeps serving on the interpreter — promotion is an optimization,
      // never a liveness dependency.
      continue;
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        clock_->now() - t0)
                        .count();
    std::atomic_store(&m.members[i].artifact, art);
    emit_trace(Tracer::kSharedTrack, TraceEventType::kPromote, m.id, 0,
               static_cast<std::uint32_t>(i),
               us > 0 ? static_cast<std::uint64_t>(us) : 0,
               art->kind == BackendKind::kAotNative ? kTraceFlagNative
                                                    : std::uint8_t{0});
  }
}

void Engine::wait_aot_ready() {
  std::unique_lock<std::mutex> lk(impl_->aot_mu);
  impl_->aot_cv.wait(lk, [this] { return impl_->aot_pending == 0; });
}

std::future<ModelHandle> Engine::load_async(std::string name, Netlist nl,
                                            ModelOptions mopt) {
  // Compilation no longer holds the cache lock, so concurrent async loads of
  // distinct models genuinely overlap; same-key loads join one compile.
  return std::async(std::launch::async,
                    [this, name = std::move(name), nl = std::move(nl), mopt] {
                      return load(name, nl, mopt);
                    });
}

ModelState* Engine::state_of(const ModelHandle& handle) const {
  if (!handle.state_) throw Error("empty model handle");
  if (handle.state_->engine != this) {
    throw Error("model handle belongs to a different engine");
  }
  return handle.state_.get();
}

std::vector<std::shared_ptr<ModelState>> Engine::model_snapshot() const {
  std::vector<std::shared_ptr<ModelState>> out;
  std::lock_guard<std::mutex> lk(impl_->models_mu);
  out.reserve(impl_->registry.size());
  for (const auto& [id, state] : impl_->registry) out.push_back(state);
  return out;
}

ModelProbe Engine::probe(const ModelHandle& model) const {
  ModelState* m = state_of(model);
  ModelProbe p;
  p.loaded = m->accepting.load();
  p.queued_items = m->queued_items.load(std::memory_order_relaxed);
  p.members = m->members.size();
  p.ewma_item_us = m->ewma_item_us.load(std::memory_order_relaxed);
  p.workers = workers_.size();
  {
    std::lock_guard<std::mutex> lk(m->mu);
    p.outstanding = m->outstanding;
  }
  return p;
}

std::size_t Engine::in_flight() const { return impl_->in_flight.load(); }

std::size_t Engine::num_models() const {
  std::lock_guard<std::mutex> lk(impl_->models_mu);
  return impl_->registry.size();
}

namespace {

/// Arity is a usage bug: reject before claiming admission (a wrong-arity
/// blocking submit must throw immediately, not park on backpressure first).
void check_arity(const ModelState& m, std::size_t got) {
  if (got != m.num_inputs) {
    throw Error("request has " + std::to_string(got) +
                " input bits, model expects " + std::to_string(m.num_inputs));
  }
}

/// The request's absolute deadline: explicit per-submit wins; otherwise the
/// model's default SLO anchored at admission time; otherwise none.
TimePoint effective_deadline(const ModelState& m, TimePoint requested,
                             TimePoint now) {
  if (requested != kNoDeadline) return requested;
  if (m.default_deadline.count() == 0) return kNoDeadline;
  return now + m.default_deadline;
}

}  // namespace

/// Would admitting a request with this deadline be dead work, given the
/// model's queued work and its recent service rate? Everything is counted in
/// member work items — the unit of the service EWMA: `queued_items` is the
/// unclaimed members of already-sealed batches (a queued 4-member batch is 4
/// items, not 1), and the batch this request joins costs `members.size()`
/// items once it seals. That last term also makes requests parked in the
/// still-open lane visible: they share the same future batch, so its full
/// member cost is charged whether the lane holds one request or fifteen —
/// a model with a loaded open lane can no longer accept a deadline that the
/// lane's own seal-and-run time already busts.
static bool shed_check(const ModelState& m, TimePoint deadline, TimePoint now,
                       std::size_t workers) {
  const std::size_t items_ahead =
      m.queued_items.load(std::memory_order_relaxed) + m.members.size();
  return deadline_unmeetable(deadline, now,
                             m.ewma_item_us.load(std::memory_order_relaxed),
                             items_ahead, workers);
}

std::future<std::vector<bool>> Engine::submit(const ModelHandle& model,
                                              std::vector<bool> inputs,
                                              TimePoint deadline) {
  ModelState* m = state_of(model);
  check_arity(*m, inputs.size());
  TimePoint now = clock_->now();
  deadline = effective_deadline(*m, deadline, now);
  const std::uint64_t req_id =
      impl_->next_req_id.fetch_add(1, std::memory_order_relaxed);
  emit_trace(Tracer::kSharedTrack, TraceEventType::kSubmit, m->id, req_id, 0,
             deadline == kNoDeadline ? 0
                                     : static_cast<std::uint64_t>(to_us(deadline)));
  // Claim the request BEFORE the accepting checks: shutdown() flips accepting
  // and then drains, so either this claim lands before drain's in_flight read
  // (drain waits for us; timer/workers stay alive until we're answered) or it
  // lands after, in which case accepting is already false here and we bail.
  impl_->in_flight.fetch_add(1);
  {
    std::unique_lock<std::mutex> lk(m->mu);
    const auto shed = [&]() -> void {
      lk.unlock();
      stats_.on_shed();
      m->stats.on_shed();
      emit_trace(Tracer::kSharedTrack, TraceEventType::kShed, m->id, req_id);
      release_requests(1);
      throw DeadlineExceeded("model '" + m->name +
                             "': estimated drain time exceeds the deadline");
    };
    // Shed BEFORE parking on backpressure — a doomed request must fail in
    // microseconds, not after waiting out a slot it could only waste. But
    // lifecycle states take precedence (mirroring try_submit's ordering):
    // a shut-down engine reports shutdown, not a shed.
    if (impl_->accepting.load() && m->accepting.load() &&
        shed_check(*m, deadline, now, workers_.size())) {
      shed();
    }
    // Backpressure: wait for an admission slot instead of growing unboundedly.
    m->cv.wait(lk, [&] {
      return !impl_->accepting.load() || !m->accepting.load() ||
             m->outstanding < m->queue_bound;
    });
    if (!impl_->accepting.load()) {
      lk.unlock();
      release_requests(1);
      throw Error("engine is shut down");
    }
    if (!m->accepting.load()) {
      lk.unlock();
      release_requests(1);
      throw Error("model '" + m->name + "' is unloaded");
    }
    // Re-check after the wait: backpressure may have parked us long enough
    // that the deadline became unmeetable in the meantime.
    if (deadline != kNoDeadline) {
      now = clock_->now();
      if (shed_check(*m, deadline, now, workers_.size())) shed();
    }
    ++m->outstanding;
  }
  return dispatch_admitted(m, std::move(inputs), deadline, req_id);
}

/// Post-admission tail shared by submit() and try_submit(). The caller has
/// claimed in_flight and incremented m->outstanding; this hands the request
/// to the batcher (rolling both claims back if it throws) and re-arms the
/// timekeeper when a new batch deadline appeared.
std::future<std::vector<bool>> Engine::dispatch_admitted(
    ModelState* m, std::vector<bool>&& inputs, TimePoint deadline,
    std::uint64_t req_id) {
  m->last_used_us.store(to_us(clock_->now()));
  // kAdmit BEFORE the batcher call: a lane-full submit seals inline, and the
  // admit of the sealing request must precede its batch's seal in the stream.
  emit_trace(Tracer::kSharedTrack, TraceEventType::kAdmit, m->id, req_id);
  std::future<std::vector<bool>> fut;
  bool opened_batch = false;
  try {
    fut = m->batcher->submit(std::move(inputs), deadline, &opened_batch, req_id);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(m->mu);
      --m->outstanding;
    }
    m->cv.notify_all();
    release_requests(1);
    throw;
  }
  if (opened_batch) {
    // A new deadline exists; re-arm the timekeeper's wait.
    {
      std::lock_guard<std::mutex> lk(impl_->timer_mu);
      ++impl_->timer_epoch;
    }
    impl_->timer_cv.notify_one();
  }
  return fut;
}

SubmitStatus Engine::try_submit(const ModelHandle& model,
                                std::vector<bool> inputs,
                                std::future<std::vector<bool>>* result,
                                TimePoint deadline) {
  ModelState* m = state_of(model);
  check_arity(*m, inputs.size());
  const TimePoint now = clock_->now();
  deadline = effective_deadline(*m, deadline, now);
  const std::uint64_t req_id =
      impl_->next_req_id.fetch_add(1, std::memory_order_relaxed);
  emit_trace(Tracer::kSharedTrack, TraceEventType::kSubmit, m->id, req_id, 0,
             deadline == kNoDeadline ? 0
                                     : static_cast<std::uint64_t>(to_us(deadline)));
  impl_->in_flight.fetch_add(1);  // same claim-first rationale as submit()
  {
    std::lock_guard<std::mutex> lk(m->mu);
    if (!impl_->accepting.load()) {
      release_requests(1);
      return SubmitStatus::kShuttingDown;
    }
    if (!m->accepting.load()) {
      release_requests(1);
      return SubmitStatus::kUnloaded;
    }
    if (shed_check(*m, deadline, now, workers_.size())) {
      stats_.on_shed();
      m->stats.on_shed();
      emit_trace(Tracer::kSharedTrack, TraceEventType::kShed, m->id, req_id);
      release_requests(1);
      return SubmitStatus::kDeadlineUnmeetable;
    }
    if (m->outstanding >= m->queue_bound) {
      release_requests(1);
      return SubmitStatus::kQueueFull;
    }
    ++m->outstanding;
  }
  *result = dispatch_admitted(m, std::move(inputs), deadline, req_id);
  return SubmitStatus::kAccepted;
}

bool Engine::unload(const ModelHandle& model) {
  if (!model.state_) return false;
  ModelState* m = state_of(model);
  {
    std::lock_guard<std::mutex> lk(m->mu);
    if (!m->accepting.load()) return false;  // lost a concurrent unload race
    m->accepting.store(false);
  }
  m->cv.notify_all();  // blocked submitters observe !accepting and bail
  // Drain the model's outstanding requests: every accepted future resolves
  // before the model leaves the registry. The flush runs in a short poll loop
  // because a submitter that won admission just before the flag flipped may
  // append to a NEW open batch after a single flush (and the engine-wide
  // batch timeout may be arbitrarily long).
  {
    std::unique_lock<std::mutex> lk(m->mu);
    while (m->outstanding != 0) {
      lk.unlock();
      m->batcher->flush();
      lk.lock();
      m->cv.wait_for(lk, std::chrono::milliseconds(1),
                     [&] { return m->outstanding == 0; });
    }
  }
  // Retire the model's programs so workers drop their cached simulators for
  // them (a shared-key replica that is still loaded just recreates its
  // simulator on the next batch — a minor cost, never a correctness issue).
  {
    std::lock_guard<std::mutex> lk(impl_->retired_mu);
    for (const auto& member : m->members) {
      impl_->retired_programs.push_back(member.program);
    }
    impl_->retired_count.store(impl_->retired_programs.size());
  }
  {
    std::lock_guard<std::mutex> lk(impl_->models_mu);
    // Fold the model's full stats history into the persistent retired
    // aggregate BEFORE the registry erase: report() reads the pair under the
    // same lock, so no snapshot can see the row gone but the fold missing.
    impl_->retired_stats.merge_from(m->stats);
    ++impl_->retired_models;
    impl_->registry.erase(m->id);
    // Release the cache's pin on this model's program — unless another loaded
    // model (a replica) shares the key and still wants the cached artifact.
    // (A same-key load that has compiled but not yet registered is invisible
    // to this scan; it keeps its own pin, so the only cost of that rare race
    // is a spurious recompile on a later load.)
    bool key_shared = false;
    for (const auto& [id, other] : impl_->registry) {
      if (other->cache_key == m->cache_key) {
        key_shared = true;
        break;
      }
    }
    if (!key_shared) cache_.erase(m->cache_key);
  }
  return true;
}

bool Engine::set_weight(const ModelHandle& model, std::uint32_t weight) {
  ModelState* m = state_of(model);
  if (weight == 0) weight = 1;
  if (!m->accepting.load()) return false;  // unloaded: nothing left to share
  std::lock_guard<std::mutex> lk(impl_->queue_mu);
  std::uint64_t stride = kStrideScale / weight;
  if (stride == 0) stride = 1;  // same starvation floor as registration
  // Re-price the model's pending credit: the lag (pass - vtime) is service
  // debt accrued at the old stride. Scaling it by new/old keeps the model's
  // relative place in line — it neither jumps the queue (pass = vtime would
  // grant instant service) nor keeps paying off old debt at the old rate.
  if (m->pass > impl_->vtime && m->stride > 0) {
    const std::uint64_t lag = m->pass - impl_->vtime;
    m->pass = impl_->vtime + lag * stride / m->stride;
  }
  m->stride = stride;
  m->weight.store(weight);
  return true;
}

std::size_t Engine::evict_idle(Duration min_idle) {
  // `min_idle` is interpreted on the injected ClockSource domain — the same
  // domain that stamps last_used_us — so under a ManualClock "idle for 10
  // minutes" means 10 advance()d minutes, and eviction policy is testable
  // deterministically like every other engine timing decision.
  const std::int64_t cutoff =
      to_us(clock_->now()) -
      std::chrono::duration_cast<std::chrono::microseconds>(min_idle).count();
  std::shared_ptr<const std::function<void(const std::string&)>> hook;
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    hook = impl_->evict_hook;
  }
  std::size_t evicted = 0;
  for (const auto& m : model_snapshot()) {
    if (m->last_used_us.load() > cutoff) continue;
    {
      std::lock_guard<std::mutex> lk(m->mu);
      if (m->outstanding != 0) continue;  // actively serving; not idle
    }
    // The idle checks above and the unload below are deliberately NOT one
    // atomic step: a submit can still admit in this window (it raced the
    // eviction and won). unload() tolerates that by construction — it first
    // flips `accepting` (later submits are refused, never dropped) and then
    // drains, so anything admitted here is still served. The hook lets tests
    // land an admission exactly in the window and pin that guarantee.
    if (hook) (*hook)(m->name);
    if (unload(ModelHandle(m))) ++evicted;
  }
  return evicted;
}

void Engine::enqueue_batch(ModelState& model, Batch&& batch) {
  std::shared_ptr<ModelState> self = model.self.lock();
  LBNN_CHECK(self != nullptr, "batcher outlived its model state");
  LBNN_CHECK(batch.member_slots.size() == model.members.size(),
             "sealed batch member slots do not match the assembly width");
  auto work = std::make_shared<BatchWork>();
  work->model = std::move(self);
  work->requests = std::move(batch.requests);
  work->slots = std::move(batch.member_slots);
  work->inputs = pack_requests(work->requests, model.num_inputs);
  work->outputs.assign(model.num_outputs, BitVec(work->requests.size()));
  work->members_left.store(work->slots.size());
  work->sealed_at_us = to_us(clock_->now());
  const std::size_t items = work->slots.size();
  const std::size_t n_requests = work->requests.size();
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    work->seq = impl_->next_seq++;
    // Seal + enqueue events INSIDE the scheduler critical section: no worker
    // can pop (and emit kDispatch for) this batch until the unlock below, so
    // seal < enqueue < dispatch holds in the global seq order. The tracer's
    // shared-ring lock is a leaf; queue_mu -> shared_mu is the only nesting.
    emit_trace(Tracer::kSharedTrack, TraceEventType::kSeal, model.id, work->seq,
               0, n_requests);
    model.ready.push_back(std::move(work));
    if (!model.in_ready_list) {
      // A model re-entering the ready set starts at the current virtual time,
      // not its stale pass — otherwise it would monopolize workers to "catch
      // up" for the interval it had nothing queued.
      if (model.pass < impl_->vtime) model.pass = impl_->vtime;
      impl_->ready_models.push_back(&model);
      model.in_ready_list = true;
    }
    const std::size_t depth =
        model.queued_items.fetch_add(items, std::memory_order_relaxed) + items;
    model.stats.on_queue_depth(depth);
    emit_trace(Tracer::kSharedTrack, TraceEventType::kEnqueue, model.id,
               impl_->next_seq - 1, 0, depth);
  }
  // One batch is one scheduler pop: wake one worker. The popper re-notifies
  // when it publishes a multi-member batch for stealing.
  impl_->queue_cv.notify_one();
}

struct Engine::WorkerContext {
  /// Per-program executors this worker owns. The interpreter and the AOT
  /// executor both carry per-run scratch (the Program/artifact are shared and
  /// read-only), so each worker builds its own. `artifact` remembers which
  /// promotion the cached AotExecutor was built from — a re-promotion (never
  /// expected today, but the check is one pointer compare) rebuilds it.
  struct Exec {
    std::unique_ptr<LpuSimulator> sim;
    std::shared_ptr<const aot::ProgramArtifact> artifact;
    std::unique_ptr<aot::AotExecutor> aot;
  };
  std::unordered_map<const Program*, Exec> sims;
  std::size_t retired_seen = 0;  ///< position consumed in retired_programs
  std::size_t track = 0;         ///< this worker's trace ring (1 + worker index)
};

void Engine::prune_stealable_locked() {
  auto& stealable = impl_->stealable;
  for (std::size_t i = 0; i < stealable.size();) {
    if (stealable[i]->next_member.load(std::memory_order_relaxed) >=
        stealable[i]->slots.size()) {
      stealable[i] = std::move(stealable.back());
      stealable.pop_back();
    } else {
      ++i;
    }
  }
}

void Engine::prune_hedgeable_locked() {
  auto& hedgeable = impl_->hedgeable;
  for (std::size_t i = 0; i < hedgeable.size();) {
    if (hedgeable[i]->members_left.load() == 0) {
      // Finalized husk: prune (swap-pop keeps the sweep O(entries)).
      hedgeable[i] = std::move(hedgeable.back());
      hedgeable.pop_back();
    } else {
      ++i;
    }
  }
}

bool Engine::try_hedge_locked(TimePoint now, std::shared_ptr<BatchWork>* work,
                              std::size_t* member, TimePoint* next_due) {
  prune_hedgeable_locked();
  auto& hedgeable = impl_->hedgeable;
  for (std::size_t i = 0; i < hedgeable.size(); ++i) {
    BatchWork& candidate = *hedgeable[i];
    // Only the LAST unfinished member is hedge-eligible, and only once every
    // member has been claimed — an unclaimed member is work for stealing,
    // not for duplication. (members_left can hit 0 mid-scan; the next sweep
    // collects the husk.)
    if (candidate.members_left.load() != 1 ||
        candidate.next_member.load(std::memory_order_relaxed) <
            candidate.slots.size()) {
      continue;
    }
    const std::uint64_t ewma =
        candidate.model->ewma_item_us.load(std::memory_order_relaxed);
    if (ewma == 0) {
      // No service signal yet (cold start): a hedge threshold would be a
      // guess, and a guessed duplicate is pure waste. Never hedge.
      continue;
    }
    const std::uint64_t factor =
        options_.hedge_factor == 0 ? 1 : options_.hedge_factor;
    for (std::size_t s = 0; s < candidate.slots.size(); ++s) {
      MemberSlot& slot = candidate.slots[s];
      // kDone members are finished, kHedged already have their duplicate,
      // kPending ones were claimed but have not published their start yet
      // (the starter notifies queue_cv once it does).
      if (slot.claim.load() != claim_value(MemberClaim::kRunning)) continue;
      const TimePoint due =
          TimePoint{} +
          std::chrono::microseconds(
              slot.started_at_us.load(std::memory_order_relaxed)) +
          std::chrono::microseconds(ewma * factor);
      if (due <= now) {
        std::uint8_t expected = claim_value(MemberClaim::kRunning);
        if (slot.claim.compare_exchange_strong(
                expected, claim_value(MemberClaim::kHedged))) {
          *work = hedgeable[i];
          *member = s;
          return true;
        }
        // Lost the instant to the member finishing; nothing to duplicate.
      } else if (*next_due == kNoDeadline || due < *next_due) {
        *next_due = due;
      }
    }
  }
  return false;
}

bool Engine::try_steal_locked(std::shared_ptr<BatchWork>* work,
                              std::size_t* member) {
  auto& stealable = impl_->stealable;
  for (std::size_t i = 0; i < stealable.size();) {
    BatchWork& candidate = *stealable[i];
    const std::size_t total = candidate.slots.size();
    // The claim races the batch's own claimer (who holds no lock): fetch_add
    // both reserves an index and detects exhaustion.
    if (candidate.next_member.load(std::memory_order_relaxed) < total) {
      const std::size_t claimed = candidate.next_member.fetch_add(1);
      if (claimed < total) {
        candidate.model->queued_items.fetch_sub(1, std::memory_order_relaxed);
        *work = stealable[i];
        *member = claimed;
        return true;
      }
    }
    // Exhausted husk: prune (swap-pop keeps the scan O(entries)).
    stealable[i] = std::move(stealable.back());
    stealable.pop_back();
  }
  return false;
}

void Engine::worker_loop(std::size_t track) {
  WorkerContext ctx;
  ctx.track = track;
  const bool fifo =
      options_.scheduling == EngineOptions::Scheduling::kGlobalFifo;
  for (;;) {
    std::shared_ptr<BatchWork> work;
    std::size_t stolen_member = 0;
    bool stolen = false;
    bool hedge = false;
    bool published = false;
    std::shared_ptr<const std::function<void(const std::string&)>> hook;
    std::shared_ptr<const MemberHook> member_hook;
    {
      std::unique_lock<std::mutex> lk(impl_->queue_mu);
      for (;;) {
        if (!impl_->ready_models.empty()) {
          // Claim phase 1: a fresh batch from the scheduler. Sweep finished
          // husks out of the stealable/hedgeable lists first — under
          // sustained load this pop path is the only one that runs, and the
          // lists must not grow with every batch served.
          if (!impl_->stealable.empty()) prune_stealable_locked();
          if (!impl_->hedgeable.empty()) prune_hedgeable_locked();
          std::size_t best = 0;
          for (std::size_t i = 1; i < impl_->ready_models.size(); ++i) {
            const ModelState* a = impl_->ready_models[i];
            const ModelState* b = impl_->ready_models[best];
            const bool better = fifo
                                    ? a->ready.front()->seq < b->ready.front()->seq
                                    : a->pass < b->pass;
            if (better) best = i;
          }
          ModelState* m = impl_->ready_models[best];
          work = std::move(m->ready.front());
          m->ready.pop_front();
          work->dispatched_at_us = to_us(clock_->now());
          // kDispatch inside the critical section: a stealer cannot claim a
          // member of this batch until it acquires queue_mu after our unlock,
          // so dispatch always precedes every steal of it in seq order.
          emit_trace(track, TraceEventType::kDispatch, m->id, work->seq);
          impl_->vtime = m->pass;
          // One batch is slots.size() work items of this model's share.
          m->pass += m->stride * work->slots.size();
          if (m->ready.empty()) {
            impl_->ready_models[best] = impl_->ready_models.back();
            impl_->ready_models.pop_back();
            m->in_ready_list = false;
          }
          if (options_.member_stealing && work->slots.size() > 1) {
            // Publish the batch so idle workers steal members we have not
            // claimed yet; visible before any of them can miss a wakeup
            // (the notify below happens after this critical section), and
            // epoch-stamped so a worker parked on a far hedge trigger
            // re-scans instead of sleeping past stealable work.
            impl_->stealable.push_back(work);
            ++impl_->wake_epoch;
            published = true;
          }
          // Hedge candidates need no wakeup yet: a batch only matters to an
          // idle worker once it is down to its last unfinished member, and
          // run_member notifies at exactly that transition.
          if (options_.hedging) impl_->hedgeable.push_back(work);
          hook = impl_->dispatch_hook;
          member_hook = impl_->member_hook;
          break;
        }
        // Claim phase 2: steal a member from an in-flight batch rather than
        // sleep while a sibling straggles.
        if (options_.member_stealing &&
            try_steal_locked(&work, &stolen_member)) {
          stolen = true;
          member_hook = impl_->member_hook;
          break;
        }
        // Claim phase 3: duplicate a straggling last member rather than
        // sleep while it pins its whole batch (stealing cannot help — the
        // member is already running, just slowly).
        TimePoint next_due = kNoDeadline;
        if (options_.hedging &&
            try_hedge_locked(clock_->now(), &work, &stolen_member,
                             &next_due)) {
          hedge = true;
          member_hook = impl_->member_hook;
          break;
        }
        if (impl_->stopping) return;  // nothing queued, stealable, or hedged
        if (next_due != kNoDeadline) {
          // A batch is one straggling member away from completion but not
          // yet past its hedge trigger: sleep until the trigger by the
          // injected clock (a ManualClock advance lands exactly on it, so
          // tests force or forbid the hedge precisely) — or until anything
          // worth re-scanning appears: queued batches, newly published
          // stealable members, or a newer/earlier hedge trigger (the
          // wake_epoch side of the notify pairing above).
          const std::uint64_t seen_epoch = impl_->wake_epoch;
          clock_->wait_until(lk, impl_->queue_cv, next_due,
                             [this, seen_epoch] {
                               return impl_->stopping ||
                                      !impl_->ready_models.empty() ||
                                      impl_->wake_epoch != seen_epoch;
                             });
        } else {
          impl_->queue_cv.wait(lk);
        }
      }
    }
    if (published) impl_->queue_cv.notify_all();
    if (stolen || hedge) {
      run_member(*work, stolen_member, stolen, hedge, ctx, member_hook);
      continue;
    }
    if (hook) (*hook)(work->model->name);
    // Cooperative claim loop: take members off the cursor until stealers (or
    // we) exhaust it. Claiming one at a time means a steal can land between
    // any two of our runs — the whole point.
    for (;;) {
      const std::size_t member = work->next_member.fetch_add(1);
      if (member >= work->slots.size()) break;
      work->model->queued_items.fetch_sub(1, std::memory_order_relaxed);
      run_member(*work, member, /*stolen=*/false, /*hedge=*/false, ctx,
                 member_hook);
    }
  }
}

void Engine::run_member(BatchWork& work, std::size_t member_index, bool stolen,
                        bool hedge, WorkerContext& ctx,
                        const std::shared_ptr<const MemberHook>& hook) {
  // Drop simulators of unloaded models BEFORE the lookup below: a stale
  // entry is a leak, and its key may alias a newly compiled Program.
  if (impl_->retired_count.load() != ctx.retired_seen) {
    std::lock_guard<std::mutex> lk(impl_->retired_mu);
    for (; ctx.retired_seen < impl_->retired_programs.size();
         ++ctx.retired_seen) {
      ctx.sims.erase(impl_->retired_programs[ctx.retired_seen]);
    }
  }

  MemberSlot& slot = work.slots[member_index];
  if (!hedge) {
    emit_trace(ctx.track,
               stolen ? TraceEventType::kMemberSteal : TraceEventType::kMemberClaim,
               work.model->id, work.seq, static_cast<std::uint32_t>(member_index),
               0, stolen ? kTraceFlagStolen : std::uint8_t{0});
    // The first member claimed anywhere settles requests that are already
    // past their deadline: their futures fail NOW, with DeadlineExceeded,
    // and a fully-expired batch skips the simulator entirely. Later members
    // (and hedge duplicates) follow the settler's verdict rather than
    // re-deciding at their own, later, now — a batch the settler found live
    // must execute every member, or live requests would receive values with
    // unwritten output slices. Settling MUST complete before this slot is
    // published as kRunning below: a hedge can only launch once every slot
    // is kRunning, so ordering settle-then-publish guarantees no duplicate
    // ever finalizes the batch concurrently with the settler failing
    // expired promises (that race would double-resolve them).
    if (!work.expiry_claimed.exchange(true)) {
      if (!drop_expired_requests(work, ctx.track)) work.skip_run.store(true);
    }
    // Publish the execution start for hedge-candidate scans: the stamp
    // first, then the claim state a hedger keys off.
    slot.started_at_us.store(to_us(clock_->now()), std::memory_order_relaxed);
    slot.claim.store(claim_value(MemberClaim::kRunning),
                     std::memory_order_release);
    if (options_.hedging && work.members_left.load() == 1) {
      // This is the batch's last unfinished member: idle workers may now
      // have a hedge trigger to time. The epoch bump under queue_mu pairs
      // with the hedge-wait predicate — without it, a worker that just
      // scanned this slot as kPending (or is parked on a stale, later
      // trigger) could sleep through the transition.
      {
        std::lock_guard<std::mutex> lk(impl_->queue_mu);
        ++impl_->wake_epoch;
      }
      impl_->queue_cv.notify_all();
    }
  } else {
    // The hedge ledger records the launch before the hook runs, so a test
    // gating the duplicate still observes hedges_launched == 1.
    stats_.on_hedge_launched();
    work.model->stats.on_hedge_launched();
    emit_trace(ctx.track, TraceEventType::kHedgeLaunch, work.model->id, work.seq,
               static_cast<std::uint32_t>(member_index), 0, kTraceFlagHedge);
  }
  const bool skip = work.skip_run.load();

  const ModelState::Member& member = work.model->members[member_index];
  bool resolved = false;       ///< this copy won the member's result slot
  std::uint64_t wasted_us = 0;
  if (!skip) {
    const TimePoint t0 = clock_->now();
    const auto elapsed_us = [&]() -> std::uint64_t {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          clock_->now() - t0)
                          .count();
      return us > 0 ? static_cast<std::uint64_t>(us) : 0;
    };
    try {
      // Pick the member's backend ONCE per run: a promotion that lands while
      // this run executes takes effect on the next one. The artifact
      // shared_ptr keeps the dlopen'd code mapped for as long as any worker
      // still holds an executor over it.
      WorkerContext::Exec& entry = ctx.sims[member.program];
      ExecutorBackend* exec;
      if (auto artifact = std::atomic_load(&member.artifact)) {
        if (entry.artifact != artifact) {
          entry.aot =
              std::make_unique<aot::AotExecutor>(*member.program, artifact);
          entry.artifact = std::move(artifact);
        }
        exec = entry.aot.get();
      } else {
        if (!entry.sim) {
          entry.sim =
              std::make_unique<LpuSimulator>(*member.program, options_.simd);
        }
        exec = entry.sim.get();
      }

      const std::vector<BitVec>* in = &work.inputs;
      std::vector<BitVec> gathered;
      if (member.pi_indices != nullptr) {
        gathered.reserve(member.pi_indices->size());
        for (const std::uint32_t pi : *member.pi_indices) {
          gathered.push_back(work.inputs[pi]);
        }
        in = &gathered;
      }

      // The member hook is inside the timed region on purpose: benches use
      // it to give one member an artificial straggler delay, and that delay
      // must show up in the service EWMA and member percentiles.
      if (hook) (*hook)(work.model->name, member_index, hedge);
      // Under hedging the slot's cancel flag stops the losing copy between
      // wavefronts once the winner has claimed the result.
      std::vector<BitVec> out = exec->run(*in, &slot.cancel);
      const std::uint64_t service_us = elapsed_us();
      if (claim_result(slot)) {
        resolved = true;
        // Tell the other copy (if one is running) its result is moot.
        slot.cancel.store(true);
        stats_.on_sim_run(exec->counters());
        slot.ran = true;
        slot.stolen = stolen;
        slot.hedge_won = hedge;
        slot.backend = static_cast<std::uint8_t>(exec->backend_kind());
        slot.service_us = service_us;
        // Feed the admission shedder's per-item service EWMA — winner
        // samples only, so a hedged-away straggler does not teach the
        // estimate a service time nobody has to wait for anymore.
        // Sub-microsecond samples are dropped rather than rounded up: under
        // a ManualClock the simulator takes zero manual time, and learning
        // a fake floor there would make deterministic tests shed
        // nondeterministically.
        if (service_us > 0) {
          ModelState& model_state = *work.model;
          const std::uint64_t prev =
              model_state.ewma_item_us.load(std::memory_order_relaxed);
          model_state.ewma_item_us.store(
              prev == 0 ? service_us : (3 * prev + service_us) / 4,
              std::memory_order_relaxed);
        }

        if (member.po_indices != nullptr) {
          for (std::size_t i = 0; i < out.size(); ++i) {
            work.outputs[(*member.po_indices)[i]] = std::move(out[i]);
          }
        } else {
          for (std::size_t i = 0; i < out.size(); ++i) {
            work.outputs[i] = std::move(out[i]);
          }
        }
      } else {
        wasted_us = service_us;
      }
    } catch (const SimCancelled&) {
      // The other copy won mid-run and flipped our cancel flag; everything
      // this copy burned is hedge waste.
      wasted_us = elapsed_us();
    } catch (const std::exception& e) {
      // A failing copy may only fail the batch if it owns the result slot —
      // when a duplicate is in flight, the other copy can still succeed.
      if (claim_result(slot)) {
        resolved = true;
        slot.cancel.store(true);
        std::lock_guard<std::mutex> lk(work.error_mu);
        work.failed.store(true);
        if (work.error.empty()) work.error = e.what();
      } else {
        wasted_us = elapsed_us();
      }
    }
  } else {
    // Fully-expired batch: no simulator work, but the member must still be
    // resolved exactly once (a hedge duplicate may race us even here).
    resolved = claim_result(slot);
  }

  if (!resolved) {
    // Hedge loser — duplicate or original: the winner already wrote the
    // slot and will drive (or drove) finalize. Account the discarded work
    // and walk away; double-resolving the promises is impossible from here.
    stats_.on_hedge_waste(wasted_us);
    work.model->stats.on_hedge_waste(wasted_us);
    emit_trace(ctx.track, TraceEventType::kHedgeCancel, work.model->id, work.seq,
               static_cast<std::uint32_t>(member_index), wasted_us,
               hedge ? kTraceFlagHedge : std::uint8_t{0});
    return;
  }
  slot.done_at_us = to_us(clock_->now());
  {
    std::uint8_t flags = 0;
    if (stolen) flags |= kTraceFlagStolen;
    if (hedge) flags |= kTraceFlagHedge;
    if (skip) flags |= kTraceFlagSkipped;
    if (slot.ran &&
        (slot.backend == static_cast<std::uint8_t>(BackendKind::kAotNative) ||
         slot.backend == static_cast<std::uint8_t>(BackendKind::kAotThreaded))) {
      flags |= kTraceFlagNative;
    }
    emit_trace(ctx.track, TraceEventType::kMemberDone, work.model->id, work.seq,
               static_cast<std::uint32_t>(member_index), slot.service_us, flags);
  }
  if (hedge) {
    emit_trace(ctx.track, TraceEventType::kHedgeWin, work.model->id, work.seq,
               static_cast<std::uint32_t>(member_index), 0, kTraceFlagHedge);
  }

  const std::size_t left = work.members_left.fetch_sub(1);
  if (left == 1) {
    finalize(work, ctx.track);
  } else if (left == 2 && options_.hedging) {
    // The batch just dropped to its last unfinished member — the hedge
    // trigger for that member starts mattering now. Same lost-wakeup pairing
    // as above.
    {
      std::lock_guard<std::mutex> lk(impl_->queue_mu);
      ++impl_->wake_epoch;
    }
    impl_->queue_cv.notify_all();
  }
}

bool Engine::drop_expired_requests(BatchWork& work, std::size_t track) {
  const TimePoint now = clock_->now();
  std::size_t expired = 0;
  for (auto& req : work.requests) {
    // The deadline is inclusive — finishing AT it is on time — so only
    // now > deadline expires, matching finalize()'s deadline_met boundary.
    if (req.deadline == kNoDeadline || now <= req.deadline) continue;
    req.expired = true;
    ++expired;
  }
  if (expired == 0) return true;
  // Counters BEFORE the promises fail (the same rule finalize() follows): a
  // client that wakes from get() with DeadlineExceeded and immediately calls
  // report() must see its request in `expired`.
  stats_.on_expired(expired);
  work.model->stats.on_expired(expired);
  emit_trace(track, TraceEventType::kExpire, work.model->id, work.seq, 0,
             expired);
  for (auto& req : work.requests) {
    if (!req.expired) continue;
    emit_trace(track, TraceEventType::kRequestDone, work.model->id, req.id, 0, 0,
               kTraceFlagExpired);
    req.result.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "request expired in '" + work.model->name + "' queue before dispatch")));
  }
  return expired != work.requests.size();
}

void Engine::finalize(BatchWork& work, std::size_t track) {
  ModelState& m = *work.model;
  const TimePoint now = clock_->now();
  // Requests the dequeue-time expiry pass already failed are settled; only
  // the live remainder gets values/errors and latency accounting here.
  std::size_t live = 0;
  for (const auto& req : work.requests) {
    if (!req.expired) ++live;
  }
  // Stats are recorded BEFORE any future resolves: a client that wakes from
  // .get() and immediately calls report() must see its request counted.
  // Member slots are complete here — every runner's writes are ordered
  // before this point by the members_left decrement chain.
  stats_.on_members_done(work.slots);
  m.stats.on_members_done(work.slots);
  emit_trace(track, TraceEventType::kFinalize, m.id, work.seq, 0, live,
             work.failed.load() ? kTraceFlagFailed : std::uint8_t{0});
  if (work.failed.load()) {
    // The batch ran (and wasted its lanes) but produced no samples.
    stats_.on_batch(0, m.batcher->lane_capacity());
    m.stats.on_batch(0, m.batcher->lane_capacity());
    for (auto& req : work.requests) {
      if (req.expired) continue;
      emit_trace(track, TraceEventType::kRequestDone, m.id, req.id, 0, 0,
                 kTraceFlagFailed);
      req.result.set_exception(
          std::make_exception_ptr(Error("batch failed: " + work.error)));
    }
  } else if (live > 0) {
    std::vector<std::uint64_t> latencies;
    latencies.reserve(live);
    std::uint64_t met = 0;
    for (const auto& req : work.requests) {
      if (req.expired) continue;
      const auto latency =
          std::chrono::duration_cast<std::chrono::microseconds>(now - req.enqueued);
      latencies.push_back(static_cast<std::uint64_t>(latency.count()));
      // A deadline-less completion is always good work; a deadlined one only
      // counts toward goodput when it finished in time.
      if (req.deadline == kNoDeadline || now <= req.deadline) ++met;
    }
    stats_.on_requests_done(latencies, met);
    m.stats.on_requests_done(latencies, met);
    stats_.on_batch(live, m.batcher->lane_capacity());
    m.stats.on_batch(live, m.batcher->lane_capacity());
    // Phase decomposition from the batch's lifecycle stamps — the same
    // transitions the trace stream records. Execution ends at the LAST
    // member's completion stamp; everything is clamped at 0 (a ManualClock
    // that never advanced yields all-zero phases, not underflow).
    {
      std::int64_t exec_done_us = work.dispatched_at_us;
      for (const MemberSlot& slot : work.slots) {
        if (slot.ran && slot.done_at_us > exec_done_us) {
          exec_done_us = slot.done_at_us;
        }
      }
      const auto clamp_us = [](std::int64_t v) -> std::uint64_t {
        return v > 0 ? static_cast<std::uint64_t>(v) : 0;
      };
      std::vector<std::uint64_t> assembly;
      assembly.reserve(live);
      for (const auto& req : work.requests) {
        if (req.expired) continue;
        assembly.push_back(clamp_us(work.sealed_at_us - to_us(req.enqueued)));
      }
      const std::uint64_t queue_wait =
          clamp_us(work.dispatched_at_us - work.sealed_at_us);
      const std::uint64_t execution =
          clamp_us(exec_done_us - work.dispatched_at_us);
      const std::uint64_t settle = clamp_us(to_us(now) - exec_done_us);
      stats_.on_phases(assembly, queue_wait, execution, settle);
      m.stats.on_phases(assembly, queue_wait, execution, settle);
    }
    auto per_request = unpack_outputs(work.outputs, work.requests.size());
    for (std::size_t i = 0; i < work.requests.size(); ++i) {
      if (work.requests[i].expired) continue;
      const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
          now - work.requests[i].enqueued);
      emit_trace(track, TraceEventType::kRequestDone, m.id, work.requests[i].id,
                 0, static_cast<std::uint64_t>(latency.count()));
      work.requests[i].result.set_value(std::move(per_request[i]));
    }
  }
  // live == 0 && !failed: the whole batch expired at dequeue and the
  // simulator never ran — no batch/lane accounting, the lanes were reclaimed.
  const std::size_t n = work.requests.size();
  {
    std::lock_guard<std::mutex> lk(m.mu);
    m.outstanding -= n;
  }
  m.cv.notify_all();  // free admission slots (backpressure) and unload waits
  release_requests(n);
}

void Engine::release_requests(std::size_t n) {
  if (impl_->in_flight.fetch_sub(n) == n) {
    std::lock_guard<std::mutex> lk(impl_->drain_mu);
    impl_->drain_cv.notify_all();
  }
}

void Engine::timer_loop() {
  std::unique_lock<std::mutex> lk(impl_->timer_mu);
  for (;;) {
    if (impl_->timer_stop) return;
    const std::uint64_t seen = impl_->timer_epoch;

    std::optional<TimePoint> earliest;
    auto models = model_snapshot();
    for (const auto& m : models) {
      const auto d = m->batcher->deadline();
      if (d && (!earliest || *d < *earliest)) earliest = d;
    }

    const auto woken = [this, seen] {
      return impl_->timer_stop || impl_->timer_epoch != seen;
    };
    if (earliest) {
      // Sleep by the engine's clock: under a ManualClock this parks until a
      // test advances time past the seal deadline — no real waiting at all.
      clock_->wait_until(lk, impl_->timer_cv, *earliest, woken);
      if (impl_->timer_stop) return;
      lk.unlock();
      const TimePoint now = clock_->now();
      // Seal outside models_mu: on_seal packs the whole batch, and submit()
      // needs no registry lock but loads/unloads do — the snapshot's
      // shared_ptrs keep every batcher alive across the seal.
      for (const auto& m : models) m->batcher->seal_if_expired(now);
      lk.lock();
    } else {
      impl_->timer_cv.wait(lk, woken);
    }
  }
}

void Engine::set_dispatch_hook(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lk(impl_->queue_mu);
  if (hook) {
    impl_->dispatch_hook =
        std::make_shared<const std::function<void(const std::string&)>>(
            std::move(hook));
  } else {
    impl_->dispatch_hook = nullptr;
  }
}

void Engine::set_member_hook(
    std::function<void(const std::string&, std::size_t, bool)> hook) {
  std::lock_guard<std::mutex> lk(impl_->queue_mu);
  if (hook) {
    impl_->member_hook = std::make_shared<const MemberHook>(std::move(hook));
  } else {
    impl_->member_hook = nullptr;
  }
}

void Engine::set_evict_hook(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lk(impl_->queue_mu);
  if (hook) {
    impl_->evict_hook =
        std::make_shared<const std::function<void(const std::string&)>>(
            std::move(hook));
  } else {
    impl_->evict_hook = nullptr;
  }
}

ServeReport Engine::report() const {
  ServeReport r = stats_.report();
  for (const auto& m : model_snapshot()) {
    ModelReport mr = m->stats.report();
    mr.name = m->name;
    mr.weight = m->weight.load();
    mr.queue_bound = m->queue_bound;
    // Per-model goodput shares the engine-wide wall clock (models load at
    // different times, but one common denominator keeps rows comparable).
    mr.goodput_per_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(mr.deadline_met) / r.wall_seconds
            : 0.0;
    r.per_model.push_back(std::move(mr));
  }
  // Unloaded models fold into one persistent row instead of vanishing: the
  // aggregate of every unload()ed model's full history, under a name no real
  // model can shadow.
  bool has_retired = false;
  ModelReport retired;
  {
    std::lock_guard<std::mutex> lk(impl_->models_mu);
    if (impl_->retired_models > 0) {
      has_retired = true;
      retired = impl_->retired_stats.report();
    }
  }
  if (has_retired) {
    retired.name = "(retired)";
    retired.weight = 0;       // no scheduler share — these models are gone
    retired.queue_bound = 0;  // no admission plane either
    retired.goodput_per_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(retired.deadline_met) / r.wall_seconds
            : 0.0;
    r.per_model.push_back(std::move(retired));
  }
  return r;
}

void Engine::export_trace(std::ostream& os) {
  if (!tracer_) {
    os << "{\"traceEvents\":[],\"otherData\":{\"droppedEvents\":0}}\n";
    return;
  }
  tracer_->export_chrome_trace(os);
}

std::uint64_t Engine::export_trace_events(std::ostream& os, int pid,
                                          const std::string& process_name,
                                          bool* first) {
  if (!tracer_) return 0;
  tracer_->export_chrome_events(os, pid, process_name, *first);
  return tracer_->dropped();
}

std::vector<TraceEvent> Engine::drain_trace() {
  return tracer_ ? tracer_->drain() : std::vector<TraceEvent>{};
}

std::uint64_t Engine::trace_dropped() const {
  return tracer_ ? tracer_->dropped() : 0;
}

std::string Engine::trace_model_name(std::uint64_t model_id) const {
  return tracer_ ? tracer_->model_name(model_id) : std::string();
}

std::string Engine::metrics_prometheus() const { return to_prometheus(report()); }

std::string Engine::metrics_json() const { return to_json(report()); }

void Engine::drain() {
  // Flush-and-wait in a short poll loop: a submitter that won admission
  // concurrently with the flush may open a fresh batch right after it, and
  // the batch timeout may be arbitrarily long.
  std::unique_lock<std::mutex> lk(impl_->drain_mu);
  while (impl_->in_flight.load() != 0) {
    lk.unlock();
    for (const auto& m : model_snapshot()) m->batcher->flush();
    lk.lock();
    impl_->drain_cv.wait_for(lk, std::chrono::milliseconds(1),
                             [this] { return impl_->in_flight.load() == 0; });
  }
}

void Engine::shutdown() {
  impl_->accepting.store(false);
  // Wake submitters blocked on per-model backpressure so they observe the
  // shutdown and release their in-flight claims — drain() below waits on
  // those claims. The empty lock acquisition pairs with the cv wait to rule
  // out the flip landing between a waiter's predicate check and its sleep.
  for (const auto& m : model_snapshot()) {
    { std::lock_guard<std::mutex> lk(m->mu); }
    m->cv.notify_all();
  }
  drain();
  {
    std::lock_guard<std::mutex> lk(impl_->timer_mu);
    impl_->timer_stop = true;
  }
  impl_->timer_cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(impl_->queue_mu);
    impl_->stopping = true;
  }
  impl_->queue_cv.notify_all();
  if (timer_.joinable()) timer_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Join in-flight AOT codegen jobs after the workers: a late promotion on a
  // dead engine is harmless, but the jobs touch the cache and tracer, which
  // must outlive them. New jobs cannot appear (loads reject, and the
  // stopping flag closes the spawn window for any load already past that
  // check).
  std::vector<std::thread> aot_jobs;
  {
    std::lock_guard<std::mutex> lk(impl_->aot_mu);
    impl_->aot_stopping = true;
    aot_jobs.swap(impl_->aot_jobs);
  }
  for (auto& t : aot_jobs) {
    if (t.joinable()) t.join();
  }
  if (own_artifact_dir_) {
    // Best-effort: a private artifact dir dies with its process anyway.
    std::error_code ec;
    std::filesystem::remove_all(artifact_dir_, ec);
    own_artifact_dir_ = false;
  }
}

}  // namespace lbnn::runtime
