#pragma once

#include <string>
#include <vector>

#include "runtime/serve_stats.hpp"

namespace lbnn::runtime {

/// One labelled report slice of a multi-engine Prometheus exposition: the
/// Router renders each shard's ServeReport with a shard="<index>" label on
/// every series. An empty `shard` string means no label (the single-engine
/// form).
struct LabelledReport {
  std::string shard;
  const ServeReport* report = nullptr;
};

/// Render a ServeReport in Prometheus text exposition format (one scrape
/// body). Metric names are stable and documented in README "Observability":
/// every `lbnn_*` series maps 1:1 onto a ServeReport field, with per-model
/// rows becoming a `model="<name>"` label (the persistent retired aggregate
/// exports as model="(retired)").
std::string to_prometheus(const ServeReport& report);

/// Multi-shard form (Router::metrics_prometheus): HELP/TYPE once per metric,
/// then one sample per shard tagged shard="<label>"; per-model series carry
/// both model and shard labels. One scrape body stays valid exposition —
/// series differ by label set, metadata is never repeated.
std::string to_prometheus(const std::vector<LabelledReport>& shards);

/// Render a ServeReport as a JSON object (same field names as the struct, one
/// "per_model" array). Machine-readable twin of Engine::report() for
/// dashboards and the bench trajectory harness.
std::string to_json(const ServeReport& report);

}  // namespace lbnn::runtime
