#pragma once

#include <string>

#include "runtime/serve_stats.hpp"

namespace lbnn::runtime {

/// Render a ServeReport in Prometheus text exposition format (one scrape
/// body). Metric names are stable and documented in README "Observability":
/// every `lbnn_*` series maps 1:1 onto a ServeReport field, with per-model
/// rows becoming a `model="<name>"` label (the persistent retired aggregate
/// exports as model="(retired)").
std::string to_prometheus(const ServeReport& report);

/// Render a ServeReport as a JSON object (same field names as the struct, one
/// "per_model" array). Machine-readable twin of Engine::report() for
/// dashboards and the bench trajectory harness.
std::string to_json(const ServeReport& report);

}  // namespace lbnn::runtime
