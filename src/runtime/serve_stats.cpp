#include "runtime/serve_stats.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace lbnn::runtime {

void LatencyHistogram::record(std::uint64_t micros) {
  std::size_t bucket = 0;
  if (micros > 0) {
    bucket = static_cast<std::size_t>(64 - countl_zero64(micros));
    if (bucket >= buckets_.size()) bucket = buckets_.size() - 1;
  }
  ++buckets_[bucket];
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

std::uint64_t LatencyHistogram::percentile_us(double p) const {
  if (count_ == 0) return 0;
  // Rank of the p-th percentile sample, 1-based, clamped to [1, count].
  auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i == 0 ? 0 : (i >= 63 ? ~0ull : (1ull << i) - 1);
    }
  }
  return ~0ull;
}

void ModelStats::on_requests_done(const std::vector<std::uint64_t>& latencies_us,
                                  std::uint64_t deadline_met) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::uint64_t us : latencies_us) hist_.record(us);
  requests_ += latencies_us.size();
  deadline_met_ += deadline_met;
}

void ModelStats::on_batch(std::size_t samples, std::size_t lane_capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  samples_ += samples;
  lanes_offered_ += lane_capacity;
}

void ModelStats::on_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  if (depth > queue_depth_hwm_) queue_depth_hwm_ = depth;
}

void ModelStats::on_shed() {
  std::lock_guard<std::mutex> lk(mu_);
  ++shed_;
}

void ModelStats::on_expired(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  expired_ += n;
}

void ModelStats::on_members_done(const std::vector<MemberSlot>& slots) {
  std::uint64_t ran = 0;
  std::uint64_t stolen = 0;
  std::uint64_t hedge_won = 0;
  std::array<std::uint64_t, 4> by_backend{};
  for (const MemberSlot& slot : slots) {
    if (!slot.ran) continue;
    ++ran;
    if (slot.stolen) ++stolen;
    if (slot.hedge_won) ++hedge_won;
    ++by_backend[slot.backend & 3];
  }
  if (ran == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  member_runs_ += ran;
  steals_ += stolen;
  hedge_wins_ += hedge_won;
  for (std::size_t b = 0; b < by_backend.size(); ++b) {
    member_runs_by_backend_[b] += by_backend[b];
  }
}

void ModelStats::on_hedge_launched() {
  std::lock_guard<std::mutex> lk(mu_);
  ++hedges_launched_;
}

void ModelStats::on_hedge_waste(std::uint64_t wasted_us) {
  std::lock_guard<std::mutex> lk(mu_);
  hedge_wasted_us_ += wasted_us;
}

void ModelStats::on_phases(const std::vector<std::uint64_t>& assembly_us,
                           std::uint64_t queue_wait_us, std::uint64_t execution_us,
                           std::uint64_t finalize_us) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::uint64_t us : assembly_us) assembly_hist_.record(us);
  queue_wait_hist_.record(queue_wait_us);
  execution_hist_.record(execution_us);
  finalize_hist_.record(finalize_us);
}

void ModelStats::merge_from(const ModelStats& other) {
  std::scoped_lock lk(mu_, other.mu_);
  hist_.merge(other.hist_);
  assembly_hist_.merge(other.assembly_hist_);
  queue_wait_hist_.merge(other.queue_wait_hist_);
  execution_hist_.merge(other.execution_hist_);
  finalize_hist_.merge(other.finalize_hist_);
  requests_ += other.requests_;
  batches_ += other.batches_;
  samples_ += other.samples_;
  lanes_offered_ += other.lanes_offered_;
  if (other.queue_depth_hwm_ > queue_depth_hwm_) queue_depth_hwm_ = other.queue_depth_hwm_;
  shed_ += other.shed_;
  expired_ += other.expired_;
  deadline_met_ += other.deadline_met_;
  member_runs_ += other.member_runs_;
  for (std::size_t b = 0; b < member_runs_by_backend_.size(); ++b) {
    member_runs_by_backend_[b] += other.member_runs_by_backend_[b];
  }
  steals_ += other.steals_;
  hedges_launched_ += other.hedges_launched_;
  hedge_wins_ += other.hedge_wins_;
  hedge_wasted_us_ += other.hedge_wasted_us_;
}

namespace {
PhaseStats phase_stats(const LatencyHistogram& h) {
  PhaseStats p;
  p.p50_us = h.percentile_us(50.0);
  p.p99_us = h.percentile_us(99.0);
  p.count = h.count();
  return p;
}
}  // namespace

ModelReport ModelStats::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  ModelReport r;
  r.requests = requests_;
  r.batches = batches_;
  r.samples = samples_;
  r.lanes_offered = lanes_offered_;
  r.lane_occupancy = lanes_offered_ == 0
                         ? 0.0
                         : static_cast<double>(samples_) / static_cast<double>(lanes_offered_);
  r.p50_latency_us = hist_.percentile_us(50.0);
  r.p99_latency_us = hist_.percentile_us(99.0);
  r.queue_depth_hwm = queue_depth_hwm_;
  r.shed = shed_;
  r.expired = expired_;
  r.deadline_met = deadline_met_;
  r.member_runs = member_runs_;
  r.member_runs_by_backend = member_runs_by_backend_;
  r.steals = steals_;
  r.hedges_launched = hedges_launched_;
  r.hedge_wins = hedge_wins_;
  r.hedge_wasted_us = hedge_wasted_us_;
  r.phases.assembly_wait = phase_stats(assembly_hist_);
  r.phases.queue_wait = phase_stats(queue_wait_hist_);
  r.phases.execution = phase_stats(execution_hist_);
  r.phases.finalize = phase_stats(finalize_hist_);
  return r;
}

void ServeStats::on_request_done(std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lk(mu_);
  hist_.record(latency_us);
  ++requests_;
  ++deadline_met_;  // single-request path carries no deadline: always good
}

void ServeStats::on_requests_done(const std::vector<std::uint64_t>& latencies_us,
                                  std::uint64_t deadline_met) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::uint64_t us : latencies_us) hist_.record(us);
  requests_ += latencies_us.size();
  deadline_met_ += deadline_met;
}

void ServeStats::on_batch(std::size_t samples, std::size_t lane_capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  samples_ += samples;
  lanes_offered_ += lane_capacity;
}

void ServeStats::on_sim_run(const SimCounters& c) {
  std::lock_guard<std::mutex> lk(mu_);
  sim_.wavefronts += c.wavefronts;
  sim_.macro_cycles += c.macro_cycles;
  sim_.clock_cycles += c.clock_cycles;
  sim_.lpe_computes += c.lpe_computes;
  sim_.route_writes += c.route_writes;
  sim_.input_reads += c.input_reads;
  sim_.feedback_words += c.feedback_words;
  util_weight_ += c.lpe_utilization * static_cast<double>(c.wavefronts);
}

void ServeStats::on_shed() {
  std::lock_guard<std::mutex> lk(mu_);
  ++shed_;
}

void ServeStats::on_expired(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  expired_ += n;
}

void ServeStats::on_members_done(const std::vector<MemberSlot>& slots) {
  // Derive everything outside the lock; the slots are immutable here (every
  // writer's store is ordered before finalize by the completion latch).
  std::uint64_t ran = 0;
  std::uint64_t stolen = 0;
  std::uint64_t hedge_won = 0;
  std::array<std::uint64_t, 4> by_backend{};
  std::int64_t first_done = 0;
  std::int64_t last_done = 0;
  for (const MemberSlot& slot : slots) {
    if (!slot.ran) continue;
    if (ran == 0 || slot.done_at_us < first_done) first_done = slot.done_at_us;
    if (ran == 0 || slot.done_at_us > last_done) last_done = slot.done_at_us;
    ++ran;
    if (slot.stolen) ++stolen;
    if (slot.hedge_won) ++hedge_won;
    ++by_backend[slot.backend & 3];
  }
  if (ran == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (const MemberSlot& slot : slots) {
    if (!slot.ran) continue;
    member_hist_.record(slot.service_us);
    if (member_samples_.size() < kMemberSampleCap) {
      member_samples_.push_back(slot.service_us);
    }
  }
  member_runs_ += ran;
  for (std::size_t b = 0; b < by_backend.size(); ++b) {
    member_runs_by_backend_[b] += by_backend[b];
  }
  steals_ += stolen;
  hedge_wins_ += hedge_won;
  if (ran > 1) {
    straggler_hist_.record(static_cast<std::uint64_t>(last_done - first_done));
  }
}

void ServeStats::on_hedge_launched() {
  std::lock_guard<std::mutex> lk(mu_);
  ++hedges_launched_;
}

void ServeStats::on_hedge_waste(std::uint64_t wasted_us) {
  std::lock_guard<std::mutex> lk(mu_);
  hedge_wasted_us_ += wasted_us;
}

void ServeStats::on_phases(const std::vector<std::uint64_t>& assembly_us,
                           std::uint64_t queue_wait_us, std::uint64_t execution_us,
                           std::uint64_t finalize_us) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::uint64_t us : assembly_us) assembly_hist_.record(us);
  queue_wait_hist_.record(queue_wait_us);
  execution_hist_.record(execution_us);
  finalize_hist_.record(finalize_us);
}

ServeReport ServeStats::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServeReport r;
  r.requests = requests_;
  r.batches = batches_;
  r.samples = samples_;
  r.lanes_offered = lanes_offered_;
  r.lane_occupancy = lanes_offered_ == 0
                         ? 0.0
                         : static_cast<double>(samples_) / static_cast<double>(lanes_offered_);
  r.p50_latency_us = hist_.percentile_us(50.0);
  r.p99_latency_us = hist_.percentile_us(99.0);
  r.wall_seconds = std::chrono::duration<double>(clock_->now() - start_).count();
  r.requests_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(requests_) / r.wall_seconds : 0.0;
  r.shed = shed_;
  r.expired = expired_;
  r.deadline_met = deadline_met_;
  r.goodput_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(deadline_met_) / r.wall_seconds : 0.0;
  r.member_runs = member_runs_;
  r.member_runs_by_backend = member_runs_by_backend_;
  r.steals = steals_;
  r.hedges_launched = hedges_launched_;
  r.hedge_wins = hedge_wins_;
  r.hedge_wasted_us = hedge_wasted_us_;
  r.member_p50_us = member_hist_.percentile_us(50.0);
  r.member_p99_us = member_hist_.percentile_us(99.0);
  if (!member_samples_.empty()) {
    std::vector<std::uint64_t> sorted(member_samples_);
    std::sort(sorted.begin(), sorted.end());
    const auto rank = [&sorted](double p) {
      std::size_t r = static_cast<std::size_t>(
          p / 100.0 * static_cast<double>(sorted.size()));
      return sorted[r < sorted.size() ? r : sorted.size() - 1];
    };
    r.member_p50_exact_us = rank(50.0);
    r.member_p99_exact_us = rank(99.0);
  }
  r.straggler_gap_p50_us = straggler_hist_.percentile_us(50.0);
  r.straggler_gap_p99_us = straggler_hist_.percentile_us(99.0);
  r.phases.assembly_wait = phase_stats(assembly_hist_);
  r.phases.queue_wait = phase_stats(queue_wait_hist_);
  r.phases.execution = phase_stats(execution_hist_);
  r.phases.finalize = phase_stats(finalize_hist_);
  r.sim = sim_;
  r.sim.lpe_utilization =
      sim_.wavefronts == 0 ? 0.0 : util_weight_ / static_cast<double>(sim_.wavefronts);
  return r;
}

void ServeStats::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  hist_ = LatencyHistogram{};
  member_hist_ = LatencyHistogram{};
  straggler_hist_ = LatencyHistogram{};
  assembly_hist_ = LatencyHistogram{};
  queue_wait_hist_ = LatencyHistogram{};
  execution_hist_ = LatencyHistogram{};
  finalize_hist_ = LatencyHistogram{};
  requests_ = batches_ = samples_ = lanes_offered_ = 0;
  shed_ = expired_ = deadline_met_ = 0;
  member_runs_ = steals_ = 0;
  member_runs_by_backend_.fill(0);
  member_samples_.clear();
  hedges_launched_ = hedge_wins_ = hedge_wasted_us_ = 0;
  sim_ = SimCounters{};
  util_weight_ = 0.0;
  start_ = clock_->now();
}

}  // namespace lbnn::runtime
