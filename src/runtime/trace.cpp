#include "runtime/trace.hpp"

#include <algorithm>
#include <chrono>

namespace lbnn::runtime {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

std::int64_t to_us(TimePoint tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp.time_since_epoch())
      .count();
}

// Minimal JSON string escaper: model names come from user code.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSubmit: return "submit";
    case TraceEventType::kAdmit: return "admit";
    case TraceEventType::kShed: return "shed";
    case TraceEventType::kSeal: return "seal";
    case TraceEventType::kEnqueue: return "enqueue";
    case TraceEventType::kDispatch: return "dispatch";
    case TraceEventType::kMemberClaim: return "member_claim";
    case TraceEventType::kMemberSteal: return "member_steal";
    case TraceEventType::kMemberDone: return "member_done";
    case TraceEventType::kHedgeLaunch: return "hedge_launch";
    case TraceEventType::kHedgeWin: return "hedge_win";
    case TraceEventType::kHedgeCancel: return "hedge_cancel";
    case TraceEventType::kExpire: return "expire";
    case TraceEventType::kRequestDone: return "request_done";
    case TraceEventType::kFinalize: return "finalize";
    case TraceEventType::kPromote: return "promote";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

bool TraceRing::try_push(const TraceEvent& ev) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = ev;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void TraceRing::drain_into(std::vector<TraceEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  while (tail != head) {
    out.push_back(slots_[tail & mask_]);
    ++tail;
  }
  tail_.store(tail, std::memory_order_release);
}

Tracer::Tracer(std::size_t num_workers, std::size_t ring_capacity,
               ClockSource& clock)
    : clock_(clock) {
  rings_.reserve(num_workers + 1);
  for (std::size_t i = 0; i < num_workers + 1; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity));
  }
}

void Tracer::register_model(std::uint64_t id, const std::string& name) {
  std::lock_guard<std::mutex> lk(names_mu_);
  names_[id] = name;
}

std::string Tracer::model_name(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(names_mu_);
  auto it = names_.find(id);
  return it == names_.end() ? std::string("model#") + std::to_string(id) : it->second;
}

void Tracer::emit(std::size_t track, TraceEvent ev) {
  if (track >= rings_.size()) track = kSharedTrack;
  ev.track = static_cast<std::uint16_t>(track);
  ev.ts_us = to_us(clock_.now());
  if (track == kSharedTrack) {
    // Multiple client threads share track 0: serialize the producer side so
    // the ring's SPSC contract holds. Stamp seq inside the lock so shared-
    // track events are ring-ordered by seq too.
    std::lock_guard<std::mutex> lk(shared_mu_);
    ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    rings_[kSharedTrack]->try_push(ev);
  } else {
    ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    rings_[track]->try_push(ev);
  }
}

std::vector<TraceEvent> Tracer::drain() {
  std::lock_guard<std::mutex> lk(consumer_mu_);
  std::vector<TraceEvent> out;
  for (auto& ring : rings_) ring->drain_into(out);
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::vector<std::uint64_t> Tracer::dropped_per_ring() const {
  std::vector<std::uint64_t> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) out.push_back(ring->dropped());
  return out;
}

void Tracer::export_chrome_trace(std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  export_chrome_events(os, /*pid=*/1, /*process_name=*/"", first);
  os << "\n],\"otherData\":{\"droppedEvents\":" << dropped() << "}}\n";
}

void Tracer::export_chrome_events(std::ostream& os, int pid,
                                  const std::string& process_name,
                                  bool& first) {
  const std::vector<TraceEvent> events = drain();
  const int kPid = pid;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  if (!process_name.empty()) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
       << ",\"args\":{\"name\":";
    write_json_string(os, process_name);
    os << "}}";
  }
  // Track metadata: tid 0 is the off-worker "clients" track, 1 + i = worker i.
  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":";
    write_json_string(os, tid == kSharedTrack ? std::string("clients")
                                              : "worker " + std::to_string(tid - 1));
    os << "}}";
  }
  auto common_args = [&](const TraceEvent& ev) {
    os << "\"model\":";
    write_json_string(os, model_name(ev.model_id));
    os << ",\"id\":" << ev.id << ",\"arg\":" << ev.arg << ",\"seq\":" << ev.seq;
    if (ev.flags & kTraceFlagStolen) os << ",\"stolen\":true";
    if (ev.flags & kTraceFlagHedge) os << ",\"hedge\":true";
    if (ev.flags & kTraceFlagExpired) os << ",\"expired\":true";
    if (ev.flags & kTraceFlagFailed) os << ",\"failed\":true";
    if (ev.flags & kTraceFlagSkipped) os << ",\"skipped\":true";
  };
  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case TraceEventType::kMemberDone: {
        // Render the member execution as a duration slice ending at ts_us.
        const std::int64_t dur = static_cast<std::int64_t>(ev.arg);
        sep();
        os << "{\"name\":";
        write_json_string(os, model_name(ev.model_id) + "/m" + std::to_string(ev.member));
        os << ",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":" << kPid
           << ",\"tid\":" << ev.track << ",\"ts\":" << (ev.ts_us - dur)
           << ",\"dur\":" << (dur > 0 ? dur : 1) << ",\"args\":{\"member\":"
           << ev.member << ",";
        common_args(ev);
        os << "}}";
        break;
      }
      case TraceEventType::kSubmit: {
        sep();
        os << "{\"name\":\"submit\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":" << kPid
           << ",\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us
           << ",\"dur\":1,\"args\":{";
        common_args(ev);
        os << "}}";
        // Flow start: arrow from submit to the completing worker.
        sep();
        os << "{\"name\":\"request\",\"cat\":\"serve\",\"ph\":\"s\",\"pid\":" << kPid
           << ",\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us
           << ",\"id\":" << ev.id << "}";
        break;
      }
      case TraceEventType::kRequestDone: {
        sep();
        os << "{\"name\":\"request_done\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":"
           << kPid << ",\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us
           << ",\"dur\":1,\"args\":{";
        common_args(ev);
        os << "}}";
        sep();
        os << "{\"name\":\"request\",\"cat\":\"serve\",\"ph\":\"f\",\"bp\":\"e\","
           << "\"pid\":" << kPid << ",\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us
           << ",\"id\":" << ev.id << "}";
        break;
      }
      default: {
        sep();
        os << "{\"name\":";
        write_json_string(os, to_string(ev.type));
        os << ",\"cat\":\"serve\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kPid
           << ",\"tid\":" << ev.track << ",\"ts\":" << ev.ts_us << ",\"args\":{";
        common_args(ev);
        os << "}}";
        break;
      }
    }
  }
}

}  // namespace lbnn::runtime
