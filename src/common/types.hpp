#pragma once

#include <cstdint>
#include <limits>

/// Fundamental identifier types shared across the library.
namespace lbnn {

/// Index of a node inside a Netlist. Ids are dense and topologically ordered:
/// every fanin of a node has a smaller id than the node itself.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the absent second fanin of a NOT gate).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Index of an MFG (maximal feasible subgraph) inside an MfgForest.
using MfgId = std::uint32_t;

inline constexpr MfgId kInvalidMfg = std::numeric_limits<MfgId>::max();

/// Logic level of a node. Primary inputs sit at level 0; gates at 1..Lmax.
using Level = std::int32_t;

/// A lane is the index of an LPE within an LPV (0..m-1).
using Lane = std::uint16_t;

inline constexpr Lane kInvalidLane = std::numeric_limits<Lane>::max();

}  // namespace lbnn
