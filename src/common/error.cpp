#include "common/error.hpp"

namespace lbnn {
namespace {

std::string format_location(const std::string& what, int line, int column) {
  return "line " + std::to_string(line) + ", col " + std::to_string(column) +
         ": " + what;
}

}  // namespace

ParseError::ParseError(const std::string& what, int line, int column)
    : Error(format_location(what, line, column)), line_(line), column_(column) {}

}  // namespace lbnn
