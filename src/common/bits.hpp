#pragma once

#include <cstdint>

namespace lbnn {

/// C++17 stand-ins for the <bit> helpers the codebase needs (the tier-1
/// build is -std=c++17; gcc/clang builtins compile to the same instructions).
inline int popcount32(std::uint32_t x) { return __builtin_popcount(x); }
inline int popcount64(std::uint64_t x) { return __builtin_popcountll(x); }
/// Undefined for x == 0 (matches the builtin's contract; callers guard).
inline int countr_zero32(std::uint32_t x) { return __builtin_ctz(x); }
inline int countl_zero32(std::uint32_t x) { return __builtin_clz(x); }
inline int countl_zero64(std::uint64_t x) { return __builtin_clzll(x); }
/// Smallest power of two >= x (x == 0 or 1 -> 1).
inline std::uint32_t bit_ceil32(std::uint32_t x) {
  if (x <= 1) return 1;
  return 1u << (32 - __builtin_clz(x - 1));
}

}  // namespace lbnn
