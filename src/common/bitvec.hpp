#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace lbnn {

/// A fixed-width packed vector of bits with word-parallel logic operations.
///
/// BitVec is the data word that flows through the LPU datapath: one operand is
/// `2m` bits wide, each bit lane carrying an independent Boolean sample (a
/// different image patch or batch element, per Sec. IV of the paper). The
/// reference netlist simulator uses the same type so LPU-vs-reference
/// equivalence is a plain operator== on BitVecs.
class BitVec {
 public:
  BitVec() = default;

  explicit BitVec(std::size_t width, bool fill = false)
      : width_(width),
        words_((width + 63) / 64, fill ? ~0ull : 0ull) {
    mask_tail();
  }

  std::size_t width() const { return width_; }
  std::size_t num_words() const { return words_.size(); }

  bool get(std::size_t i) const {
    LBNN_CHECK(i < width_, "BitVec::get out of range");
    return (words_[i / 64] >> (i % 64)) & 1ull;
  }

  void set(std::size_t i, bool v) {
    LBNN_CHECK(i < width_, "BitVec::set out of range");
    const std::uint64_t bit = 1ull << (i % 64);
    if (v) {
      words_[i / 64] |= bit;
    } else {
      words_[i / 64] &= ~bit;
    }
  }

  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t v) {
    words_[w] = v;
    if (w + 1 == words_.size()) mask_tail();
  }

  /// Number of set bits.
  std::size_t popcount() const;

  BitVec operator&(const BitVec& o) const { return binary(o, [](auto a, auto b) { return a & b; }); }
  BitVec operator|(const BitVec& o) const { return binary(o, [](auto a, auto b) { return a | b; }); }
  BitVec operator^(const BitVec& o) const { return binary(o, [](auto a, auto b) { return a ^ b; }); }

  BitVec operator~() const {
    BitVec r(*this);
    for (auto& w : r.words_) w = ~w;
    r.mask_tail();
    return r;
  }

  bool operator==(const BitVec& o) const {
    return width_ == o.width_ && words_ == o.words_;
  }
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  /// Fill all lanes from an RNG (for random test vectors).
  template <typename RngT>
  static BitVec random(std::size_t width, RngT& rng) {
    BitVec r(width);
    for (std::size_t w = 0; w < r.words_.size(); ++w) r.words_[w] = rng.next_u64();
    r.mask_tail();
    return r;
  }

 private:
  template <typename F>
  BitVec binary(const BitVec& o, F f) const {
    LBNN_CHECK(width_ == o.width_, "BitVec width mismatch");
    BitVec r(width_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      r.words_[w] = f(words_[w], o.words_[w]);
    }
    r.mask_tail();
    return r;
  }

  void mask_tail() {
    if (width_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ull << (width_ % 64)) - 1;
    }
  }

  std::size_t width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lbnn
