#include "common/bitvec.hpp"

#include <bit>

namespace lbnn {

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

}  // namespace lbnn
