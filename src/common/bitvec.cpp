#include "common/bitvec.hpp"

#include "common/bits.hpp"

namespace lbnn {

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(popcount64(w));
  return n;
}

}  // namespace lbnn
