#pragma once

#include <stdexcept>
#include <string>

namespace lbnn {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input (bad Verilog text, inconsistent netlist construction, ...).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column);

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// The compiler could not map the given network onto the given LPU
/// configuration (e.g. a logic level wider than any schedule can express).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

/// A simulation-time protocol violation (reading a buffer slot before it was
/// written, malformed program, ...). Indicates a compiler bug, so tests treat
/// any SimError as failure.
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation of an LpuSimulator::run: the caller's cancel
/// flag flipped mid-run, so the simulator abandoned the batch between
/// wavefronts. Not a program error — the serving runtime's speculative
/// member hedging uses it to stop the losing duplicate of a member
/// execution once the other copy has claimed the result slot.
class SimCancelled : public Error {
 public:
  explicit SimCancelled(const std::string& what) : Error(what) {}
};

/// A serving request missed its deadline: either rejected on the blocking
/// submit path because the queue's estimated drain time already exceeded it
/// (the non-blocking path reports SubmitStatus::kDeadlineUnmeetable instead),
/// or dropped by a worker that found it expired at dequeue.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

}  // namespace lbnn
