#pragma once

#include <cstdint>

namespace lbnn {

/// xoshiro256** — a small, fast, reproducible PRNG. We avoid std::mt19937 in
/// library code so that test fixtures and workload generators produce the same
/// streams on every platform and standard library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, per the xoshiro reference implementation.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // irrelevant for workload generation with bound << 2^64.
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lbnn
