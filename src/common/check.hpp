#pragma once

#include <sstream>
#include <stdexcept>

/// Internal-invariant checking. LBNN_CHECK is always on (the costs are
/// negligible next to the algorithms it guards) and throws std::logic_error so
/// a violated invariant surfaces as a test failure rather than UB.
#define LBNN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream lbnn_check_os_;                                   \
      lbnn_check_os_ << __FILE__ << ":" << __LINE__ << ": check `" << #cond \
                     << "` failed: " << msg;                               \
      throw std::logic_error(lbnn_check_os_.str());                        \
    }                                                                      \
  } while (false)
