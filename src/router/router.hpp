#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "runtime/engine.hpp"

namespace lbnn::router {

/// Fleet-level serving view: every shard's ServeReport plus their aggregate.
/// Counters in `total` are sums across shards; latency percentiles are the
/// MAX across shards (conservative — the fleet p99 is at least the worst
/// shard's p99, and log2-bucketed per-shard percentiles cannot be re-merged
/// exactly); rates (requests_per_sec, goodput_per_sec) are sums and
/// wall_seconds is the max. total.per_model merges same-named rows across
/// shards with the same rules, so a replicated model reads as one row.
struct FleetReport {
  runtime::ServeReport total;
  std::vector<runtime::ServeReport> per_shard;  ///< index = shard id
};

struct RouterOptions {
  /// In-process Engine shards. Each shard is a full Engine (own workers,
  /// program cache, stats plane, trace rings); the router owns their
  /// lifetime.
  std::size_t num_shards = 2;
  /// Per-shard engine template. `engine.clock` is shared by every shard and
  /// the rebalancer, so one ManualClock drives the whole fleet in tests.
  /// When `engine.aot` is on and `engine.artifact_dir` is empty, the router
  /// substitutes ONE shared temp directory for the whole fleet (removed at
  /// shutdown), so replicated models pay for native codegen once and the
  /// other shards warm-load the artifact from disk.
  runtime::EngineOptions engine;
  /// Replicas created per load() before any rebalancing (clamped to
  /// [1, num_shards]).
  std::size_t initial_replicas = 1;
  /// Rebalancer cadence on the injected clock. 0 disables the background
  /// thread entirely — rebalance_now() still works for scripted ticks.
  std::chrono::microseconds rebalance_interval{0};
  /// Add a replica when a model's shed fraction over the last window
  /// (shed / (shed + completed)) reaches this. <= 0 adds on any shed.
  double add_shed_fraction = 0.05;
  /// Retire a replica only after this many consecutive windows in which the
  /// model shed nothing AND its demand fits the remaining replicas.
  std::size_t retire_idle_ticks = 3;
  /// Demand-fit slack for retirement: the last window's completed work
  /// (completed * ewma_us) must use at most this fraction of the remaining
  /// replicas' capacity ((replicas - 1) * workers * window_us). Lower is more
  /// conservative.
  double retire_headroom = 0.5;
  /// Seed for the power-of-two-choices candidate picker.
  std::uint64_t seed = 0x7073686172640001ull;
};

struct RoutedModel;  // internal; defined in router.cpp

/// Ref-counted reference to a model loaded through a Router — the fleet-level
/// twin of runtime::ModelHandle. Copyable and cheap; holding a copy across
/// unload() never dangles, submits just fail with kUnloaded. A
/// default-constructed handle is empty. Handles are router-specific.
class RoutedHandle {
 public:
  RoutedHandle() = default;

  explicit operator bool() const { return model_ != nullptr; }
  const std::string& name() const;
  std::size_t num_inputs() const;
  std::size_t num_outputs() const;
  /// False once unload() has begun on this model.
  bool loaded() const;

 private:
  friend class Router;
  explicit RoutedHandle(std::shared_ptr<RoutedModel> model)
      : model_(std::move(model)) {}
  std::shared_ptr<RoutedModel> model_;
};

/// Multi-engine sharding layer: N in-process Engine shards behind the same
/// handle-based serving API the Engine itself presents.
///
/// Replica sets: load() compiles a model onto `initial_replicas` shards
/// (parallel load_async — the compiles overlap) and keeps the netlist so more
/// replicas can be added later without the caller. Each per-shard replica is
/// an ordinary ref-counted ModelHandle, so replica adds and retires reuse the
/// Engine's zero-downtime load/drain machinery: a retiring replica is removed
/// from the routing set FIRST, then drained via Engine::unload — every
/// request it already accepted still resolves.
///
/// Routing: power-of-two-choices over the admission plane. Two distinct
/// replicas are sampled per request and the one with the smaller
/// ModelProbe::drain_estimate_us() wins (ties: fewer outstanding requests,
/// then the lower shard id — fully deterministic on a cold fleet). The probe
/// reads the same EWMA/queue counters admission shedding uses; the router
/// never maintains a second estimator. try_submit retries the losing
/// candidate once on kQueueFull/kUnloaded — but NEVER on
/// kDeadlineUnmeetable: the winner had the minimum drain estimate, so the
/// loser would shed too, and retrying would double-count the shed.
///
/// Rebalancing: a background tick on the injected ClockSource (ManualClock
/// in tests — zero real sleeps) diffs each model's per-shard shed/completed
/// counters over the window. A model shedding more than add_shed_fraction of
/// its offered load gains a replica on the least-loaded non-hosting shard; a
/// model that shed nothing for retire_idle_ticks consecutive windows and
/// whose demand fits one fewer replica (retire_headroom) loses its
/// least-loaded replica, drained without dropping anything.
///
/// Observability: report() aggregates per-shard ServeReports into a
/// FleetReport; metrics_prometheus() tags every series with shard="<id>";
/// export_trace() renders all shards into one Chrome trace, one process per
/// shard.
///
/// Thread-safety: every public method may be called from any thread.
class Router {
 public:
  explicit Router(const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Compile `nl` onto the initial replica set (least-loaded shards) and
  /// register the model. Throws lbnn::Error if a model of this name is
  /// already loaded — per-shard stats rows are keyed by name, so fleet names
  /// must be unique.
  RoutedHandle load(const std::string& name, const Netlist& nl,
                    const runtime::ModelOptions& mopt = {});
  /// load() as a `parallel_lpus`-way parallel LPU assembly on every replica.
  RoutedHandle load_parallel(const std::string& name, const Netlist& nl,
                             std::uint32_t parallel_lpus,
                             const runtime::ModelOptions& mopt = {});
  /// load() on a background thread; the future rethrows compile errors.
  std::future<RoutedHandle> load_async(std::string name, Netlist nl,
                                       runtime::ModelOptions mopt = {});

  /// Blocking submit, routed to the winning replica (see class comment).
  /// Semantics match Engine::submit, including the DeadlineExceeded throw on
  /// a doomed deadline — which is final (no second candidate is tried).
  std::future<std::vector<bool>> submit(const RoutedHandle& model,
                                        std::vector<bool> inputs,
                                        runtime::TimePoint deadline =
                                            runtime::kNoDeadline);

  /// Non-blocking submit with one fallback: the losing candidate is tried
  /// once on kQueueFull/kUnloaded/kShuttingDown, never on
  /// kDeadlineUnmeetable. Semantics otherwise match Engine::try_submit.
  runtime::SubmitStatus try_submit(const RoutedHandle& model,
                                   std::vector<bool> inputs,
                                   std::future<std::vector<bool>>* result,
                                   runtime::TimePoint deadline =
                                       runtime::kNoDeadline);

  /// Stop routing to this model, drain every replica (all accepted futures
  /// still resolve), and drop it from the fleet. Returns false if the handle
  /// is empty or already unloaded (concurrent unloads: one caller gets true).
  bool unload(const RoutedHandle& model);

  /// Manually scale a model's replica set to n (clamped to [1, num_shards]).
  /// Scale-up compiles on every new shard in parallel; scale-down retires
  /// replicas one at a time, each removed from routing before its drain — no
  /// accepted request is ever dropped by a retire.
  void set_replicas(const RoutedHandle& model, std::size_t n);
  /// Current replica count (0 once unloaded).
  std::size_t replicas(const RoutedHandle& model) const;
  /// Shard ids currently hosting a replica, ascending.
  std::vector<std::size_t> replica_shards(const RoutedHandle& model) const;

  /// Run one rebalancer tick inline (also bumps the tick counter). Serialized
  /// with the background tick.
  void rebalance_now();
  /// Ticks completed since construction (background + rebalance_now).
  std::uint64_t rebalance_ticks() const;
  /// Block until at least n ticks have completed. Pure condition-variable
  /// wait — no clock involved, so ManualClock tests stay sleep-free:
  /// advance() the clock past the interval, then wait here.
  void wait_for_ticks(std::uint64_t n);

  /// Seal and drain every shard.
  void drain();
  /// drain(), stop the rebalancer, shut every shard down. Idempotent; the
  /// destructor calls it.
  void shutdown();

  FleetReport report() const;
  /// Prometheus exposition with every series labelled shard="<id>" (one
  /// HELP/TYPE block per metric, N samples each; per-model series carry
  /// model= and shard=).
  std::string metrics_prometheus() const;
  /// One Chrome trace for the whole fleet: shard i renders as process i + 1
  /// ("shard i"), with its worker/client tracks as threads. Drop counts are
  /// summed into otherData.
  void export_trace(std::ostream& os);

  /// Test instrumentation, mirroring Engine::set_dispatch_hook: called by
  /// try_submit between candidate sampling and the first dispatch attempt —
  /// the window where a concurrent set_replicas/flip can retire a sampled
  /// replica. The retry-vs-retire tests shrink the replica set inside the
  /// hook to pin that the retry re-samples the current set. nullptr clears.
  void set_route_hook(std::function<void()> hook);

  std::size_t num_shards() const { return shards_.size(); }
  /// Direct access to one shard's Engine (tests, per-shard introspection).
  runtime::Engine& shard(std::size_t i) { return *shards_[i]; }
  runtime::ClockSource& clock() const { return *clock_; }
  /// The fleet-wide AOT artifact directory (empty when AOT is off). Shared by
  /// every shard; router-owned unless the caller named one in RouterOptions.
  const std::string& artifact_dir() const {
    return options_.engine.artifact_dir;
  }

 private:
  struct Candidates;

  std::shared_ptr<RoutedModel> model_of(const RoutedHandle& handle) const;
  RoutedHandle load_impl(const std::string& name, const Netlist& nl,
                         std::uint32_t parallel_lpus,
                         const runtime::ModelOptions& mopt);
  /// Pick up to two distinct replica candidates (p2c) and order them
  /// winner-first by drain estimate / outstanding / shard id.
  Candidates route(const RoutedModel& model);
  /// Shards not hosting `model`, least-loaded first: by Engine::in_flight(),
  /// then hosted-model count (a cold fleet spreads loads round-robin), then
  /// the shard id. Empty when the model is on every shard.
  std::vector<std::size_t> placement_order(const RoutedModel& model) const;
  /// Add one replica of `model` on `shard` (compiles synchronously).
  void add_replica(const std::shared_ptr<RoutedModel>& model,
                   std::size_t shard);
  /// Retire the least-loaded replica: removed from routing first, then
  /// drained via Engine::unload. No-op if only one replica remains.
  void retire_replica(const std::shared_ptr<RoutedModel>& model);
  void rebalance_loop();
  void tick();
  void tick_model(const std::shared_ptr<RoutedModel>& model,
                  const std::vector<runtime::ServeReport>& reports,
                  std::uint64_t window_us);

  RouterOptions options_;
  runtime::ClockSource* clock_;  ///< options_.engine.clock or the system clock
  bool own_artifact_dir_ = false;  ///< we created engine.artifact_dir
  std::vector<std::unique_ptr<runtime::Engine>> shards_;

  mutable std::mutex models_mu_;
  std::vector<std::shared_ptr<RoutedModel>> models_;
  /// Guarded by models_mu_; try_submit snapshots the shared_ptr and calls
  /// outside the lock (see set_route_hook).
  std::shared_ptr<const std::function<void()>> route_hook_;

  std::mutex rng_mu_;
  Rng rng_;

  std::mutex tick_mu_;          ///< one tick at a time (background or manual)
  runtime::TimePoint last_tick_;  ///< guarded by tick_mu_

  mutable std::mutex ticks_mu_;
  std::condition_variable ticks_cv_;
  std::uint64_t ticks_ = 0;
  bool stop_ = false;
  std::thread rebalancer_;
};

}  // namespace lbnn::router
