#include "router/router.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "runtime/metrics.hpp"

namespace lbnn::router {

using runtime::Engine;
using runtime::ModelHandle;
using runtime::ModelProbe;
using runtime::ModelReport;
using runtime::PhaseStats;
using runtime::ServeReport;
using runtime::SubmitStatus;
using runtime::TimePoint;

namespace {

/// Per-(model, shard) counter snapshot from the last rebalancer tick; deltas
/// against it give the window's traffic. Entries are erased when the replica
/// retires (the shard folds the row into its retired aggregate, so the next
/// hosting stint restarts from zero).
struct ShardWindow {
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
};

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0';
}

/// One artifact directory for the whole fleet, so replica shards share
/// content-keyed native artifacts: the first shard to finish codegen for a
/// program publishes the .so, every other shard's codegen job finds it on
/// disk (a native_disk_hit) instead of recompiling. Mirrors the Engine's
/// private-dir naming with a "fleet" marker for debuggability.
std::string make_fleet_artifact_dir() {
  static std::atomic<std::uint64_t> counter{0};
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("lbnn-aot-fleet-" + std::to_string(static_cast<long>(::getpid())) + "-" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir);
  return dir.string();
}

const ModelReport* find_model_row(const ServeReport& report,
                                  const std::string& name) {
  for (const ModelReport& m : report.per_model) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void merge_phase(PhaseStats& into, const PhaseStats& from) {
  into.p50_us = std::max(into.p50_us, from.p50_us);
  into.p99_us = std::max(into.p99_us, from.p99_us);
  into.count += from.count;
}

void merge_phases(runtime::PhaseBreakdown& into,
                  const runtime::PhaseBreakdown& from) {
  merge_phase(into.assembly_wait, from.assembly_wait);
  merge_phase(into.queue_wait, from.queue_wait);
  merge_phase(into.execution, from.execution);
  merge_phase(into.finalize, from.finalize);
}

void merge_model_row(ModelReport& into, const ModelReport& from) {
  into.requests += from.requests;
  into.batches += from.batches;
  into.samples += from.samples;
  into.lanes_offered += from.lanes_offered;
  into.lane_occupancy =
      into.lanes_offered == 0
          ? 0.0
          : static_cast<double>(into.samples) / into.lanes_offered;
  into.p50_latency_us = std::max(into.p50_latency_us, from.p50_latency_us);
  into.p99_latency_us = std::max(into.p99_latency_us, from.p99_latency_us);
  into.queue_depth_hwm = std::max(into.queue_depth_hwm, from.queue_depth_hwm);
  into.shed += from.shed;
  into.expired += from.expired;
  into.deadline_met += from.deadline_met;
  into.goodput_per_sec += from.goodput_per_sec;
  into.member_runs += from.member_runs;
  into.steals += from.steals;
  into.hedges_launched += from.hedges_launched;
  into.hedge_wins += from.hedge_wins;
  into.hedge_wasted_us += from.hedge_wasted_us;
  merge_phases(into.phases, from.phases);
}

}  // namespace

/// One per-shard copy of a routed model: the shard id plus the ordinary
/// Engine handle routing submits through.
struct Replica {
  std::size_t shard = 0;
  ModelHandle handle;
};

struct RoutedModel {
  std::string name;
  /// Retained load arguments so the rebalancer can add replicas without the
  /// caller (each shard compiles its own copy; same-shard duplicate loads
  /// still dedup through that shard's program cache).
  Netlist netlist;
  std::uint32_t parallel_lpus = 1;
  runtime::ModelOptions mopt;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;

  mutable std::mutex mu;
  std::vector<Replica> replicas;         ///< guarded by mu
  std::map<std::size_t, ShardWindow> window;  ///< guarded by mu
  std::size_t fit_ticks = 0;             ///< guarded by mu
  std::atomic<bool> loaded{true};

  std::vector<Replica> snapshot() const {
    std::lock_guard<std::mutex> lk(mu);
    return replicas;
  }
};

const std::string& RoutedHandle::name() const {
  if (!model_) throw Error("empty RoutedHandle");
  return model_->name;
}

std::size_t RoutedHandle::num_inputs() const {
  if (!model_) throw Error("empty RoutedHandle");
  return model_->num_inputs;
}

std::size_t RoutedHandle::num_outputs() const {
  if (!model_) throw Error("empty RoutedHandle");
  return model_->num_outputs;
}

bool RoutedHandle::loaded() const {
  return model_ != nullptr && model_->loaded.load(std::memory_order_acquire);
}

struct Router::Candidates {
  Replica winner;
  Replica loser;       ///< empty handle when only one replica exists
  bool has_loser = false;
};

Router::Router(const RouterOptions& options)
    : options_(options),
      clock_(options.engine.clock != nullptr
                 ? options.engine.clock
                 : &runtime::SystemClock::instance()),
      rng_(options.seed) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.initial_replicas == 0) options_.initial_replicas = 1;
  options_.initial_replicas =
      std::min(options_.initial_replicas, options_.num_shards);
  // When AOT is on and the caller named no artifact_dir, give every shard ONE
  // shared directory instead of letting each Engine make a private one: a
  // model replicated across shards then pays for codegen once and the other
  // replicas warm-load the .so from disk. The gate mirrors the Engine's own
  // enablement so we never create a directory no shard will use.
  const bool aot_on = (options_.engine.aot || env_set("LBNN_FORCE_AOT")) &&
                      !env_set("LBNN_NO_AOT") && options_.engine.simd &&
                      !env_set("LBNN_FORCE_SCALAR");
  if (aot_on && options_.engine.artifact_dir.empty()) {
    options_.engine.artifact_dir = make_fleet_artifact_dir();
    own_artifact_dir_ = true;
  }
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Engine>(options_.engine));
  }
  last_tick_ = clock_->now();
  if (options_.rebalance_interval.count() > 0) {
    rebalancer_ = std::thread([this] { rebalance_loop(); });
  }
}

Router::~Router() { shutdown(); }

std::shared_ptr<RoutedModel> Router::model_of(const RoutedHandle& h) const {
  if (!h.model_) throw Error("empty RoutedHandle");
  return h.model_;
}

RoutedHandle Router::load(const std::string& name, const Netlist& nl,
                          const runtime::ModelOptions& mopt) {
  return load_impl(name, nl, 1, mopt);
}

RoutedHandle Router::load_parallel(const std::string& name, const Netlist& nl,
                                   std::uint32_t parallel_lpus,
                                   const runtime::ModelOptions& mopt) {
  return load_impl(name, nl, parallel_lpus == 0 ? 1 : parallel_lpus, mopt);
}

std::future<RoutedHandle> Router::load_async(std::string name, Netlist nl,
                                             runtime::ModelOptions mopt) {
  return std::async(std::launch::async,
                    [this, name = std::move(name), nl = std::move(nl),
                     mopt]() { return load(name, nl, mopt); });
}

RoutedHandle Router::load_impl(const std::string& name, const Netlist& nl,
                               std::uint32_t parallel_lpus,
                               const runtime::ModelOptions& mopt) {
  {
    std::lock_guard<std::mutex> lk(models_mu_);
    for (const auto& m : models_) {
      if (m->name == name) {
        throw Error("model '" + name + "' is already loaded in this router");
      }
    }
  }
  auto model = std::make_shared<RoutedModel>();
  model->name = name;
  model->netlist = nl;
  model->parallel_lpus = parallel_lpus;
  model->mopt = mopt;

  // Initial placement: the least-loaded shards. Compiles overlap — one
  // load_async per target shard, then a join.
  std::vector<std::size_t> order = placement_order(*model);
  order.resize(std::min(options_.initial_replicas, order.size()));
  std::vector<std::future<ModelHandle>> pending;
  pending.reserve(order.size());
  for (std::size_t shard : order) {
    if (parallel_lpus > 1) {
      // load_parallel has no async form; compile inline (rare path).
      pending.push_back(std::async(std::launch::deferred, [=] {
        return shards_[shard]->load_parallel(name, nl, parallel_lpus, mopt);
      }));
    } else {
      pending.push_back(shards_[shard]->load_async(name, nl, mopt));
    }
  }
  std::vector<Replica> replicas;
  replicas.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    replicas.push_back({order[i], pending[i].get()});
  }
  model->num_inputs = replicas.front().handle.num_inputs();
  model->num_outputs = replicas.front().handle.num_outputs();
  {
    std::lock_guard<std::mutex> lk(model->mu);
    model->replicas = std::move(replicas);
  }
  {
    std::lock_guard<std::mutex> lk(models_mu_);
    models_.push_back(model);
  }
  return RoutedHandle(model);
}

std::vector<std::size_t> Router::placement_order(
    const RoutedModel& model) const {
  std::vector<bool> hosting(shards_.size(), false);
  {
    std::lock_guard<std::mutex> lk(model.mu);
    for (const Replica& r : model.replicas) hosting[r.shard] = true;
  }
  // (in_flight, hosted models, shard): live load first, then model count so
  // a cold fleet spreads loads round-robin instead of piling onto shard 0,
  // then the id for determinism.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> load;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!hosting[i]) {
      load.emplace_back(shards_[i]->in_flight(), shards_[i]->num_models(), i);
    }
  }
  std::sort(load.begin(), load.end());
  std::vector<std::size_t> out;
  out.reserve(load.size());
  for (const auto& t : load) out.push_back(std::get<2>(t));
  return out;
}

Router::Candidates Router::route(const RoutedModel& model) {
  std::vector<Replica> replicas = model.snapshot();
  if (replicas.empty()) return {};
  Candidates c;
  if (replicas.size() == 1) {
    c.winner = replicas[0];
    return c;
  }
  std::size_t a = 0, b = 1;
  if (replicas.size() > 2) {
    std::lock_guard<std::mutex> lk(rng_mu_);
    a = rng_.next_below(replicas.size());
    b = rng_.next_below(replicas.size() - 1);
    if (b >= a) ++b;
  }
  // Order winner-first: smaller drain estimate, then fewer outstanding
  // requests (outstanding bumps the instant a request is accepted, so a cold
  // fleet — every estimate 0 — still spreads deterministically), then the
  // lower shard id.
  const ModelProbe pa = shards_[replicas[a].shard]->probe(replicas[a].handle);
  const ModelProbe pb = shards_[replicas[b].shard]->probe(replicas[b].handle);
  const auto key = [](const ModelProbe& p, std::size_t shard) {
    return std::make_tuple(p.drain_estimate_us(), p.outstanding, shard);
  };
  if (key(pb, replicas[b].shard) < key(pa, replicas[a].shard)) std::swap(a, b);
  c.winner = replicas[a];
  c.loser = replicas[b];
  c.has_loser = true;
  return c;
}

std::future<std::vector<bool>> Router::submit(const RoutedHandle& h,
                                              std::vector<bool> inputs,
                                              TimePoint deadline) {
  auto model = model_of(h);
  Candidates c = route(*model);
  if (!c.winner.handle) throw Error("model '" + model->name + "' is unloaded");
  if (!c.has_loser) {
    return shards_[c.winner.shard]->submit(c.winner.handle, std::move(inputs),
                                           deadline);
  }
  // A replica can retire between routing and submission; fall over once
  // then. DeadlineExceeded is final — the winner had the minimum drain
  // estimate, the loser would shed too.
  if (!c.winner.handle.loaded()) std::swap(c.winner, c.loser);
  std::vector<bool> copy = inputs;  // retry payload: the first attempt
                                    // consumes `inputs` at the call site,
                                    // throw or no throw
  try {
    return shards_[c.winner.shard]->submit(c.winner.handle, std::move(inputs),
                                           deadline);
  } catch (const DeadlineExceeded&) {
    throw;
  } catch (const Error&) {
    // Retry against the CURRENT replica set, not the loser sampled before
    // the first attempt: a set_replicas retire or an alias flip may have
    // removed that replica from routing while the attempt ran, and the stale
    // handle would just throw "unloaded" for a model that is still loaded.
    Candidates r = route(*model);
    if (!r.winner.handle) throw;
    Replica retry = r.winner;
    if (r.has_loser && r.winner.shard == c.winner.shard) retry = r.loser;
    return shards_[retry.shard]->submit(retry.handle, std::move(copy),
                                        deadline);
  }
}

SubmitStatus Router::try_submit(const RoutedHandle& h,
                                std::vector<bool> inputs,
                                std::future<std::vector<bool>>* result,
                                TimePoint deadline) {
  auto model = model_of(h);
  Candidates c = route(*model);
  if (!c.winner.handle) return SubmitStatus::kUnloaded;
  std::vector<bool> copy;
  if (c.has_loser) copy = inputs;  // keep a retry payload
  {
    std::shared_ptr<const std::function<void()>> hook;
    {
      std::lock_guard<std::mutex> lk(models_mu_);
      hook = route_hook_;
    }
    if (hook) (*hook)();
  }
  const SubmitStatus first = shards_[c.winner.shard]->try_submit(
      c.winner.handle, std::move(inputs), result, deadline);
  if (first == SubmitStatus::kAccepted ||
      first == SubmitStatus::kDeadlineUnmeetable || !c.has_loser) {
    // kDeadlineUnmeetable never retries: the winner had the minimum drain
    // estimate, so the loser sheds too — and the fleet must count exactly
    // one shed per refused request (books: accepted + shed + expired).
    return first;
  }
  // Retry against the CURRENT replica set, not the pair sampled above: while
  // the first attempt ran, a set_replicas retire or an alias flip may have
  // removed the sampled loser from routing, and retrying the stale handle
  // would surface kUnloaded for a model that is still loaded. Prefer a
  // replica other than the one that just refused when the fresh sample
  // offers one.
  Candidates r = route(*model);
  if (!r.winner.handle) return first;
  Replica retry = r.winner;
  if (r.has_loser && r.winner.shard == c.winner.shard) retry = r.loser;
  return shards_[retry.shard]->try_submit(retry.handle, std::move(copy),
                                          result, deadline);
}

void Router::set_route_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(models_mu_);
  if (hook) {
    route_hook_ =
        std::make_shared<const std::function<void()>>(std::move(hook));
  } else {
    route_hook_ = nullptr;
  }
}

bool Router::unload(const RoutedHandle& h) {
  if (!h.model_) return false;
  auto model = h.model_;
  if (!model->loaded.exchange(false, std::memory_order_acq_rel)) return false;
  {
    std::lock_guard<std::mutex> lk(models_mu_);
    models_.erase(std::remove(models_.begin(), models_.end(), model),
                  models_.end());
  }
  std::vector<Replica> replicas;
  {
    std::lock_guard<std::mutex> lk(model->mu);
    replicas = std::move(model->replicas);
    model->replicas.clear();
    model->window.clear();
  }
  for (Replica& r : replicas) shards_[r.shard]->unload(r.handle);
  return true;
}

void Router::add_replica(const std::shared_ptr<RoutedModel>& model,
                         std::size_t shard) {
  ModelHandle handle =
      model->parallel_lpus > 1
          ? shards_[shard]->load_parallel(model->name, model->netlist,
                                          model->parallel_lpus, model->mopt)
          : shards_[shard]->load(model->name, model->netlist, model->mopt);
  std::lock_guard<std::mutex> lk(model->mu);
  if (!model->loaded.load(std::memory_order_acquire)) {
    // Lost the race with unload(): don't resurrect a routing entry; the
    // handle going out of scope leaves only an idle engine-side model, which
    // we unload below.
  } else {
    model->replicas.push_back({shard, handle});
    return;
  }
  shards_[shard]->unload(handle);
}

void Router::retire_replica(const std::shared_ptr<RoutedModel>& model) {
  Replica victim;
  {
    std::lock_guard<std::mutex> lk(model->mu);
    if (model->replicas.size() <= 1) return;
    // Least-loaded replica goes (ties: the HIGHEST shard id, biasing the
    // fleet back toward low shards so placement stays deterministic).
    std::size_t best = 0;
    auto best_key = std::make_tuple(std::uint64_t{0}, std::size_t{0});
    for (std::size_t i = 0; i < model->replicas.size(); ++i) {
      const Replica& r = model->replicas[i];
      const ModelProbe p = shards_[r.shard]->probe(r.handle);
      const auto key = std::make_tuple(p.drain_estimate_us() + p.outstanding,
                                       shards_.size() - r.shard);
      if (i == 0 || key < best_key) {
        best = i;
        best_key = key;
      }
    }
    victim = model->replicas[best];
    // Out of the routing set FIRST: no new request can reach the replica
    // once the drain below starts, so nothing accepted is ever dropped.
    model->replicas.erase(model->replicas.begin() +
                          static_cast<std::ptrdiff_t>(best));
    model->window.erase(victim.shard);
  }
  shards_[victim.shard]->unload(victim.handle);
}

void Router::set_replicas(const RoutedHandle& h, std::size_t n) {
  auto model = model_of(h);
  n = std::max<std::size_t>(1, std::min(n, shards_.size()));
  std::size_t current;
  {
    std::lock_guard<std::mutex> lk(model->mu);
    current = model->replicas.size();
  }
  if (n > current) {
    std::vector<std::size_t> order = placement_order(*model);
    order.resize(std::min(n - current, order.size()));
    std::vector<std::thread> loaders;
    loaders.reserve(order.size());
    for (std::size_t shard : order) {
      loaders.emplace_back([this, model, shard] { add_replica(model, shard); });
    }
    for (std::thread& t : loaders) t.join();
  } else {
    while (current > n) {
      retire_replica(model);
      --current;
    }
  }
}

std::size_t Router::replicas(const RoutedHandle& h) const {
  auto model = model_of(h);
  std::lock_guard<std::mutex> lk(model->mu);
  return model->replicas.size();
}

std::vector<std::size_t> Router::replica_shards(const RoutedHandle& h) const {
  auto model = model_of(h);
  std::vector<std::size_t> out;
  {
    std::lock_guard<std::mutex> lk(model->mu);
    for (const Replica& r : model->replicas) out.push_back(r.shard);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Router::rebalance_loop() {
  std::unique_lock<std::mutex> lk(ticks_mu_);
  // Fixed absolute cadence (next += interval, never now + interval): a
  // ManualClock advance of k intervals yields exactly k ticks no matter how
  // the advance interleaves with the loop re-registering its wait — which is
  // what makes wait_for_ticks(n) after advance(n * interval) deterministic.
  TimePoint next = clock_->now() + options_.rebalance_interval;
  while (!stop_) {
    clock_->wait_until(lk, ticks_cv_, next, [&] { return stop_; });
    if (stop_) break;
    next += options_.rebalance_interval;
    lk.unlock();
    tick();
    lk.lock();
  }
}

void Router::rebalance_now() { tick(); }

void Router::tick() {
  std::lock_guard<std::mutex> serialize(tick_mu_);
  const TimePoint now = clock_->now();
  const auto window_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - last_tick_)
          .count());
  last_tick_ = now;

  std::vector<ServeReport> reports;
  reports.reserve(shards_.size());
  for (const auto& s : shards_) reports.push_back(s->report());

  std::vector<std::shared_ptr<RoutedModel>> models;
  {
    std::lock_guard<std::mutex> lk(models_mu_);
    models = models_;
  }
  for (const auto& model : models) tick_model(model, reports, window_us);

  {
    std::lock_guard<std::mutex> lk(ticks_mu_);
    ++ticks_;
  }
  ticks_cv_.notify_all();
}

void Router::tick_model(const std::shared_ptr<RoutedModel>& model,
                        const std::vector<ServeReport>& reports,
                        std::uint64_t window_us) {
  if (!model->loaded.load(std::memory_order_acquire)) return;

  // Window deltas + the decision, under the model lock; any engine calls
  // (compile, drain) happen after it drops.
  enum class Action { kNone, kAdd, kRetire };
  Action action = Action::kNone;
  {
    std::lock_guard<std::mutex> lk(model->mu);
    std::uint64_t shed_delta = 0, done_delta = 0, max_ewma_us = 0;
    for (const Replica& r : model->replicas) {
      const ModelReport* row = find_model_row(reports[r.shard], model->name);
      ShardWindow& prev = model->window[r.shard];
      if (row != nullptr) {
        shed_delta += row->shed - std::min(prev.shed, row->shed);
        done_delta += row->requests - std::min(prev.completed, row->requests);
        prev.shed = row->shed;
        prev.completed = row->requests;
      }
      max_ewma_us = std::max(max_ewma_us,
                             shards_[r.shard]->probe(r.handle).ewma_item_us);
    }
    const std::uint64_t offered = shed_delta + done_delta;
    const bool shedding =
        shed_delta > 0 &&
        static_cast<double>(shed_delta) >=
            options_.add_shed_fraction * static_cast<double>(offered);
    if (shedding && model->replicas.size() < shards_.size()) {
      action = Action::kAdd;
      model->fit_ticks = 0;
    } else if (shed_delta == 0 && model->replicas.size() > 1) {
      // Would the window's completed work have fit one fewer replica? With
      // no service signal (all EWMAs 0) or a zero-length window, only a
      // fully idle model counts as fitting.
      const double capacity_us =
          options_.retire_headroom *
          static_cast<double>((model->replicas.size() - 1) *
                              shards_[0]->num_workers()) *
          static_cast<double>(window_us);
      const bool fits =
          max_ewma_us == 0 || window_us == 0
              ? done_delta == 0
              : static_cast<double>(done_delta) *
                        static_cast<double>(max_ewma_us) <=
                    capacity_us;
      model->fit_ticks = fits ? model->fit_ticks + 1 : 0;
      if (model->fit_ticks >= options_.retire_idle_ticks) {
        action = Action::kRetire;
        model->fit_ticks = 0;
      }
    } else {
      model->fit_ticks = 0;
    }
  }

  if (action == Action::kAdd) {
    const std::vector<std::size_t> order = placement_order(*model);
    if (!order.empty()) add_replica(model, order.front());
  } else if (action == Action::kRetire) {
    retire_replica(model);
  }
}

std::uint64_t Router::rebalance_ticks() const {
  std::lock_guard<std::mutex> lk(ticks_mu_);
  return ticks_;
}

void Router::wait_for_ticks(std::uint64_t n) {
  std::unique_lock<std::mutex> lk(ticks_mu_);
  ticks_cv_.wait(lk, [&] { return ticks_ >= n || stop_; });
}

void Router::drain() {
  for (const auto& s : shards_) s->drain();
}

void Router::shutdown() {
  {
    std::lock_guard<std::mutex> lk(ticks_mu_);
    stop_ = true;
  }
  ticks_cv_.notify_all();
  if (rebalancer_.joinable()) rebalancer_.join();
  for (const auto& s : shards_) s->shutdown();
  if (own_artifact_dir_) {
    // Every shard is down (their AOT jobs joined inside shutdown), so nothing
    // can still be writing here. dlopen'd code stays mapped for any artifact
    // a caller still holds; only the on-disk cache goes away.
    std::error_code ec;
    std::filesystem::remove_all(options_.engine.artifact_dir, ec);
    own_artifact_dir_ = false;
  }
}

FleetReport Router::report() const {
  FleetReport fleet;
  fleet.per_shard.reserve(shards_.size());
  for (const auto& s : shards_) fleet.per_shard.push_back(s->report());

  ServeReport& t = fleet.total;
  std::map<std::string, std::size_t> model_index;
  double util_weight = 0.0;
  for (const ServeReport& r : fleet.per_shard) {
    t.requests += r.requests;
    t.batches += r.batches;
    t.samples += r.samples;
    t.lanes_offered += r.lanes_offered;
    t.p50_latency_us = std::max(t.p50_latency_us, r.p50_latency_us);
    t.p99_latency_us = std::max(t.p99_latency_us, r.p99_latency_us);
    t.wall_seconds = std::max(t.wall_seconds, r.wall_seconds);
    t.requests_per_sec += r.requests_per_sec;
    t.goodput_per_sec += r.goodput_per_sec;
    t.shed += r.shed;
    t.expired += r.expired;
    t.deadline_met += r.deadline_met;
    t.member_runs += r.member_runs;
    t.steals += r.steals;
    t.hedges_launched += r.hedges_launched;
    t.hedge_wins += r.hedge_wins;
    t.hedge_wasted_us += r.hedge_wasted_us;
    t.member_p50_us = std::max(t.member_p50_us, r.member_p50_us);
    t.member_p99_us = std::max(t.member_p99_us, r.member_p99_us);
    t.straggler_gap_p50_us =
        std::max(t.straggler_gap_p50_us, r.straggler_gap_p50_us);
    t.straggler_gap_p99_us =
        std::max(t.straggler_gap_p99_us, r.straggler_gap_p99_us);
    merge_phases(t.phases, r.phases);
    t.sim.wavefronts += r.sim.wavefronts;
    t.sim.macro_cycles += r.sim.macro_cycles;
    t.sim.clock_cycles += r.sim.clock_cycles;
    t.sim.lpe_computes += r.sim.lpe_computes;
    t.sim.route_writes += r.sim.route_writes;
    t.sim.input_reads += r.sim.input_reads;
    t.sim.feedback_words += r.sim.feedback_words;
    util_weight += r.sim.lpe_utilization * static_cast<double>(r.sim.wavefronts);
    for (const ModelReport& m : r.per_model) {
      auto [it, inserted] = model_index.emplace(m.name, t.per_model.size());
      if (inserted) {
        t.per_model.push_back(m);
      } else {
        merge_model_row(t.per_model[it->second], m);
      }
    }
  }
  t.lane_occupancy = t.lanes_offered == 0
                         ? 0.0
                         : static_cast<double>(t.samples) / t.lanes_offered;
  t.sim.lpe_utilization =
      t.sim.wavefronts == 0
          ? 0.0
          : util_weight / static_cast<double>(t.sim.wavefronts);
  return fleet;
}

std::string Router::metrics_prometheus() const {
  const FleetReport fleet = report();
  std::vector<runtime::LabelledReport> labelled;
  labelled.reserve(fleet.per_shard.size());
  for (std::size_t i = 0; i < fleet.per_shard.size(); ++i) {
    labelled.push_back({std::to_string(i), &fleet.per_shard[i]});
  }
  return runtime::to_prometheus(labelled);
}

void Router::export_trace(std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    dropped += shards_[i]->export_trace_events(
        os, static_cast<int>(i) + 1, "shard " + std::to_string(i), &first);
  }
  os << "\n],\"otherData\":{\"droppedEvents\":" << dropped << "}}\n";
}

}  // namespace lbnn::router
