#include <gtest/gtest.h>

#include "baselines/baseline_models.hpp"
#include "baselines/lpu_throughput.hpp"
#include "resources/resource_model.hpp"

namespace lbnn {
namespace {

using namespace baselines;

TEST(Baselines, PublishedTable2ValuesPresent) {
  const auto vgg = nn::vgg16();
  EXPECT_DOUBLE_EQ(*mac_array(vgg).fps_published, 120.0);
  EXPECT_DOUBLE_EQ(*nulla_dsp(vgg).fps_published, 330.0);
  EXPECT_DOUBLE_EQ(*xnor_finn(vgg).fps_published, 830.0);
  EXPECT_DOUBLE_EQ(*lpu_published("VGG16"), 103990.0);
}

TEST(Baselines, PublishedTable3ValuesPresent) {
  EXPECT_DOUBLE_EQ(*logicnets(nn::nid()).fps_published, 95.24e6);
  EXPECT_DOUBLE_EQ(*logicnets(nn::jsc_m()).fps_published, 2995e6);
  EXPECT_DOUBLE_EQ(*finn_mvu(nn::nid()).fps_published, 49.58e6);
  EXPECT_DOUBLE_EQ(*lpu_published("NID"), 8.39e6);
}

TEST(Baselines, ModeledOrderingOnVgg16) {
  // The structural models must reproduce the paper's ordering:
  // MAC < NullaDSP < XNOR on large CNNs.
  const auto vgg = nn::vgg16();
  const double mac = mac_array(vgg).fps_model;
  const double dsp = nulla_dsp(vgg).fps_model;
  const double xnor = xnor_finn(vgg).fps_model;
  EXPECT_LT(mac, dsp);
  EXPECT_LT(dsp, xnor);
}

TEST(Baselines, ModeledValuesInPublishedBallpark) {
  // Within an order of magnitude of the published figures (the baselines are
  // other papers' implementations; our models capture the bottleneck).
  const auto vgg = nn::vgg16();
  const auto check = [](const BaselineEstimate& e) {
    ASSERT_TRUE(e.fps_published.has_value());
    const double ratio = e.fps_model / *e.fps_published;
    EXPECT_GT(ratio, 0.1) << e.accelerator;
    EXPECT_LT(ratio, 10.0) << e.accelerator;
  };
  check(mac_array(vgg));
  check(nulla_dsp(vgg));
  check(xnor_finn(vgg));
  check(logicnets(nn::nid()));
  check(hls4ml(nn::jsc_l()));
  check(finn_mvu(nn::nid()));
}

TEST(Baselines, TinyModelsAreOverheadBound) {
  // LENET5 is tiny; its MAC fps must be overhead-limited (way below the
  // compute-bound rate) — the effect that makes the LPU's advantage on small
  // models so large in Table II.
  const auto lenet = nn::lenet5();
  const double fps = mac_array(lenet).fps_model;
  EXPECT_LT(fps, 1.0 / (0.4e-3 * 4));  // at most ~1/(overhead) frames/s
  EXPECT_GT(fps, 100.0);
}

TEST(LpuThroughput, CompileModelLayersProducesSchedules) {
  nn::SynthOptions synth;
  synth.max_neurons = 6;
  synth.max_inputs = 24;
  synth.fanin_cap = 8;
  CompileOptions copts;
  copts.lpu.m = 16;
  copts.lpu.n = 8;
  const auto layers = compile_model_layers(nn::jsc_m(), synth, copts, 1);
  ASSERT_EQ(layers.size(), nn::jsc_m().layers.size());
  for (const auto& l : layers) {
    EXPECT_GT(l.wavefronts, 0u);
  }
  const double fps = lpu_frames_per_second(layers, copts.lpu);
  EXPECT_GT(fps, 0.0);
}

TEST(LpuThroughput, MergingImprovesThroughput) {
  nn::SynthOptions synth;
  synth.max_neurons = 8;
  synth.max_inputs = 32;
  synth.fanin_cap = 12;
  CompileOptions with;
  with.lpu.m = 16;
  with.lpu.n = 8;
  CompileOptions without = with;
  without.merge = false;
  const auto merged = compile_model_layers(nn::jsc_m(), synth, with, 2);
  const auto plain = compile_model_layers(nn::jsc_m(), synth, without, 2);
  EXPECT_GT(lpu_frames_per_second(merged, with.lpu),
            lpu_frames_per_second(plain, without.lpu) * 0.99);
}

TEST(Resources, DefaultConfigMatchesTable1) {
  // Table I: FF 478K (20.2%), LUT 433K (36.7%), BRAM 12240Kb (15.8%),
  // 333 MHz for m=64, n=16. Model must land within ~10% of each.
  LpuConfig cfg;
  const auto r = resources::estimate_lpu(cfg);
  EXPECT_NEAR(r.flip_flops, 478e3, 48e3);
  EXPECT_NEAR(r.luts, 433e3, 43e3);
  EXPECT_NEAR(r.bram_kb, 12240, 1224);
  EXPECT_NEAR(r.freq_mhz, 333.0, 1.0);
  EXPECT_NEAR(r.ff_pct(), 20.2, 2.0);
  EXPECT_NEAR(r.lut_pct(), 36.7, 3.7);
  EXPECT_NEAR(r.bram_pct(), 15.8, 1.6);
}

TEST(Resources, ScalesWithArchitecture) {
  LpuConfig small;
  small.m = 16;
  small.n = 8;
  LpuConfig big;
  big.m = 128;
  big.n = 32;
  const auto rs = resources::estimate_lpu(small);
  const auto rb = resources::estimate_lpu(big);
  EXPECT_LT(rs.flip_flops, rb.flip_flops);
  EXPECT_LT(rs.luts, rb.luts);
  EXPECT_LT(rs.bram_kb, rb.bram_kb);
  EXPECT_GE(rs.freq_mhz, rb.freq_mhz);  // wider LPVs derate the clock
}

TEST(Resources, SnapshotRegistersDominateFlipFlops) {
  LpuConfig cfg;
  const auto r = resources::estimate_lpu(cfg);
  const double snapshot = static_cast<double>(cfg.n) * cfg.m * 2 *
                          cfg.effective_word_width();
  EXPECT_GT(snapshot / r.flip_flops, 0.4);
}

}  // namespace
}  // namespace lbnn
