#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/serialize.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"

namespace lbnn {
namespace {

Program compile_grid(int seed, std::uint32_t m, std::uint32_t n) {
  Rng gen(static_cast<std::uint64_t>(seed));
  const Netlist nl = reconvergent_grid(10, 6, gen);
  CompileOptions opt;
  opt.lpu.m = m;
  opt.lpu.n = n;
  return compile(nl, opt).program;
}

TEST(Serialize, RoundTripIsExact) {
  const Program p = compile_grid(1, 8, 8);
  const std::string text = program_to_string(p);
  const Program q = program_from_string(text);
  EXPECT_EQ(program_to_string(q), text);
  EXPECT_EQ(q.num_wavefronts, p.num_wavefronts);
  EXPECT_EQ(q.input_layout, p.input_layout);
  EXPECT_EQ(q.total_routes(), p.total_routes());
  EXPECT_EQ(q.total_computes(), p.total_computes());
}

TEST(Serialize, ReloadedProgramSimulatesIdentically) {
  Rng gen(2);
  const Netlist nl = reconvergent_grid(10, 6, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const Program p = compile(nl, opt).program;
  const Program q = program_from_string(program_to_string(p));
  LpuSimulator sp(p), sq(q);
  Rng rng(3);
  for (int i = 0; i < 3; ++i) {
    const auto in = random_inputs(nl, 32, rng);
    EXPECT_EQ(sp.run(in), sq.run(in));
  }
}

TEST(Serialize, HeaderFormat) {
  const Program p = compile_grid(3, 4, 4);
  const std::string text = program_to_string(p);
  EXPECT_EQ(text.rfind("lpu 4 4 5 0 333", 0), 0u);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW(program_from_string(""), Error);
  EXPECT_THROW(program_from_string("lpu 4 4 5 0 333\n"), Error);  // no end
  EXPECT_THROW(program_from_string("bogus record\nend\n"), Error);
  const Program p = compile_grid(4, 4, 4);
  std::string text = program_to_string(p);
  // Corrupt a route's source kind.
  const auto pos = text.find(" prev ");
  if (pos != std::string::npos) {
    text.replace(pos, 6, " nope ");
    EXPECT_THROW(program_from_string(text), Error);
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Program p = compile_grid(5, 4, 4);
  std::string text = "# configuration file\n\n" + program_to_string(p);
  EXPECT_NO_THROW(program_from_string(text));
}

TEST(Serialize, HexImagesCoverEveryLpv) {
  const Program p = compile_grid(6, 4, 8);
  const std::string hex = emit_hex_images(p);
  for (std::uint32_t j = 0; j < p.cfg.n; ++j) {
    EXPECT_NE(hex.find("LPV " + std::to_string(j) + " instruction queue"),
              std::string::npos);
  }
  // One barrier word (0xC0000000) per (LPV, memLoc).
  std::size_t barriers = 0;
  for (std::size_t at = hex.find("c0000000"); at != std::string::npos;
       at = hex.find("c0000000", at + 1)) {
    ++barriers;
  }
  EXPECT_EQ(barriers, static_cast<std::size_t>(p.cfg.n) * p.num_wavefronts);
}

TEST(Serialize, TestbenchMentionsGeometry) {
  const Program p = compile_grid(7, 8, 8);
  const std::string tb = emit_testbench(p, "lpu_top");
  EXPECT_NE(tb.find("module lpu_top_tb;"), std::string::npos);
  EXPECT_NE(tb.find("localparam M = 8;"), std::string::npos);
  EXPECT_NE(tb.find("localparam N = 8;"), std::string::npos);
  EXPECT_NE(tb.find("localparam MEMLOCS = " + std::to_string(p.num_wavefronts)),
            std::string::npos);
}

}  // namespace
}  // namespace lbnn
