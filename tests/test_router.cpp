// Router subsystem under a deterministic ManualClock: power-of-two-choices
// tie-breaking, shed-driven replica growth, idle retirement, and retire-time
// draining are all driven with zero real sleeps — time only moves when a test
// calls advance(), and the rebalancer's fixed-cadence wait makes
// advance(interval) + wait_for_ticks(n) an exact handshake. The suite audits
// the promises the Router makes on top of the Engine:
//
//   1. deterministic routing — a cold fleet (every drain estimate 0) spreads
//      strictly by the outstanding-count / shard-id tie-break, so placement
//      is assertable request by request;
//   2. rebalancing closes the loop — sustained admission sheds grow the
//      replica set within one tick, and an idle model shrinks back after
//      retire_idle_ticks windows, always retiring the colder replica;
//   3. nothing accepted is ever dropped — a retire removes the replica from
//      routing FIRST, then drains it, so every parked future still resolves;
//   4. fleet books close — accepted == requests + expired across shards, one
//      shed counted per refused request (the p2c loser is never retried on
//      kDeadlineUnmeetable).
//
// The EWMA-teaching idiom comes from test_hedging: the member hook advances
// the ManualClock 1 ms inside a member run, so the admission plane learns a
// known service time without any wall-clock dependence. This file is in the
// CI TSan set (with LBNN_FORCE_TRACING=1): routing, rebalancing, and the
// trace rings must be race-clean together.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "router/router.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"

namespace lbnn::router {
namespace {

using namespace std::chrono_literals;
using runtime::ManualClock;
using runtime::SubmitStatus;

constexpr std::size_t kLanes = 16;  // m = 8 -> 16-lane datapath words

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;
}

Netlist small_grid(std::uint64_t seed) {
  Rng gen(seed);
  return reconvergent_grid(8, 4, gen);
}

/// One-shot barrier for parking executors inside the member hook (the
/// test_hedging idiom): arm() before the run, wait_here() from the hook,
/// await_arrivals() to rendezvous, release() to let them through.
class Gate {
 public:
  void arm() {
    std::lock_guard<std::mutex> lk(mu_);
    hold_ = true;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  void wait_here() {
    std::unique_lock<std::mutex> lk(mu_);
    ++arrivals_;
    cv_.notify_all();
    cv_.wait(lk, [&] { return !hold_; });
  }
  void await_arrivals(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return arrivals_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool hold_ = false;
  int arrivals_ = 0;
};

/// Two-shard, one-worker-per-shard router on a ManualClock. batch_timeout is
/// an hour, so batches seal ONLY when their 16 lanes fill — parked partial
/// batches are the test's to control, never a timer's.
struct RouterFixture {
  ManualClock clock;
  RouterOptions ropt;

  explicit RouterFixture(std::chrono::microseconds rebalance_interval = 0us,
                         std::size_t initial_replicas = 2) {
    ropt.num_shards = 2;
    ropt.initial_replicas = initial_replicas;
    ropt.rebalance_interval = rebalance_interval;
    ropt.engine.num_workers = 1;
    ropt.engine.batch_timeout = std::chrono::hours(1);
    ropt.engine.compile = small_lpu();
    ropt.engine.clock = &clock;
  }
};

/// Teach one shard's admission EWMA a known service time: a hook that
/// advances the ManualClock 1 ms inside each member run while `teaching` is
/// set. With one single-member model a full 16-lane batch is one member item,
/// so the learned per-item EWMA is the advance itself (~1000 us; exact with
/// one worker, bounded by the number of concurrent advances otherwise).
struct TeachingHook {
  ManualClock* clock = nullptr;
  std::atomic<bool> teaching{true};
  Gate gate;          ///< parks runs while armed, so multi-shard
                      ///< teaching can rendezvous before time moves
  std::atomic<int> runs{0};

  void operator()(const std::string&, std::size_t, bool) {
    if (!teaching.load(std::memory_order_acquire)) return;
    gate.wait_here();
    clock->advance(1ms);
    runs.fetch_add(1, std::memory_order_acq_rel);
  }
};

// ---------------------------------------------------------------------------
// Deterministic p2c routing
// ---------------------------------------------------------------------------

TEST(Router, ColdFleetP2cAlternatesDeterministically) {
  RouterFixture fx;
  Router router(fx.ropt);
  const Netlist nl = small_grid(1);
  RoutedHandle h = router.load("grid", nl);

  ASSERT_EQ(router.replicas(h), 2u);
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0, 1}));

  // Every drain estimate is 0 (no service signal) and nothing completes
  // (partial batches never seal), so routing is pure tie-breaking: equal
  // outstanding -> shard 0, else the smaller count. Submissions alternate
  // 0, 1, 0, 1, ... exactly.
  std::vector<std::future<std::vector<bool>>> futs;
  std::vector<bool> bits(nl.num_inputs(), true);
  for (int i = 0; i < 6; ++i) {
    futs.push_back(router.submit(h, bits));
    EXPECT_EQ(router.shard(0).in_flight(), static_cast<std::size_t>(i / 2 + 1))
        << "submission " << i;
    EXPECT_EQ(router.shard(1).in_flight(), static_cast<std::size_t>((i + 1) / 2))
        << "submission " << i;
  }

  router.drain();
  const std::vector<bool> want = simulate_scalar(nl, bits);
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(f.get(), want);
  }
  const FleetReport rep = router.report();
  EXPECT_EQ(rep.total.requests, 6u);
  EXPECT_EQ(rep.total.shed, 0u);
  EXPECT_EQ(rep.total.expired, 0u);
  EXPECT_EQ(rep.per_shard[0].requests, 3u);
  EXPECT_EQ(rep.per_shard[1].requests, 3u);
}

TEST(Router, DuplicateNameThrowsAndUnloadInvalidatesHandle) {
  RouterFixture fx;
  Router router(fx.ropt);
  const Netlist nl = small_grid(2);
  RoutedHandle h = router.load("grid", nl, {});
  EXPECT_THROW(router.load("grid", nl, {}), Error);

  EXPECT_TRUE(h.loaded());
  EXPECT_TRUE(router.unload(h));
  EXPECT_FALSE(h.loaded());
  EXPECT_FALSE(router.unload(h));  // second unload: clean false
  EXPECT_EQ(router.replicas(h), 0u);

  std::future<std::vector<bool>> fut;
  const SubmitStatus st =
      router.try_submit(h, std::vector<bool>(nl.num_inputs()), &fut);
  EXPECT_EQ(st, SubmitStatus::kUnloaded);
  EXPECT_FALSE(fut.valid());
  EXPECT_THROW(router.submit(h, std::vector<bool>(nl.num_inputs())), Error);
}

// ---------------------------------------------------------------------------
// Rebalancer: shed-driven growth, idle retirement
// ---------------------------------------------------------------------------

TEST(Router, SustainedShedsGrowReplicasThenIdleRetires) {
  RouterFixture fx(/*rebalance_interval=*/1s, /*initial_replicas=*/1);
  fx.ropt.retire_idle_ticks = 2;
  Router router(fx.ropt);
  const Netlist nl = small_grid(3);
  RoutedHandle h = router.load("grid", nl);
  ASSERT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0}));

  // Teach shard 0's EWMA exactly 1000 us: one full 16-lane batch whose single
  // member run advances the ManualClock 1 ms (one worker, so the measured
  // duration is exactly the advance).
  TeachingHook hook;
  hook.clock = &fx.clock;
  router.shard(0).set_member_hook(std::ref(hook));
  std::vector<std::future<std::vector<bool>>> warm;
  std::vector<bool> bits(nl.num_inputs(), true);
  for (std::size_t i = 0; i < kLanes; ++i) warm.push_back(router.submit(h, bits));
  for (auto& f : warm) f.get();
  hook.teaching.store(false, std::memory_order_release);
  ASSERT_EQ(hook.runs.load(), 1);

  // Five refused requests: the drain estimate (1000 us) already exceeds a
  // 500 us deadline, so admission sheds each one — and the fleet counts
  // EXACTLY five sheds (single replica, no loser retry to double-count).
  for (int i = 0; i < 5; ++i) {
    std::future<std::vector<bool>> fut;
    const SubmitStatus st =
        router.try_submit(h, bits, &fut, fx.clock.now() + 500us);
    EXPECT_EQ(st, SubmitStatus::kDeadlineUnmeetable);
    EXPECT_FALSE(fut.valid());
  }
  EXPECT_EQ(router.report().total.shed, 5u);

  // Tick 1: the window saw 5 sheds out of 21 offered (>= add_shed_fraction)
  // -> a replica appears on the other shard within the tick.
  fx.clock.advance(1s);
  router.wait_for_ticks(1);
  EXPECT_EQ(router.replicas(h), 2u);
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0, 1}));

  // Ticks 2 and 3 see zero traffic: after retire_idle_ticks (2) consecutive
  // fitting windows the set shrinks back. The victim is the COLD replica —
  // shard 1 probes (drain 0) below warm shard 0 (EWMA 1000 us) — so scaling
  // down never throws away the service signal.
  fx.clock.advance(1s);
  router.wait_for_ticks(2);
  EXPECT_EQ(router.replicas(h), 2u);  // fit_ticks = 1, not yet
  fx.clock.advance(1s);
  router.wait_for_ticks(3);
  EXPECT_EQ(router.replicas(h), 1u);
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0}));

  // One replica is the floor: further idle ticks never retire below it.
  fx.clock.advance(1s);
  router.wait_for_ticks(4);
  EXPECT_EQ(router.replicas(h), 1u);

  router.shard(0).set_member_hook(nullptr);
  const FleetReport rep = router.report();
  EXPECT_EQ(rep.total.requests, kLanes);
  EXPECT_EQ(rep.total.shed, 5u);
  EXPECT_EQ(rep.total.expired, 0u);
}

// ---------------------------------------------------------------------------
// Retirement drains — nothing accepted is ever dropped
// ---------------------------------------------------------------------------

TEST(Router, SetReplicasRetireDrainsParkedRequests) {
  RouterFixture fx;
  Router router(fx.ropt);
  const Netlist nl = small_grid(4);
  RoutedHandle h = router.load("grid", nl);

  // Five parked requests alternate 0,1,0,1,0 (cold-fleet tie-break): shard 0
  // holds submissions {0,2,4}, shard 1 holds {1,3}. None seal (16 lanes).
  std::vector<std::future<std::vector<bool>>> futs;
  std::vector<bool> bits(nl.num_inputs());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i % 3) == 0;
  for (int i = 0; i < 5; ++i) futs.push_back(router.submit(h, bits));
  ASSERT_EQ(router.shard(0).in_flight(), 3u);
  ASSERT_EQ(router.shard(1).in_flight(), 2u);

  // Scale down: the least-loaded replica (shard 1, 2 outstanding) leaves the
  // routing set first, THEN drains — both its parked futures resolve before
  // set_replicas returns, and nothing is dropped.
  router.set_replicas(h, 1);
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0}));
  const std::vector<bool> want = simulate_scalar(nl, bits);
  for (int i : {1, 3}) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready)
        << "retired replica dropped parked request " << i;
    EXPECT_EQ(futs[i].get(), want);
  }
  EXPECT_EQ(futs[0].wait_for(0s), std::future_status::timeout);

  // New traffic routes only to the survivor. (shard(1).in_flight() is NOT
  // asserted zero here: the engine-wide counter is released after the unload
  // wait can already be satisfied, so it may transiently read stale.)
  futs.push_back(router.submit(h, bits));
  EXPECT_EQ(router.shard(0).in_flight(), 4u);

  router.drain();
  for (int i : {0, 2, 4, 5}) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready);
    EXPECT_EQ(futs[i].get(), want);
  }
  const FleetReport rep = router.report();
  EXPECT_EQ(rep.total.requests, 6u);
  EXPECT_EQ(rep.total.shed, 0u);
  EXPECT_EQ(rep.total.expired, 0u);
  // The retired shard saw exactly its two pre-retire requests; everything
  // after the scale-down (including the post-retire submit) ran on shard 0.
  EXPECT_EQ(rep.per_shard[0].requests, 4u);
  EXPECT_EQ(rep.per_shard[1].requests, 2u);

  // Scale back up: the replica returns to the vacated shard.
  router.set_replicas(h, 2);
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Fleet books close across shed + expired + completed
// ---------------------------------------------------------------------------

TEST(Router, FleetBooksCloseAcrossShedExpiredCompleted) {
  RouterFixture fx;
  Router router(fx.ropt);
  const Netlist nl = small_grid(5);
  RoutedHandle h = router.load("grid", nl);

  // Teach BOTH shards a service signal: 32 alternating submissions fill one
  // 16-lane batch per shard. The gate parks both workers after dispatch so
  // neither batch completes mid-stream (which would break the alternation
  // invariant), then releases them together; each member run advances the
  // clock 1 ms, so both EWMAs land in [1000, 2000] us — any value > 500 us
  // is enough for the shed phase below.
  TeachingHook hook;
  hook.clock = &fx.clock;
  hook.gate.arm();
  router.shard(0).set_member_hook(std::ref(hook));
  router.shard(1).set_member_hook(std::ref(hook));

  std::vector<std::future<std::vector<bool>>> futs;
  std::vector<bool> bits(nl.num_inputs(), true);
  for (std::size_t i = 0; i < 2 * kLanes; ++i) {
    futs.push_back(router.submit(h, bits));
  }
  hook.gate.await_arrivals(2);  // both shards sealed and dispatched
  hook.gate.release();
  for (auto& f : futs) f.get();
  hook.teaching.store(false, std::memory_order_release);
  ASSERT_EQ(hook.runs.load(), 2);

  // Shed phase: both drain estimates exceed 500 us, so the p2c winner refuses
  // and the loser is NEVER retried on kDeadlineUnmeetable — exactly one shed
  // per refused request, or the fleet books below would not close.
  const std::uint64_t kShed = 4;
  for (std::uint64_t i = 0; i < kShed; ++i) {
    std::future<std::vector<bool>> fut;
    EXPECT_EQ(router.try_submit(h, bits, &fut, fx.clock.now() + 500us),
              SubmitStatus::kDeadlineUnmeetable);
  }

  // Expiry phase: three requests with a comfortable 10 ms deadline are
  // admitted and parked; advancing past the deadline before the batches seal
  // expires them at dequeue (futures fail, expired counters bump).
  std::vector<std::future<std::vector<bool>>> doomed;
  for (int i = 0; i < 3; ++i) {
    std::future<std::vector<bool>> fut;
    ASSERT_EQ(router.try_submit(h, bits, &fut, fx.clock.now() + 10ms),
              SubmitStatus::kAccepted);
    doomed.push_back(std::move(fut));
  }
  fx.clock.advance(20ms);
  router.drain();
  for (auto& f : doomed) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_THROW(f.get(), DeadlineExceeded);
  }

  // The fleet ledger: accepted == requests + expired, sheds counted once,
  // and every total is exactly the sum of its per-shard rows.
  const std::uint64_t accepted = 2 * kLanes + 3;
  const FleetReport rep = router.report();
  EXPECT_EQ(rep.total.requests + rep.total.expired, accepted);
  EXPECT_EQ(rep.total.requests, 2 * kLanes);
  EXPECT_EQ(rep.total.expired, 3u);
  EXPECT_EQ(rep.total.shed, kShed);
  ASSERT_EQ(rep.per_shard.size(), 2u);
  EXPECT_EQ(rep.per_shard[0].requests + rep.per_shard[1].requests,
            rep.total.requests);
  EXPECT_EQ(rep.per_shard[0].shed + rep.per_shard[1].shed, rep.total.shed);
  EXPECT_EQ(rep.per_shard[0].expired + rep.per_shard[1].expired,
            rep.total.expired);
  // The replicated model reads as ONE merged row in the fleet total.
  ASSERT_EQ(rep.total.per_model.size(), 1u);
  EXPECT_EQ(rep.total.per_model[0].name, "grid");
  EXPECT_EQ(rep.total.per_model[0].requests, rep.total.requests);

  // Shard labels land on the exposition: one HELP block per metric, one
  // sample per shard.
  const std::string prom = router.metrics_prometheus();
  EXPECT_NE(prom.find("lbnn_requests_total{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("lbnn_requests_total{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(prom.find("model=\"grid\",shard=\"1\""), std::string::npos);

  router.shard(0).set_member_hook(nullptr);
  router.shard(1).set_member_hook(nullptr);
}

// ---------------------------------------------------------------------------
// try_submit retry vs a concurrently retired replica
// ---------------------------------------------------------------------------

// The retry after a refused first attempt must target the CURRENT replica
// set, not the loser sampled before the attempt: a set_replicas (or alias
// flip) can retire the sampled loser in between. The route hook lands the
// retire deterministically inside that window. Pre-fix, the stale loser
// surfaced kUnloaded for a model that is still very much loaded; the
// re-sampling retry reports the survivor's honest kQueueFull. A shed probe
// then pins that a refusal still costs exactly one fleet shed — the retire
// path never double-counts.
TEST(Router, TrySubmitRetryResamplesCurrentReplicaSet) {
  RouterFixture fx;
  Router router(fx.ropt);
  const Netlist nl = small_grid(7);
  runtime::ModelOptions mopt;
  mopt.queue_bound = 4;
  RoutedHandle h = router.load("grid", nl, mopt);
  ASSERT_EQ(router.replicas(h), 2u);

  // Fill both replicas to their bound: 8 submissions alternate shards
  // (cold-fleet tie-break), 4 parked on each, nothing seals (16 lanes).
  std::vector<std::future<std::vector<bool>>> parked;
  std::vector<bool> bits(nl.num_inputs(), true);
  for (int i = 0; i < 8; ++i) parked.push_back(router.submit(h, bits));
  ASSERT_EQ(router.shard(0).in_flight(), 4u);
  ASSERT_EQ(router.shard(1).in_flight(), 4u);

  // Inside the sampling->attempt window, retire shard 1's replica. Its four
  // parked futures drain out during set_replicas — nothing is dropped.
  bool shrink = true;
  router.set_route_hook([&] {
    if (shrink) {
      shrink = false;
      router.set_replicas(h, 1);
    }
  });
  std::future<std::vector<bool>> fut;
  const SubmitStatus st = router.try_submit(h, bits, &fut);
  router.set_route_hook(nullptr);
  // Both candidates were sampled pre-retire (winner: shard 0 by tie-break).
  // The first attempt hits shard 0's bound; the retry re-samples and finds
  // only shard 0 again — kQueueFull, not the stale loser's kUnloaded.
  EXPECT_EQ(st, SubmitStatus::kQueueFull);
  EXPECT_FALSE(fut.valid());
  EXPECT_EQ(router.replica_shards(h), (std::vector<std::size_t>{0}));

  router.drain();
  const std::vector<bool> want = simulate_scalar(nl, bits);
  for (auto& f : parked) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(f.get(), want);
  }

  // Exactly one shed per refusal across the survivor: teach shard 0 a
  // service signal, then refuse one doomed deadline.
  TeachingHook hook;
  hook.clock = &fx.clock;
  router.shard(0).set_member_hook(std::ref(hook));
  std::vector<std::future<std::vector<bool>>> warm;
  for (int i = 0; i < 4; ++i) warm.push_back(router.submit(h, bits));
  router.drain();  // seals the partial batch (the bound is below lane-fill)
  for (auto& f : warm) f.get();
  hook.teaching.store(false, std::memory_order_release);

  const FleetReport before = router.report();
  std::future<std::vector<bool>> doomed;
  EXPECT_EQ(router.try_submit(h, bits, &doomed, fx.clock.now() + 1us),
            SubmitStatus::kDeadlineUnmeetable);
  const FleetReport after = router.report();
  EXPECT_EQ(after.total.shed, before.total.shed + 1);  // once, not per attempt
  EXPECT_EQ(after.total.requests, before.total.requests);
  router.shard(0).set_member_hook(nullptr);
}

// The fleet trace multiplexes every shard into one Chrome trace, one process
// per shard. (CI also runs this whole file with LBNN_FORCE_TRACING=1; here
// tracing is on explicitly so the test asserts unconditionally.)
TEST(Router, FleetTraceRendersOneProcessPerShard) {
  RouterFixture fx;
  fx.ropt.engine.tracing = true;
  Router router(fx.ropt);
  const Netlist nl = small_grid(6);
  RoutedHandle h = router.load("grid", nl);
  std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(router.submit(h, bits));
  router.drain();
  for (auto& f : futs) f.get();

  std::ostringstream os;
  router.export_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"droppedEvents\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared bench Zipf generator (bench/bench_common.hpp)
// ---------------------------------------------------------------------------

// The bench workload generator is part of the perf-trajectory contract: every
// serve_* bench must draw the same model-popularity stream on every platform,
// or cross-machine BENCH_*.json comparisons measure the workload, not the
// engine. lbnn::Rng is platform-stable, so this whole test is deterministic —
// the tolerances below guard the math, not the sampling noise.
TEST(ZipfPicker, MatchesTheoreticalShape) {
  const std::size_t kN = 8;
  const bench::ZipfPicker zipf(kN, 1.0);
  ASSERT_EQ(zipf.size(), kN);

  double total = 0.0;
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_GT(zipf.probability(k), 0.0);
    if (k > 0) EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
    total += zipf.probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // s = 1: P(k) proportional to 1/(k+1), so P(0) = 2*P(1) = 8*P(7).
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(7), 8.0, 1e-9);

  Rng rng(42);
  const int kDraws = 100000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.pick(rng)];
  for (std::size_t k = 0; k < kN; ++k) {
    const double emp = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(emp, zipf.probability(k), 0.01)
        << "index " << k << " empirical " << emp;
    if (k > 0) {
      EXPECT_LT(counts[k], counts[k - 1])
          << "popularity must decay monotonically";
    }
  }
}

TEST(ZipfPicker, UniformWhenExponentZero) {
  const bench::ZipfPicker zipf(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.25, 1e-9);
  }
}

}  // namespace
}  // namespace lbnn::router
