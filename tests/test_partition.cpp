#include <gtest/gtest.h>

#include "core/mfg.hpp"
#include "netlist/random_circuits.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace lbnn {
namespace {

Netlist prepared(Netlist nl) {
  nl = optimize(nl);
  nl = tech_map(nl, CellLibrary::lut4_full());
  nl = eliminate_dead(nl);
  return balance_paths(nl);
}

TEST(FindMfg, SingleGateCone) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateOp::kAnd, a, b);
  nl.add_output(g, "y");
  const auto levels = nl.levels();
  PartitionOptions opt;
  opt.m = 8;
  const Mfg mfg = find_mfg(nl, levels, g, opt);
  // Small cone: reaches the PIs, so bottom = 0 and PIs are members.
  EXPECT_EQ(mfg.bottom, 0);
  EXPECT_EQ(mfg.top, 1);
  EXPECT_EQ(mfg.num_nodes(), 3u);
  EXPECT_TRUE(mfg.external_inputs.empty());
}

TEST(FindMfg, StopsAtWideLevel) {
  // Balanced tree over 16 leaves: levels sizes 16,8,4,2,1 upward.
  Rng rng(1);
  Netlist nl = prepared(random_tree(16, rng));
  const auto levels = nl.levels();
  const NodeId root = nl.outputs()[0];
  PartitionOptions opt;
  opt.m = 4;  // level with >= 4 nodes is a stop level
  const Mfg mfg = find_mfg(nl, levels, root, opt);
  EXPECT_EQ(mfg.top, levels[root]);
  // Root level 1 node, below 2, below 4 -> stop at the 4-wide level.
  EXPECT_EQ(mfg.levels.back().size(), 1u);
  EXPECT_EQ(mfg.levels.front().size(), 2u);
  EXPECT_EQ(mfg.external_inputs.size(), 4u);
  EXPECT_LT(mfg.max_width(), 4u);
}

TEST(FindMfg, RespectsBandBoundary) {
  Rng rng(2);
  Netlist nl = prepared(random_tree(64, rng));  // depth 6
  const auto levels = nl.levels();
  PartitionOptions opt;
  opt.m = 64;   // width never stops it
  opt.band = 4; // but bands do
  const NodeId root = nl.outputs()[0];
  const Mfg mfg = find_mfg(nl, levels, root, opt);
  EXPECT_EQ(mfg.top, 6);
  EXPECT_EQ(mfg.bottom, 4);
  EXPECT_FALSE(mfg.external_inputs.empty());
}

TEST(Partition, CoversNetworkAndRespectsConditions) {
  Rng rng(3);
  Netlist nl = prepared(reconvergent_grid(12, 6, rng));
  PartitionOptions opt;
  opt.m = 6;
  MfgForest forest = partition(nl, opt);
  EXPECT_GT(forest.num_alive(), 1u);
  EXPECT_NO_THROW(forest.check_invariants(opt.m));
}

TEST(Partition, Condition4HoldsUnbanded) {
  // Pre-merge, without band cuts: every MFG with bottom > 0 stopped because
  // the level below had >= m nodes.
  Rng rng(4);
  Netlist nl = prepared(reconvergent_grid(10, 8, rng));
  PartitionOptions opt;
  opt.m = 5;
  MfgForest forest = partition(nl, opt);
  for (const MfgId id : forest.alive_ids()) {
    const Mfg& g = forest.at(id);
    if (g.bottom == 0) {
      EXPECT_TRUE(g.external_inputs.empty());
    } else {
      EXPECT_GE(g.external_inputs.size(), opt.m);
    }
  }
}

TEST(Partition, EveryExternalInputHasProducer) {
  Rng rng(5);
  RandomCircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_gates = 400;
  spec.num_outputs = 8;
  Netlist nl = prepared(random_dag(spec, rng));
  PartitionOptions opt;
  opt.m = 8;
  MfgForest forest = partition(nl, opt);
  for (const MfgId id : forest.alive_ids()) {
    for (const NodeId in : forest.at(id).external_inputs) {
      EXPECT_TRUE(forest.has_producer(in));
      const Mfg& child = forest.at(forest.producer_of(in));
      EXPECT_EQ(child.top + 1, forest.at(id).bottom);
    }
  }
}

TEST(Merge, ReducesMfgCountAndKeepsInvariants) {
  Rng rng(6);
  Netlist nl = prepared(reconvergent_grid(12, 8, rng));
  PartitionOptions opt;
  opt.m = 6;
  MfgForest forest = partition(nl, opt);
  const std::size_t before = forest.num_alive();
  const std::size_t merges = merge_mfgs(forest, opt.m);
  EXPECT_GT(merges, 0u);
  EXPECT_EQ(forest.num_alive(), before - merges);
  EXPECT_NO_THROW(forest.check_invariants(opt.m));
}

TEST(Merge, NeverMergesDifferentBottoms) {
  Rng rng(7);
  RandomCircuitSpec spec;
  spec.num_inputs = 14;
  spec.num_gates = 350;
  spec.num_outputs = 6;
  Netlist nl = prepared(random_dag(spec, rng));
  PartitionOptions opt;
  opt.m = 7;
  MfgForest forest = partition(nl, opt);
  merge_mfgs(forest, opt.m);
  // check_invariants verifies aligned levels; additionally verify widths.
  for (const MfgId id : forest.alive_ids()) {
    EXPECT_LE(forest.at(id).max_width(), opt.m);
  }
}

TEST(Merge, SingleOutputLoadsMergeToWideLoads) {
  // A single wide AND-reduction over 32 inputs with m=8: partitioning makes
  // per-PI load MFGs; merging should pack them m-wide.
  Rng rng(8);
  Netlist nl = prepared(random_tree(32, rng));
  PartitionOptions opt;
  opt.m = 8;
  MfgForest forest = partition(nl, opt);
  const std::size_t before = forest.num_alive();
  merge_mfgs(forest, opt.m);
  EXPECT_LT(forest.num_alive(), before);
  EXPECT_NO_THROW(forest.check_invariants(opt.m));
}

class PartitionProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionProperty, InvariantsAcrossFamiliesAndWidths) {
  const auto [seed, m] = GetParam();
  Rng rng(seed);
  Netlist nl;
  switch (seed % 3) {
    case 0: nl = prepared(random_tree(48, rng)); break;
    case 1: nl = prepared(reconvergent_grid(10, 7, rng)); break;
    default: {
      RandomCircuitSpec spec;
      spec.num_inputs = 12;
      spec.num_gates = 300;
      spec.num_outputs = 5;
      nl = prepared(random_dag(spec, rng));
      break;
    }
  }
  PartitionOptions opt;
  opt.m = static_cast<std::size_t>(m);
  MfgForest forest = partition(nl, opt);
  ASSERT_NO_THROW(forest.check_invariants(opt.m));
  merge_mfgs(forest, opt.m);
  ASSERT_NO_THROW(forest.check_invariants(opt.m));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(3, 6, 12, 24)));

}  // namespace
}  // namespace lbnn
