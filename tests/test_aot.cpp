// AOT executor backend suite.
//
// Three layers under test. (1) Backend equivalence: the native and
// direct-threaded AOT artifacts are bit-exact with the scalar oracle —
// outputs, counters (including the partial prefix after a cancel), SimError
// messages, and the wavefront boundary SimCancelled lands on. (2) Artifact
// lifecycle: content-keyed disk cache, warm restarts with ZERO recompiles,
// corrupted/truncated artifacts rejected and rebuilt, concurrent builders
// sharing one directory. (3) Serving integration: background codegen
// overlapping live traffic, atomic mid-run promotion with zero dropped or
// double-executed requests, unload racing in-flight codegen, and fleet-wide
// artifact sharing through the Router.
//
// Zero real sleeps anywhere: promotion instants are pinned with
// Engine::wait_aot_ready() and ProgramCache::set_native_hook gating.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aot/artifact.hpp"
#include "aot/codegen.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "router/router.hpp"
#include "runtime/engine.hpp"
#include "runtime/program_cache.hpp"

namespace lbnn {
namespace {

namespace fs = std::filesystem;

/// Fresh artifact directory under the system temp dir, removed on scope
/// exit. Each test gets its own so disk-cache assertions never see another
/// test's artifacts.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = (fs::temp_directory_path() /
             ("lbnn-test-" + std::string(tag) + "-" +
              std::to_string(static_cast<long>(::getpid())) + "-" +
              std::to_string(counter.fetch_add(1))))
                .string();
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// True when this process can take the native leg: a compiler is reachable
/// and no env pin forces the threaded fallback. CI's threaded matrix leg
/// sets LBNN_AOT_THREADED=1; native-only assertions skip there.
bool native_reachable() {
  const char* pin = std::getenv("LBNN_AOT_THREADED");
  if (pin != nullptr && pin[0] != '\0' && pin[0] != '0') return false;
  return !aot::aot_compiler().empty();
}

struct AotCase {
  Netlist nl;
  CompileResult res;
};

AotCase random_case(std::uint64_t seed) {
  Rng gen(seed);
  AotCase c;
  switch (seed % 3) {
    case 0: {
      RandomCircuitSpec spec;
      spec.num_inputs = 4 + gen.next_below(12);
      spec.num_gates = 30 + gen.next_below(150);
      spec.num_outputs = 1 + gen.next_below(6);
      c.nl = random_dag(spec, gen);
      break;
    }
    case 1:
      c.nl = random_tree(8 + gen.next_below(32), gen);
      break;
    default:
      c.nl = reconvergent_grid(6 + gen.next_below(6), 3 + gen.next_below(4), gen);
  }
  CompileOptions opt;
  opt.lpu.m = gen.next_bool() ? 8 : 4;
  opt.lpu.n = gen.next_bool() ? 8 : 4;
  c.res = compile(c.nl, opt);
  return c;
}

void expect_counters_eq(const SimCounters& want, const SimCounters& got) {
  EXPECT_EQ(want.wavefronts, got.wavefronts);
  EXPECT_EQ(want.lpe_computes, got.lpe_computes);
  EXPECT_EQ(want.route_writes, got.route_writes);
  EXPECT_EQ(want.input_reads, got.input_reads);
  EXPECT_EQ(want.feedback_words, got.feedback_words);
  EXPECT_EQ(want.macro_cycles, got.macro_cycles);
}

/// Diff one artifact leg against the scalar oracle across widths that
/// straddle the word boundary, checking outputs (also vs the netlist-level
/// reference) and the full counter set.
void diff_artifact(const AotCase& c,
                   std::shared_ptr<const aot::ProgramArtifact> art,
                   std::uint64_t rng_seed) {
  Rng rng(rng_seed);
  aot::AotExecutor exec(c.res.program, art);
  LpuSimulator scalar(c.res.program, /*simd=*/false);
  for (const std::size_t width : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{2 + rng.next_below(200)}}) {
    SCOPED_TRACE("width " + std::to_string(width));
    const std::vector<BitVec> in = random_inputs(c.nl, width, rng);
    const std::vector<BitVec> want = simulate(c.nl, in);
    const std::vector<BitVec> scalar_out = scalar.run(in);
    EXPECT_EQ(scalar_out, want);
    EXPECT_EQ(exec.run(in), scalar_out);
    expect_counters_eq(scalar.counters(), exec.counters());
  }
}

void run_aot_diff_round(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  TempDir dir("diff");
  const AotCase c = random_case(seed);

  aot::AotOptions topt;
  topt.allow_native = false;  // pin the direct-threaded leg
  auto threaded = std::make_shared<const aot::ProgramArtifact>(
      aot::compile_artifact(c.res.program, topt));
  ASSERT_EQ(threaded->kind, BackendKind::kAotThreaded);
  diff_artifact(c, threaded, seed ^ 0x9e3779b97f4a7c15ull);

  if (native_reachable()) {
    aot::AotOptions nopt;
    nopt.artifact_dir = dir.path();
    nopt.avx2 = LpuSimulator::cpu_has_avx2();
    auto native = std::make_shared<const aot::ProgramArtifact>(
        aot::compile_artifact(c.res.program, nopt));
    ASSERT_EQ(native->kind, BackendKind::kAotNative)
        << "native build failed with compiler '" << aot::aot_compiler() << "'";
    EXPECT_FALSE(native->from_disk);
    diff_artifact(c, native, seed ^ 0x9e3779b97f4a7c15ull);
  }
}

TEST(AotDiff, FuzzSeed1) { run_aot_diff_round(71); }
TEST(AotDiff, FuzzSeed2) { run_aot_diff_round(72); }
TEST(AotDiff, FuzzSeed3) { run_aot_diff_round(73); }

// Feedback-band programs lower to dedicated arena rows in the replay
// stream; the AOT legs must replay them exactly (see
// SimdDiff.FeedbackPathPrograms for the interpreter-side twin).
TEST(AotDiff, FeedbackPathPrograms) {
  TempDir dir("feedback");
  Rng gen(31);
  const Netlist nl = random_tree(48, gen);
  CompileOptions opt;
  opt.lpu.m = 4;
  opt.lpu.n = 4;
  AotCase c{nl, compile(nl, opt)};
  ASSERT_GT(c.res.report.bands, 1u) << "case no longer exercises feedback";

  aot::AotOptions topt;
  topt.allow_native = false;
  diff_artifact(c,
                std::make_shared<const aot::ProgramArtifact>(
                    aot::compile_artifact(c.res.program, topt)),
                32);
  if (native_reachable()) {
    aot::AotOptions nopt;
    nopt.artifact_dir = dir.path();
    diff_artifact(c,
                  std::make_shared<const aot::ProgramArtifact>(
                      aot::compile_artifact(c.res.program, nopt)),
                  32);
  }
}

// The nightly sweep hook, same contract as SimdDiff.EnvSeedSweep.
TEST(AotDiff, EnvSeedSweep) {
  const char* env = std::getenv("LBNN_FUZZ_SEEDS");
  if (env == nullptr) {
    GTEST_SKIP() << "set LBNN_FUZZ_SEEDS=<n> to sweep n extra seeds";
  }
  const long n = std::atol(env);
  for (long s = 1; s <= n; ++s) {
    run_aot_diff_round(static_cast<std::uint64_t>(400 + s));
  }
}

// A pre-set cancel flag must land as SimCancelled at wavefront 0 with the
// interpreter's exact message and an all-zero counter prefix — from every
// AOT leg. (Mid-run flips are poll-timing dependent; the boundary contract
// itself is deterministic at wavefront 0, and the counter-prefix tables the
// legs read are the same ones the interpreter diff already pins per-wave.)
TEST(AotDiff, CancelLandsAtSameWavefrontBoundary) {
  TempDir dir("cancel");
  const AotCase c = random_case(71);
  Rng rng(42);
  const std::vector<BitVec> in = random_inputs(c.nl, 96, rng);

  auto cancelled_what = [&](ExecutorBackend& exec) {
    std::atomic<bool> cancel{true};
    std::string what;
    try {
      exec.run(in, &cancel);
    } catch (const SimCancelled& e) {
      what = e.what();
    }
    EXPECT_FALSE(what.empty()) << "run was not cancelled";
    EXPECT_EQ(exec.counters().lpe_computes, 0u);
    EXPECT_EQ(exec.counters().route_writes, 0u);
    // A cancelled executor is immediately reusable with nothing leaked.
    cancel.store(false);
    EXPECT_EQ(exec.run(in, &cancel), simulate(c.nl, in));
    return what;
  };

  LpuSimulator scalar(c.res.program, /*simd=*/false);
  const std::string want = cancelled_what(scalar);
  EXPECT_NE(want.find("wavefront 0"), std::string::npos) << want;

  aot::AotOptions topt;
  topt.allow_native = false;
  auto threaded = std::make_shared<const aot::ProgramArtifact>(
      aot::compile_artifact(c.res.program, topt));
  aot::AotExecutor texec(c.res.program, threaded);
  EXPECT_EQ(cancelled_what(texec), want);

  if (native_reachable()) {
    aot::AotOptions nopt;
    nopt.artifact_dir = dir.path();
    auto native = std::make_shared<const aot::ProgramArtifact>(
        aot::compile_artifact(c.res.program, nopt));
    ASSERT_EQ(native->kind, BackendKind::kAotNative);
    aot::AotExecutor nexec(c.res.program, native);
    EXPECT_EQ(cancelled_what(nexec), want);
  }
}

// Invalid programs: the sliced stream truncates at the fault and replays the
// SimError mid-run; both AOT legs must surface the scalar oracle's exact
// message. (Same bad-program family as SimdDiff.ErrorMessagesMatchAcrossKernels.)
TEST(AotDiff, ErrorMessagesMatchScalar) {
  Program p;
  p.cfg.m = 2;
  p.cfg.n = 2;
  p.cfg.word_width = 8;
  p.num_wavefronts = 1;
  p.num_primary_inputs = 2;
  p.num_primary_outputs = 1;
  p.input_layout = {0, 1};
  p.instr.assign(1, std::vector<LpvInstr>(2));
  p.instr[0][0].routes = {{0, {SrcSel::Kind::kInput, 0}},
                          {2, {SrcSel::Kind::kInput, 1}}};
  p.instr[0][0].computes = {{0, TruthTable4::from_op(GateOp::kBuf)},
                            {1, TruthTable4::from_op(GateOp::kBuf)}};
  p.instr[0][1].routes = {{0, {SrcSel::Kind::kPrevLane, 0}},
                          {1, {SrcSel::Kind::kPrevLane, 1}}};
  p.instr[0][1].computes = {{0, TruthTable4::from_op(GateOp::kAnd)}};
  p.output_taps = {{0, 0, 0}};

  TempDir dir("errors");
  auto diff_error = [&](const Program& bad) {
    std::string scalar_what;
    {
      LpuSimulator sim(bad, /*simd=*/false);
      try {
        sim.run({BitVec(8), BitVec(8)});
      } catch (const SimError& e) {
        scalar_what = e.what();
      }
    }
    ASSERT_FALSE(scalar_what.empty()) << "scalar run did not throw";

    auto aot_what = [&](bool allow_native) -> std::string {
      aot::AotOptions opt;
      opt.allow_native = allow_native;
      if (allow_native) opt.artifact_dir = dir.path();
      auto art = std::make_shared<const aot::ProgramArtifact>(
          aot::compile_artifact(bad, opt));
      aot::AotExecutor exec(bad, art);
      try {
        exec.run({BitVec(8), BitVec(8)});
      } catch (const SimError& e) {
        return e.what();
      }
      return std::string();
    };
    EXPECT_EQ(aot_what(false), scalar_what);
    if (native_reachable()) {
      EXPECT_EQ(aot_what(true), scalar_what);
    }
  };

  {
    Program bad = p;  // AND reads an invalid B operand
    bad.instr[0][1].routes.pop_back();
    diff_error(bad);
  }
  {
    Program bad = p;  // feedback read before any write
    bad.instr[0][1].routes[0] = {0, {SrcSel::Kind::kFeedback, 0}};
    diff_error(bad);
  }
  {
    Program bad = p;  // tap of a lane LPV1 never computes
    bad.output_taps = {{0, 1, 0}};
    diff_error(bad);
  }
}

// Content keys: stable across calls, sensitive to the program and to the
// AVX2 flag (base and AVX2 artifacts must coexist in one directory).
TEST(AotArtifact, ContentKeyIsStableAndDiscriminating) {
  const AotCase a = random_case(81);
  const AotCase b = random_case(82);
  EXPECT_EQ(aot::content_key(a.res.program, false),
            aot::content_key(a.res.program, false));
  EXPECT_NE(aot::content_key(a.res.program, false),
            aot::content_key(a.res.program, true));
  EXPECT_NE(aot::content_key(a.res.program, false),
            aot::content_key(b.res.program, false));
}

// Warm restart at the artifact level: a second compile_artifact against the
// same directory reloads the published .so instead of spawning the compiler.
TEST(AotArtifact, WarmReloadFromDisk) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  TempDir dir("warm");
  const AotCase c = random_case(73);
  aot::AotOptions opt;
  opt.artifact_dir = dir.path();

  const aot::ProgramArtifact cold = aot::compile_artifact(c.res.program, opt);
  ASSERT_EQ(cold.kind, BackendKind::kAotNative);
  EXPECT_FALSE(cold.from_disk);
  ASSERT_TRUE(fs::exists(cold.so_path));

  const aot::ProgramArtifact warm = aot::compile_artifact(c.res.program, opt);
  ASSERT_EQ(warm.kind, BackendKind::kAotNative);
  EXPECT_TRUE(warm.from_disk);
  EXPECT_EQ(warm.so_path, cold.so_path);
}

// The native code is specialized to the program's nominal row width; a batch
// sealed narrower (partial seal) must transparently take the always-built
// direct-threaded stream and stay bit-exact.
TEST(AotArtifact, OffWidthBatchFallsBackToThreadedStream) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  TempDir dir("offwidth");
  Rng gen(77);
  RandomCircuitSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 60;
  spec.num_outputs = 4;
  const Netlist nl = random_dag(spec, gen);
  CompileOptions copt;
  copt.lpu.m = 8;
  copt.lpu.n = 8;
  copt.lpu.word_width = 256;  // nominal: 4 words per row
  const CompileResult res = compile(nl, copt);

  aot::AotOptions opt;
  opt.artifact_dir = dir.path();
  opt.avx2 = LpuSimulator::cpu_has_avx2();
  auto art = std::make_shared<const aot::ProgramArtifact>(
      aot::compile_artifact(res.program, opt));
  ASSERT_EQ(art->kind, BackendKind::kAotNative);
  EXPECT_EQ(art->native_words, 4u);
  ASSERT_FALSE(art->threaded.empty());  // the fallback must exist

  aot::AotExecutor exec(res.program, art);
  LpuSimulator scalar(res.program, /*simd=*/false);
  Rng in_rng(78);
  // 256 lanes = the specialized width (native leg); 64 and 130 lanes = off
  // width (threaded fallback). All three must match the scalar oracle.
  for (const std::size_t width :
       {std::size_t{256}, std::size_t{64}, std::size_t{130}}) {
    SCOPED_TRACE("width " + std::to_string(width));
    const std::vector<BitVec> in = random_inputs(nl, width, in_rng);
    EXPECT_EQ(exec.run(in), scalar.run(in));
  }
}

// A corrupted or truncated artifact must fail the dlopen/key/ABI handshake,
// be unlinked, and be recompiled — never trusted, never fatal.
TEST(AotArtifact, CorruptedArtifactIsRebuilt) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  TempDir dir("corrupt");
  const AotCase c = random_case(74);
  aot::AotOptions opt;
  opt.artifact_dir = dir.path();

  std::string so_path;
  {
    // Scoped: the corruption below models a crashed WRITER leaving a bad
    // file behind, not scribbling over pages a live process has mapped —
    // so the dlopen handle must be closed before the file is touched.
    const aot::ProgramArtifact cold = aot::compile_artifact(c.res.program, opt);
    ASSERT_EQ(cold.kind, BackendKind::kAotNative);
    so_path = cold.so_path;
  }

  const auto rebuild_after = [&](const char* mode) {
    SCOPED_TRACE(mode);
    {
      const aot::ProgramArtifact again =
          aot::compile_artifact(c.res.program, opt);
      ASSERT_EQ(again.kind, BackendKind::kAotNative);
      EXPECT_FALSE(again.from_disk) << "corrupted artifact was trusted";
    }
    // And the rebuilt artifact still executes correctly.
    auto art = std::make_shared<const aot::ProgramArtifact>(
        aot::compile_artifact(c.res.program, opt));
    EXPECT_TRUE(art->from_disk);
    diff_artifact(c, art, 75);
  };

  {
    std::ofstream f(so_path, std::ios::trunc);  // truncated to nothing
    f << "";
  }
  rebuild_after("truncated");
  {
    std::ofstream f(so_path, std::ios::trunc);  // garbage bytes
    f << "not an ELF object at all";
  }
  rebuild_after("garbage");
}

// A foreign artifact occupying our name (key mismatch inside a valid .so)
// must also be rejected: copy a DIFFERENT program's artifact over ours.
TEST(AotArtifact, ForeignArtifactKeyMismatchIsRejected) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  TempDir dir("foreign");
  const AotCase a = random_case(75);
  const AotCase b = random_case(76);
  aot::AotOptions opt;
  opt.artifact_dir = dir.path();

  std::string path_a, path_b;
  {
    // Scoped so no live mapping covers the file the copy overwrites.
    const aot::ProgramArtifact art_a = aot::compile_artifact(a.res.program, opt);
    const aot::ProgramArtifact art_b = aot::compile_artifact(b.res.program, opt);
    ASSERT_EQ(art_a.kind, BackendKind::kAotNative);
    ASSERT_EQ(art_b.kind, BackendKind::kAotNative);
    path_a = art_a.so_path;
    path_b = art_b.so_path;
  }
  fs::copy_file(path_b, path_a, fs::copy_options::overwrite_existing);

  aot::ProgramArtifact again = aot::compile_artifact(a.res.program, opt);
  ASSERT_EQ(again.kind, BackendKind::kAotNative);
  EXPECT_FALSE(again.from_disk) << "foreign artifact passed the handshake";
  auto art = std::make_shared<const aot::ProgramArtifact>(std::move(again));
  diff_artifact(a, art, 77);
}

// ProgramCache native stage: one compile per key, later calls hit the LRU,
// and a concurrent caller joins the in-flight build instead of compiling
// again (gated deterministically through the native hook — no sleeps).
TEST(AotCache, NativeStageDedupesConcurrentBuilds) {
  TempDir dir("cache");
  const AotCase c = random_case(77);
  runtime::ProgramCache cache(8);
  aot::AotOptions opt;
  opt.artifact_dir = dir.path();
  opt.allow_native = native_reachable();

  std::mutex mu;
  std::condition_variable cv;
  bool in_build = false;
  bool second_started = false;
  cache.set_native_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    in_build = true;
    cv.notify_all();
    cv.wait(lk, [&] { return second_started; });
  });

  std::shared_ptr<const aot::ProgramArtifact> first, second;
  std::thread builder([&] { first = cache.get_or_build_native(c.res.program, opt); });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return in_build; });
  }
  std::thread joiner([&] {
    {
      std::lock_guard<std::mutex> lk(mu);
      second_started = true;
    }
    cv.notify_all();
    second = cache.get_or_build_native(c.res.program, opt);
  });
  builder.join();
  joiner.join();

  ASSERT_TRUE(first != nullptr);
  // Join or post-publish hit, either way: the same artifact, built once.
  EXPECT_EQ(first.get(), second.get());
  const runtime::CacheStats s = cache.stats();
  EXPECT_EQ(s.native_compiles + s.native_disk_hits, 1u);
  EXPECT_EQ(s.native_failures, 0u);

  cache.set_native_hook(nullptr);
  // Third call: pure LRU hit, the hook (now cleared) must not be needed.
  auto third = cache.get_or_build_native(c.res.program, opt);
  EXPECT_EQ(third.get(), first.get());
  const runtime::CacheStats s2 = cache.stats();
  EXPECT_EQ(s2.native_compiles + s2.native_disk_hits, 1u);
}

// ---------------------------------------------------------------- serving

runtime::EngineOptions aot_engine_options(const std::string& dir) {
  runtime::EngineOptions opt;
  opt.num_workers = 2;
  opt.aot = true;
  opt.artifact_dir = dir;
  // Keep the backend-count assertions exact: no speculative duplicates.
  opt.hedging = false;
  return opt;
}

Netlist serving_netlist(std::uint64_t seed) {
  Rng gen(seed);
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 120;
  spec.num_outputs = 6;
  return random_dag(spec, gen);
}

void expect_serves_correctly(runtime::Engine& eng, const runtime::ModelHandle& h,
                             const Netlist& nl, int rounds) {
  Rng rng(0x5eed);
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::vector<bool>> ins(8);
    std::vector<std::future<std::vector<bool>>> futs;
    for (auto& in : ins) {
      in.resize(nl.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
      futs.push_back(eng.submit(h, in));
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
      EXPECT_EQ(futs[i].get(), simulate_scalar(nl, ins[i]));
    }
  }
}

// Promotion under live traffic: requests served BEFORE the artifact lands
// run on the sliced interpreter, requests after wait_aot_ready() run on an
// AOT backend — and every single future resolves exactly once with the
// reference value (zero dropped, zero double-executed). The codegen job is
// gated on the native hook so "before" is deterministic, not a race.
TEST(AotServing, PromotionUnderLiveTrafficLosesNothing) {
  TempDir dir("promo");
  const Netlist nl = serving_netlist(91);
  runtime::Engine eng(aot_engine_options(dir.path()));
  ASSERT_TRUE(eng.aot_enabled());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  eng.program_cache().set_native_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });

  const runtime::ModelHandle h = eng.load("m", nl);
  // Pre-promotion traffic: codegen is parked on the hook, so these MUST run
  // on the sliced interpreter.
  expect_serves_correctly(eng, h, nl, 3);
  {
    const runtime::ServeReport r = eng.report();
    EXPECT_GT(r.member_runs_by_backend[1], 0u) << "sliced leg never ran";
    EXPECT_EQ(r.member_runs_by_backend[2] + r.member_runs_by_backend[3], 0u)
        << "promotion landed before codegen was released";
  }

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  eng.wait_aot_ready();
  // Post-promotion traffic: the artifact store is ordered before the
  // wait_aot_ready() handshake, so every run from here on is AOT.
  const runtime::ServeReport before = eng.report();
  expect_serves_correctly(eng, h, nl, 3);
  const runtime::ServeReport after = eng.report();
  EXPECT_GT(after.member_runs_by_backend[2] + after.member_runs_by_backend[3],
            before.member_runs_by_backend[2] + before.member_runs_by_backend[3]);
  EXPECT_EQ(after.member_runs_by_backend[1], before.member_runs_by_backend[1])
      << "a post-promotion run fell back to the interpreter";
  EXPECT_EQ(after.shed, 0u);
  EXPECT_EQ(after.expired, 0u);
  eng.shutdown();
}

// Unloading a model while its codegen job is still in flight must neither
// deadlock nor crash: the job holds the model state alive, finishes against
// the dead model, and the engine shuts down clean.
TEST(AotServing, UnloadDuringInflightCodegen) {
  TempDir dir("unload");
  const Netlist nl = serving_netlist(92);
  runtime::Engine eng(aot_engine_options(dir.path()));
  ASSERT_TRUE(eng.aot_enabled());

  std::mutex mu;
  std::condition_variable cv;
  bool in_build = false;
  bool release = false;
  eng.program_cache().set_native_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    in_build = true;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
  });

  const runtime::ModelHandle h = eng.load("m", nl);
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return in_build; });
  }
  // Codegen is mid-flight RIGHT NOW; serve a little and pull the model out
  // from under it.
  expect_serves_correctly(eng, h, nl, 1);
  EXPECT_TRUE(eng.unload(h));
  EXPECT_FALSE(h.loaded());
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  eng.wait_aot_ready();  // the orphaned job must still terminate
  eng.shutdown();
}

// Warm restart at the engine level: a second engine on the same artifact
// directory promotes from disk with ZERO native compiles — both by the
// cache counters and by the native hook never firing a build.
TEST(AotServing, WarmRestartRecompilesNothing) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  TempDir dir("restart");
  const Netlist nl = serving_netlist(93);
  {
    runtime::Engine cold(aot_engine_options(dir.path()));
    const runtime::ModelHandle h = cold.load("m", nl);
    cold.wait_aot_ready();
    expect_serves_correctly(cold, h, nl, 1);
    const runtime::CacheStats s = cold.cache_stats();
    EXPECT_GT(s.native_compiles, 0u);
    EXPECT_EQ(s.native_failures, 0u);
    cold.shutdown();
  }
  ASSERT_FALSE(fs::is_empty(dir.path())) << "no artifact persisted";

  runtime::Engine warm(aot_engine_options(dir.path()));
  const runtime::ModelHandle h = warm.load("m", nl);
  warm.wait_aot_ready();
  const runtime::CacheStats s = warm.cache_stats();
  EXPECT_EQ(s.native_compiles, 0u) << "warm restart recompiled";
  EXPECT_GT(s.native_disk_hits, 0u);
  EXPECT_EQ(s.native_failures, 0u);
  expect_serves_correctly(warm, h, nl, 2);
  const runtime::ServeReport r = warm.report();
  EXPECT_GT(r.member_runs_by_backend[2], 0u) << "warm engine not on native";
  warm.shutdown();
}

// Two live engines sharing one artifact directory: concurrent writers are
// safe (atomic publish), both serve bit-exact, and at most one compile per
// engine happens for the shared key.
TEST(AotServing, TwoEnginesShareArtifactDir) {
  TempDir dir("share");
  const Netlist nl = serving_netlist(94);
  runtime::Engine e1(aot_engine_options(dir.path()));
  runtime::Engine e2(aot_engine_options(dir.path()));
  const runtime::ModelHandle h1 = e1.load("m", nl);
  const runtime::ModelHandle h2 = e2.load("m", nl);
  e1.wait_aot_ready();
  e2.wait_aot_ready();
  expect_serves_correctly(e1, h1, nl, 2);
  expect_serves_correctly(e2, h2, nl, 2);
  const runtime::CacheStats s1 = e1.cache_stats();
  const runtime::CacheStats s2 = e2.cache_stats();
  EXPECT_EQ(s1.native_failures + s2.native_failures, 0u);
  // Each engine resolved the key exactly once (compile or disk hit); the
  // overlap decides the mix, the total is pinned.
  EXPECT_EQ(s1.native_compiles + s1.native_disk_hits, 1u);
  EXPECT_EQ(s2.native_compiles + s2.native_disk_hits, 1u);
  e1.shutdown();
  e2.shutdown();
}

// The engine owns a private artifact directory when none is named, and
// removes it at shutdown.
TEST(AotServing, PrivateArtifactDirIsCleanedUp) {
  runtime::EngineOptions opt;
  opt.num_workers = 1;
  opt.aot = true;
  std::string dir;
  {
    runtime::Engine eng(opt);
    if (!eng.aot_enabled()) GTEST_SKIP() << "AOT pinned off in this env";
    dir = eng.artifact_dir();
    ASSERT_FALSE(dir.empty());
    EXPECT_TRUE(fs::exists(dir));
    const Netlist nl = serving_netlist(95);
    const runtime::ModelHandle h = eng.load("m", nl);
    eng.wait_aot_ready();
    expect_serves_correctly(eng, h, nl, 1);
    eng.shutdown();
  }
  EXPECT_FALSE(fs::exists(dir)) << dir;
}

// Cancellation around the promotion instant: a deadline already in the past
// is shed/expired identically whether the member is pre- or post-promotion,
// and the engine's books stay balanced across the flip.
TEST(AotServing, ExpiredDeadlinesAcrossPromotion) {
  TempDir dir("deadline");
  const Netlist nl = serving_netlist(96);
  runtime::Engine eng(aot_engine_options(dir.path()));
  ASSERT_TRUE(eng.aot_enabled());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  eng.program_cache().set_native_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });
  const runtime::ModelHandle h = eng.load("m", nl);

  std::vector<bool> in(nl.num_inputs(), true);
  const auto doomed = eng.clock().now() - std::chrono::seconds(1);
  auto expect_doomed = [&] {
    std::future<std::vector<bool>> fut;
    const runtime::SubmitStatus st = eng.try_submit(h, in, &fut, doomed);
    EXPECT_EQ(st, runtime::SubmitStatus::kDeadlineUnmeetable);
  };
  expect_doomed();                       // pre-promotion
  expect_serves_correctly(eng, h, nl, 1);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  eng.wait_aot_ready();
  expect_doomed();                       // post-promotion
  expect_serves_correctly(eng, h, nl, 1);
  const runtime::ServeReport r = eng.report();
  EXPECT_EQ(r.requests, 16u);            // the 2x8 served rounds, nothing lost
  eng.shutdown();
}

// ---------------------------------------------------------------- router

// Fleet-wide artifact sharing: the router hands every shard ONE directory;
// a replica added after the first shard published its artifact warm-loads
// from disk instead of recompiling.
TEST(AotRouter, ReplicasShareArtifacts) {
  if (!native_reachable()) GTEST_SKIP() << "no native compiler reachable";
  router::RouterOptions ropt;
  ropt.num_shards = 2;
  ropt.initial_replicas = 1;
  ropt.engine.num_workers = 1;
  ropt.engine.aot = true;
  std::string dir;
  {
    router::Router router(ropt);
    dir = router.artifact_dir();
    ASSERT_FALSE(dir.empty());
    EXPECT_TRUE(fs::exists(dir));
    EXPECT_EQ(router.shard(0).artifact_dir(), dir);
    EXPECT_EQ(router.shard(1).artifact_dir(), dir);

    const Netlist nl = serving_netlist(97);
    const router::RoutedHandle h = router.load("m", nl);
    const std::vector<std::size_t> hosts = router.replica_shards(h);
    ASSERT_EQ(hosts.size(), 1u);
    const std::size_t first = hosts[0];
    router.shard(first).wait_aot_ready();
    EXPECT_EQ(router.shard(first).cache_stats().native_compiles, 1u);

    router.set_replicas(h, 2);
    const std::size_t second = 1 - first;
    router.shard(second).wait_aot_ready();
    const runtime::CacheStats s = router.shard(second).cache_stats();
    EXPECT_EQ(s.native_compiles, 0u) << "replica recompiled a shared artifact";
    EXPECT_EQ(s.native_disk_hits, 1u);

    Rng rng(0xf1ee7);
    for (int i = 0; i < 16; ++i) {
      std::vector<bool> in(nl.num_inputs());
      for (std::size_t b = 0; b < in.size(); ++b) in[b] = rng.next_bool();
      EXPECT_EQ(router.submit(h, in).get(), simulate_scalar(nl, in));
    }
    router.shutdown();
  }
  EXPECT_FALSE(fs::exists(dir)) << "fleet artifact dir not removed";
}

}  // namespace
}  // namespace lbnn
