// Speculative straggler hedging, proven correct under a deterministic
// ManualClock: every scenario below forces (or forbids) the hedge trigger
// exactly by advancing manual time, gates the racing copies through the
// member hook, and then audits the three promises the feature makes:
//
//   1. exactly-once resolution — whichever copy wins the member's result
//      claim, every accepted future resolves exactly once (a value or a
//      DeadlineExceeded), never twice, never not at all;
//   2. bit-exactness — the winning copy's outputs equal the single-execution
//      oracle (simulate_scalar), original winner or duplicate winner alike;
//   3. closed books — accepted == completed + shed + expired on the report,
//      and the hedge ledger (hedges_launched / hedge_wins / hedge_wasted_us)
//      matches the forced schedule.
//
// The hedge trigger reads the injected ClockSource, so each test drives it
// with zero real sleeps: advance() past started_at + hedge_factor x EWMA
// forces the duplicate, standing still forbids it. The whole file is in the
// CI TSan job's test set — the claim state machine must be race-clean, not
// just race-tolerant.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"

namespace lbnn::runtime {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kLanes = 16;  // m = 8 -> 16-lane datapath words

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;
}

Netlist wide_dag(std::uint64_t seed) {
  Rng gen(seed);
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 80;
  spec.num_outputs = 6;  // enough POs to split across 4 assembly members
  return random_dag(spec, gen);
}

/// Reusable one-shot barrier for pinning executors inside the member hook.
/// arm() before the run, wait_here() from the hook (records the arrival so
/// the test can rendezvous on it), release() from the test.
class Gate {
 public:
  void arm() {
    std::lock_guard<std::mutex> lk(mu_);
    hold_ = true;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  void wait_here() {
    std::unique_lock<std::mutex> lk(mu_);
    ++arrivals_;
    cv_.notify_all();
    cv_.wait(lk, [&] { return !hold_; });
    ++departures_;
    cv_.notify_all();
  }
  /// Block (real cv wait, no polling) until `n` executors are parked or have
  /// passed through since construction.
  void await_arrivals(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return arrivals_ >= n; });
  }
  /// Block until `n` executors have passed THROUGH the gate. Re-arming a
  /// released gate before a parked loser has left would trap it for another
  /// round — multi-round tests rendezvous here first.
  void await_departures(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return departures_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool hold_ = false;
  int arrivals_ = 0;
  int departures_ = 0;
};

/// The scripted hook driving every scenario. Phases:
///   kWarmup  — advance the ManualClock 1 ms per member run, teaching the
///              admission/hedge EWMA exactly 1000 us;
///   kScript  — originals of `gated_member` park on gate_original, hedge
///              duplicates park on gate_hedge (when armed); everything else
///              passes through untouched.
struct HookScript {
  enum Phase { kWarmup, kScript };
  ManualClock* clock = nullptr;
  std::atomic<int> phase{kWarmup};
  std::atomic<int> gated_member{-1};  ///< -1: gate every member's original
  std::atomic<bool> gate_duplicates{false};
  Gate gate_original;
  Gate gate_hedge;

  void operator()(const std::string&, std::size_t member, bool hedge) {
    if (phase.load() == kWarmup) {
      clock->advance(1ms);
      return;
    }
    if (hedge) {
      if (gate_duplicates.load()) gate_hedge.wait_here();
      return;
    }
    const int gated = gated_member.load();
    if (gated < 0 || static_cast<int>(member) == gated) {
      gate_original.wait_here();
    }
  }
};

/// Asserts the report's request books close: everything admitted was
/// answered exactly once, as a completion, a shed, or an expiry.
void expect_books_close(const ServeReport& rep, std::uint64_t accepted) {
  EXPECT_EQ(rep.requests + rep.shed + rep.expired, accepted);
}

class HedgingTest : public ::testing::Test {
 protected:
  /// Builds a hedging engine over `members`-way "dag" with the scripted
  /// hook installed and the EWMA pre-taught via one warmup batch (1 ms of
  /// manual time per member run => EWMA in [1 ms, members ms] — exactly
  /// 1 ms for a single-member model). hedge_factor 8 makes the warmup
  /// provably hedge-proof: at most `members` (<= 4) advances of 1 ms can
  /// land after any warmup member starts, while its trigger sits at
  /// >= 8 x 1 ms — so no advance schedule, however the workers interleave
  /// in real time (TSan!), reaches it. Tests then force the hedge by
  /// advancing past 8 x the worst-case EWMA in one deliberate step.
  void start(std::uint32_t workers, std::uint32_t members,
             bool hedging = true) {
    nl_ = wide_dag(500 + members);
    expect_ = simulate_scalar(nl_, std::vector<bool>(nl_.num_inputs(), true));
    EngineOptions eopt;
    eopt.num_workers = workers;
    eopt.compile = small_lpu();
    eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
    eopt.clock = &clock_;
    eopt.hedging = hedging;
    eopt.hedge_factor = 8;
    engine_ = std::make_unique<Engine>(eopt);
    script_.clock = &clock_;
    engine_->set_member_hook(
        [this](const std::string& n, std::size_t m, bool h) {
          script_(n, m, h);
        });
    ModelOptions mopt;
    mopt.queue_bound = 64;
    dag_ = members > 1 ? engine_->load_parallel("dag", nl_, members, mopt)
                       : engine_->load("dag", nl_, mopt);

    // Warmup: one full batch teaches the EWMA 1000 us per member run.
    std::vector<std::future<std::vector<bool>>> warm;
    for (std::size_t i = 0; i < kLanes; ++i) warm.push_back(submit_one());
    engine_->drain();
    for (auto& f : warm) EXPECT_EQ(f.get(), expect_);
    EXPECT_EQ(engine_->report().hedges_launched, 0u);  // never during warmup
    accepted_ = kLanes;
    script_.phase.store(HookScript::kScript);
  }

  std::future<std::vector<bool>> submit_one(TimePoint deadline = kNoDeadline) {
    return engine_->submit(dag_, std::vector<bool>(nl_.num_inputs(), true),
                           deadline);
  }

  /// Seals one lane-full batch (16 submits; the 16th seals inline) whose
  /// futures the caller audits. Counts toward accepted_.
  std::vector<std::future<std::vector<bool>>> submit_batch() {
    std::vector<std::future<std::vector<bool>>> futs;
    for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(submit_one());
    accepted_ += kLanes;
    return futs;
  }

  /// Releases any parked executors and tears the engine down so losing
  /// copies finish before the report audit (shutdown joins all workers).
  void settle() {
    script_.gate_original.release();
    script_.gate_hedge.release();
    engine_->shutdown();
  }

  ManualClock clock_;
  HookScript script_;
  Netlist nl_;
  std::vector<bool> expect_;
  std::unique_ptr<Engine> engine_;
  ModelHandle dag_;
  std::uint64_t accepted_ = 0;
};

// Forced hedge, duplicate wins: the only member's original parks in the
// hook; advancing past the 8 ms trigger launches the duplicate, which runs
// to completion and claims the result while the original is still pinned.
// The futures resolve bit-exactly BEFORE the original ever resumes.
TEST_F(HedgingTest, DuplicateWinsWhileOriginalStalls) {
  start(/*workers=*/2, /*members=*/1);
  script_.gate_original.arm();

  auto futs = submit_batch();
  // The original is parked inside its hook — its claim state is published,
  // so the idle worker can time the trigger.
  script_.gate_original.await_arrivals(1);
  clock_.advance(9ms);  // past started_at + 8 x 1000 us: forces the hedge

  // The duplicate (not gated) wins the claim and finalizes the batch; these
  // get() calls return while the original is still parked.
  for (auto& f : futs) EXPECT_EQ(f.get(), expect_);

  ServeReport rep = engine_->report();
  EXPECT_EQ(rep.hedges_launched, 1u);
  EXPECT_EQ(rep.hedge_wins, 1u);
  EXPECT_EQ(rep.requests, accepted_);
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].hedges_launched, 1u);
  EXPECT_EQ(rep.per_model[0].hedge_wins, 1u);

  // Release the loser; shutdown joins it, so the waste it burned (>= the
  // 9 ms of manual time that passed while it was parked) is on the books.
  settle();
  rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.expired, 0u);
  EXPECT_GE(rep.hedge_wasted_us, 9000u);
  // A hedged member resolves once: warmup's 1 member_run + this batch's 1.
  EXPECT_EQ(rep.member_runs, 2u);
}

// Forced hedge, original wins: the duplicate is gated instead. Once the
// hedge is provably launched (ledger says so before its hook runs), the
// original is released, finishes, and claims the result; the duplicate
// loses and is discarded.
TEST_F(HedgingTest, OriginalWinsWhileDuplicateStalls) {
  start(/*workers=*/2, /*members=*/1);
  script_.gate_original.arm();
  script_.gate_hedge.arm();
  script_.gate_duplicates.store(true);

  auto futs = submit_batch();
  script_.gate_original.await_arrivals(1);
  clock_.advance(9ms);
  // The duplicate parks in ITS hook — the launch is now a fact.
  script_.gate_hedge.await_arrivals(1);
  EXPECT_EQ(engine_->report().hedges_launched, 1u);
  EXPECT_EQ(engine_->report().requests, kLanes);  // warmup only; batch pending

  script_.gate_original.release();  // original finishes first and wins
  for (auto& f : futs) EXPECT_EQ(f.get(), expect_);

  ServeReport rep = engine_->report();
  EXPECT_EQ(rep.hedges_launched, 1u);
  EXPECT_EQ(rep.hedge_wins, 0u);  // the original kept its member

  settle();  // frees the duplicate; it loses the claim and records waste
  rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.hedge_wins, 0u);
  EXPECT_EQ(rep.member_runs, 2u);
}

// Both copies released at once race the claim CAS directly. Whoever wins,
// the futures resolve exactly once and bit-exactly, and the ledger stays
// coherent (1 launch, 0 or 1 win). Repeated a few rounds so both outcomes
// get real chances under TSan.
TEST_F(HedgingTest, ConcurrentFinishResolvesExactlyOnce) {
  start(/*workers=*/2, /*members=*/1);
  for (int round = 0; round < 8; ++round) {
    script_.gate_original.arm();
    script_.gate_hedge.arm();
    script_.gate_duplicates.store(true);

    auto futs = submit_batch();
    script_.gate_original.await_arrivals(round + 1);
    // The advance triples per round because an original-win round feeds
    // its parked time into the EWMA (it is the legitimate winner sample):
    // with EWMA_k <= 1000 x 3^k us, the round's advance of 8 x that bound
    // gives EWMA_{k+1} <= (3 + 8) / 4 x bound < 3 x bound — the induction
    // holds and every round's advance clears its trigger. Manual time is
    // free.
    std::uint64_t bound_us = 1000;
    for (int i = 0; i < round; ++i) bound_us *= 3;
    clock_.advance(std::chrono::microseconds(8 * bound_us));
    script_.gate_hedge.await_arrivals(round + 1);

    // Gate both at the claim point, then fire: the two copies run the
    // simulator back to back and race the kHedged -> kDone transition.
    script_.gate_original.release();
    script_.gate_hedge.release();
    for (auto& f : futs) EXPECT_EQ(f.get(), expect_);
    // The round's loser must be OUT of the gate before the next round arms
    // it again, or it would be trapped a second time and its worker would
    // never go idle to hedge the next batch.
    script_.gate_original.await_departures(round + 1);
    script_.gate_hedge.await_departures(round + 1);

    const ServeReport rep = engine_->report();
    EXPECT_EQ(rep.hedges_launched, static_cast<std::uint64_t>(round + 1));
    EXPECT_LE(rep.hedge_wins, rep.hedges_launched);
    EXPECT_EQ(rep.requests, accepted_);
  }
  settle();
  const ServeReport rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.member_runs, 9u);  // warmup + 8 rounds, one resolution each
  EXPECT_EQ(rep.hedges_launched, 8u);
}

// Hedge racing drain and unload: the duplicate completes the batch while
// the original is still parked, so drain() and then unload() both finish
// with a loser still in flight. The unloaded model's state must stay alive
// for the loser (it holds the batch), and a post-unload submit is cleanly
// rejected. Exactly-once resolution throughout.
TEST_F(HedgingTest, HedgeCompletesBatchAcrossDrainAndUnload) {
  start(/*workers=*/2, /*members=*/1);
  script_.gate_original.arm();

  auto futs = submit_batch();
  script_.gate_original.await_arrivals(1);
  clock_.advance(9ms);  // duplicate launches, wins, finalizes

  engine_->drain();  // returns: every accepted request is answered
  for (auto& f : futs) EXPECT_EQ(f.get(), expect_);

  // Unload while the losing original is STILL parked in its hook: the drain
  // inside unload has nothing left to wait for, and the loser's keep-alive
  // (BatchWork's model shared_ptr) outlives the registry entry.
  EXPECT_TRUE(engine_->unload(dag_));
  EXPECT_FALSE(dag_.loaded());
  std::future<std::vector<bool>> rejected;
  EXPECT_EQ(engine_->try_submit(dag_, std::vector<bool>(nl_.num_inputs()),
                                &rejected),
            SubmitStatus::kUnloaded);

  settle();
  const ServeReport rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.hedges_launched, 1u);
  EXPECT_EQ(rep.hedge_wins, 1u);
}

// A 4-member batch that partially expires before dispatch AND hedges its
// last member: two requests are settled as expired at first claim, the live
// fourteen are served by members 0..3 — member 3's original parks, the
// duplicate wins it. Books close: accepted == completed + expired, every
// future resolves exactly once, member_runs counts each member once.
TEST_F(HedgingTest, HedgeOnPartiallyExpiredBatch) {
  start(/*workers=*/2, /*members=*/4);
  script_.gated_member.store(3);  // only member 3's original parks
  script_.gate_original.arm();

  // Two doomed requests, then the clock overtakes them while the batch is
  // still assembling; the final submit seals it lane-full. The 20 ms SLO is
  // wide enough to clear admission (the warmed EWMA estimates at most
  // 4 members x 4 ms best-case drain) yet still expires before dispatch.
  std::vector<std::future<std::vector<bool>>> doomed, live;
  const TimePoint slo = clock_.now() + 20ms;
  doomed.push_back(submit_one(slo));
  doomed.push_back(submit_one(slo));
  for (std::size_t i = 2; i < kLanes - 1; ++i) live.push_back(submit_one());
  clock_.advance(21ms);  // both deadlines pass pre-seal
  live.push_back(submit_one());  // 16th submit seals inline
  accepted_ += kLanes;

  // Members 0-2 run (split between the workers), member 3's original parks.
  // A sibling still mid-run when we advance absorbs the advance into its
  // timed region and feeds it to the EWMA — the trigger then grows 8x
  // faster than `now`, so no single fixed advance is guaranteed to catch
  // it. Step instead: once members 0-2 have completed, the EWMA (and with
  // it the trigger) freezes, and the stepped advances must cross it. The
  // poll is pure progress observation — no wall-clock waits.
  script_.gate_original.await_arrivals(1);
  while (engine_->report().hedges_launched == 0) {
    clock_.advance(9ms);
    std::this_thread::yield();
  }

  for (auto& f : live) EXPECT_EQ(f.get(), expect_);
  for (auto& f : doomed) EXPECT_THROW(f.get(), DeadlineExceeded);

  settle();
  const ServeReport rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.expired, 2u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.requests, accepted_ - 2);
  EXPECT_EQ(rep.hedges_launched, 1u);
  EXPECT_EQ(rep.hedge_wins, 1u);
  // 4 warmup members + 4 batch members, each resolved exactly once.
  EXPECT_EQ(rep.member_runs, 8u);
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].expired, 2u);
  EXPECT_EQ(rep.per_model[0].hedge_wins, 1u);
}

// Cold start forbids hedging: with no EWMA signal (the hook adds no manual
// time, so sub-microsecond samples never feed it), no advance can force a
// duplicate — the trigger would be a guess, and the runtime refuses to
// guess. The parked original stays the only executor.
TEST(HedgingColdStart, NoSignalMeansNoHedge) {
  ManualClock clock;
  const Netlist nl = wide_dag(77);
  const auto expect =
      simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  eopt.hedging = true;
  eopt.hedge_factor = 1;  // the most eager trigger there is
  Engine engine(eopt);
  const ModelHandle m = engine.load("cold", nl);

  Gate gate;
  gate.arm();
  engine.set_member_hook(
      [&](const std::string&, std::size_t, bool hedge) {
        ASSERT_FALSE(hedge) << "hedge launched with no service signal";
        gate.wait_here();
      });
  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) {
    futs.push_back(engine.submit(m, std::vector<bool>(nl.num_inputs(), true)));
  }
  gate.await_arrivals(1);
  clock.advance(1h);  // a whole hour of "straggling": still no estimate
  gate.release();
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);
  engine.shutdown();

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.hedges_launched, 0u);
  EXPECT_EQ(rep.hedge_wasted_us, 0u);
  EXPECT_EQ(rep.requests, kLanes);
}

// EngineOptions::hedging = false is the steal-only baseline: the identical
// forced-straggler schedule launches nothing.
TEST_F(HedgingTest, DisabledMeansNoDuplicates) {
  start(/*workers=*/2, /*members=*/1, /*hedging=*/false);
  script_.gate_original.arm();

  auto futs = submit_batch();
  script_.gate_original.await_arrivals(1);
  clock_.advance(1h);  // far past any trigger — and nothing may fire
  script_.gate_original.release();
  for (auto& f : futs) EXPECT_EQ(f.get(), expect_);

  settle();
  const ServeReport rep = engine_->report();
  expect_books_close(rep, accepted_);
  EXPECT_EQ(rep.hedges_launched, 0u);
  EXPECT_EQ(rep.hedge_wins, 0u);
  EXPECT_EQ(rep.hedge_wasted_us, 0u);
}

}  // namespace
}  // namespace lbnn::runtime
