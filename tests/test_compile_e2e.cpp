#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "verilog/parser.hpp"

namespace lbnn {
namespace {

/// Compile `nl`, run the LPU simulator on random vectors, and compare with
/// the reference netlist simulator. This is the central correctness property
/// of the whole system.
void expect_lpu_matches_reference(const Netlist& nl, const CompileOptions& opt,
                                  int seed, std::size_t rounds = 3) {
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  Rng rng(seed);
  const std::size_t width = res.program.cfg.effective_word_width();
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto in = random_inputs(nl, width, rng);
    const auto expect = simulate(nl, in);
    const auto got = sim.run(in);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t o = 0; o < expect.size(); ++o) {
      ASSERT_EQ(expect[o], got[o]) << "PO " << o << " mismatch (seed " << seed << ")";
    }
  }
}

CompileOptions small_lpu(std::uint32_t m, std::uint32_t n) {
  CompileOptions opt;
  opt.lpu.m = m;
  opt.lpu.n = n;
  return opt;
}

TEST(CompileE2E, SingleGate) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.add_output(nl.add_gate(GateOp::kAnd, a, b), "y");
  expect_lpu_matches_reference(nl, small_lpu(4, 4), 1);
}

TEST(CompileE2E, PassThroughWire) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.add_output(a, "y");
  expect_lpu_matches_reference(nl, small_lpu(4, 4), 2);
}

TEST(CompileE2E, ConstantOutput) {
  Netlist nl;
  nl.add_input("a");
  nl.add_output(nl.add_gate(GateOp::kConst1), "y");
  expect_lpu_matches_reference(nl, small_lpu(4, 4), 3);
}

TEST(CompileE2E, FullAdder) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId cin = nl.add_input("cin");
  const NodeId axb = nl.add_gate(GateOp::kXor, a, b);
  nl.add_output(nl.add_gate(GateOp::kXor, axb, cin), "s");
  const NodeId ab = nl.add_gate(GateOp::kAnd, a, b);
  const NodeId c2 = nl.add_gate(GateOp::kAnd, cin, axb);
  nl.add_output(nl.add_gate(GateOp::kOr, ab, c2), "cout");
  expect_lpu_matches_reference(nl, small_lpu(4, 4), 4);
}

TEST(CompileE2E, DeepTreeNeedsCirculation) {
  // Tree over 64 leaves has depth 6; on a 4-LPV LPU it needs 2+ passes.
  Rng gen(5);
  const Netlist nl = random_tree(64, gen);
  CompileOptions opt = small_lpu(8, 4);
  const CompileResult res = compile(nl, opt);
  EXPECT_GE(res.report.bands, 2u);
  expect_lpu_matches_reference(nl, opt, 5);
}

TEST(CompileE2E, WideGridNeedsManyMfgs) {
  Rng gen(6);
  const Netlist nl = reconvergent_grid(24, 6, gen);
  CompileOptions opt = small_lpu(8, 8);
  const CompileResult res = compile(nl, opt);
  EXPECT_GT(res.report.mfgs_after_merge, 4u);
  expect_lpu_matches_reference(nl, opt, 6);
}

TEST(CompileE2E, MergingOnAndOffBothCorrect) {
  Rng gen(7);
  const Netlist nl = reconvergent_grid(16, 8, gen);
  CompileOptions with = small_lpu(8, 8);
  CompileOptions without = small_lpu(8, 8);
  without.merge = false;
  expect_lpu_matches_reference(nl, with, 7);
  expect_lpu_matches_reference(nl, without, 7);
  const auto rw = compile(nl, with);
  const auto rwo = compile(nl, without);
  EXPECT_LE(rw.report.mfgs_after_merge, rwo.report.mfgs_after_merge);
  EXPECT_LE(rw.report.wavefronts, rwo.report.wavefronts);
}

TEST(CompileE2E, PaperStrictLibrary) {
  Rng gen(8);
  const Netlist nl = reconvergent_grid(10, 5, gen);
  CompileOptions opt = small_lpu(8, 8);
  opt.library = CellLibrary::paper_strict();
  expect_lpu_matches_reference(nl, opt, 8);
}

TEST(CompileE2E, NoOptimizePath) {
  Rng gen(9);
  const Netlist nl = reconvergent_grid(8, 5, gen);
  CompileOptions opt = small_lpu(8, 8);
  opt.optimize = false;
  expect_lpu_matches_reference(nl, opt, 9);
}

TEST(CompileE2E, VerilogSourceToLpu) {
  const auto mod = verilog::parse_module(R"(
    module mux4(s, d, y);
      input [1:0] s;
      input [3:0] d;
      output y;
      wire ns0, ns1, t0, t1, t2, t3, o01, o23;
      not g0(ns0, s[0]);
      not g1(ns1, s[1]);
      and g2(t0, d[0], ns0, ns1);
      and g3(t1, d[1], s[0], ns1);
      and g4(t2, d[2], ns0, s[1]);
      and g5(t3, d[3], s[0], s[1]);
      or  g6(o01, t0, t1);
      or  g7(o23, t2, t3);
      or  g8(y, o01, o23);
    endmodule
  )");
  expect_lpu_matches_reference(mod.netlist, small_lpu(4, 4), 10);
}

TEST(CompileE2E, ReportIsConsistent) {
  Rng gen(11);
  const Netlist nl = reconvergent_grid(12, 6, gen);
  const CompileOptions opt = small_lpu(8, 8);
  const CompileResult res = compile(nl, opt);
  EXPECT_EQ(res.report.wavefronts, res.program.num_wavefronts);
  EXPECT_GT(res.report.mfgs_before_merge, 0u);
  EXPECT_EQ(res.report.effective_m, 8u);
  EXPECT_GT(res.program.total_computes(), 0u);
  std::ostringstream os;
  res.program.disassemble(os, 4);
  EXPECT_NE(os.str().find("memLoc 0:"), std::string::npos);
}

TEST(CompileE2E, RejectsDegenerateInputs) {
  Netlist no_out;
  no_out.add_input("a");
  EXPECT_THROW(compile(no_out, small_lpu(4, 4)), CompileError);

  Netlist no_in;
  no_in.add_output(no_in.add_gate(GateOp::kConst0), "y");
  EXPECT_THROW(compile(no_in, small_lpu(4, 4)), CompileError);

  Netlist ok;
  const NodeId a = ok.add_input("a");
  ok.add_output(ok.add_gate(GateOp::kNot, a), "y");
  EXPECT_THROW(compile(ok, small_lpu(4, 1)), CompileError);  // n < 2
}

TEST(CompileE2E, ThroughputMetrics) {
  Rng gen(12);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  const CompileResult res = compile(nl, small_lpu(8, 8));
  const Program& p = res.program;
  EXPECT_EQ(p.macro_cycles(), p.num_wavefronts + p.cfg.n - 1);
  EXPECT_EQ(p.clock_cycles(), p.macro_cycles() * p.cfg.tc());
  EXPECT_GT(p.samples_per_second(), 0.0);
}

// The end-to-end property sweep: families x LPU shapes x seeds.
struct E2EParam {
  int family;
  std::uint32_t m;
  std::uint32_t n;
  int seed;
};

class CompileE2EProperty : public ::testing::TestWithParam<E2EParam> {};

TEST_P(CompileE2EProperty, LpuMatchesReference) {
  const E2EParam p = GetParam();
  Rng gen(p.seed);
  Netlist nl;
  switch (p.family) {
    case 0: nl = random_tree(40, gen); break;
    case 1: nl = reconvergent_grid(14, 9, gen); break;
    default: {
      RandomCircuitSpec spec;
      spec.num_inputs = 12;
      spec.num_gates = 260;
      spec.num_outputs = 6;
      spec.unary_fraction = 0.2;
      nl = random_dag(spec, gen);
      break;
    }
  }
  expect_lpu_matches_reference(nl, small_lpu(p.m, p.n), p.seed + 1000, 2);
}

std::vector<E2EParam> e2e_params() {
  std::vector<E2EParam> out;
  int seed = 1;
  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {4, 4}, {8, 4}, {4, 8}, {16, 6}, {6, 16}};
  for (const int family : {0, 1, 2}) {
    for (const auto& [m, n] : shapes) {
      for (int s = 0; s < 2; ++s) {
        out.push_back({family, m, n, seed++});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompileE2EProperty, ::testing::ValuesIn(e2e_params()));

}  // namespace
}  // namespace lbnn
