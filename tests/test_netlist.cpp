#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "netlist/stats.hpp"

namespace lbnn {
namespace {

Netlist full_adder() {
  // s = a ^ b ^ cin; cout = ab | cin(a^b)
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId cin = nl.add_input("cin");
  const NodeId axb = nl.add_gate(GateOp::kXor, a, b);
  const NodeId s = nl.add_gate(GateOp::kXor, axb, cin);
  const NodeId ab = nl.add_gate(GateOp::kAnd, a, b);
  const NodeId c2 = nl.add_gate(GateOp::kAnd, cin, axb);
  const NodeId cout = nl.add_gate(GateOp::kOr, ab, c2);
  nl.add_output(s, "s");
  nl.add_output(cout, "cout");
  return nl;
}

TEST(Netlist, Construction) {
  const Netlist nl = full_adder();
  EXPECT_EQ(nl.num_inputs(), 3u);
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_EQ(nl.num_gates(), 5u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, FullAdderTruthTable) {
  const Netlist nl = full_adder();
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const auto out = simulate_scalar(nl, {a == 1, b == 1, c == 1});
        const int sum = a + b + c;
        EXPECT_EQ(out[0], (sum & 1) == 1) << a << b << c;
        EXPECT_EQ(out[1], sum >= 2) << a << b << c;
      }
    }
  }
}

TEST(Netlist, Levels) {
  const Netlist nl = full_adder();
  const auto lv = nl.levels();
  EXPECT_EQ(lv[0], 0);  // input a
  EXPECT_EQ(lv[3], 1);  // a^b
  EXPECT_EQ(lv[4], 2);  // sum
  EXPECT_EQ(nl.depth(), 3);  // cout = or(and, and(xor)) -> level 3
}

TEST(Netlist, FanoutCounts) {
  const Netlist nl = full_adder();
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[0], 2u);  // a feeds xor and and
  EXPECT_EQ(fo[3], 2u);  // a^b feeds sum xor and carry and
}

TEST(Netlist, InputIndex) {
  const Netlist nl = full_adder();
  EXPECT_EQ(nl.input_index(0), 0);
  EXPECT_EQ(nl.input_index(2), 2);
  EXPECT_EQ(nl.input_index(4), -1);
}

TEST(Netlist, GateArityChecksThrow) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateOp::kAnd, a), std::logic_error);
  EXPECT_THROW(nl.add_gate(GateOp::kNot, a, a), std::logic_error);
  EXPECT_THROW(nl.add_gate(GateOp::kAnd, a, 99), std::logic_error);
}

TEST(Netlist, BitParallelSimulationMatchesScalar) {
  const Netlist nl = full_adder();
  Rng rng(3);
  const auto in = random_inputs(nl, 64, rng);
  const auto out = simulate(nl, in);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const auto scalar = simulate_scalar(
        nl, {in[0].get(lane), in[1].get(lane), in[2].get(lane)});
    EXPECT_EQ(out[0].get(lane), scalar[0]);
    EXPECT_EQ(out[1].get(lane), scalar[1]);
  }
}

TEST(Netlist, ConstantsSimulate) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId c1 = nl.add_gate(GateOp::kConst1);
  const NodeId x = nl.add_gate(GateOp::kXor, a, c1);
  nl.add_output(x, "y");
  const auto out0 = simulate_scalar(nl, {false});
  const auto out1 = simulate_scalar(nl, {true});
  EXPECT_TRUE(out0[0]);
  EXPECT_FALSE(out1[0]);
}

TEST(Netlist, StatsProfile) {
  const Netlist nl = full_adder();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_gates, 5u);
  EXPECT_EQ(s.depth, 3);
  EXPECT_EQ(s.width_profile[0], 3u);  // three PIs
  EXPECT_EQ(s.max_width, 3u);
}

TEST(RandomCircuits, DagIsValidAndDeterministic) {
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 100;
  spec.num_outputs = 5;
  Rng rng1(99), rng2(99);
  const Netlist a = random_dag(spec, rng1);
  const Netlist b = random_dag(spec, rng2);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  Rng sim_rng(5);
  EXPECT_TRUE(equivalent_random(a, b, 64, 4, sim_rng));
}

TEST(RandomCircuits, TreeHasSingleOutputAndLogDepth) {
  Rng rng(1);
  const Netlist t = random_tree(64, rng);
  EXPECT_EQ(t.num_outputs(), 1u);
  EXPECT_EQ(t.depth(), 6);  // perfectly balanced over 64 leaves
  EXPECT_NO_THROW(t.validate());
}

TEST(RandomCircuits, GridIsWide) {
  Rng rng(1);
  const Netlist g = reconvergent_grid(16, 5, rng);
  EXPECT_EQ(g.num_outputs(), 16u);
  EXPECT_EQ(g.depth(), 5);
  EXPECT_EQ(g.num_gates(), 16u * 5u);
}

TEST(Simulate, EquivalentRandomDetectsDifference) {
  Netlist a;
  const NodeId ai = a.add_input("x");
  a.add_output(a.add_gate(GateOp::kNot, ai), "y");
  Netlist b;
  const NodeId bi = b.add_input("x");
  b.add_output(b.add_gate(GateOp::kBuf, bi), "y");
  Rng rng(1);
  EXPECT_FALSE(equivalent_random(a, b, 32, 2, rng));
}

}  // namespace
}  // namespace lbnn
