#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/serialize.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"

namespace lbnn {
namespace {

Program tiny_program() {
  // One memLoc: LPV0 loads PI0/PI1 into lane 0 as BUFs is impossible (one
  // lane has one output), so: lane0 <- in0, lane1 <- in1, then LPV1 ANDs them.
  Program p;
  p.cfg.m = 2;
  p.cfg.n = 2;
  p.cfg.word_width = 8;
  p.num_wavefronts = 1;
  p.num_primary_inputs = 2;
  p.num_primary_outputs = 1;
  p.input_layout = {0, 1};
  p.instr.assign(1, std::vector<LpvInstr>(2));
  p.instr[0][0].routes = {{0, {SrcSel::Kind::kInput, 0}},
                          {2, {SrcSel::Kind::kInput, 1}}};
  p.instr[0][0].computes = {{0, TruthTable4::from_op(GateOp::kBuf)},
                            {1, TruthTable4::from_op(GateOp::kBuf)}};
  p.instr[0][1].routes = {{0, {SrcSel::Kind::kPrevLane, 0}},
                          {1, {SrcSel::Kind::kPrevLane, 1}}};
  p.instr[0][1].computes = {{0, TruthTable4::from_op(GateOp::kAnd)}};
  p.output_taps = {{0, 0, 0}};
  return p;
}

TEST(LpuSim, HandAssembledProgram) {
  const Program p = tiny_program();
  LpuSimulator sim(p);
  BitVec a(8), b(8);
  a.set_word(0, 0b10110010);
  b.set_word(0, 0b11010110);
  const auto out = sim.run({a, b});
  EXPECT_EQ(out[0].word(0), 0b10010010u);
}

TEST(LpuSim, CountersAreFilled) {
  const Program p = tiny_program();
  LpuSimulator sim(p);
  sim.run({BitVec(8), BitVec(8)});
  const SimCounters& c = sim.counters();
  EXPECT_EQ(c.wavefronts, 1u);
  EXPECT_EQ(c.lpe_computes, 3u);
  EXPECT_EQ(c.route_writes, 4u);
  EXPECT_EQ(c.input_reads, 2u);
  EXPECT_EQ(c.macro_cycles, 2u);  // 1 wavefront + (n-1)
  EXPECT_EQ(c.clock_cycles, 12u);
  EXPECT_NEAR(c.lpe_utilization, 3.0 / (1 * 2 * 2), 1e-9);
}

TEST(LpuSim, WrongInputCountThrows) {
  const Program p = tiny_program();
  LpuSimulator sim(p);
  EXPECT_THROW(sim.run({BitVec(8)}), SimError);
}

TEST(LpuSim, RaggedWidthsThrow) {
  const Program p = tiny_program();
  LpuSimulator sim(p);
  EXPECT_THROW(sim.run({BitVec(8), BitVec(16)}), SimError);
}

TEST(LpuSim, ComputeOverInvalidOperandThrows) {
  Program p = tiny_program();
  // Remove the route that feeds LPV1 slot 1 -> AND reads an invalid B.
  p.instr[0][1].routes.pop_back();
  LpuSimulator sim(p);
  EXPECT_THROW(sim.run({BitVec(8), BitVec(8)}), SimError);
}

TEST(LpuSim, UnaryOpsIgnoreMissingB) {
  Program p = tiny_program();
  // Replace the AND with NOT(a): B slot stays invalid, must be fine.
  p.instr[0][1].routes.pop_back();
  p.instr[0][1].computes = {{0, TruthTable4::from_op(GateOp::kNot)}};
  LpuSimulator sim(p);
  BitVec a(8);
  a.set_word(0, 0x0F);
  const auto out = sim.run({a, BitVec(8)});
  EXPECT_EQ(out[0].word(0), 0xF0u);
}

TEST(LpuSim, RouteFromLpv0PredecessorThrows) {
  Program p = tiny_program();
  p.instr[0][0].routes[0] = {0, {SrcSel::Kind::kPrevLane, 0}};
  LpuSimulator sim(p);
  EXPECT_THROW(sim.run({BitVec(8), BitVec(8)}), SimError);
}

TEST(LpuSim, FeedbackReadBeforeWriteThrows) {
  Program p = tiny_program();
  p.instr[0][0].routes[0] = {0, {SrcSel::Kind::kFeedback, 0}};
  LpuSimulator sim(p);
  EXPECT_THROW(sim.run({BitVec(8), BitVec(8)}), SimError);
}

TEST(LpuSim, ProgramValidationCatchesBadFields) {
  {
    Program p = tiny_program();
    p.instr[0][1].computes[0].lane = 9;
    EXPECT_THROW(LpuSimulator{p}, Error);
  }
  {
    Program p = tiny_program();
    p.instr[0][0].routes[0].slot = 100;
    EXPECT_THROW(LpuSimulator{p}, Error);
  }
  {
    Program p = tiny_program();
    p.output_taps[0].wavefront = 5;
    EXPECT_THROW(LpuSimulator{p}, Error);
  }
  {
    Program p = tiny_program();
    p.instr[0][0].feedback_writes.push_back(0);  // not the terminal LPV
    EXPECT_THROW(LpuSimulator{p}, Error);
  }
}

TEST(LpuSim, InstrHookSeesEveryNonEmptyInstr) {
  Rng gen(3);
  const Netlist nl = reconvergent_grid(8, 5, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  std::size_t seen = 0;
  sim.set_instr_hook([&seen](std::uint32_t, std::uint32_t, const LpvInstr&) {
    ++seen;
  });
  Rng rng(4);
  sim.run(random_inputs(nl, 16, rng));
  std::size_t nonempty = 0;
  for (const auto& wave : res.program.instr) {
    for (const auto& li : wave) {
      if (!li.empty()) ++nonempty;
    }
  }
  EXPECT_EQ(seen, nonempty);
}

TEST(LpuSim, WordWidthIndependence) {
  // The datapath is bit-sliced: running at width 16 and 128 must agree on
  // the overlapping lanes.
  Rng gen(5);
  const Netlist nl = reconvergent_grid(10, 6, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  Rng rng(6);
  const auto wide = random_inputs(nl, 128, rng);
  std::vector<BitVec> narrow;
  for (const auto& w : wide) {
    BitVec v(16);
    for (std::size_t i = 0; i < 16; ++i) v.set(i, w.get(i));
    narrow.push_back(v);
  }
  const auto wide_out = sim.run(wide);
  const auto narrow_out = sim.run(narrow);
  for (std::size_t o = 0; o < wide_out.size(); ++o) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(narrow_out[o].get(i), wide_out[o].get(i));
    }
  }
}

TEST(LpuSim, RepeatedRunsAreIndependent) {
  Rng gen(7);
  const Netlist nl = reconvergent_grid(8, 6, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  Rng rng(8);
  const auto in1 = random_inputs(nl, 32, rng);
  const auto in2 = random_inputs(nl, 32, rng);
  const auto out1a = sim.run(in1);
  const auto out2 = sim.run(in2);
  const auto out1b = sim.run(in1);
  EXPECT_EQ(out1a, out1b);  // no state leaks between batches
  EXPECT_EQ(out1a, simulate(nl, in1));
  EXPECT_EQ(out2, simulate(nl, in2));
}

// ---- kernel edge cases the scalar-vs-sliced oracle alone can't localize:
// widths straddling the 64-bit word boundary, degenerate widths, and taps
// landing in a partial tail word (tests/test_simd_diff.cpp holds the kernels
// to EACH OTHER; these hold them to the netlist reference at the exact
// widths where tail masking bugs live).

TEST(LpuSim, NonMultipleOf64Widths) {
  Rng gen(11);
  const Netlist nl = reconvergent_grid(10, 5, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  Rng rng(12);
  for (const std::size_t width : {1u, 63u, 65u, 127u, 129u, 191u}) {
    SCOPED_TRACE("width " + std::to_string(width));
    const auto in = random_inputs(nl, width, rng);
    const auto want = simulate(nl, in);
    for (const bool simd : {false, true}) {
      LpuSimulator sim(res.program, simd);
      const auto out = sim.run(in);
      EXPECT_EQ(out, want);
      // The kernels' complement terms set bits past the batch width inside
      // the arena; none may leak into the returned BitVecs.
      for (const auto& v : out) {
        ASSERT_EQ(v.width(), width);
        for (std::size_t w = 0; w < v.num_words(); ++w) {
          const std::size_t live =
              std::min<std::size_t>(64, width - 64 * w);
          const std::uint64_t mask =
              live == 64 ? ~0ull : ((1ull << live) - 1);
          EXPECT_EQ(v.word(w) & ~mask, 0u) << "stray tail bits, word " << w;
        }
      }
    }
  }
}

TEST(LpuSim, WidthOneBatch) {
  // A single sample: every word is a tail word.
  Rng gen(13);
  RandomCircuitSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 40;
  spec.num_outputs = 3;
  const Netlist nl = random_dag(spec, gen);
  const CompileResult res = compile(nl, CompileOptions{});
  Rng rng(14);
  for (int trial = 0; trial < 8; ++trial) {
    const auto in = random_inputs(nl, 1, rng);
    const auto want = simulate(nl, in);
    EXPECT_EQ(LpuSimulator(res.program, false).run(in), want);
    EXPECT_EQ(LpuSimulator(res.program).run(in), want);
  }
}

TEST(LpuSim, EmptyInputProgramRunsAtConfiguredWidth) {
  // No primary inputs: run({}) takes the width from the LPU config. The
  // program below computes const-1 in LPV0 (a LUT that ignores both of its
  // invalid-but-ignored operands) and taps it through LPV1.
  Program p;
  p.cfg.m = 2;
  p.cfg.n = 2;
  p.cfg.word_width = 70;  // deliberately not a multiple of 64
  p.num_wavefronts = 1;
  p.num_primary_inputs = 0;
  p.num_primary_outputs = 1;
  p.instr.assign(1, std::vector<LpvInstr>(2));
  p.instr[0][0].computes = {{0, TruthTable4(0xF)}};
  p.instr[0][1].routes = {{0, {SrcSel::Kind::kPrevLane, 0}}};
  p.instr[0][1].computes = {{0, TruthTable4::from_op(GateOp::kBuf)}};
  p.output_taps = {{0, 0, 0}};
  for (const bool simd : {false, true}) {
    LpuSimulator sim(p, simd);
    const auto out = sim.run({});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].width(), p.cfg.effective_word_width());
    for (std::size_t i = 0; i < out[0].width(); ++i) {
      EXPECT_TRUE(out[0].get(i)) << "lane " << i;
    }
  }
}

TEST(LpuSim, OutputTapsOnPartialTailWords) {
  // Outputs whose tap copies land in a partial tail word: width 97 leaves
  // 33 live bits in word 1. Compare lane-by-lane against the reference at
  // the exact boundary lanes.
  Rng gen(15);
  const Netlist nl = reconvergent_grid(12, 4, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  Rng rng(16);
  const std::size_t width = 97;
  const auto in = random_inputs(nl, width, rng);
  const auto want = simulate(nl, in);
  const auto out = LpuSimulator(res.program).run(in);
  ASSERT_EQ(out.size(), want.size());
  for (std::size_t o = 0; o < out.size(); ++o) {
    for (const std::size_t lane : {0u, 63u, 64u, 95u, 96u}) {
      EXPECT_EQ(out[o].get(lane), want[o].get(lane))
          << "output " << o << " lane " << lane;
    }
    EXPECT_EQ(out[o], want[o]);
  }
}

TEST(EvalLut, IntoFormMatchesAndSupportsAliasing) {
  Rng rng(17);
  const std::size_t width = 130;
  BitVec a(width), b(width);
  for (std::size_t i = 0; i < width; ++i) {
    a.set(i, rng.next_bool());
    b.set(i, rng.next_bool());
  }
  for (int bits = 0; bits < 16; ++bits) {
    const TruthTable4 lut(static_cast<std::uint8_t>(bits));
    const BitVec want = eval_lut(lut, a, b);
    BitVec out(width);
    eval_lut_into(lut, a, b, out);
    EXPECT_EQ(out, want) << "lut " << bits;
    BitVec alias_a = a;  // out aliasing the A operand
    eval_lut_into(lut, alias_a, b, alias_a);
    EXPECT_EQ(alias_a, want) << "lut " << bits << " (aliased a)";
    BitVec alias_b = b;  // out aliasing the B operand
    eval_lut_into(lut, a, alias_b, alias_b);
    EXPECT_EQ(alias_b, want) << "lut " << bits << " (aliased b)";
  }
}

TEST(EvalLut, AllSixteenFunctions) {
  BitVec a(4), b(4);
  // lanes: (a,b) = (0,0),(1,0),(0,1),(1,1)
  a.set(1, true);
  a.set(3, true);
  b.set(2, true);
  b.set(3, true);
  for (int bits = 0; bits < 16; ++bits) {
    const BitVec r = eval_lut(TruthTable4(static_cast<std::uint8_t>(bits)), a, b);
    for (int lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(r.get(static_cast<std::size_t>(lane)), ((bits >> lane) & 1) != 0)
          << "lut " << bits << " lane " << lane;
    }
  }
}

}  // namespace
}  // namespace lbnn
