#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "interconnect/benes.hpp"
#include "interconnect/copy_network.hpp"
#include "interconnect/multicast.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"

namespace lbnn {
namespace {

using interconnect::BenesNetwork;
using interconnect::CopyNetwork;
using interconnect::MulticastSwitch;

TEST(Benes, StageGeometry) {
  const BenesNetwork net(8);
  EXPECT_EQ(net.num_stages(), 5u);
  EXPECT_EQ(net.elements_per_stage(), 4u);
  EXPECT_EQ(net.total_elements(), 20u);
}

TEST(Benes, RejectsNonPowerOfTwo) {
  EXPECT_THROW(BenesNetwork(6), Error);
  EXPECT_THROW(BenesNetwork(1), Error);
}

TEST(Benes, IdentityPermutation) {
  const BenesNetwork net(8);
  std::vector<std::int32_t> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  const auto cfg = net.route(perm);
  std::vector<std::uint32_t> in(8);
  std::iota(in.begin(), in.end(), 100);
  const auto out = net.apply(cfg, in);
  EXPECT_EQ(out, in);
}

TEST(Benes, ReversalPermutation) {
  const BenesNetwork net(16);
  std::vector<std::int32_t> perm(16);
  for (int i = 0; i < 16; ++i) perm[static_cast<std::size_t>(i)] = 15 - i;
  const auto cfg = net.route(perm);
  std::vector<std::uint32_t> in(16);
  std::iota(in.begin(), in.end(), 0);
  const auto out = net.apply(cfg, in);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[15 - i], in[i]);
}

TEST(Benes, TwoPortNetwork) {
  const BenesNetwork net(2);
  const auto cfg = net.route({1, 0});
  const auto out = net.apply(cfg, {7, 9});
  EXPECT_EQ(out[0], 9u);
  EXPECT_EQ(out[1], 7u);
}

TEST(Benes, PartialPermutationWithIdleInputs) {
  const BenesNetwork net(8);
  std::vector<std::int32_t> perm(8, -1);
  perm[2] = 5;
  perm[7] = 0;
  const auto cfg = net.route(perm);
  std::vector<std::uint32_t> in(8);
  std::iota(in.begin(), in.end(), 0);
  const auto out = net.apply(cfg, in);
  EXPECT_EQ(out[5], 2u);
  EXPECT_EQ(out[0], 7u);
}

TEST(Benes, DuplicateDestinationRejected) {
  const BenesNetwork net(4);
  EXPECT_THROW(net.route({1, 1, -1, -1}), Error);
}

class BenesProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BenesProperty, RoutesRandomPermutations) {
  const auto [ports, seed] = GetParam();
  const BenesNetwork net(static_cast<std::uint32_t>(ports));
  Rng rng(static_cast<std::uint64_t>(seed));
  // Fisher-Yates permutation.
  std::vector<std::int32_t> perm(static_cast<std::size_t>(ports));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  const auto cfg = net.route(perm);
  std::vector<std::uint32_t> in(perm.size());
  std::iota(in.begin(), in.end(), 0);
  const auto out = net.apply(cfg, in);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(perm[i])], in[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BenesProperty,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32, 64, 128),
                       ::testing::Range(1, 6)));

TEST(CopyNetwork, SingleBlockBroadcast) {
  const CopyNetwork net(8);
  const auto cfg = net.route_blocks({0, 0, 0, 0, 0, 0, 0, 0});
  const auto out = net.apply(cfg, {42, 0, 0, 0, 0, 0, 0, 0});
  for (const auto v : out) EXPECT_EQ(v, 42u);
}

TEST(CopyNetwork, MultipleBlocks) {
  const CopyNetwork net(8);
  const auto cfg = net.route_blocks({0, 0, 0, 1, 1, 2, 3, 3});
  const auto out = net.apply(cfg, {1, 0, 0, 2, 0, 3, 4, 0});
  const std::vector<std::uint32_t> want{1, 1, 1, 2, 2, 3, 4, 4};
  EXPECT_EQ(out, want);
}

TEST(CopyNetwork, ElementsCount) {
  const CopyNetwork net(128);
  EXPECT_EQ(net.num_stages(), 7u);
  EXPECT_EQ(net.total_elements(), 7u * 128u);
}

class CopyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CopyProperty, RandomBlockPartitions) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::uint32_t n = 64;
  const CopyNetwork net(n);
  // Random contiguous partition.
  std::vector<std::uint32_t> block_of(n);
  std::uint32_t block = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p > 0 && rng.next_below(3) == 0) ++block;
    block_of[p] = block;
  }
  std::vector<std::uint32_t> in(n, 0);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p == 0 || block_of[p] != block_of[p - 1]) in[p] = 1000 + block_of[p];
  }
  const auto out = net.apply(net.route_blocks(block_of), in);
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_EQ(out[p], 1000 + block_of[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyProperty, ::testing::Range(1, 9));

TEST(Multicast, BroadcastOneToAll) {
  const MulticastSwitch sw(4, 8);
  std::vector<std::int32_t> assign(8, 2);
  const auto cfg = sw.route(assign);
  const auto out = sw.apply(cfg, {10, 11, 12, 13});
  for (const auto v : out) EXPECT_EQ(v, 12u);
}

TEST(Multicast, MixedFanouts) {
  const MulticastSwitch sw(4, 8);
  const std::vector<std::int32_t> assign{0, 0, 3, -1, 1, 3, 3, -1};
  const auto cfg = sw.route(assign);
  const auto out = sw.apply(cfg, {10, 11, 12, 13});
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 10u);
  EXPECT_EQ(out[2], 13u);
  EXPECT_EQ(out[4], 11u);
  EXPECT_EQ(out[5], 13u);
  EXPECT_EQ(out[6], 13u);
}

TEST(Multicast, LogicalStagesMatchConstruction) {
  const MulticastSwitch sw(64, 128);
  // Beneš(128) twice (13 stages each) + copy (7 stages).
  EXPECT_EQ(sw.logical_stages(), 2u * 13u + 7u);
}

class MulticastProperty : public ::testing::TestWithParam<int> {};

TEST_P(MulticastProperty, RandomAssignments) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::uint32_t m = 16;
  const MulticastSwitch sw(m, 2 * m);
  std::vector<std::int32_t> assign(2 * m);
  for (auto& a : assign) {
    a = rng.next_below(4) == 0 ? -1 : static_cast<std::int32_t>(rng.next_below(m));
  }
  const auto cfg = sw.route(assign);
  std::vector<std::uint32_t> src(m);
  std::iota(src.begin(), src.end(), 500);
  const auto out = sw.apply(cfg, src);
  for (std::uint32_t d = 0; d < 2 * m; ++d) {
    if (assign[d] >= 0) {
      EXPECT_EQ(out[d], src[static_cast<std::size_t>(assign[d])]) << "dest " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticastProperty, ::testing::Range(1, 17));

TEST(Multicast, StagedSwitchModeMatchesReference) {
  // Full staged-fabric execution: every inter-LPV route is resolved by
  // actually routing the Benes+copy network and pushing lane indices through
  // its stages; the LPU outputs must still match the reference simulator.
  Rng gen(21);
  const Netlist nl = reconvergent_grid(10, 7, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);

  LpuSimulator sim(res.program);
  const MulticastSwitch fabric(opt.lpu.m, 2 * opt.lpu.m);
  sim.set_route_oracle([&fabric](const std::vector<std::int32_t>& assignment) {
    const auto cfg = fabric.route(assignment);
    std::vector<std::uint32_t> ids(fabric.sources());
    std::iota(ids.begin(), ids.end(), 0);
    return fabric.apply(cfg, ids);
  });

  Rng rng(22);
  for (int round = 0; round < 3; ++round) {
    const auto in = random_inputs(nl, 32, rng);
    EXPECT_EQ(sim.run(in), simulate(nl, in));
  }
}

TEST(Multicast, CompiledProgramsAreRealizable) {
  // Every route config emitted by the compiler must be realizable on the
  // staged fabric — the link between the functional simulator and hardware.
  for (const int seed : {1, 2, 3}) {
    Rng gen(static_cast<std::uint64_t>(seed));
    const Netlist nl = reconvergent_grid(12, 8, gen);
    CompileOptions opt;
    opt.lpu.m = 8;
    opt.lpu.n = 8;
    const CompileResult res = compile(nl, opt);
    const std::size_t checked = interconnect::verify_program_routes(res.program);
    EXPECT_GT(checked, 0u);
  }
}

}  // namespace
}  // namespace lbnn
