// Request-lifecycle tracing, proven deterministic under a ManualClock: each
// scenario forces one exact schedule (gates pin workers, manual time forces
// or forbids triggers) and then asserts the drained event stream — not just
// counters — replays it. Three properties carry the suite:
//
//   1. exact sequences — a steal scenario and a hedge-win scenario each map
//      to ONE legal event string, byte-identical across runs once worker
//      tracks are normalized;
//   2. closed books — submits == admits + sheds and admits == request-done
//      events, on the stream itself, so the trace can audit the engine the
//      same way the report does;
//   3. bounded cost — a full ring drops events and counts them; it never
//      blocks, corrupts, or perturbs request results.
//
// The phase-decomposition and metrics-rendering checks live here too: they
// consume the same lifecycle transitions the stream records.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace lbnn::runtime {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kLanes = 16;  // m = 8 -> 16-lane datapath words

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;
}

Netlist wide_dag(std::uint64_t seed) {
  Rng gen(seed);
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 80;
  spec.num_outputs = 6;  // enough POs to split across 4 assembly members
  return random_dag(spec, gen);
}

/// One-shot barrier for pinning executors inside a hook (same idiom as
/// test_hedging's Gate).
class Gate {
 public:
  void arm() {
    std::lock_guard<std::mutex> lk(mu_);
    hold_ = true;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  void wait_here() {
    std::unique_lock<std::mutex> lk(mu_);
    ++arrivals_;
    cv_.notify_all();
    cv_.wait(lk, [&] { return !hold_; });
  }
  void await_arrivals(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return arrivals_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool hold_ = false;
  int arrivals_ = 0;
};

/// Render an event stream as one line per event with worker tracks
/// normalized by first appearance ("w0" is whichever worker ring emitted
/// first, the shared ring is always "c") — the byte-identical-replay
/// comparisons must not depend on which OS thread won which role.
std::string render(const std::vector<TraceEvent>& events) {
  std::map<std::uint16_t, std::string> tracks;
  tracks[0] = "c";
  std::ostringstream os;
  for (const TraceEvent& ev : events) {
    auto it = tracks.find(ev.track);
    if (it == tracks.end()) {
      it = tracks.emplace(ev.track, "w" + std::to_string(tracks.size() - 1)).first;
    }
    os << it->second << ":" << to_string(ev.type) << " m" << ev.member << " id"
       << ev.id << " a" << ev.arg << " f" << int(ev.flags) << "\n";
  }
  return os.str();
}

/// Book-closure on the stream itself: every admitted request completes
/// exactly once, and nothing completes unadmitted.
void expect_stream_books_close(const std::vector<TraceEvent>& events) {
  std::uint64_t submits = 0, admits = 0, sheds = 0, dones = 0;
  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case TraceEventType::kSubmit: ++submits; break;
      case TraceEventType::kAdmit: ++admits; break;
      case TraceEventType::kShed: ++sheds; break;
      case TraceEventType::kRequestDone: ++dones; break;
      default: break;
    }
  }
  EXPECT_EQ(submits, admits + sheds);
  EXPECT_EQ(admits, dones);
}

/// The steal scenario driven to one exact schedule: two workers, a 4-member
/// model, the dispatching worker parked in the dispatch hook BEFORE it can
/// claim any member — so the other worker steals and runs all four, then
/// finalizes. One pre-batch doomed try_submit adds a deterministic shed.
/// Returns the drained stream (the engine is shut down first, so every
/// worker has quiesced).
std::vector<TraceEvent> run_steal_scenario() {
  ManualClock clock;
  const Netlist nl = wide_dag(504);
  const auto expect =
      simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
  eopt.clock = &clock;
  eopt.hedging = false;  // steal-only schedule
  eopt.tracing = true;
  Engine engine(eopt);
  const ModelHandle dag = engine.load_parallel("dag", nl, 4);

  Gate gate;
  gate.arm();
  engine.set_dispatch_hook([&](const std::string&) { gate.wait_here(); });

  const std::vector<bool> bits(nl.num_inputs(), true);
  // A deadline already in the past sheds deterministically (no EWMA needed).
  std::future<std::vector<bool>> doomed;
  EXPECT_EQ(engine.try_submit(dag, bits, &doomed, clock.now() - 1us),
            SubmitStatus::kDeadlineUnmeetable);

  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(engine.submit(dag, bits));

  // The popper is pinned in its hook; the idle worker steals members 0..3 in
  // cursor order and finalizes. Futures resolving proves it happened.
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);
  gate.release();
  engine.shutdown();
  return engine.drain_trace();
}

TEST(TraceSteal, ExactEventSequence) {
  const std::vector<TraceEvent> events = run_steal_scenario();

  // Build the one legal sequence as (type, member, flags) triples.
  struct Expect {
    TraceEventType type;
    std::uint32_t member;
    std::uint8_t flags;
  };
  std::vector<Expect> want;
  want.push_back({TraceEventType::kSubmit, 0, 0});  // the doomed request
  want.push_back({TraceEventType::kShed, 0, 0});
  for (std::size_t i = 0; i < kLanes; ++i) {
    want.push_back({TraceEventType::kSubmit, 0, 0});
    want.push_back({TraceEventType::kAdmit, 0, 0});
  }
  want.push_back({TraceEventType::kSeal, 0, 0});
  want.push_back({TraceEventType::kEnqueue, 0, 0});
  want.push_back({TraceEventType::kDispatch, 0, 0});
  for (std::uint32_t m = 0; m < 4; ++m) {
    want.push_back({TraceEventType::kMemberSteal, m, kTraceFlagStolen});
    want.push_back({TraceEventType::kMemberDone, m, kTraceFlagStolen});
  }
  want.push_back({TraceEventType::kFinalize, 0, 0});
  for (std::size_t i = 0; i < kLanes; ++i) {
    want.push_back({TraceEventType::kRequestDone, 0, 0});
  }

  ASSERT_EQ(events.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(events[i].type, want[i].type) << "event " << i;
    EXPECT_EQ(events[i].member, want[i].member) << "event " << i;
    EXPECT_EQ(events[i].flags, want[i].flags) << "event " << i;
  }

  // Track discipline: everything pre-dispatch is on the shared client ring;
  // the dispatch and the steals are on two DIFFERENT worker rings.
  const auto dispatch = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.type == TraceEventType::kDispatch; });
  ASSERT_NE(dispatch, events.end());
  EXPECT_NE(dispatch->track, 0);
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kMemberSteal ||
        ev.type == TraceEventType::kMemberDone ||
        ev.type == TraceEventType::kFinalize ||
        ev.type == TraceEventType::kRequestDone) {
      EXPECT_NE(ev.track, 0);
      EXPECT_NE(ev.track, dispatch->track) << to_string(ev.type);
    }
    if (ev.type == TraceEventType::kSubmit || ev.type == TraceEventType::kShed ||
        ev.type == TraceEventType::kAdmit || ev.type == TraceEventType::kSeal ||
        ev.type == TraceEventType::kEnqueue) {
      EXPECT_EQ(ev.track, 0u) << to_string(ev.type);
    }
  }

  // The batch payload: the seal carries 16 requests, the finalize 16 live.
  const auto seal = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.type == TraceEventType::kSeal; });
  EXPECT_EQ(seal->arg, kLanes);
  const auto fin = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.type == TraceEventType::kFinalize; });
  EXPECT_EQ(fin->arg, kLanes);

  // Flow linkage: the shed id and every admitted id appear among the submit
  // ids; every request-done id appears among the admitted ids.
  std::vector<std::uint64_t> submit_ids, admit_ids;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kSubmit) submit_ids.push_back(ev.id);
    if (ev.type == TraceEventType::kAdmit) admit_ids.push_back(ev.id);
  }
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kShed) {
      EXPECT_NE(std::find(submit_ids.begin(), submit_ids.end(), ev.id),
                submit_ids.end());
    }
    if (ev.type == TraceEventType::kRequestDone) {
      EXPECT_NE(std::find(admit_ids.begin(), admit_ids.end(), ev.id),
                admit_ids.end());
    }
  }
  expect_stream_books_close(events);

  // Global order: seq strictly increasing after the cross-ring merge.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

// The acceptance bar for determinism: the full scenario, run twice in fresh
// engines, renders to byte-identical sequences (tracks normalized by first
// appearance — which OS thread plays which role may differ; the schedule may
// not).
TEST(TraceSteal, ByteIdenticalAcrossRuns) {
  const std::string a = render(run_steal_scenario());
  const std::string b = render(run_steal_scenario());
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

/// Hedge-win scenario (the test_hedging idiom, replayed on the stream): one
/// member, two workers, EWMA pre-taught to 1000 us by a warmup batch whose
/// events are drained away; the original parks in the member hook, a 9 ms
/// advance forces the duplicate, which wins and finalizes while the original
/// is still pinned; releasing it records the cancel.
std::vector<TraceEvent> run_hedge_scenario() {
  ManualClock clock;
  const Netlist nl = wide_dag(501);
  const auto expect =
      simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  eopt.hedging = true;
  eopt.hedge_factor = 8;  // warmup-hedge-proof (see test_hedging)
  eopt.tracing = true;
  Engine engine(eopt);
  const ModelHandle dag = engine.load("dag", nl);

  Gate gate;
  std::atomic<bool> script{false};
  engine.set_member_hook([&](const std::string&, std::size_t, bool hedge) {
    if (!script.load()) {
      clock.advance(1ms);  // warmup: teach the EWMA exactly 1000 us
      return;
    }
    if (!hedge) gate.wait_here();  // the original parks; the duplicate runs
  });

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> warm;
  for (std::size_t i = 0; i < kLanes; ++i) warm.push_back(engine.submit(dag, bits));
  engine.drain();
  for (auto& f : warm) EXPECT_EQ(f.get(), expect);
  (void)engine.drain_trace();  // warmup events are not the scenario's
  script.store(true);
  gate.arm();

  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(engine.submit(dag, bits));
  gate.await_arrivals(1);  // the original is parked, claim published
  clock.advance(9ms);      // past started_at + 8 x 1000 us: forces the hedge
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);  // duplicate won

  gate.release();  // the loser finishes, records its cancel
  engine.shutdown();
  return engine.drain_trace();
}

TEST(TraceHedge, ExactEventSequence) {
  const std::vector<TraceEvent> events = run_hedge_scenario();

  struct Expect {
    TraceEventType type;
    std::uint8_t flags;
  };
  std::vector<Expect> want;
  for (std::size_t i = 0; i < kLanes; ++i) {
    want.push_back({TraceEventType::kSubmit, 0});
    want.push_back({TraceEventType::kAdmit, 0});
  }
  want.push_back({TraceEventType::kSeal, 0});
  want.push_back({TraceEventType::kEnqueue, 0});
  want.push_back({TraceEventType::kDispatch, 0});
  want.push_back({TraceEventType::kMemberClaim, 0});  // the original starts
  want.push_back({TraceEventType::kHedgeLaunch, kTraceFlagHedge});
  want.push_back({TraceEventType::kMemberDone, kTraceFlagHedge});
  want.push_back({TraceEventType::kHedgeWin, kTraceFlagHedge});
  want.push_back({TraceEventType::kFinalize, 0});
  for (std::size_t i = 0; i < kLanes; ++i) {
    want.push_back({TraceEventType::kRequestDone, 0});
  }
  want.push_back({TraceEventType::kHedgeCancel, 0});  // the original, released

  ASSERT_EQ(events.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(events[i].type, want[i].type) << "event " << i;
    EXPECT_EQ(events[i].flags, want[i].flags) << "event " << i;
  }

  // The duplicate's whole span lives on a different worker ring than the
  // original's claim; the cancel is back on the original's ring.
  const auto find = [&](TraceEventType t) {
    return std::find_if(events.begin(), events.end(),
                        [t](const TraceEvent& e) { return e.type == t; });
  };
  const auto claim = find(TraceEventType::kMemberClaim);
  const auto launch = find(TraceEventType::kHedgeLaunch);
  const auto cancel = find(TraceEventType::kHedgeCancel);
  EXPECT_NE(claim->track, launch->track);
  EXPECT_EQ(cancel->track, claim->track);
  // The loser was parked for the full 9 ms advance: its discarded time is on
  // the cancel's arg.
  EXPECT_GE(cancel->arg, 9000u);
  expect_stream_books_close(events);
}

TEST(TraceHedge, ByteIdenticalAcrossRuns) {
  const std::string a = render(run_hedge_scenario());
  const std::string b = render(run_hedge_scenario());
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// A full ring drops and counts, never blocks or corrupts: a 4-slot ring
// under 8 batches of traffic must lose events (the count says how many), the
// survivors must still be well-formed and seq-ordered, and every request
// still resolves — trace pressure is invisible to clients.
TEST(TraceRingOverflow, DropsAreCountedNotBlocking) {
  ManualClock clock;
  const Netlist nl = wide_dag(502);
  const auto expect =
      simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  eopt.tracing = true;
  eopt.trace_ring_capacity = 4;
  Engine engine(eopt);
  const ModelHandle dag = engine.load("dag", nl);

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (int batch = 0; batch < 8; ++batch) {
    for (std::size_t i = 0; i < kLanes; ++i) {
      futs.push_back(engine.submit(dag, bits));
    }
  }
  engine.drain();
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);
  engine.shutdown();

  EXPECT_GT(engine.trace_dropped(), 0u);
  const std::vector<TraceEvent> events = engine.drain_trace();
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(), 8u);  // two 4-slot rings can hold at most 8
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_STRNE(to_string(events[i].type), "unknown");
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  // The report's books still close — stats never ride the rings.
  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.requests, 8 * kLanes);
  EXPECT_EQ(rep.shed + rep.expired, 0u);
}

// Phase decomposition from one exactly-timed batch: the request waits 200 us
// for the timeout seal (assembly), the member hook advances 1 ms inside the
// run (execution), and nothing else moves the clock — so the histograms must
// land in the 255 us and 1023 us log2 buckets with zero queue-wait/finalize.
TEST(TracePhases, DecompositionMatchesManualSchedule) {
  ManualClock clock;
  const Netlist nl = wide_dag(503);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = 200us;
  eopt.clock = &clock;
  eopt.hedging = false;
  Engine engine(eopt);
  const ModelHandle dag = engine.load("dag", nl);
  engine.set_member_hook(
      [&](const std::string&, std::size_t, bool) { clock.advance(1ms); });

  auto fut = engine.submit(dag, std::vector<bool>(nl.num_inputs(), true));
  clock.advance(200us);  // the timekeeper seals the 1-request batch
  (void)fut.get();
  engine.shutdown();

  const ServeReport rep = engine.report();
  ASSERT_EQ(rep.phases.assembly_wait.count, 1u);
  EXPECT_EQ(rep.phases.assembly_wait.p50_us, 255u);   // 200 us -> [128, 256)
  EXPECT_EQ(rep.phases.queue_wait.p50_us, 0u);
  ASSERT_EQ(rep.phases.execution.count, 1u);
  EXPECT_EQ(rep.phases.execution.p50_us, 1023u);      // 1000 us -> [512, 1024)
  EXPECT_EQ(rep.phases.finalize.p50_us, 0u);
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].phases.assembly_wait.p50_us, 255u);
  EXPECT_EQ(rep.per_model[0].phases.execution.p50_us, 1023u);
}

// Unloading a model folds its rows into the persistent "(retired)" row
// instead of erasing its history (the pre-PR-6 behavior this fixes).
TEST(TraceRetired, UnloadKeepsHistoryInRetiredRow) {
  ManualClock clock;
  const Netlist nl = wide_dag(505);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle a = engine.load("a", nl);
  const ModelHandle b = engine.load("b", nl);

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(engine.submit(a, bits));
  engine.drain();
  for (auto& f : futs) (void)f.get();

  ASSERT_EQ(engine.report().per_model.size(), 2u);
  EXPECT_TRUE(engine.unload(a));

  ServeReport rep = engine.report();
  ASSERT_EQ(rep.per_model.size(), 2u);  // "b" + "(retired)"
  EXPECT_EQ(rep.per_model[0].name, "b");
  EXPECT_EQ(rep.per_model[1].name, "(retired)");
  EXPECT_EQ(rep.per_model[1].requests, kLanes);
  EXPECT_EQ(rep.per_model[1].batches, 1u);

  // A second unload folds INTO the same row: histories accumulate.
  EXPECT_TRUE(engine.unload(b));
  rep = engine.report();
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].name, "(retired)");
  EXPECT_EQ(rep.per_model[0].requests, kLanes);  // b served nothing
  engine.shutdown();
}

// The renderers over a live report: stable Prometheus series names, valid
// JSON shape, the retired row exported like any other model row.
TEST(TraceMetrics, RenderersCarryTheReport) {
  ManualClock clock;
  const Netlist nl = wide_dag(506);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle dag = engine.load("dag", nl);

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(engine.submit(dag, bits));
  engine.drain();
  for (auto& f : futs) (void)f.get();
  EXPECT_TRUE(engine.unload(dag));

  const std::string prom = engine.metrics_prometheus();
  EXPECT_NE(prom.find("lbnn_requests_total 16"), std::string::npos);
  EXPECT_NE(prom.find("lbnn_batches_total 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lbnn_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("lbnn_phase_latency_us{phase=\"queue_wait\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("lbnn_model_requests_total{model=\"(retired)\"} 16"),
            std::string::npos);

  const std::string json = engine.metrics_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"requests\":16"), std::string::npos);
  EXPECT_NE(json.find("\"per_model\":[{\"name\":\"(retired)\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\":{\"assembly_wait\":"), std::string::npos);
  engine.shutdown();
}

// Chrome-trace export: structurally valid JSON envelope with thread
// metadata, flow events pairing each submit with its completion, and the
// drop counter in otherData. (CI additionally runs python3 -m json.tool over
// a serve_demo export.)
TEST(TraceExport, ChromeTraceEnvelope) {
  ManualClock clock;
  const Netlist nl = wide_dag(507);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  eopt.tracing = true;
  Engine engine(eopt);
  const ModelHandle dag = engine.load("dag", nl);
  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < kLanes; ++i) futs.push_back(engine.submit(dag, bits));
  engine.drain();
  for (auto& f : futs) (void)f.get();
  engine.shutdown();

  std::ostringstream os;
  engine.export_trace(os);
  const std::string trace = os.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"clients\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  EXPECT_NE(trace.find("\"droppedEvents\":0"), std::string::npos);

  // Tracing off: still a valid, empty envelope. (Skipped when
  // LBNN_FORCE_TRACING is set — the override turning this engine's tracing
  // ON anyway is exactly its documented behavior.)
  if (std::getenv("LBNN_FORCE_TRACING") == nullptr) {
    EngineOptions off = eopt;
    off.tracing = false;
    Engine dark(off);
    EXPECT_FALSE(dark.tracing_enabled());
    std::ostringstream empty;
    dark.export_trace(empty);
    EXPECT_EQ(empty.str().rfind("{\"traceEvents\":[]", 0), 0u);
    EXPECT_TRUE(dark.drain_trace().empty());
  }
}

}  // namespace
}  // namespace lbnn::runtime
