// Serving API v2 coverage: model lifecycle (unload, idle eviction, stale
// handles), bounded per-model admission (try_submit / blocking backpressure),
// parallel compile admission (distinct keys overlap, same keys dedup), and
// shutdown/unload races against concurrent submitters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"

namespace lbnn::runtime {
namespace {

using namespace std::chrono_literals;

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;  // word width 2m = 16 lanes
}

EngineOptions small_engine(std::uint32_t workers) {
  EngineOptions eopt;
  eopt.num_workers = workers;
  eopt.compile = small_lpu();
  return eopt;
}

TEST(ServingV2, TrySubmitQueueFullWithoutBlocking) {
  Rng gen(101);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  // Nothing seals on its own: queue-full must come from the bound, not timing.
  eopt.batch_timeout = std::chrono::hours(1);
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 4;
  const ModelHandle grid = engine.load("grid", nl, mopt);
  EXPECT_EQ(grid.queue_bound(), 4u);

  std::vector<std::future<std::vector<bool>>> futs(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &futs[i]),
              SubmitStatus::kAccepted);
  }
  // The bound is reached; the 5th attempt reports queue-full immediately
  // (well under the 1-hour batch timeout) and leaves the future untouched.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &futs[4]),
            SubmitStatus::kQueueFull);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 10s);
  EXPECT_FALSE(futs[4].valid());

  engine.drain();  // seals the partial batch; the four accepted futures resolve
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(futs[i].wait_for(0s), std::future_status::ready);
  }
  // Capacity freed: admission works again.
  EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &futs[4]),
            SubmitStatus::kAccepted);
  engine.drain();
  engine.shutdown();
  std::future<std::vector<bool>> post;
  EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &post),
            SubmitStatus::kShuttingDown);
  EXPECT_EQ(to_string(SubmitStatus::kQueueFull), std::string("queue-full"));
}

TEST(ServingV2, BlockingSubmitUnblocksWhenCapacityFrees) {
  Rng gen(102);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::hours(1);
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 4;
  const ModelHandle grid = engine.load("grid", nl, mopt);

  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(engine.submit(grid, std::vector<bool>(nl.num_inputs())));
  }
  // The bound is reached — the non-blocking probe proves it without any
  // wall-clock waiting (a blocking probe of "still parked after N ms" would
  // only ever be a timing guess).
  std::future<std::vector<bool>> probe;
  EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &probe),
            SubmitStatus::kQueueFull);
  // The 5th blocking submit parks on the bound until drain() frees capacity.
  std::atomic<bool> fifth_admitted{false};
  std::thread blocked([&] {
    auto fut = engine.submit(grid, std::vector<bool>(nl.num_inputs(), true));
    fifth_admitted.store(true);
    fut.get();
  });
  // No sleeps: each drain() seals whatever is open and waits it out, freeing
  // admission slots. The loop covers the only scheduling freedom left — the
  // blocked thread may not have reached submit() before the first drain, and
  // its request then needs one more flush to complete (the 1-hour batch
  // timeout means nothing seals on its own).
  engine.drain();  // runs the open batch, frees slots
  while (!fifth_admitted.load()) {
    std::this_thread::yield();
    engine.drain();
  }
  engine.drain();  // the admitted 5th request's batch resolves
  blocked.join();
  EXPECT_TRUE(fifth_admitted.load());
  for (auto& f : futs) EXPECT_EQ(f.wait_for(0s), std::future_status::ready);
}

TEST(ServingV2, UnloadReleasesProgramsAndRejectsStaleHandle) {
  Rng gen(103);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  Engine engine(small_engine(1));
  const ModelHandle grid = engine.load("grid", nl);
  EXPECT_EQ(engine.num_models(), 1u);
  EXPECT_EQ(engine.cache_stats().entries, 1u);

  const auto expect = simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EXPECT_EQ(engine.submit(grid, std::vector<bool>(nl.num_inputs(), true)).get(),
            expect);

  EXPECT_TRUE(engine.unload(grid));
  EXPECT_FALSE(engine.unload(grid));  // second unload is a no-op
  EXPECT_FALSE(grid.loaded());
  EXPECT_EQ(engine.num_models(), 0u);  // the registry finally shrinks
  // The cache pin is released: observable as an eviction, registry empty.
  const CacheStats after = engine.cache_stats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.evictions, 1u);

  // Stale-handle submits fail cleanly, with status, not UB.
  EXPECT_THROW(engine.submit(grid, std::vector<bool>(nl.num_inputs())), Error);
  std::future<std::vector<bool>> fut;
  EXPECT_EQ(engine.try_submit(grid, std::vector<bool>(nl.num_inputs()), &fut),
            SubmitStatus::kUnloaded);

  // The handle still pins the compiled program: metadata stays readable.
  EXPECT_EQ(grid.name(), "grid");
  EXPECT_EQ(grid.num_inputs(), nl.num_inputs());

  // Reloading compiles again (the cached artifact is gone).
  const std::uint64_t misses_before = engine.cache_stats().misses;
  const ModelHandle again = engine.load("grid-2", nl);
  EXPECT_EQ(engine.cache_stats().misses, misses_before + 1);
  EXPECT_EQ(engine.submit(again, std::vector<bool>(nl.num_inputs(), true)).get(),
            expect);
}

TEST(ServingV2, UnloadDrainsOutstandingRequests) {
  Rng gen(104);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::hours(1);  // unload must not wait for this
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 3; ++i) {
    futs.push_back(engine.submit(grid, std::vector<bool>(nl.num_inputs(), i != 0)));
  }
  EXPECT_TRUE(engine.unload(grid));
  // Every accepted future resolved (with a value, not an exception) before
  // unload returned.
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_NO_THROW(f.get());
  }
}

TEST(ServingV2, ReplicaUnloadKeepsSharedCacheEntry) {
  Rng gen(105);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  Engine engine(small_engine(1));
  const ModelHandle a = engine.load("a", nl);
  const ModelHandle b = engine.load("b", nl);  // same key: cache hit
  CacheStats s = engine.cache_stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits, 1u);

  // Unloading one replica must not evict the entry the other still uses.
  EXPECT_TRUE(engine.unload(a));
  s = engine.cache_stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);

  EXPECT_TRUE(engine.unload(b));
  s = engine.cache_stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(ServingV2, EvictIdleUnloadsOnlyStaleModels) {
  Rng gen(106);
  const Netlist a = reconvergent_grid(8, 4, gen);
  const Netlist b = reconvergent_grid(8, 5, gen);
  Engine engine(small_engine(1));
  const ModelHandle ha = engine.load("a", a);
  const ModelHandle hb = engine.load("b", b);
  engine.submit(ha, std::vector<bool>(a.num_inputs())).get();

  EXPECT_EQ(engine.evict_idle(10min), 0u);  // nothing is that old
  EXPECT_EQ(engine.num_models(), 2u);
  EXPECT_EQ(engine.evict_idle(0s), 2u);  // everything is idle "now"
  EXPECT_EQ(engine.num_models(), 0u);
  EXPECT_FALSE(ha.loaded());
  EXPECT_FALSE(hb.loaded());
}

TEST(ServingV2, ConcurrentDistinctLoadsOverlapCompiles) {
  Rng gen(107);
  const Netlist a = reconvergent_grid(16, 8, gen);
  const Netlist b = reconvergent_grid(16, 9, gen);
  Engine engine(small_engine(1));

  // The hook runs once per actual compile, outside the cache lock. Each
  // compile waits (bounded) for the other to arrive: only possible when the
  // two compiles are in flight simultaneously. Under the PR 1 design
  // (compile under the cache lock) max_active would stay 1.
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::mutex rendezvous_mu;
  std::condition_variable rendezvous_cv;
  int arrived = 0;
  engine.program_cache().set_compile_hook([&] {
    const int now = active.fetch_add(1) + 1;
    int seen = max_active.load();
    while (now > seen && !max_active.compare_exchange_weak(seen, now)) {
    }
    // Rendezvous on the monotonic arrivals counter — not on `active`, which
    // the other hook may already have left: both compiles overlap whenever
    // overlap is possible, with no wall-clock poll (the timeout only bounds
    // a genuinely broken run, where max_active == 1 fails the test anyway).
    std::unique_lock<std::mutex> lk(rendezvous_mu);
    ++arrived;
    rendezvous_cv.notify_all();
    rendezvous_cv.wait_for(lk, 2s, [&] { return arrived >= 2; });
    active.fetch_sub(1);
  });

  auto fa = engine.load_async("a", a);
  auto fb = engine.load_async("b", b);
  const ModelHandle ha = fa.get();
  const ModelHandle hb = fb.get();
  EXPECT_EQ(max_active.load(), 2);
  EXPECT_TRUE(ha.loaded());
  EXPECT_TRUE(hb.loaded());
  engine.program_cache().set_compile_hook(nullptr);

  // Both models serve correctly after the overlapped compile.
  const auto bits = std::vector<bool>(a.num_inputs(), true);
  EXPECT_EQ(engine.submit(ha, bits).get(), simulate_scalar(a, bits));
  EXPECT_EQ(engine.submit(hb, bits).get(), simulate_scalar(b, bits));
}

TEST(ServingV2, SameKeyConcurrentLoadsCompileExactlyOnce) {
  Rng gen(108);
  const Netlist nl = reconvergent_grid(16, 8, gen);
  Engine engine(small_engine(1));

  constexpr int kLoaders = 4;
  std::atomic<int> compiles{0};
  engine.program_cache().set_compile_hook([&] {
    compiles.fetch_add(1);
    // Hold the one real compile open until every other loader has JOINED the
    // in-flight future — observable, because the cache counts a join as a
    // hit before the joiner blocks on it. Pure progress wait (bounded so a
    // dedup bug degrades into a fast failure, not a hang): no wall clock.
    for (long spin = 0;
         engine.cache_stats().hits <
             static_cast<std::uint64_t>(kLoaders - 1) &&
         spin < 20'000'000;
         ++spin) {
      std::this_thread::yield();
    }
  });
  std::vector<std::future<ModelHandle>> futs;
  for (int i = 0; i < kLoaders; ++i) {
    futs.push_back(engine.load_async("replica-" + std::to_string(i), nl));
  }
  std::vector<ModelHandle> handles;
  for (auto& f : futs) handles.push_back(f.get());
  engine.program_cache().set_compile_hook(nullptr);

  EXPECT_EQ(compiles.load(), 1);  // same-key loads deduplicated
  const CacheStats s = engine.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kLoaders - 1));
  EXPECT_EQ(engine.num_models(), static_cast<std::size_t>(kLoaders));
  for (const auto& h : handles) EXPECT_TRUE(h.loaded());
}

TEST(ServingV2, WeightedModelsServeCorrectlyUnderLoad) {
  Rng gen(109);
  const Netlist heavy_nl = reconvergent_grid(12, 6, gen);
  const Netlist light_nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::microseconds(100);
  Engine engine(eopt);
  ModelOptions heavy_opt;
  heavy_opt.weight = 1;
  ModelOptions light_opt;
  light_opt.weight = 8;
  const ModelHandle heavy = engine.load("heavy", heavy_nl, heavy_opt);
  const ModelHandle light = engine.load("light", light_nl, light_opt);
  EXPECT_EQ(heavy.weight(), 1u);
  EXPECT_EQ(light.weight(), 8u);

  std::vector<std::future<std::vector<bool>>> futs;
  Rng rng(110);
  for (int i = 0; i < 96; ++i) {
    std::vector<bool> hb(heavy_nl.num_inputs());
    for (std::size_t pi = 0; pi < hb.size(); ++pi) hb[pi] = rng.next_bool();
    futs.push_back(engine.submit(heavy, hb));
    if (i % 3 == 0) {
      futs.push_back(engine.submit(light, std::vector<bool>(light_nl.num_inputs())));
    }
  }
  engine.drain();
  for (auto& f : futs) EXPECT_NO_THROW(f.get());

  const ServeReport rep = engine.report();
  ASSERT_EQ(rep.per_model.size(), 2u);
  EXPECT_EQ(rep.per_model[0].name, "heavy");
  EXPECT_EQ(rep.per_model[1].name, "light");
  EXPECT_EQ(rep.per_model[0].weight, 1u);
  EXPECT_EQ(rep.per_model[1].weight, 8u);
  EXPECT_EQ(rep.per_model[0].requests + rep.per_model[1].requests, rep.requests);
}

TEST(ServingV2, WrongArityThrowsEvenWhenQueueIsFull) {
  Rng gen(113);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 1;
  const ModelHandle grid = engine.load("grid", nl, mopt);
  auto fut = engine.submit(grid, std::vector<bool>(nl.num_inputs()));
  // The queue is full; a wrong-arity request is a usage bug and must throw
  // immediately instead of parking on backpressure until a slot frees.
  EXPECT_THROW(engine.submit(grid, std::vector<bool>(nl.num_inputs() + 1)),
               Error);
  engine.drain();
  EXPECT_NO_THROW(fut.get());
}

TEST(ServingV2, LoadUnloadChurn) {
  // Lifecycle churn: every round loads a fresh model (new Program), serves
  // it, and unloads it — exercising the workers' simulator-cache pruning
  // (stale entries are both a leak and a dangling-key hazard; ASan covers
  // this path in CI).
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::microseconds(50);
  eopt.cache_capacity = 2;
  Engine engine(eopt);
  Rng gen(114);
  for (int round = 0; round < 8; ++round) {
    const Netlist nl = reconvergent_grid(8, 4 + (round % 3), gen);
    const ModelHandle h =
        engine.load("churn-" + std::to_string(round), nl);
    std::vector<std::future<std::vector<bool>>> futs;
    for (int i = 0; i < 20; ++i) {
      futs.push_back(engine.submit(h, std::vector<bool>(nl.num_inputs(), i % 2 != 0)));
    }
    EXPECT_TRUE(engine.unload(h));  // drains, then retires the programs
    for (auto& f : futs) EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(engine.num_models(), 0u);
}

TEST(ServingV2, ExtremeWeightDoesNotFreezeScheduler) {
  // A weight beyond the stride scale must not truncate the stride to 0 —
  // that would freeze the model's pass at the minimum and starve every other
  // model for as long as it stays backlogged.
  Rng gen(112);
  const Netlist nl_a = reconvergent_grid(8, 4, gen);
  const Netlist nl_b = reconvergent_grid(8, 5, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::microseconds(50);
  Engine engine(eopt);
  ModelOptions extreme_opt;
  extreme_opt.weight = 1u << 24;  // > kStrideScale
  const ModelHandle extreme = engine.load("extreme", nl_a, extreme_opt);
  const ModelHandle other = engine.load("other", nl_b);

  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(engine.submit(extreme, std::vector<bool>(nl_a.num_inputs())));
    futs.push_back(engine.submit(other, std::vector<bool>(nl_b.num_inputs())));
  }
  engine.drain();  // both models complete; neither starves the other
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
}

// Concurrent submit()/try_submit() against drain()/unload()/shutdown() must
// never deadlock or drop a promise: every accepted future resolves, every
// rejection is a clean status/exception.
TEST(ServingV2, ShutdownUnloadSubmitRaces) {
  Rng gen(111);
  const Netlist nl_a = reconvergent_grid(8, 4, gen);
  const Netlist nl_b = reconvergent_grid(8, 5, gen);

  for (int round = 0; round < 3; ++round) {
    EngineOptions eopt = small_engine(2);
    eopt.batch_timeout = std::chrono::microseconds(50);
    Engine engine(eopt);
    ModelOptions mopt;
    mopt.queue_bound = 8;  // small bound: exercise the backpressure paths too
    const ModelHandle a = engine.load("a", nl_a, mopt);
    const ModelHandle b = engine.load("b", nl_b, mopt);

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> resolved{0};
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        const ModelHandle& target = (t % 2 == 0) ? a : b;
        const std::size_t arity =
            (t % 2 == 0) ? nl_a.num_inputs() : nl_b.num_inputs();
        std::vector<std::future<std::vector<bool>>> futs;
        for (int i = 0; i < kPerThread; ++i) {
          std::vector<bool> bits(arity, (i & 1) != 0);
          if (i % 2 == 0) {
            try {
              futs.push_back(engine.submit(target, std::move(bits)));
              accepted.fetch_add(1);
            } catch (const Error&) {
              rejected.fetch_add(1);  // shut down / unloaded: clean rejection
            }
          } else {
            std::future<std::vector<bool>> fut;
            const SubmitStatus st = engine.try_submit(target, std::move(bits), &fut);
            if (st == SubmitStatus::kAccepted) {
              futs.push_back(std::move(fut));
              accepted.fetch_add(1);
            } else {
              rejected.fetch_add(1);
            }
          }
        }
        // Every accepted future must resolve — to a value (normal) or an
        // exception (failed batch) — never hang, never stay unresolved.
        for (auto& f : futs) {
          try {
            f.get();
          } catch (const Error&) {
          }
          resolved.fetch_add(1);
        }
      });
    }

    // Let the clients race ahead before each lifecycle op — measured in op
    // progress, not wall time, so the interleaving still varies per round
    // (the thresholds shift) but nothing ever sleeps. Progress is guaranteed:
    // workers keep sealing (50 us timeout) and draining batches, so blocked
    // submitters always advance, and after unload/shutdown the remaining ops
    // turn into instant rejections.
    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    const auto progressed = [&](std::uint64_t at_least) {
      while (accepted.load() + rejected.load() < at_least) {
        std::this_thread::yield();
      }
    };
    progressed(total / 8 + static_cast<std::uint64_t>(round) * total / 8);
    engine.drain();
    engine.unload(b);
    progressed(total / 2 + static_cast<std::uint64_t>(round) * total / 8);
    engine.shutdown();
    for (auto& c : clients) c.join();

    EXPECT_EQ(resolved.load(), accepted.load());
    EXPECT_EQ(accepted.load() + rejected.load(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
}

// Table-driven exhaustiveness for to_string(SubmitStatus): every enumerator
// (including kDeadlineUnmeetable) maps to its own distinct, stable string.
// The implementation has no default case, so a future enumerator without a
// case is a -Wswitch warning at compile time AND a failure here.
TEST(SubmitStatusV2, ToStringIsExhaustiveAndDistinct) {
  const struct {
    SubmitStatus status;
    const char* expect;
  } kTable[] = {
      {SubmitStatus::kAccepted, "accepted"},
      {SubmitStatus::kQueueFull, "queue-full"},
      {SubmitStatus::kUnloaded, "unloaded"},
      {SubmitStatus::kShuttingDown, "shutting-down"},
      {SubmitStatus::kDeadlineUnmeetable, "deadline-unmeetable"},
  };
  std::set<std::string> seen;
  for (const auto& row : kTable) {
    const std::string got = to_string(row.status);
    EXPECT_EQ(got, row.expect);
    EXPECT_FALSE(got.empty());
    seen.insert(got);
  }
  // Pairwise distinct: no two statuses collapse to one label.
  EXPECT_EQ(seen.size(), sizeof(kTable) / sizeof(kTable[0]));
}

// The admission estimate is a pure function — table-driven unit coverage of
// the shedding math, independent of any real service-time measurement. The
// zero-EWMA rows are the cold-start path: the first request to a fresh model
// must never be shed on a guess (no service signal means no estimate), and
// the deadline boundary is INCLUSIVE to match the rest of the runtime
// (drop_expired_requests / finalize treat finishing AT the deadline as on
// time, so only a deadline strictly in the past is dead at admission).
TEST(AdmissionV2, DeadlineUnmeetableEstimate) {
  using us = std::chrono::microseconds;
  const TimePoint now = TimePoint{} + std::chrono::hours(1);
  const struct {
    const char* why;
    TimePoint deadline;
    std::uint64_t ewma_us;
    std::size_t items_ahead;
    std::size_t workers;
    bool unmeetable;
  } kTable[] = {
      {"no deadline: never shed, whatever the backlog",
       kNoDeadline, 1000, 1000000, 1, false},
      // --- zero-EWMA cold start: a fresh model has no service signal ---
      {"cold start, future deadline, empty queue: admit",
       now + us(1), 0, 0, 1, false},
      {"cold start, future deadline, huge backlog: still admit (no signal)",
       now + us(1), 0, 1000000, 4, false},
      {"cold start, deadline exactly now: inclusive boundary, admit",
       now, 0, 0, 1, false},
      {"cold start, deadline exactly now, deep queue: still no estimate",
       now, 0, 1000, 1, false},
      {"deadline strictly past: dead at admission even with no signal",
       now - us(1), 0, 0, 4, true},
      // --- warmed-up estimates ---
      {"10 items x 100 us on one worker: 1000 us drain, 999 us budget",
       now + us(999), 100, 10, 1, true},
      {"same drain, exactly 1000 us budget: inclusive, admit",
       now + us(1000), 100, 10, 1, false},
      {"warm model, deadline exactly now, work queued: certainly late",
       now, 100, 10, 1, true},
      {"4 workers drain in parallel: ceil(10/4) x 100 us = 300 us (best case)",
       now + us(299), 100, 10, 4, true},
      {"best-case boundary met exactly: admit",
       now + us(300), 100, 10, 4, false},
      {"defensive: workers == 0 behaves as one worker",
       now + us(999), 100, 10, 0, true},
  };
  for (const auto& row : kTable) {
    EXPECT_EQ(deadline_unmeetable(row.deadline, now, row.ewma_us,
                                  row.items_ahead, row.workers),
              row.unmeetable)
        << row.why;
  }
}

// Engine-level cold start: the very first request to a freshly loaded model
// carries a tight-but-future deadline and a backlog is already parked in the
// open lane — with no service EWMA yet, admission must stay optimistic (no
// shed), and the request completes. ManualClock: the whole test is timeless.
TEST(AdmissionV2, ColdStartNeverShedsOnMissingSignal) {
  ManualClock clock;
  Rng gen(134);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 64;
  const ModelHandle grid = engine.load("grid", nl, mopt);

  const std::vector<bool> bits(nl.num_inputs(), true);
  // Park a few deadline-less requests in the open lane first: items are
  // ahead of the probe, but the EWMA is still 0 — no estimate, no shed.
  std::vector<std::future<std::vector<bool>>> parked;
  for (int i = 0; i < 3; ++i) parked.push_back(engine.submit(grid, bits));

  std::future<std::vector<bool>> fut;
  EXPECT_EQ(engine.try_submit(grid, bits, &fut,
                              clock.now() + std::chrono::microseconds(1)),
            SubmitStatus::kAccepted);
  engine.drain();
  EXPECT_EQ(fut.get(), simulate_scalar(nl, bits));
  for (auto& f : parked) EXPECT_EQ(f.get(), simulate_scalar(nl, bits));

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.requests, 4u);
  EXPECT_EQ(rep.deadline_met, 4u);  // zero manual time passed: all on time
}

// Admission shedding on an already-missed deadline is deterministic (no EWMA
// involvement): the non-blocking path reports kDeadlineUnmeetable, the
// blocking path throws DeadlineExceeded in microseconds instead of parking,
// and both land in the shed counters.
TEST(AdmissionV2, PastDeadlineShedsAtAdmission) {
  ManualClock clock(TimePoint{} + std::chrono::hours(1));
  Rng gen(120);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::future<std::vector<bool>> fut;
  EXPECT_EQ(engine.try_submit(grid, bits, &fut,
                              clock.now() - std::chrono::microseconds(1)),
            SubmitStatus::kDeadlineUnmeetable);
  EXPECT_FALSE(fut.valid());  // rejection leaves the future untouched
  EXPECT_THROW(engine.submit(grid, bits, clock.now() - std::chrono::hours(2)),
               DeadlineExceeded);

  ServeReport rep = engine.report();
  EXPECT_EQ(rep.shed, 2u);
  EXPECT_EQ(rep.requests, 0u);
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].shed, 2u);

  // A future deadline with no service-time signal admits normally and, once
  // completed in time, counts toward goodput.
  EXPECT_EQ(engine.try_submit(grid, bits, &fut,
                              clock.now() + std::chrono::hours(1)),
            SubmitStatus::kAccepted);
  engine.drain();
  EXPECT_EQ(fut.get(), simulate_scalar(nl, bits));
  rep = engine.report();
  EXPECT_EQ(rep.requests, 1u);
  EXPECT_EQ(rep.deadline_met, 1u);
  EXPECT_EQ(rep.expired, 0u);

  // Lifecycle states outrank shedding: after shutdown, a doomed-deadline
  // submit reports the shutdown (plain Error), never DeadlineExceeded, and
  // records nothing in the shed counters.
  engine.shutdown();
  try {
    engine.submit(grid, bits, clock.now() - std::chrono::hours(1));
    FAIL() << "submit after shutdown must throw";
  } catch (const DeadlineExceeded&) {
    FAIL() << "shutdown must take precedence over deadline shedding";
  } catch (const Error&) {
    // expected: "engine is shut down"
  }
  EXPECT_EQ(engine.report().shed, 2u);  // unchanged by the post-shutdown probe
}

namespace {

/// Blocks every dispatch while armed; used to pin the single worker so tests
/// can stage queues / advance the manual clock deterministically.
class DispatchGate {
 public:
  void arm() {
    std::lock_guard<std::mutex> lk(mu_);
    hold_ = true;
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  void wait_if_armed() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !hold_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool hold_ = true;
};

}  // namespace

// Requests that outlive their deadline while queued are dropped at dequeue:
// their futures fail with DeadlineExceeded BEFORE any simulator work, a
// fully-expired batch skips the simulator entirely (no batch/lane
// accounting), and a mixed batch still serves its live requests. All timing
// is ManualClock-driven — the test never sleeps.
TEST(AdmissionV2, ExpiredRequestsDropAtDequeue) {
  ManualClock clock;
  Rng gen(121);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 64;
  const ModelHandle grid = engine.load("grid", nl, mopt);
  const std::size_t lanes = 16;  // m = 8 -> word width 16

  DispatchGate gate;
  engine.set_dispatch_hook([&](const std::string&) { gate.wait_if_armed(); });

  const std::vector<bool> bits(nl.num_inputs(), true);
  const auto expect = simulate_scalar(nl, bits);

  // Batch A (no deadlines) seals lane-full; the worker dequeues it and parks
  // on the gate. Batch B (1 ms deadline) seals behind it.
  std::vector<std::future<std::vector<bool>>> batch_a, batch_b;
  for (std::size_t i = 0; i < lanes; ++i) {
    batch_a.push_back(engine.submit(grid, bits));
  }
  const TimePoint slo = clock.now() + std::chrono::milliseconds(1);
  for (std::size_t i = 0; i < lanes; ++i) {
    batch_b.push_back(engine.submit(grid, bits, slo));
  }
  // While both batches sit in the engine, time overtakes B's deadline.
  clock.advance(std::chrono::milliseconds(2));
  gate.release();

  for (auto& f : batch_a) EXPECT_EQ(f.get(), expect);  // A is unaffected
  for (auto& f : batch_b) EXPECT_THROW(f.get(), DeadlineExceeded);

  ServeReport rep = engine.report();
  EXPECT_EQ(rep.expired, lanes);
  EXPECT_EQ(rep.requests, lanes);       // only batch A completed
  EXPECT_EQ(rep.batches, 1u);           // batch B never ran
  EXPECT_EQ(rep.deadline_met, lanes);   // batch A (deadline-less) is goodput
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].expired, lanes);

  // Mixed batch: half with a soon-to-expire deadline, half without. The live
  // half still gets values; only the expired half fails.
  gate.arm();
  std::vector<std::future<std::vector<bool>>> doomed, live;
  const TimePoint slo2 = clock.now() + std::chrono::milliseconds(1);
  for (std::size_t i = 0; i < lanes; ++i) {
    if (i % 2 == 0) {
      doomed.push_back(engine.submit(grid, bits, slo2));
    } else {
      live.push_back(engine.submit(grid, bits));
    }
  }
  clock.advance(std::chrono::milliseconds(2));
  gate.release();
  for (auto& f : live) EXPECT_EQ(f.get(), expect);
  for (auto& f : doomed) EXPECT_THROW(f.get(), DeadlineExceeded);
  rep = engine.report();
  EXPECT_EQ(rep.expired, lanes + lanes / 2);
  EXPECT_EQ(rep.requests, lanes + lanes / 2);
  EXPECT_EQ(rep.batches, 2u);  // the mixed batch DID run (live lanes)

  engine.set_dispatch_hook(nullptr);
}

// ModelOptions::default_deadline stamps an SLO onto deadline-less submits:
// requests admitted under it expire exactly default_deadline after admission.
TEST(AdmissionV2, DefaultDeadlineAppliesToPlainSubmits) {
  ManualClock clock;
  Rng gen(122);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.default_deadline = std::chrono::milliseconds(1);
  const ModelHandle grid = engine.load("grid", nl, mopt);

  DispatchGate gate;
  engine.set_dispatch_hook([&](const std::string&) { gate.wait_if_armed(); });

  const std::vector<bool> bits(nl.num_inputs(), false);
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 16; ++i) futs.push_back(engine.submit(grid, bits));
  clock.advance(std::chrono::milliseconds(2));  // past admission + 1 ms
  gate.release();
  for (auto& f : futs) EXPECT_THROW(f.get(), DeadlineExceeded);
  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.expired, 16u);
  EXPECT_EQ(rep.requests, 0u);
  engine.set_dispatch_hook(nullptr);
}

RandomCircuitSpec wide_dag_spec() {
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 80;
  spec.num_outputs = 6;
  return spec;  // 6 POs: supports up to 6 parallel assembly members
}

// Member-level work stealing: one worker dequeues the batch and parks in the
// dispatch hook (which fires on scheduler pops only, never on steals); the
// other — idle, nothing queued — steals BOTH members off the batch's cursor
// and completes it. Every future resolves while the claimer is still pinned,
// which is exactly the straggler-hiding property the stealing exists for.
TEST(StealingV2, IdleWorkersStealMembersFromInFlightBatch) {
  ManualClock clock;
  DispatchGate gate;  // declared before the engine: workers may touch it late
  Rng gen(130);
  const Netlist nl = random_dag(wide_dag_spec(), gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 64;
  const ModelHandle dag = engine.load_parallel("dag", nl, 2, mopt);

  engine.set_dispatch_hook([&](const std::string&) { gate.wait_if_armed(); });

  const std::size_t lanes = 16;  // m = 8 -> word width 16
  const std::vector<bool> bits(nl.num_inputs(), true);
  const auto expect = simulate_scalar(nl, bits);
  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t i = 0; i < lanes; ++i) {
    futs.push_back(engine.submit(dag, bits));  // 16th submit seals inline
  }
  // Whichever worker popped the batch is pinned in the hook; the other one
  // must finish the whole batch by stealing. get() hanging here = no steal.
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.requests, lanes);
  EXPECT_EQ(rep.member_runs, 2u);
  EXPECT_EQ(rep.steals, 2u);  // both members ran on the non-claimer
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].member_runs, 2u);
  EXPECT_EQ(rep.per_model[0].steals, 2u);

  gate.release();
  engine.drain();
  engine.set_dispatch_hook(nullptr);
}

// EngineOptions::member_stealing = false is the monolithic baseline: the
// dequeuing worker runs every member itself and nothing is ever stolen.
TEST(StealingV2, MonolithicDispatchRunsAllMembersOnClaimer) {
  Rng gen(131);
  const Netlist nl = random_dag(wide_dag_spec(), gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::microseconds(50);
  eopt.member_stealing = false;
  Engine engine(eopt);
  const ModelHandle dag = engine.load_parallel("dag", nl, 3);

  const std::vector<bool> bits(nl.num_inputs(), false);
  const auto expect = simulate_scalar(nl, bits);
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 40; ++i) futs.push_back(engine.submit(dag, bits));
  engine.drain();
  for (auto& f : futs) EXPECT_EQ(f.get(), expect);

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.steals, 0u);
  EXPECT_EQ(rep.member_runs, 3u * rep.batches);
}

// Member-granularity accounting under partial expiry: a 4-member batch whose
// requests partially expire mid-flight must close its books — accepted ==
// completed + expired, every future resolves exactly once (values for the
// live half, DeadlineExceeded for the expired half), and exactly 4 member
// work items ran for the one batch. All timing is ManualClock-driven.
TEST(StealingV2, MemberAccountingClosesOnPartialExpiry) {
  ManualClock clock;
  DispatchGate gate;
  Rng gen(132);
  const Netlist nl = random_dag(wide_dag_spec(), gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 64;
  const ModelHandle dag = engine.load_parallel("dag", nl, 4, mopt);

  engine.set_dispatch_hook([&](const std::string&) { gate.wait_if_armed(); });

  const std::size_t lanes = 16;
  const std::vector<bool> bits(nl.num_inputs(), true);
  const auto expect = simulate_scalar(nl, bits);
  const TimePoint slo = clock.now() + std::chrono::milliseconds(1);
  std::vector<std::future<std::vector<bool>>> doomed, live;
  for (std::size_t i = 0; i < lanes; ++i) {
    if (i < 2) {
      doomed.push_back(engine.submit(dag, bits, slo));
    } else {
      live.push_back(engine.submit(dag, bits));
    }
  }
  // The single worker has popped the sealed batch and parked in the hook;
  // time overtakes the two deadlines while all 4 members are still pending.
  clock.advance(std::chrono::milliseconds(2));
  gate.release();

  for (auto& f : live) EXPECT_EQ(f.get(), expect);
  for (auto& f : doomed) EXPECT_THROW(f.get(), DeadlineExceeded);

  const ServeReport rep = engine.report();
  const std::uint64_t accepted = lanes;
  EXPECT_EQ(rep.requests + rep.shed + rep.expired, accepted);  // books close
  EXPECT_EQ(rep.requests, accepted - 2);
  EXPECT_EQ(rep.expired, 2u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.samples, accepted - 2);  // only live lanes count as samples
  EXPECT_EQ(rep.member_runs, 4u);        // the batch still ran all 4 members
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].expired, 2u);
  EXPECT_EQ(rep.per_model[0].member_runs, 4u);

  engine.set_dispatch_hook(nullptr);
}

// The admission estimate speaks member work items: requests parked in the
// still-open (unsealed) lane cost a full batch of members once they seal, so
// a deadline that the open lane's own service time already busts is shed at
// admission. The EWMA is taught deterministically through the member hook,
// which advances the ManualClock by exactly 1 ms per member run.
TEST(AdmissionV2, OpenBatchCountsTowardDrainEstimate) {
  ManualClock clock;
  Rng gen(133);
  const Netlist nl = random_dag(wide_dag_spec(), gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle dag = engine.load_parallel("dag", nl, 4);

  engine.set_member_hook([&](const std::string&, std::size_t, bool) {
    clock.advance(std::chrono::milliseconds(1));
  });

  const std::vector<bool> bits(nl.num_inputs(), true);
  // Teach the EWMA: one warm-up batch, 4 member runs of exactly 1000 us.
  auto warmup = engine.submit(dag, bits);
  engine.drain();
  EXPECT_EQ(warmup.get(), simulate_scalar(nl, bits));
  EXPECT_EQ(engine.report().member_runs, 4u);

  // Park one deadline-less request in the open lane. Nothing is sealed, so
  // the old batch-count estimate would see zero queued work — but that lane
  // costs 4 member runs (4000 us) the moment it seals.
  auto parked = engine.submit(dag, bits);
  std::future<std::vector<bool>> shed_fut;
  EXPECT_EQ(engine.try_submit(dag, bits, &shed_fut,
                              clock.now() + std::chrono::microseconds(3500)),
            SubmitStatus::kDeadlineUnmeetable);
  EXPECT_FALSE(shed_fut.valid());
  // A deadline with room for the full 4-member drain admits (4000 us is the
  // exact best-case boundary — the estimate is deliberately optimistic).
  std::future<std::vector<bool>> ok_fut;
  EXPECT_EQ(engine.try_submit(dag, bits, &ok_fut,
                              clock.now() + std::chrono::microseconds(4000)),
            SubmitStatus::kAccepted);

  engine.drain();  // seals the 2-request batch; 4 members, 4 ms of service
  EXPECT_EQ(parked.get(), simulate_scalar(nl, bits));
  EXPECT_EQ(ok_fut.get(), simulate_scalar(nl, bits));

  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.shed, 1u);
  EXPECT_EQ(rep.expired, 0u);
  EXPECT_EQ(rep.requests, 3u);
  EXPECT_EQ(rep.deadline_met, 3u);  // the 4000 us deadline was met exactly
  EXPECT_EQ(rep.member_runs, 8u);

  engine.set_member_hook(nullptr);
}

// Deterministic stride-scheduler drain order: one worker, ManualClock (so
// nothing seals or reorders on real time), three models with weights 3:1:1
// and standing backlogs. The dequeue order is read from the trace stream's
// kDispatch events — the canonical sequence every scheduler transition lands
// in — while the dispatch hook keeps only its gating duty (pinning the
// worker while the backlogs stage). Stride scheduling must hand out every
// aligned window of 5 dispatches as {A,A,A,B,C} in some order — and 50
// dispatches as exactly 30/10/10. This replaces statistical-tolerance
// fairness checks with an exact assertion.
TEST(SchedulerV2, StrideDrainOrderMatchesWeightsExactly) {
  ManualClock clock;
  Rng gen(123);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
  eopt.clock = &clock;
  eopt.tracing = true;
  eopt.trace_ring_capacity = 1 << 14;  // 57 batches of events, no drops
  Engine engine(eopt);
  const std::size_t lanes = 16;

  ModelOptions heavy;
  heavy.weight = 3;
  heavy.queue_bound = 40 * lanes;
  ModelOptions light;
  light.weight = 1;
  light.queue_bound = 16 * lanes;
  const ModelHandle a = engine.load("A", nl, heavy);
  const ModelHandle b = engine.load("B", nl, light);
  const ModelHandle c = engine.load("C", nl, light);

  DispatchGate gate;
  engine.set_dispatch_hook([&](const std::string&) {
    gate.wait_if_armed();  // pin the worker on its first dispatch
  });

  // Stage the backlogs while the worker is pinned: full batches seal inline.
  // A is submitted first, so the worker's one pre-gate dispatch is an A batch.
  const std::vector<bool> bits(nl.num_inputs(), true);
  const auto submit_batches = [&](const ModelHandle& h, int n) {
    for (int i = 0; i < n * static_cast<int>(lanes); ++i) {
      auto fut = engine.submit(h, bits);  // resolves after the drain below
      (void)fut;
    }
  };
  submit_batches(a, 33);
  submit_batches(b, 12);
  submit_batches(c, 12);
  gate.release();
  engine.drain();
  engine.set_dispatch_hook(nullptr);

  // The dequeue order, replayed from the event stream.
  EXPECT_EQ(engine.trace_dropped(), 0u);
  std::vector<std::string> order;
  for (const TraceEvent& ev : engine.drain_trace()) {
    if (ev.type == TraceEventType::kDispatch) {
      order.push_back(engine.trace_model_name(ev.model_id));
    }
  }
  ASSERT_GE(order.size(), 51u);
  EXPECT_EQ(order[0], "A");  // the pinned pre-backlog dispatch
  // The 50 dispatches after the gate: exactly 3:1:1.
  std::map<std::string, int> counts;
  for (std::size_t i = 1; i <= 50; ++i) counts[order[i]]++;
  EXPECT_EQ(counts["A"], 30);
  EXPECT_EQ(counts["B"], 10);
  EXPECT_EQ(counts["C"], 10);
  // Stronger: stride's bounded lag means every aligned window of 5 holds
  // exactly three A dispatches and one each of B and C.
  for (std::size_t w = 1; w + 5 <= 51; w += 5) {
    std::map<std::string, int> win;
    for (std::size_t i = w; i < w + 5; ++i) win[order[i]]++;
    EXPECT_EQ(win["A"], 3) << "window at " << w;
    EXPECT_EQ(win["B"], 1) << "window at " << w;
    EXPECT_EQ(win["C"], 1) << "window at " << w;
  }
}

}  // namespace
}  // namespace lbnn::runtime
