// Randomized admission/lifecycle property test: a seeded interleaving of
// submit / try_submit / unload / evict_idle / drain across 4 models — one of
// them a 3-member parallel assembly, so batches are multi-member work and
// member claiming/stealing runs under churn — drives the engine through its
// whole admission surface, then asserts the three properties the serving API
// promises:
//
//   1. every accepted future resolves exactly once — to a value or an error,
//      never hanging, never left unresolved;
//   2. accepted-count bookkeeping closes: ServeReport::requests equals the
//      number of accepted requests (nothing double-counted or dropped), and
//      no shed/expired events occur when no deadlines are in play;
//   3. results are bit-exact against a direct LpuSimulator::run of the same
//      compiled program (the runtime adds batching/threading, never bits).
//
// The op stream is reproducible from its seed (lbnn::Rng is platform-stable);
// the worker/timer interleaving underneath varies, which is the point — the
// assertions must hold for all of them.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "router/router.hpp"
#include "runtime/engine.hpp"

namespace lbnn::runtime {
namespace {

constexpr int kModels = 4;
/// Model index served as a multi-member parallel LPU assembly: its batches
/// are 3 cooperative member work items each, so the fuzz exercises the
/// member cursor, idle-worker stealing, and member-granular accounting.
constexpr int kParallelModel = 3;
constexpr std::uint32_t kParallelMembers = 3;

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;  // word width 2m = 16 lanes
}

/// One issued-and-accepted request, held until the end-of-run audit.
struct PendingRequest {
  int model = 0;
  std::vector<bool> inputs;
  std::future<std::vector<bool>> future;
};

/// Reference oracle: the same program the engine serves, run directly on a
/// width-1 word per request.
std::vector<bool> direct_run(LpuSimulator& sim, const Netlist& nl,
                             const std::vector<bool>& bits) {
  std::vector<BitVec> inputs(nl.num_inputs(), BitVec(1));
  for (std::size_t pi = 0; pi < bits.size(); ++pi) {
    if (bits[pi]) inputs[pi].set(0, true);
  }
  const std::vector<BitVec> out = sim.run(inputs);
  std::vector<bool> result(out.size());
  for (std::size_t po = 0; po < out.size(); ++po) result[po] = out[po].get(0);
  return result;
}

/// `hedging` additionally enables speculative straggler hedging (with an
/// eager trigger and a third worker so idle hands exist): duplicates then
/// race originals for member result slots under the full lifecycle churn,
/// and the run must stay bit-exact with a coherent hedge ledger.
void run_fuzz_round(std::uint64_t seed, int num_ops, bool hedging = false) {
  Rng circuits(900 + seed);
  std::vector<Netlist> nls;
  for (int i = 0; i < kModels; ++i) {
    if (i == kParallelModel) {
      // Enough POs to split across kParallelMembers assembly members.
      RandomCircuitSpec spec;
      spec.num_inputs = 10;
      spec.num_gates = 80;
      spec.num_outputs = 6;
      nls.push_back(random_dag(spec, circuits));
    } else {
      nls.push_back(reconvergent_grid(8, 4 + i, circuits));
    }
  }
  const CompileOptions copt = small_lpu();
  // Direct simulators over the identical compiled artifact (the program
  // cache fingerprints netlist + options, so these are the same programs the
  // engine's workers execute). The parallel model's oracle is the single-LPU
  // compile of the same netlist: a member-partitioned assembly must reproduce
  // the whole netlist's outputs bit-exactly however its members are claimed
  // or stolen.
  std::vector<CompileResult> compiled;
  std::vector<LpuSimulator> sims;
  compiled.reserve(kModels);
  for (int i = 0; i < kModels; ++i) compiled.push_back(compile(nls[i], copt));
  sims.reserve(kModels);
  for (int i = 0; i < kModels; ++i) sims.emplace_back(compiled[i].program);

  EngineOptions eopt;
  eopt.num_workers = hedging ? 3 : 2;
  eopt.batch_timeout = std::chrono::microseconds(50);
  eopt.compile = copt;
  eopt.hedging = hedging;
  if (hedging) eopt.hedge_factor = 1;  // hedge at the slightest straggle
  Engine engine(eopt);

  std::vector<ModelHandle> handles(kModels);
  std::vector<int> generation(kModels, 0);
  const auto ensure_loaded = [&](int i) {
    if (handles[i] && handles[i].loaded()) return;
    ModelOptions mopt;
    mopt.queue_bound = 48;
    mopt.weight = static_cast<std::uint32_t>(1 + i);
    const std::string name =
        "m" + std::to_string(i) + "-g" + std::to_string(++generation[i]);
    handles[i] = i == kParallelModel
                     ? engine.load_parallel(name, nls[i], kParallelMembers, mopt)
                     : engine.load(name, nls[i], mopt);
  };
  for (int i = 0; i < kModels; ++i) ensure_loaded(i);

  Rng rng(seed);
  std::vector<PendingRequest> pending;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  // try_submit non-accepted + submit throws

  for (int op = 0; op < num_ops; ++op) {
    const int model = static_cast<int>(rng.next_below(kModels));
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 42) {
      // Blocking submit. May throw if the model lost a lifecycle race.
      ensure_loaded(model);
      std::vector<bool> bits(nls[model].num_inputs());
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      try {
        auto fut = engine.submit(handles[model], bits);
        pending.push_back({model, std::move(bits), std::move(fut)});
        ++accepted;
      } catch (const Error&) {
        ++rejected;
      }
    } else if (dice < 84) {
      ensure_loaded(model);
      std::vector<bool> bits(nls[model].num_inputs());
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      std::future<std::vector<bool>> fut;
      const SubmitStatus st = engine.try_submit(handles[model], bits, &fut);
      if (st == SubmitStatus::kAccepted) {
        pending.push_back({model, std::move(bits), std::move(fut)});
        ++accepted;
      } else {
        ++rejected;
        EXPECT_FALSE(fut.valid());  // rejection never hands out a future
      }
    } else if (dice < 90) {
      // unload() drains the model: its outstanding futures resolve before it
      // returns. A stale/empty handle is a clean false.
      engine.unload(handles[model]);
    } else if (dice < 94) {
      engine.evict_idle(std::chrono::seconds(0));
    } else if (dice < 97) {
      engine.drain();
    } else {
      // Stale-handle probe: submits against an unloaded generation must fail
      // cleanly (status/exception), never corrupt accounting.
      if (handles[model] && !handles[model].loaded()) {
        std::future<std::vector<bool>> fut;
        const SubmitStatus st = engine.try_submit(
            handles[model], std::vector<bool>(nls[model].num_inputs()), &fut);
        EXPECT_EQ(st, SubmitStatus::kUnloaded);
      }
    }
  }

  engine.drain();

  // Property 1: every accepted future is resolved after the final drain.
  // Property 3: each resolved value is bit-exact vs the direct simulator.
  std::uint64_t resolved = 0;
  for (auto& req : pending) {
    ASSERT_EQ(req.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "accepted future left unresolved (seed " << seed << ")";
    try {
      const std::vector<bool> got = req.future.get();
      const std::vector<bool> want =
          direct_run(sims[req.model], nls[req.model], req.inputs);
      EXPECT_EQ(got, want) << "bit mismatch, model " << req.model << " seed "
                           << seed;
    } catch (const Error&) {
      // Acceptable resolution (e.g. batch failure) — but never a hang.
    }
    ++resolved;
  }
  EXPECT_EQ(resolved, accepted);

  // Property 2: accounting closes. Global stats outlive unloads, so every
  // accepted request is a completed request; nothing was shed or expired
  // (no deadlines in this stream) and completing deadline-less work always
  // counts as goodput.
  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.requests, accepted);
  EXPECT_EQ(rep.deadline_met, accepted);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.expired, 0u);
  // Every completed lane is a completed request: batch sample accounting
  // agrees with the request ledger.
  EXPECT_EQ(rep.samples, accepted);
  // Member-granular execution closes too: every batch ran every one of its
  // assembly members exactly once (a steal is an executed member, never an
  // extra one), so the global member ledger is bounded by batches x widest
  // assembly and at least one member per batch.
  EXPECT_GE(rep.member_runs, rep.batches);
  EXPECT_LE(rep.member_runs,
            rep.batches * static_cast<std::uint64_t>(kParallelMembers));
  EXPECT_LE(rep.steals, rep.member_runs);
  // The hedge ledger closes: a duplicate can win at most once per launch,
  // each launch targets a distinct member, and a hedged member still counts
  // exactly once in member_runs — redundancy never inflates logical work.
  // (No deadlines in this stream, so every hedged member did execute.)
  EXPECT_LE(rep.hedge_wins, rep.hedges_launched);
  EXPECT_LE(rep.hedges_launched, rep.member_runs);
  if (!hedging) {
    EXPECT_EQ(rep.hedges_launched, 0u);
    EXPECT_EQ(rep.hedge_wasted_us, 0u);
  }
  (void)rejected;
}

/// The same lifecycle-churn property test one layer up: a 2-shard Router
/// with p2c dispatch, replica scaling (set_replicas up/down mid-traffic),
/// scripted rebalancer ticks, and generation-named reloads. The promises are
/// the fleet-level versions of the engine round's: every accepted future
/// resolves bit-exactly, and the FLEET books close — total requests equal
/// accepted with zero shed/expired (no deadlines in play), per-shard rows
/// summing exactly to the total. Replica retires and unloads drain, so
/// lifecycle churn can never strand or drop an accepted request.
void run_router_fuzz_round(std::uint64_t seed, int num_ops) {
  Rng circuits(900 + seed);
  std::vector<Netlist> nls;
  for (int i = 0; i < kModels; ++i) {
    if (i == kParallelModel) {
      RandomCircuitSpec spec;
      spec.num_inputs = 10;
      spec.num_gates = 80;
      spec.num_outputs = 6;
      nls.push_back(random_dag(spec, circuits));
    } else {
      nls.push_back(reconvergent_grid(8, 4 + i, circuits));
    }
  }
  const CompileOptions copt = small_lpu();
  std::vector<CompileResult> compiled;
  std::vector<LpuSimulator> sims;
  compiled.reserve(kModels);
  for (int i = 0; i < kModels; ++i) compiled.push_back(compile(nls[i], copt));
  sims.reserve(kModels);
  for (int i = 0; i < kModels; ++i) sims.emplace_back(compiled[i].program);

  router::RouterOptions ropt;
  ropt.num_shards = 2;
  ropt.initial_replicas = 1;
  ropt.engine.num_workers = 1;
  ropt.engine.batch_timeout = std::chrono::microseconds(50);
  ropt.engine.compile = copt;
  router::Router router(ropt);

  std::vector<router::RoutedHandle> handles(kModels);
  std::vector<int> generation(kModels, 0);
  const auto ensure_loaded = [&](int i) {
    if (handles[i] && handles[i].loaded()) return;
    ModelOptions mopt;
    mopt.queue_bound = 48;
    mopt.weight = static_cast<std::uint32_t>(1 + i);
    const std::string name =
        "m" + std::to_string(i) + "-g" + std::to_string(++generation[i]);
    handles[i] =
        i == kParallelModel
            ? router.load_parallel(name, nls[i], kParallelMembers, mopt)
            : router.load(name, nls[i], mopt);
  };
  for (int i = 0; i < kModels; ++i) ensure_loaded(i);

  Rng rng(seed);
  std::vector<PendingRequest> pending;
  std::uint64_t accepted = 0;

  for (int op = 0; op < num_ops; ++op) {
    const int model = static_cast<int>(rng.next_below(kModels));
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 40) {
      ensure_loaded(model);
      std::vector<bool> bits(nls[model].num_inputs());
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      try {
        auto fut = router.submit(handles[model], bits);
        pending.push_back({model, std::move(bits), std::move(fut)});
        ++accepted;
      } catch (const Error&) {
      }
    } else if (dice < 80) {
      ensure_loaded(model);
      std::vector<bool> bits(nls[model].num_inputs());
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      std::future<std::vector<bool>> fut;
      const SubmitStatus st = router.try_submit(handles[model], bits, &fut);
      if (st == SubmitStatus::kAccepted) {
        pending.push_back({model, std::move(bits), std::move(fut)});
        ++accepted;
      } else {
        EXPECT_FALSE(fut.valid());
      }
    } else if (dice < 86) {
      // Replica scaling under live traffic: scale-down retires (drains, never
      // drops), scale-up compiles onto the vacant shard.
      if (handles[model] && handles[model].loaded()) {
        router.set_replicas(handles[model],
                            1 + static_cast<std::size_t>(rng.next_below(2)));
      }
    } else if (dice < 90) {
      router.unload(handles[model]);
    } else if (dice < 94) {
      router.drain();
    } else if (dice < 97) {
      // A scripted rebalancer tick: with no deadlines there are no sheds, so
      // the only possible action is an idle retire — which must also drain.
      router.rebalance_now();
    } else {
      if (handles[model] && !handles[model].loaded()) {
        std::future<std::vector<bool>> fut;
        const SubmitStatus st = router.try_submit(
            handles[model], std::vector<bool>(nls[model].num_inputs()), &fut);
        EXPECT_EQ(st, SubmitStatus::kUnloaded);
      }
    }
  }

  router.drain();

  std::uint64_t resolved = 0;
  for (auto& req : pending) {
    ASSERT_EQ(req.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "accepted future left unresolved (router seed " << seed << ")";
    try {
      const std::vector<bool> got = req.future.get();
      const std::vector<bool> want =
          direct_run(sims[req.model], nls[req.model], req.inputs);
      EXPECT_EQ(got, want) << "bit mismatch, model " << req.model
                           << " router seed " << seed;
    } catch (const Error&) {
    }
    ++resolved;
  }
  EXPECT_EQ(resolved, accepted);

  // Fleet books: routing and rebalancing add placement, never accounting.
  // Whatever shard each request landed on, the totals close and the
  // per-shard rows sum to them exactly.
  const router::FleetReport rep = router.report();
  EXPECT_EQ(rep.total.requests, accepted);
  EXPECT_EQ(rep.total.deadline_met, accepted);
  EXPECT_EQ(rep.total.shed, 0u);
  EXPECT_EQ(rep.total.expired, 0u);
  EXPECT_EQ(rep.total.samples, accepted);
  ASSERT_EQ(rep.per_shard.size(), 2u);
  EXPECT_EQ(rep.per_shard[0].requests + rep.per_shard[1].requests,
            rep.total.requests);
  EXPECT_EQ(rep.per_shard[0].samples + rep.per_shard[1].samples,
            rep.total.samples);
}

TEST(AdmissionFuzz, Seed1) { run_fuzz_round(1, 400); }
TEST(AdmissionFuzz, Seed2) { run_fuzz_round(2, 400); }
TEST(AdmissionFuzz, Seed3) { run_fuzz_round(3, 400); }

// The fleet-level round: the op stream runs against a 2-shard Router under
// p2c dispatch, replica scaling, and scripted rebalancer ticks — same
// resolution/bit-exactness/closed-books promises, now across shards.
TEST(AdmissionFuzz, RouterSeed1) { run_router_fuzz_round(21, 300); }
TEST(AdmissionFuzz, RouterSeed2) { run_router_fuzz_round(22, 300); }

// The same op stream with speculative hedging enabled: duplicates of
// straggling members race their originals under unload/evict/drain churn,
// and the oracle comparison still holds bit-exactly — hedging is pure
// redundancy, never a third execution semantics.
TEST(AdmissionFuzz, HedgedSeed1) { run_fuzz_round(11, 400, /*hedging=*/true); }
TEST(AdmissionFuzz, HedgedSeed2) { run_fuzz_round(12, 400, /*hedging=*/true); }
TEST(AdmissionFuzz, HedgedSeed3) { run_fuzz_round(13, 400, /*hedging=*/true); }

// Nightly sweep hook: LBNN_FUZZ_SEEDS=<n> widens the run to n extra seeds
// (alternating hedging off/on). The scheduled CI job sets 20; interactive
// and per-PR runs skip.
TEST(AdmissionFuzz, EnvSeedSweep) {
  const char* env = std::getenv("LBNN_FUZZ_SEEDS");
  if (env == nullptr) {
    GTEST_SKIP() << "set LBNN_FUZZ_SEEDS=<n> to sweep n extra seeds";
  }
  const long n = std::atol(env);
  for (long s = 1; s <= n; ++s) {
    SCOPED_TRACE("sweep seed " + std::to_string(100 + s));
    run_fuzz_round(static_cast<std::uint64_t>(100 + s), 400,
                   /*hedging=*/s % 2 == 0);
  }
}

}  // namespace
}  // namespace lbnn::runtime
