#include <gtest/gtest.h>

#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "netlist/stats.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace lbnn {
namespace {

TEST(Optimize, ConstantFoldingTotal) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c0 = nl.add_gate(GateOp::kConst0);
  const NodeId c1 = nl.add_gate(GateOp::kConst1);
  const NodeId x = nl.add_gate(GateOp::kAnd, c0, c1);
  const NodeId y = nl.add_gate(GateOp::kOr, x, c1);
  nl.add_output(y, "y");
  const Netlist opt = optimize(nl);
  // y == 1 constantly.
  EXPECT_TRUE(simulate_scalar(opt, {false})[0]);
  EXPECT_TRUE(simulate_scalar(opt, {true})[0]);
  EXPECT_LE(opt.num_gates(), 1u);
}

TEST(Optimize, PartialConstantFolding) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId c1 = nl.add_gate(GateOp::kConst1);
  nl.add_output(nl.add_gate(GateOp::kAnd, a, c1), "y0");   // = a
  nl.add_output(nl.add_gate(GateOp::kXor, a, c1), "y1");   // = ~a
  nl.add_output(nl.add_gate(GateOp::kNand, a, c1), "y2");  // = ~a
  const Netlist opt = optimize(nl);
  Rng rng(1);
  EXPECT_TRUE(equivalent_random(nl, opt, 32, 4, rng));
  EXPECT_LE(opt.num_gates(), 1u);  // one shared NOT
}

TEST(Optimize, IdempotentAndComplementIdentities) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId na = nl.add_gate(GateOp::kNot, a);
  nl.add_output(nl.add_gate(GateOp::kAnd, a, a), "aa");     // = a
  nl.add_output(nl.add_gate(GateOp::kXor, a, a), "xx");     // = 0
  nl.add_output(nl.add_gate(GateOp::kAnd, a, na), "an");    // = 0
  nl.add_output(nl.add_gate(GateOp::kOr, a, na), "on");     // = 1
  nl.add_output(nl.add_gate(GateOp::kXnor, a, na), "xn");   // = 0
  const Netlist opt = optimize(nl);
  Rng rng(1);
  EXPECT_TRUE(equivalent_random(nl, opt, 32, 4, rng));
}

TEST(Optimize, DoubleNegationCollapses) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n1 = nl.add_gate(GateOp::kNot, a);
  const NodeId n2 = nl.add_gate(GateOp::kNot, n1);
  const NodeId n3 = nl.add_gate(GateOp::kNot, n2);
  nl.add_output(n3, "y");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.num_gates(), 1u);  // single NOT
}

TEST(Optimize, BufferChainsCollapse) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  NodeId cur = a;
  for (int i = 0; i < 10; ++i) cur = nl.add_gate(GateOp::kBuf, cur);
  nl.add_output(cur, "y");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.num_gates(), 0u);  // output aliases the input
}

TEST(Optimize, StructuralHashingSharesDuplicates) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x1 = nl.add_gate(GateOp::kAnd, a, b);
  const NodeId x2 = nl.add_gate(GateOp::kAnd, b, a);  // commutative duplicate
  nl.add_output(nl.add_gate(GateOp::kXor, x1, x2), "y");
  const Netlist opt = optimize(nl);
  // xor(x, x) = 0 -> constant output realized... constant stays until tech_map.
  EXPECT_FALSE(simulate_scalar(opt, {true, true})[0]);
  EXPECT_FALSE(simulate_scalar(opt, {true, false})[0]);
}

TEST(Optimize, DeadGateElimination) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.add_gate(GateOp::kXor, a, b);  // dead
  nl.add_output(nl.add_gate(GateOp::kAnd, a, b), "y");
  const Netlist opt = eliminate_dead(nl);
  EXPECT_EQ(opt.num_gates(), 1u);
  EXPECT_EQ(opt.num_inputs(), 2u);  // interface preserved
}

TEST(Optimize, ReportsStats) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  NodeId cur = a;
  for (int i = 0; i < 4; ++i) cur = nl.add_gate(GateOp::kBuf, cur);
  nl.add_output(cur, "y");
  OptStats stats;
  optimize(nl, &stats);
  EXPECT_EQ(stats.gates_before, 4u);
  EXPECT_EQ(stats.gates_after, 0u);
  EXPECT_GE(stats.rewrite_iterations, 1u);
}

// Property: optimize() preserves semantics on random circuit families.
class OptimizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeProperty, PreservesSemanticsOnRandomDags) {
  const int seed = GetParam();
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 300;
  spec.num_outputs = 8;
  spec.unary_fraction = 0.25;
  Rng gen(seed);
  const Netlist nl = random_dag(spec, gen);
  const Netlist opt = optimize(nl);
  Rng rng(seed * 31 + 1);
  EXPECT_TRUE(equivalent_random(nl, opt, 128, 4, rng));
  EXPECT_LE(opt.num_gates(), nl.num_gates());
}

TEST_P(OptimizeProperty, PreservesSemanticsOnGrids) {
  const int seed = GetParam();
  Rng gen(seed);
  const Netlist nl = reconvergent_grid(12, 6, gen);
  const Netlist opt = optimize(nl);
  Rng rng(seed * 17 + 3);
  EXPECT_TRUE(equivalent_random(nl, opt, 128, 4, rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperty, ::testing::Range(1, 13));

TEST(TechMap, PaperStrictLibraryRemovesNandNor) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.add_output(nl.add_gate(GateOp::kNand, a, b), "y0");
  nl.add_output(nl.add_gate(GateOp::kNor, a, b), "y1");
  const Netlist mapped = tech_map(nl, CellLibrary::paper_strict());
  for (NodeId id = 0; id < mapped.num_nodes(); ++id) {
    EXPECT_NE(mapped.op(id), GateOp::kNand);
    EXPECT_NE(mapped.op(id), GateOp::kNor);
  }
  Rng rng(1);
  EXPECT_TRUE(equivalent_random(nl, mapped, 32, 4, rng));
}

TEST(TechMap, ConstantsRealizedFromAnInput) {
  Netlist nl;
  nl.add_input("a");
  nl.add_output(nl.add_gate(GateOp::kConst1), "y");
  const Netlist mapped = tech_map(nl, CellLibrary::lut4_full());
  EXPECT_TRUE(simulate_scalar(mapped, {false})[0]);
  EXPECT_TRUE(simulate_scalar(mapped, {true})[0]);
  for (NodeId id = 0; id < mapped.num_nodes(); ++id) {
    EXPECT_NE(mapped.op(id), GateOp::kConst1);
  }
}

TEST(TechMap, FullLibraryIsIdentityOnSupportedOps) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.add_output(nl.add_gate(GateOp::kNand, a, b), "y");
  const Netlist mapped = tech_map(nl, CellLibrary::lut4_full());
  EXPECT_EQ(mapped.num_gates(), nl.num_gates());
}

TEST(PathBalance, InsertsSharedChains) {
  // a feeds consumers at levels 1 and 3: one shared chain, tapped twice.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId l1 = nl.add_gate(GateOp::kAnd, a, b);
  const NodeId l2 = nl.add_gate(GateOp::kOr, l1, b);
  const NodeId l3 = nl.add_gate(GateOp::kXor, l2, a);  // a crosses 2 levels
  nl.add_output(l3, "y");
  const Netlist bal = balance_paths(nl);
  EXPECT_TRUE(is_path_balanced(bal));
  Rng rng(1);
  EXPECT_TRUE(equivalent_random(nl, bal, 32, 4, rng));
  const NetlistStats s = compute_stats(bal);
  // b crosses one extra level (into l2), a crosses two (into l3):
  // chain sharing keeps it at 3 buffers total.
  EXPECT_EQ(s.num_buffers, 3u);
}

TEST(PathBalance, OutputsAlignToLmax) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId shallow = nl.add_gate(GateOp::kAnd, a, b);           // level 1
  const NodeId deep = nl.add_gate(GateOp::kOr, shallow, b);         // level 2
  const NodeId deeper = nl.add_gate(GateOp::kXor, deep, shallow);   // level 3
  nl.add_output(shallow, "s");
  nl.add_output(deeper, "d");
  const Netlist bal = balance_paths(nl);
  EXPECT_TRUE(is_path_balanced(bal));
  const auto lv = bal.levels();
  for (const NodeId o : bal.outputs()) EXPECT_EQ(lv[o], 3);
}

TEST(PathBalance, PadOutputsTo) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.add_output(nl.add_gate(GateOp::kNot, a), "y");
  const Netlist bal = balance_paths(nl, 7);
  EXPECT_TRUE(is_path_balanced(bal));
  EXPECT_EQ(bal.depth(), 7);
  Rng rng(1);
  EXPECT_TRUE(equivalent_random(nl, bal, 32, 2, rng));
}

TEST(PathBalance, AlreadyBalancedIsNoop) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.add_output(nl.add_gate(GateOp::kAnd, a, b), "y");
  const Netlist bal = balance_paths(nl);
  EXPECT_EQ(bal.num_gates(), 1u);
}

class PathBalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathBalanceProperty, BalancedAndEquivalent) {
  const int seed = GetParam();
  RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_gates = 250;
  spec.num_outputs = 6;
  Rng gen(seed);
  const Netlist nl = random_dag(spec, gen);
  const Netlist bal = balance_paths(nl);
  EXPECT_TRUE(is_path_balanced(bal));
  Rng rng(seed + 100);
  EXPECT_TRUE(equivalent_random(nl, bal, 64, 3, rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathBalanceProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace lbnn
