#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "netlist/simulate.hpp"
#include "nn/bnn.hpp"
#include "nn/dataset.hpp"
#include "nn/logic_export.hpp"
#include "nn/model_zoo.hpp"
#include "nn/nullanet.hpp"
#include "nn/quine_mccluskey.hpp"
#include "nn/train.hpp"

namespace lbnn::nn {
namespace {

std::vector<bool> pattern_of(std::uint32_t m, std::uint32_t k) {
  std::vector<bool> x(k);
  for (std::uint32_t i = 0; i < k; ++i) x[i] = (m >> i) & 1u;
  return x;
}

TEST(Bnn, PopcountSemantics) {
  BnnDense layer;
  layer.in_features = 4;
  layer.out_features = 1;
  layer.weight_bits = {{true, true, false, false}};
  layer.thresholds = {2};
  // popcount(xnor(x, 1100)) over x=1010: matches at bit0(1==1), bit1(0!=1),
  // bit2(1!=0 -> no wait bit2 of x=0? x=1010 LSB-first: x0=0,x1=1,x2=0,x3=1.
  const std::vector<bool> x{false, true, false, true};
  // xnor with w = {1,1,0,0}: (0==1)F (1==1)T (0==0)T (1==0)F -> popcount 2.
  EXPECT_EQ(layer.popcounts(x)[0], 2);
  EXPECT_TRUE(layer.forward(x)[0]);
  layer.thresholds = {3};
  EXPECT_FALSE(layer.forward(x)[0]);
}

TEST(Bnn, RandomLayerShapes) {
  Rng rng(1);
  const BnnDense layer = BnnDense::random(10, 7, rng);
  EXPECT_EQ(layer.weight_bits.size(), 7u);
  EXPECT_EQ(layer.weight_bits[0].size(), 10u);
  const auto y = layer.forward(std::vector<bool>(10, true));
  EXPECT_EQ(y.size(), 7u);
}

TEST(Bnn, ModelForwardAndPredict) {
  Rng rng(2);
  const BnnModel model = BnnModel::random({8, 6, 3}, rng);
  const std::vector<bool> x{true, false, true, true, false, false, true, false};
  const auto y = model.forward(x);
  EXPECT_EQ(y.size(), 3u);
  EXPECT_LT(model.predict(x), 3u);
}

TEST(LogicExport, PopcountCircuitExact) {
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u, 13u}) {
    Netlist nl;
    std::vector<NodeId> bits;
    for (std::size_t i = 0; i < k; ++i) {
      bits.push_back(nl.add_input("b" + std::to_string(i)));
    }
    const auto count = build_popcount(nl, bits);
    for (const NodeId c : count) nl.add_output(c, "c");
    for (std::uint32_t m = 0; m < (1u << k); ++m) {
      const auto out = simulate_scalar(nl, pattern_of(m, static_cast<std::uint32_t>(k)));
      std::uint32_t value = 0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i]) value |= 1u << i;
      }
      EXPECT_EQ(value, static_cast<std::uint32_t>(popcount32(m))) << "k=" << k;
    }
  }
}

TEST(LogicExport, GeConstComparator) {
  constexpr std::uint32_t kBits = 4;
  for (std::uint32_t t = 0; t <= 16; ++t) {
    Netlist nl;
    std::vector<NodeId> v;
    for (std::uint32_t i = 0; i < kBits; ++i) {
      v.push_back(nl.add_input("v" + std::to_string(i)));
    }
    nl.add_output(build_ge_const(nl, v, t), "ge");
    for (std::uint32_t x = 0; x < 16; ++x) {
      const auto out = simulate_scalar(nl, pattern_of(x, kBits));
      EXPECT_EQ(out[0], x >= t) << "x=" << x << " t=" << t;
    }
  }
}

TEST(LogicExport, NeuronMatchesIntegerExhaustive) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t k = 2 + rng.next_below(7);
    BnnDense layer = BnnDense::random(k, 1, rng);
    layer.thresholds[0] = static_cast<std::int32_t>(rng.next_below(k + 2));
    const Netlist nl = layer_to_netlist(layer);
    for (std::uint32_t m = 0; m < (1u << k); ++m) {
      const auto x = pattern_of(m, static_cast<std::uint32_t>(k));
      EXPECT_EQ(simulate_scalar(nl, x)[0], layer.forward(x)[0])
          << "trial " << trial << " k " << k << " m " << m;
    }
  }
}

TEST(LogicExport, LargeFaninNeuronRandomVectors) {
  Rng rng(4);
  BnnDense layer = BnnDense::random(100, 3, rng);
  const Netlist nl = layer_to_netlist(layer);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> x(100);
    for (auto&& b : x) b = rng.next_bool();
    const auto want = layer.forward(x);
    const auto got = simulate_scalar(nl, x);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(got[j], want[j]);
  }
}

TEST(LogicExport, WholeModelMatchesIntegerInference) {
  Rng rng(5);
  const BnnModel model = BnnModel::random({12, 8, 4}, rng);
  const Netlist nl = model_to_netlist(model);
  EXPECT_EQ(nl.num_inputs(), 12u);
  EXPECT_EQ(nl.num_outputs(), 4u);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> x(12);
    for (auto&& b : x) b = rng.next_bool();
    const auto want = model.forward(x);
    const auto got = simulate_scalar(nl, x);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(got[j], want[j]);
  }
}

TEST(QuineMcCluskey, MinimizesKnownFunction) {
  // f = sum m(0,1,2,5,6,7) over 3 vars -> classic example, 3 primes suffice.
  const auto cover = minimize_qm(3, {0, 1, 2, 5, 6, 7}, {});
  for (std::uint32_t x = 0; x < 8; ++x) {
    const bool want = x == 0 || x == 1 || x == 2 || x == 5 || x == 6 || x == 7;
    EXPECT_EQ(cover_eval(cover, x), want) << x;
  }
  EXPECT_LE(cover.size(), 4u);
}

TEST(QuineMcCluskey, DontCaresShrinkCover) {
  // On-set {1}, dc {0,2,3}: a single tautology-ish implicant can cover.
  const auto with_dc = minimize_qm(2, {1}, {0, 2, 3});
  const auto without = minimize_qm(2, {1}, {});
  EXPECT_LE(with_dc.size(), without.size());
  EXPECT_TRUE(cover_eval(with_dc, 1));
}

TEST(QuineMcCluskey, EmptyOnSet) {
  EXPECT_TRUE(minimize_qm(4, {}, {1, 2, 3}).empty());
}

TEST(QuineMcCluskey, FullOnSetIsTautology) {
  std::vector<std::uint32_t> all;
  for (std::uint32_t m = 0; m < 16; ++m) all.push_back(m);
  const auto cover = minimize_qm(4, all, {});
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0xFu);
}

class QmProperty : public ::testing::TestWithParam<int> {};

TEST_P(QmProperty, CoverMatchesRandomTruthTables) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::uint32_t k = 3 + static_cast<std::uint32_t>(rng.next_below(5));  // 3..7
  std::vector<std::uint32_t> on, dc;
  std::vector<int> kind(1u << k);  // 0 off, 1 on, 2 dc
  for (std::uint32_t m = 0; m < (1u << k); ++m) {
    const auto r = rng.next_below(4);
    kind[m] = r == 0 ? 1 : (r == 1 ? 2 : 0);
    if (kind[m] == 1) on.push_back(m);
    if (kind[m] == 2) dc.push_back(m);
  }
  const auto cover = minimize_qm(k, on, dc);
  for (std::uint32_t m = 0; m < (1u << k); ++m) {
    if (kind[m] == 1) {
      EXPECT_TRUE(cover_eval(cover, m)) << m;
    }
    if (kind[m] == 0) {
      EXPECT_FALSE(cover_eval(cover, m)) << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmProperty, ::testing::Range(1, 21));

TEST(NullaNet, ExactTableMatchesNeuron) {
  Rng rng(6);
  BnnDense layer = BnnDense::random(6, 2, rng);
  const TruthTable t = neuron_truth_table(layer, 1);
  for (std::uint32_t m = 0; m < 64; ++m) {
    EXPECT_EQ(t.on[m], layer.forward(pattern_of(m, 6))[1]);
    EXPECT_TRUE(t.care[m]);
  }
}

TEST(NullaNet, SynthesizedSopMatchesTable) {
  Rng rng(7);
  BnnDense layer = BnnDense::random(7, 1, rng);
  const TruthTable t = neuron_truth_table(layer, 0);
  const Netlist nl = synthesize_sop(t);
  for (std::uint32_t m = 0; m < (1u << 7); ++m) {
    EXPECT_EQ(simulate_scalar(nl, pattern_of(m, 7))[0], t.on[m]) << m;
  }
}

TEST(NullaNet, ObservedTableUsesDontCares) {
  Rng rng(8);
  BnnDense layer = BnnDense::random(8, 1, rng);
  // Observe only 20 patterns; the minimized cover must match on those.
  std::vector<std::vector<bool>> observed;
  for (int i = 0; i < 20; ++i) {
    std::vector<bool> x(8);
    for (auto&& b : x) b = rng.next_bool();
    observed.push_back(std::move(x));
  }
  const TruthTable t = observed_truth_table(layer, 0, observed);
  const Netlist nl = synthesize_sop(t);
  for (const auto& x : observed) {
    EXPECT_EQ(simulate_scalar(nl, x)[0], layer.forward(x)[0]);
  }
  // Don't-care freedom should not increase literal cost beyond the exact one.
  const Netlist exact = synthesize_sop(neuron_truth_table(layer, 0));
  EXPECT_LE(nl.num_gates(), exact.num_gates());
}

TEST(NullaNet, LayerSynthesisMatchesForward) {
  Rng rng(9);
  BnnDense layer = BnnDense::random(6, 4, rng);
  const Netlist nl = nullanet_layer(layer);
  EXPECT_EQ(nl.num_outputs(), 4u);
  for (std::uint32_t m = 0; m < 64; ++m) {
    const auto x = pattern_of(m, 6);
    const auto want = layer.forward(x);
    const auto got = simulate_scalar(nl, x);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(got[j], want[j]) << m;
  }
}

TEST(Train, LearnsBlobs) {
  Rng rng(10);
  Dataset ds = make_blobs(16, 2, 60, 0.08, rng);
  TrainOptions opt;
  opt.epochs = 25;
  opt.seed = 3;
  const TrainResult res = train_bnn(ds, {16, 8, 2}, opt);
  EXPECT_GE(res.train_accuracy, 0.85) << "BNN failed to learn separable blobs";
}

TEST(Train, TrainedModelExportsToEquivalentLogic) {
  Rng rng(11);
  Dataset ds = make_blobs(10, 2, 40, 0.05, rng);
  TrainOptions opt;
  opt.epochs = 20;
  opt.seed = 4;
  const TrainResult res = train_bnn(ds, {10, 6, 2}, opt);
  const Netlist nl = model_to_netlist(res.model);
  for (std::size_t s = 0; s < ds.size(); s += 7) {
    const auto want = res.model.forward(ds.samples[s]);
    const auto got = simulate_scalar(nl, ds.samples[s]);
    for (std::size_t j = 0; j < want.size(); ++j) EXPECT_EQ(got[j], want[j]);
  }
}

TEST(Train, AccuracyHelperAgreesWithPredict) {
  Rng rng(12);
  Dataset ds = make_blobs(8, 2, 10, 0.0, rng);
  const BnnModel model = BnnModel::random({8, 4, 2}, rng);
  const double acc = accuracy(model, ds);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Dataset, BlobsAreClassStructured) {
  Rng rng(13);
  const Dataset ds = make_blobs(12, 3, 15, 0.0, rng);
  EXPECT_EQ(ds.size(), 45u);
  EXPECT_EQ(ds.num_classes, 3u);
  // Noise-free blobs: samples within a class are identical.
  EXPECT_EQ(ds.samples[0], ds.samples[1]);
}

TEST(Dataset, SubsetParityLabels) {
  Rng rng(14);
  const Dataset ds = make_subset_parity(10, 3, 200, rng);
  for (std::size_t s = 0; s < ds.size(); ++s) {
    bool p = false;
    for (std::size_t i = 0; i < 3; ++i) p ^= ds.samples[s][i];
    EXPECT_EQ(ds.labels[s], p ? 1u : 0u);
  }
}

TEST(ModelZoo, AllModelsWellFormed) {
  for (const auto& model : all_models()) {
    EXPECT_FALSE(model.layers.empty()) << model.name;
    for (const auto& l : model.layers) {
      EXPECT_GT(l.in_features, 0u) << model.name << "/" << l.name;
      EXPECT_GT(l.out_neurons, 0u);
      EXPECT_GT(l.positions, 0u);
    }
    EXPECT_GT(model.macs_per_frame(), 0.0);
  }
}

TEST(ModelZoo, Vgg16Shape) {
  const ModelDesc m = vgg16();
  EXPECT_EQ(m.layers.size(), 12u);  // conv2..conv13
  EXPECT_EQ(m.layers.front().in_features, 64u * 9u);
  EXPECT_EQ(m.layers.back().positions, 14u * 14u);
  // VGG16 convs 2-13 are ~15G MACs.
  EXPECT_GT(m.macs_per_frame(), 1e10);
  EXPECT_LT(m.macs_per_frame(), 2e10);
}

TEST(ModelZoo, NidUses593Features) {
  EXPECT_EQ(nid().layers.front().in_features, 593u);
  EXPECT_EQ(nid().layers.back().out_neurons, 2u);
}

TEST(ModelZoo, SynthesizedLayerIsExactNeuronLogic) {
  Rng rng(15);
  SynthOptions opt;
  opt.max_neurons = 4;
  opt.max_inputs = 20;
  opt.fanin_cap = 10;
  const LayerWorkload wl = synthesize_layer_ffcl(jsc_m().layers[0], opt, rng);
  EXPECT_EQ(wl.ffcl.num_outputs(), 4u);
  EXPECT_LE(wl.ffcl.num_inputs(), 20u);
  EXPECT_NO_THROW(wl.ffcl.validate());
}

TEST(ModelZoo, ScalingIsDeterministicPerSeed) {
  SynthOptions opt;
  Rng a(42), b(42);
  const LayerWorkload w1 = synthesize_layer_ffcl(vgg16().layers[0], opt, a);
  const LayerWorkload w2 = synthesize_layer_ffcl(vgg16().layers[0], opt, b);
  EXPECT_EQ(w1.ffcl.num_nodes(), w2.ffcl.num_nodes());
}

}  // namespace
}  // namespace lbnn::nn
