// Serve-layer coverage: two-stage cascades (easy/hard routing, absolute-
// deadline rebudgeting into stage 2), versioned aliases (exact stride canary
// splits, atomic flips, idle reaping of the old version), and the PR 10
// lifecycle bugfix sweep (evict_idle on the injected clock domain, the
// admission-vs-evict race window, dynamic set_weight rescaling). Everything
// timing-related runs on a ManualClock — this file contains zero wall-clock
// sleeps by construction (CI greps for them).

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"
#include "serve/alias.hpp"
#include "serve/cascade.hpp"

namespace lbnn::serve {
namespace {

using namespace std::chrono_literals;
using runtime::Engine;
using runtime::EngineOptions;
using runtime::ManualClock;
using runtime::ModelHandle;
using runtime::ModelOptions;
using runtime::SubmitStatus;

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;  // word width 2m = 16 lanes
}

EngineOptions small_engine(std::uint32_t workers) {
  EngineOptions eopt;
  eopt.num_workers = workers;
  eopt.compile = small_lpu();
  return eopt;
}

/// Blocks every dispatch while armed (the test_serving_v2 idiom): pins the
/// single worker so backlogs can stage and weights can change mid-queue.
class DispatchGate {
 public:
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  void wait_if_armed() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !hold_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool hold_ = true;
};

// ---------------------------------------------------------------------------
// Cascade: easy/hard routing
// ---------------------------------------------------------------------------

// The predicate (tiny output bit 0) splits a random workload between the
// stages; every future must resolve with the ANSWERING stage's bit-exact
// scalar-simulation output, and the cascade ledger must close.
TEST(Cascade, AnswersEasyForwardsHardBitExact) {
  Rng gen(301);
  const Netlist tiny_nl = reconvergent_grid(8, 3, gen);
  const Netlist big_nl = reconvergent_grid(8, 5, gen);
  EngineOptions eopt = small_engine(2);
  eopt.batch_timeout = std::chrono::hours(1);  // cascade.drain() seals
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 256;
  const ModelHandle tiny = engine.load("tiny", tiny_nl, mopt);
  const ModelHandle big = engine.load("big", big_nl, mopt);

  CascadeOptions copt;
  copt.confident = [](const std::vector<bool>& out) { return out[0]; };
  Cascade cascade(engine, tiny, big, copt);

  const int kN = 32;
  std::vector<std::vector<bool>> inputs;
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < kN; ++i) {
    std::vector<bool> bits(tiny_nl.num_inputs());
    for (std::size_t j = 0; j < bits.size(); ++j) bits[j] = gen.next_bool();
    inputs.push_back(bits);
    futs.push_back(cascade.submit(std::move(bits)));
  }
  cascade.drain();

  std::uint64_t easy = 0;
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready) << i;
    const std::vector<bool> tiny_out = simulate_scalar(tiny_nl, inputs[i]);
    if (tiny_out[0]) {
      ++easy;
      EXPECT_EQ(futs[i].get(), tiny_out) << "stage-1 answer " << i;
    } else {
      EXPECT_EQ(futs[i].get(), simulate_scalar(big_nl, inputs[i]))
          << "stage-2 answer " << i;
    }
  }
  // The random workload must exercise both paths for the test to mean
  // anything.
  ASSERT_GT(easy, 0u);
  ASSERT_LT(easy, static_cast<std::uint64_t>(kN));

  const CascadeReport rep = cascade.report();
  EXPECT_EQ(rep.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(rep.stage1_answered, easy);
  EXPECT_EQ(rep.forwarded, kN - easy);
  EXPECT_EQ(rep.stage2_answered, kN - easy);
  EXPECT_EQ(rep.stage1_shed, 0u);
  EXPECT_EQ(rep.stage2_shed, 0u);
  EXPECT_EQ(rep.bypassed, 0u);
  EXPECT_EQ(rep.failed, 0u);
}

// ---------------------------------------------------------------------------
// Cascade: deadline rebudgeting into stage 2
// ---------------------------------------------------------------------------

// The deadline is one absolute TimePoint: after stage 1 runs, stage 2's
// admission sees only what is left of it. The member hook advances the
// ManualClock exactly 1 ms per member run, so stage 1's cost and stage 2's
// learned estimate are both exact multiples of 1 ms — the test budgets a
// request to clear stage 1 but land 1 us short of stage 2's estimate, and
// asserts the forwarded request sheds (while a no-deadline control passes).
TEST(Cascade, RebudgetShedsStage2WhenRemainingBudgetTooSmall) {
  ManualClock clock;
  Rng gen(302);
  const Netlist tiny_nl = reconvergent_grid(8, 2, gen);
  const Netlist big_nl = reconvergent_grid(8, 6, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 64;
  const ModelHandle tiny = engine.load("tiny", tiny_nl, mopt);
  const ModelHandle big = engine.load("big", big_nl, mopt);
  engine.set_member_hook(
      [&](const std::string&, std::size_t, bool) { clock.advance(1ms); });

  const std::vector<bool> bits(tiny_nl.num_inputs(), true);
  // Teach both admission EWMAs and measure each stage's member count (T, B):
  // a batch of one request costs exactly <members> ms on this clock.
  std::uint64_t runs0 = engine.report().member_runs;
  auto warm1 = engine.submit(tiny, bits);
  engine.drain();
  warm1.wait();
  const std::uint64_t T = engine.report().member_runs - runs0;
  runs0 = engine.report().member_runs;
  auto warm2 = engine.submit(big, bits);
  engine.drain();
  warm2.wait();
  const std::uint64_t B = engine.report().member_runs - runs0;
  ASSERT_GT(T, 0u);
  ASSERT_GT(B, 0u);

  CascadeOptions copt;
  copt.confident = [](const std::vector<bool>&) { return false; };  // all hard
  Cascade cascade(engine, tiny, big, copt);

  // Budget: stage 1 admits (T ms estimate <= budget) and consumes exactly
  // T ms; the forward then holds B*1000 - 1 us against a B*1000 us estimate.
  auto doomed = cascade.submit(
      bits, clock.now() + std::chrono::microseconds((T + B) * 1000 - 1));
  cascade.drain();
  ASSERT_EQ(doomed.wait_for(0s), std::future_status::ready);
  EXPECT_THROW(doomed.get(), DeadlineExceeded);

  // Control: same path, no deadline pressure — the big model answers.
  auto fine = cascade.submit(bits);
  cascade.drain();
  EXPECT_EQ(fine.get(), simulate_scalar(big_nl, bits));

  const CascadeReport rep = cascade.report();
  EXPECT_EQ(rep.submitted, 2u);
  EXPECT_EQ(rep.forwarded, 2u);    // stage 1 served both
  EXPECT_EQ(rep.stage2_shed, 1u);  // the rebudgeted admission refused one
  EXPECT_EQ(rep.stage2_answered, 1u);
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.stage1_shed, 0u);
  engine.set_member_hook(nullptr);
}

// ---------------------------------------------------------------------------
// Aliases: exact stride splits
// ---------------------------------------------------------------------------

// A 1:3 canary split is EXACT over every aligned window of 4 picks — stride
// selection, not sampling — and re-weighting restarts the cycle cleanly.
TEST(Alias, CanarySplitIsExactOverEveryWindow) {
  Rng gen(303);
  const Netlist v1_nl = reconvergent_grid(8, 4, gen);
  const Netlist v2_nl = reconvergent_grid(8, 5, gen);
  Engine engine(small_engine(1));
  const ModelHandle v1 = engine.load("jsc_v1", v1_nl);
  const ModelHandle v2 = engine.load("jsc_v2", v2_nl);

  AliasTable table(engine);
  table.publish("jsc@prod", v1);
  EXPECT_EQ(table.resolve("jsc@prod").name(), "jsc_v1");
  table.set_canary("jsc@prod", v2, 1, 3);

  // 10 aligned windows of 4: each must route exactly 3 to primary, 1 to
  // canary — asserted window by window from the table's own ledger.
  std::vector<std::future<std::vector<bool>>> futs;
  const std::vector<bool> bits(v1_nl.num_inputs(), true);
  for (int w = 0; w < 10; ++w) {
    const AliasReport before = table.report("jsc@prod");
    for (int i = 0; i < 4; ++i) futs.push_back(table.submit("jsc@prod", bits));
    const AliasReport after = table.report("jsc@prod");
    EXPECT_EQ(after.to_primary - before.to_primary, 3u) << "window " << w;
    EXPECT_EQ(after.to_canary - before.to_canary, 1u) << "window " << w;
  }
  engine.drain();

  // The ledger matches what actually ran: count futures by which version's
  // scalar simulation they reproduce.
  const std::vector<bool> want1 = simulate_scalar(v1_nl, bits);
  const std::vector<bool> want2 = simulate_scalar(v2_nl, bits);
  ASSERT_NE(want1, want2);
  std::uint64_t from_v1 = 0;
  std::uint64_t from_v2 = 0;
  for (auto& f : futs) {
    const std::vector<bool> out = f.get();
    if (out == want1) ++from_v1;
    if (out == want2) ++from_v2;
  }
  EXPECT_EQ(from_v1, 30u);
  EXPECT_EQ(from_v2, 10u);

  // Re-weight to 1:1 — alternation is exact from the next request on.
  table.set_split("jsc@prod", 1, 1);
  const AliasReport before = table.report("jsc@prod");
  for (int i = 0; i < 6; ++i) (void)table.submit("jsc@prod", bits);
  engine.drain();
  const AliasReport after = table.report("jsc@prod");
  EXPECT_EQ(after.to_primary - before.to_primary, 3u);
  EXPECT_EQ(after.to_canary - before.to_canary, 3u);

  EXPECT_THROW(table.set_split("jsc@prod", 0, 0), Error);
  EXPECT_THROW(table.resolve("nope@prod"), Error);
}

// ---------------------------------------------------------------------------
// Aliases: zero-drop version flip + idle reap
// ---------------------------------------------------------------------------

// The full rollout script on a ManualClock: publish v1, stage v2 at 0%, open
// to 25%, flip to 100%, then evict the idle v1. Every future across all
// phases resolves bit-exactly (v1 and v2 are the same netlist, so the oracle
// is version-independent); nothing drops, nothing double-resolves, and the
// duplicate load dedups in the program cache.
TEST(Alias, VersionFlipDropsNothingAndReapsOldVersion) {
  ManualClock clock;
  Rng gen(304);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle v1 = engine.load("jsc_v1", nl);
  const ModelHandle v2 = engine.load("jsc_v2", nl);
  // Same netlist, same compile options: v2 reuses v1's compiled program.
  EXPECT_GE(engine.cache_stats().hits, 1u);
  EXPECT_EQ(engine.cache_stats().entries, 1u);

  AliasTable table(engine);
  table.publish("jsc@prod", v1);
  table.set_canary("jsc@prod", v2, 0, 1);  // staged at 0%

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(table.submit("jsc@prod", bits));
  EXPECT_EQ(table.report("jsc@prod").to_canary, 0u);  // 0% means zero

  table.set_split("jsc@prod", 1, 3);  // 25%
  for (int i = 0; i < 8; ++i) futs.push_back(table.submit("jsc@prod", bits));
  EXPECT_EQ(table.report("jsc@prod").to_canary, 2u);  // exactly 2 of 8

  const ModelHandle old = table.flip("jsc@prod");  // 100%
  EXPECT_EQ(old.name(), "jsc_v1");
  EXPECT_EQ(table.resolve("jsc@prod").name(), "jsc_v2");
  for (int i = 0; i < 8; ++i) futs.push_back(table.submit("jsc@prod", bits));

  engine.drain();
  const std::vector<bool> want = simulate_scalar(nl, bits);
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready)
        << "dropped future " << i;
    EXPECT_EQ(futs[i].get(), want) << i;
  }
  const AliasReport rep = table.report("jsc@prod");
  EXPECT_EQ(rep.submitted, 24u);
  EXPECT_EQ(rep.flips, 1u);
  EXPECT_EQ(rep.to_primary + rep.to_canary, rep.submitted);
  EXPECT_FALSE(rep.has_canary);

  // Reap: 10 clock-minutes later, one request keeps v2 warm; v1 has been
  // idle since the flip and evicts, v2 survives, the alias still serves.
  clock.advance(10min);
  auto keepwarm = table.submit("jsc@prod", bits);
  engine.drain();
  keepwarm.wait();
  EXPECT_EQ(engine.evict_idle(5min), 1u);
  EXPECT_FALSE(v1.loaded());
  EXPECT_TRUE(v2.loaded());
  EXPECT_EQ(engine.num_models(), 1u);
  auto still = table.submit("jsc@prod", bits);
  engine.drain();
  EXPECT_EQ(still.get(), want);
}

// ---------------------------------------------------------------------------
// Bugfix sweep: evict_idle on the injected clock domain
// ---------------------------------------------------------------------------

// `min_idle` is a duration on the injected ClockSource, the domain that
// stamps last_used — NOT wall time. Under a ManualClock, 10 advance()d idle
// minutes trip a 5-minute cutoff even though microseconds of wall time have
// passed (the pre-fix wall-clock comparison would evict nothing here).
TEST(Lifecycle, EvictIdleHonorsInjectedClockDomain) {
  ManualClock clock;
  Rng gen(305);
  const Netlist a_nl = reconvergent_grid(8, 4, gen);
  const Netlist b_nl = reconvergent_grid(8, 5, gen);
  EngineOptions eopt = small_engine(1);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle a = engine.load("a", a_nl);
  auto ua = engine.submit(a, std::vector<bool>(a_nl.num_inputs()));
  engine.drain();
  ua.wait();

  clock.advance(10min);
  const ModelHandle b = engine.load("b", b_nl);
  auto ub = engine.submit(b, std::vector<bool>(b_nl.num_inputs()));
  engine.drain();
  ub.wait();

  EXPECT_EQ(engine.evict_idle(30min), 0u);  // neither is 30 clock-minutes idle
  EXPECT_EQ(engine.evict_idle(5min), 1u);   // a: 10 idle minutes; b: 0
  EXPECT_FALSE(a.loaded());
  EXPECT_TRUE(b.loaded());
  EXPECT_EQ(engine.num_models(), 1u);
}

// ---------------------------------------------------------------------------
// Bugfix sweep: the admission-vs-evict race window
// ---------------------------------------------------------------------------

// A request admitted between evict_idle's outstanding==0 check and its
// unload() must be SERVED, not dropped: unload flips `accepting` first and
// then drains, so the late admission rides the drain out. The evict hook
// lands a submit deterministically inside that exact window.
TEST(Lifecycle, RequestAdmittedDuringEvictionIsServed) {
  Rng gen(306);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);  // only unload's drain seals
  Engine engine(eopt);
  const ModelHandle m = engine.load("m", nl);

  const std::vector<bool> bits(nl.num_inputs(), true);
  std::future<std::vector<bool>> late;
  engine.set_evict_hook([&](const std::string& name) {
    if (name == "m") late = engine.submit(m, bits);
  });
  EXPECT_EQ(engine.evict_idle(0s), 1u);  // idle at the check; evicted anyway
  engine.set_evict_hook(nullptr);

  EXPECT_FALSE(m.loaded());
  ASSERT_TRUE(late.valid());
  // Served before evict_idle returned: unload's drain resolved it.
  ASSERT_EQ(late.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(late.get(), simulate_scalar(nl, bits));
  const runtime::ServeReport rep = engine.report();
  EXPECT_EQ(rep.requests, 1u);  // folded into the retired row, not lost
  EXPECT_EQ(rep.expired, 0u);
}

// ---------------------------------------------------------------------------
// Bugfix sweep: set_weight rescales the live stride
// ---------------------------------------------------------------------------

// Re-weighting a model with a standing backlog takes effect immediately and
// exactly: after set_weight(a, 3), every aligned window of 4 dispatches
// drains 3 A batches and 1 B batch. Same trace-replay technique as the
// static-weight stride test — this is its dynamic twin (the canary lever).
TEST(Lifecycle, SetWeightReshapesDrainOrderExactly) {
  ManualClock clock;
  Rng gen(307);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt = small_engine(1);
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.clock = &clock;
  eopt.tracing = true;
  eopt.trace_ring_capacity = 1 << 14;
  Engine engine(eopt);
  const std::size_t lanes = 16;

  ModelOptions mopt;  // both start at weight 1
  mopt.queue_bound = 40 * lanes;
  const ModelHandle a = engine.load("A", nl, mopt);
  const ModelHandle b = engine.load("B", nl, mopt);
  EXPECT_EQ(a.weight(), 1u);

  DispatchGate gate;
  engine.set_dispatch_hook([&](const std::string&) { gate.wait_if_armed(); });

  const std::vector<bool> bits(nl.num_inputs(), true);
  const auto submit_batches = [&](const ModelHandle& h, int n) {
    for (int i = 0; i < n * static_cast<int>(lanes); ++i) {
      auto fut = engine.submit(h, bits);
      (void)fut;
    }
  };
  // A first: the worker's one pre-gate dispatch is an A batch, leaving
  // 15 A + 5 B = 20 gated dispatches.
  submit_batches(a, 16);
  submit_batches(b, 5);

  // The canary lever, mid-backlog: A's share triples while its queue stands.
  EXPECT_TRUE(engine.set_weight(a, 3));
  EXPECT_EQ(a.weight(), 3u);
  gate.release();
  engine.drain();
  engine.set_dispatch_hook(nullptr);

  EXPECT_EQ(engine.trace_dropped(), 0u);
  std::vector<std::string> order;
  for (const runtime::TraceEvent& ev : engine.drain_trace()) {
    if (ev.type == runtime::TraceEventType::kDispatch) {
      order.push_back(engine.trace_model_name(ev.model_id));
    }
  }
  ASSERT_GE(order.size(), 21u);
  EXPECT_EQ(order[0], "A");  // the pinned pre-backlog dispatch
  std::map<std::string, int> counts;
  for (std::size_t i = 1; i <= 20; ++i) counts[order[i]]++;
  EXPECT_EQ(counts["A"], 15);
  EXPECT_EQ(counts["B"], 5);
  for (std::size_t w = 1; w + 4 <= 21; w += 4) {
    std::map<std::string, int> win;
    for (std::size_t i = w; i < w + 4; ++i) win[order[i]]++;
    EXPECT_EQ(win["A"], 3) << "window at " << w;
    EXPECT_EQ(win["B"], 1) << "window at " << w;
  }

  // Weight 0 is clamped to the starvation floor; unloaded models refuse.
  EXPECT_TRUE(engine.set_weight(b, 0));
  EXPECT_EQ(b.weight(), 1u);
  engine.unload(b);
  EXPECT_FALSE(engine.set_weight(b, 2));
}

}  // namespace
}  // namespace lbnn::serve
