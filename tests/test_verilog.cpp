#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace lbnn {
namespace {

using verilog::parse_module;
using verilog::write_module;

TEST(VerilogParser, MinimalModule) {
  const auto mod = parse_module(R"(
    module top(a, b, y);
      input a, b;
      output y;
      and g1(y, a, b);
    endmodule
  )");
  EXPECT_EQ(mod.name, "top");
  EXPECT_EQ(mod.netlist.num_inputs(), 2u);
  EXPECT_EQ(mod.netlist.num_outputs(), 1u);
  EXPECT_EQ(simulate_scalar(mod.netlist, {true, true})[0], true);
  EXPECT_EQ(simulate_scalar(mod.netlist, {true, false})[0], false);
}

TEST(VerilogParser, AnsiPorts) {
  const auto mod = parse_module(
      "module m(input a, input b, output y); xor g(y, a, b); endmodule");
  EXPECT_EQ(mod.netlist.num_inputs(), 2u);
  EXPECT_TRUE(simulate_scalar(mod.netlist, {true, false})[0]);
}

TEST(VerilogParser, VectorsAndBitSelect) {
  const auto mod = parse_module(R"(
    module top(b, y);
      input [3:0] b;
      output y;
      wire t;
      and g1(t, b[0], b[1]);
      or g2(y, t, b[3]);
    endmodule
  )");
  EXPECT_EQ(mod.netlist.num_inputs(), 4u);
  EXPECT_EQ(mod.netlist.input_name(2), "b[2]");
  // y = b0&b1 | b3
  EXPECT_TRUE(simulate_scalar(mod.netlist, {true, true, false, false})[0]);
  EXPECT_FALSE(simulate_scalar(mod.netlist, {true, false, true, false})[0]);
  EXPECT_TRUE(simulate_scalar(mod.netlist, {false, false, false, true})[0]);
}

TEST(VerilogParser, AssignExpressionPrecedence) {
  // & binds tighter than ^ binds tighter than |.
  const auto mod = parse_module(R"(
    module top(a, b, c, d, y);
      input a, b, c, d; output y;
      assign y = a | b & c ^ d;
    endmodule
  )");
  for (int mask = 0; mask < 16; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4, d = mask & 8;
    const bool expect = a | ((b & c) ^ d);
    EXPECT_EQ(simulate_scalar(mod.netlist, {a, b, c, d})[0], expect) << mask;
  }
}

TEST(VerilogParser, UnaryNotAndParens) {
  const auto mod = parse_module(R"(
    module top(a, b, y); input a, b; output y;
      assign y = ~(a & ~b);
    endmodule
  )");
  EXPECT_TRUE(simulate_scalar(mod.netlist, {false, false})[0]);
  EXPECT_FALSE(simulate_scalar(mod.netlist, {true, false})[0]);
  EXPECT_TRUE(simulate_scalar(mod.netlist, {true, true})[0]);
}

TEST(VerilogParser, XnorOperators) {
  const auto m1 = parse_module(
      "module t(a,b,y); input a,b; output y; assign y = a ~^ b; endmodule");
  const auto m2 = parse_module(
      "module t(a,b,y); input a,b; output y; assign y = a ^~ b; endmodule");
  for (int mask = 0; mask < 4; ++mask) {
    const bool a = mask & 1, b = mask & 2;
    EXPECT_EQ(simulate_scalar(m1.netlist, {a, b})[0], a == b);
    EXPECT_EQ(simulate_scalar(m2.netlist, {a, b})[0], a == b);
  }
}

TEST(VerilogParser, SizedLiterals) {
  const auto mod = parse_module(R"(
    module t(a, y0, y1); input a; output y0, y1;
      assign y0 = a & 1'b0;
      assign y1 = a ^ 1'b1;
    endmodule
  )");
  const auto out = simulate_scalar(mod.netlist, {true});
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(VerilogParser, MultiInputGateDecomposes) {
  const auto mod = parse_module(R"(
    module t(a, b, c, d, y); input a, b, c, d; output y;
      nand g(y, a, b, c, d);
    endmodule
  )");
  for (int mask = 0; mask < 16; ++mask) {
    const bool a = mask & 1, b = mask & 2, c = mask & 4, d = mask & 8;
    EXPECT_EQ(simulate_scalar(mod.netlist, {a, b, c, d})[0], !(a && b && c && d));
  }
}

TEST(VerilogParser, CommentsAreSkipped) {
  const auto mod = parse_module(R"(
    // leading comment
    module t(a, y); /* block
       comment */ input a; output y;
      buf g(y, a);  // trailing
    endmodule
  )");
  EXPECT_TRUE(simulate_scalar(mod.netlist, {true})[0]);
}

TEST(VerilogParser, OutOfOrderNetsResolve) {
  // w2 used before its driver appears.
  const auto mod = parse_module(R"(
    module t(a, y); input a; output y;
      wire w1, w2;
      and g1(w1, a, w2);
      not g2(w2, a);
      buf g3(y, w1);
    endmodule
  )");
  EXPECT_FALSE(simulate_scalar(mod.netlist, {true})[0]);
  EXPECT_FALSE(simulate_scalar(mod.netlist, {false})[0]);
}

TEST(VerilogParser, ErrorsAreReported) {
  EXPECT_THROW(parse_module("module t(a,y); input a; output y; assign y = z; endmodule"),
               ParseError);
  EXPECT_THROW(parse_module("module t(a,y); input a; output y; endmodule"),
               ParseError);  // y undriven
  EXPECT_THROW(parse_module(R"(
      module t(a,y); input a; output y;
        assign y = a; assign y = ~a;
      endmodule)"),
               ParseError);  // multiple drivers
  EXPECT_THROW(parse_module(R"(
      module t(a,y); input a; output y; wire w1, w2;
        and g1(w1, a, w2); and g2(w2, a, w1); buf g3(y, w1);
      endmodule)"),
               ParseError);  // combinational cycle
  EXPECT_THROW(parse_module("module t(a,y); input [3:0] a; output y; assign y = a; endmodule"),
               ParseError);  // vector without bit-select
}

TEST(VerilogWriter, RoundTripPreservesSemantics) {
  Rng rng(2024);
  for (int seed = 0; seed < 6; ++seed) {
    RandomCircuitSpec spec;
    spec.num_inputs = 8;
    spec.num_gates = 120;
    spec.num_outputs = 6;
    Rng gen(seed + 1);
    const Netlist nl = random_dag(spec, gen);
    const std::string text = write_module(nl, "rt");
    const auto mod = parse_module(text);
    EXPECT_TRUE(equivalent_random(nl, mod.netlist, 64, 4, rng)) << "seed " << seed;
  }
}

TEST(VerilogWriter, SanitizesBracketNames) {
  Netlist nl;
  const NodeId a = nl.add_input("b[3]");
  nl.add_output(nl.add_gate(GateOp::kNot, a), "y[0]");
  const std::string text = write_module(nl, "top");
  EXPECT_EQ(text.find('['), std::string::npos);
  const auto mod = parse_module(text);
  EXPECT_FALSE(simulate_scalar(mod.netlist, {true})[0]);
}

TEST(VerilogWriter, ConstantsRoundTrip) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c1 = nl.add_gate(GateOp::kConst1);
  nl.add_output(c1, "y");
  const auto mod = parse_module(write_module(nl, "top"));
  EXPECT_TRUE(simulate_scalar(mod.netlist, {false})[0]);
}

}  // namespace
}  // namespace lbnn
