#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lpu/multi_lpu.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"

namespace lbnn {
namespace {

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;
}

TEST(MultiLpu, ParallelMatchesReference) {
  Rng gen(1);
  const Netlist nl = reconvergent_grid(12, 6, gen);
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    const auto compiled = compile_parallel(nl, small_lpu(), k);
    EXPECT_LE(compiled.members.size(), k);
    Rng rng(10 + k);
    for (int round = 0; round < 2; ++round) {
      const auto in = random_inputs(nl, 32, rng);
      EXPECT_EQ(run_parallel(compiled, in), simulate(nl, in)) << "k=" << k;
    }
  }
}

TEST(MultiLpu, ParallelCoversAllOutputsExactlyOnce) {
  Rng gen(2);
  const Netlist nl = reconvergent_grid(10, 5, gen);
  const auto compiled = compile_parallel(nl, small_lpu(), 3);
  std::vector<int> served(nl.num_outputs(), 0);
  for (const auto& m : compiled.members) {
    for (const std::uint32_t po : m.po_indices) ++served[po];
  }
  for (const int c : served) EXPECT_EQ(c, 1);
}

TEST(MultiLpu, ParallelImprovesInitiationInterval) {
  // Splitting a wide network across LPUs shortens the slowest member's
  // schedule versus the single-LPU schedule.
  Rng gen(3);
  const Netlist nl = reconvergent_grid(16, 6, gen);
  const auto one = compile_parallel(nl, small_lpu(), 1);
  const auto four = compile_parallel(nl, small_lpu(), 4);
  EXPECT_LT(four.steady_state_interval_cycles(),
            one.steady_state_interval_cycles());
  EXPECT_GT(four.samples_per_second(), one.samples_per_second());
}

TEST(MultiLpu, LoadBalancingIsReasonable) {
  Rng gen(4);
  const Netlist nl = reconvergent_grid(12, 6, gen);
  const auto compiled = compile_parallel(nl, small_lpu(), 4);
  std::uint64_t min_w = UINT64_MAX, max_w = 0;
  for (const auto& m : compiled.members) {
    min_w = std::min<std::uint64_t>(min_w, m.program.num_wavefronts);
    max_w = std::max<std::uint64_t>(max_w, m.program.num_wavefronts);
  }
  // LPT balancing: the heaviest member within 3x of the lightest.
  EXPECT_LE(max_w, 3 * min_w);
}

TEST(MultiLpu, DegenerateConfigsRejected) {
  Rng gen(5);
  const Netlist nl = reconvergent_grid(6, 4, gen);
  EXPECT_THROW(compile_parallel(nl, small_lpu(), 0), CompileError);
  EXPECT_THROW(compile_parallel(nl, small_lpu(), 100), CompileError);
  EXPECT_THROW(compile_series_equivalent(nl, small_lpu(), 0), CompileError);
}

TEST(MultiLpu, SeriesRemovesCirculation) {
  // Depth-12 network on n=4: three circulation passes; a series-of-3
  // assembly (equivalent n=12) runs it in one pass with fewer bubbles.
  Rng gen(6);
  const Netlist nl = random_tree(64, gen);  // depth 6 -> padded deeper
  CompileOptions opt;
  opt.lpu.m = 16;
  opt.lpu.n = 4;
  const CompileResult single = compile(nl, opt);
  const CompileResult series = compile_series_equivalent(nl, opt, 2);
  EXPECT_LT(series.report.bands, single.report.bands);
  EXPECT_LE(series.report.bubbles, single.report.bubbles);
  EXPECT_LT(series.program.steady_state_interval_cycles(),
            single.program.steady_state_interval_cycles());
}

TEST(MultiLpu, SeriesEquivalentIsCorrect) {
  Rng gen(7);
  const Netlist nl = random_tree(48, gen);
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 4;
  const CompileResult series = compile_series_equivalent(nl, opt, 3);
  LpuSimulator sim(series.program);
  Rng rng(8);
  const auto in = random_inputs(nl, 32, rng);
  EXPECT_EQ(sim.run(in), simulate(nl, in));
}

}  // namespace
}  // namespace lbnn
