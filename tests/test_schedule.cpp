#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/mfg.hpp"
#include "core/schedule.hpp"
#include "netlist/random_circuits.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace lbnn {
namespace {

Netlist prepared(Netlist nl, Level pad_to) {
  nl = optimize(nl);
  nl = tech_map(nl, CellLibrary::lut4_full());
  nl = eliminate_dead(nl);
  return balance_paths(nl, pad_to);
}

/// Structural checks every schedule must satisfy, for either sharing mode:
///  * each alive MFG has at least one instance; band roots exactly one
///  * chains are contiguous bottom-up level ranges
///  * producers are scheduled no later than consumers
///  * per-(LPV, lane, wavefront) no two writers collide
void check_schedule(const MfgForest& forest, const Schedule& sched,
                    const LpuConfig& cfg) {
  std::set<MfgId> instantiated;
  for (const auto& inst : sched.instances) {
    ASSERT_TRUE(forest.alive(inst.mfg));
    instantiated.insert(inst.mfg);
  }
  for (const MfgId id : forest.alive_ids()) {
    ASSERT_TRUE(instantiated.count(id) == 1) << "MFG " << id << " never scheduled";
  }

  // Chains: consecutive instances stack ranges exactly.
  for (const auto& wave : sched.wavefronts) {
    for (std::size_t i = 1; i < wave.size(); ++i) {
      const Mfg& below = forest.at(sched.instances[wave[i - 1]].mfg);
      const Mfg& above = forest.at(sched.instances[wave[i]].mfg);
      EXPECT_EQ(below.top + 1, above.bottom);
    }
  }

  // Producer ordering and lane collision detection.
  const std::uint32_t n = cfg.n;
  std::map<std::tuple<std::uint32_t, std::uint32_t, Lane>, std::uint32_t> writers;
  for (const auto& inst : sched.instances) {
    const Mfg& g = forest.at(inst.mfg);
    const std::uint32_t band = static_cast<std::uint32_t>(g.bottom) / n;
    for (std::size_t i = 0; i < g.levels.size(); ++i) {
      const std::uint32_t lpv =
          static_cast<std::uint32_t>(g.bottom) + static_cast<std::uint32_t>(i) -
          band * n;
      ASSERT_EQ(inst.lanes.lanes[i].size(), g.levels[i].size());
      std::set<Lane> used_this_level;
      for (const Lane lane : inst.lanes.lanes[i]) {
        ASSERT_LT(lane, cfg.m);
        EXPECT_TRUE(used_this_level.insert(lane).second)
            << "duplicate lane within a level";
        const auto key = std::make_tuple(inst.wavefront, lpv, lane);
        const auto [it, fresh] = writers.emplace(key, inst.mfg);
        EXPECT_TRUE(fresh) << "two nodes share (wavefront, LPV, lane)";
      }
    }
    for (const auto& [node, pinst] : inst.producer_instance) {
      EXPECT_LE(sched.instances[pinst].wavefront, inst.wavefront);
    }
  }
}

MfgForest make_forest(const Netlist& nl, std::size_t m, std::size_t band) {
  PartitionOptions opt;
  opt.m = m;
  opt.band = band;
  return partition(nl, opt);
}

TEST(Schedule, SharedModeBasics) {
  Rng gen(1);
  const Netlist nl = prepared(random_tree(32, gen), 7);
  LpuConfig cfg;
  cfg.m = 8;
  cfg.n = 8;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  const Schedule s = build_schedule(forest, cfg, SharingMode::kShared);
  check_schedule(forest, s, cfg);
  EXPECT_EQ(s.stats.duplicates, 0u);
  EXPECT_EQ(s.stats.instances, forest.num_alive());
}

TEST(Schedule, TreeModeDuplicatesSharedChildren) {
  Rng gen(2);
  const Netlist nl = prepared(reconvergent_grid(10, 6, gen), 7);
  LpuConfig cfg;
  cfg.m = 8;
  cfg.n = 8;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  const Schedule s = build_schedule(forest, cfg, SharingMode::kTree);
  check_schedule(forest, s, cfg);
  // Tree mode duplicates exactly the MFGs with several in-band parents.
  std::map<MfgId, int> parent_count;
  for (const MfgId id : forest.alive_ids()) {
    for (const MfgId c : forest.children_of(id)) {
      const bool same_band = static_cast<std::uint32_t>(forest.at(c).bottom) / cfg.n ==
                             static_cast<std::uint32_t>(forest.at(id).bottom) / cfg.n;
      if (same_band) ++parent_count[c];
    }
  }
  std::size_t shared = 0;
  for (const auto& [mfg, count] : parent_count) {
    if (count > 1) ++shared;
  }
  if (shared > 0) {
    EXPECT_GT(s.stats.duplicates, 0u);
  } else {
    EXPECT_EQ(s.stats.duplicates, 0u);
  }
  EXPECT_EQ(s.stats.instances, forest.num_alive() + s.stats.duplicates);
}

TEST(Schedule, ChainingHappens) {
  Rng gen(3);
  const Netlist nl = prepared(random_tree(64, gen), 7);
  LpuConfig cfg;
  cfg.m = 8;
  cfg.n = 8;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  merge_mfgs(forest, cfg.m);
  const Schedule s = build_schedule(forest, cfg, SharingMode::kShared);
  check_schedule(forest, s, cfg);
  EXPECT_GT(s.stats.chained_mfgs, 0u);
  EXPECT_LT(s.stats.wavefronts, s.stats.instances);
}

TEST(Schedule, BandsCreateBubbles) {
  // Depth 12 on a 4-LPV machine: 3 bands; feedback timing forces bubbles.
  Rng gen(4);
  const Netlist nl = prepared(random_tree(64, gen), 11);
  LpuConfig cfg;
  cfg.m = 16;
  cfg.n = 4;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  const Schedule s = build_schedule(forest, cfg, SharingMode::kShared);
  check_schedule(forest, s, cfg);
  EXPECT_EQ(s.stats.bands, 3u);
  EXPECT_GT(s.stats.bubbles, 0u);
  // Feedback timing: every band-boundary consumer fires > n-1 wavefronts
  // after its producer (checked end-to-end by the simulator too).
  for (const auto& inst : s.instances) {
    const Mfg& g = forest.at(inst.mfg);
    if (g.bottom == 0 || static_cast<std::uint32_t>(g.bottom) % cfg.n != 0) continue;
    for (const NodeId y : g.external_inputs) {
      const auto it = s.band_root_instance.find(forest.producer_of(y));
      ASSERT_NE(it, s.band_root_instance.end());
      EXPECT_GT(inst.wavefront, s.instances[it->second].wavefront + cfg.n - 1);
    }
  }
}

TEST(Schedule, InstanceBudgetEnforced) {
  Rng gen(5);
  const Netlist nl = prepared(reconvergent_grid(12, 7, gen), 7);
  LpuConfig cfg;
  cfg.m = 6;
  cfg.n = 8;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  EXPECT_THROW(build_schedule(forest, cfg, SharingMode::kTree, 4), CompileError);
}

TEST(Schedule, MergeReducesWavefronts) {
  Rng gen(6);
  const Netlist nl = prepared(reconvergent_grid(12, 6, gen), 7);
  LpuConfig cfg;
  cfg.m = 8;
  cfg.n = 8;
  MfgForest plain = make_forest(nl, cfg.m, cfg.n);
  MfgForest merged = make_forest(nl, cfg.m, cfg.n);
  merge_mfgs(merged, cfg.m);
  const Schedule sp = build_schedule(plain, cfg, SharingMode::kTree);
  const Schedule sm = build_schedule(merged, cfg, SharingMode::kTree);
  EXPECT_LE(sm.stats.wavefronts, sp.stats.wavefronts);
}

TEST(Schedule, BandRootInstancesUnique) {
  Rng gen(7);
  const Netlist nl = prepared(random_tree(48, gen), 11);
  LpuConfig cfg;
  cfg.m = 8;
  cfg.n = 4;
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  const Schedule s = build_schedule(forest, cfg, SharingMode::kTree);
  // Band roots (feedback producers / PO producers) must have exactly one
  // instance even in tree mode.
  std::map<MfgId, int> count;
  for (const auto& inst : s.instances) ++count[inst.mfg];
  for (const auto& [mfg, root_inst] : s.band_root_instance) {
    EXPECT_EQ(count[mfg], 1) << "band root MFG duplicated";
    EXPECT_EQ(s.instances[root_inst].mfg, mfg);
  }
}

class ScheduleProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleProperty, BothModesValidAcrossShapes) {
  const auto [seed, m, n] = GetParam();
  Rng gen(static_cast<std::uint64_t>(seed));
  const Level pad = static_cast<Level>(n - 1 + n * (seed % 2));  // 1 or 2 bands
  const Netlist nl = prepared(reconvergent_grid(10, 5, gen), pad);
  LpuConfig cfg;
  cfg.m = static_cast<std::uint32_t>(m);
  cfg.n = static_cast<std::uint32_t>(n);
  MfgForest forest = make_forest(nl, cfg.m, cfg.n);
  merge_mfgs(forest, cfg.m);
  const Schedule tree = build_schedule(forest, cfg, SharingMode::kTree);
  check_schedule(forest, tree, cfg);
  try {
    const Schedule shared = build_schedule(forest, cfg, SharingMode::kShared);
    check_schedule(forest, shared, cfg);
    // Shared mode never uses more instances than tree mode.
    EXPECT_LE(shared.stats.instances, tree.stats.instances);
  } catch (const CompileError&) {
    // Shared mode may legitimately run out of snapshot lanes.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleProperty,
    ::testing::Combine(::testing::Range(1, 7), ::testing::Values(6, 10, 16),
                       ::testing::Values(4, 8, 12)));

TEST(Compiler, ReportsTreeFallback) {
  // A workload dense enough that shared scheduling fails at full width.
  Rng gen(8);
  const Netlist nl = reconvergent_grid(12, 8, gen);
  CompileOptions opt;
  opt.lpu.m = 4;
  opt.lpu.n = 8;
  const CompileResult res = compile(nl, opt);
  // Either shared worked (fine) or the report must show the fallback.
  if (res.report.tree_sharing) {
    EXPECT_GT(res.report.instances, res.report.mfgs_after_merge);
  }
  EXPECT_GE(res.report.effective_m, 2u);
}

}  // namespace
}  // namespace lbnn
