// Differential harness for the bit-sliced execution kernels.
//
// The contract under test (simulator.hpp): kScalar, kWord64 and kAvx2 — and
// within the bit-sliced path, the compiled op stream and the LBNN_NO_FUSE
// interpreter — are bit-exact for every program, batch width, and batch
// content, including WHERE they throw: SimCancelled lands at the same
// wavefront boundary and SimError carries the same message from every
// kernel. Programs come from the real pipeline (netlist/random_circuits ×
// the compiler), widths deliberately straddle the 64-bit word boundary, and
// every output is additionally checked against the netlist-level reference
// simulator, so a bug that both LpuSimulator kernels share still fails.
//
// Seeded like test_admission_fuzz: three pinned seeds per-PR, and the
// nightly LBNN_FUZZ_SEEDS=<n> sweep widens to n extra seeds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "aot/artifact.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/engine.hpp"

namespace lbnn {
namespace {

/// Scoped environment override (gtest runs tests in one thread, so plain
/// setenv/unsetenv is safe here; the simulator reads env at construction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

/// Scoped environment clear: removes a variable for the current scope and
/// restores its previous value on exit. The differential harness pins each
/// kernel itself, so an ambient LBNN_FORCE_SCALAR (CI's forced-scalar matrix
/// leg exports it process-wide) must not collapse the whole matrix to
/// scalar-vs-scalar — that pin is covered explicitly by KernelResolution.
class ScopedEnvClear {
 public:
  explicit ScopedEnvClear(const char* name) : name_(name) {
    if (const char* v = ::getenv(name)) {
      saved_ = v;
      had_ = true;
    }
    ::unsetenv(name);
  }
  ~ScopedEnvClear() {
    if (had_) ::setenv(name_, saved_.c_str(), 1);
  }
  ScopedEnvClear(const ScopedEnvClear&) = delete;
  ScopedEnvClear& operator=(const ScopedEnvClear&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

struct DiffCase {
  Netlist nl;
  CompileResult res;
};

DiffCase random_case(std::uint64_t seed) {
  Rng gen(seed);
  DiffCase c;
  switch (seed % 3) {
    case 0: {
      RandomCircuitSpec spec;
      spec.num_inputs = 4 + gen.next_below(12);
      spec.num_gates = 30 + gen.next_below(200);
      spec.num_outputs = 1 + gen.next_below(8);
      c.nl = random_dag(spec, gen);
      break;
    }
    case 1:
      c.nl = random_tree(8 + gen.next_below(40), gen);
      break;
    default:
      c.nl = reconvergent_grid(6 + gen.next_below(8), 3 + gen.next_below(5), gen);
  }
  CompileOptions opt;
  opt.lpu.m = gen.next_bool() ? 8 : 4;
  opt.lpu.n = gen.next_bool() ? 8 : 4;
  c.res = compile(c.nl, opt);
  return c;
}

/// The direct-threaded AOT artifact for a case, built once per round and
/// diffed at every width alongside the interpreter kernels. (The in-process
/// leg only: the native leg's full matrix — including disk caching and
/// out-of-process compiles — lives in test_aot.cpp, and compiling one .so
/// per fuzz seed here would dominate the suite's runtime.) LBNN_NO_AOT
/// skips the leg entirely — CI's interpreter-only matrix row.
std::shared_ptr<const aot::ProgramArtifact> threaded_artifact(const DiffCase& c) {
  if (const char* v = std::getenv("LBNN_NO_AOT");
      v != nullptr && v[0] != '\0' && v[0] != '0') {
    return nullptr;
  }
  aot::AotOptions opt;
  opt.allow_native = false;
  return std::make_shared<const aot::ProgramArtifact>(
      aot::compile_artifact(c.res.program, opt));
}

/// Run one program at one width through every kernel and compare everything
/// observable: outputs (also against the netlist reference) and counters.
void diff_at_width(const DiffCase& c, std::size_t width, Rng& rng,
                   const std::shared_ptr<const aot::ProgramArtifact>& aot_art =
                       nullptr) {
  SCOPED_TRACE("width " + std::to_string(width));
  ScopedEnvClear no_ambient_pin("LBNN_FORCE_SCALAR");
  const std::vector<BitVec> in = random_inputs(c.nl, width, rng);
  const std::vector<BitVec> want = simulate(c.nl, in);

  LpuSimulator scalar(c.res.program, /*simd=*/false);
  ASSERT_EQ(scalar.kernel(), SimdKernel::kScalar);
  const std::vector<BitVec> scalar_out = scalar.run(in);
  EXPECT_EQ(scalar_out, want);

  LpuSimulator sliced(c.res.program);  // compiled stream, AVX2 when present
  EXPECT_NE(sliced.kernel(), SimdKernel::kScalar);
  EXPECT_EQ(sliced.run(in), scalar_out);

  {
    // The un-fused interpretive bit-sliced loop is its own code path.
    ScopedEnv no_fuse("LBNN_NO_FUSE", "1");
    LpuSimulator interp(c.res.program);
    EXPECT_EQ(interp.run(in), scalar_out);
  }
  if (LpuSimulator::cpu_has_avx2()) {
    // Pin the portable word64 loop even where AVX2 would be picked.
    ScopedEnv no_avx2("LBNN_NO_AVX2", "1");
    LpuSimulator word64(c.res.program);
    ASSERT_EQ(word64.kernel(), SimdKernel::kWord64);
    EXPECT_EQ(word64.run(in), scalar_out);
  }
  if (aot_art != nullptr) {
    aot::AotExecutor aot_exec(c.res.program, aot_art);
    EXPECT_EQ(aot_exec.run(in), scalar_out);
    const SimCounters& ac = aot_exec.counters();
    const SimCounters& sc0 = scalar.counters();
    EXPECT_EQ(sc0.wavefronts, ac.wavefronts);
    EXPECT_EQ(sc0.lpe_computes, ac.lpe_computes);
    EXPECT_EQ(sc0.route_writes, ac.route_writes);
    EXPECT_EQ(sc0.input_reads, ac.input_reads);
    EXPECT_EQ(sc0.feedback_words, ac.feedback_words);
    EXPECT_EQ(sc0.macro_cycles, ac.macro_cycles);
  }

  const SimCounters& sc = scalar.counters();
  const SimCounters& vc = sliced.counters();
  EXPECT_EQ(sc.wavefronts, vc.wavefronts);
  EXPECT_EQ(sc.lpe_computes, vc.lpe_computes);
  EXPECT_EQ(sc.route_writes, vc.route_writes);
  EXPECT_EQ(sc.input_reads, vc.input_reads);
  EXPECT_EQ(sc.feedback_words, vc.feedback_words);
  EXPECT_EQ(sc.macro_cycles, vc.macro_cycles);
}

void run_diff_round(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const DiffCase c = random_case(seed);
  const auto aot_art = threaded_artifact(c);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  // Fixed word-boundary stress widths plus a random one per round.
  const std::size_t widths[] = {1, 63, 64, 65, 2 + rng.next_below(250)};
  for (const std::size_t w : widths) diff_at_width(c, w, rng, aot_art);
}

TEST(SimdDiff, FuzzSeed1) { run_diff_round(21); }
TEST(SimdDiff, FuzzSeed2) { run_diff_round(22); }
TEST(SimdDiff, FuzzSeed3) { run_diff_round(23); }

// Depth circulation: a program deep enough that values leave through the
// output buffer's feedback region and re-enter in a later band. The
// feedback tables are a separate code path in every kernel (and compile to
// dedicated rows in the op stream), so the differential sweep must include
// bands > 1 programs by construction, not by luck.
TEST(SimdDiff, FeedbackPathPrograms) {
  Rng gen(31);
  const Netlist nl = random_tree(48, gen);
  CompileOptions opt;
  opt.lpu.m = 4;
  opt.lpu.n = 4;
  DiffCase c{nl, compile(nl, opt)};
  ASSERT_GT(c.res.report.bands, 1u) << "case no longer exercises feedback";
  const auto aot_art = threaded_artifact(c);
  Rng rng(32);
  for (const std::size_t w : {1u, 64u, 65u, 200u}) {
    diff_at_width(c, w, rng, aot_art);
  }
}

// A cancel must surface as SimCancelled at the SAME wavefront boundary —
// message included — no matter the kernel: the serving runtime's hedging
// logs and trace stamps would otherwise depend on EngineOptions::simd. The
// instr hook trips the flag at a mid-run wavefront; every kernel polls at
// the next boundary.
TEST(SimdDiff, CancelLandsAtSameWavefrontBoundary) {
  Rng gen(41);
  const DiffCase c = random_case(41);
  const std::uint32_t waves = c.res.program.num_wavefronts;
  ASSERT_GE(waves, 2u);
  const std::uint32_t trip = waves / 2;
  Rng rng(42);
  const std::vector<BitVec> in = random_inputs(c.nl, 96, rng);

  auto cancelled_what = [&](bool simd) {
    LpuSimulator sim(c.res.program, simd);
    std::atomic<bool> cancel{false};
    sim.set_instr_hook([&](std::uint32_t w, std::uint32_t, const LpvInstr&) {
      if (w == trip) cancel.store(true);
    });
    std::string what;
    try {
      sim.run(in, &cancel);
    } catch (const SimCancelled& e) {
      what = e.what();
    }
    EXPECT_FALSE(what.empty()) << "run was not cancelled";
    // A cancelled simulator is immediately reusable, and the interrupted
    // run must leak nothing into the next one.
    sim.set_instr_hook(nullptr);
    EXPECT_EQ(sim.run(in), simulate(c.nl, in));
    return what;
  };

  const std::string scalar_what = cancelled_what(/*simd=*/false);
  const std::string sliced_what = cancelled_what(/*simd=*/true);
  EXPECT_EQ(scalar_what, sliced_what);
  EXPECT_NE(scalar_what.find("wavefront " + std::to_string(trip + 1)),
            std::string::npos)
      << scalar_what;
}

TEST(SimdDiff, CancelBeforeFirstWavefront) {
  const DiffCase c = random_case(51);
  Rng rng(52);
  const std::vector<BitVec> in = random_inputs(c.nl, 64, rng);
  for (const bool simd : {false, true}) {
    LpuSimulator sim(c.res.program, simd);
    std::atomic<bool> cancel{true};
    try {
      sim.run(in, &cancel);
      FAIL() << "expected SimCancelled";
    } catch (const SimCancelled& e) {
      EXPECT_NE(std::string(e.what()).find("wavefront 0"), std::string::npos);
    }
  }
}

// Invalid programs throw SimError with the same message from every kernel.
// The bit-sliced path discovers these at construction and REPLAYS the throw
// mid-run (the compiled-error path) — the message and the partial execution
// before it must still match the interpreter's.
TEST(SimdDiff, ErrorMessagesMatchAcrossKernels) {
  // lane0 <- in0, lane1 <- in1, LPV1 ANDs them (test_lpu_sim's tiny case).
  Program p;
  p.cfg.m = 2;
  p.cfg.n = 2;
  p.cfg.word_width = 8;
  p.num_wavefronts = 1;
  p.num_primary_inputs = 2;
  p.num_primary_outputs = 1;
  p.input_layout = {0, 1};
  p.instr.assign(1, std::vector<LpvInstr>(2));
  p.instr[0][0].routes = {{0, {SrcSel::Kind::kInput, 0}},
                          {2, {SrcSel::Kind::kInput, 1}}};
  p.instr[0][0].computes = {{0, TruthTable4::from_op(GateOp::kBuf)},
                            {1, TruthTable4::from_op(GateOp::kBuf)}};
  p.instr[0][1].routes = {{0, {SrcSel::Kind::kPrevLane, 0}},
                          {1, {SrcSel::Kind::kPrevLane, 1}}};
  p.instr[0][1].computes = {{0, TruthTable4::from_op(GateOp::kAnd)}};
  p.output_taps = {{0, 0, 0}};

  auto diff_error = [](const Program& bad) {
    std::string scalar_what, sliced_what;
    for (const bool simd : {false, true}) {
      LpuSimulator sim(bad, simd);
      try {
        sim.run({BitVec(8), BitVec(8)});
      } catch (const SimError& e) {
        (simd ? sliced_what : scalar_what) = e.what();
      }
    }
    EXPECT_FALSE(scalar_what.empty()) << "scalar run did not throw";
    EXPECT_EQ(scalar_what, sliced_what);
  };

  {
    Program bad = p;  // AND reads an invalid B operand
    bad.instr[0][1].routes.pop_back();
    diff_error(bad);
  }
  {
    Program bad = p;  // feedback read before any write
    bad.instr[0][1].routes[0] = {0, {SrcSel::Kind::kFeedback, 0}};
    diff_error(bad);
  }
  {
    Program bad = p;  // tap of a lane LPV1 never computes
    bad.output_taps = {{0, 1, 0}};
    diff_error(bad);
  }
  {
    Program bad = p;  // primary output never produced
    bad.output_taps.clear();
    diff_error(bad);
  }
}

TEST(SimdDiff, KernelResolution) {
  EXPECT_EQ(LpuSimulator::resolve_kernel(false), SimdKernel::kScalar);
  {
    ScopedEnv force("LBNN_FORCE_SCALAR", "1");
    EXPECT_EQ(LpuSimulator::resolve_kernel(true), SimdKernel::kScalar);
  }
  {
    ScopedEnv no_avx2("LBNN_NO_AVX2", "1");
    EXPECT_NE(LpuSimulator::resolve_kernel(true), SimdKernel::kAvx2);
  }
  const SimdKernel k = LpuSimulator::resolve_kernel(true);
  if (LpuSimulator::cpu_has_avx2()) {
    EXPECT_EQ(k, SimdKernel::kAvx2);
  } else {
    EXPECT_EQ(k, SimdKernel::kWord64);
  }
  EXPECT_NE(to_string(k), std::string("?"));
}

// Engine-level: EngineOptions::simd must be invisible in results. Same
// model, same lanes, one engine per mode — every future must agree with the
// netlist reference.
TEST(SimdDiff, EngineResultsMatchScalarEngine) {
  Rng gen(61);
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 120;
  spec.num_outputs = 6;
  const Netlist nl = random_dag(spec, gen);
  constexpr std::size_t kLanes = 64;

  Rng lane_rng(62);
  std::vector<std::vector<bool>> lane_in(kLanes);
  for (auto& li : lane_in) {
    li.resize(nl.num_inputs());
    for (std::size_t i = 0; i < li.size(); ++i) li[i] = lane_rng.next_bool();
  }

  for (const bool simd : {false, true}) {
    SCOPED_TRACE(simd ? "simd engine" : "scalar engine");
    runtime::EngineOptions eopt;
    eopt.num_workers = 4;
    eopt.batch_timeout = std::chrono::hours(1);  // seal on full lanes only
    eopt.compile.lpu.word_width = static_cast<std::uint32_t>(kLanes);
    eopt.simd = simd;
    runtime::Engine engine(eopt);
    const runtime::ModelHandle h = engine.load(simd ? "m1" : "m0", nl);
    for (int round = 0; round < 2; ++round) {
      std::vector<std::future<std::vector<bool>>> futs;
      for (std::size_t i = 0; i < kLanes; ++i) {
        futs.push_back(engine.submit(h, lane_in[i]));
      }
      for (std::size_t i = 0; i < kLanes; ++i) {
        EXPECT_EQ(futs[i].get(), simulate_scalar(nl, lane_in[i]));
      }
    }
    engine.shutdown();
  }
}

// Nightly sweep hook, same contract as test_admission_fuzz: the scheduled CI
// job sets LBNN_FUZZ_SEEDS=<n>; interactive and per-PR runs skip.
TEST(SimdDiff, EnvSeedSweep) {
  const char* env = std::getenv("LBNN_FUZZ_SEEDS");
  if (env == nullptr) {
    GTEST_SKIP() << "set LBNN_FUZZ_SEEDS=<n> to sweep n extra seeds";
  }
  const long n = std::atol(env);
  for (long s = 1; s <= n; ++s) run_diff_round(static_cast<std::uint64_t>(200 + s));
}

}  // namespace
}  // namespace lbnn
