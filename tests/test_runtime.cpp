#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/batcher.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"
#include "runtime/program_cache.hpp"
#include "runtime/serve_stats.hpp"

namespace lbnn::runtime {
namespace {

CompileOptions small_lpu() {
  CompileOptions opt;
  opt.lpu.m = 8;
  opt.lpu.n = 8;
  return opt;  // word width 2m = 16 lanes
}

std::vector<bool> sample_of(const std::vector<BitVec>& packed, std::size_t lane) {
  std::vector<bool> bits(packed.size());
  for (std::size_t pi = 0; pi < packed.size(); ++pi) bits[pi] = packed[pi].get(lane);
  return bits;
}

TEST(Engine, BitExactVsDirectSimulator) {
  Rng gen(11);
  const Netlist nl = reconvergent_grid(12, 6, gen);
  const CompileOptions opt = small_lpu();

  const CompileResult direct = compile(nl, opt);
  LpuSimulator sim(direct.program);
  Rng rng(12);
  const std::size_t lanes = direct.program.cfg.effective_word_width();
  const auto inputs = random_inputs(nl, lanes, rng);
  const auto expect = sim.run(inputs);

  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.compile = opt;
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);
  EXPECT_TRUE(grid.loaded());
  EXPECT_EQ(grid.name(), "grid");
  EXPECT_EQ(grid.num_inputs(), nl.num_inputs());
  EXPECT_EQ(grid.num_outputs(), nl.num_outputs());

  std::vector<std::future<std::vector<bool>>> futs;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(engine.submit(grid, sample_of(inputs, lane)));
  }
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const auto out = futs[lane].get();
    ASSERT_EQ(out.size(), nl.num_outputs());
    for (std::size_t po = 0; po < out.size(); ++po) {
      EXPECT_EQ(out[po], expect[po].get(lane)) << "lane " << lane << " po " << po;
    }
  }
}

TEST(Engine, ParallelAssemblyBitExact) {
  Rng gen(21);
  RandomCircuitSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = 80;
  spec.num_outputs = 6;
  const Netlist nl = random_dag(spec, gen);

  EngineOptions eopt;
  eopt.num_workers = 3;
  eopt.compile = small_lpu();
  Engine engine(eopt);
  const ModelHandle dag = engine.load_parallel("dag", nl, 3);

  Rng rng(22);
  for (int round = 0; round < 4; ++round) {
    const auto inputs = random_inputs(nl, 16, rng);
    std::vector<std::future<std::vector<bool>>> futs;
    for (std::size_t lane = 0; lane < 16; ++lane) {
      futs.push_back(engine.submit(dag, sample_of(inputs, lane)));
    }
    const auto expect = simulate(nl, inputs);
    for (std::size_t lane = 0; lane < 16; ++lane) {
      const auto out = futs[lane].get();
      for (std::size_t po = 0; po < out.size(); ++po) {
        EXPECT_EQ(out[po], expect[po].get(lane));
      }
    }
  }
}

TEST(Engine, ConcurrentSubmitStress) {
  Rng gen(31);
  const Netlist nl = reconvergent_grid(10, 5, gen);
  EngineOptions eopt;
  eopt.num_workers = 4;
  eopt.batch_timeout = std::chrono::microseconds(100);
  eopt.compile = small_lpu();
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<bool> bits(nl.num_inputs());
        for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
        const auto expect = simulate_scalar(nl, bits);
        const auto got = engine.submit(grid, bits).get();
        if (got != expect) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(rep.batches, 1u);
  EXPECT_LE(rep.p50_latency_us, rep.p99_latency_us);
  // The per-model breakdown carries the whole load (only one model).
  ASSERT_EQ(rep.per_model.size(), 1u);
  EXPECT_EQ(rep.per_model[0].name, "grid");
  EXPECT_EQ(rep.per_model[0].requests, rep.requests);
  EXPECT_GE(rep.per_model[0].queue_depth_hwm, 1u);
}

TEST(Engine, DrainAnswersEverything) {
  Rng gen(41);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt;
  eopt.num_workers = 2;
  // Long timeout: without drain() the last partial batch would sit for 50 ms.
  eopt.batch_timeout = std::chrono::milliseconds(50);
  eopt.compile = small_lpu();
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 5; ++i) {
    futs.push_back(engine.submit(grid, std::vector<bool>(nl.num_inputs(), i % 2 != 0)));
  }
  engine.drain();
  for (auto& f : futs) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(Engine, SubmitErrors) {
  Rng gen(51);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  EXPECT_THROW(engine.submit(ModelHandle(), std::vector<bool>(nl.num_inputs())),
               Error);
  EXPECT_THROW(ModelHandle().name(), Error);  // empty-handle accessors throw
  EXPECT_FALSE(ModelHandle().loaded());
  EXPECT_THROW(engine.submit(grid, std::vector<bool>(nl.num_inputs() + 3)), Error);
  engine.shutdown();
  EXPECT_THROW(engine.submit(grid, std::vector<bool>(nl.num_inputs())), Error);
}

TEST(Engine, HandlesAreEngineSpecific) {
  Rng gen(52);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  Engine a(eopt);
  Engine b(eopt);
  const ModelHandle on_a = a.load("grid", nl);
  EXPECT_THROW(b.submit(on_a, std::vector<bool>(nl.num_inputs())), Error);
  std::future<std::vector<bool>> fut;
  EXPECT_THROW(b.try_submit(on_a, std::vector<bool>(nl.num_inputs()), &fut), Error);
}

TEST(Batcher, SealsWhenLanesFill) {
  ManualClock clock;
  std::vector<std::size_t> batch_sizes;
  Batcher batcher(clock, 2, 4, 1, std::chrono::hours(1),
                  [&](Batch&& b) { batch_sizes.push_back(b.requests.size()); });
  std::vector<std::future<std::vector<bool>>> futs;
  for (int i = 0; i < 9; ++i) futs.push_back(batcher.submit({true, false}));
  // 9 submits at capacity 4: two full batches sealed inline, one open.
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4}));
  EXPECT_EQ(batcher.open_count(), 1u);
  EXPECT_TRUE(batcher.deadline().has_value());
  batcher.flush();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 1}));
  EXPECT_EQ(batcher.open_count(), 0u);
  EXPECT_FALSE(batcher.deadline().has_value());
}

// The seal deadline comes from the injected clock, not the wall clock: a
// partial batch seals exactly max_wait after its first request, driven purely
// by ManualClock::advance — no real sleeping anywhere.
TEST(Batcher, SealsOnTimeoutManualClock) {
  ManualClock clock;
  std::vector<std::size_t> batch_sizes;
  Batcher batcher(clock, 1, 8, 1, std::chrono::microseconds(500),
                  [&](Batch&& b) { batch_sizes.push_back(b.requests.size()); });
  auto fut = batcher.submit({true});
  const auto deadline = batcher.deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, clock.now() + std::chrono::microseconds(500));

  // One tick short of the timeout: nothing seals.
  clock.advance(std::chrono::microseconds(499));
  batcher.seal_if_expired(clock.now());
  EXPECT_TRUE(batch_sizes.empty());
  // A second request joins the SAME batch and must not push the deadline out:
  // the seal timer runs from the OLDEST request.
  auto fut2 = batcher.submit({false});
  EXPECT_EQ(batcher.deadline(), deadline);
  // The final tick: the partial batch (both requests) seals.
  clock.advance(std::chrono::microseconds(1));
  batcher.seal_if_expired(clock.now());
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2}));
  EXPECT_FALSE(batcher.deadline().has_value());
}

// Lane-full sealing racing the timeout: when the batch fills at the very
// moment its deadline expires, the inline lane-full seal wins and the
// (logically concurrent) timer call finds nothing left to seal — the batch is
// delivered exactly once.
TEST(Batcher, SealOnLaneFullRacesTimeout) {
  ManualClock clock;
  std::vector<std::size_t> batch_sizes;
  Batcher batcher(clock, 1, 2, 1, std::chrono::microseconds(100),
                  [&](Batch&& b) { batch_sizes.push_back(b.requests.size()); });
  auto f1 = batcher.submit({true});
  // Time reaches the deadline exactly as the filling request arrives...
  clock.advance(std::chrono::microseconds(100));
  auto f2 = batcher.submit({false});  // lane-full: seals inline
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2}));
  // ...so the timer's expiry sweep must be a no-op, not a double seal.
  batcher.seal_if_expired(clock.now());
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2}));
  EXPECT_EQ(batcher.open_count(), 0u);
}

// Zero max_wait: every open batch is born expired — the first expiry sweep
// after a submit seals it, even with no time passing at all.
TEST(Batcher, ZeroTimeoutSealsImmediately) {
  ManualClock clock;
  std::vector<std::size_t> batch_sizes;
  Batcher batcher(clock, 1, 8, 1, std::chrono::microseconds(0),
                  [&](Batch&& b) { batch_sizes.push_back(b.requests.size()); });
  bool opened = false;
  auto f1 = batcher.submit({true}, kNoDeadline, &opened);
  EXPECT_TRUE(opened);  // a deadline (now + 0) exists and is already due
  ASSERT_TRUE(batcher.deadline().has_value());
  batcher.seal_if_expired(clock.now());  // no advance needed
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{1}));
  // Each subsequent request opens (and immediately expires) its own batch.
  auto f2 = batcher.submit({false});
  batcher.seal_if_expired(clock.now());
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{1, 1}));
}

// Request deadlines ride through the batcher untouched: stamped on the
// Request for the engine's dequeue-time expiry handling.
TEST(Batcher, StampsRequestDeadlines) {
  ManualClock clock;
  std::vector<Request> sealed;
  Batcher batcher(clock, 1, 2, 1, std::chrono::hours(1), [&](Batch&& b) {
    for (auto& r : b.requests) sealed.push_back(std::move(r));
  });
  const TimePoint slo = clock.now() + std::chrono::milliseconds(5);
  auto f1 = batcher.submit({true}, slo);
  auto f2 = batcher.submit({false});  // no deadline
  ASSERT_EQ(sealed.size(), 2u);
  EXPECT_EQ(sealed[0].deadline, slo);
  EXPECT_EQ(sealed[1].deadline, kNoDeadline);
  EXPECT_EQ(sealed[0].enqueued, clock.now());
}

TEST(Batcher, RejectsWrongArity) {
  ManualClock clock;
  Batcher batcher(clock, 3, 4, 1, std::chrono::hours(1), [](Batch&&) {});
  EXPECT_THROW(batcher.submit({true, false}), Error);
}

TEST(Batcher, PackUnpackRoundTrip) {
  Rng rng(61);
  std::vector<Request> requests(5);
  for (auto& req : requests) {
    req.inputs.resize(7);
    for (std::size_t pi = 0; pi < 7; ++pi) req.inputs[pi] = rng.next_bool();
  }
  const auto packed = pack_requests(requests, 7);
  ASSERT_EQ(packed.size(), 7u);
  for (const auto& word : packed) EXPECT_EQ(word.width(), 5u);
  for (std::size_t lane = 0; lane < 5; ++lane) {
    for (std::size_t pi = 0; pi < 7; ++pi) {
      EXPECT_EQ(packed[pi].get(lane), requests[lane].inputs[pi]);
    }
  }
  // Treat the packed words as outputs: unpack must invert pack.
  const auto unpacked = unpack_outputs(packed, 5);
  for (std::size_t lane = 0; lane < 5; ++lane) {
    EXPECT_EQ(unpacked[lane], requests[lane].inputs);
  }
}

TEST(ProgramCache, HitsMissesEvictions) {
  Rng gen(71);
  const Netlist a = reconvergent_grid(8, 4, gen);
  const Netlist b = reconvergent_grid(8, 5, gen);
  const Netlist c = reconvergent_grid(8, 6, gen);
  const CompileOptions opt = small_lpu();

  ProgramCache cache(2);
  const auto a1 = cache.get_or_compile(a, opt);
  const auto a2 = cache.get_or_compile(a, opt);
  EXPECT_EQ(a1.get(), a2.get());  // hit returns the same artifact
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);

  cache.get_or_compile(b, opt);
  cache.get_or_compile(c, opt);  // evicts a (LRU)
  s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);

  // `a` was evicted but a1 stays valid (shared ownership); re-get recompiles.
  const auto a3 = cache.get_or_compile(a, opt);
  EXPECT_NE(a1.get(), a3.get());
  EXPECT_EQ(a1->program.num_wavefronts, a3->program.num_wavefronts);
  LpuSimulator sanity(a1->program);  // evicted artifact still runs
  sanity.run(random_inputs(a, 8, gen));
}

TEST(ProgramCache, CapacityZeroIsPassThrough) {
  Rng gen(72);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  const CompileOptions opt = small_lpu();

  ProgramCache cache(0);
  const auto first = cache.get_or_compile(nl, opt);
  const auto second = cache.get_or_compile(nl, opt);
  // Nothing is retained: both loads compile, neither evicts.
  EXPECT_NE(first.get(), second.get());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 0u);
  // Both artifacts are fully usable (the caller owns them).
  LpuSimulator sim(first->program);
  sim.run(random_inputs(nl, 4, gen));
  EXPECT_EQ(first->program.num_wavefronts, second->program.num_wavefronts);
}

TEST(ProgramCache, ExplicitEraseCountsAsEviction) {
  Rng gen(73);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  const CompileOptions opt = small_lpu();
  ProgramCache cache(4);
  const auto kept = cache.get_or_compile(nl, opt);
  const std::uint64_t key = fingerprint(nl, opt);
  EXPECT_TRUE(cache.erase(key));
  EXPECT_FALSE(cache.erase(key));  // already gone
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 0u);
  // The erased artifact stays valid for holders.
  LpuSimulator sim(kept->program);
  sim.run(random_inputs(nl, 4, gen));
}

TEST(ProgramCache, DistinguishesOptionsAndParallelK) {
  Rng gen(81);
  RandomCircuitSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 40;
  spec.num_outputs = 4;
  const Netlist nl = random_dag(spec, gen);
  ProgramCache cache(8);

  CompileOptions opt = small_lpu();
  const auto merged = cache.get_or_compile(nl, opt);
  opt.merge = false;
  const auto unmerged = cache.get_or_compile(nl, opt);
  EXPECT_NE(merged.get(), unmerged.get());

  const auto par2 = cache.get_or_compile_parallel(nl, opt, 2);
  const auto par3 = cache.get_or_compile_parallel(nl, opt, 3);
  const auto par2again = cache.get_or_compile_parallel(nl, opt, 2);
  EXPECT_EQ(par2.get(), par2again.get());
  EXPECT_NE(par2.get(), par3.get());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ProgramCache, FingerprintSensitivity) {
  Rng gen(91);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  const CompileOptions opt = small_lpu();
  CompileOptions opt2 = opt;
  opt2.lpu.n = 16;
  EXPECT_NE(fingerprint(nl, opt), fingerprint(nl, opt2));
  EXPECT_EQ(fingerprint(nl, opt), fingerprint(nl, opt));
}

TEST(LatencyHistogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_us(99.0), 0u);
  for (std::uint64_t us = 1; us <= 1000; ++us) h.record(us);
  EXPECT_EQ(h.count(), 1000u);
  const auto p50 = h.percentile_us(50.0);
  const auto p99 = h.percentile_us(99.0);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, 256u);   // true p50 is 500 -> bucket [512, 1024)
  EXPECT_LE(p99, 2048u);  // true p99 is 990, octave resolution
}

TEST(ServeStats, AggregatesBatchesAndSims) {
  ServeStats stats;
  SimCounters c;
  c.wavefronts = 10;
  c.lpe_computes = 40;
  c.lpe_utilization = 0.5;
  stats.on_sim_run(c);
  stats.on_sim_run(c);
  stats.on_batch(12, 16);
  stats.on_batch(4, 16);
  stats.on_request_done(100);
  const ServeReport rep = stats.report();
  EXPECT_EQ(rep.batches, 2u);
  EXPECT_EQ(rep.samples, 16u);
  EXPECT_EQ(rep.lanes_offered, 32u);
  EXPECT_DOUBLE_EQ(rep.lane_occupancy, 0.5);
  EXPECT_EQ(rep.sim.wavefronts, 20u);
  EXPECT_EQ(rep.sim.lpe_computes, 80u);
  EXPECT_DOUBLE_EQ(rep.sim.lpe_utilization, 0.5);
  EXPECT_EQ(rep.requests, 1u);
}

// Wall-clock-derived figures (rates, goodput) are stamped off the injected
// clock: a ManualClock makes them exact instead of host-speed-dependent.
TEST(ServeStats, RatesAreDeterministicOnManualClock) {
  ManualClock clock;
  ServeStats stats(&clock);
  stats.on_requests_done({100, 200, 300, 400}, /*deadline_met=*/3);
  stats.on_shed();
  stats.on_shed();
  stats.on_expired(5);
  clock.advance(std::chrono::seconds(2));
  const ServeReport rep = stats.report();
  EXPECT_EQ(rep.requests, 4u);
  EXPECT_EQ(rep.shed, 2u);
  EXPECT_EQ(rep.expired, 5u);
  EXPECT_EQ(rep.deadline_met, 3u);
  EXPECT_DOUBLE_EQ(rep.wall_seconds, 2.0);
  EXPECT_DOUBLE_EQ(rep.requests_per_sec, 2.0);
  EXPECT_DOUBLE_EQ(rep.goodput_per_sec, 1.5);
  // reset() re-anchors on the same clock.
  stats.reset();
  clock.advance(std::chrono::seconds(1));
  const ServeReport fresh = stats.report();
  EXPECT_EQ(fresh.requests, 0u);
  EXPECT_EQ(fresh.shed, 0u);
  EXPECT_DOUBLE_EQ(fresh.wall_seconds, 1.0);
}

TEST(ModelStats, PerModelBreakdown) {
  ModelStats stats;
  stats.on_requests_done({100, 200, 400}, /*deadline_met=*/2);
  stats.on_batch(3, 16);
  stats.on_queue_depth(2);
  stats.on_queue_depth(7);
  stats.on_queue_depth(4);  // hwm keeps the peak, not the last sample
  stats.on_shed();
  stats.on_expired(2);
  const ModelReport rep = stats.report();
  EXPECT_EQ(rep.requests, 3u);
  EXPECT_EQ(rep.batches, 1u);
  EXPECT_EQ(rep.samples, 3u);
  EXPECT_EQ(rep.lanes_offered, 16u);
  EXPECT_DOUBLE_EQ(rep.lane_occupancy, 3.0 / 16.0);
  EXPECT_LE(rep.p50_latency_us, rep.p99_latency_us);
  EXPECT_EQ(rep.queue_depth_hwm, 7u);
  EXPECT_EQ(rep.shed, 1u);
  EXPECT_EQ(rep.expired, 2u);
  EXPECT_EQ(rep.deadline_met, 2u);
}

// Engine-level ManualClock integration: a partial batch seals when the TEST
// advances time past batch_timeout — the timekeeper thread sleeps on the
// manual clock, so no real timer is involved and the test never sleeps.
TEST(Engine, ManualClockDrivesBatchTimeout) {
  ManualClock clock;
  Rng gen(55);
  const Netlist nl = reconvergent_grid(8, 4, gen);
  EngineOptions eopt;
  eopt.num_workers = 1;
  eopt.compile = small_lpu();
  eopt.batch_timeout = std::chrono::milliseconds(10);
  eopt.clock = &clock;
  Engine engine(eopt);
  const ModelHandle grid = engine.load("grid", nl);

  auto fut = engine.submit(grid, std::vector<bool>(nl.num_inputs(), true));
  // Partial batch: under a frozen manual clock it can never seal on its own.
  clock.advance(std::chrono::milliseconds(9));
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  // Crossing batch_timeout wakes the timekeeper, seals, runs, resolves.
  clock.advance(std::chrono::milliseconds(1));
  const auto expect =
      simulate_scalar(nl, std::vector<bool>(nl.num_inputs(), true));
  EXPECT_EQ(fut.get(), expect);
  const ServeReport rep = engine.report();
  EXPECT_EQ(rep.requests, 1u);
  EXPECT_EQ(rep.deadline_met, 1u);  // no deadline set: completing counts
}

}  // namespace
}  // namespace lbnn::runtime
