#include <gtest/gtest.h>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace lbnn {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_EQ(v.num_words(), 0u);
}

TEST(BitVec, FillConstructor) {
  BitVec zeros(130, false);
  BitVec ones(130, true);
  EXPECT_EQ(zeros.popcount(), 0u);
  EXPECT_EQ(ones.popcount(), 130u);
  EXPECT_EQ(ones.num_words(), 3u);
}

TEST(BitVec, TailBitsAreMasked) {
  BitVec ones(70, true);
  // Word 1 has only 6 live bits.
  EXPECT_EQ(ones.word(1), (1ull << 6) - 1);
}

TEST(BitVec, SetGet) {
  BitVec v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
}

TEST(BitVec, LogicOps) {
  Rng rng(7);
  const BitVec a = BitVec::random(200, rng);
  const BitVec b = BitVec::random(200, rng);
  const BitVec band = a & b;
  const BitVec bor = a | b;
  const BitVec bxor = a ^ b;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(band.get(i), a.get(i) && b.get(i));
    EXPECT_EQ(bor.get(i), a.get(i) || b.get(i));
    EXPECT_EQ(bxor.get(i), a.get(i) != b.get(i));
  }
}

TEST(BitVec, ComplementMasksTail) {
  BitVec v(65, false);
  const BitVec nv = ~v;
  EXPECT_EQ(nv.popcount(), 65u);
  EXPECT_EQ((~nv).popcount(), 0u);
}

TEST(BitVec, EqualityIncludesWidth) {
  BitVec a(64, false);
  BitVec b(65, false);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BitVec(64, false));
}

TEST(BitVec, DeMorgan) {
  Rng rng(11);
  const BitVec a = BitVec::random(128, rng);
  const BitVec b = BitVec::random(128, rng);
  EXPECT_EQ(~(a & b), (~a) | (~b));
  EXPECT_EQ(~(a | b), (~a) & (~b));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundedDraw) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace lbnn
