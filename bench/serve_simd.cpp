// Bit-sliced SIMD member execution vs the scalar oracle interpreter.
//
//   $ ./serve_simd [rounds] [gates] [word_width]
//
// The standard anchor: a 4-worker engine serving one single-member model
// compiled from a ~400-gate random DAG at a 2048-lane batch width — wide
// enough that one member run is real compute (tens of microseconds bit-
// sliced, hundreds scalar) and every lane of every output is checked against
// a netlist-level reference. Both modes run the identical closed-loop
// workload: keep kBatchesInFlight full batches in flight, wait for all of
// them, repeat; the gated metric is the engine's member service-time p99
// (ServeReport::member_p99_us — the hook + LpuSimulator::run region), which
// is exactly the cost every scheduler feature built in PRs 2-7 multiplies.
//
//   scalar       EngineOptions::simd = false — the original BitVec-at-a-time
//                interpreter, kept alive as the bit-exactness oracle (the
//                same baseline pattern as member_stealing=false /
//                hedging=false).
//   bit-sliced   EngineOptions::simd = true (the default) — gate evaluation
//                on packed 64-bit words across the full batch width, AVX2
//                when the CPU has it (LBNN_NO_AVX2 / LBNN_FORCE_SCALAR
//                override; see SimdKernel).
//
// The claim under test (ISSUE 8 acceptance): bit-sliced member execution is
// >= 4x faster than scalar at p99, with zero output mismatches in either
// mode. Lane inputs are fixed per lane across rounds so the netlist
// reference (simulate_scalar) is computed once per lane, then every future
// of every round is compared bit for bit — a lane-masking or routing bug in
// the kernel fails the gate even if it is fast. Best-of-two attempts, same
// as the other serving benches: on a loaded 1-core host a single attempt
// can lose to preemption landing in one mode's tail; a real regression
// fails twice.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;

// Measured rounds keep ONE batch in flight: a single-member model means one
// member run at a time, so on a small host the timed region is the member's
// actual service time, not its timeslice share — four concurrent batches on
// one core would inflate the short bit-sliced runs' tail by preemption alone
// and the gate would measure the scheduler, not the kernel. Warmup rounds
// keep one batch in flight PER WORKER instead, so every worker constructs
// its lazily-built simulator (which happens inside the timed member region)
// before measurement; reset_stats() then drops the warmup samples.
constexpr std::size_t kBatchesInFlight = 1;
constexpr std::size_t kWarmupInFlight = 4;  // one per worker

struct ModeResult {
  ServeReport report;
  std::uint64_t mismatches = 0;
  double wall_s = 0.0;
};

ModeResult run_mode(bool simd, const Netlist& nl, int rounds,
                    std::uint32_t word_width,
                    const std::vector<std::vector<bool>>& lane_inputs,
                    const std::vector<std::vector<bool>>& expected) {
  EngineOptions eopt;
  eopt.num_workers = 4;  // the standard anchor
  eopt.batch_timeout = std::chrono::hours(1);  // seal on full lanes only
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  eopt.compile.lpu.word_width = word_width;
  eopt.simd = simd;
  // Isolate the execution kernel: hedging would launch duplicate member runs
  // whose cancelled losers pollute the service-time percentiles.
  eopt.hedging = false;
  Engine engine(eopt);
  const ModelHandle h = engine.load(simd ? "simd" : "scalar", nl);

  const std::size_t lanes = lane_inputs.size();
  constexpr int kWarmup = 6;  // simulator + arena construction, worker wake-up
  ModeResult r;
  const auto one_round = [&](std::size_t in_flight) {
    std::vector<std::future<std::vector<bool>>> futs;
    futs.reserve(in_flight * lanes);
    for (std::size_t b = 0; b < in_flight; ++b) {
      for (std::size_t i = 0; i < lanes; ++i) {
        futs.push_back(engine.submit(h, lane_inputs[i]));
      }
    }
    for (std::size_t f = 0; f < futs.size(); ++f) {
      const std::vector<bool> got = futs[f].get();
      if (got != expected[f % lanes]) ++r.mismatches;
    }
  };
  for (int round = 0; round < kWarmup; ++round) one_round(kWarmupInFlight);
  engine.reset_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) one_round(kBatchesInFlight);
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count();
  r.report = engine.report();
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r) {
  std::cout << name << ":\n"
            << "  member service p50 " << r.report.member_p50_exact_us
            << " us, p99 " << r.report.member_p99_exact_us << " us ("
            << r.report.member_runs << " runs; octave buckets "
            << r.report.member_p50_us << "/" << r.report.member_p99_us
            << ")\n"
            << "  requests/s " << std::fixed << std::setprecision(0)
            << r.report.requests_per_sec << ", mismatches " << r.mismatches
            << ", wall " << std::setprecision(2) << r.wall_s << " s\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const long long rounds_arg = argc > 1 ? std::atoll(argv[1]) : 200;
  const int rounds = rounds_arg > 0 ? static_cast<int>(rounds_arg) : 200;
  const long long gates_arg = argc > 2 ? std::atoll(argv[2]) : 400;
  const long long ww_arg = argc > 3 ? std::atoll(argv[3]) : 2048;
  const std::uint32_t word_width =
      ww_arg > 0 ? static_cast<std::uint32_t>(ww_arg) : 2048;

  Rng gen(13);
  RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_gates = gates_arg > 0 ? static_cast<std::size_t>(gates_arg) : 400;
  spec.num_outputs = 8;
  const Netlist nl = random_dag(spec, gen);

  // Fixed per-lane inputs: the netlist reference is computed once per lane,
  // then every future of every round is checked against it bit for bit.
  Rng lane_rng(29);
  std::vector<std::vector<bool>> lane_inputs(word_width);
  std::vector<std::vector<bool>> expected(word_width);
  for (std::size_t i = 0; i < word_width; ++i) {
    lane_inputs[i].resize(nl.num_inputs());
    for (std::size_t pi = 0; pi < lane_inputs[i].size(); ++pi) {
      lane_inputs[i][pi] = lane_rng.next_bool();
    }
    expected[i] = simulate_scalar(nl, lane_inputs[i]);
  }

  std::cout << "4-worker engine, " << spec.num_gates << "-gate DAG, "
            << word_width << "-lane batches, " << kBatchesInFlight
            << " in flight, " << rounds << " rounds per mode, bit-sliced "
            << "kernel " << to_string(LpuSimulator::resolve_kernel(true))
            << ", " << std::thread::hardware_concurrency() << " core(s)\n\n";

  // Acceptance gate, mirrored by CI: bit-sliced member execution >= 4x the
  // scalar oracle at p99, outputs bit-exact in both modes. Best-of-two.
  bool ok = false;
  double simd_p50 = 0.0, simd_p99 = 0.0, simd_rps = 0.0;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "gate missed; retrying once (noisy host?)\n\n";
    }
    const ModeResult scalar =
        run_mode(/*simd=*/false, nl, rounds, word_width, lane_inputs, expected);
    print_mode("scalar oracle (simd = false)", scalar);
    const ModeResult sliced =
        run_mode(/*simd=*/true, nl, rounds, word_width, lane_inputs, expected);
    print_mode("bit-sliced (simd = true)", sliced);

    const double p99_ratio =
        sliced.report.member_p99_exact_us > 0
            ? static_cast<double>(scalar.report.member_p99_exact_us) /
                  static_cast<double>(sliced.report.member_p99_exact_us)
            : 0.0;
    std::cout << "member p99: " << scalar.report.member_p99_exact_us << " -> "
              << sliced.report.member_p99_exact_us << " us (" << std::fixed
              << std::setprecision(2) << p99_ratio << "x)\n";
    ok = p99_ratio >= 4.0 && scalar.mismatches == 0 && sliced.mismatches == 0;
    simd_p50 = static_cast<double>(sliced.report.member_p50_exact_us);
    simd_p99 = static_cast<double>(sliced.report.member_p99_exact_us);
    simd_rps = sliced.report.requests_per_sec;
  }
  std::cout << (ok ? "PASS" : "FAIL")
            << ": p99(scalar) >= 4 x p99(bit-sliced) and zero mismatches\n";
  // p99 is structurally unmeasured here: the sample-exact member p99 sits at
  // tens of microseconds, where a single preemption on a shared runner reads
  // as a multi-x regression. The p99 property this bench owns is gated right
  // here as the scalar-vs-sliced RATIO (robust — both modes eat the same
  // host noise); the trajectory compare tracks the stable p50 and samples/s
  // instead, and the JSONL line says "p99_us":null so the comparer skips it
  // structurally rather than special-casing a 0.
  (void)simd_p99;
  lbnn::bench::emit_bench_json("serve_simd", simd_p50, lbnn::bench::unmeasured(),
                               simd_rps, ok);
  return ok ? 0 : 1;
}
